// Command paramgen generates parameter bindings for a benchmark query
// template — either uniformly at random (the baseline the paper shows to be
// inadequate) or curated via the paper's domain clustering.
//
// Usage:
//
//	paramgen -dataset bsbm -query q4 -mode uniform -n 100
//	paramgen -dataset bsbm -query q4 -mode curated -n 100 -epsilon 1.0
//	paramgen -dataset snb  -query q3 -mode curated -summary
//
// Curated output is grouped per class (Q4a, Q4b, …), one binding per line:
//
//	Q4a  ProductType=<http://bsbm.example.org/ProductType17>
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/bsbm"
	"repro/internal/core"
	"repro/internal/snb"
	"repro/internal/sparql"
	"repro/internal/store"
)

func main() {
	var (
		dataset = flag.String("dataset", "bsbm", "dataset: bsbm | snb")
		scale   = flag.String("scale", "test", "scale preset: test | default")
		query   = flag.String("query", "q4", "query template: bsbm q1|q2|q4, snb q1|q2|q3")
		mode    = flag.String("mode", "uniform", "sampling mode: uniform | curated")
		n       = flag.Int("n", 100, "bindings to emit (per class in curated mode)")
		epsilon = flag.Float64("epsilon", core.DefaultEpsilon, "cost-band width for clustering")
		minSize = flag.Int("minclass", 1, "drop classes smaller than this")
		seed    = flag.Int64("seed", 1, "sampling seed")
		summary = flag.Bool("summary", false, "print clustering summary instead of bindings")
	)
	flag.Parse()
	if err := run(os.Stdout, *dataset, *scale, *query, *mode, *n, *epsilon, *minSize, *seed, *summary); err != nil {
		fmt.Fprintln(os.Stderr, "paramgen:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, dataset, scale, query, mode string, n int, epsilon float64, minSize int, seed int64, summary bool) error {
	st, tmpl, name, err := load(dataset, scale, query, seed)
	if err != nil {
		return err
	}
	dom, err := core.ExtractDomain(tmpl, st)
	if err != nil {
		return err
	}
	switch mode {
	case "uniform":
		s := core.NewUniformSampler(dom, seed)
		for _, b := range s.Sample(n) {
			fmt.Fprintln(w, formatBinding(name, b))
		}
		return nil
	case "curated":
		a, err := core.Analyze(tmpl, st, dom, core.AnalyzeOptions{Seed: seed})
		if err != nil {
			return err
		}
		cl := core.Cluster(a, core.ClusterOptions{Epsilon: epsilon, MinClassSize: minSize})
		if summary {
			fmt.Fprint(w, cl.Summary())
			return nil
		}
		for _, cq := range core.Curate(name, cl, seed) {
			for _, b := range cq.Sampler.Sample(n) {
				fmt.Fprintln(w, formatBinding(cq.Name, b))
			}
		}
		return nil
	default:
		return fmt.Errorf("unknown mode %q (want uniform or curated)", mode)
	}
}

func load(dataset, scale, query string, seed int64) (*store.Store, *sparql.Query, string, error) {
	switch dataset {
	case "bsbm":
		cfg := bsbm.TestConfig()
		if scale == "default" {
			cfg = bsbm.DefaultConfig()
		}
		cfg.Seed = seed
		st, _, err := bsbm.BuildStore(cfg)
		if err != nil {
			return nil, nil, "", err
		}
		switch query {
		case "q1":
			return st, bsbm.Q1(), "Q1", nil
		case "q2":
			return st, bsbm.Q2(), "Q2", nil
		case "q4":
			return st, bsbm.Q4(), "Q4", nil
		}
		return nil, nil, "", fmt.Errorf("unknown bsbm query %q", query)
	case "snb":
		cfg := snb.TestConfig()
		if scale == "default" {
			cfg = snb.DefaultConfig()
		}
		cfg.Seed = seed
		st, _, err := snb.BuildStore(cfg)
		if err != nil {
			return nil, nil, "", err
		}
		switch query {
		case "q1":
			return st, snb.Q1(), "Q1", nil
		case "q2":
			return st, snb.Q2(), "Q2", nil
		case "q3":
			return st, snb.Q3(), "Q3", nil
		}
		return nil, nil, "", fmt.Errorf("unknown snb query %q", query)
	}
	return nil, nil, "", fmt.Errorf("unknown dataset %q", dataset)
}

func formatBinding(label string, b sparql.Binding) string {
	keys := make([]string, 0, len(b))
	for k := range b {
		keys = append(keys, string(k))
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(b)+1)
	parts = append(parts, label)
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%s", k, b[sparql.Param(k)]))
	}
	return strings.Join(parts, "\t")
}
