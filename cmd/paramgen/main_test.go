package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestUniformMode(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "bsbm", "test", "q4", "uniform", 25, 1.0, 1, 1, false); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 25 {
		t.Fatalf("got %d lines, want 25", len(lines))
	}
	for _, l := range lines {
		if !strings.HasPrefix(l, "Q4\t") || !strings.Contains(l, "ProductType=") {
			t.Fatalf("malformed line %q", l)
		}
	}
}

func TestCuratedMode(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "bsbm", "test", "q4", "curated", 5, 1.0, 1, 1, false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Q4a\t") || !strings.Contains(out, "Q4b\t") {
		t.Fatalf("curated output missing class labels:\n%s", out)
	}
}

func TestCuratedSummary(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "snb", "test", "q2", "curated", 5, 1.0, 1, 1, true); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "classes") {
		t.Fatalf("summary missing:\n%s", buf.String())
	}
}

func TestSNBQueries(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "snb", "test", "q1", "uniform", 3, 1.0, 1, 1, false); err != nil {
		t.Fatal(err)
	}
	if err := run(&buf, "snb", "test", "q3", "uniform", 3, 1.0, 1, 1, false); err != nil {
		t.Fatal(err)
	}
	if err := run(&buf, "bsbm", "test", "q1", "uniform", 3, 1.0, 1, 1, false); err != nil {
		t.Fatal(err)
	}
	if err := run(&buf, "bsbm", "test", "q2", "uniform", 3, 1.0, 1, 1, false); err != nil {
		t.Fatal(err)
	}
}

func TestErrors(t *testing.T) {
	var buf bytes.Buffer
	cases := []struct {
		dataset, query, mode string
	}{
		{"nope", "q4", "uniform"},
		{"bsbm", "q9", "uniform"},
		{"snb", "q9", "uniform"},
		{"bsbm", "q4", "sideways"},
	}
	for _, c := range cases {
		if err := run(&buf, c.dataset, "test", c.query, c.mode, 3, 1.0, 1, 1, false); err == nil {
			t.Errorf("%+v: expected error", c)
		}
	}
}
