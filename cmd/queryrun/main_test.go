package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/bsbm"
)

func writeTestData(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "data.nt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	content := `<http://x/a> <http://x/knows> <http://x/b> .
<http://x/b> <http://x/knows> <http://x/c> .
<http://x/a> <http://x/name> "alice" .
<http://x/b> <http://x/name> "bob" .
`
	if _, err := f.WriteString(content); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestQueryOverNTriples(t *testing.T) {
	data := writeTestData(t)
	var buf bytes.Buffer
	err := run(&buf, config{dataPath: data, queryStr: `SELECT ?n WHERE { ?p <http://x/name> ?n . } ORDER BY ?n`})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "2 rows") || !strings.Contains(out, `"alice"`) {
		t.Fatalf("output wrong:\n%s", out)
	}
	// alice sorts before bob
	if strings.Index(out, "alice") > strings.Index(out, "bob") {
		t.Fatal("ORDER BY not applied")
	}
}

func TestQueryWithBindAndExplain(t *testing.T) {
	data := writeTestData(t)
	var buf bytes.Buffer
	err := run(&buf, config{dataPath: data, queryStr: `SELECT ?x WHERE { %who <http://x/knows> ?x . }`,
		binds: []string{"who=<http://x/a>"}, explain: true})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "plan[") {
		t.Fatal("explain output missing")
	}
	if !strings.Contains(out, "<http://x/b>") {
		t.Fatalf("result missing:\n%s", out)
	}
}

func TestQueryOverSnapshot(t *testing.T) {
	st, _, err := bsbm.BuildStore(bsbm.TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "data.snap")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.WriteSnapshot(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	var buf bytes.Buffer
	err = run(&buf, config{dataPath: path, queryStr: `PREFIX b: <http://bsbm.example.org/>
SELECT ?p WHERE { ?p b:label ?l . } LIMIT 7`, maxRows: 3})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "7 rows") || !strings.Contains(out, "more rows") {
		t.Fatalf("snapshot query output wrong:\n%s", out)
	}
}

func TestQueryFileAndModes(t *testing.T) {
	data := writeTestData(t)
	qf := filepath.Join(t.TempDir(), "q.rq")
	if err := os.WriteFile(qf, []byte(`SELECT * WHERE { ?a <http://x/knows> ?b . ?b <http://x/knows> ?c . }`), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, mode := range []struct{ greedy, sampling bool }{
		{false, false}, {true, false}, {false, true},
	} {
		var buf bytes.Buffer
		if err := run(&buf, config{dataPath: data, queryFile: qf, greedy: mode.greedy, sampling: mode.sampling}); err != nil {
			t.Fatalf("mode %+v: %v", mode, err)
		}
		if !strings.Contains(buf.String(), "1 rows") {
			t.Fatalf("mode %+v: wrong rows:\n%s", mode, buf.String())
		}
	}
}

func TestErrors(t *testing.T) {
	data := writeTestData(t)
	var buf bytes.Buffer
	if err := run(&buf, config{queryStr: "q"}); err == nil {
		t.Error("missing data should fail")
	}
	if err := run(&buf, config{dataPath: data}); err == nil {
		t.Error("missing query should fail")
	}
	if err := run(&buf, config{dataPath: data, queryStr: "not a query"}); err == nil {
		t.Error("bad query should fail")
	}
	if err := run(&buf, config{dataPath: data, queryStr: `SELECT * WHERE { ?s ?p %x . }`}); err == nil {
		t.Error("unbound param should fail")
	}
	if err := run(&buf, config{dataPath: data, queryStr: `SELECT * WHERE { ?s ?p %x . }`, binds: []string{"bogus"}}); err == nil {
		t.Error("malformed bind should fail")
	}
	if err := run(&buf, config{dataPath: data, queryStr: `SELECT * WHERE { ?s ?p %x . }`, binds: []string{"x=<unterminated"}}); err == nil {
		t.Error("bad bind term should fail")
	}
	if err := run(&buf, config{dataPath: "/nonexistent.nt", queryStr: "q"}); err == nil {
		t.Error("missing file should fail")
	}
}

func TestEngineModesAgree(t *testing.T) {
	data := writeTestData(t)
	src := `SELECT ?x WHERE { <http://x/a> <http://x/knows> ?x . ?x <http://x/knows> ?c . }`
	var streaming, materializing, pushed bytes.Buffer
	if err := run(&streaming, config{dataPath: data, queryStr: src}); err != nil {
		t.Fatal(err)
	}
	if err := run(&materializing, config{dataPath: data, queryStr: src, materialize: true}); err != nil {
		t.Fatal(err)
	}
	if err := run(&pushed, config{dataPath: data, queryStr: src, pushFilters: true}); err != nil {
		t.Fatal(err)
	}
	rows := func(out string) string {
		// Strip the timing line (wall clock differs per run).
		i := strings.Index(out, "\n")
		return out[i:]
	}
	if rows(streaming.String()) != rows(materializing.String()) {
		t.Fatalf("engines disagree:\n%s\nvs\n%s", streaming.String(), materializing.String())
	}
	if rows(streaming.String()) != rows(pushed.String()) {
		t.Fatalf("pushdown changed results:\n%s\nvs\n%s", streaming.String(), pushed.String())
	}
}

func TestExplainPrintsPhysicalPlan(t *testing.T) {
	data := writeTestData(t)
	var buf bytes.Buffer
	err := run(&buf, config{dataPath: data, explain: true,
		queryStr: `SELECT ?x WHERE { <http://x/a> <http://x/knows> ?x . ?x <http://x/knows> ?c . }`})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "physical:") || !strings.Contains(out, "IndexScan") {
		t.Fatalf("physical plan missing from explain output:\n%s", out)
	}
}
