// Command queryrun executes a SPARQL-subset query against an N-Triples
// file or a binary store snapshot, printing the optimal plan, measured
// cost, and results.
//
// Usage:
//
//	queryrun -data graph.nt -query 'SELECT * WHERE { ?s ?p ?o . } LIMIT 5'
//	queryrun -data big.snap -queryfile q.rq -explain
//	queryrun -data graph.nt -query '... %t ...' -bind t=<http://x/T1>
//
// Parameterized templates are bound with repeated -bind name=term flags,
// where term uses N-Triples syntax (<iri>, "literal", "7"^^<...>).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/exec"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/store"
)

// bindFlags collects repeated -bind flags.
type bindFlags []string

func (b *bindFlags) String() string { return strings.Join(*b, ",") }

func (b *bindFlags) Set(v string) error {
	*b = append(*b, v)
	return nil
}

// config collects the command-line options.
type config struct {
	dataPath    string
	queryStr    string
	queryFile   string
	updateRun   string
	commit      bool
	binds       []string
	explain     bool
	analyze     bool
	greedy      bool
	sampling    bool
	materialize bool
	engine      string
	leapfrog    bool
	mergeJoin   bool
	pushFilters bool
	parallelism int
	maxRows     int
}

func main() {
	var (
		cfg   config
		binds bindFlags
	)
	flag.StringVar(&cfg.dataPath, "data", "", "N-Triples (.nt) or snapshot file (required)")
	flag.StringVar(&cfg.queryStr, "query", "", "query text")
	flag.StringVar(&cfg.queryFile, "queryfile", "", "file containing the query")
	flag.StringVar(&cfg.updateRun, "updaterun", "", "SPARQL-Update text (or @file) applied to the loaded store before the query runs; the query then sees the delta-overlaid snapshot")
	flag.BoolVar(&cfg.commit, "commit", false, "with -updaterun: fold the delta into a fresh fully indexed store instead of querying the overlay")
	flag.BoolVar(&cfg.explain, "explain", false, "print the optimized logical and physical plan trees")
	flag.BoolVar(&cfg.analyze, "analyze", false, "EXPLAIN ANALYZE: trace the execution and print the plan annotated with observed rows, wall time and Cout/Work/Scanned per operator")
	flag.BoolVar(&cfg.greedy, "greedy", false, "use the greedy optimizer")
	flag.BoolVar(&cfg.sampling, "sampling", false, "use the sampling cardinality estimator")
	flag.BoolVar(&cfg.materialize, "materialize", false, "use the materializing engine instead of the streaming one")
	flag.StringVar(&cfg.engine, "engine", "", "execution engine: streaming (default), materializing or columnar")
	flag.BoolVar(&cfg.leapfrog, "leapfrog", false, "lower eligible star BGPs to the worst-case-optimal leapfrog triejoin (requires -engine columnar)")
	flag.BoolVar(&cfg.mergeJoin, "mergejoin", false, "use sort-merge joins for interior joins")
	flag.BoolVar(&cfg.pushFilters, "pushfilters", false, "push single-variable filters below the joins (streaming engine)")
	flag.IntVar(&cfg.parallelism, "parallelism", 1, "intra-query workers for morsel-driven parallel pipelines (1 = serial; results are bit-identical at any setting)")
	flag.IntVar(&cfg.maxRows, "maxrows", 50, "result rows to print (0 = all)")
	flag.Var(&binds, "bind", "parameter binding name=term (repeatable)")
	flag.Parse()
	cfg.binds = binds
	if err := run(os.Stdout, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "queryrun:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, cfg config) error {
	dataPath, queryStr, queryFile := cfg.dataPath, cfg.queryStr, cfg.queryFile
	binds, explain, greedy, sampling, maxRows := cfg.binds, cfg.explain, cfg.greedy, cfg.sampling, cfg.maxRows
	if dataPath == "" {
		return fmt.Errorf("-data is required")
	}
	st, err := store.LoadAnyMapped(dataPath)
	if err != nil {
		return err
	}
	if cfg.updateRun != "" {
		st, err = applyUpdate(w, st, cfg.updateRun, cfg.commit)
		if err != nil {
			return err
		}
	}
	src := queryStr
	if queryFile != "" {
		data, err := os.ReadFile(queryFile)
		if err != nil {
			return err
		}
		src = string(data)
	}
	if src == "" {
		return fmt.Errorf("one of -query or -queryfile is required")
	}
	q, err := sparql.Parse(src)
	if err != nil {
		return err
	}
	if len(binds) > 0 {
		binding, err := parseBindings(binds)
		if err != nil {
			return err
		}
		q, err = q.Bind(binding)
		if err != nil {
			return err
		}
	}
	if ps := q.Params(); len(ps) > 0 {
		return fmt.Errorf("unbound parameters %v (use -bind)", ps)
	}
	c, err := plan.Compile(q, st)
	if err != nil {
		return err
	}
	var model plan.Model = plan.NewEstimator(st)
	if sampling {
		model = plan.NewSamplingEstimator(st, c, 0)
	}
	var p *plan.Plan
	if greedy {
		p, err = plan.OptimizeGreedy(c, model)
	} else {
		p, err = plan.Optimize(c, model)
	}
	if err != nil {
		return err
	}
	opts := exec.Options{PushFilters: cfg.pushFilters, Parallelism: cfg.parallelism}
	if cfg.materialize {
		opts.Mode = exec.Materializing
	}
	switch cfg.engine {
	case "":
	case "streaming":
		opts.Mode = exec.Streaming
	case "materializing":
		opts.Mode = exec.Materializing
	case "columnar":
		opts.Mode = exec.Columnar
	default:
		return fmt.Errorf("unknown -engine %q (want streaming, materializing or columnar)", cfg.engine)
	}
	if cfg.leapfrog && opts.Mode != exec.Columnar {
		return fmt.Errorf("-leapfrog requires -engine columnar")
	}
	opts.Leapfrog = cfg.leapfrog
	if cfg.mergeJoin {
		opts.Join = exec.SortMergeJoin
	}
	if explain {
		fmt.Fprintf(w, "%s\n", p)
		// The physical tree is only printed for the engines that execute
		// it; the materializing engine evaluates the logical tree directly.
		if opts.Mode != exec.Materializing {
			phys, err := plan.Lower(c, p, exec.PhysOptions(opts))
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "physical:\n%s", phys)
		}
	}
	var capture *obs.Capture
	if cfg.analyze {
		capture = &obs.Capture{}
		opts.Trace = capture
	}
	res, err := exec.Run(c, p, st, opts)
	if err != nil {
		return err
	}
	if capture != nil && capture.Root != nil {
		fmt.Fprintf(w, "EXPLAIN ANALYZE:\n%s", obs.Render(capture.Root))
	}
	fmt.Fprintf(w, "%d rows in %v (Cout %.0f, work %.0f, scanned %d)\n",
		len(res.Rows), res.Duration, res.Cout, res.Work, res.Scanned)
	if res.Morsels > 0 {
		fmt.Fprintf(w, "parallel: %d morsels on up to %d workers\n", res.Morsels, res.Workers)
	}
	if k := res.Kernels; k.Batches > 0 {
		fmt.Fprintf(w, "columnar: %d batches (filter %d, hash-probe %d, merge %d, gather %d rows)\n",
			k.Batches, k.FilterRows, k.HashProbeRows, k.MergeRows, k.GatherRows)
		if k.LeapfrogRows > 0 || k.LeapfrogSeeks > 0 {
			fmt.Fprintf(w, "leapfrog: %d rows, %d trie seeks\n", k.LeapfrogRows, k.LeapfrogSeeks)
		}
	}
	if k := res.Kernels; k.LeftJoinRows > 0 || k.UnionRows > 0 || k.AggGroups > 0 {
		fmt.Fprintf(w, "algebra: left-join %d rows, union %d rows, %d groups\n",
			k.LeftJoinRows, k.UnionRows, k.AggGroups)
	}
	// Header.
	cols := make([]string, len(res.Vars))
	for i, v := range res.Vars {
		cols[i] = "?" + string(v)
	}
	fmt.Fprintln(w, strings.Join(cols, "\t"))
	d := st.Dict()
	for i, row := range res.Rows {
		if maxRows > 0 && i >= maxRows {
			fmt.Fprintf(w, "... (%d more rows)\n", len(res.Rows)-maxRows)
			break
		}
		cells := make([]string, len(row))
		for j, id := range row {
			if t, ok := d.TryDecode(id); ok {
				cells[j] = t.String()
			} else {
				cells[j] = "UNDEF" // unbound OPTIONAL/UNION column
			}
		}
		fmt.Fprintln(w, strings.Join(cells, "\t"))
	}
	return nil
}

// applyUpdate runs -updaterun's SPARQL-Update (text or @file) against the
// loaded store, returning the delta overlay (or, with -commit, the folded
// store) the query will execute over.
func applyUpdate(w io.Writer, st *store.Store, arg string, commit bool) (*store.Store, error) {
	src := arg
	if strings.HasPrefix(arg, "@") {
		data, err := os.ReadFile(arg[1:])
		if err != nil {
			return nil, err
		}
		src = string(data)
	}
	u, err := sparql.ParseUpdate(src)
	if err != nil {
		return nil, err
	}
	d, err := exec.ApplyUpdate(st, u)
	if err != nil {
		return nil, err
	}
	if commit {
		next := d.Commit(store.BuildOptions{})
		fmt.Fprintf(w, "update: +%d -%d triples committed (store %d -> %d triples)\n",
			d.InsertCount(), d.DeleteCount(), st.Len(), next.Len())
		return next, nil
	}
	next := d.Overlay()
	fmt.Fprintf(w, "update: +%d -%d triples as delta overlay (store %d -> %d triples)\n",
		d.InsertCount(), d.DeleteCount(), st.Len(), next.Len())
	return next, nil
}

// parseBindings parses -bind name=term flags; the term side is N-Triples
// syntax.
func parseBindings(binds []string) (sparql.Binding, error) {
	out := sparql.Binding{}
	for _, b := range binds {
		name, termSrc, ok := strings.Cut(b, "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("malformed -bind %q (want name=term)", b)
		}
		t, err := rdf.ParseTerm(termSrc)
		if err != nil {
			return nil, fmt.Errorf("-bind %s: invalid term %q: %v", name, termSrc, err)
		}
		out[sparql.Param(name)] = t
	}
	return out, nil
}
