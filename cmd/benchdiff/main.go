// Command benchdiff compares two bench artifacts produced by the CI bench
// job (`go test -bench ... -json | tee bench.json`, i.e. test2json stream
// with the textual benchmark lines inside "output" events) and prints
// per-benchmark deltas, so the perf trajectory tracked by the committed
// BENCH_<n>.json files is readable at a glance:
//
//	benchdiff BENCH_5.json BENCH_6.json
//	benchdiff -metric work BENCH_5.json BENCH_6.json
//	benchdiff -threshold 25 BENCH_7.json bench.json
//
// Benchmarks present in only one artifact are listed as added/removed
// rather than failing the run, so the tool degrades gracefully when a
// previous PR's artifact does not exist yet (pass "-" as the old file to
// diff against nothing).
//
// -threshold N turns the diff into a regression gate: after printing the
// table, the tool exits 1 when any benchmark's tracked metric regressed
// (grew) by more than N percent versus the baseline. CI wires this in as
// a soft check — annotated, not blocking — against the committed
// BENCH_<n>.json baseline.
package main

import (
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/benchfmt"
)

func main() {
	code, err := run(os.Stdout, os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

func run(w *os.File, args []string) (int, error) {
	metric := "ns/op"
	threshold := -1.0
flags:
	for len(args) > 0 {
		switch args[0] {
		case "-metric":
			if len(args) < 2 {
				return 0, fmt.Errorf("-metric needs a value")
			}
			metric = args[1]
			args = args[2:]
		case "-threshold":
			if len(args) < 2 {
				return 0, fmt.Errorf("-threshold needs a value")
			}
			v, err := strconv.ParseFloat(args[1], 64)
			if err != nil || v < 0 {
				return 0, fmt.Errorf("-threshold wants a non-negative percentage, got %q", args[1])
			}
			threshold = v
			args = args[2:]
		default:
			if strings.HasPrefix(args[0], "-") && len(args[0]) > 1 {
				return 0, fmt.Errorf("unknown flag %s", args[0])
			}
			break flags
		}
	}
	if len(args) != 2 {
		return 0, fmt.Errorf("usage: benchdiff [-metric name] [-threshold pct] OLD.json NEW.json (OLD may be \"-\" for none)")
	}
	oldPath, newPath := args[0], args[1]
	old := benchfmt.Set{}
	if oldPath != "-" {
		data, err := os.ReadFile(oldPath)
		if err != nil {
			if os.IsNotExist(err) {
				fmt.Fprintf(w, "benchdiff: baseline %s missing; showing %s only\n", oldPath, newPath)
			} else {
				return 0, err
			}
		} else {
			old, err = benchfmt.Parse(data)
			if err != nil {
				return 0, fmt.Errorf("%s: %v", oldPath, err)
			}
		}
	}
	data, err := os.ReadFile(newPath)
	if err != nil {
		return 0, err
	}
	cur, err := benchfmt.Parse(data)
	if err != nil {
		return 0, fmt.Errorf("%s: %v", newPath, err)
	}
	report := benchfmt.Diff(old, cur, metric)
	if report == "" {
		return 0, fmt.Errorf("no benchmark results in %s", newPath)
	}
	fmt.Fprint(w, report)
	if threshold >= 0 {
		regressed := 0
		for _, d := range benchfmt.Deltas(old, cur, metric) {
			if d.Percent > threshold {
				fmt.Fprintf(w, "REGRESSION %s: %s %+.1f%% (threshold %.1f%%)\n", d.Name, metric, d.Percent, threshold)
				regressed++
			}
		}
		if regressed > 0 {
			fmt.Fprintf(w, "benchdiff: %d benchmark(s) regressed beyond %.1f%% on %s\n", regressed, threshold, metric)
			return 1, nil
		}
	}
	return 0, nil
}
