// Command benchdiff compares two bench artifacts produced by the CI bench
// job (`go test -bench ... -json | tee bench.json`, i.e. test2json stream
// with the textual benchmark lines inside "output" events) and prints
// per-benchmark deltas, so the perf trajectory tracked by the committed
// BENCH_<n>.json files is readable at a glance:
//
//	benchdiff BENCH_5.json BENCH_6.json
//	benchdiff -metric work BENCH_5.json BENCH_6.json
//
// Benchmarks present in only one artifact are listed as added/removed
// rather than failing the run, so the tool degrades gracefully when a
// previous PR's artifact does not exist yet (pass "-" as the old file to
// diff against nothing).
package main

import (
	"fmt"
	"os"

	"repro/internal/benchfmt"
)

func main() {
	code, err := run(os.Stdout, os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

func run(w *os.File, args []string) (int, error) {
	metric := "ns/op"
	for len(args) > 0 && args[0] == "-metric" {
		if len(args) < 2 {
			return 0, fmt.Errorf("-metric needs a value")
		}
		metric = args[1]
		args = args[2:]
	}
	if len(args) != 2 {
		return 0, fmt.Errorf("usage: benchdiff [-metric name] OLD.json NEW.json (OLD may be \"-\" for none)")
	}
	oldPath, newPath := args[0], args[1]
	old := benchfmt.Set{}
	if oldPath != "-" {
		data, err := os.ReadFile(oldPath)
		if err != nil {
			if os.IsNotExist(err) {
				fmt.Fprintf(w, "benchdiff: baseline %s missing; showing %s only\n", oldPath, newPath)
			} else {
				return 0, err
			}
		} else {
			old, err = benchfmt.Parse(data)
			if err != nil {
				return 0, fmt.Errorf("%s: %v", oldPath, err)
			}
		}
	}
	data, err := os.ReadFile(newPath)
	if err != nil {
		return 0, err
	}
	cur, err := benchfmt.Parse(data)
	if err != nil {
		return 0, fmt.Errorf("%s: %v", newPath, err)
	}
	report := benchfmt.Diff(old, cur, metric)
	if report == "" {
		return 0, fmt.Errorf("no benchmark results in %s", newPath)
	}
	fmt.Fprint(w, report)
	return 0, nil
}
