// Command datagen generates a benchmark dataset (BSBM-style or LDBC-SNB-
// style) as N-Triples.
//
// Usage:
//
//	datagen -dataset bsbm -scale default -seed 1 -out data.nt
//	datagen -dataset snb  -scale test > snb.nt
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/bsbm"
	"repro/internal/rdf"
	"repro/internal/snb"
	"repro/internal/store"
)

func main() {
	var (
		dataset = flag.String("dataset", "bsbm", "dataset to generate: bsbm | snb")
		scale   = flag.String("scale", "default", "scale preset: test | default")
		seed    = flag.Int64("seed", 1, "generator seed")
		out     = flag.String("out", "", "output file (default stdout)")
		format  = flag.String("format", "nt", "output format: nt (N-Triples) | snapshot (binary store snapshot)")
		snapVer = flag.Int("snapshot-version", 2, "snapshot format version: 2 (varint+delta, default) | 1 (fixed-width, legacy) | 3 (partitioned stats) | 4 (page-aligned, mmap-servable)")
		shards  = flag.Int("shards", 0, "with -format snapshot: write a sharded snapshot directory at -out (this many subject-hash shard files, each v4 mmap-servable, plus a manifest)")
	)
	flag.Parse()
	if err := run(*dataset, *scale, *seed, *out, *format, *snapVer, *shards); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run(dataset, scale string, seed int64, out, format string, snapVer, shards int) error {
	if shards > 1 {
		if format != "snapshot" {
			return fmt.Errorf("-shards requires -format snapshot")
		}
		if out == "" {
			return fmt.Errorf("-shards requires -out (a directory path)")
		}
		b := store.NewBuilder()
		if err := generate(dataset, scale, seed, b.Add); err != nil {
			return err
		}
		sh := store.NewSharded(b.Build(), shards)
		if err := store.WriteSharded(out, sh); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "datagen: wrote sharded snapshot (%d shards, %d triples) to %s\n", sh.NumShards(), sh.Len(), out)
		return nil
	}
	var w io.Writer = os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	switch format {
	case "nt":
		nw := rdf.NewWriter(w)
		if err := generate(dataset, scale, seed, nw.Write); err != nil {
			return err
		}
		if err := nw.Flush(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "datagen: wrote %d triples\n", nw.Count())
		return nil
	case "snapshot":
		b := store.NewBuilder()
		if err := generate(dataset, scale, seed, b.Add); err != nil {
			return err
		}
		st := b.Build()
		if err := st.WriteSnapshotVersion(w, snapVer); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "datagen: wrote v%d snapshot with %d triples\n", snapVer, st.Len())
		return nil
	default:
		return fmt.Errorf("unknown format %q (want nt or snapshot)", format)
	}
}

// generate drives the selected generator into emit.
func generate(dataset, scale string, seed int64, emit func(rdf.Triple) error) error {
	switch dataset {
	case "bsbm":
		cfg, err := bsbmConfig(scale)
		if err != nil {
			return err
		}
		cfg.Seed = seed
		_, err = bsbm.Generate(cfg, emit)
		return err
	case "snb":
		cfg, err := snbConfig(scale)
		if err != nil {
			return err
		}
		cfg.Seed = seed
		_, err = snb.Generate(cfg, emit)
		return err
	default:
		return fmt.Errorf("unknown dataset %q (want bsbm or snb)", dataset)
	}
}

func bsbmConfig(scale string) (bsbm.Config, error) {
	switch scale {
	case "test":
		return bsbm.TestConfig(), nil
	case "default":
		return bsbm.DefaultConfig(), nil
	default:
		return bsbm.Config{}, fmt.Errorf("unknown scale %q (want test or default)", scale)
	}
}

func snbConfig(scale string) (snb.Config, error) {
	switch scale {
	case "test":
		return snb.TestConfig(), nil
	case "default":
		return snb.DefaultConfig(), nil
	default:
		return snb.Config{}, fmt.Errorf("unknown scale %q (want test or default)", scale)
	}
}
