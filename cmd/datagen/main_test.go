package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/rdf"
	"repro/internal/store"
)

func TestRunWritesParseableNTriples(t *testing.T) {
	out := filepath.Join(t.TempDir(), "out.nt")
	if err := run("bsbm", "test", 1, out, "nt"); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	triples, err := rdf.NewReader(f).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(triples) < 10000 {
		t.Fatalf("only %d triples generated", len(triples))
	}
}

func TestRunSNB(t *testing.T) {
	out := filepath.Join(t.TempDir(), "snb.nt")
	if err := run("snb", "test", 2, out, "nt"); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	triples, err := rdf.NewReader(f).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(triples) < 10000 {
		t.Fatalf("only %d triples generated", len(triples))
	}
}

func TestRunErrors(t *testing.T) {
	tmp := filepath.Join(t.TempDir(), "x.nt")
	if err := run("nope", "test", 1, tmp, "nt"); err == nil {
		t.Error("unknown dataset should fail")
	}
	if err := run("bsbm", "huge", 1, tmp, "nt"); err == nil {
		t.Error("unknown scale should fail")
	}
	if err := run("snb", "huge", 1, tmp, "nt"); err == nil {
		t.Error("unknown snb scale should fail")
	}
	if err := run("bsbm", "test", 1, "/nonexistent-dir/x.nt", "nt"); err == nil {
		t.Error("unwritable path should fail")
	}
}

func TestRunSnapshotFormat(t *testing.T) {
	out := filepath.Join(t.TempDir(), "data.snap")
	if err := run("bsbm", "test", 1, out, "snapshot"); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	st, err := store.ReadSnapshot(f)
	if err != nil {
		t.Fatal(err)
	}
	if st.Len() < 10000 {
		t.Fatalf("snapshot has only %d triples", st.Len())
	}
}

func TestRunBadFormat(t *testing.T) {
	if err := run("bsbm", "test", 1, filepath.Join(t.TempDir(), "x"), "yaml"); err == nil {
		t.Fatal("bad format should fail")
	}
}
