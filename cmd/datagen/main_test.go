package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/rdf"
	"repro/internal/store"
)

func TestRunWritesParseableNTriples(t *testing.T) {
	out := filepath.Join(t.TempDir(), "out.nt")
	if err := run("bsbm", "test", 1, out, "nt", 2, 0); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	triples, err := rdf.NewReader(f).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(triples) < 10000 {
		t.Fatalf("only %d triples generated", len(triples))
	}
}

func TestRunSNB(t *testing.T) {
	out := filepath.Join(t.TempDir(), "snb.nt")
	if err := run("snb", "test", 2, out, "nt", 2, 0); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	triples, err := rdf.NewReader(f).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(triples) < 10000 {
		t.Fatalf("only %d triples generated", len(triples))
	}
}

func TestRunErrors(t *testing.T) {
	tmp := filepath.Join(t.TempDir(), "x.nt")
	if err := run("nope", "test", 1, tmp, "nt", 2, 0); err == nil {
		t.Error("unknown dataset should fail")
	}
	if err := run("bsbm", "huge", 1, tmp, "nt", 2, 0); err == nil {
		t.Error("unknown scale should fail")
	}
	if err := run("snb", "huge", 1, tmp, "nt", 2, 0); err == nil {
		t.Error("unknown snb scale should fail")
	}
	if err := run("bsbm", "test", 1, "/nonexistent-dir/x.nt", "nt", 2, 0); err == nil {
		t.Error("unwritable path should fail")
	}
}

func TestRunSnapshotFormat(t *testing.T) {
	out := filepath.Join(t.TempDir(), "data.snap")
	if err := run("bsbm", "test", 1, out, "snapshot", 2, 0); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	st, err := store.ReadSnapshot(f)
	if err != nil {
		t.Fatal(err)
	}
	if st.Len() < 10000 {
		t.Fatalf("snapshot has only %d triples", st.Len())
	}
}

func TestRunBadFormat(t *testing.T) {
	if err := run("bsbm", "test", 1, filepath.Join(t.TempDir(), "x"), "yaml", 2, 0); err == nil {
		t.Fatal("bad format should fail")
	}
	if err := run("bsbm", "test", 1, filepath.Join(t.TempDir(), "x"), "snapshot", 9, 0); err == nil {
		t.Fatal("bad snapshot version should fail")
	}
}

// -shards writes a sharded snapshot directory whose federation holds the
// same triples as the plain snapshot, and rejects incompatible flags.
func TestRunShardedSnapshot(t *testing.T) {
	dir := t.TempDir()
	plain := filepath.Join(dir, "plain.snap")
	if err := run("bsbm", "test", 1, plain, "snapshot", 2, 0); err != nil {
		t.Fatal(err)
	}
	sharded := filepath.Join(dir, "sharded")
	if err := run("bsbm", "test", 1, sharded, "snapshot", 4, 4); err != nil {
		t.Fatal(err)
	}
	if !store.IsShardedSnapshot(sharded) {
		t.Fatal("output not recognized as a sharded snapshot directory")
	}
	sh, err := store.LoadSharded(sharded, true)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(plain)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ref, err := store.ReadSnapshot(f)
	if err != nil {
		t.Fatal(err)
	}
	if sh.NumShards() != 4 || sh.Len() != ref.Len() {
		t.Fatalf("sharded load: %d shards, %d triples (want 4, %d)", sh.NumShards(), sh.Len(), ref.Len())
	}
	if err := run("bsbm", "test", 1, filepath.Join(dir, "x.nt"), "nt", 2, 4); err == nil {
		t.Fatal("-shards with -format nt should fail")
	}
	if err := run("bsbm", "test", 1, "", "snapshot", 4, 4); err == nil {
		t.Fatal("-shards without -out should fail")
	}
}

// Both snapshot versions load into equivalent stores; v2 is smaller.
func TestRunSnapshotVersions(t *testing.T) {
	dir := t.TempDir()
	v1 := filepath.Join(dir, "v1.snap")
	v2 := filepath.Join(dir, "v2.snap")
	if err := run("bsbm", "test", 1, v1, "snapshot", 1, 0); err != nil {
		t.Fatal(err)
	}
	if err := run("bsbm", "test", 1, v2, "snapshot", 2, 0); err != nil {
		t.Fatal(err)
	}
	s1, err := os.Stat(v1)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := os.Stat(v2)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Size() >= s1.Size() {
		t.Fatalf("v2 snapshot (%d bytes) not smaller than v1 (%d bytes)", s2.Size(), s1.Size())
	}
	load := func(p string) *store.Store {
		f, err := os.Open(p)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		st, err := store.ReadSnapshot(f)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	st1, st2 := load(v1), load(v2)
	if st1.Len() != st2.Len() || st1.Dict().Len() != st2.Dict().Len() {
		t.Fatalf("v1 and v2 loads disagree: %d/%d triples, %d/%d terms",
			st1.Len(), st2.Len(), st1.Dict().Len(), st2.Dict().Len())
	}
}
