package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSubsetOfExperiments(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "e4", "small", ""); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "E4") || !strings.Contains(out, "plan signature") {
		t.Fatalf("E4 output malformed:\n%s", out)
	}
	if strings.Contains(out, "E1:") {
		t.Fatal("unrequested experiment ran")
	}
}

func TestMarkdownOutput(t *testing.T) {
	md := filepath.Join(t.TempDir(), "report.md")
	var buf bytes.Buffer
	if err := run(&buf, "x5", "small", md); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(md)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "| pairing |") {
		t.Fatalf("markdown malformed:\n%s", data)
	}
}

func TestBadScale(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "all", "galactic", ""); err == nil {
		t.Fatal("bad scale should fail")
	}
}
