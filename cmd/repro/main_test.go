package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSubsetOfExperiments(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "e4", "small", "", ""); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "E4") || !strings.Contains(out, "plan signature") {
		t.Fatalf("E4 output malformed:\n%s", out)
	}
	if strings.Contains(out, "E1:") {
		t.Fatal("unrequested experiment ran")
	}
}

func TestMarkdownOutput(t *testing.T) {
	md := filepath.Join(t.TempDir(), "report.md")
	var buf bytes.Buffer
	if err := run(&buf, "x5", "small", md, ""); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(md)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "| pairing |") {
		t.Fatalf("markdown malformed:\n%s", data)
	}
}

func TestBadScale(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "all", "galactic", "", ""); err == nil {
		t.Fatal("bad scale should fail")
	}
}

// The snapshot cache must not change any experiment output: a cold run
// (which writes the cache) and a warm run (which loads it) both match the
// uncached run byte for byte.
func TestCachedRunsMatchUncached(t *testing.T) {
	cache := filepath.Join(t.TempDir(), "snapcache")
	var uncached, cold, warm bytes.Buffer
	if err := run(&uncached, "e4", "small", "", ""); err != nil {
		t.Fatal(err)
	}
	if err := run(&cold, "e4", "small", "", cache); err != nil {
		t.Fatal(err)
	}
	if err := run(&warm, "e4", "small", "", cache); err != nil {
		t.Fatal(err)
	}
	// Strip the preamble lines containing wall-clock timings.
	strip := func(s string) string {
		lines := strings.Split(s, "\n")
		var out []string
		for _, l := range lines {
			if strings.HasPrefix(l, "generating datasets") || strings.HasPrefix(l, "datasets ready") {
				continue
			}
			out = append(out, l)
		}
		return strings.Join(out, "\n")
	}
	if strip(cold.String()) != strip(uncached.String()) {
		t.Fatalf("cold cached run differs from uncached:\n%s\nvs\n%s", cold.String(), uncached.String())
	}
	if strip(warm.String()) != strip(uncached.String()) {
		t.Fatalf("warm cached run differs from uncached:\n%s\nvs\n%s", warm.String(), uncached.String())
	}
	// Both snapshots were written to the cache.
	entries, err := os.ReadDir(cache)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("cache holds %d files, want 2", len(entries))
	}
	// A corrupt cache entry (e.g. an interrupted write) is a cache miss:
	// the run regenerates and repairs it instead of failing.
	broken := filepath.Join(cache, entries[0].Name())
	if err := os.Truncate(broken, 100); err != nil {
		t.Fatal(err)
	}
	var repaired bytes.Buffer
	if err := run(&repaired, "e4", "small", "", cache); err != nil {
		t.Fatalf("corrupt cache entry should regenerate, got: %v", err)
	}
	if strip(repaired.String()) != strip(uncached.String()) {
		t.Fatal("repaired cached run differs from uncached")
	}
	if fi, err := os.Stat(broken); err != nil || fi.Size() <= 100 {
		t.Fatalf("cache entry not rewritten (err %v, size %d)", err, fi.Size())
	}
}
