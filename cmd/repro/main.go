// Command repro regenerates every empirical result in the paper: the E1–E4
// examples, the Section III Cout-correlation claim (X5) and the curated-
// parameters payoff (X6). Each experiment prints a table comparing the
// paper's reported values with our measured ones.
//
// Usage:
//
//	repro                       # all experiments at small scale
//	repro -scale paper          # the paper's 4×100 sampling on ~2M triples
//	repro -exp e2,e3            # a subset
//	repro -md out.md            # additionally write Markdown (EXPERIMENTS.md style)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/report"
)

func main() {
	var (
		expList = flag.String("exp", "all", "comma-separated experiments: e1,e2,e3,e4,x5,x6,x7 or all")
		scale   = flag.String("scale", "small", "scale preset: small | paper")
		md      = flag.String("md", "", "also write Markdown report to this file")
		cache   = flag.String("cache", "", "snapshot cache directory: reuse stores across runs instead of rebuilding them")
	)
	flag.Parse()
	if err := run(os.Stdout, *expList, *scale, *md, *cache); err != nil {
		fmt.Fprintln(os.Stderr, "repro:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, expList, scaleName, mdPath, cacheDir string) error {
	var sc experiments.Scale
	switch scaleName {
	case "small":
		sc = experiments.SmallScale()
	case "paper":
		sc = experiments.PaperScale()
	default:
		return fmt.Errorf("unknown scale %q (want small or paper)", scaleName)
	}
	want := map[string]bool{}
	for _, e := range strings.Split(expList, ",") {
		want[strings.TrimSpace(strings.ToLower(e))] = true
	}
	all := want["all"]

	fmt.Fprintf(w, "generating datasets (scale=%s: BSBM %d products, SNB %d persons)...\n",
		sc.Name, sc.BSBM.Products, sc.SNB.Persons)
	start := time.Now()
	env, err := experiments.NewEnvCached(sc, cacheDir)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "datasets ready: BSBM %d triples, SNB %d triples (%.1fs)\n\n",
		env.BSBM.Len(), env.SNB.Len(), time.Since(start).Seconds())

	var tables []*report.Table
	show := func(t *report.Table, extra ...string) {
		fmt.Fprintln(w, t)
		for _, e := range extra {
			fmt.Fprintln(w, e)
		}
		fmt.Fprintln(w)
		tables = append(tables, t)
	}

	if all || want["e1"] {
		res, err := experiments.E1(env)
		if err != nil {
			return fmt.Errorf("E1: %w", err)
		}
		show(res.Table)
	}
	if all || want["e2"] {
		res, err := experiments.E2(env)
		if err != nil {
			return fmt.Errorf("E2: %w", err)
		}
		show(res.Table)
		show(res.DevTable)
	}
	if all || want["e3"] {
		res, err := experiments.E3(env)
		if err != nil {
			return fmt.Errorf("E3: %w", err)
		}
		show(res.Table, "work-unit distribution (log buckets):", res.Histogram)
	}
	if all || want["e4"] {
		res, err := experiments.E4(env)
		if err != nil {
			return fmt.Errorf("E4: %w", err)
		}
		show(res.Table)
	}
	if all || want["x5"] {
		res, err := experiments.X5(env)
		if err != nil {
			return fmt.Errorf("X5: %w", err)
		}
		show(res.Table)
	}
	if all || want["x6"] {
		res, err := experiments.X6(env)
		if err != nil {
			return fmt.Errorf("X6: %w", err)
		}
		show(res.Table)
	}
	if all || want["x7"] {
		res, err := experiments.X7(env)
		if err != nil {
			return fmt.Errorf("X7: %w", err)
		}
		show(res.Table)
	}

	if mdPath != "" {
		var b strings.Builder
		fmt.Fprintf(&b, "# Reproduction report (scale=%s, seed=%d)\n\n", sc.Name, sc.Seed)
		fmt.Fprintf(&b, "BSBM: %d triples. SNB: %d triples. Generated %s.\n\n",
			env.BSBM.Len(), env.SNB.Len(), time.Now().Format(time.RFC3339))
		for _, t := range tables {
			b.WriteString(t.Markdown())
			b.WriteString("\n")
		}
		if err := os.WriteFile(mdPath, []byte(b.String()), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", mdPath)
	}
	return nil
}
