// Command served runs the concurrent query service over an N-Triples file
// or a binary store snapshot, exposing the JSON HTTP API:
//
//	served -data dataset.snap -addr :8080
//
//	POST /query    {"query": "SELECT ...", "bindings": {"t": "<iri>"}}
//	POST /prepare  {"name": "q4", "query": "SELECT ... %ProductType ..."}
//	POST /execute  {"name": "q4", "bindings": {"ProductType": "<iri>"}}
//	POST /execute  {"name": "q4", "batch": [{...}, {...}]}
//	POST /reload   {"path": "new.snap"}      (requires -allow-reload)
//	POST /update   {"update": "INSERT DATA { ... }"}  (requires -allow-update)
//	GET  /stats
//	GET  /healthz
//
// Templates are parsed once at /prepare; per-binding executions share an
// LRU plan cache, so repeated bindings skip join-order optimization. A
// bounded worker pool rejects excess load with 429. /reload atomically
// swaps in a new snapshot while in-flight queries finish on the old one;
// it loads whatever server-readable path the client names, so it is off by
// default and should only be enabled on trusted listeners.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/exec"
	"repro/internal/service"
)

// pprofMux builds the standard net/http/pprof mux explicitly instead of
// relying on the package's DefaultServeMux side-effect registration, so
// importing it here cannot expose profiles on the API server.
func pprofMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func main() {
	var (
		data    = flag.String("data", "", "N-Triples (.nt) or snapshot file (required)")
		addr    = flag.String("addr", "127.0.0.1:8080", "listen address (bind non-loopback only on trusted networks)")
		workers = flag.Int("workers", 0, "shared CPU budget: max concurrent query executions plus intra-query workers (0 = GOMAXPROCS)")
		queue   = flag.Int("queue", 0, "max queued requests beyond running ones (0 = 4x workers, negative = no queue)")
		par     = flag.Int("parallelism", 1, "per-query intra-query worker ceiling; extra workers are drawn from the shared -workers token pool (1 = serial, paper-experiment semantics)")
		cache   = flag.Int("cache", 0, "plan cache entries (0 = 1024, negative = disabled)")
		exact   = flag.Bool("exact-accounting", false, "drain LIMIT pipelines for paper-exact Cout/Work accounting instead of stopping early")
		engine  = flag.String("engine", "streaming", "execution engine: streaming, materializing or columnar")
		lf      = flag.Bool("leapfrog", false, "lower eligible star BGPs to the worst-case-optimal leapfrog triejoin (requires -engine columnar)")
		reload  = flag.Bool("allow-reload", false, "enable POST /reload (loads any server-readable path a client names)")
		update  = flag.Bool("allow-update", false, "enable POST /update (SPARQL-Update INSERT DATA / DELETE DATA)")
		upRun   = flag.String("updaterun", "", "SPARQL-Update text (or @file) applied once at startup before serving")
		compact = flag.Int("compact-threshold", 0, "pending delta size that triggers auto-compaction on update (0 = adaptive max(1024, base/8), negative = never)")
		heap    = flag.Bool("heap-load", false, "fully deserialize snapshots into heap indexes instead of serving v4 snapshots from an OS file mapping")
		shards  = flag.Int("shards", 0, "coordinator mode: partition the store into this many subject-hash shards and scatter-gather every query across them (results and accounting are identical at any shard count; <= 1 serves a single store)")

		traceSample = flag.Int("trace-sample", 0, "trace every Nth query and retain it in the /trace/recent ring (0 = off)")
		slowMs      = flag.Int("slow-query-ms", 0, "trace every query and retain+log any at or above this many milliseconds (0 = off)")
		traceRecent = flag.Int("trace-recent", 0, "recent-trace ring capacity for /trace/recent (0 = 64)")
		pprofAddr   = flag.String("pprof-addr", "", "serve net/http/pprof on this separate address (off when empty; bind loopback only)")
	)
	flag.Parse()
	if *data == "" {
		fmt.Fprintln(os.Stderr, "served: -data is required")
		os.Exit(2)
	}
	opts := service.DefaultOptions()
	opts.Workers = *workers
	opts.QueueDepth = *queue
	opts.Parallelism = *par
	opts.PlanCacheSize = *cache
	opts.AllowReload = *reload
	opts.AllowUpdate = *update
	opts.CompactThreshold = *compact
	opts.HeapLoad = *heap
	opts.Shards = *shards
	opts.TraceSample = *traceSample
	opts.SlowQueryMs = *slowMs
	opts.TraceRecent = *traceRecent
	if *slowMs > 0 {
		opts.SlowLog = os.Stderr
	}
	if *exact {
		opts.Exec = exec.Options{}
	}
	mode, err := service.ParseEngineMode(*engine)
	if err != nil {
		fmt.Fprintln(os.Stderr, "served:", err)
		os.Exit(2)
	}
	opts.Exec.Mode = mode
	if *lf && mode != exec.Columnar {
		fmt.Fprintln(os.Stderr, "served: -leapfrog requires -engine columnar")
		os.Exit(2)
	}
	opts.Exec.Leapfrog = *lf
	svc, err := service.Load(*data, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "served:", err)
		os.Exit(1)
	}
	if *upRun != "" {
		src := *upRun
		if strings.HasPrefix(src, "@") {
			data, err := os.ReadFile(src[1:])
			if err != nil {
				fmt.Fprintln(os.Stderr, "served:", err)
				os.Exit(1)
			}
			src = string(data)
		}
		res, err := svc.Update(context.Background(), src)
		if err != nil {
			fmt.Fprintln(os.Stderr, "served: -updaterun:", err)
			os.Exit(1)
		}
		log.Printf("served: startup update applied (+%d -%d named triples, %d pending, compacted=%v)",
			res.Inserted, res.Deleted, res.PendingInserts+res.PendingDeletes, res.Compacted)
	}
	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "served:", err)
		os.Exit(1)
	}
	log.Printf("served: %d triples from %s, listening on %s", svc.Store().Len(), *data, l.Addr())
	if *pprofAddr != "" {
		pl, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "served: -pprof-addr:", err)
			os.Exit(1)
		}
		log.Printf("served: pprof on %s", pl.Addr())
		// Dedicated mux and listener: pprof never leaks onto the API
		// address, and the gate is simply not passing the flag.
		go func() { _ = http.Serve(pl, pprofMux()) }()
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := serve(ctx, l, svc); err != nil {
		fmt.Fprintln(os.Stderr, "served:", err)
		os.Exit(1)
	}
}

// serve runs the HTTP server on l until ctx is cancelled, then shuts down
// gracefully (in-flight requests get up to 5s to finish). Factored out of
// main so tests can drive it with a loopback listener.
func serve(ctx context.Context, l net.Listener, svc *service.Service) error {
	srv := &http.Server{Handler: svc.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(l) }()
	select {
	case <-ctx.Done():
		shCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		return srv.Shutdown(shCtx)
	case err := <-errc:
		if err == http.ErrServerClosed {
			return nil
		}
		return err
	}
}
