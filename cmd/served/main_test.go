package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/service"
)

// scrapeMetrics fetches and parses a Prometheus text exposition without a
// client library: samples maps "name" or `name{labels}` to its value,
// types maps metric name to its # TYPE. The parser also enforces the
// basic format invariants CI relies on: every sample belongs to a typed
// metric family, and histogram buckets are cumulative (non-decreasing in
// emission order per series prefix).
func scrapeMetrics(t *testing.T, url string) (samples map[string]float64, types map[string]string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("%s status %d", url, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("metrics content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	samples = map[string]float64{}
	types = map[string]string{}
	lastBucket := map[string]float64{} // series prefix -> previous cumulative count
	for ln, line := range strings.Split(string(body), "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Fatalf("line %d: malformed TYPE: %q", ln+1, line)
			}
			types[f[2]] = f[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("line %d: malformed sample: %q", ln+1, line)
		}
		key, raw := line[:sp], line[sp+1:]
		v, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			t.Fatalf("line %d: bad value %q: %v", ln+1, raw, err)
		}
		samples[key] = v
		name := key
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if strings.HasSuffix(name, suffix) && types[strings.TrimSuffix(name, suffix)] == "histogram" {
				base = strings.TrimSuffix(name, suffix)
			}
		}
		if _, ok := types[base]; !ok {
			t.Fatalf("line %d: sample %s has no # TYPE header", ln+1, key)
		}
		if strings.HasSuffix(name, "_bucket") {
			prefix := key[:strings.LastIndexByte(key, ',')+1]
			if v < lastBucket[prefix] {
				t.Fatalf("line %d: bucket %s not cumulative: %v after %v", ln+1, key, v, lastBucket[prefix])
			}
			lastBucket[prefix] = v
		}
	}
	return samples, types
}

func TestServeEndToEnd(t *testing.T) {
	path := filepath.Join(t.TempDir(), "data.nt")
	nt := `<http://x/a> <http://x/knows> <http://x/b> .
<http://x/a> <http://x/knows> <http://x/c> .
<http://x/b> <http://x/knows> <http://x/c> .
`
	if err := os.WriteFile(path, []byte(nt), 0o644); err != nil {
		t.Fatal(err)
	}
	svc, err := service.Load(path, service.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- serve(ctx, l, svc) }()
	base := "http://" + l.Addr().String()

	// Health.
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}

	// Prepare + execute round trip.
	post := func(url, body string) (*http.Response, map[string]any) {
		t.Helper()
		resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var m map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			t.Fatal(err)
		}
		return resp, m
	}
	resp, _ = post(base+"/prepare", `{"name":"f","query":"SELECT ?x WHERE { %who <http://x/knows> ?x . } ORDER BY ?x"}`)
	if resp.StatusCode != 200 {
		t.Fatalf("prepare status %d", resp.StatusCode)
	}
	resp, m := post(base+"/execute", `{"name":"f","bindings":{"who":"<http://x/a>"}}`)
	if resp.StatusCode != 200 {
		t.Fatalf("execute status %d", resp.StatusCode)
	}
	if rc, ok := m["row_count"].(float64); !ok || rc != 2 {
		t.Fatalf("execute response = %v", m)
	}

	// EXPLAIN ANALYZE over HTTP: the response carries the rendered listing
	// and span tree, and the run is retained for /trace/recent.
	resp, m = post(base+"/execute", `{"name":"f","bindings":{"who":"<http://x/a>"},"explain":"analyze"}`)
	if resp.StatusCode != 200 {
		t.Fatalf("explain=analyze status %d", resp.StatusCode)
	}
	if ea, ok := m["explain_analyze"].(string); !ok || !strings.Contains(ea, "actual:") {
		t.Fatalf("explain_analyze missing or unrendered: %v", m["explain_analyze"])
	}
	if _, ok := m["spans"].(map[string]any); !ok {
		t.Fatalf("spans missing from analyze response: %v", m)
	}

	// Scrape GET /metrics and check the exposition with a minimal parser.
	samples, types := scrapeMetrics(t, base+"/metrics")
	if got := samples["repro_store_triples"]; got != 3 {
		t.Fatalf("repro_store_triples = %v, want 3", got)
	}
	if got := samples[`repro_requests_total{endpoint="execute"}`]; got != 2 {
		t.Fatalf("execute request counter = %v, want 2", got)
	}
	if got := samples["repro_traces_total"]; got < 1 {
		t.Fatalf("repro_traces_total = %v, want >= 1", got)
	}
	for name, typ := range map[string]string{
		"repro_store_triples":            "gauge",
		"repro_requests_total":           "counter",
		"repro_request_latency_seconds":  "histogram",
		"repro_plan_cache_hits_total":    "counter",
		"repro_traces_retained_total":    "counter",
		"repro_pool_rejected_total":      "counter",
		"repro_parallel_queries_total":   "counter",
		"repro_kernel_batches_total":     "counter",
		"repro_algebra_union_rows_total": "counter",
	} {
		if types[name] != typ {
			t.Fatalf("metric %s has TYPE %q, want %q", name, types[name], typ)
		}
	}
	// Histogram sanity: cumulative buckets end at +Inf == _count.
	inf := samples[`repro_request_latency_seconds_bucket{endpoint="execute",le="+Inf"}`]
	count := samples[`repro_request_latency_seconds_count{endpoint="execute"}`]
	if inf != 2 || count != 2 {
		t.Fatalf("execute latency histogram: +Inf bucket %v, _count %v, want 2 each", inf, count)
	}

	// GET /trace/recent returns the analyze run, span tree included.
	tresp, err := http.Get(base + "/trace/recent?n=5")
	if err != nil {
		t.Fatal(err)
	}
	var recent struct {
		Total  uint64           `json:"total"`
		Traces []map[string]any `json:"traces"`
	}
	if err := json.NewDecoder(tresp.Body).Decode(&recent); err != nil {
		t.Fatal(err)
	}
	tresp.Body.Close()
	if tresp.StatusCode != 200 || recent.Total < 1 || len(recent.Traces) < 1 {
		t.Fatalf("/trace/recent status %d payload %+v", tresp.StatusCode, recent)
	}
	tr := recent.Traces[0]
	if tr["endpoint"] != "execute" || tr["template"] != "f" {
		t.Fatalf("trace provenance = %v", tr)
	}
	if _, ok := tr["spans"].(map[string]any); !ok {
		t.Fatalf("trace has no span tree: %v", tr)
	}
	// CI uploads a sample trace as a build artifact when asked.
	if out := os.Getenv("TRACE_ARTIFACT_OUT"); out != "" {
		data, err := json.MarshalIndent(recent, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(out, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	// Graceful shutdown.
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serve did not shut down")
	}
	if _, err := http.Get(fmt.Sprintf("%s/healthz", base)); err == nil {
		t.Fatal("server still reachable after shutdown")
	}
}
