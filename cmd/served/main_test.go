package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/service"
)

func TestServeEndToEnd(t *testing.T) {
	path := filepath.Join(t.TempDir(), "data.nt")
	nt := `<http://x/a> <http://x/knows> <http://x/b> .
<http://x/a> <http://x/knows> <http://x/c> .
<http://x/b> <http://x/knows> <http://x/c> .
`
	if err := os.WriteFile(path, []byte(nt), 0o644); err != nil {
		t.Fatal(err)
	}
	svc, err := service.Load(path, service.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- serve(ctx, l, svc) }()
	base := "http://" + l.Addr().String()

	// Health.
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}

	// Prepare + execute round trip.
	post := func(url, body string) (*http.Response, map[string]any) {
		t.Helper()
		resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var m map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			t.Fatal(err)
		}
		return resp, m
	}
	resp, _ = post(base+"/prepare", `{"name":"f","query":"SELECT ?x WHERE { %who <http://x/knows> ?x . } ORDER BY ?x"}`)
	if resp.StatusCode != 200 {
		t.Fatalf("prepare status %d", resp.StatusCode)
	}
	resp, m := post(base+"/execute", `{"name":"f","bindings":{"who":"<http://x/a>"}}`)
	if resp.StatusCode != 200 {
		t.Fatalf("execute status %d", resp.StatusCode)
	}
	if rc, ok := m["row_count"].(float64); !ok || rc != 2 {
		t.Fatalf("execute response = %v", m)
	}

	// Graceful shutdown.
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serve did not shut down")
	}
	if _, err := http.Get(fmt.Sprintf("%s/healthz", base)); err == nil {
		t.Fatal("server still reachable after shutdown")
	}
}
