// Command benchrun executes a query-template workload and prints the
// aggregate tables the paper reports: per-group q10/median/q90/average
// under uniform sampling, or per-class aggregates under curated sampling.
//
// Usage:
//
//	benchrun -dataset snb  -query q2 -mode uniform -groups 4 -n 100
//	benchrun -dataset bsbm -query q4 -mode curated -n 50
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/bsbm"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/report"
	"repro/internal/snb"
	"repro/internal/sparql"
	"repro/internal/store"
	"repro/internal/workload"
)

func main() {
	var (
		dataset = flag.String("dataset", "bsbm", "dataset: bsbm | snb")
		scale   = flag.String("scale", "test", "scale preset: test | default")
		query   = flag.String("query", "q4", "query template: bsbm q1|q2|q3|q4|q5|q6, snb q1|q2|q3|q4 (q5/q6 and snb q4 use the compositional algebra and need a non-materializing engine)")
		mode    = flag.String("mode", "uniform", "sampling mode: uniform | curated")
		groups  = flag.Int("groups", 4, "independent binding groups (uniform mode)")
		n       = flag.Int("n", 100, "bindings per group / per class")
		seed    = flag.Int64("seed", 1, "seed")
		greedy  = flag.Bool("greedy", false, "use the greedy optimizer instead of DP")
		merge   = flag.Bool("mergejoin", false, "use sort-merge joins for interior joins")
		mat     = flag.Bool("materialize", false, "use the materializing engine instead of the streaming one")
		push    = flag.Bool("pushfilters", false, "push single-variable filters below the joins (streaming engine)")
		par     = flag.Int("parallelism", 1, "intra-query workers for morsel-driven parallel pipelines (1 = serial; measured work/Cout stay bit-identical at any setting)")
		snap    = flag.String("snapshot", "", "load the store from this snapshot or N-Triples file instead of generating")
	)
	flag.Parse()
	if err := run(os.Stdout, *dataset, *scale, *query, *mode, *snap, *groups, *n, *seed, *par, *greedy, *merge, *mat, *push); err != nil {
		fmt.Fprintln(os.Stderr, "benchrun:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, dataset, scale, query, mode, snapshot string, groups, n int, seed int64, parallelism int, greedy, merge, materialize, pushFilters bool) error {
	st, tmpl, name, err := load(dataset, scale, query, seed, snapshot)
	if err != nil {
		return err
	}
	opts := exec.Options{PushFilters: pushFilters, Parallelism: parallelism}
	if merge {
		opts.Join = exec.SortMergeJoin
	}
	if materialize {
		opts.Mode = exec.Materializing
	}
	r := &workload.Runner{Store: st, Opts: opts, UseGreedy: greedy}
	dom, err := core.ExtractDomain(tmpl, st)
	if err != nil {
		return err
	}
	switch mode {
	case "uniform":
		res, err := r.GroupStability(tmpl, core.NewUniformSampler(dom, seed), groups, n, workload.MetricWork)
		if err != nil {
			return err
		}
		headers := []string{"Time (work units)"}
		for g := range res.Groups {
			headers = append(headers, fmt.Sprintf("Group %d", g+1))
		}
		t := report.NewTable(fmt.Sprintf("%s %s: %d uniform groups × %d bindings", dataset, name, groups, n), headers...)
		addRow := func(rowName string, pick func(workload.GroupResult) float64) {
			row := []string{rowName}
			for _, g := range res.Groups {
				row = append(row, report.FormatFloat(pick(g)))
			}
			t.Add(row...)
		}
		addRow("q10", func(g workload.GroupResult) float64 { return g.Summary.Q10 })
		addRow("Median", func(g workload.GroupResult) float64 { return g.Summary.Median })
		addRow("q90", func(g workload.GroupResult) float64 { return g.Summary.Q90 })
		addRow("Average", func(g workload.GroupResult) float64 { return g.Summary.Mean })
		fmt.Fprint(w, t)
		fmt.Fprintf(w, "\nmax relative deviation: avg %.0f%%  median %.0f%%  q10 %.0f%%  q90 %.0f%%\n",
			res.AvgDeviation*100, res.MedianDeviation*100, res.Q10Deviation*100, res.Q90Deviation*100)
		return nil
	case "curated":
		a, err := core.Analyze(tmpl, st, dom, core.AnalyzeOptions{Seed: seed})
		if err != nil {
			return err
		}
		cl := core.Cluster(a, core.ClusterOptions{MinClassSize: 2, MergeSmall: true})
		fmt.Fprint(w, cl.Summary())
		t := report.NewTable("per-class aggregates (work units)",
			"class", "n", "min", "median", "mean", "q95", "max", "#plans")
		for _, cq := range core.Curate(name, cl, seed) {
			ms, err := r.Run(tmpl, cq.Sampler.Sample(n))
			if err != nil {
				return err
			}
			s := workload.Summarize(ms, workload.MetricWork)
			t.Addf(cq.Name, s.N, s.Min, s.Median, s.Mean, s.Q95, s.Max,
				fmt.Sprintf("%d", len(workload.DistinctPlans(ms))))
		}
		fmt.Fprint(w, t)
		return nil
	default:
		return fmt.Errorf("unknown mode %q", mode)
	}
}

// load resolves the store and query template. With a snapshot path the
// store is loaded instead of regenerated (v4 snapshots are served straight
// from an OS file mapping, older versions deserialize through the shared
// parallel build path), which skips dataset generation entirely; the
// dataset flag still selects which template family the query name refers
// to.
func load(dataset, scale, query string, seed int64, snapshot string) (*store.Store, *sparql.Query, string, error) {
	var st *store.Store
	if snapshot != "" {
		var err error
		st, err = store.LoadAnyMapped(snapshot)
		if err != nil {
			return nil, nil, "", err
		}
	}
	switch dataset {
	case "bsbm":
		if st == nil {
			cfg := bsbm.TestConfig()
			if scale == "default" {
				cfg = bsbm.DefaultConfig()
			}
			cfg.Seed = seed
			var err error
			st, _, err = bsbm.BuildStore(cfg)
			if err != nil {
				return nil, nil, "", err
			}
		}
		switch query {
		case "q1":
			return st, bsbm.Q1(), "Q1", nil
		case "q2":
			return st, bsbm.Q2(), "Q2", nil
		case "q3":
			return st, bsbm.Q3(), "Q3", nil
		case "q4":
			return st, bsbm.Q4(), "Q4", nil
		case "q5":
			return st, bsbm.Q5(), "Q5", nil
		case "q6":
			return st, bsbm.Q6(), "Q6", nil
		}
		return nil, nil, "", fmt.Errorf("unknown bsbm query %q", query)
	case "snb":
		if st == nil {
			cfg := snb.TestConfig()
			if scale == "default" {
				cfg = snb.DefaultConfig()
			}
			cfg.Seed = seed
			var err error
			st, _, err = snb.BuildStore(cfg)
			if err != nil {
				return nil, nil, "", err
			}
		}
		switch query {
		case "q1":
			return st, snb.Q1(), "Q1", nil
		case "q2":
			return st, snb.Q2(), "Q2", nil
		case "q3":
			return st, snb.Q3(), "Q3", nil
		case "q4":
			return st, snb.Q4(), "Q4", nil
		}
		return nil, nil, "", fmt.Errorf("unknown snb query %q", query)
	}
	return nil, nil, "", fmt.Errorf("unknown dataset %q", dataset)
}
