package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/bsbm"
)

func TestUniformTable(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "bsbm", "test", "q4", "uniform", "", 3, 10, 1, 1, false, false, false, false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Group 1", "Group 3", "q10", "Median", "q90", "Average", "max relative deviation"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestCuratedTable(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "bsbm", "test", "q4", "curated", "", 2, 10, 1, 1, false, false, false, false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Q4a") || !strings.Contains(out, "#plans") {
		t.Fatalf("curated output malformed:\n%s", out)
	}
}

func TestGreedyAndMergeFlags(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "snb", "test", "q2", "uniform", "", 2, 5, 1, 1, true, true, false, false); err != nil {
		t.Fatal(err)
	}
}

func TestBadArgs(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "bsbm", "test", "q4", "nope", "", 2, 5, 1, 1, false, false, false, false); err == nil {
		t.Error("bad mode should fail")
	}
	if err := run(&buf, "marbles", "test", "q4", "uniform", "", 2, 5, 1, 1, false, false, false, false); err == nil {
		t.Error("bad dataset should fail")
	}
	if err := run(&buf, "bsbm", "test", "q4", "uniform", "", 1, 5, 1, 1, false, false, false, false); err == nil {
		t.Error("single group should fail")
	}
}

func TestEngineFlags(t *testing.T) {
	// Materializing engine.
	var buf bytes.Buffer
	if err := run(&buf, "bsbm", "test", "q1", "uniform", "", 2, 5, 1, 1, false, false, true, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Group 1") {
		t.Fatalf("output wrong:\n%s", buf.String())
	}
	// Streaming with filter pushdown (snb q3 has a FILTER).
	buf.Reset()
	if err := run(&buf, "snb", "test", "q3", "uniform", "", 2, 5, 1, 1, false, false, false, true); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Group 1") {
		t.Fatalf("output wrong:\n%s", buf.String())
	}
}

// A workload run over a snapshot-loaded store must print byte-identical
// tables to the same run over an in-process generated store.
func TestSnapshotLoadedStoreMatchesGenerated(t *testing.T) {
	cfg := bsbm.TestConfig()
	cfg.Seed = 1
	st, _, err := bsbm.BuildStore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	snap := filepath.Join(t.TempDir(), "bsbm.snap")
	f, err := os.Create(snap)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.WriteSnapshot(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	var generated, loaded bytes.Buffer
	if err := run(&generated, "bsbm", "test", "q4", "uniform", "", 2, 8, 1, 1, false, false, false, false); err != nil {
		t.Fatal(err)
	}
	if err := run(&loaded, "bsbm", "test", "q4", "uniform", snap, 2, 8, 1, 1, false, false, false, false); err != nil {
		t.Fatal(err)
	}
	if generated.String() != loaded.String() {
		t.Fatalf("snapshot-loaded output differs:\n--- generated ---\n%s\n--- loaded ---\n%s",
			generated.String(), loaded.String())
	}
	if err := run(&loaded, "bsbm", "test", "q4", "uniform", "/nonexistent.snap", 2, 8, 1, 1, false, false, false, false); err == nil {
		t.Fatal("missing snapshot file should fail")
	}
}

// TestParallelismFlagOutputIdentical: the aggregate tables benchrun prints
// are derived from measured work units, which are bit-identical at any
// -parallelism; the whole report must therefore match the serial run's.
func TestParallelismFlagOutputIdentical(t *testing.T) {
	var serial, parallel bytes.Buffer
	if err := run(&serial, "bsbm", "test", "q4", "uniform", "", 2, 8, 1, 1, false, false, false, false); err != nil {
		t.Fatal(err)
	}
	if err := run(&parallel, "bsbm", "test", "q4", "uniform", "", 2, 8, 1, 8, false, false, false, false); err != nil {
		t.Fatal(err)
	}
	if serial.String() != parallel.String() {
		t.Fatalf("-parallelism 8 changed the report:\nserial:\n%s\nparallel:\n%s", serial.String(), parallel.String())
	}
}
