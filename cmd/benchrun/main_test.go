package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestUniformTable(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "bsbm", "test", "q4", "uniform", 3, 10, 1, false, false, false, false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Group 1", "Group 3", "q10", "Median", "q90", "Average", "max relative deviation"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestCuratedTable(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "bsbm", "test", "q4", "curated", 2, 10, 1, false, false, false, false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Q4a") || !strings.Contains(out, "#plans") {
		t.Fatalf("curated output malformed:\n%s", out)
	}
}

func TestGreedyAndMergeFlags(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "snb", "test", "q2", "uniform", 2, 5, 1, true, true, false, false); err != nil {
		t.Fatal(err)
	}
}

func TestBadArgs(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, "bsbm", "test", "q4", "nope", 2, 5, 1, false, false, false, false); err == nil {
		t.Error("bad mode should fail")
	}
	if err := run(&buf, "marbles", "test", "q4", "uniform", 2, 5, 1, false, false, false, false); err == nil {
		t.Error("bad dataset should fail")
	}
	if err := run(&buf, "bsbm", "test", "q4", "uniform", 1, 5, 1, false, false, false, false); err == nil {
		t.Error("single group should fail")
	}
}

func TestEngineFlags(t *testing.T) {
	// Materializing engine.
	var buf bytes.Buffer
	if err := run(&buf, "bsbm", "test", "q1", "uniform", 2, 5, 1, false, false, true, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Group 1") {
		t.Fatalf("output wrong:\n%s", buf.String())
	}
	// Streaming with filter pushdown (snb q3 has a FILTER).
	buf.Reset()
	if err := run(&buf, "snb", "test", "q3", "uniform", 2, 5, 1, false, false, false, true); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Group 1") {
		t.Fatalf("output wrong:\n%s", buf.String())
	}
}
