// Package repro is a full reproduction of "How to generate query parameters
// in RDF benchmarks?" (Gubichev, Angles, Boncz — ICDE Workshops 2014).
//
// The repository contains, from the ground up: an RDF data model and
// N-Triples codec (internal/rdf), dictionary encoding (internal/dict), a
// hexastore-style triple store with exact pattern cardinalities
// (internal/store), a SPARQL-subset parser with %parameter templates
// (internal/sparql), a Cout-based dynamic-programming query optimizer
// (internal/plan), an executor with exact intermediate-result accounting
// (internal/exec), scaled-down BSBM and LDBC-SNB/S3G2 data generators
// (internal/bsbm, internal/snb), statistics including Kolmogorov–Smirnov
// and Pearson (internal/stats), and the paper's contribution — parameter
// domain extraction, per-binding plan analysis, clustering into parameter
// classes and curated samplers (internal/core).
//
// bench_test.go in this package regenerates every empirical result of the
// paper as a testing.B benchmark; cmd/repro prints them as tables.
package repro
