// Package repro is a full reproduction of "How to generate query parameters
// in RDF benchmarks?" (Gubichev, Angles, Boncz — ICDE Workshops 2014).
//
// The repository contains, from the ground up: an RDF data model and
// N-Triples codec (internal/rdf), dictionary encoding (internal/dict), a
// hexastore-style triple store with exact pattern cardinalities and
// zero-copy batch range scans (internal/store), a SPARQL-subset parser
// with %parameter templates (internal/sparql), a Cout-based
// dynamic-programming query optimizer and a physical-plan lowering from
// logical join trees to operator trees (internal/plan), a streaming
// iterator executor with exact intermediate-result accounting plus the
// materializing reference engine it is golden-tested against
// (internal/exec), scaled-down BSBM and LDBC-SNB/S3G2 data generators
// (internal/bsbm, internal/snb), statistics including Kolmogorov–Smirnov
// and Pearson (internal/stats), and the paper's contribution — parameter
// domain extraction, parallel per-binding plan analysis, clustering into
// parameter classes and curated samplers (internal/core).
//
// Query execution flows logical plan → physical plan → operator
// execution: plan.Compile and plan.Optimize produce the Cout-optimal join
// tree, plan.Lower fixes the physical operator choices (index scans,
// index-nested-loop probes, hash/merge/cross joins, filter placement), and
// exec runs the operator tree either streaming (batch-pull iterators,
// default) or fully materializing — both with bit-identical results and
// Cout/Work/Scanned accounting. See ARCHITECTURE.md for the layer map and
// where each counter is maintained.
//
// Stores persist as binary snapshots, auto-detected by their 8-byte magic.
// The version compatibility matrix:
//
//	version  magic     layout                      read                 mmap-serve
//	v1       RDFSNAP1  fixed-width, SPO stream     ReadSnapshot         no
//	v2       RDFSNAP2  uvarint + delta-encoded     ReadSnapshot         no
//	v3       RDFSNAP3  v2 + delta overlay streams  ReadSnapshot         no
//	v4       RDFSNAP4  page-aligned sections,      ReadSnapshot (full   yes:
//	                   offset-table dictionary,    revalidation and     store.OpenMapped,
//	                   all six indexes + stats     index rebuild)       O(1), zero-copy
//
// All versions remain writable through WriteSnapshotVersion and readable
// through ReadSnapshot/LoadAny; store.LoadAnyMapped additionally serves v4
// files straight from an OS file mapping (the cmd/served default, see its
// -heap-load flag). Loading the same data from any version yields an
// identical store.
//
// On top of the one-shot pipeline, internal/service hosts a long-lived
// concurrent query service — prepared templates, a shared LRU plan cache,
// bounded-worker admission control and hot snapshot swaps — exposed as a
// JSON HTTP API by cmd/served.
//
// bench_test.go in this package regenerates every empirical result of the
// paper as a testing.B benchmark (plus streaming-vs-materializing and
// serial-vs-parallel comparisons); cmd/repro prints them as tables.
package repro
