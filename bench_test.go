package repro

// One benchmark per table/figure of the paper's evaluation (the examples
// E1–E4 and the Section III claims), plus micro-benchmarks of the engine
// and ablation benches for the design choices called out in DESIGN.md.
//
// The experiment benches report the paper's headline numbers as custom
// metrics (var/mean², KS distance, deviation fractions, plan counts,
// Pearson r) so `go test -bench=.` regenerates the entire evaluation.

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"

	"repro/internal/bsbm"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/experiments"
	"repro/internal/plan"
	"repro/internal/service"
	"repro/internal/snb"
	"repro/internal/sparql"
	"repro/internal/stats"
	"repro/internal/store"
	"repro/internal/workload"
)

var (
	benchOnce sync.Once
	benchEnv  *experiments.Env
	benchErr  error
)

func env(b *testing.B) *experiments.Env {
	b.Helper()
	benchOnce.Do(func() {
		benchEnv, benchErr = experiments.NewEnv(experiments.SmallScale())
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchEnv
}

// --- Paper experiments -----------------------------------------------------

// BenchmarkE1VarianceQ4 regenerates E1a: BSBM-BI Q4 runtime variance under
// uniform sampling (paper: variance 674e6 ms², i.e. var/mean² ≫ 1).
func BenchmarkE1VarianceQ4(b *testing.B) {
	e := env(b)
	var last *experiments.E1Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.E1(e)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.Q4VarOverMeanSq, "var/mean2")
	b.ReportMetric(last.Q4RuntimeVarianceMs2, "runtime-var-ms2")
}

// BenchmarkE1NormalityQ2 regenerates E1b: BSBM-BI Q2's KS distance from a
// fitted normal distribution (paper: 0.89 with p ≈ 1e-21).
func BenchmarkE1NormalityQ2(b *testing.B) {
	e := env(b)
	var last *experiments.E1Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.E1(e)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.Q2KS.D, "KS-distance")
	b.ReportMetric(last.Q2KS.PValue, "KS-p")
}

// BenchmarkE2StabilityQ2 regenerates the E2 table: LDBC Q2 over independent
// uniform groups (paper: average deviates up to 40%, percentiles up to
// 100%).
func BenchmarkE2StabilityQ2(b *testing.B) {
	e := env(b)
	var last *experiments.E2Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.E2(e)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.SNBQ2.AvgDeviation*100, "snb-avg-dev-%")
	b.ReportMetric(last.SNBQ2.MedianDeviation*100, "snb-med-dev-%")
	b.ReportMetric(last.BSBMQ2.AvgDeviation*100, "bsbm-avg-dev-%")
}

// BenchmarkE3DistributionQ4 regenerates the E3 table: BSBM-BI Q4's bimodal
// runtime distribution (paper: mean/median > 10, q95/median ≈ 50).
func BenchmarkE3DistributionQ4(b *testing.B) {
	e := env(b)
	var last *experiments.E3Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.E3(e)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.MeanMedianRatio, "mean/median")
	b.ReportMetric(last.GapRatio, "mode-gap-x")
	b.ReportMetric(last.FracNearMean*100, "near-mean-%")
}

// BenchmarkE4PlanVariability regenerates E4: the number of distinct optimal
// plans for LDBC Q3 across country pairs (paper: at least 2 — start from
// friends vs start from visitors).
func BenchmarkE4PlanVariability(b *testing.B) {
	e := env(b)
	var last *experiments.E4Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.E4(e)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(float64(last.DistinctPlans), "distinct-plans")
	b.ReportMetric(float64(last.PopularCovisit), "popular-covisit")
	b.ReportMetric(float64(last.RareCovisit), "rare-covisit")
}

// BenchmarkX5CoutCorrelation regenerates the Section III claim: Pearson
// correlation between Cout and runtime (paper: ~0.85).
func BenchmarkX5CoutCorrelation(b *testing.B) {
	e := env(b)
	var last *experiments.X5Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.X5(e)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.PearsonWork, "pearson-work")
	b.ReportMetric(last.PearsonRuntime, "pearson-runtime")
}

// BenchmarkX6CuratedStability regenerates the payoff experiment: curated
// classes restore P1–P3 (within-class var/mean² collapses, one plan per
// class).
func BenchmarkX6CuratedStability(b *testing.B) {
	e := env(b)
	var last *experiments.X6Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.X6(e)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.UniformVarOverMeanSq, "uniform-var/mean2")
	b.ReportMetric(last.MeanClassVarRatio(), "class-var-ratio")
	b.ReportMetric(float64(len(last.Classes)), "classes")
}

// --- Ablations --------------------------------------------------------------

// BenchmarkAblationGreedyVsDP compares the greedy join ordering against
// exact DP across the Q4 domain: how often greedy picks a suboptimal plan
// and how much cost it adds.
func BenchmarkAblationGreedyVsDP(b *testing.B) {
	e := env(b)
	q4 := bsbm.Q4()
	dom, err := core.ExtractDomain(q4, e.BSBM)
	if err != nil {
		b.Fatal(err)
	}
	var worstRatio, mismatches, total float64
	for i := 0; i < b.N; i++ {
		worstRatio, mismatches, total = 1, 0, 0
		dp, err := core.Analyze(q4, e.BSBM, dom, core.AnalyzeOptions{})
		if err != nil {
			b.Fatal(err)
		}
		gr, err := core.Analyze(q4, e.BSBM, dom, core.AnalyzeOptions{UseGreedy: true})
		if err != nil {
			b.Fatal(err)
		}
		for j := range dp.Points {
			total++
			if gr.Points[j].Signature != dp.Points[j].Signature {
				mismatches++
			}
			if dp.Points[j].Cost > 0 {
				r := gr.Points[j].Cost / dp.Points[j].Cost
				if r > worstRatio {
					worstRatio = r
				}
			}
		}
	}
	b.ReportMetric(mismatches/total*100, "plan-mismatch-%")
	b.ReportMetric(worstRatio, "worst-cost-ratio")
}

// BenchmarkAblationEpsilon sweeps the cost-band width ε and reports the
// class-count sensitivity for Q4 (DESIGN.md design choice: banding).
func BenchmarkAblationEpsilon(b *testing.B) {
	e := env(b)
	q4 := bsbm.Q4()
	a, err := core.Analyze(q4, e.BSBM, nil, core.AnalyzeOptions{})
	if err != nil {
		b.Fatal(err)
	}
	var n025, n100, n300 int
	for i := 0; i < b.N; i++ {
		n025 = len(core.Cluster(a, core.ClusterOptions{Epsilon: 0.25}).Classes)
		n100 = len(core.Cluster(a, core.ClusterOptions{Epsilon: 1.0}).Classes)
		n300 = len(core.Cluster(a, core.ClusterOptions{Epsilon: 3.0}).Classes)
	}
	b.ReportMetric(float64(n025), "classes-eps0.25")
	b.ReportMetric(float64(n100), "classes-eps1.0")
	b.ReportMetric(float64(n300), "classes-eps3.0")
}

// BenchmarkAblationJoinOperator checks that the Cout-runtime correlation
// survives the physical join choice (hash vs sort-merge for interior
// joins).
func BenchmarkAblationJoinOperator(b *testing.B) {
	e := env(b)
	q2 := snb.Q2()
	dom, err := core.ExtractDomain(q2, e.SNB)
	if err != nil {
		b.Fatal(err)
	}
	sampler := core.NewUniformSampler(dom, 5)
	bindings := sampler.Sample(60)
	var rHash, rMerge float64
	for i := 0; i < b.N; i++ {
		for _, alg := range []exec.JoinAlgorithm{exec.HashJoin, exec.SortMergeJoin} {
			r := &workload.Runner{Store: e.SNB, Opts: exec.Options{Join: alg}}
			ms, err := r.Run(q2, bindings)
			if err != nil {
				b.Fatal(err)
			}
			p := stats.Pearson(workload.Values(ms, workload.MetricCout), workload.Values(ms, workload.MetricWork))
			if alg == exec.HashJoin {
				rHash = p
			} else {
				rMerge = p
			}
		}
	}
	b.ReportMetric(rHash, "pearson-hash")
	b.ReportMetric(rMerge, "pearson-merge")
}

// BenchmarkAblationEstimatedCout measures how well the optimizer's
// estimated Cout predicts the measured Cout across the Q4 domain —
// clustering on estimates is only sound if this correlation is high.
func BenchmarkAblationEstimatedCout(b *testing.B) {
	e := env(b)
	q4 := bsbm.Q4()
	dom, err := core.ExtractDomain(q4, e.BSBM)
	if err != nil {
		b.Fatal(err)
	}
	r := &workload.Runner{Store: e.BSBM, Opts: exec.Options{}}
	bindings := core.NewUniformSampler(dom, 6).Sample(60)
	var pearson float64
	for i := 0; i < b.N; i++ {
		ms, err := r.Run(q4, bindings)
		if err != nil {
			b.Fatal(err)
		}
		var est, meas []float64
		for _, m := range ms {
			est = append(est, m.EstCost)
			meas = append(meas, m.Cout)
		}
		pearson = stats.Pearson(est, meas)
	}
	b.ReportMetric(pearson, "pearson-est-meas")
}

// BenchmarkAblationSamplingEstimator compares the independence-assumption
// estimator against the correlation-aware sampling estimator on the SNB
// intro query (name × country — the paper's canonical correlated case):
// mean multiplicative error of the estimated result cardinality vs truth.
func BenchmarkAblationSamplingEstimator(b *testing.B) {
	e := env(b)
	q1 := snb.Q1()
	joint, err := core.ExtractJointDomain(q1, e.SNB, 200)
	if err != nil {
		b.Fatal(err)
	}
	indep := plan.NewEstimator(e.SNB)
	var errIndep, errSampling float64
	for it := 0; it < b.N; it++ {
		var sumI, sumS, n float64
		for _, bind := range joint.Bindings {
			bound, err := q1.Bind(bind)
			if err != nil {
				b.Fatal(err)
			}
			c, err := plan.Compile(bound, e.SNB)
			if err != nil {
				b.Fatal(err)
			}
			pi, err := plan.Optimize(c, indep)
			if err != nil {
				b.Fatal(err)
			}
			ps, err := plan.Optimize(c, plan.NewSamplingEstimator(e.SNB, c, 0))
			if err != nil {
				b.Fatal(err)
			}
			res, _, err := exec.Query(bound, e.SNB, exec.Options{})
			if err != nil {
				b.Fatal(err)
			}
			truth := float64(len(res.Rows))
			if truth == 0 {
				continue
			}
			sumI += multErr(pi.EstCard, truth)
			sumS += multErr(ps.EstCard, truth)
			n++
		}
		errIndep, errSampling = sumI/n, sumS/n
	}
	b.ReportMetric(errIndep, "q-error-independence")
	b.ReportMetric(errSampling, "q-error-sampling")
}

// multErr is the multiplicative "q-error" of an estimate vs truth (>= 1).
func multErr(est, truth float64) float64 {
	if est <= 0 {
		est = 0.5
	}
	if est < truth {
		return truth / est
	}
	return est / truth
}

// BenchmarkAblationCharsetEstimator compares independence vs characteristic
// sets on a subject-star query with a multi-valued predicate (hasBeenTo) —
// the case characteristic sets answer exactly.
func BenchmarkAblationCharsetEstimator(b *testing.B) {
	e := env(b)
	q := sparql.MustParse(`
PREFIX sn: <http://snb.example.org/>
SELECT * WHERE {
  ?p sn:firstName ?n .
  ?p sn:livesIn ?c .
  ?p sn:hasBeenTo ?d .
}`)
	c, err := plan.Compile(q, e.SNB)
	if err != nil {
		b.Fatal(err)
	}
	res, _, err := exec.Query(q, e.SNB, exec.Options{})
	if err != nil {
		b.Fatal(err)
	}
	truth := float64(len(res.Rows))
	var qIndep, qCharset float64
	var numSets int
	for i := 0; i < b.N; i++ {
		cs := plan.BuildCharacteristicSets(e.SNB)
		numSets = cs.NumSets()
		pi, err := plan.Optimize(c, plan.NewEstimator(e.SNB))
		if err != nil {
			b.Fatal(err)
		}
		pc, err := plan.Optimize(c, plan.NewCharsetEstimator(e.SNB, cs, c))
		if err != nil {
			b.Fatal(err)
		}
		qIndep = multErr(pi.EstCard, truth)
		qCharset = multErr(pc.EstCard, truth)
	}
	b.ReportMetric(qIndep, "q-error-independence")
	b.ReportMetric(qCharset, "q-error-charsets")
	b.ReportMetric(float64(numSets), "charsets")
}

// --- Engine micro-benchmarks -------------------------------------------------

func BenchmarkStoreCount(b *testing.B) {
	e := env(b)
	st := e.BSBM
	typeID, _ := st.Dict().Lookup(bsbm.PredType)
	rootID, _ := st.Dict().Lookup(bsbm.TypeIRI(0))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if st.Count(store.Pattern{P: typeID, O: rootID}) == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkStoreMatch(b *testing.B) {
	e := env(b)
	st := e.BSBM
	featID, _ := st.Dict().Lookup(bsbm.PredProductFeature)
	b.ResetTimer()
	n := 0
	for i := 0; i < b.N; i++ {
		m, _ := st.Match(store.Pattern{P: featID})
		n += len(m)
	}
	if n == 0 {
		b.Fatal("no matches")
	}
}

func BenchmarkOptimizerDP(b *testing.B) {
	e := env(b)
	bound, err := bsbm.Q4().Bind(sparql.Binding{"ProductType": bsbm.TypeIRI(0)})
	if err != nil {
		b.Fatal(err)
	}
	c, err := plan.Compile(bound, e.BSBM)
	if err != nil {
		b.Fatal(err)
	}
	est := plan.NewEstimator(e.BSBM)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := plan.Optimize(c, est); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExecQ4Generic(b *testing.B) {
	e := env(b)
	bound, err := bsbm.Q4().Bind(sparql.Binding{"ProductType": bsbm.TypeIRI(0)})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := exec.Query(bound, e.BSBM, exec.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExecQ4Specific(b *testing.B) {
	e := env(b)
	leafIdx := 0
	for i, n := range e.BSBMData.Types {
		if len(n.Children) == 0 {
			leafIdx = i
			break
		}
	}
	bound, err := bsbm.Q4().Bind(sparql.Binding{"ProductType": bsbm.TypeIRI(leafIdx)})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := exec.Query(bound, e.BSBM, exec.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Streaming vs materializing, serial vs parallel --------------------------

// benchExecQ4Engine times plan execution only (compile+optimize hoisted)
// for one BSBM Q4 binding under the given engine options.
func benchExecQ4Engine(b *testing.B, opts exec.Options) {
	e := env(b)
	bound, err := bsbm.Q4().Bind(sparql.Binding{"ProductType": bsbm.TypeIRI(0)})
	if err != nil {
		b.Fatal(err)
	}
	c, err := plan.Compile(bound, e.BSBM)
	if err != nil {
		b.Fatal(err)
	}
	p, err := plan.Optimize(c, plan.NewEstimator(e.BSBM))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var rows int
	for i := 0; i < b.N; i++ {
		res, err := exec.Run(c, p, e.BSBM, opts)
		if err != nil {
			b.Fatal(err)
		}
		rows = len(res.Rows)
	}
	b.ReportMetric(float64(rows), "rows")
}

// BenchmarkExecMaterializing is the old engine: every intermediate result
// fully materialized.
func BenchmarkExecMaterializing(b *testing.B) {
	benchExecQ4Engine(b, exec.Options{Mode: exec.Materializing})
}

// BenchmarkExecStreaming is the batch-pull operator engine over the same
// physical decisions — identical output, pipelined execution.
func BenchmarkExecStreaming(b *testing.B) {
	benchExecQ4Engine(b, exec.Options{Mode: exec.Streaming})
}

// BenchmarkExecStreamingPushFilters times the streaming engine with
// single-variable filters evaluated below the joins (SNB Q3 carries a
// FILTER, so the pruning is real).
func BenchmarkExecStreamingPushFilters(b *testing.B) {
	e := env(b)
	dom, err := core.ExtractDomain(snb.Q3(), e.SNB)
	if err != nil {
		b.Fatal(err)
	}
	bindings := core.NewUniformSampler(dom, 2).Sample(20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := &workload.Runner{Store: e.SNB, Opts: exec.Options{Mode: exec.Streaming, PushFilters: true}}
		if _, err := r.Run(snb.Q3(), bindings); err != nil {
			b.Fatal(err)
		}
	}
}

// benchAnalyzeQ4 times the per-binding curation analysis at the given
// parallelism (1 = serial, 0 = GOMAXPROCS workers).
func benchAnalyzeQ4(b *testing.B, parallelism int) {
	e := env(b)
	q4 := bsbm.Q4()
	dom, err := core.ExtractDomain(q4, e.BSBM)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var points int
	for i := 0; i < b.N; i++ {
		a, err := core.Analyze(q4, e.BSBM, dom, core.AnalyzeOptions{Parallelism: parallelism})
		if err != nil {
			b.Fatal(err)
		}
		points = len(a.Points)
	}
	b.ReportMetric(float64(points), "bindings")
}

// BenchmarkAnalyzeSerial is the baseline single-worker curation analysis.
func BenchmarkAnalyzeSerial(b *testing.B) { benchAnalyzeQ4(b, 1) }

// BenchmarkAnalyzeParallel fans the independent bindings out across
// GOMAXPROCS workers with deterministic (byte-identical) output.
func BenchmarkAnalyzeParallel(b *testing.B) { benchAnalyzeQ4(b, 0) }

func BenchmarkDomainExtraction(b *testing.B) {
	e := env(b)
	q := snb.Q3()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.ExtractDomain(q, e.SNB); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAnalyzeAndCluster(b *testing.B) {
	e := env(b)
	q4 := bsbm.Q4()
	dom, err := core.ExtractDomain(q4, e.BSBM)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var classes int
	for i := 0; i < b.N; i++ {
		a, err := core.Analyze(q4, e.BSBM, dom, core.AnalyzeOptions{})
		if err != nil {
			b.Fatal(err)
		}
		classes = len(core.Cluster(a, core.ClusterOptions{}).Classes)
	}
	b.ReportMetric(float64(classes), "classes")
}

func BenchmarkUniformSampling(b *testing.B) {
	e := env(b)
	dom, err := core.ExtractDomain(snb.Q3(), e.SNB)
	if err != nil {
		b.Fatal(err)
	}
	s := core.NewUniformSampler(dom, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(s.Sample(100)) != 100 {
			b.Fatal("short sample")
		}
	}
}

// --- Store construction & snapshot load path ---------------------------------

// benchBuild times index construction and statistics in isolation
// (dictionary encoding and dedup hoisted out via Rebuild) at the given
// parallelism over the small BSBM store.
func benchBuild(b *testing.B, parallelism int) {
	e := env(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := e.BSBM.Rebuild(store.BuildOptions{Parallelism: parallelism})
		if st.Len() != e.BSBM.Len() {
			b.Fatal("rebuild lost triples")
		}
	}
	b.ReportMetric(float64(e.BSBM.Len()), "triples")
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	b.ReportMetric(float64(parallelism), "workers")
}

// BenchmarkBuildSerial is the old single-core path: six sorts and the
// statistics passes run back to back.
func BenchmarkBuildSerial(b *testing.B) { benchBuild(b, 1) }

// BenchmarkBuildParallel sorts the permutations concurrently (bounded by
// GOMAXPROCS) with statistics overlapped; output is byte-identical to the
// serial build.
func BenchmarkBuildParallel(b *testing.B) { benchBuild(b, 0) }

// benchSnapshotLoad times ReadSnapshot over an in-memory snapshot of the
// small BSBM store in the given format version, reporting the snapshot
// size so v1-vs-v2 compactness is tracked alongside load time.
func benchSnapshotLoad(b *testing.B, version int) {
	e := env(b)
	var buf bytes.Buffer
	if err := e.BSBM.WriteSnapshotVersion(&buf, version); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := store.ReadSnapshot(bytes.NewReader(raw))
		if err != nil {
			b.Fatal(err)
		}
		if st.Len() != e.BSBM.Len() {
			b.Fatal("snapshot load lost triples")
		}
	}
	b.ReportMetric(float64(len(raw)), "snapshot-bytes")
}

// BenchmarkSnapshotV1Load loads the legacy fixed-width format.
func BenchmarkSnapshotV1Load(b *testing.B) { benchSnapshotLoad(b, 1) }

// BenchmarkSnapshotV2Load loads the varint+delta format (the default).
func BenchmarkSnapshotV2Load(b *testing.B) { benchSnapshotLoad(b, 2) }

// residentBytes measures the live-heap growth of holding one loaded store:
// GC before and after the load and report the HeapAlloc delta. For a heap
// deserialization this is roughly the six indexes plus the dictionary; for
// an mmap-backed open it stays near zero because the indexes remain in the
// (SetBytes-reported) file mapping.
func residentBytes(b *testing.B, load func() *store.Store) float64 {
	b.Helper()
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	st := load()
	runtime.GC()
	runtime.ReadMemStats(&after)
	runtime.KeepAlive(st)
	d := float64(after.HeapAlloc) - float64(before.HeapAlloc)
	if d < 0 {
		d = 0
	}
	return d
}

// BenchmarkSnapshotV3Load loads the v3 format (v2 plus partition stats) —
// the fully deserializing baseline BenchmarkSnapshotV4Open is measured
// against: open latency grows with triple count and resident-bytes carries
// the whole store.
func BenchmarkSnapshotV3Load(b *testing.B) {
	e := env(b)
	var buf bytes.Buffer
	if err := e.BSBM.WriteSnapshotVersion(&buf, 3); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := store.ReadSnapshot(bytes.NewReader(raw))
		if err != nil {
			b.Fatal(err)
		}
		if st.Len() != e.BSBM.Len() {
			b.Fatal("snapshot load lost triples")
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(len(raw)), "snapshot-bytes")
	b.ReportMetric(residentBytes(b, func() *store.Store {
		st, err := store.ReadSnapshot(bytes.NewReader(raw))
		if err != nil {
			b.Fatal(err)
		}
		return st
	}), "resident-bytes")
}

// BenchmarkSnapshotV4Open opens the page-aligned v4 format through the OS
// file mapping: O(1) in triple count (header validation plus six slice
// reinterpretations, no index deserialization), with resident-bytes near
// zero because the indexes are served from the mapping.
func BenchmarkSnapshotV4Open(b *testing.B) {
	e := env(b)
	path := filepath.Join(b.TempDir(), "bsbm.v4.snap")
	f, err := os.Create(path)
	if err != nil {
		b.Fatal(err)
	}
	if err := e.BSBM.WriteSnapshotVersion(f, 4); err != nil {
		b.Fatal(err)
	}
	if err := f.Close(); err != nil {
		b.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(fi.Size())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := store.OpenMapped(path)
		if err != nil {
			b.Fatal(err)
		}
		if st.Len() != e.BSBM.Len() {
			b.Fatal("mapped open lost triples")
		}
		st.Mapping().Release()
	}
	b.StopTimer()
	b.ReportMetric(float64(fi.Size()), "snapshot-bytes")
	b.ReportMetric(residentBytes(b, func() *store.Store {
		st, err := store.OpenMapped(path)
		if err != nil {
			b.Fatal(err)
		}
		return st
	}), "resident-bytes")
}

// BenchmarkSnapshotV2Write times serializing the small BSBM store in the
// default format.
func BenchmarkSnapshotV2Write(b *testing.B) {
	e := env(b)
	b.ResetTimer()
	var n int
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := e.BSBM.WriteSnapshot(&buf); err != nil {
			b.Fatal(err)
		}
		n = buf.Len()
	}
	b.ReportMetric(float64(n), "snapshot-bytes")
}

func BenchmarkDatasetGenerationBSBM(b *testing.B) {
	cfg := bsbm.TestConfig()
	for i := 0; i < b.N; i++ {
		if _, _, err := bsbm.BuildStore(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDatasetGenerationSNB(b *testing.B) {
	cfg := snb.TestConfig()
	for i := 0; i < b.N; i++ {
		if _, _, err := snb.BuildStore(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Morsel-driven intra-query parallelism -----------------------------------

var (
	parEnvOnce sync.Once
	parStore   *store.Store
	parBinding sparql.Binding
	parErr     error
)

// benchParallelSetup builds the parallelism bench environment once: a BSBM
// store scaled so the Q3 drill-down has real intra-query work (offer-heavy,
// with enough vendors per country that the plan's source scan splits into
// dozens of morsels), plus the broadest Q3 binding over it — the heavy
// drill-down that intra-query parallelism exists to speed up
// (benchServeBinding picks the opposite extreme for the plan-cache
// dispatch benches).
func benchParallelSetup(b *testing.B) (*store.Store, sparql.Binding) {
	b.Helper()
	parEnvOnce.Do(func() {
		cfg := bsbm.TestConfig()
		cfg.Products = 6000
		cfg.Vendors = 480 // 48 per country (round-robin over 10 codes)
		cfg.OffersPerProduct = 8
		cfg.ReviewsPerProduct = 0 // reviews play no part in Q3
		cfg.Seed = 11
		st, data, err := bsbm.BuildStore(cfg)
		if err != nil {
			parErr = err
			return
		}
		parStore = st
		// Broadest binding: the most executed work over one feature per
		// type (the type choice dominates the work spread) and two
		// countries.
		tmpl := bsbm.Q3()
		best := -1.0
		for i, n := range data.Types {
			if len(n.Features) == 0 {
				continue
			}
			for _, code := range []string{"US", "KR"} {
				binding := sparql.Binding{
					"ProductType": bsbm.TypeIRI(i),
					"Feature":     n.Features[0],
					"Country":     bsbm.CountryIRI(code),
				}
				bound, err := tmpl.Bind(binding)
				if err != nil {
					parErr = err
					return
				}
				res, _, err := exec.Query(bound, st, exec.Options{})
				if err != nil {
					parErr = err
					return
				}
				if res.Work > best {
					best = res.Work
					parBinding = binding
				}
			}
		}
		if parBinding == nil {
			parErr = fmt.Errorf("no type with features in the parallel bench dataset")
		}
	})
	if parErr != nil {
		b.Fatal(parErr)
	}
	return parStore, parBinding
}

// benchExecParallel times plan execution only (compile+optimize hoisted)
// of the broad Q3 drill-down at the given intra-query parallelism. Rows
// and the Work/Cout/Scanned accounting are bit-identical across the
// BenchmarkExecParallel1/2/8 family — only wall-clock changes.
func benchExecParallel(b *testing.B, par int) {
	st, binding := benchParallelSetup(b)
	bound, err := bsbm.Q3().Bind(binding)
	if err != nil {
		b.Fatal(err)
	}
	c, err := plan.Compile(bound, st)
	if err != nil {
		b.Fatal(err)
	}
	p, err := plan.Optimize(c, plan.NewEstimator(st))
	if err != nil {
		b.Fatal(err)
	}
	opts := exec.Options{Parallelism: par}
	b.ResetTimer()
	var res *exec.Result
	for i := 0; i < b.N; i++ {
		res, err = exec.Run(c, p, st, opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(res.Rows)), "rows")
	b.ReportMetric(res.Work, "work")
	b.ReportMetric(float64(res.Morsels), "morsels")
	b.ReportMetric(float64(res.Workers), "workers")
}

// BenchmarkExecParallel1 is the serial baseline of the parallelism family.
func BenchmarkExecParallel1(b *testing.B) { benchExecParallel(b, 1) }

// BenchmarkExecParallel2 runs the same pipeline on up to 2 workers.
func BenchmarkExecParallel2(b *testing.B) { benchExecParallel(b, 2) }

// BenchmarkExecParallel8 runs the same pipeline on up to 8 workers; the
// acceptance target is >= 2x over BenchmarkExecParallel1.
func BenchmarkExecParallel8(b *testing.B) { benchExecParallel(b, 8) }

// benchShardedScatterGather times the same hoisted Q3 drill-down through
// a subject-hash sharded federation: per-shard cursors k-way merge back
// into the exact global index stream, so rows and accounting are
// bit-identical to the single-store run at any shard count. The 1-shard
// and 4-shard variants bracket the coordinator overhead benchdiff gates.
func benchShardedScatterGather(b *testing.B, shards int) {
	st, binding := benchParallelSetup(b)
	sh := store.NewSharded(st, shards)
	bound, err := bsbm.Q3().Bind(binding)
	if err != nil {
		b.Fatal(err)
	}
	c, err := plan.Compile(bound, sh)
	if err != nil {
		b.Fatal(err)
	}
	p, err := plan.Optimize(c, plan.NewEstimator(sh))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var res *exec.Result
	for i := 0; i < b.N; i++ {
		res, err = exec.Run(c, p, sh, exec.Options{})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(res.Rows)), "rows")
	b.ReportMetric(res.Work, "work")
}

// BenchmarkShardedScatterGather1 is the degenerate single-shard
// federation: its delta over BenchmarkExecParallel1 is the pure cost of
// the coordinator seam.
func BenchmarkShardedScatterGather1(b *testing.B) { benchShardedScatterGather(b, 1) }

// BenchmarkShardedScatterGather4 merges four subject-hash shards on
// every scan; rows, Work and Cout stay identical to the 1-shard run.
func BenchmarkShardedScatterGather4(b *testing.B) { benchShardedScatterGather(b, 4) }

// --- Query service -----------------------------------------------------------

// benchServeSetup builds a query service over the BSBM store with the given
// plan-cache size and returns a prepared BSBM Q3 template (the deep
// drill-down: six patterns, so DPsub dominates a cold plan) with the most
// selective (leaf type, own-pool feature, country) binding — measured by
// executed work units, the serving-path hot case of a pinpoint lookup.
func benchServeSetup(b *testing.B, cacheSize int) (*service.Service, *service.Prepared, sparql.Binding) {
	b.Helper()
	e := env(b)
	opts := service.DefaultOptions()
	opts.PlanCacheSize = cacheSize
	svc := service.New(e.BSBM, "", opts)
	p, err := svc.Prepare("q3", bsbm.QueryQ3Text)
	if err != nil {
		b.Fatal(err)
	}
	return svc, p, benchServeBinding(b, e)
}

var (
	serveBindOnce sync.Once
	serveBinding  sparql.Binding
	serveBindErr  error
)

// benchServeBinding searches the leaf-type x feature x country space once
// for the binding with the least executed work, so the bench pair measures
// plan-cache dispatch against cold planning rather than raw join runtime.
func benchServeBinding(b *testing.B, e *experiments.Env) sparql.Binding {
	b.Helper()
	serveBindOnce.Do(func() {
		tmpl := bsbm.Q3()
		best := -1.0
		for i, n := range e.BSBMData.Types {
			if len(n.Children) != 0 || len(n.Features) == 0 {
				continue
			}
			for _, feat := range n.Features {
				for _, code := range []string{"US", "KR"} {
					binding := sparql.Binding{
						"ProductType": bsbm.TypeIRI(i),
						"Feature":     feat,
						"Country":     bsbm.CountryIRI(code),
					}
					bound, err := tmpl.Bind(binding)
					if err != nil {
						serveBindErr = err
						return
					}
					c, err := plan.Compile(bound, e.BSBM)
					if err != nil {
						serveBindErr = err
						return
					}
					pl, err := plan.Optimize(c, plan.NewEstimator(e.BSBM))
					if err != nil {
						serveBindErr = err
						return
					}
					res, err := exec.Run(c, pl, e.BSBM, exec.Options{EarlyStop: true})
					if err != nil {
						serveBindErr = err
						return
					}
					if best < 0 || res.Work < best {
						best = res.Work
						serveBinding = binding
					}
				}
			}
		}
		if serveBinding == nil {
			serveBindErr = fmt.Errorf("no leaf type with features in the BSBM test dataset")
		}
	})
	if serveBindErr != nil {
		b.Fatal(serveBindErr)
	}
	return serveBinding
}

// BenchmarkServePreparedHit is the warm serving path: the template is
// prepared and the binding's plan cached, so each request is a cache
// lookup plus execution — zero parse/compile/optimize work.
func BenchmarkServePreparedHit(b *testing.B) {
	svc, p, binding := benchServeSetup(b, 0) // default cache
	ctx := context.Background()
	if _, err := svc.Execute(ctx, p, binding); err != nil {
		b.Fatal(err) // warm the cache
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := svc.Execute(ctx, p, binding)
		if err != nil {
			b.Fatal(err)
		}
		if !out.CacheHit {
			b.Fatal("expected a plan-cache hit")
		}
	}
	st := svc.Stats()
	b.ReportMetric(float64(st.Cache.Hits), "cache-hits")
}

// BenchmarkServeColdPlan is the same request with the plan cache disabled:
// every execution pays bind + compile + DPsub join ordering. The ratio to
// BenchmarkServePreparedHit is the plan cache's per-request win.
func BenchmarkServeColdPlan(b *testing.B) {
	svc, p, binding := benchServeSetup(b, -1) // cache disabled
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := svc.Execute(ctx, p, binding)
		if err != nil {
			b.Fatal(err)
		}
		if out.CacheHit {
			b.Fatal("cache should be disabled")
		}
	}
}
