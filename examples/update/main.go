// Update walkthrough: build a store, mutate it with SPARQL-Update through
// the delta overlay, watch MVCC generations move under the query service,
// and round-trip the overlay through a v3 snapshot — the updatable-store
// layer end to end.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"

	"repro/internal/rdf"
	"repro/internal/service"
	"repro/internal/sparql"
	"repro/internal/store"
)

func main() {
	// A tiny social graph.
	b := store.NewBuilder()
	add := func(s, p, o string) {
		t := rdf.Triple{S: rdf.NewIRI("http://ex/" + s), P: rdf.NewIRI("http://ex/" + p), O: rdf.NewIRI("http://ex/" + o)}
		if err := b.Add(t); err != nil {
			log.Fatal(err)
		}
	}
	add("alice", "knows", "bob")
	add("alice", "knows", "carol")
	add("bob", "knows", "carol")
	base := b.Build()
	fmt.Printf("base store: %d triples\n", base.Len())

	// --- Level 1: the raw Delta API -----------------------------------
	// Apply is copy-on-write; the base store is never touched. The
	// overlay is an ordinary immutable *store.Store whose reads merge
	// the delta in on the fly.
	d := base.NewDelta()
	d, err := d.Apply(
		[]rdf.Triple{{S: rdf.NewIRI("http://ex/dave"), P: rdf.NewIRI("http://ex/knows"), O: rdf.NewIRI("http://ex/alice")}},
		[]rdf.Triple{{S: rdf.NewIRI("http://ex/bob"), P: rdf.NewIRI("http://ex/knows"), O: rdf.NewIRI("http://ex/carol")}},
	)
	if err != nil {
		log.Fatal(err)
	}
	overlay := d.Overlay()
	fmt.Printf("overlay: %d triples (+%d -%d pending), base still %d\n",
		overlay.Len(), d.InsertCount(), d.DeleteCount(), base.Len())

	// Commit folds the same delta into a fresh fully indexed store.
	committed := d.Commit(store.BuildOptions{})
	fmt.Printf("committed: %d triples, pending delta gone: %v\n",
		committed.Len(), committed.Delta() == nil)

	// --- Level 2: SPARQL-Update through the service (MVCC) ------------
	svc := service.New(base, "example", service.DefaultOptions())
	ctx := context.Background()
	query := `SELECT ?s ?o WHERE { ?s <http://ex/knows> ?o . } ORDER BY ?s ?o`

	out, err := svc.Query(ctx, query, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ngeneration %d: %d rows\n", out.Generation, len(out.Result.Rows))

	res, err := svc.Update(ctx, `
		PREFIX ex: <http://ex/>
		INSERT DATA { ex:erin ex:knows ex:alice . ex:erin ex:knows ex:bob . } ;
		DELETE DATA { ex:alice ex:knows ex:bob . }
	`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("update published generation %d: %d triples, pending +%d -%d, compacted=%v\n",
		res.Generation, res.Triples, res.PendingInserts, res.PendingDeletes, res.Compacted)

	out, err = svc.Query(ctx, query, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generation %d now answers with %d rows:\n", out.Generation, len(out.Result.Rows))
	for _, row := range out.DecodedRows() {
		fmt.Printf("  %s -> %s\n", row[0], row[1])
	}

	// Compact folds the pending delta into a plain store on demand (the
	// service also does this automatically once the delta reaches
	// Options.CompactThreshold).
	gen := svc.Compact()
	st := svc.Stats()
	fmt.Printf("after Compact: generation %d, %d triples, pending %d/%d, compactions %d\n",
		gen, st.Store.Triples, st.Store.PendingInserts, st.Store.PendingDeletes, st.Updates.Compactions)

	// --- Level 3: persistence (v3 overlay snapshots) ------------------
	// Snapshotting an overlay keeps base and delta separate (RDFSNAP3);
	// reading it back restores the overlay, not a folded store.
	var snap bytes.Buffer
	if err := overlay.WriteSnapshot(&snap); err != nil {
		log.Fatal(err)
	}
	restored, err := store.ReadSnapshot(bytes.NewReader(snap.Bytes()))
	if err != nil {
		log.Fatal(err)
	}
	rd := restored.Delta()
	fmt.Printf("\nv3 snapshot: %d bytes; restored overlay has %d triples (+%d -%d pending)\n",
		snap.Len(), restored.Len(), rd.InsertCount(), rd.DeleteCount())

	// The update text itself is plain SPARQL-Update — parseable anywhere.
	u := sparql.MustParseUpdate(`INSERT DATA { <http://ex/x> <http://ex/knows> <http://ex/y> . }`)
	fmt.Printf("\nparsed update:\n%s\n", u)
}
