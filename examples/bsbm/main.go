// BSBM example: reproduce E1/E3 interactively — generate a BSBM dataset,
// run BI Q4 with uniform parameter sampling, show the clustered runtime
// distribution, then curate the parameters and show each class's stable
// distribution (the Q4a/Q4b split).
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/bsbm"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	scale := flag.String("scale", "test", "scale preset: test | default")
	samples := flag.Int("n", 150, "uniform samples")
	flag.Parse()

	cfg := bsbm.TestConfig()
	if *scale == "default" {
		cfg = bsbm.DefaultConfig()
	}
	fmt.Printf("generating BSBM dataset (%d products)...\n", cfg.Products)
	st, ds, err := bsbm.BuildStore(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d triples, %d product types (depth %d)\n\n", st.Len(), len(ds.Types), cfg.TypeDepth)

	r := &workload.Runner{Store: st, Opts: exec.Options{}}
	q4 := bsbm.Q4()
	dom, err := core.ExtractDomain(q4, st)
	if err != nil {
		log.Fatal(err)
	}

	// Uniform sampling: the E3 table.
	ms, err := r.Run(q4, core.NewUniformSampler(dom, 1).Sample(*samples))
	if err != nil {
		log.Fatal(err)
	}
	works := workload.Values(ms, workload.MetricWork)
	sum := stats.Summarize(works)
	fmt.Println("Q4 under UNIFORM parameter sampling (work units):")
	fmt.Printf("  min %.0f | median %.0f | mean %.0f | q95 %.0f | max %.0f\n",
		sum.Min, sum.Median, sum.Mean, sum.Q95, sum.Max)
	fmt.Printf("  mean/median = %.1f (paper: >10) — the mean describes no actual run\n", stats.MeanMedianRatio(works))
	gap, mid := stats.LargestRelativeGap(works)
	fmt.Printf("  largest gap between consecutive runtimes: %.1fx around %.0f\n\n", gap, mid)
	if sum.Min > 0 {
		h := stats.NewLogHistogram(sum.Min, sum.Max*1.001, 10)
		h.AddAll(works)
		fmt.Println(h.Render(40))
	}

	// Curated: the paper's proposal.
	a, err := core.Analyze(q4, st, dom, core.AnalyzeOptions{})
	if err != nil {
		log.Fatal(err)
	}
	cl := core.Cluster(a, core.ClusterOptions{MinClassSize: 2, MergeSmall: true})
	fmt.Printf("curated parameter classes:\n%s\n", cl.Summary())
	for _, cq := range core.Curate("Q4", cl, 2) {
		cms, err := r.Run(q4, cq.Sampler.Sample(*samples/2))
		if err != nil {
			log.Fatal(err)
		}
		cs := workload.Summarize(cms, workload.MetricWork)
		plans := len(workload.DistinctPlans(cms))
		fmt.Printf("%s: n=%d median %.0f mean %.0f (mean/median %.2f), %d plan(s)\n",
			cq.Name, cs.N, cs.Median, cs.Mean, cs.Mean/cs.Median, plans)
	}
	fmt.Println("\nwithin each class the mean now describes real executions (P1-P3 restored)")
}
