// Served: run the concurrent query service in-process and speak its JSON
// HTTP API — prepare a template once, execute it per binding (watching the
// plan cache warm up), then hot-swap the snapshot under live traffic.
//
// The same API is served from a standalone binary by cmd/served:
//
//	served -data graph.nt -addr :8080
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"

	"repro/internal/rdf"
	"repro/internal/service"
	"repro/internal/store"
)

func main() {
	// A small product catalog: products typed and offered at prices.
	st := catalog(40)

	// The service wraps the immutable store; DefaultOptions means a
	// GOMAXPROCS worker pool, a 1024-entry plan cache, and LIMIT pipelines
	// that stop early.
	svc := service.New(st, "catalog-v1", service.DefaultOptions())
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	// Prepare once: the template is parsed a single time, its parameters
	// reported back.
	var prep struct {
		Params []string `json:"params"`
	}
	post(srv.URL+"/prepare", `{
	  "name": "offers",
	  "query": "SELECT ?offer ?price WHERE { ?p a %type . ?offer <http://ex/product> ?p . ?offer <http://ex/price> ?price . }"
	}`, &prep)
	fmt.Printf("prepared template with params %v\n", prep.Params)

	// Execute per binding: the first request for a binding compiles and
	// DPsub-optimizes, repeats hit the shared plan cache.
	type result struct {
		RowCount int  `json:"row_count"`
		CacheHit bool `json:"cache_hit"`
	}
	for i := 0; i < 3; i++ {
		var res result
		post(srv.URL+"/execute", `{"name": "offers", "bindings": {"type": "<http://ex/Gadget>"}}`, &res)
		fmt.Printf("execute #%d: %d rows, cache_hit=%v\n", i+1, res.RowCount, res.CacheHit)
	}

	// Hot swap: a bigger catalog replaces the store atomically; in-flight
	// queries would finish on the old snapshot.
	gen := svc.Swap(catalog(100), "catalog-v2")
	var res result
	post(srv.URL+"/execute", `{"name": "offers", "bindings": {"type": "<http://ex/Gadget>"}}`, &res)
	fmt.Printf("after swap to generation %d: %d rows, cache_hit=%v\n", gen, res.RowCount, res.CacheHit)

	// /stats reports the cache counters and per-endpoint latency
	// histograms.
	var stats service.Stats
	get(srv.URL+"/stats", &stats)
	fmt.Printf("cache: %d hits, %d misses; pool: %d workers\n",
		stats.Cache.Hits, stats.Cache.Misses, stats.Pool.Workers)
}

// catalog builds a store with n products, half of them Gadgets, each with
// two offers.
func catalog(n int) *store.Store {
	b := store.NewBuilder()
	add := func(s, p, o rdf.Term) {
		if err := b.Add(rdf.NewTriple(s, p, o)); err != nil {
			log.Fatal(err)
		}
	}
	typ := rdf.NewIRI(rdf.RDFType)
	gadget := rdf.NewIRI("http://ex/Gadget")
	widget := rdf.NewIRI("http://ex/Widget")
	product := rdf.NewIRI("http://ex/product")
	price := rdf.NewIRI("http://ex/price")
	for i := 0; i < n; i++ {
		p := rdf.NewIRI(fmt.Sprintf("http://ex/prod%d", i))
		if i%2 == 0 {
			add(p, typ, gadget)
		} else {
			add(p, typ, widget)
		}
		for k := 0; k < 2; k++ {
			o := rdf.NewIRI(fmt.Sprintf("http://ex/offer%d_%d", i, k))
			add(o, product, p)
			add(o, price, rdf.NewInteger(int64(10+i+k)))
		}
	}
	return b.Build()
}

func post(url, body string, dst any) {
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("%s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(dst); err != nil {
		log.Fatal(err)
	}
}

func get(url string, dst any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(dst); err != nil {
		log.Fatal(err)
	}
}
