// Mmap: the disk-native v4 snapshot end to end — write a store as a
// page-aligned v4 file, open it straight from an OS file mapping in O(1)
// (no index deserialization), query it, overlay live updates on the mapped
// base, and hot-remap a service under an in-flight query to watch the old
// mapping drain.
//
// The standalone binaries take the same path: cmd/datagen
// -snapshot-version 4 writes the format and cmd/served serves v4 files
// mapped by default (-heap-load forces full deserialization).
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"repro/internal/rdf"
	"repro/internal/service"
	"repro/internal/sparql"
	"repro/internal/store"
)

func main() {
	dir, err := os.MkdirTemp("", "mmap-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// A catalog big enough that heap deserialization visibly costs more
	// than mapping.
	st := catalog(2000)
	path := filepath.Join(dir, "catalog.v4.snap")
	writeV4(path, st)
	fi, _ := os.Stat(path)
	fmt.Printf("wrote v4 snapshot: %d triples, %d bytes (page-aligned sections)\n", st.Len(), fi.Size())

	// OpenMapped validates the header page structurally and reinterprets
	// the mapped sections as the six indexes + dictionary — constant work,
	// no matter how many triples the file holds.
	t0 := time.Now()
	mapped, err := store.OpenMapped(path)
	if err != nil {
		log.Fatal(err)
	}
	openMapped := time.Since(t0)

	t0 = time.Now()
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	heap, err := store.ReadSnapshot(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	openHeap := time.Since(t0)
	fmt.Printf("OpenMapped: %v (backend=%s, %d mapped bytes)\n", openMapped, mapped.Backend(), mapped.MappedBytes())
	fmt.Printf("ReadSnapshot (full revalidation + index rebuild): %v (backend=%s)\n", openHeap, heap.Backend())

	// Queries are backing-agnostic: same plans, same rows, same accounting
	// over mapped and heap stores.
	q, err := sparql.Parse(`SELECT ?p ?price WHERE { ?o <http://ex/product> ?p . ?o <http://ex/price> ?price . } ORDER BY ?price LIMIT 3`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cheapest offers over the mapped store: %d rows\n", runRows(q, mapped))

	// Updates overlay the mapped base exactly like a heap base: the delta
	// lives on the heap, reads merge it in, the mapping stays read-only.
	s := rdf.NewIRI("http://ex/offerX")
	d, err := mapped.NewDelta().Apply([]rdf.Triple{
		rdf.NewTriple(s, rdf.NewIRI("http://ex/product"), rdf.NewIRI("http://ex/prod0")),
		rdf.NewTriple(s, rdf.NewIRI("http://ex/price"), rdf.NewInteger(1)),
	}, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after overlay insert: %d triples (base %d still mapped)\n", d.Overlay().Len(), mapped.Len())

	// The service opens v4 paths mapped by default and pins each query's
	// snapshot generation: a reload retires the old mapping but defers
	// munmap until the last in-flight query closes its outcome.
	svc, err := service.Load(path, service.Options{AllowReload: true})
	if err != nil {
		log.Fatal(err)
	}
	out, err := svc.Query(context.Background(), `SELECT ?o WHERE { ?o <http://ex/product> ?p . }`, nil)
	if err != nil {
		log.Fatal(err)
	}
	path2 := filepath.Join(dir, "catalog2.v4.snap")
	writeV4(path2, catalog(100))
	if _, _, err := svc.Reload(path2); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after reload: backend=%s, mappings awaiting unmap=%d (query still open)\n",
		svc.Stats().Store.Backend, svc.Stats().Store.MappingsAwaitingUnmap)
	fmt.Printf("the open outcome still decodes from the retired mapping: %d rows\n", len(out.DecodedRows()))
	out.Close()
	fmt.Printf("after Close: mappings awaiting unmap=%d\n", svc.Stats().Store.MappingsAwaitingUnmap)
}

// runRows executes q over st through the service-free one-shot path.
func runRows(q *sparql.Query, st *store.Store) int {
	svc := service.New(st, "example", service.DefaultOptions())
	out, err := svc.Query(context.Background(), q.String(), nil)
	if err != nil {
		log.Fatal(err)
	}
	defer out.Close()
	return len(out.DecodedRows())
}

// writeV4 serializes st as a v4 snapshot at path.
func writeV4(path string, st *store.Store) {
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := st.WriteSnapshotVersion(f, 4); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
}

// catalog builds n products, each typed and carrying one priced offer.
func catalog(n int) *store.Store {
	b := store.NewBuilder()
	add := func(s, p, o rdf.Term) {
		if err := b.Add(rdf.NewTriple(s, p, o)); err != nil {
			log.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		prod := rdf.NewIRI(fmt.Sprintf("http://ex/prod%d", i))
		offer := rdf.NewIRI(fmt.Sprintf("http://ex/offer%d", i))
		add(prod, rdf.NewIRI(rdf.RDFType), rdf.NewIRI("http://ex/Gadget"))
		add(offer, rdf.NewIRI("http://ex/product"), prod)
		add(offer, rdf.NewIRI("http://ex/price"), rdf.NewInteger(int64((i*37)%500+5)))
	}
	return b.Build()
}
