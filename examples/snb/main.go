// SNB example: reproduce E2 and E4 interactively — generate a correlated
// social network, show that independent uniform parameter groups for LDBC
// Q2 report different aggregates, and that LDBC Q3's optimal plan flips
// with the country-pair parameters.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/rdf"
	"repro/internal/snb"
	"repro/internal/sparql"
	"repro/internal/workload"
)

func main() {
	scale := flag.String("scale", "test", "scale preset: test | default")
	groups := flag.Int("groups", 4, "independent groups")
	n := flag.Int("n", 50, "bindings per group")
	flag.Parse()

	cfg := snb.TestConfig()
	if *scale == "default" {
		cfg = snb.DefaultConfig()
	}
	fmt.Printf("generating SNB dataset (%d persons)...\n", cfg.Persons)
	st, ds, err := snb.BuildStore(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d triples\n\n", st.Len())

	// E2: group stability of Q2.
	r := &workload.Runner{Store: st, Opts: exec.Options{}}
	q2 := snb.Q2()
	dom, err := core.ExtractDomain(q2, st)
	if err != nil {
		log.Fatal(err)
	}
	res, err := r.GroupStability(q2, core.NewUniformSampler(dom, 1), *groups, *n, workload.MetricWork)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("LDBC Q2 (newest 20 posts of friends), %d groups × %d uniform bindings:\n", *groups, *n)
	fmt.Printf("%-8s", "")
	for g := range res.Groups {
		fmt.Printf("  Group %d", g+1)
	}
	fmt.Println()
	row := func(name string, pick func(workload.GroupResult) float64) {
		fmt.Printf("%-8s", name)
		for _, g := range res.Groups {
			fmt.Printf("  %7.0f", pick(g))
		}
		fmt.Println()
	}
	row("q10", func(g workload.GroupResult) float64 { return g.Summary.Q10 })
	row("Median", func(g workload.GroupResult) float64 { return g.Summary.Median })
	row("q90", func(g workload.GroupResult) float64 { return g.Summary.Q90 })
	row("Average", func(g workload.GroupResult) float64 { return g.Summary.Mean })
	fmt.Printf("\n=> the same benchmark reports averages differing by up to %.0f%% between runs\n\n",
		res.AvgDeviation*100)

	// E4: plan variability of Q3.
	hub := 0
	for p, d := range ds.Degree {
		if d > ds.Degree[hub] {
			hub = p
		}
	}
	q3 := snb.Q3()
	show := func(label string, x, y int) {
		bound, err := q3.Bind(sparql.Binding{
			"Person":   snb.PersonIRI(hub),
			"CountryX": snb.CountryIRI(x),
			"CountryY": snb.CountryIRI(y),
		})
		if err != nil {
			log.Fatal(err)
		}
		resQ, p, err := exec.Query(bound, st, exec.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("Q3 %s (countries %d,%d): %d results, Cout %.0f\n  plan %s\n",
			label, x, y, len(resQ.Rows), resQ.Cout, p.Signature)
	}
	fmt.Println("LDBC Q3 (friends within 2 steps who visited X and Y):")
	show("popular pair ", 0, 1)
	show("rare pair    ", cfg.Countries/2, cfg.Countries-2)
	fmt.Println("\n=> the optimizer picks different join orders per parameter class (E4);")
	fmt.Println("   curated workloads must sample the two classes separately")

	// Show the intro correlation too.
	liID := rdf.NewLiteral("Li")
	q1 := snb.Q1()
	for _, b := range []sparql.Binding{
		{"Name": liID, "Country": snb.CountryIRI(0)},
		{"Name": rdf.NewLiteral("John"), "Country": snb.CountryIRI(0)},
	} {
		bound, err := q1.Bind(b)
		if err != nil {
			log.Fatal(err)
		}
		resQ, _, err := exec.Query(bound, st, exec.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nQ1 %s × %s: %d persons", b["Name"].Value, "China", len(resQ.Rows))
	}
	fmt.Println()
}
