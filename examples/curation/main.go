// Curation example: run the paper's full parameter-generation pipeline on
// your own data and query template.
//
// Usage:
//
//	curation -data graph.nt -query 'SELECT * WHERE { ?s <http://x/p> %v . }'
//
// Without flags it demonstrates the pipeline on a generated SNB dataset
// with the paper's introductory name×country template, showing how the
// correlated domain splits into classes.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/snb"
	"repro/internal/sparql"
	"repro/internal/store"
	"repro/internal/workload"
)

func main() {
	var (
		dataPath = flag.String("data", "", "N-Triples file (default: generated SNB test data)")
		queryStr = flag.String("query", "", "query template with %params (default: intro example)")
		epsilon  = flag.Float64("epsilon", core.DefaultEpsilon, "cost band width")
		n        = flag.Int("n", 30, "sample size per class for the verification run")
		maxB     = flag.Int("max-bindings", core.DefaultMaxBindings, "analysis cap for large domains")
	)
	flag.Parse()

	// Load or generate the data.
	var st *store.Store
	if *dataPath != "" {
		f, err := os.Open(*dataPath)
		if err != nil {
			log.Fatal(err)
		}
		b := store.NewBuilder()
		if err := b.LoadNTriples(f); err != nil {
			log.Fatal(err)
		}
		f.Close()
		st = b.Build()
		fmt.Printf("loaded %d triples from %s\n", st.Len(), *dataPath)
	} else {
		var err error
		st, _, err = snb.BuildStore(snb.TestConfig())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("generated SNB test data: %d triples\n", st.Len())
	}

	// Parse the template.
	src := *queryStr
	if src == "" {
		src = snb.QueryQ1Text
	}
	tmpl, err := sparql.Parse(src)
	if err != nil {
		log.Fatalf("parsing template: %v", err)
	}
	fmt.Printf("\ntemplate:\n%s\n\n", tmpl)

	// Step 1: domain extraction.
	dom, err := core.ExtractDomain(tmpl, st)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("step 1 — domain: %v (%d combinations)\n", dom.Params, dom.Size())

	// Step 2: per-binding plan/cost analysis.
	a, err := core.Analyze(tmpl, st, dom, core.AnalyzeOptions{MaxBindings: *maxB})
	if err != nil {
		log.Fatal(err)
	}
	mode := "exhaustive"
	if !a.Exhaustive {
		mode = "sampled"
	}
	fmt.Printf("step 2 — analyzed %d bindings (%s)\n", len(a.Points), mode)

	// Step 3: clustering into parameter classes.
	cl := core.Cluster(a, core.ClusterOptions{Epsilon: *epsilon, MinClassSize: 2, MergeSmall: true})
	if err := cl.Verify(); err != nil {
		fmt.Printf("note: %v (merged small classes relax condition b)\n", err)
	}
	fmt.Printf("step 3 — clustering:\n%s\n", cl.Summary())

	// Step 4: per-class verification run — P1-P3 in action.
	r := &workload.Runner{Store: st, Opts: exec.Options{}}
	fmt.Println("step 4 — per-class verification (work units):")
	for _, cq := range core.Curate("Q", cl, 7) {
		ms, err := r.Run(tmpl, cq.Sampler.Sample(*n))
		if err != nil {
			log.Fatal(err)
		}
		s := workload.Summarize(ms, workload.MetricWork)
		fmt.Printf("  %-4s n=%-3d median %-8.0f mean %-8.0f plans %d  example: %s\n",
			cq.Name, s.N, s.Median, s.Mean,
			len(workload.DistinctPlans(ms)),
			formatExample(cq.Class.Points[0].Binding))
	}
}

func formatExample(b sparql.Binding) string {
	out := ""
	for k, v := range b {
		if out != "" {
			out += ", "
		}
		out += fmt.Sprintf("%%%s=%s", k, v.Value)
	}
	return out
}
