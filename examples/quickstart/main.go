// Quickstart: build a tiny RDF store, parse a parameterized query template,
// extract the parameter domain, and see how the optimal plan and its Cout
// change with the chosen binding — the paper's introduction in 80 lines.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/store"
)

func main() {
	// A miniature correlated social dataset: names cluster by country.
	b := store.NewBuilder()
	add := func(s, p, o rdf.Term) {
		if err := b.Add(rdf.NewTriple(s, p, o)); err != nil {
			log.Fatal(err)
		}
	}
	person := func(i int) rdf.Term { return rdf.NewIRI(fmt.Sprintf("http://ex/p%d", i)) }
	firstName := rdf.NewIRI("http://ex/firstName")
	livesIn := rdf.NewIRI("http://ex/livesIn")
	china := rdf.NewIRI("http://ex/China")
	usa := rdf.NewIRI("http://ex/USA")
	for i := 0; i < 60; i++ {
		add(person(i), firstName, rdf.NewLiteral("Li"))
		add(person(i), livesIn, china)
	}
	for i := 60; i < 100; i++ {
		add(person(i), firstName, rdf.NewLiteral("John"))
		add(person(i), livesIn, usa)
	}
	// One John in China: the selective combination.
	add(person(100), firstName, rdf.NewLiteral("John"))
	add(person(100), livesIn, china)
	st := b.Build()
	fmt.Printf("store: %d triples\n\n", st.Len())

	// The paper's introductory template.
	tmpl := sparql.MustParse(`
SELECT * WHERE {
  ?person <http://ex/firstName> %name .
  ?person <http://ex/livesIn> %country .
}`)

	// Domain extraction discovers every name and country in the data.
	dom, err := core.ExtractDomain(tmpl, st)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parameter domain: %v -> %d combinations\n\n", dom.Params, dom.Size())

	// Run two bindings and compare.
	for _, bind := range []sparql.Binding{
		{"name": rdf.NewLiteral("Li"), "country": china},
		{"name": rdf.NewLiteral("John"), "country": china},
	} {
		bound, err := tmpl.Bind(bind)
		if err != nil {
			log.Fatal(err)
		}
		res, p, err := exec.Query(bound, st, exec.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s in %s: %d results, measured Cout %.0f, work %.0f\n",
			bind["name"].Value, bind["country"].Value, len(res.Rows), res.Cout, res.Work)
		fmt.Printf("  optimal plan (estimated cost %.1f): %s\n", p.EstCost, p.Signature)
	}

	// The full paper pipeline: analyze the whole domain and cluster it.
	a, err := core.Analyze(tmpl, st, dom, core.AnalyzeOptions{})
	if err != nil {
		log.Fatal(err)
	}
	cl := core.Cluster(a, core.ClusterOptions{})
	fmt.Printf("\nclustered the domain:\n%s", cl.Summary())
}
