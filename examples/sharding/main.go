// Sharding: subject-hash partitioned execution end to end — wrap one
// store in a sharded federation and watch results and accounting stay
// bit-identical at any shard count, route an update across shards with
// shared-dictionary ID assignment, write a sharded snapshot directory,
// serve it mmap-backed through the coordinator, and reload it under an
// in-flight query to watch every shard mapping drain together.
//
// The standalone binaries take the same path: cmd/datagen
// -format snapshot -shards N writes the directory layout and cmd/served
// -shards N (or a sharded snapshot path) runs the coordinator.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/exec"
	"repro/internal/rdf"
	"repro/internal/service"
	"repro/internal/sparql"
	"repro/internal/store"
)

func main() {
	dir, err := os.MkdirTemp("", "sharding-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	st := catalog(2000)

	// One store, three federations. Per-shard sorted runs over disjoint
	// subjects k-way merge into exactly the global index stream, so the
	// plan, the rows, the row order and the Cout/Work/Scanned accounting
	// cannot depend on the shard count.
	q, err := sparql.Parse(`SELECT ?o ?price WHERE { ?o <http://ex/product> ?p . ?o <http://ex/price> ?price . } ORDER BY ?price ?o LIMIT 5`)
	if err != nil {
		log.Fatal(err)
	}
	for _, n := range []int{1, 4, 7} {
		sh := store.NewSharded(st, n)
		res, _, err := exec.Query(q, sh, exec.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("shards=%d (%s): %d rows, Cout=%.0f Work=%.0f Scanned=%d\n",
			n, sh.Backend(), len(res.Rows), res.Cout, res.Work, res.Scanned)
	}

	// Updates route by subject hash. Inserted terms are encoded through
	// the shared dictionary in operation order BEFORE routing, so the new
	// IDs match what an unsharded update would assign.
	sh := store.NewSharded(st, 4)
	sd, err := sh.NewDelta().ApplyOps([]store.DeltaOp{{Insert: true, Triples: []rdf.Triple{
		rdf.NewTriple(rdf.NewIRI("http://ex/offerX"), rdf.NewIRI("http://ex/product"), rdf.NewIRI("http://ex/prod0")),
		rdf.NewTriple(rdf.NewIRI("http://ex/offerX"), rdf.NewIRI("http://ex/price"), rdf.NewInteger(1)),
	}}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after routed insert: %d triples pending on the overlay (base %d untouched)\n",
		sd.InsertCount(), sh.Len())

	// On disk a sharded snapshot is a directory: manifest.json plus one
	// page-aligned v4 file per shard, each mmap-servable.
	snapDir := filepath.Join(dir, "catalog.shards")
	if err := store.WriteSharded(snapDir, sh); err != nil {
		log.Fatal(err)
	}
	entries, _ := os.ReadDir(snapDir)
	fmt.Printf("sharded snapshot directory: %d entries\n", len(entries))

	// The service auto-detects the directory and serves every shard from
	// its own OS file mapping behind one coordinator; /stats carries the
	// per-shard breakdown.
	svc, err := service.Load(snapDir, service.Options{AllowReload: true})
	if err != nil {
		log.Fatal(err)
	}
	stats := svc.Stats()
	fmt.Printf("serving backend=%s, shards=%d\n", stats.Store.Backend, stats.Store.Shards)
	for i, ps := range stats.Store.PerShard {
		fmt.Printf("  shard %d: %d triples, backend=%s, %d mapped bytes\n", i, ps.Triples, ps.Backend, ps.MappedBytes)
	}

	// Reload pins the retired generation's mappings — all of them — until
	// the last in-flight query drains.
	out, err := svc.Query(context.Background(), `SELECT ?o WHERE { ?o <http://ex/product> ?p . }`, nil)
	if err != nil {
		log.Fatal(err)
	}
	snapDir2 := filepath.Join(dir, "catalog2.shards")
	if err := store.WriteSharded(snapDir2, store.NewSharded(catalog(100), 4)); err != nil {
		log.Fatal(err)
	}
	if _, _, err := svc.Reload(snapDir2); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after reload: generations awaiting unmap=%d (query still open, 4 shard mappings pinned)\n",
		svc.Stats().Store.MappingsAwaitingUnmap)
	fmt.Printf("the open outcome still decodes from the retired shards: %d rows\n", len(out.DecodedRows()))
	out.Close()
	fmt.Printf("after Close: generations awaiting unmap=%d\n", svc.Stats().Store.MappingsAwaitingUnmap)
}

// catalog builds n products, each typed and carrying one priced offer.
func catalog(n int) *store.Store {
	b := store.NewBuilder()
	add := func(s, p, o rdf.Term) {
		if err := b.Add(rdf.NewTriple(s, p, o)); err != nil {
			log.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		prod := rdf.NewIRI(fmt.Sprintf("http://ex/prod%d", i))
		offer := rdf.NewIRI(fmt.Sprintf("http://ex/offer%d", i))
		add(prod, rdf.NewIRI(rdf.RDFType), rdf.NewIRI("http://ex/Gadget"))
		add(offer, rdf.NewIRI("http://ex/product"), prod)
		add(offer, rdf.NewIRI("http://ex/price"), rdf.NewInteger(int64((i*37)%500+5)))
	}
	return b.Build()
}
