// Observability: trace a query's execution span by span, then watch the
// same telemetry from the service side — EXPLAIN ANALYZE over HTTP, the
// 1-in-N trace sampler feeding /trace/recent, and the Prometheus
// exposition on /metrics.
//
// The standalone binaries expose the same features:
//
//	queryrun -data graph.nt -query q.rq -analyze
//	served -data graph.nt -trace-sample 100 -slow-query-ms 250 -pprof-addr 127.0.0.1:6060
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"

	"repro/internal/exec"
	"repro/internal/obs"
	"repro/internal/rdf"
	"repro/internal/service"
	"repro/internal/sparql"
	"repro/internal/store"
)

func main() {
	st := catalog(60)

	// --- Direct tracing: attach a collector to one execution -----------
	//
	// Options.Trace is nil by default and the engines then build the
	// exact pre-trace operator tree (zero overhead, asserted by tests);
	// with a collector every operator is wrapped and records wall time,
	// rows/batches and the exact Cout/Work/Scanned deltas of its subtree.
	q := sparql.MustParse(`SELECT ?offer ?price WHERE {
	  ?p a <http://ex/Gadget> .
	  ?offer <http://ex/product> ?p .
	  ?offer <http://ex/price> ?price .
	}`)
	capture := &obs.Capture{}
	res, _, err := exec.Query(q, st, exec.Options{Mode: exec.Columnar, Trace: capture})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("direct run: %d rows (Cout %.0f, work %.0f, scanned %d)\n",
		len(res.Rows), res.Cout, res.Work, res.Scanned)
	fmt.Println("EXPLAIN ANALYZE:")
	fmt.Print(obs.Render(capture.Root))

	// The span tree accounts for the run exactly: the root's inclusive
	// totals equal the Result's, and per-operator exclusive shares sum
	// back to them.
	cout, work, scanned := obs.Sum(capture.Root)
	fmt.Printf("span accounting: cout=%.0f work=%.0f scanned=%d (exact match: %v)\n\n",
		cout, work, scanned,
		cout == res.Cout && work == res.Work && scanned == int64(res.Scanned))

	// --- Service-side: sampling, /trace/recent, /metrics ---------------
	opts := service.DefaultOptions()
	opts.TraceSample = 2 // trace every 2nd query
	opts.TraceRecent = 16
	svc := service.New(st, "catalog", opts)
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	post(srv.URL+"/prepare", `{
	  "name": "offers",
	  "query": "SELECT ?offer ?price WHERE { ?p a %type . ?offer <http://ex/product> ?p . ?offer <http://ex/price> ?price . }"
	}`, &struct{}{})
	for i := 0; i < 6; i++ {
		post(srv.URL+"/execute", `{"name": "offers", "bindings": {"type": "<http://ex/Gadget>"}}`, &struct{}{})
	}

	// explain=analyze returns the rendered listing (and span tree) with
	// the results, and retains the trace regardless of sampling.
	var analyzed struct {
		RowCount       int    `json:"row_count"`
		ExplainAnalyze string `json:"explain_analyze"`
	}
	post(srv.URL+"/execute", `{"name": "offers", "bindings": {"type": "<http://ex/Widget>"}, "explain": "analyze"}`, &analyzed)
	fmt.Printf("HTTP explain=analyze: %d rows, first line: %s\n",
		analyzed.RowCount, strings.SplitN(analyzed.ExplainAnalyze, "\n", 2)[0])

	// /trace/recent holds the sampled and analyzed runs, newest first.
	var recent struct {
		Total  uint64            `json:"total"`
		Traces []*obs.QueryTrace `json:"traces"`
	}
	get(srv.URL+"/trace/recent?n=3", &recent)
	fmt.Printf("/trace/recent: %d retained; newest: endpoint=%s template=%s sampled=%v rows=%d\n",
		recent.Total, recent.Traces[0].Endpoint, recent.Traces[0].Template,
		recent.Traces[0].Sampled, recent.Traces[0].Rows)

	// /metrics maps every /stats counter to the Prometheus text format.
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		log.Fatal(err)
	}
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, "repro_traces_total") ||
			strings.HasPrefix(line, "repro_plan_cache_hits_total") ||
			strings.HasPrefix(line, `repro_requests_total{endpoint="execute"}`) {
			fmt.Println("metrics:", line)
		}
	}
}

// catalog builds a store with n products, half of them Gadgets, each with
// two priced offers.
func catalog(n int) *store.Store {
	b := store.NewBuilder()
	add := func(s, p, o rdf.Term) {
		if err := b.Add(rdf.NewTriple(s, p, o)); err != nil {
			log.Fatal(err)
		}
	}
	typ := rdf.NewIRI(rdf.RDFType)
	gadget := rdf.NewIRI("http://ex/Gadget")
	widget := rdf.NewIRI("http://ex/Widget")
	product := rdf.NewIRI("http://ex/product")
	price := rdf.NewIRI("http://ex/price")
	for i := 0; i < n; i++ {
		p := rdf.NewIRI(fmt.Sprintf("http://ex/prod%d", i))
		if i%2 == 0 {
			add(p, typ, gadget)
		} else {
			add(p, typ, widget)
		}
		for k := 0; k < 2; k++ {
			o := rdf.NewIRI(fmt.Sprintf("http://ex/offer%d_%d", i, k))
			add(o, product, p)
			add(o, price, rdf.NewInteger(int64(10+i+k)))
		}
	}
	return b.Build()
}

func post(url, body string, dst any) {
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("%s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(dst); err != nil {
		log.Fatal(err)
	}
}

func get(url string, dst any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(dst); err != nil {
		log.Fatal(err)
	}
}
