// Compositional-algebra walkthrough: OPTIONAL, UNION and aggregation over
// a small social graph, engine bit-identity between the streaming and
// columnar executors, the materializing baseline's typed rejection, and a
// pattern-driven DELETE/INSERT WHERE update — the algebra layer end to end.
package main

import (
	"errors"
	"fmt"
	"log"

	"repro/internal/exec"
	"repro/internal/plan"
	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/store"
)

func run(text string, st *store.Store, opts exec.Options) *exec.Result {
	q, err := sparql.Parse(text)
	if err != nil {
		log.Fatal(err)
	}
	c, err := plan.Compile(q, st)
	if err != nil {
		log.Fatal(err)
	}
	p, err := plan.Optimize(c, plan.NewEstimator(st))
	if err != nil {
		log.Fatal(err)
	}
	res, err := exec.Run(c, p, st, opts)
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func printRows(st *store.Store, res *exec.Result) {
	d := st.Dict()
	for _, row := range res.Rows {
		for j, id := range row {
			if j > 0 {
				fmt.Print("  ")
			}
			if t, ok := d.TryDecode(id); ok {
				fmt.Print(t.String())
			} else {
				fmt.Print("UNDEF") // the unbound sentinel OPTIONAL/UNION leave
			}
		}
		fmt.Println()
	}
}

func main() {
	// A tiny social graph: carol has no age, post authorship is sparse.
	b := store.NewBuilder()
	iri := func(s string) rdf.Term { return rdf.NewIRI("http://ex/" + s) }
	add := func(s, p string, o rdf.Term) {
		if err := b.Add(rdf.Triple{S: iri(s), P: iri(p), O: o}); err != nil {
			log.Fatal(err)
		}
	}
	add("alice", "knows", iri("bob"))
	add("alice", "knows", iri("carol"))
	add("bob", "knows", iri("carol"))
	add("alice", "age", rdf.NewInteger(30))
	add("bob", "age", rdf.NewInteger(17))
	add("post1", "by", iri("bob"))
	add("post2", "by", iri("bob"))
	add("post3", "by", iri("carol"))
	st := b.Build()

	// --- OPTIONAL: left join, unmatched rows survive with UNDEF -------
	optional := `SELECT ?p ?q ?a WHERE {
	  ?p <http://ex/knows> ?q .
	  OPTIONAL { ?q <http://ex/age> ?a . }
	} ORDER BY ?p ?q`
	fmt.Println("OPTIONAL (carol has no age):")
	printRows(st, run(optional, st, exec.Options{}))

	// --- UNION: ordered branch concatenation --------------------------
	union := `SELECT ?person ?who WHERE {
	  { ?person <http://ex/knows> ?who . } UNION { ?who <http://ex/knows> ?person . }
	} ORDER BY ?person ?who`
	fmt.Println("\nUNION (both directions of knows):")
	printRows(st, run(union, st, exec.Options{}))

	// --- Aggregation: GROUP BY + COUNT + HAVING -----------------------
	agg := `SELECT ?who (COUNT(*) AS ?n) WHERE {
	  ?post <http://ex/by> ?who .
	} GROUP BY ?who HAVING(?n >= 2) ORDER BY ?who`
	fmt.Println("\nGROUP BY post author, HAVING n >= 2:")
	printRows(st, run(agg, st, exec.Options{}))

	// --- Engine bit-identity ------------------------------------------
	// The streaming and columnar engines produce the same rows, order and
	// Cout/Work/Scanned accounting at any parallelism.
	a := run(optional, st, exec.Options{})
	bres := run(optional, st, exec.Options{Mode: exec.Columnar, Parallelism: 4})
	fmt.Printf("\nstreaming serial vs columnar parallel: rows %d/%d, Cout %.0f/%.0f, Work %.0f/%.0f\n",
		len(a.Rows), len(bres.Rows), a.Cout, bres.Cout, a.Work, bres.Work)

	// The materializing engine is a frozen pre-algebra baseline: it
	// rejects composed queries with a typed error instead of guessing.
	q := sparql.MustParse(optional)
	c, err := plan.Compile(q, st)
	if err != nil {
		log.Fatal(err)
	}
	p, err := plan.Optimize(c, plan.NewEstimator(st))
	if err != nil {
		log.Fatal(err)
	}
	_, err = exec.Run(c, p, st, exec.Options{Mode: exec.Materializing})
	fmt.Printf("materializing engine: unsupported=%v (%v)\n",
		errors.Is(err, exec.ErrUnsupportedConstruct), err)

	// --- Pattern-driven update: DELETE/INSERT WHERE -------------------
	// Retire the "knows" edges of minors and mark them instead; the WHERE
	// block is executed as an ordinary query against the pre-op snapshot.
	u, err := sparql.ParseUpdate(`
	  DELETE { ?p <http://ex/knows> ?q . }
	  INSERT { ?p <http://ex/guarded> ?q . }
	  WHERE  { ?p <http://ex/knows> ?q . ?p <http://ex/age> ?a . FILTER(?a < 18) }`)
	if err != nil {
		log.Fatal(err)
	}
	d, err := exec.ApplyUpdate(st, u)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nDELETE/INSERT WHERE: +%d -%d triples\n", d.InsertCount(), d.DeleteCount())
	after := d.Overlay()
	fmt.Println("knows after the update:")
	printRows(after, run(`SELECT ?s ?o WHERE { ?s <http://ex/knows> ?o . } ORDER BY ?s ?o`, after, exec.Options{}))
	fmt.Println("guarded after the update:")
	printRows(after, run(`SELECT ?s ?o WHERE { ?s <http://ex/guarded> ?o . } ORDER BY ?s ?o`, after, exec.Options{}))
}
