package repro

// Compositional-algebra benchmarks: OPTIONAL, UNION and aggregation over
// the same broad BSBM drill-down world as the parallel/columnar bench
// families. Rows and the Work/Cout accounting are engine-invariant
// (streaming vs columnar, any parallelism), so the custom metrics double
// as a cross-engine consistency check inside the bench artifact.

import (
	"testing"

	"repro/internal/bsbm"
	"repro/internal/exec"
	"repro/internal/plan"
	"repro/internal/sparql"
)

// benchAlgebra times one algebra template against the shared BSBM world
// on the given engine, reporting the engine-invariant result metrics.
func benchAlgebra(b *testing.B, src string, mode exec.ExecMode) {
	st, binding := benchParallelSetup(b)
	tmpl, err := sparql.Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	bound, err := tmpl.Bind(binding)
	if err != nil {
		b.Fatal(err)
	}
	c, err := plan.Compile(bound, st)
	if err != nil {
		b.Fatal(err)
	}
	p, err := plan.Optimize(c, plan.NewEstimator(st))
	if err != nil {
		b.Fatal(err)
	}
	opts := exec.Options{Mode: mode}
	b.ResetTimer()
	var res *exec.Result
	for i := 0; i < b.N; i++ {
		res, err = exec.Run(c, p, st, opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(res.Rows)), "rows")
	b.ReportMetric(res.Work, "work")
	b.ReportMetric(res.Cout, "cout")
}

// aggregateText counts offers per product of the bound type — the
// grouped-aggregation shape over the skewed offer distribution.
const aggregateText = `
PREFIX bsbm: <http://bsbm.example.org/>
SELECT ?product (COUNT(*) AS ?n) WHERE {
  ?product a %ProductType .
  ?offer bsbm:product ?product .
} GROUP BY ?product HAVING(?n >= 2) ORDER BY ?product`

// BenchmarkAlgebraOptionalStreaming times the Q5 optional-offers drill-down
// (left join over the offer distribution) on the streaming engine.
func BenchmarkAlgebraOptionalStreaming(b *testing.B) {
	benchAlgebra(b, bsbm.QueryQ5Text, exec.Streaming)
}

// BenchmarkAlgebraOptionalColumnar is Q5 on the columnar engine.
func BenchmarkAlgebraOptionalColumnar(b *testing.B) {
	benchAlgebra(b, bsbm.QueryQ5Text, exec.Columnar)
}

// BenchmarkAlgebraUnionStreaming times the Q6 offers-or-reviews union on
// the streaming engine.
func BenchmarkAlgebraUnionStreaming(b *testing.B) {
	benchAlgebra(b, bsbm.QueryQ6Text, exec.Streaming)
}

// BenchmarkAlgebraUnionColumnar is Q6 on the columnar engine.
func BenchmarkAlgebraUnionColumnar(b *testing.B) {
	benchAlgebra(b, bsbm.QueryQ6Text, exec.Columnar)
}

// BenchmarkAlgebraAggregateStreaming times grouped aggregation with
// HAVING on the streaming engine.
func BenchmarkAlgebraAggregateStreaming(b *testing.B) {
	benchAlgebra(b, aggregateText, exec.Streaming)
}

// BenchmarkAlgebraAggregateColumnar is the grouped aggregation on the
// columnar engine.
func BenchmarkAlgebraAggregateColumnar(b *testing.B) {
	benchAlgebra(b, aggregateText, exec.Columnar)
}
