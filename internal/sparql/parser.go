package sparql

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/rdf"
)

// Parse parses a SPARQL-subset query text, possibly containing %param
// placeholders. The grammar:
//
//	query    := prefix* "SELECT" "DISTINCT"? ("*" | var+) "WHERE"? "{" block "}" order? slice
//	prefix   := "PREFIX" PNAME IRIREF
//	block    := (triples | filter)*
//	triples  := node predobj (";" predobj)* "."
//	predobj  := node node ("," node)*
//	filter   := "FILTER" "(" cmp ("&&" cmp)* ")"
//	cmp      := node OP node
//	order    := "ORDER" "BY" key+
//	key      := var | "ASC" "(" var ")" | "DESC" "(" var ")"
//	slice    := ("LIMIT" integer | "OFFSET" integer)*   (each at most once)
//
// where node is an IRI, prefixed name, literal, number, variable or %param.
// The 'a' keyword abbreviates rdf:type as in Turtle/SPARQL.
func Parse(src string) (*Query, error) {
	p := &parser{lex: lexer{src: src}, prefixes: map[string]string{}}
	if err := p.advance(); err != nil {
		return nil, err
	}
	q, err := p.query()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, p.errf("trailing content after query")
	}
	return q, nil
}

// MustParse is Parse that panics on error; intended for static query
// definitions in generators and tests.
func MustParse(src string) *Query {
	q, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return q
}

type parser struct {
	lex      lexer
	tok      token
	prefixes map[string]string
}

func (p *parser) errf(format string, args ...any) error {
	return p.lex.errf(p.tok.pos, format, args...)
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) isKeyword(kw string) bool {
	return p.tok.kind == tokIdent && strings.EqualFold(p.tok.text, kw)
}

func (p *parser) expectKeyword(kw string) error {
	if !p.isKeyword(kw) {
		return p.errf("expected %q", kw)
	}
	return p.advance()
}

func (p *parser) query() (*Query, error) {
	for p.isKeyword("PREFIX") {
		if err := p.prefixDecl(); err != nil {
			return nil, err
		}
	}
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	q := &Query{}
	if p.isKeyword("DISTINCT") {
		q.Distinct = true
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	// Projection: '*' is lexed as operator-ish? '*' isn't lexed. Accept
	// either variables or the ident '*'. We lex '*' nowhere, so check raw.
	if err := p.projection(q); err != nil {
		return nil, err
	}
	if p.isKeyword("WHERE") {
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if p.tok.kind != tokLBrace {
		return nil, p.errf("expected '{'")
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	if err := p.block(q); err != nil {
		return nil, err
	}
	if p.tok.kind != tokRBrace {
		return nil, p.errf("expected '}'")
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	if p.isKeyword("ORDER") {
		if err := p.orderBy(q); err != nil {
			return nil, err
		}
	}
	// LIMIT and OFFSET are accepted in either order, each at most once
	// (the SPARQL LimitOffsetClauses production).
	seenOffset := false
	for p.isKeyword("LIMIT") || p.isKeyword("OFFSET") {
		kw := strings.ToUpper(p.tok.text)
		if kw == "LIMIT" && q.HasLimit || kw == "OFFSET" && seenOffset {
			return nil, p.errf("duplicate %s clause", kw)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.kind != tokNumber {
			return nil, p.errf("expected integer after %s", kw)
		}
		n, err := strconv.Atoi(p.tok.text)
		if err != nil || n < 0 {
			return nil, p.errf("invalid %s %q", kw, p.tok.text)
		}
		if kw == "LIMIT" {
			q.Limit = n
			q.HasLimit = true
		} else {
			q.Offset = n
			seenOffset = true
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if len(q.Where) == 0 {
		return nil, p.errf("empty WHERE clause")
	}
	return q, nil
}

func (p *parser) prefixDecl() error {
	if err := p.advance(); err != nil { // consume PREFIX
		return err
	}
	if p.tok.kind != tokPName || !strings.HasSuffix(p.tok.text, ":") && !strings.Contains(p.tok.text, ":") {
		return p.errf("expected prefix name")
	}
	name := strings.SplitN(p.tok.text, ":", 2)[0]
	if err := p.advance(); err != nil {
		return err
	}
	if p.tok.kind != tokIRI {
		return p.errf("expected IRI in PREFIX declaration")
	}
	p.prefixes[name] = p.tok.text
	return p.advance()
}

func (p *parser) projection(q *Query) error {
	if p.tok.kind == tokStar {
		return p.advance()
	}
	if p.tok.kind != tokVar {
		return p.errf("expected '*' or variables in SELECT")
	}
	for p.tok.kind == tokVar {
		q.Select = append(q.Select, Var(p.tok.text))
		if err := p.advance(); err != nil {
			return err
		}
	}
	return nil
}

func (p *parser) block(q *Query) error {
	for {
		switch {
		case p.tok.kind == tokRBrace:
			return nil
		case p.isKeyword("FILTER"):
			if err := p.filter(q); err != nil {
				return err
			}
		case p.tok.kind == tokEOF:
			return p.errf("unterminated WHERE block")
		default:
			if err := p.triples(q); err != nil {
				return err
			}
		}
	}
}

func (p *parser) triples(q *Query) error {
	subj, err := p.node()
	if err != nil {
		return err
	}
	for {
		pred, err := p.node()
		if err != nil {
			return err
		}
		for {
			obj, err := p.node()
			if err != nil {
				return err
			}
			q.Where = append(q.Where, TriplePattern{S: subj, P: pred, O: obj})
			if p.tok.kind != tokComma {
				break
			}
			if err := p.advance(); err != nil {
				return err
			}
		}
		if p.tok.kind != tokSemicolon {
			break
		}
		if err := p.advance(); err != nil {
			return err
		}
		// Allow a dangling ';' before '.'
		if p.tok.kind == tokDot {
			break
		}
	}
	if p.tok.kind != tokDot {
		return p.errf("expected '.' after triple pattern")
	}
	return p.advance()
}

func (p *parser) filter(q *Query) error {
	if err := p.advance(); err != nil { // consume FILTER
		return err
	}
	if p.tok.kind != tokLParen {
		return p.errf("expected '(' after FILTER")
	}
	if err := p.advance(); err != nil {
		return err
	}
	for {
		left, err := p.node()
		if err != nil {
			return err
		}
		if p.tok.kind != tokOp {
			return p.errf("expected comparison operator in FILTER")
		}
		op, err := parseOp(p.tok.text)
		if err != nil {
			return p.errf("%v", err)
		}
		if err := p.advance(); err != nil {
			return err
		}
		right, err := p.node()
		if err != nil {
			return err
		}
		q.Filters = append(q.Filters, Filter{Left: left, Op: op, Right: right})
		if p.tok.kind != tokAnd {
			break
		}
		if err := p.advance(); err != nil {
			return err
		}
	}
	if p.tok.kind != tokRParen {
		return p.errf("expected ')' to close FILTER")
	}
	return p.advance()
}

func parseOp(s string) (CompareOp, error) {
	switch s {
	case "=":
		return OpEq, nil
	case "!=":
		return OpNe, nil
	case "<":
		return OpLt, nil
	case "<=":
		return OpLe, nil
	case ">":
		return OpGt, nil
	case ">=":
		return OpGe, nil
	default:
		return 0, fmt.Errorf("unknown operator %q", s)
	}
}

func (p *parser) orderBy(q *Query) error {
	if err := p.advance(); err != nil { // ORDER
		return err
	}
	if err := p.expectKeyword("BY"); err != nil {
		return err
	}
	for {
		switch {
		case p.tok.kind == tokVar:
			q.OrderBy = append(q.OrderBy, OrderKey{Var: Var(p.tok.text)})
			if err := p.advance(); err != nil {
				return err
			}
		case p.isKeyword("ASC"), p.isKeyword("DESC"):
			desc := strings.EqualFold(p.tok.text, "DESC")
			if err := p.advance(); err != nil {
				return err
			}
			if p.tok.kind != tokLParen {
				return p.errf("expected '(' after ASC/DESC")
			}
			if err := p.advance(); err != nil {
				return err
			}
			if p.tok.kind != tokVar {
				return p.errf("expected variable in ASC/DESC")
			}
			q.OrderBy = append(q.OrderBy, OrderKey{Var: Var(p.tok.text), Desc: desc})
			if err := p.advance(); err != nil {
				return err
			}
			if p.tok.kind != tokRParen {
				return p.errf("expected ')'")
			}
			if err := p.advance(); err != nil {
				return err
			}
		default:
			if len(q.OrderBy) == 0 {
				return p.errf("expected sort key after ORDER BY")
			}
			return nil
		}
	}
}

func (p *parser) node() (Node, error) {
	defer func() {}()
	switch p.tok.kind {
	case tokVar:
		n := VarNode(Var(p.tok.text))
		return n, p.advance()
	case tokParam:
		n := ParamNode(Param(p.tok.text))
		return n, p.advance()
	case tokIRI:
		n := TermNode(rdf.NewIRI(p.tok.text))
		return n, p.advance()
	case tokPName:
		parts := strings.SplitN(p.tok.text, ":", 2)
		base, ok := p.prefixes[parts[0]]
		if !ok {
			return Node{}, p.errf("undeclared prefix %q", parts[0])
		}
		n := TermNode(rdf.NewIRI(base + parts[1]))
		return n, p.advance()
	case tokString:
		var t rdf.Term
		switch {
		case p.tok.lang != "":
			t = rdf.NewLangLiteral(p.tok.text, p.tok.lang)
		case p.tok.dt != "":
			t = rdf.NewTypedLiteral(p.tok.text, p.tok.dt)
		default:
			t = rdf.NewLiteral(p.tok.text)
		}
		return TermNode(t), p.advance()
	case tokNumber:
		txt := p.tok.text
		var t rdf.Term
		if strings.Contains(txt, ".") {
			t = rdf.NewTypedLiteral(txt, rdf.XSDDecimal)
		} else {
			t = rdf.NewTypedLiteral(txt, rdf.XSDInteger)
		}
		return TermNode(t), p.advance()
	case tokIdent:
		if p.tok.text == "a" {
			n := TermNode(rdf.NewIRI(rdf.RDFType))
			return n, p.advance()
		}
		return Node{}, p.errf("unexpected identifier %q in pattern", p.tok.text)
	default:
		return Node{}, p.errf("expected term, variable or parameter")
	}
}
