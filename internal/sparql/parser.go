package sparql

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/rdf"
)

// Parse parses a SPARQL-subset query text, possibly containing %param
// placeholders. The grammar:
//
//	query    := prefix* "SELECT" "DISTINCT"? proj "WHERE"? "{" block "}"
//	            groupby? having? order? slice
//	prefix   := "PREFIX" PNAME IRIREF
//	proj     := "*" | (var | aggregate)+
//	aggregate:= "(" func "(" ("*" | "DISTINCT"? var) ")" "AS" var ")"
//	func     := "COUNT" | "SUM" | "MIN" | "MAX" | "AVG"
//	block    := (triples | filter | optional | union)*
//	optional := "OPTIONAL" "{" block "}"
//	union    := "{" block "}" ("UNION" "{" block "}")*
//	triples  := node predobj (";" predobj)* "."
//	predobj  := node node ("," node)*
//	filter   := "FILTER" "(" cmp ("&&" cmp)* ")"
//	cmp      := node OP node
//	groupby  := "GROUP" "BY" var+
//	having   := "HAVING" "(" cmp ("&&" cmp)* ")"
//	order    := "ORDER" "BY" key+
//	key      := var | "ASC" "(" var ")" | "DESC" "(" var ")"
//	slice    := ("LIMIT" integer | "OFFSET" integer)*   (each at most once)
//
// where node is an IRI, prefixed name, literal, number, variable or %param.
// The 'a' keyword abbreviates rdf:type as in Turtle/SPARQL. A bare nested
// group that is not a UNION branch is merged into its enclosing group
// (the filters-at-group-level normal form documented in algebra.go).
func Parse(src string) (*Query, error) {
	p := &parser{lex: lexer{src: src}, prefixes: map[string]string{}}
	if err := p.advance(); err != nil {
		return nil, err
	}
	q, err := p.query()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, p.errf("trailing content after query")
	}
	return q, nil
}

// MustParse is Parse that panics on error; intended for static query
// definitions in generators and tests.
func MustParse(src string) *Query {
	q, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return q
}

type parser struct {
	lex      lexer
	tok      token
	prefixes map[string]string
}

func (p *parser) errf(format string, args ...any) error {
	return p.lex.errf(p.tok.pos, format, args...)
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) isKeyword(kw string) bool {
	return p.tok.kind == tokIdent && strings.EqualFold(p.tok.text, kw)
}

func (p *parser) expectKeyword(kw string) error {
	if !p.isKeyword(kw) {
		return p.errf("expected %q", kw)
	}
	return p.advance()
}

func (p *parser) query() (*Query, error) {
	for p.isKeyword("PREFIX") {
		if err := p.prefixDecl(); err != nil {
			return nil, err
		}
	}
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	q := &Query{}
	if p.isKeyword("DISTINCT") {
		q.Distinct = true
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	// Projection: '*' is lexed as operator-ish? '*' isn't lexed. Accept
	// either variables or the ident '*'. We lex '*' nowhere, so check raw.
	if err := p.projection(q); err != nil {
		return nil, err
	}
	if p.isKeyword("WHERE") {
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	root, err := p.group(0)
	if err != nil {
		return nil, err
	}
	q.Where = root.Patterns
	q.Filters = root.Filters
	q.Unions = root.Unions
	q.Optionals = root.Optionals
	if p.isKeyword("GROUP") {
		if err := p.groupBy(q); err != nil {
			return nil, err
		}
	}
	if p.isKeyword("HAVING") {
		if len(q.GroupBy) == 0 && len(q.Aggs) == 0 {
			return nil, p.errf("HAVING requires GROUP BY or an aggregate")
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		having, err := p.compareList()
		if err != nil {
			return nil, err
		}
		q.Having = having
	}
	if p.isKeyword("ORDER") {
		if err := p.orderBy(q); err != nil {
			return nil, err
		}
	}
	// LIMIT and OFFSET are accepted in either order, each at most once
	// (the SPARQL LimitOffsetClauses production).
	seenOffset := false
	for p.isKeyword("LIMIT") || p.isKeyword("OFFSET") {
		kw := strings.ToUpper(p.tok.text)
		if kw == "LIMIT" && q.HasLimit || kw == "OFFSET" && seenOffset {
			return nil, p.errf("duplicate %s clause", kw)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.kind != tokNumber {
			return nil, p.errf("expected integer after %s", kw)
		}
		n, err := strconv.Atoi(p.tok.text)
		if err != nil || n < 0 {
			return nil, p.errf("invalid %s %q", kw, p.tok.text)
		}
		if kw == "LIMIT" {
			q.Limit = n
			q.HasLimit = true
		} else {
			q.Offset = n
			seenOffset = true
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if err := p.validate(q); err != nil {
		return nil, err
	}
	return q, nil
}

// validate enforces the structural rules that make a parsed query
// executable: a non-empty root group and well-formed aggregation.
func (p *parser) validate(q *Query) error {
	if len(q.Where) == 0 && len(q.Unions) == 0 {
		if len(q.Optionals) > 0 {
			return p.errf("OPTIONAL requires a preceding pattern in the group")
		}
		return p.errf("empty WHERE clause")
	}
	if len(q.Aggs) == 0 && len(q.GroupBy) == 0 {
		return nil
	}
	if len(q.Select) == 0 {
		return p.errf("SELECT * cannot be combined with GROUP BY or aggregates")
	}
	keys := map[Var]bool{}
	for _, v := range q.GroupBy {
		keys[v] = true
	}
	aliases := map[Var]bool{}
	for _, a := range q.Aggs {
		aliases[a.As] = true
	}
	for _, v := range q.Select {
		if !aliases[v] && !keys[v] {
			return p.errf("SELECT variable ?%s must be a GROUP BY key or an aggregate alias", v)
		}
	}
	for _, f := range q.Having {
		for _, n := range []Node{f.Left, f.Right} {
			if n.Kind == NodeVar && !aliases[n.Var] && !keys[n.Var] {
				return p.errf("HAVING variable ?%s must be a GROUP BY key or an aggregate alias", n.Var)
			}
		}
	}
	for _, k := range q.OrderBy {
		if !aliases[k.Var] && !keys[k.Var] {
			return p.errf("ORDER BY variable ?%s must be a GROUP BY key or an aggregate alias", k.Var)
		}
	}
	return nil
}

// groupBy parses "GROUP BY var+".
func (p *parser) groupBy(q *Query) error {
	if err := p.advance(); err != nil { // GROUP
		return err
	}
	if err := p.expectKeyword("BY"); err != nil {
		return err
	}
	for p.tok.kind == tokVar {
		q.GroupBy = append(q.GroupBy, Var(p.tok.text))
		if err := p.advance(); err != nil {
			return err
		}
	}
	if len(q.GroupBy) == 0 {
		return p.errf("expected variable after GROUP BY")
	}
	return nil
}

func (p *parser) prefixDecl() error {
	if err := p.advance(); err != nil { // consume PREFIX
		return err
	}
	if p.tok.kind != tokPName || !strings.HasSuffix(p.tok.text, ":") && !strings.Contains(p.tok.text, ":") {
		return p.errf("expected prefix name")
	}
	name := strings.SplitN(p.tok.text, ":", 2)[0]
	if err := p.advance(); err != nil {
		return err
	}
	if p.tok.kind != tokIRI {
		return p.errf("expected IRI in PREFIX declaration")
	}
	p.prefixes[name] = p.tok.text
	return p.advance()
}

func (p *parser) projection(q *Query) error {
	if p.tok.kind == tokStar {
		return p.advance()
	}
	if p.tok.kind != tokVar && p.tok.kind != tokLParen {
		return p.errf("expected '*', variables or aggregates in SELECT")
	}
	for {
		switch p.tok.kind {
		case tokVar:
			q.Select = append(q.Select, Var(p.tok.text))
			if err := p.advance(); err != nil {
				return err
			}
		case tokLParen:
			a, err := p.aggregate()
			if err != nil {
				return err
			}
			for _, prev := range q.Aggs {
				if prev.As == a.As {
					return p.errf("duplicate aggregate alias ?%s", a.As)
				}
			}
			q.Aggs = append(q.Aggs, a)
			q.Select = append(q.Select, a.As)
		default:
			return nil
		}
	}
}

// aggregate parses "( FUNC ( '*' | DISTINCT? var ) AS var )" with the
// opening parenthesis current.
func (p *parser) aggregate() (Aggregate, error) {
	var a Aggregate
	if err := p.advance(); err != nil { // '('
		return a, err
	}
	switch {
	case p.isKeyword("COUNT"):
		a.Func = AggCount
	case p.isKeyword("SUM"):
		a.Func = AggSum
	case p.isKeyword("MIN"):
		a.Func = AggMin
	case p.isKeyword("MAX"):
		a.Func = AggMax
	case p.isKeyword("AVG"):
		a.Func = AggAvg
	default:
		return a, p.errf("expected aggregate function (COUNT, SUM, MIN, MAX, AVG)")
	}
	if err := p.advance(); err != nil {
		return a, err
	}
	if p.tok.kind != tokLParen {
		return a, p.errf("expected '(' after %s", a.Func)
	}
	if err := p.advance(); err != nil {
		return a, err
	}
	if p.isKeyword("DISTINCT") {
		if a.Func != AggCount {
			return a, p.errf("DISTINCT is only supported inside COUNT")
		}
		a.Distinct = true
		if err := p.advance(); err != nil {
			return a, err
		}
	}
	switch {
	case p.tok.kind == tokStar:
		if a.Func != AggCount {
			return a, p.errf("'*' is only valid in COUNT(*)")
		}
		if a.Distinct {
			return a, p.errf("COUNT(DISTINCT *) is not supported")
		}
		if err := p.advance(); err != nil {
			return a, err
		}
	case p.tok.kind == tokVar:
		a.Var = Var(p.tok.text)
		if err := p.advance(); err != nil {
			return a, err
		}
	default:
		return a, p.errf("expected '*' or variable in %s(...)", a.Func)
	}
	if p.tok.kind != tokRParen {
		return a, p.errf("expected ')' to close %s(...)", a.Func)
	}
	if err := p.advance(); err != nil {
		return a, err
	}
	if err := p.expectKeyword("AS"); err != nil {
		return a, err
	}
	if p.tok.kind != tokVar {
		return a, p.errf("expected alias variable after AS")
	}
	a.As = Var(p.tok.text)
	if err := p.advance(); err != nil {
		return a, err
	}
	if p.tok.kind != tokRParen {
		return a, p.errf("expected ')' to close the aggregate")
	}
	return a, p.advance()
}

// maxGroupDepth bounds group nesting so adversarial inputs cannot blow
// the parser stack.
const maxGroupDepth = 32

// group parses "{" block "}" into a Group.
func (p *parser) group(depth int) (*Group, error) {
	if depth > maxGroupDepth {
		return nil, p.errf("group nesting deeper than %d", maxGroupDepth)
	}
	if p.tok.kind != tokLBrace {
		return nil, p.errf("expected '{'")
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	g := &Group{}
	if err := p.block(g, depth); err != nil {
		return nil, err
	}
	if p.tok.kind != tokRBrace {
		return nil, p.errf("expected '}'")
	}
	return g, p.advance()
}

func (p *parser) block(g *Group, depth int) error {
	for {
		switch {
		case p.tok.kind == tokRBrace:
			return nil
		case p.isKeyword("FILTER"):
			if err := p.filter(g); err != nil {
				return err
			}
		case p.isKeyword("OPTIONAL"):
			if err := p.advance(); err != nil {
				return err
			}
			og, err := p.group(depth + 1)
			if err != nil {
				return err
			}
			if og.Empty() {
				return p.errf("empty OPTIONAL group")
			}
			g.Optionals = append(g.Optionals, og)
		case p.tok.kind == tokLBrace:
			if err := p.groupOrUnion(g, depth); err != nil {
				return err
			}
		case p.tok.kind == tokEOF:
			return p.errf("unterminated WHERE block")
		default:
			if err := p.triples(g); err != nil {
				return err
			}
		}
	}
}

// groupOrUnion parses "{...} (UNION {...})*". A bare group without UNION
// is merged into the enclosing group (see the package grammar comment).
func (p *parser) groupOrUnion(g *Group, depth int) error {
	first, err := p.group(depth + 1)
	if err != nil {
		return err
	}
	if !p.isKeyword("UNION") {
		if first.Empty() && len(first.Filters) == 0 {
			return p.errf("empty group")
		}
		g.Patterns = append(g.Patterns, first.Patterns...)
		g.Filters = append(g.Filters, first.Filters...)
		g.Unions = append(g.Unions, first.Unions...)
		g.Optionals = append(g.Optionals, first.Optionals...)
		return nil
	}
	u := &Union{Branches: []*Group{first}}
	for p.isKeyword("UNION") {
		if err := p.advance(); err != nil {
			return err
		}
		br, err := p.group(depth + 1)
		if err != nil {
			return err
		}
		u.Branches = append(u.Branches, br)
	}
	for _, br := range u.Branches {
		if br.Empty() {
			return p.errf("empty UNION branch")
		}
	}
	g.Unions = append(g.Unions, u)
	return nil
}

func (p *parser) triples(g *Group) error {
	subj, err := p.node()
	if err != nil {
		return err
	}
	for {
		pred, err := p.node()
		if err != nil {
			return err
		}
		for {
			obj, err := p.node()
			if err != nil {
				return err
			}
			g.Patterns = append(g.Patterns, TriplePattern{S: subj, P: pred, O: obj})
			if p.tok.kind != tokComma {
				break
			}
			if err := p.advance(); err != nil {
				return err
			}
		}
		if p.tok.kind != tokSemicolon {
			break
		}
		if err := p.advance(); err != nil {
			return err
		}
		// Allow a dangling ';' before '.'
		if p.tok.kind == tokDot {
			break
		}
	}
	if p.tok.kind != tokDot {
		return p.errf("expected '.' after triple pattern")
	}
	return p.advance()
}

func (p *parser) filter(g *Group) error {
	if err := p.advance(); err != nil { // consume FILTER
		return err
	}
	fs, err := p.compareList()
	if err != nil {
		return err
	}
	g.Filters = append(g.Filters, fs...)
	return nil
}

// compareList parses "(" cmp ("&&" cmp)* ")" — the body shared by FILTER
// and HAVING.
func (p *parser) compareList() ([]Filter, error) {
	if p.tok.kind != tokLParen {
		return nil, p.errf("expected '('")
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	var out []Filter
	for {
		left, err := p.node()
		if err != nil {
			return nil, err
		}
		if p.tok.kind != tokOp {
			return nil, p.errf("expected comparison operator")
		}
		op, err := parseOp(p.tok.text)
		if err != nil {
			return nil, p.errf("%v", err)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.node()
		if err != nil {
			return nil, err
		}
		out = append(out, Filter{Left: left, Op: op, Right: right})
		if p.tok.kind != tokAnd {
			break
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if p.tok.kind != tokRParen {
		return nil, p.errf("expected ')'")
	}
	return out, p.advance()
}

func parseOp(s string) (CompareOp, error) {
	switch s {
	case "=":
		return OpEq, nil
	case "!=":
		return OpNe, nil
	case "<":
		return OpLt, nil
	case "<=":
		return OpLe, nil
	case ">":
		return OpGt, nil
	case ">=":
		return OpGe, nil
	default:
		return 0, fmt.Errorf("unknown operator %q", s)
	}
}

func (p *parser) orderBy(q *Query) error {
	if err := p.advance(); err != nil { // ORDER
		return err
	}
	if err := p.expectKeyword("BY"); err != nil {
		return err
	}
	for {
		switch {
		case p.tok.kind == tokVar:
			q.OrderBy = append(q.OrderBy, OrderKey{Var: Var(p.tok.text)})
			if err := p.advance(); err != nil {
				return err
			}
		case p.isKeyword("ASC"), p.isKeyword("DESC"):
			desc := strings.EqualFold(p.tok.text, "DESC")
			if err := p.advance(); err != nil {
				return err
			}
			if p.tok.kind != tokLParen {
				return p.errf("expected '(' after ASC/DESC")
			}
			if err := p.advance(); err != nil {
				return err
			}
			if p.tok.kind != tokVar {
				return p.errf("expected variable in ASC/DESC")
			}
			q.OrderBy = append(q.OrderBy, OrderKey{Var: Var(p.tok.text), Desc: desc})
			if err := p.advance(); err != nil {
				return err
			}
			if p.tok.kind != tokRParen {
				return p.errf("expected ')'")
			}
			if err := p.advance(); err != nil {
				return err
			}
		default:
			if len(q.OrderBy) == 0 {
				return p.errf("expected sort key after ORDER BY")
			}
			return nil
		}
	}
}

func (p *parser) node() (Node, error) {
	defer func() {}()
	switch p.tok.kind {
	case tokVar:
		n := VarNode(Var(p.tok.text))
		return n, p.advance()
	case tokParam:
		n := ParamNode(Param(p.tok.text))
		return n, p.advance()
	case tokIRI:
		n := TermNode(rdf.NewIRI(p.tok.text))
		return n, p.advance()
	case tokPName:
		parts := strings.SplitN(p.tok.text, ":", 2)
		base, ok := p.prefixes[parts[0]]
		if !ok {
			return Node{}, p.errf("undeclared prefix %q", parts[0])
		}
		n := TermNode(rdf.NewIRI(base + parts[1]))
		return n, p.advance()
	case tokString:
		var t rdf.Term
		switch {
		case p.tok.lang != "":
			t = rdf.NewLangLiteral(p.tok.text, p.tok.lang)
		case p.tok.dt != "":
			t = rdf.NewTypedLiteral(p.tok.text, p.tok.dt)
		default:
			t = rdf.NewLiteral(p.tok.text)
		}
		return TermNode(t), p.advance()
	case tokNumber:
		txt := p.tok.text
		var t rdf.Term
		if strings.Contains(txt, ".") {
			t = rdf.NewTypedLiteral(txt, rdf.XSDDecimal)
		} else {
			t = rdf.NewTypedLiteral(txt, rdf.XSDInteger)
		}
		return TermNode(t), p.advance()
	case tokIdent:
		if p.tok.text == "a" {
			n := TermNode(rdf.NewIRI(rdf.RDFType))
			return n, p.advance()
		}
		return Node{}, p.errf("unexpected identifier %q in pattern", p.tok.text)
	default:
		return Node{}, p.errf("expected term, variable or parameter")
	}
}
