package sparql

import (
	"strings"
	"testing"

	"repro/internal/rdf"
)

func TestParseIntroExample(t *testing.T) {
	// The paper's introductory template, verbatim modulo prefix decls.
	src := `
PREFIX sn: <http://example.org/sn/>
select * where {
  ?person sn:firstName %name .
  ?person sn:livesIn %country .
}`
	q, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Where) != 2 {
		t.Fatalf("patterns = %d, want 2", len(q.Where))
	}
	if q.Where[0].P != TermNode(rdf.NewIRI("http://example.org/sn/firstName")) {
		t.Fatalf("prefix expansion failed: %v", q.Where[0].P)
	}
	params := q.Params()
	if len(params) != 2 || params[0] != "country" || params[1] != "name" {
		t.Fatalf("params = %v", params)
	}
	vars := q.Vars()
	if len(vars) != 1 || vars[0] != "person" {
		t.Fatalf("vars = %v", vars)
	}
}

func TestParseFullFeatures(t *testing.T) {
	src := `
PREFIX ex: <http://x/>
SELECT DISTINCT ?s ?n WHERE {
  ?s a ex:Person ;
     ex:name ?n ;
     ex:knows ex:alice, ex:bob .
  ?s ex:age ?age .
  FILTER(?age >= 18 && ?age < 65)
  FILTER(?n != "root")
} ORDER BY DESC(?age) ?n LIMIT 10`
	q, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if !q.Distinct {
		t.Error("DISTINCT not parsed")
	}
	if len(q.Select) != 2 || q.Select[0] != "s" || q.Select[1] != "n" {
		t.Errorf("Select = %v", q.Select)
	}
	if len(q.Where) != 5 {
		t.Errorf("patterns = %d, want 5 (a, name, knows alice, knows bob, age)", len(q.Where))
	}
	if q.Where[0].P != TermNode(rdf.NewIRI(rdf.RDFType)) {
		t.Errorf("'a' not expanded to rdf:type: %v", q.Where[0].P)
	}
	if len(q.Filters) != 3 {
		t.Errorf("filters = %d, want 3", len(q.Filters))
	}
	if q.Filters[0].Op != OpGe || q.Filters[1].Op != OpLt || q.Filters[2].Op != OpNe {
		t.Errorf("filter ops = %v %v %v", q.Filters[0].Op, q.Filters[1].Op, q.Filters[2].Op)
	}
	if len(q.OrderBy) != 2 || !q.OrderBy[0].Desc || q.OrderBy[1].Desc {
		t.Errorf("order = %+v", q.OrderBy)
	}
	if q.Limit != 10 {
		t.Errorf("limit = %d", q.Limit)
	}
}

func TestParseLiterals(t *testing.T) {
	src := `SELECT * WHERE {
  ?s <http://x/p1> "plain" .
  ?s <http://x/p2> "tagged"@en .
  ?s <http://x/p3> "7"^^<http://www.w3.org/2001/XMLSchema#integer> .
  ?s <http://x/p4> 42 .
  ?s <http://x/p5> 3.5 .
  ?s <http://x/p6> "esc\"aped\n" .
}`
	q, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	want := []rdf.Term{
		rdf.NewLiteral("plain"),
		rdf.NewLangLiteral("tagged", "en"),
		rdf.NewTypedLiteral("7", rdf.XSDInteger),
		rdf.NewTypedLiteral("42", rdf.XSDInteger),
		rdf.NewTypedLiteral("3.5", rdf.XSDDecimal),
		rdf.NewLiteral("esc\"aped\n"),
	}
	for i, w := range want {
		if q.Where[i].O != TermNode(w) {
			t.Errorf("pattern %d object = %v, want %v", i, q.Where[i].O, w)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := map[string]string{
		"missing select":     `WHERE { ?s ?p ?o . }`,
		"no where block":     `SELECT *`,
		"unterminated block": `SELECT * WHERE { ?s ?p ?o .`,
		"missing dot":        `SELECT * WHERE { ?s ?p ?o }`,
		"empty where":        `SELECT * WHERE { }`,
		"undeclared prefix":  `SELECT * WHERE { ?s ex:p ?o . }`,
		"bad filter op":      `SELECT * WHERE { ?s ?p ?o . FILTER(?o ! 3) }`,
		"filter no paren":    `SELECT * WHERE { ?s ?p ?o . FILTER ?o > 3 }`,
		"bad limit":          `SELECT * WHERE { ?s ?p ?o . } LIMIT x`,
		"trailing":           `SELECT * WHERE { ?s ?p ?o . } nonsense`,
		"empty var":          `SELECT * WHERE { ? ?p ?o . }`,
		"empty param":        `SELECT * WHERE { ?s ?p % . }`,
		"order no key":       `SELECT * WHERE { ?s ?p ?o . } ORDER BY`,
		"unterminated str":   `SELECT * WHERE { ?s ?p "abc . }`,
		"bare ident":         `SELECT * WHERE { ?s ?p banana . }`,
	}
	for name, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("%s: expected error for %q", name, src)
		}
	}
}

func TestBind(t *testing.T) {
	q := MustParse(`SELECT * WHERE { ?s <http://x/type> %t . FILTER(?s != %t) }`)
	bound, err := q.Bind(Binding{"t": rdf.NewIRI("http://x/T1")})
	if err != nil {
		t.Fatal(err)
	}
	if len(bound.Params()) != 0 {
		t.Fatalf("bound query still has params: %v", bound.Params())
	}
	if bound.Where[0].O != TermNode(rdf.NewIRI("http://x/T1")) {
		t.Fatalf("pattern not substituted: %v", bound.Where[0].O)
	}
	if bound.Filters[0].Right != TermNode(rdf.NewIRI("http://x/T1")) {
		t.Fatalf("filter not substituted: %v", bound.Filters[0].Right)
	}
	// Original untouched.
	if len(q.Params()) != 1 {
		t.Fatal("Bind mutated the template")
	}
	// Missing binding.
	if _, err := q.Bind(Binding{}); err == nil {
		t.Fatal("expected error for missing binding")
	}
}

func TestQueryStringRoundTrip(t *testing.T) {
	src := `SELECT DISTINCT ?s WHERE {
  ?s <http://x/p> ?o .
  FILTER(?o > 3)
} ORDER BY DESC(?o) LIMIT 5`
	q := MustParse(src)
	q2, err := Parse(q.String())
	if err != nil {
		t.Fatalf("reparse of %q failed: %v", q.String(), err)
	}
	if q2.String() != q.String() {
		t.Fatalf("not a fixpoint:\n%s\nvs\n%s", q.String(), q2.String())
	}
}

func TestTemplateStringKeepsParams(t *testing.T) {
	q := MustParse(`SELECT * WHERE { ?s <http://x/p> %v . }`)
	if !strings.Contains(q.String(), "%v") {
		t.Fatalf("template rendering lost parameter: %s", q.String())
	}
	q2, err := Parse(q.String())
	if err != nil {
		t.Fatal(err)
	}
	if len(q2.Params()) != 1 {
		t.Fatal("re-parsed template lost params")
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustParse("not a query")
}

func TestParseComments(t *testing.T) {
	src := `# leading comment
SELECT * WHERE {
  ?s ?p ?o . # trailing comment
}`
	if _, err := Parse(src); err != nil {
		t.Fatal(err)
	}
}

func TestDollarVariables(t *testing.T) {
	q, err := Parse(`SELECT * WHERE { $s <http://x/p> $o . }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Vars()) != 2 {
		t.Fatalf("vars = %v", q.Vars())
	}
}
