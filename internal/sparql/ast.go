// Package sparql implements the SPARQL subset needed by the paper's
// workloads: SELECT [DISTINCT] over basic graph patterns with FILTER
// comparisons, ORDER BY and LIMIT, plus PREFIX declarations. Query texts
// may contain substitution parameters written %name — exactly the template
// notation of the paper's introduction:
//
//	select * where {
//	  ?person sn:firstName %name .
//	  ?person sn:livesIn %country .
//	}
//
// A parsed query with parameters is a Template; binding all parameters
// yields an executable Query.
package sparql

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/rdf"
)

// Var is a SPARQL variable name, without the leading '?'.
type Var string

// Param is a substitution-parameter name, without the leading '%'.
type Param string

// NodeKind discriminates pattern node kinds.
type NodeKind uint8

const (
	// NodeTerm is a constant RDF term.
	NodeTerm NodeKind = iota
	// NodeVar is a query variable.
	NodeVar
	// NodeParam is an unbound substitution parameter.
	NodeParam
)

// Node is one position of a triple pattern: a constant term, a variable or
// a parameter.
type Node struct {
	Kind  NodeKind
	Term  rdf.Term
	Var   Var
	Param Param
}

// TermNode wraps a constant term.
func TermNode(t rdf.Term) Node { return Node{Kind: NodeTerm, Term: t} }

// VarNode wraps a variable.
func VarNode(v Var) Node { return Node{Kind: NodeVar, Var: v} }

// ParamNode wraps a parameter.
func ParamNode(p Param) Node { return Node{Kind: NodeParam, Param: p} }

// String renders the node in SPARQL-ish syntax.
func (n Node) String() string {
	switch n.Kind {
	case NodeVar:
		return "?" + string(n.Var)
	case NodeParam:
		return "%" + string(n.Param)
	default:
		return n.Term.String()
	}
}

// TriplePattern is one BGP triple pattern.
type TriplePattern struct {
	S, P, O Node
}

// String renders the pattern.
func (tp TriplePattern) String() string {
	return fmt.Sprintf("%s %s %s .", tp.S, tp.P, tp.O)
}

// Vars returns the distinct variables of the pattern, in S,P,O order.
func (tp TriplePattern) Vars() []Var {
	var out []Var
	seen := map[Var]bool{}
	for _, n := range []Node{tp.S, tp.P, tp.O} {
		if n.Kind == NodeVar && !seen[n.Var] {
			seen[n.Var] = true
			out = append(out, n.Var)
		}
	}
	return out
}

// CompareOp is a FILTER comparison operator.
type CompareOp uint8

// Comparison operators.
const (
	OpEq CompareOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

// String renders the operator.
func (op CompareOp) String() string {
	switch op {
	case OpEq:
		return "="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	default:
		return fmt.Sprintf("op(%d)", uint8(op))
	}
}

// Filter is a single comparison; a FILTER(a && b) clause parses into
// multiple Filters (conjunctive semantics).
type Filter struct {
	Left  Node
	Op    CompareOp
	Right Node
}

// String renders the filter.
func (f Filter) String() string {
	return fmt.Sprintf("FILTER(%s %s %s)", f.Left, f.Op, f.Right)
}

// OrderKey is one ORDER BY sort key.
type OrderKey struct {
	Var  Var
	Desc bool
}

// Query is a parsed SELECT query. A Query whose Params() is non-empty is a
// template and cannot be executed until bound.
type Query struct {
	Distinct bool
	Select   []Var // empty means SELECT *
	Where    []TriplePattern
	Filters  []Filter
	OrderBy  []OrderKey
	Limit    int // with HasLimit false, 0 means no limit (legacy literals)
	// HasLimit distinguishes an explicit LIMIT 0 (empty result) from no
	// LIMIT at all. The parser always sets it; code constructing Query
	// literals may keep using Limit > 0 alone.
	HasLimit bool
	Offset   int // rows to skip before the limit; 0 means none
}

// LimitCount returns the effective limit and whether one applies: an
// explicit LIMIT (HasLimit, including LIMIT 0) or a legacy positive
// Limit.
func (q *Query) LimitCount() (int, bool) {
	if q.HasLimit || q.Limit > 0 {
		return q.Limit, true
	}
	return 0, false
}

// Vars returns all distinct variables mentioned in the WHERE clause.
func (q *Query) Vars() []Var {
	seen := map[Var]bool{}
	var out []Var
	add := func(n Node) {
		if n.Kind == NodeVar && !seen[n.Var] {
			seen[n.Var] = true
			out = append(out, n.Var)
		}
	}
	for _, tp := range q.Where {
		add(tp.S)
		add(tp.P)
		add(tp.O)
	}
	for _, f := range q.Filters {
		add(f.Left)
		add(f.Right)
	}
	return out
}

// Params returns the distinct parameter names in the query, sorted.
func (q *Query) Params() []Param {
	seen := map[Param]bool{}
	add := func(n Node) {
		if n.Kind == NodeParam {
			seen[n.Param] = true
		}
	}
	for _, tp := range q.Where {
		add(tp.S)
		add(tp.P)
		add(tp.O)
	}
	for _, f := range q.Filters {
		add(f.Left)
		add(f.Right)
	}
	out := make([]Param, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Binding maps parameter names to concrete terms.
type Binding map[Param]rdf.Term

// Bind returns a copy of q with every parameter replaced by its binding.
// It fails if any parameter is missing from b; extra bindings are ignored.
func (q *Query) Bind(b Binding) (*Query, error) {
	subst := func(n Node) (Node, error) {
		if n.Kind != NodeParam {
			return n, nil
		}
		t, ok := b[n.Param]
		if !ok {
			return Node{}, fmt.Errorf("sparql: unbound parameter %%%s", n.Param)
		}
		return TermNode(t), nil
	}
	out := &Query{
		Distinct: q.Distinct,
		Select:   append([]Var(nil), q.Select...),
		OrderBy:  append([]OrderKey(nil), q.OrderBy...),
		Limit:    q.Limit,
		HasLimit: q.HasLimit,
		Offset:   q.Offset,
	}
	for _, tp := range q.Where {
		s, err := subst(tp.S)
		if err != nil {
			return nil, err
		}
		p, err := subst(tp.P)
		if err != nil {
			return nil, err
		}
		o, err := subst(tp.O)
		if err != nil {
			return nil, err
		}
		out.Where = append(out.Where, TriplePattern{S: s, P: p, O: o})
	}
	for _, f := range q.Filters {
		l, err := subst(f.Left)
		if err != nil {
			return nil, err
		}
		r, err := subst(f.Right)
		if err != nil {
			return nil, err
		}
		out.Filters = append(out.Filters, Filter{Left: l, Op: f.Op, Right: r})
	}
	return out, nil
}

// String renders the query in parseable SPARQL-subset syntax.
func (q *Query) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if q.Distinct {
		b.WriteString("DISTINCT ")
	}
	if len(q.Select) == 0 {
		b.WriteString("*")
	} else {
		for i, v := range q.Select {
			if i > 0 {
				b.WriteByte(' ')
			}
			b.WriteString("?" + string(v))
		}
	}
	b.WriteString(" WHERE {\n")
	for _, tp := range q.Where {
		b.WriteString("  " + tp.String() + "\n")
	}
	for _, f := range q.Filters {
		b.WriteString("  " + f.String() + "\n")
	}
	b.WriteString("}")
	if len(q.OrderBy) > 0 {
		b.WriteString(" ORDER BY")
		for _, k := range q.OrderBy {
			if k.Desc {
				b.WriteString(" DESC(?" + string(k.Var) + ")")
			} else {
				b.WriteString(" ?" + string(k.Var))
			}
		}
	}
	if _, has := q.LimitCount(); has {
		fmt.Fprintf(&b, " LIMIT %d", q.Limit)
	}
	if q.Offset > 0 {
		fmt.Fprintf(&b, " OFFSET %d", q.Offset)
	}
	return b.String()
}
