// Package sparql implements the SPARQL subset needed by the paper's
// workloads: SELECT [DISTINCT] over basic graph patterns with FILTER
// comparisons, ORDER BY and LIMIT, plus PREFIX declarations. Query texts
// may contain substitution parameters written %name — exactly the template
// notation of the paper's introduction:
//
//	select * where {
//	  ?person sn:firstName %name .
//	  ?person sn:livesIn %country .
//	}
//
// A parsed query with parameters is a Template; binding all parameters
// yields an executable Query.
package sparql

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/rdf"
)

// Var is a SPARQL variable name, without the leading '?'.
type Var string

// Param is a substitution-parameter name, without the leading '%'.
type Param string

// NodeKind discriminates pattern node kinds.
type NodeKind uint8

const (
	// NodeTerm is a constant RDF term.
	NodeTerm NodeKind = iota
	// NodeVar is a query variable.
	NodeVar
	// NodeParam is an unbound substitution parameter.
	NodeParam
)

// Node is one position of a triple pattern: a constant term, a variable or
// a parameter.
type Node struct {
	Kind  NodeKind
	Term  rdf.Term
	Var   Var
	Param Param
}

// TermNode wraps a constant term.
func TermNode(t rdf.Term) Node { return Node{Kind: NodeTerm, Term: t} }

// VarNode wraps a variable.
func VarNode(v Var) Node { return Node{Kind: NodeVar, Var: v} }

// ParamNode wraps a parameter.
func ParamNode(p Param) Node { return Node{Kind: NodeParam, Param: p} }

// String renders the node in SPARQL-ish syntax.
func (n Node) String() string {
	switch n.Kind {
	case NodeVar:
		return "?" + string(n.Var)
	case NodeParam:
		return "%" + string(n.Param)
	default:
		return n.Term.String()
	}
}

// TriplePattern is one BGP triple pattern.
type TriplePattern struct {
	S, P, O Node
}

// String renders the pattern.
func (tp TriplePattern) String() string {
	return fmt.Sprintf("%s %s %s .", tp.S, tp.P, tp.O)
}

// Vars returns the distinct variables of the pattern, in S,P,O order.
func (tp TriplePattern) Vars() []Var {
	var out []Var
	seen := map[Var]bool{}
	for _, n := range []Node{tp.S, tp.P, tp.O} {
		if n.Kind == NodeVar && !seen[n.Var] {
			seen[n.Var] = true
			out = append(out, n.Var)
		}
	}
	return out
}

// CompareOp is a FILTER comparison operator.
type CompareOp uint8

// Comparison operators.
const (
	OpEq CompareOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

// String renders the operator.
func (op CompareOp) String() string {
	switch op {
	case OpEq:
		return "="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	default:
		return fmt.Sprintf("op(%d)", uint8(op))
	}
}

// Filter is a single comparison; a FILTER(a && b) clause parses into
// multiple Filters (conjunctive semantics).
type Filter struct {
	Left  Node
	Op    CompareOp
	Right Node
}

// String renders the filter.
func (f Filter) String() string {
	return fmt.Sprintf("FILTER(%s %s %s)", f.Left, f.Op, f.Right)
}

// OrderKey is one ORDER BY sort key.
type OrderKey struct {
	Var  Var
	Desc bool
}

// Query is a parsed SELECT query. A Query whose Params() is non-empty is a
// template and cannot be executed until bound.
//
// Where and Filters hold the root group's basic graph pattern; Unions,
// Optionals, GroupBy, Aggs and Having are the compositional-algebra
// extensions (see algebra.go) and stay empty for flat BGP queries, so
// code constructing Query literals for conjunctive shapes is unaffected.
type Query struct {
	Distinct bool
	Select   []Var // empty means SELECT *; includes aggregate aliases
	Where    []TriplePattern
	Filters  []Filter
	// Unions are joined with the root BGP in order; Optionals are
	// left-joined afterwards in order (the group normal form of
	// algebra.go).
	Unions    []*Union
	Optionals []*Group
	// GroupBy/Aggs/Having describe aggregation over the WHERE result.
	// Every aggregate's alias also appears in Select at its projection
	// position.
	GroupBy []Var
	Aggs    []Aggregate
	Having  []Filter
	OrderBy []OrderKey
	Limit   int // with HasLimit false, 0 means no limit (legacy literals)
	// HasLimit distinguishes an explicit LIMIT 0 (empty result) from no
	// LIMIT at all. The parser always sets it; code constructing Query
	// literals may keep using Limit > 0 alone.
	HasLimit bool
	Offset   int // rows to skip before the limit; 0 means none
}

// Root returns the root group graph pattern view of the query's WHERE
// clause.
func (q *Query) Root() *Group {
	return &Group{Patterns: q.Where, Filters: q.Filters, Unions: q.Unions, Optionals: q.Optionals}
}

// HasAlgebra reports whether the query uses any compositional-algebra
// construct (OPTIONAL, UNION, GROUP BY, aggregates, HAVING) beyond the
// flat BGP + FILTER shape.
func (q *Query) HasAlgebra() bool {
	return len(q.Unions) > 0 || len(q.Optionals) > 0 ||
		len(q.GroupBy) > 0 || len(q.Aggs) > 0 || len(q.Having) > 0
}

// aggFor returns the aggregate whose alias is v, if any.
func (q *Query) aggFor(v Var) (Aggregate, bool) {
	for _, a := range q.Aggs {
		if a.As == v {
			return a, true
		}
	}
	return Aggregate{}, false
}

// LimitCount returns the effective limit and whether one applies: an
// explicit LIMIT (HasLimit, including LIMIT 0) or a legacy positive
// Limit.
func (q *Query) LimitCount() (int, bool) {
	if q.HasLimit || q.Limit > 0 {
		return q.Limit, true
	}
	return 0, false
}

// Vars returns all distinct variables mentioned in the WHERE clause,
// including nested UNION and OPTIONAL groups.
func (q *Query) Vars() []Var {
	return q.Root().Vars()
}

// Params returns the distinct parameter names in the query, sorted.
func (q *Query) Params() []Param {
	seen := map[Param]bool{}
	q.Root().walkNodes(func(n Node) {
		if n.Kind == NodeParam {
			seen[n.Param] = true
		}
	})
	for _, f := range q.Having {
		for _, n := range []Node{f.Left, f.Right} {
			if n.Kind == NodeParam {
				seen[n.Param] = true
			}
		}
	}
	out := make([]Param, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Binding maps parameter names to concrete terms.
type Binding map[Param]rdf.Term

// substNode replaces a parameter node with its bound term.
func substNode(n Node, b Binding) (Node, error) {
	if n.Kind != NodeParam {
		return n, nil
	}
	t, ok := b[n.Param]
	if !ok {
		return Node{}, fmt.Errorf("sparql: unbound parameter %%%s", n.Param)
	}
	return TermNode(t), nil
}

// bindPatterns deep-copies patterns with parameters substituted.
func bindPatterns(pats []TriplePattern, b Binding) ([]TriplePattern, error) {
	var out []TriplePattern
	for _, tp := range pats {
		s, err := substNode(tp.S, b)
		if err != nil {
			return nil, err
		}
		p, err := substNode(tp.P, b)
		if err != nil {
			return nil, err
		}
		o, err := substNode(tp.O, b)
		if err != nil {
			return nil, err
		}
		out = append(out, TriplePattern{S: s, P: p, O: o})
	}
	return out, nil
}

// bindFilters deep-copies filters with parameters substituted.
func bindFilters(fs []Filter, b Binding) ([]Filter, error) {
	var out []Filter
	for _, f := range fs {
		l, err := substNode(f.Left, b)
		if err != nil {
			return nil, err
		}
		r, err := substNode(f.Right, b)
		if err != nil {
			return nil, err
		}
		out = append(out, Filter{Left: l, Op: f.Op, Right: r})
	}
	return out, nil
}

// Bind returns a copy of q with every parameter replaced by its binding.
// It fails if any parameter is missing from b; extra bindings are ignored.
func (q *Query) Bind(b Binding) (*Query, error) {
	out := &Query{
		Distinct: q.Distinct,
		Select:   append([]Var(nil), q.Select...),
		GroupBy:  append([]Var(nil), q.GroupBy...),
		Aggs:     append([]Aggregate(nil), q.Aggs...),
		OrderBy:  append([]OrderKey(nil), q.OrderBy...),
		Limit:    q.Limit,
		HasLimit: q.HasLimit,
		Offset:   q.Offset,
	}
	root, err := q.Root().bind(b)
	if err != nil {
		return nil, err
	}
	out.Where = root.Patterns
	out.Filters = root.Filters
	out.Unions = root.Unions
	out.Optionals = root.Optionals
	if out.Having, err = bindFilters(q.Having, b); err != nil {
		return nil, err
	}
	return out, nil
}

// String renders the query in parseable SPARQL-subset syntax.
func (q *Query) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if q.Distinct {
		b.WriteString("DISTINCT ")
	}
	if len(q.Select) == 0 {
		b.WriteString("*")
	} else {
		for i, v := range q.Select {
			if i > 0 {
				b.WriteByte(' ')
			}
			if a, ok := q.aggFor(v); ok {
				b.WriteString(a.String())
			} else {
				b.WriteString("?" + string(v))
			}
		}
	}
	b.WriteString(" WHERE {\n")
	q.Root().render(&b, 1)
	b.WriteString("}")
	if len(q.GroupBy) > 0 {
		b.WriteString(" GROUP BY")
		for _, v := range q.GroupBy {
			b.WriteString(" ?" + string(v))
		}
	}
	if len(q.Having) > 0 {
		b.WriteString(" HAVING(")
		for i, f := range q.Having {
			if i > 0 {
				b.WriteString(" && ")
			}
			fmt.Fprintf(&b, "%s %s %s", f.Left, f.Op, f.Right)
		}
		b.WriteString(")")
	}
	if len(q.OrderBy) > 0 {
		b.WriteString(" ORDER BY")
		for _, k := range q.OrderBy {
			if k.Desc {
				b.WriteString(" DESC(?" + string(k.Var) + ")")
			} else {
				b.WriteString(" ?" + string(k.Var))
			}
		}
	}
	if _, has := q.LimitCount(); has {
		fmt.Fprintf(&b, " LIMIT %d", q.Limit)
	}
	if q.Offset > 0 {
		fmt.Fprintf(&b, " OFFSET %d", q.Offset)
	}
	return b.String()
}
