package sparql

import (
	"strings"
	"testing"

	"repro/internal/rdf"
)

func TestParseUpdateBasic(t *testing.T) {
	u, err := ParseUpdate(`
		PREFIX ex: <http://x/>
		INSERT DATA {
			ex:s ex:p ex:o .
			ex:s a ex:T ; ex:q "v"@en, 42 .
		} ;
		DELETE DATA { <http://x/s> <http://x/p> <http://x/o> . } ;
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Ops) != 2 || !u.Ops[0].Insert || u.Ops[1].Insert {
		t.Fatalf("ops = %+v", u.Ops)
	}
	if u.InsertCount() != 4 || u.DeleteCount() != 1 {
		t.Fatalf("counts = %d/%d, want 4/1", u.InsertCount(), u.DeleteCount())
	}
	want := rdf.Triple{S: rdf.NewIRI("http://x/s"), P: rdf.NewIRI(rdf.RDFType), O: rdf.NewIRI("http://x/T")}
	if u.Ops[0].Triples[1] != want {
		t.Fatalf("'a' keyword not expanded: %v", u.Ops[0].Triples[1])
	}
	if u.Ops[0].Triples[2].O != rdf.NewLangLiteral("v", "en") {
		t.Fatalf("lang literal object = %v", u.Ops[0].Triples[2].O)
	}
	if u.Ops[0].Triples[3].O != rdf.NewTypedLiteral("42", rdf.XSDInteger) {
		t.Fatalf("numeric object = %v", u.Ops[0].Triples[3].O)
	}
}

func TestParseUpdateRoundTrip(t *testing.T) {
	u := MustParseUpdate(`INSERT DATA { <http://x/a> <http://x/p> "v" . } ; DELETE DATA { <http://x/a> <http://x/p> "w"^^<http://www.w3.org/2001/XMLSchema#integer> . }`)
	rendered := u.String()
	u2, err := ParseUpdate(rendered)
	if err != nil {
		t.Fatalf("rendered update does not re-parse: %v\n%s", err, rendered)
	}
	if u2.String() != rendered {
		t.Fatalf("String not a fixpoint:\n%s\nvs\n%s", rendered, u2.String())
	}
}

func TestParseUpdateErrors(t *testing.T) {
	cases := []struct {
		name, src, wantErr string
	}{
		{"empty", ``, "expected INSERT, DELETE or DATA operation"},
		{"select", `SELECT * WHERE { ?s ?p ?o . }`, "expected INSERT, DELETE or DATA operation"},
		{"missing where", `INSERT { <http://x/a> <http://x/p> "v" . }`, `expected "WHERE"`},
		{"variable", `INSERT DATA { ?s <http://x/p> "v" . }`, "not allowed in DATA block"},
		{"parameter", `INSERT DATA { <http://x/a> <http://x/p> %v . }`, "not allowed in DATA block"},
		{"literal subject", `INSERT DATA { "lit" <http://x/p> "v" . }`, "invalid triple"},
		{"literal predicate", `DELETE DATA { <http://x/a> "p" "v" . }`, "invalid triple"},
		{"unterminated", `INSERT DATA { <http://x/a> <http://x/p> "v" .`, "unterminated DATA block"},
		{"missing dot", `INSERT DATA { <http://x/a> <http://x/p> "v" }`, "expected '.'"},
		{"trailing", `INSERT DATA { <http://x/a> <http://x/p> "v" . } garbage`, "trailing content"},
		{"undeclared prefix", `INSERT DATA { ex:a ex:p ex:o . }`, "undeclared prefix"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseUpdate(tc.src)
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("ParseUpdate(%q) error = %v, want containing %q", tc.src, err, tc.wantErr)
			}
		})
	}
}

func TestParseLimitOffset(t *testing.T) {
	cases := []struct {
		src      string
		limit    int
		hasLimit bool
		offset   int
	}{
		{`SELECT * WHERE { ?s ?p ?o . }`, 0, false, 0},
		{`SELECT * WHERE { ?s ?p ?o . } LIMIT 0`, 0, true, 0},
		{`SELECT * WHERE { ?s ?p ?o . } LIMIT 5`, 5, true, 0},
		{`SELECT * WHERE { ?s ?p ?o . } OFFSET 3`, 0, false, 3},
		{`SELECT * WHERE { ?s ?p ?o . } LIMIT 5 OFFSET 3`, 5, true, 3},
		{`SELECT * WHERE { ?s ?p ?o . } OFFSET 3 LIMIT 5`, 5, true, 3},
	}
	for _, tc := range cases {
		q, err := Parse(tc.src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", tc.src, err)
		}
		limit, has := q.LimitCount()
		if limit != tc.limit || has != tc.hasLimit || q.Offset != tc.offset {
			t.Fatalf("Parse(%q) = limit %d/%v offset %d, want %d/%v %d",
				tc.src, limit, has, q.Offset, tc.limit, tc.hasLimit, tc.offset)
		}
		// Rendering round-trips with identical slice semantics.
		q2, err := Parse(q.String())
		if err != nil {
			t.Fatalf("re-parse of %q: %v", q.String(), err)
		}
		l2, h2 := q2.LimitCount()
		if l2 != limit || h2 != has || q2.Offset != q.Offset {
			t.Fatalf("round trip of %q lost slice: %s", tc.src, q.String())
		}
	}
	for _, bad := range []string{
		`SELECT * WHERE { ?s ?p ?o . } LIMIT 1 LIMIT 2`,
		`SELECT * WHERE { ?s ?p ?o . } OFFSET 1 OFFSET 2`,
		`SELECT * WHERE { ?s ?p ?o . } LIMIT -1`,
		`SELECT * WHERE { ?s ?p ?o . } OFFSET x`,
	} {
		if _, err := Parse(bad); err == nil {
			t.Fatalf("Parse(%q) should fail", bad)
		}
	}
}
