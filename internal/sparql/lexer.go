package sparql

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"

	"repro/internal/rdf"
)

type tokenKind uint8

const (
	tokEOF       tokenKind = iota
	tokIdent               // bare identifier / keyword
	tokIRI                 // <...>
	tokPName               // prefix:local
	tokVar                 // ?name
	tokParam               // %name
	tokString              // "..." with optional @lang or ^^<iri> suffix handled by parser
	tokNumber              // integer or decimal
	tokLBrace              // {
	tokRBrace              // }
	tokLParen              // (
	tokRParen              // )
	tokDot                 // .
	tokSemicolon           // ;
	tokComma               // ,
	tokOp                  // = != < <= > >=
	tokAnd                 // &&
	tokStar                // *
)

type token struct {
	kind tokenKind
	text string // raw content (IRI without <>, var without ?, string unescaped lexical form)
	lang string // for tokString
	dt   string // for tokString: datatype IRI
	pos  int    // byte offset, for errors
}

type lexer struct {
	src string
	i   int
}

func (l *lexer) errf(pos int, format string, args ...any) error {
	line := 1 + strings.Count(l.src[:pos], "\n")
	return fmt.Errorf("sparql: line %d: %s", line, fmt.Sprintf(format, args...))
}

func (l *lexer) skipSpaceAndComments() {
	for l.i < len(l.src) {
		c := l.src[l.i]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.i++
			continue
		}
		if c == '#' {
			for l.i < len(l.src) && l.src[l.i] != '\n' {
				l.i++
			}
			continue
		}
		return
	}
}

func (l *lexer) next() (token, error) {
	l.skipSpaceAndComments()
	if l.i >= len(l.src) {
		return token{kind: tokEOF, pos: l.i}, nil
	}
	start := l.i
	c := l.src[l.i]
	switch {
	case c == '{':
		l.i++
		return token{kind: tokLBrace, pos: start}, nil
	case c == '}':
		l.i++
		return token{kind: tokRBrace, pos: start}, nil
	case c == '(':
		l.i++
		return token{kind: tokLParen, pos: start}, nil
	case c == ')':
		l.i++
		return token{kind: tokRParen, pos: start}, nil
	case c == ';':
		l.i++
		return token{kind: tokSemicolon, pos: start}, nil
	case c == ',':
		l.i++
		return token{kind: tokComma, pos: start}, nil
	case c == '.':
		// Distinguish statement dot from a decimal number starting with '.'.
		if l.i+1 < len(l.src) && isDigit(l.src[l.i+1]) {
			return l.number()
		}
		l.i++
		return token{kind: tokDot, pos: start}, nil
	case c == '<':
		return l.iriRef()
	case c == '?' || c == '$':
		return l.variable()
	case c == '%':
		return l.param()
	case c == '"':
		return l.stringLit()
	case c == '*':
		l.i++
		return token{kind: tokStar, pos: start}, nil
	case c == '=':
		l.i++
		return token{kind: tokOp, text: "=", pos: start}, nil
	case c == '!':
		if strings.HasPrefix(l.src[l.i:], "!=") {
			l.i += 2
			return token{kind: tokOp, text: "!=", pos: start}, nil
		}
		return token{}, l.errf(start, "unexpected '!'")
	case c == '&':
		if strings.HasPrefix(l.src[l.i:], "&&") {
			l.i += 2
			return token{kind: tokAnd, pos: start}, nil
		}
		return token{}, l.errf(start, "unexpected '&'")
	case c == '>':
		if strings.HasPrefix(l.src[l.i:], ">=") {
			l.i += 2
			return token{kind: tokOp, text: ">=", pos: start}, nil
		}
		l.i++
		return token{kind: tokOp, text: ">", pos: start}, nil
	case isDigit(c) || c == '-' || c == '+':
		return l.number()
	default:
		if isIdentStart(rune(c)) {
			return l.identOrPName()
		}
		return token{}, l.errf(start, "unexpected character %q", c)
	}
}

// peekLt disambiguates '<' between IRIREF and less-than: an IRI contains no
// whitespace before '>', and a comparison's right operand starts with a
// space or operand character.
func (l *lexer) iriRef() (token, error) {
	start := l.i
	j := l.i + 1
	for j < len(l.src) {
		c := l.src[j]
		if c == '>' {
			raw := l.src[l.i+1 : j]
			l.i = j + 1
			decoded, err := rdf.Unescape(raw)
			if err != nil {
				return token{}, l.errf(start, "bad IRI escape: %v", err)
			}
			return token{kind: tokIRI, text: decoded, pos: start}, nil
		}
		if c == ' ' || c == '\n' || c == '\t' || c == '\r' || c == '"' || c == '{' {
			break
		}
		j++
	}
	// Not an IRI: treat as comparison operator.
	if strings.HasPrefix(l.src[l.i:], "<=") {
		l.i += 2
		return token{kind: tokOp, text: "<=", pos: start}, nil
	}
	l.i++
	return token{kind: tokOp, text: "<", pos: start}, nil
}

func (l *lexer) variable() (token, error) {
	start := l.i
	l.i++
	s := l.i
	for l.i < len(l.src) && isIdentChar(rune(l.src[l.i])) {
		l.i++
	}
	if l.i == s {
		return token{}, l.errf(start, "empty variable name")
	}
	return token{kind: tokVar, text: l.src[s:l.i], pos: start}, nil
}

func (l *lexer) param() (token, error) {
	start := l.i
	l.i++
	s := l.i
	for l.i < len(l.src) && isIdentChar(rune(l.src[l.i])) {
		l.i++
	}
	if l.i == s {
		return token{}, l.errf(start, "empty parameter name")
	}
	return token{kind: tokParam, text: l.src[s:l.i], pos: start}, nil
}

func (l *lexer) stringLit() (token, error) {
	start := l.i
	l.i++ // opening quote
	var b strings.Builder
	for l.i < len(l.src) {
		c := l.src[l.i]
		switch c {
		case '\\':
			if l.i+1 >= len(l.src) {
				return token{}, l.errf(start, "unterminated escape")
			}
			switch e := l.src[l.i+1]; e {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case 'r':
				b.WriteByte('\r')
			case '"':
				b.WriteByte('"')
			case '\\':
				b.WriteByte('\\')
			default:
				return token{}, l.errf(start, "unsupported escape \\%c", e)
			}
			l.i += 2
		case '"':
			l.i++
			tok := token{kind: tokString, text: b.String(), pos: start}
			// Optional @lang or ^^<iri>.
			if l.i < len(l.src) && l.src[l.i] == '@' {
				l.i++
				s := l.i
				for l.i < len(l.src) && (isIdentChar(rune(l.src[l.i])) || l.src[l.i] == '-') {
					l.i++
				}
				if l.i == s {
					return token{}, l.errf(start, "empty language tag")
				}
				tok.lang = l.src[s:l.i]
			} else if strings.HasPrefix(l.src[l.i:], "^^<") {
				l.i += 2
				it, err := l.iriRef()
				if err != nil {
					return token{}, err
				}
				if it.kind != tokIRI {
					return token{}, l.errf(start, "expected datatype IRI")
				}
				tok.dt = it.text
			}
			return tok, nil
		default:
			b.WriteByte(c)
			l.i++
		}
	}
	return token{}, l.errf(start, "unterminated string literal")
}

func (l *lexer) number() (token, error) {
	start := l.i
	if l.src[l.i] == '-' || l.src[l.i] == '+' {
		l.i++
	}
	seenDigit, seenDot := false, false
	for l.i < len(l.src) {
		c := l.src[l.i]
		if isDigit(c) {
			seenDigit = true
			l.i++
			continue
		}
		if c == '.' && !seenDot && l.i+1 < len(l.src) && isDigit(l.src[l.i+1]) {
			seenDot = true
			l.i++
			continue
		}
		break
	}
	if !seenDigit {
		return token{}, l.errf(start, "malformed number")
	}
	return token{kind: tokNumber, text: l.src[start:l.i], pos: start}, nil
}

func (l *lexer) identOrPName() (token, error) {
	start := l.i
	for l.i < len(l.src) && isIdentChar(rune(l.src[l.i])) {
		l.i++
	}
	word := l.src[start:l.i]
	// prefix:local form (prefixed name)?
	if l.i < len(l.src) && l.src[l.i] == ':' {
		l.i++
		ls := l.i
		for l.i < len(l.src) && (isIdentChar(rune(l.src[l.i])) || l.src[l.i] == '-') {
			l.i++
		}
		return token{kind: tokPName, text: word + ":" + l.src[ls:l.i], pos: start}, nil
	}
	return token{kind: tokIdent, text: word, pos: start}, nil
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentChar(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

var _ = utf8.RuneLen // keep utf8 imported if identChar changes
