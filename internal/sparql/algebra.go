package sparql

import (
	"fmt"
	"strings"
)

// This file holds the compositional-algebra side of the AST: group graph
// patterns (OPTIONAL, UNION) and aggregation (GROUP BY, aggregate
// functions, HAVING). A query without any of these is a flat BGP and
// flows through the legacy fields of Query unchanged.
//
// The subset keeps SPARQL's algebra shape but fixes a deterministic
// normal form: a group is its BGP joined with every UNION block (in
// syntactic order), then left-joined with every OPTIONAL group (in
// syntactic order), then filtered by the group's FILTERs. A bare nested
// `{ ... }` that is not a UNION branch is merged into its enclosing
// group at parse time, so rendering and re-parsing are a fixpoint.

// Group is a group graph pattern: a basic graph pattern plus nested
// UNION and OPTIONAL sub-groups and group-scoped filters.
type Group struct {
	Patterns  []TriplePattern
	Filters   []Filter
	Unions    []*Union // joined with the BGP, in order
	Optionals []*Group // left-joined after the joins, in order
}

// Union is an n-way alternative of group graph patterns
// ({A} UNION {B} UNION ...).
type Union struct {
	Branches []*Group // always 2+
}

// Empty reports whether the group binds nothing at all.
func (g *Group) Empty() bool {
	return len(g.Patterns) == 0 && len(g.Unions) == 0 && len(g.Optionals) == 0
}

// walkNodes visits every Node of the group, recursively.
func (g *Group) walkNodes(visit func(Node)) {
	for _, tp := range g.Patterns {
		visit(tp.S)
		visit(tp.P)
		visit(tp.O)
	}
	for _, f := range g.Filters {
		visit(f.Left)
		visit(f.Right)
	}
	for _, u := range g.Unions {
		for _, br := range u.Branches {
			br.walkNodes(visit)
		}
	}
	for _, o := range g.Optionals {
		o.walkNodes(visit)
	}
}

// Vars returns the distinct variables of the group in first-mention
// order (patterns, filters, unions, optionals).
func (g *Group) Vars() []Var {
	seen := map[Var]bool{}
	var out []Var
	g.walkNodes(func(n Node) {
		if n.Kind == NodeVar && !seen[n.Var] {
			seen[n.Var] = true
			out = append(out, n.Var)
		}
	})
	return out
}

// bind returns a deep copy of g with parameters substituted.
func (g *Group) bind(b Binding) (*Group, error) {
	out := &Group{}
	var err error
	if out.Patterns, err = bindPatterns(g.Patterns, b); err != nil {
		return nil, err
	}
	if out.Filters, err = bindFilters(g.Filters, b); err != nil {
		return nil, err
	}
	for _, u := range g.Unions {
		bu := &Union{}
		for _, br := range u.Branches {
			bb, err := br.bind(b)
			if err != nil {
				return nil, err
			}
			bu.Branches = append(bu.Branches, bb)
		}
		out.Unions = append(out.Unions, bu)
	}
	for _, o := range g.Optionals {
		bo, err := o.bind(b)
		if err != nil {
			return nil, err
		}
		out.Optionals = append(out.Optionals, bo)
	}
	return out, nil
}

// render writes the group body (without the surrounding braces) at the
// given indentation depth, in the canonical order patterns, unions,
// optionals, filters.
func (g *Group) render(b *strings.Builder, depth int) {
	ind := strings.Repeat("  ", depth)
	for _, tp := range g.Patterns {
		b.WriteString(ind + tp.String() + "\n")
	}
	for _, u := range g.Unions {
		b.WriteString(ind)
		for i, br := range u.Branches {
			if i > 0 {
				b.WriteString(" UNION ")
			}
			b.WriteString("{\n")
			br.render(b, depth+1)
			b.WriteString(ind + "}")
		}
		b.WriteString("\n")
	}
	for _, o := range g.Optionals {
		b.WriteString(ind + "OPTIONAL {\n")
		o.render(b, depth+1)
		b.WriteString(ind + "}\n")
	}
	for _, f := range g.Filters {
		b.WriteString(ind + f.String() + "\n")
	}
}

// AggFunc is an aggregate function.
type AggFunc uint8

// Aggregate functions.
const (
	AggCount AggFunc = iota // COUNT(*) when Var is empty
	AggSum
	AggMin
	AggMax
	AggAvg
)

// String renders the function keyword.
func (f AggFunc) String() string {
	switch f {
	case AggCount:
		return "COUNT"
	case AggSum:
		return "SUM"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	case AggAvg:
		return "AVG"
	default:
		return fmt.Sprintf("agg(%d)", uint8(f))
	}
}

// Aggregate is one aggregate of the SELECT clause, always aliased:
// (COUNT(*) AS ?n), (SUM(?x) AS ?total), (COUNT(DISTINCT ?v) AS ?d).
type Aggregate struct {
	Func     AggFunc
	Distinct bool // COUNT(DISTINCT ?v) only
	Var      Var  // argument variable; empty means '*' (COUNT only)
	As       Var  // output alias
}

// String renders the aggregate as it appears in SELECT.
func (a Aggregate) String() string {
	arg := "*"
	if a.Var != "" {
		arg = "?" + string(a.Var)
	}
	if a.Distinct {
		arg = "DISTINCT " + arg
	}
	return fmt.Sprintf("(%s(%s) AS ?%s)", a.Func, arg, a.As)
}
