package sparql

import (
	"strings"

	"repro/internal/rdf"
)

// This file implements the SPARQL-Update subset the updatable store
// needs: INSERT DATA and DELETE DATA over ground triples. The grammar:
//
//	update := prefix* op (";" op)* ";"?
//	op     := ("INSERT" | "DELETE") "DATA" "{" data "}"
//	data   := (node predobj (";" predobj)* ".")*
//
// where every node must be a constant term — variables and %parameters
// are update-parse errors. PREFIX declarations and the 'a' keyword work
// as in queries, and the ';'/',' predicate-object abbreviations of the
// query grammar are accepted inside data blocks.

// UpdateOp is one INSERT DATA or DELETE DATA operation.
type UpdateOp struct {
	Insert  bool // true for INSERT DATA, false for DELETE DATA
	Triples []rdf.Triple
}

// Update is a parsed SPARQL-Update request: a sequence of operations
// applied in order.
type Update struct {
	Ops []UpdateOp
}

// InsertCount returns the total number of triples named by INSERT DATA
// operations (before set semantics are applied by the store).
func (u *Update) InsertCount() int { return u.count(true) }

// DeleteCount returns the total number of triples named by DELETE DATA
// operations.
func (u *Update) DeleteCount() int { return u.count(false) }

func (u *Update) count(insert bool) int {
	n := 0
	for _, op := range u.Ops {
		if op.Insert == insert {
			n += len(op.Triples)
		}
	}
	return n
}

// String renders the update in parseable syntax.
func (u *Update) String() string {
	var b strings.Builder
	for i, op := range u.Ops {
		if i > 0 {
			b.WriteString(" ;\n")
		}
		if op.Insert {
			b.WriteString("INSERT DATA {\n")
		} else {
			b.WriteString("DELETE DATA {\n")
		}
		for _, t := range op.Triples {
			b.WriteString("  " + t.String() + "\n")
		}
		b.WriteString("}")
	}
	return b.String()
}

// ParseUpdate parses a SPARQL-Update request (INSERT DATA / DELETE DATA
// operations, ';'-separated).
func ParseUpdate(src string) (*Update, error) {
	p := &parser{lex: lexer{src: src}, prefixes: map[string]string{}}
	if err := p.advance(); err != nil {
		return nil, err
	}
	u, err := p.update()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, p.errf("trailing content after update")
	}
	return u, nil
}

// MustParseUpdate is ParseUpdate that panics on error; intended for
// static definitions in tests and examples.
func MustParseUpdate(src string) *Update {
	u, err := ParseUpdate(src)
	if err != nil {
		panic(err)
	}
	return u
}

func (p *parser) update() (*Update, error) {
	for p.isKeyword("PREFIX") {
		if err := p.prefixDecl(); err != nil {
			return nil, err
		}
	}
	u := &Update{}
	for {
		var insert bool
		switch {
		case p.isKeyword("INSERT"):
			insert = true
		case p.isKeyword("DELETE"):
			insert = false
		default:
			if len(u.Ops) == 0 {
				return nil, p.errf("expected INSERT DATA or DELETE DATA")
			}
			return u, nil
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("DATA"); err != nil {
			return nil, err
		}
		triples, err := p.dataBlock()
		if err != nil {
			return nil, err
		}
		u.Ops = append(u.Ops, UpdateOp{Insert: insert, Triples: triples})
		if p.tok.kind != tokSemicolon {
			return u, nil
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		// Allow a trailing ';' after the last operation.
		if p.tok.kind == tokEOF {
			return u, nil
		}
	}
}

// dataBlock parses '{' ground triples '}' with the query grammar's
// ';'/',' abbreviations, requiring every node to be a constant term.
func (p *parser) dataBlock() ([]rdf.Triple, error) {
	if p.tok.kind != tokLBrace {
		return nil, p.errf("expected '{' after DATA")
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	var out []rdf.Triple
	for p.tok.kind != tokRBrace {
		if p.tok.kind == tokEOF {
			return nil, p.errf("unterminated DATA block")
		}
		subj, err := p.groundNode()
		if err != nil {
			return nil, err
		}
		for {
			pred, err := p.groundNode()
			if err != nil {
				return nil, err
			}
			for {
				obj, err := p.groundNode()
				if err != nil {
					return nil, err
				}
				t := rdf.Triple{S: subj, P: pred, O: obj}
				if !t.Valid() {
					return nil, p.errf("invalid triple %s (subject must be IRI or blank, predicate an IRI)", t)
				}
				out = append(out, t)
				if p.tok.kind != tokComma {
					break
				}
				if err := p.advance(); err != nil {
					return nil, err
				}
			}
			if p.tok.kind != tokSemicolon {
				break
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
			if p.tok.kind == tokDot {
				break
			}
		}
		if p.tok.kind != tokDot {
			return nil, p.errf("expected '.' after triple")
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	return out, p.advance() // consume '}'
}

// groundNode parses one node of a DATA block and requires it to be a
// constant term.
func (p *parser) groundNode() (rdf.Term, error) {
	n, err := p.node()
	if err != nil {
		return rdf.Term{}, err
	}
	switch n.Kind {
	case NodeVar:
		return rdf.Term{}, p.errf("variable ?%s not allowed in DATA block (ground triples only)", n.Var)
	case NodeParam:
		return rdf.Term{}, p.errf("parameter %%%s not allowed in DATA block (ground triples only)", n.Param)
	}
	return n.Term, nil
}
