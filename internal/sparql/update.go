package sparql

import (
	"strings"

	"repro/internal/rdf"
)

// This file implements the SPARQL-Update subset the updatable store
// needs: ground INSERT DATA / DELETE DATA, plus the pattern-driven
// DELETE/INSERT WHERE forms. The grammar:
//
//	update := prefix* op (";" op)* ";"?
//	op     := ("INSERT" | "DELETE") "DATA" "{" data "}"
//	        | "DELETE" tmpl "INSERT" tmpl "WHERE" "{" block "}"
//	        | "DELETE" tmpl "WHERE" "{" block "}"
//	        | "INSERT" tmpl "WHERE" "{" block "}"
//	        | "DELETE" "WHERE" "{" block "}"       (pattern doubles as template)
//	tmpl   := "{" (triple patterns, variables allowed) "}"
//	data   := (node predobj (";" predobj)* ".")*
//
// where every DATA node must be a constant term — variables and
// %parameters are update-parse errors there. WHERE blocks are the query
// grammar's BGP + FILTER shape (no OPTIONAL/UNION); every template
// variable must be bound by the WHERE block so instantiation always
// yields ground triples. PREFIX declarations, the 'a' keyword and the
// ';'/',' predicate-object abbreviations work as in queries.

// UpdateOp is one operation of an update request: a ground INSERT
// DATA/DELETE DATA batch (Where == nil), or a pattern-driven
// DELETE/INSERT WHERE modification (Where != nil) whose templates are
// instantiated once per WHERE solution.
type UpdateOp struct {
	Insert  bool // true for INSERT DATA, false for DELETE DATA
	Triples []rdf.Triple

	// WHERE-form fields: the delete and insert templates (at least one
	// non-empty) and the BGP + filters the templates are instantiated
	// from. Insert/Triples above are unused for WHERE-form ops.
	DeleteTmpl   []TriplePattern
	InsertTmpl   []TriplePattern
	Where        []TriplePattern
	WhereFilters []Filter
}

// IsWhere reports whether the op is a pattern-driven DELETE/INSERT WHERE
// modification.
func (op *UpdateOp) IsWhere() bool { return len(op.Where) > 0 }

// WhereQuery returns the SELECT * query executing the op's WHERE block.
func (op *UpdateOp) WhereQuery() *Query {
	return &Query{Where: op.Where, Filters: op.WhereFilters}
}

// Update is a parsed SPARQL-Update request: a sequence of operations
// applied in order.
type Update struct {
	Ops []UpdateOp
}

// InsertCount returns the total number of triples named by ground
// INSERT DATA operations (before set semantics are applied by the
// store); WHERE-form inserts are data-dependent and not counted.
func (u *Update) InsertCount() int { return u.count(true) }

// DeleteCount returns the total number of triples named by ground
// DELETE DATA operations.
func (u *Update) DeleteCount() int { return u.count(false) }

func (u *Update) count(insert bool) int {
	n := 0
	for _, op := range u.Ops {
		if !op.IsWhere() && op.Insert == insert {
			n += len(op.Triples)
		}
	}
	return n
}

// HasWhere reports whether any operation is a pattern-driven
// DELETE/INSERT WHERE modification.
func (u *Update) HasWhere() bool {
	for i := range u.Ops {
		if u.Ops[i].IsWhere() {
			return true
		}
	}
	return false
}

// String renders the update in parseable syntax. DELETE WHERE shorthand
// is normalized to its explicit DELETE {tmpl} WHERE {tmpl} form.
func (u *Update) String() string {
	var b strings.Builder
	for i := range u.Ops {
		op := &u.Ops[i]
		if i > 0 {
			b.WriteString(" ;\n")
		}
		if !op.IsWhere() {
			if op.Insert {
				b.WriteString("INSERT DATA {\n")
			} else {
				b.WriteString("DELETE DATA {\n")
			}
			for _, t := range op.Triples {
				b.WriteString("  " + t.String() + "\n")
			}
			b.WriteString("}")
			continue
		}
		writeTmpl := func(kw string, tmpl []TriplePattern) {
			b.WriteString(kw + " {\n")
			for _, tp := range tmpl {
				b.WriteString("  " + tp.String() + "\n")
			}
			b.WriteString("} ")
		}
		if len(op.DeleteTmpl) > 0 {
			writeTmpl("DELETE", op.DeleteTmpl)
		}
		if len(op.InsertTmpl) > 0 {
			writeTmpl("INSERT", op.InsertTmpl)
		}
		b.WriteString("WHERE {\n")
		for _, tp := range op.Where {
			b.WriteString("  " + tp.String() + "\n")
		}
		for _, f := range op.WhereFilters {
			b.WriteString("  " + f.String() + "\n")
		}
		b.WriteString("}")
	}
	return b.String()
}

// ParseUpdate parses a SPARQL-Update request (INSERT DATA / DELETE DATA
// operations, ';'-separated).
func ParseUpdate(src string) (*Update, error) {
	p := &parser{lex: lexer{src: src}, prefixes: map[string]string{}}
	if err := p.advance(); err != nil {
		return nil, err
	}
	u, err := p.update()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, p.errf("trailing content after update")
	}
	return u, nil
}

// MustParseUpdate is ParseUpdate that panics on error; intended for
// static definitions in tests and examples.
func MustParseUpdate(src string) *Update {
	u, err := ParseUpdate(src)
	if err != nil {
		panic(err)
	}
	return u
}

func (p *parser) update() (*Update, error) {
	for p.isKeyword("PREFIX") {
		if err := p.prefixDecl(); err != nil {
			return nil, err
		}
	}
	u := &Update{}
	for {
		var insert bool
		switch {
		case p.isKeyword("INSERT"):
			insert = true
		case p.isKeyword("DELETE"):
			insert = false
		default:
			if len(u.Ops) == 0 {
				return nil, p.errf("expected INSERT, DELETE or DATA operation")
			}
			return u, nil
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		if !p.isKeyword("DATA") {
			op, err := p.modifyOp(insert)
			if err != nil {
				return nil, err
			}
			u.Ops = append(u.Ops, op)
			if p.tok.kind != tokSemicolon {
				return u, nil
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
			if p.tok.kind == tokEOF {
				return u, nil
			}
			continue
		}
		if err := p.advance(); err != nil { // consume DATA
			return nil, err
		}
		triples, err := p.dataBlock()
		if err != nil {
			return nil, err
		}
		u.Ops = append(u.Ops, UpdateOp{Insert: insert, Triples: triples})
		if p.tok.kind != tokSemicolon {
			return u, nil
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		// Allow a trailing ';' after the last operation.
		if p.tok.kind == tokEOF {
			return u, nil
		}
	}
}

// dataBlock parses '{' ground triples '}' with the query grammar's
// ';'/',' abbreviations, requiring every node to be a constant term.
func (p *parser) dataBlock() ([]rdf.Triple, error) {
	if p.tok.kind != tokLBrace {
		return nil, p.errf("expected '{' after DATA")
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	var out []rdf.Triple
	for p.tok.kind != tokRBrace {
		if p.tok.kind == tokEOF {
			return nil, p.errf("unterminated DATA block")
		}
		subj, err := p.groundNode()
		if err != nil {
			return nil, err
		}
		for {
			pred, err := p.groundNode()
			if err != nil {
				return nil, err
			}
			for {
				obj, err := p.groundNode()
				if err != nil {
					return nil, err
				}
				t := rdf.Triple{S: subj, P: pred, O: obj}
				if !t.Valid() {
					return nil, p.errf("invalid triple %s (subject must be IRI or blank, predicate an IRI)", t)
				}
				out = append(out, t)
				if p.tok.kind != tokComma {
					break
				}
				if err := p.advance(); err != nil {
					return nil, err
				}
			}
			if p.tok.kind != tokSemicolon {
				break
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
			if p.tok.kind == tokDot {
				break
			}
		}
		if p.tok.kind != tokDot {
			return nil, p.errf("expected '.' after triple")
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	return out, p.advance() // consume '}'
}

// modifyOp parses the pattern-driven forms with the leading INSERT or
// DELETE keyword already consumed:
//
//	DELETE {tmpl} INSERT {tmpl} WHERE {block}
//	DELETE {tmpl} WHERE {block} | INSERT {tmpl} WHERE {block}
//	DELETE WHERE {block}                 (block doubles as the template)
func (p *parser) modifyOp(insert bool) (UpdateOp, error) {
	var op UpdateOp
	if insert {
		tmpl, err := p.templateBlock()
		if err != nil {
			return op, err
		}
		op.InsertTmpl = tmpl
	} else if p.isKeyword("WHERE") {
		// DELETE WHERE {block}: the WHERE patterns double as the
		// delete template; parsed below.
	} else {
		tmpl, err := p.templateBlock()
		if err != nil {
			return op, err
		}
		op.DeleteTmpl = tmpl
		if p.isKeyword("INSERT") {
			if err := p.advance(); err != nil {
				return op, err
			}
			ins, err := p.templateBlock()
			if err != nil {
				return op, err
			}
			op.InsertTmpl = ins
		}
	}
	if err := p.expectKeyword("WHERE"); err != nil {
		return op, err
	}
	g, err := p.group(0)
	if err != nil {
		return op, err
	}
	if len(g.Unions) > 0 || len(g.Optionals) > 0 {
		return op, p.errf("the WHERE block of an update must be a basic graph pattern (no OPTIONAL/UNION)")
	}
	if len(g.Patterns) == 0 {
		return op, p.errf("empty WHERE block in update")
	}
	op.Where = g.Patterns
	op.WhereFilters = g.Filters
	if op.DeleteTmpl == nil && op.InsertTmpl == nil {
		// DELETE WHERE shorthand.
		op.DeleteTmpl = g.Patterns
	}
	return op, p.validateModify(&op)
}

// validateModify enforces that templates and WHERE blocks are
// parameter-free and that every template variable is bound by the WHERE
// block, so instantiation always yields ground triples.
func (p *parser) validateModify(op *UpdateOp) error {
	bound := map[Var]bool{}
	for _, tp := range op.Where {
		for _, n := range []Node{tp.S, tp.P, tp.O} {
			switch n.Kind {
			case NodeParam:
				return p.errf("parameter %%%s not allowed in an update WHERE block", n.Param)
			case NodeVar:
				bound[n.Var] = true
			}
		}
	}
	for _, f := range op.WhereFilters {
		for _, n := range []Node{f.Left, f.Right} {
			if n.Kind == NodeParam {
				return p.errf("parameter %%%s not allowed in an update WHERE block", n.Param)
			}
		}
	}
	for _, tmpl := range [][]TriplePattern{op.DeleteTmpl, op.InsertTmpl} {
		for _, tp := range tmpl {
			for _, n := range []Node{tp.S, tp.P, tp.O} {
				switch n.Kind {
				case NodeParam:
					return p.errf("parameter %%%s not allowed in an update template", n.Param)
				case NodeVar:
					if !bound[n.Var] {
						return p.errf("template variable ?%s is not bound by the WHERE block", n.Var)
					}
				}
			}
		}
	}
	return nil
}

// templateBlock parses "{" triple patterns "}" where variables are
// allowed; FILTERs and nested groups are not.
func (p *parser) templateBlock() ([]TriplePattern, error) {
	if p.tok.kind != tokLBrace {
		return nil, p.errf("expected '{' to open an update template")
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	g := &Group{}
	for p.tok.kind != tokRBrace {
		if p.tok.kind == tokEOF {
			return nil, p.errf("unterminated update template")
		}
		if p.isKeyword("FILTER") || p.tok.kind == tokLBrace {
			return nil, p.errf("update templates hold triple patterns only")
		}
		if err := p.triples(g); err != nil {
			return nil, err
		}
	}
	if err := p.advance(); err != nil { // consume '}'
		return nil, err
	}
	if len(g.Patterns) == 0 {
		return nil, p.errf("empty update template")
	}
	return g.Patterns, nil
}

// groundNode parses one node of a DATA block and requires it to be a
// constant term.
func (p *parser) groundNode() (rdf.Term, error) {
	n, err := p.node()
	if err != nil {
		return rdf.Term{}, err
	}
	switch n.Kind {
	case NodeVar:
		return rdf.Term{}, p.errf("variable ?%s not allowed in DATA block (ground triples only)", n.Var)
	case NodeParam:
		return rdf.Term{}, p.errf("parameter %%%s not allowed in DATA block (ground triples only)", n.Param)
	}
	return n.Term, nil
}
