package sparql

import "testing"

// FuzzParse checks the query parser on arbitrary input: no panics, and
// every successfully parsed query must render (String) to text that parses
// again to the same rendering (fixpoint).
func FuzzParse(f *testing.F) {
	seeds := []string{
		`SELECT * WHERE { ?s ?p ?o . }`,
		`PREFIX ex: <http://x/> SELECT DISTINCT ?s WHERE { ?s a ex:T ; ex:p "v"@en, 42 . } ORDER BY DESC(?s) LIMIT 3`,
		`select * where { ?person <http://sn/firstName> %name . FILTER(?person != %name && ?x >= 3.5) }`,
		`SELECT ?x WHERE { $x <http://p> "esc\"d\n" . }`,
		`SELECT * WHERE {`,
		`WHERE { ?s ?p ?o . }`,
		`SELECT * WHERE { ?s ?p ?o . } LIMIT -1`,
		"# only a comment",
		"",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			return
		}
		rendered := q.String()
		q2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("rendering of valid query does not re-parse: %v\nsource: %q\nrendered: %q", err, src, rendered)
		}
		if q2.String() != rendered {
			t.Fatalf("String not a fixpoint:\nfirst:  %q\nsecond: %q", rendered, q2.String())
		}
	})
}
