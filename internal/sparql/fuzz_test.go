package sparql

import "testing"

// FuzzParseQuery checks the query parser on arbitrary input: no panics, and
// every successfully parsed query must render (String) to text that parses
// again to the same rendering (fixpoint).
func FuzzParseQuery(f *testing.F) {
	seeds := []string{
		`SELECT * WHERE { ?s ?p ?o . }`,
		`PREFIX ex: <http://x/> SELECT DISTINCT ?s WHERE { ?s a ex:T ; ex:p "v"@en, 42 . } ORDER BY DESC(?s) LIMIT 3`,
		`select * where { ?person <http://sn/firstName> %name . FILTER(?person != %name && ?x >= 3.5) }`,
		`SELECT ?x WHERE { $x <http://p> "esc\"d\n" . }`,
		`SELECT * WHERE {`,
		`WHERE { ?s ?p ?o . }`,
		`SELECT * WHERE { ?s ?p ?o . } LIMIT -1`,
		`SELECT * WHERE { ?s <http://x/p> ?o . OPTIONAL { ?o <http://x/q> ?v . FILTER(?v > 3) } }`,
		`SELECT * WHERE { { ?s <http://x/p> ?o . } UNION { ?s <http://x/q> ?o . } UNION { ?o <http://x/r> ?s . } }`,
		`SELECT ?s (COUNT(*) AS ?n) (SUM(?v) AS ?t) WHERE { ?s <http://x/p> ?v . } GROUP BY ?s HAVING(?n >= 2) ORDER BY ?s`,
		`SELECT (COUNT(DISTINCT ?o) AS ?n) (AVG(?o) AS ?a) (MIN(?o) AS ?lo) (MAX(?o) AS ?hi) WHERE { ?s ?p ?o . }`,
		`SELECT * WHERE { ?a <http://x/p> ?b . OPTIONAL { { ?b <http://x/q> ?c . } UNION { ?b <http://x/r> ?c . } } }`,
		`SELECT * WHERE { OPTIONAL { ?s ?p ?o . } }`,
		"# only a comment",
		"",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			return
		}
		rendered := q.String()
		q2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("rendering of valid query does not re-parse: %v\nsource: %q\nrendered: %q", err, src, rendered)
		}
		if q2.String() != rendered {
			t.Fatalf("String not a fixpoint:\nfirst:  %q\nsecond: %q", rendered, q2.String())
		}
	})
}

// FuzzParseUpdate checks the SPARQL-Update parser on arbitrary input: no
// panics, every parsed update holds only ground valid triples, and the
// rendering re-parses to the same rendering (fixpoint).
func FuzzParseUpdate(f *testing.F) {
	seeds := []string{
		`INSERT DATA { <http://x/s> <http://x/p> <http://x/o> . }`,
		`PREFIX ex: <http://x/> INSERT DATA { ex:s a ex:T ; ex:p "v"@en, 42 . } ; DELETE DATA { ex:s ex:p ex:o . } ;`,
		`DELETE DATA { <http://x/s> <http://x/p> "5"^^<http://www.w3.org/2001/XMLSchema#integer> . }`,
		`INSERT DATA { ?s <http://x/p> <http://x/o> . }`,
		`INSERT DATA { <http://x/s> <http://x/p> <http://x/o> .`,
		`INSERT { <http://x/s> <http://x/p> <http://x/o> . }`,
		`DELETE WHERE { ?s <http://x/p> ?o . }`,
		`INSERT { ?o <http://x/q> ?s . } WHERE { ?s <http://x/p> ?o . FILTER(?o != <http://x/s>) }`,
		`DELETE { ?s <http://x/p> ?o . } INSERT { ?s <http://x/q> ?o . } WHERE { ?s <http://x/p> ?o . }`,
		`DELETE { ?s <http://x/p> ?v . } WHERE { ?s <http://x/p> ?o . }`,
		`INSERT { ?s <http://x/p> ?o . } WHERE { OPTIONAL { ?s ?p ?o . } }`,
		`SELECT * WHERE { ?s ?p ?o . }`,
		"",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		u, err := ParseUpdate(src)
		if err != nil {
			return
		}
		for _, op := range u.Ops {
			for _, tr := range op.Triples {
				if !tr.Valid() {
					t.Fatalf("parsed update holds invalid triple %v\nsource: %q", tr, src)
				}
			}
		}
		rendered := u.String()
		u2, err := ParseUpdate(rendered)
		if err != nil {
			t.Fatalf("rendering of valid update does not re-parse: %v\nsource: %q\nrendered: %q", err, src, rendered)
		}
		if u2.String() != rendered {
			t.Fatalf("String not a fixpoint:\nfirst:  %q\nsecond: %q", rendered, u2.String())
		}
	})
}
