package dict

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/rdf"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	d := New()
	terms := []rdf.Term{
		rdf.NewIRI("http://x/a"),
		rdf.NewIRI("http://x/b"),
		rdf.NewLiteral("v"),
		rdf.NewLangLiteral("v", "en"),
		rdf.NewTypedLiteral("1", rdf.XSDInteger),
		rdf.NewBlank("b0"),
	}
	ids := make([]ID, len(terms))
	for i, tm := range terms {
		ids[i] = d.Encode(tm)
		if ids[i] == None {
			t.Fatalf("Encode returned None for %v", tm)
		}
	}
	for i, tm := range terms {
		if got := d.Decode(ids[i]); got != tm {
			t.Errorf("Decode(%d) = %v, want %v", ids[i], got, tm)
		}
	}
	if d.Len() != len(terms) {
		t.Fatalf("Len = %d, want %d", d.Len(), len(terms))
	}
}

func TestEncodeIdempotent(t *testing.T) {
	d := New()
	a := d.Encode(rdf.NewIRI("http://x/a"))
	b := d.Encode(rdf.NewIRI("http://x/a"))
	if a != b {
		t.Fatalf("same term got two IDs: %d, %d", a, b)
	}
	if d.Len() != 1 {
		t.Fatalf("Len = %d, want 1", d.Len())
	}
}

func TestDistinctTermsDistinctIDs(t *testing.T) {
	// Plain literal vs lang literal vs typed literal with same lexical form
	// must get distinct IDs.
	d := New()
	ids := map[ID]bool{
		d.Encode(rdf.NewLiteral("x")):                       true,
		d.Encode(rdf.NewLangLiteral("x", "en")):             true,
		d.Encode(rdf.NewTypedLiteral("x", rdf.XSDInteger)):  true,
		d.Encode(rdf.NewIRI("x")):                           true,
		d.Encode(rdf.NewBlank("x")):                         true,
		d.Encode(rdf.NewTypedLiteral("x", rdf.XSDDateTime)): true,
		d.Encode(rdf.NewLangLiteral("x", "fr")):             true,
	}
	if len(ids) != 7 {
		t.Fatalf("got %d distinct IDs, want 7", len(ids))
	}
}

func TestLookupMissing(t *testing.T) {
	d := New()
	if id, ok := d.Lookup(rdf.NewIRI("http://x/a")); ok || id != None {
		t.Fatalf("Lookup on empty dict = (%d, %v)", id, ok)
	}
	if _, ok := d.TryDecode(None); ok {
		t.Fatal("TryDecode(None) should fail")
	}
	if _, ok := d.TryDecode(42); ok {
		t.Fatal("TryDecode(out of range) should fail")
	}
}

func TestDecodeInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New().Decode(1)
}

func TestConcurrentEncode(t *testing.T) {
	d := New()
	const workers = 8
	const perWorker = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				// All workers encode the same term set: IDs must agree.
				id := d.Encode(rdf.NewIRI(fmt.Sprintf("http://x/%d", i)))
				if got := d.Decode(id); got.Value != fmt.Sprintf("http://x/%d", i) {
					t.Errorf("decode mismatch for %d", i)
					return
				}
			}
		}()
	}
	wg.Wait()
	if d.Len() != perWorker {
		t.Fatalf("Len = %d, want %d", d.Len(), perWorker)
	}
}

// Property: Encode∘Decode is the identity, and IDs are dense 1..n.
func TestEncodeDenseProperty(t *testing.T) {
	d := New()
	seen := make(map[rdf.Term]ID)
	f := func(s string) bool {
		tm := rdf.NewLiteral(s)
		id := d.Encode(tm)
		if prev, ok := seen[tm]; ok && prev != id {
			return false
		}
		seen[tm] = id
		return int(id) >= 1 && int(id) <= d.Len() && d.Decode(id) == tm
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeIRIHelpers(t *testing.T) {
	d := New()
	id := d.EncodeIRI("http://x/a")
	got, ok := d.LookupIRI("http://x/a")
	if !ok || got != id {
		t.Fatalf("LookupIRI = (%d, %v), want (%d, true)", got, ok, id)
	}
}
