// Package dict implements dictionary encoding of RDF terms: a bijection
// between terms and dense uint32 IDs. Dictionary encoding is the standard
// first step in RDF stores (RDF-3X, Virtuoso, Hexastore): all downstream
// index structures and joins operate on fixed-width IDs instead of strings.
//
// IDs are assigned in insertion order starting at 1; 0 is reserved as the
// invalid/absent ID.
package dict

import (
	"fmt"
	"sync"

	"repro/internal/rdf"
)

// ID is a dictionary-encoded term identifier. 0 is never a valid ID.
type ID uint32

// None is the zero, invalid ID.
const None ID = 0

// Base is a read-only term table a Dict can sit on top of: ids [1, Len()]
// resolve through the base, fresh terms are assigned ids above it by the
// mutable tail. The mmap-backed snapshot dictionary (store.OpenMapped)
// implements Base over its on-disk offset table and string heap; because
// tail ids continue exactly where the base stops, a store opened mapped
// assigns the same ids to the same new terms as its heap-loaded twin, which
// is what keeps results bit-identical across backings. Implementations must
// be safe for concurrent use (immutable bases are trivially so).
//
// TryDecode returns (zero, false) for ids the base cannot resolve — on an
// untrusted on-disk base that includes corrupt records, never a panic.
type Base interface {
	Len() int
	TryDecode(ID) (rdf.Term, bool)
	Lookup(rdf.Term) (ID, bool)
}

// Dict maps rdf.Term values to dense IDs and back. It is safe for
// concurrent use; lookups take a read lock, Encode takes a write lock only
// when inserting a new term. A Dict may wrap a read-only Base (NewOver):
// the base owns ids [1, nbase] and the mutable tail continues from
// nbase+1.
type Dict struct {
	mu    sync.RWMutex
	base  Base            // optional read-only bottom layer (nil for none)
	nbase int             // base.Len() at creation, 0 without a base
	terms []rdf.Term      // terms[id-1-nbase] is the term for id
	ids   map[rdf.Term]ID // inverse mapping of the tail only
}

// New returns an empty dictionary.
func New() *Dict {
	return &Dict{ids: make(map[rdf.Term]ID)}
}

// NewWithCapacity returns an empty dictionary pre-sized for n terms.
func NewWithCapacity(n int) *Dict {
	return &Dict{
		terms: make([]rdf.Term, 0, n),
		ids:   make(map[rdf.Term]ID, n),
	}
}

// NewOver returns a dictionary whose ids [1, base.Len()] resolve through
// the read-only base; Encode assigns fresh terms ids from base.Len()+1
// upward. The base must not change size afterwards.
func NewOver(base Base) *Dict {
	return &Dict{base: base, nbase: base.Len(), ids: make(map[rdf.Term]ID)}
}

// Base returns the read-only bottom layer, or nil for a plain dictionary.
func (d *Dict) Base() Base { return d.base }

// Encode returns the ID for t, assigning a fresh one if t is new.
func (d *Dict) Encode(t rdf.Term) ID {
	if d.base != nil {
		if id, ok := d.base.Lookup(t); ok {
			return id
		}
	}
	d.mu.RLock()
	id, ok := d.ids[t]
	d.mu.RUnlock()
	if ok {
		return id
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if id, ok := d.ids[t]; ok {
		return id
	}
	d.terms = append(d.terms, t)
	id = ID(d.nbase + len(d.terms))
	d.ids[t] = id
	return id
}

// Lookup returns the ID for t, or (None, false) if t has not been encoded.
func (d *Dict) Lookup(t rdf.Term) (ID, bool) {
	if d.base != nil {
		if id, ok := d.base.Lookup(t); ok {
			return id, true
		}
	}
	d.mu.RLock()
	id, ok := d.ids[t]
	d.mu.RUnlock()
	return id, ok
}

// Decode returns the term for id. It panics on an invalid ID — an invalid
// ID inside the engine is a programming error, not an input error. (An id
// a corrupt mapped base cannot resolve also panics here; untrusted-input
// paths must use TryDecode.)
func (d *Dict) Decode(id ID) rdf.Term {
	t, ok := d.TryDecode(id)
	if !ok {
		panic(fmt.Sprintf("dict: decode of invalid id %d (size %d)", id, d.Len()))
	}
	return t
}

// TryDecode returns the term for id, or (zero, false) if id is invalid.
func (d *Dict) TryDecode(id ID) (rdf.Term, bool) {
	if id == None {
		return rdf.Term{}, false
	}
	if int(id) <= d.nbase {
		return d.base.TryDecode(id)
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	i := int(id) - d.nbase
	if i > len(d.terms) {
		return rdf.Term{}, false
	}
	return d.terms[i-1], true
}

// Len returns the number of distinct terms encoded.
func (d *Dict) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.nbase + len(d.terms)
}

// EncodeIRI is a convenience for Encode(rdf.NewIRI(iri)).
func (d *Dict) EncodeIRI(iri string) ID { return d.Encode(rdf.NewIRI(iri)) }

// LookupIRI is a convenience for Lookup(rdf.NewIRI(iri)).
func (d *Dict) LookupIRI(iri string) (ID, bool) { return d.Lookup(rdf.NewIRI(iri)) }
