// Package dict implements dictionary encoding of RDF terms: a bijection
// between terms and dense uint32 IDs. Dictionary encoding is the standard
// first step in RDF stores (RDF-3X, Virtuoso, Hexastore): all downstream
// index structures and joins operate on fixed-width IDs instead of strings.
//
// IDs are assigned in insertion order starting at 1; 0 is reserved as the
// invalid/absent ID.
package dict

import (
	"fmt"
	"sync"

	"repro/internal/rdf"
)

// ID is a dictionary-encoded term identifier. 0 is never a valid ID.
type ID uint32

// None is the zero, invalid ID.
const None ID = 0

// Dict maps rdf.Term values to dense IDs and back. It is safe for
// concurrent use; lookups take a read lock, Encode takes a write lock only
// when inserting a new term.
type Dict struct {
	mu    sync.RWMutex
	terms []rdf.Term      // terms[id-1] is the term for id
	ids   map[rdf.Term]ID // inverse mapping
}

// New returns an empty dictionary.
func New() *Dict {
	return &Dict{ids: make(map[rdf.Term]ID)}
}

// NewWithCapacity returns an empty dictionary pre-sized for n terms.
func NewWithCapacity(n int) *Dict {
	return &Dict{
		terms: make([]rdf.Term, 0, n),
		ids:   make(map[rdf.Term]ID, n),
	}
}

// Encode returns the ID for t, assigning a fresh one if t is new.
func (d *Dict) Encode(t rdf.Term) ID {
	d.mu.RLock()
	id, ok := d.ids[t]
	d.mu.RUnlock()
	if ok {
		return id
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if id, ok := d.ids[t]; ok {
		return id
	}
	d.terms = append(d.terms, t)
	id = ID(len(d.terms))
	d.ids[t] = id
	return id
}

// Lookup returns the ID for t, or (None, false) if t has not been encoded.
func (d *Dict) Lookup(t rdf.Term) (ID, bool) {
	d.mu.RLock()
	id, ok := d.ids[t]
	d.mu.RUnlock()
	return id, ok
}

// Decode returns the term for id. It panics on an invalid ID — an invalid
// ID inside the engine is a programming error, not an input error.
func (d *Dict) Decode(id ID) rdf.Term {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if id == None || int(id) > len(d.terms) {
		panic(fmt.Sprintf("dict: decode of invalid id %d (size %d)", id, len(d.terms)))
	}
	return d.terms[id-1]
}

// TryDecode returns the term for id, or (zero, false) if id is invalid.
func (d *Dict) TryDecode(id ID) (rdf.Term, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if id == None || int(id) > len(d.terms) {
		return rdf.Term{}, false
	}
	return d.terms[id-1], true
}

// Len returns the number of distinct terms encoded.
func (d *Dict) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.terms)
}

// EncodeIRI is a convenience for Encode(rdf.NewIRI(iri)).
func (d *Dict) EncodeIRI(iri string) ID { return d.Encode(rdf.NewIRI(iri)) }

// LookupIRI is a convenience for Lookup(rdf.NewIRI(iri)).
func (d *Dict) LookupIRI(iri string) (ID, bool) { return d.Lookup(rdf.NewIRI(iri)) }
