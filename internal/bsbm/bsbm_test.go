package bsbm

import (
	"testing"

	"repro/internal/exec"
	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/store"
)

func TestValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := TestConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{},
		{Products: 10}, // missing depth
		{Products: 10, TypeDepth: 2, TypeBranching: 1}, // branching < 2
		{Products: -1, TypeDepth: 2, TypeBranching: 2}, // negative products
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d should fail validation", i)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := TestConfig()
	var a, b []rdf.Triple
	if _, err := Generate(cfg, func(t rdf.Triple) error { a = append(a, t); return nil }); err != nil {
		t.Fatal(err)
	}
	if _, err := Generate(cfg, func(t rdf.Triple) error { b = append(b, t); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("triple %d differs", i)
		}
	}
	// Different seed differs.
	cfg2 := cfg
	cfg2.Seed = 99
	var c []rdf.Triple
	if _, err := Generate(cfg2, func(t rdf.Triple) error { c = append(c, t); return nil }); err != nil {
		t.Fatal(err)
	}
	same := len(c) == len(a)
	if same {
		identical := true
		for i := range a {
			if a[i] != c[i] {
				identical = false
				break
			}
		}
		if identical {
			t.Fatal("different seeds produced identical data")
		}
	}
}

func TestHierarchySkew(t *testing.T) {
	// The root type must cover all products; leaves only a fraction. This
	// is the skew that drives E1/E3.
	_, ds, err := BuildStore(TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if ds.ProductsPerType[0] != ds.Config.Products {
		t.Fatalf("root covers %d products, want %d", ds.ProductsPerType[0], ds.Config.Products)
	}
	leaves := 0
	maxLeaf := 0
	for i, n := range ds.Types {
		if len(n.Children) == 0 {
			leaves++
			if ds.ProductsPerType[i] > maxLeaf {
				maxLeaf = ds.ProductsPerType[i]
			}
		}
	}
	if leaves == 0 {
		t.Fatal("no leaf types")
	}
	if maxLeaf*3 > ds.Config.Products {
		t.Fatalf("a leaf covers %d of %d products — hierarchy not skewed", maxLeaf, ds.Config.Products)
	}
	// Parent covers at least as many products as each child.
	for i, n := range ds.Types {
		for _, c := range n.Children {
			if ds.ProductsPerType[c] > ds.ProductsPerType[i] {
				t.Fatalf("child %d (%d) exceeds parent %d (%d)", c, ds.ProductsPerType[c], i, ds.ProductsPerType[i])
			}
		}
	}
}

func TestStoreCountsMatchMetadata(t *testing.T) {
	st, ds, err := BuildStore(TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	d := st.Dict()
	typeID, ok := d.Lookup(PredType)
	if !ok {
		t.Fatal("rdf:type missing")
	}
	for i := range ds.Types {
		tid, ok := d.Lookup(ds.Types[i].IRI)
		if !ok {
			t.Fatalf("type %d missing from dictionary", i)
		}
		got := st.Count(store.Pattern{P: typeID, O: tid})
		if got != ds.ProductsPerType[i] {
			t.Fatalf("type %d: store count %d, metadata %d", i, got, ds.ProductsPerType[i])
		}
	}
}

func TestQ4Runs(t *testing.T) {
	st, ds, err := BuildStore(TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	q := Q4()
	if got := q.Params(); len(got) != 1 || got[0] != "ProductType" {
		t.Fatalf("Q4 params = %v", got)
	}
	// Bind to the root type: touches every product.
	bound, err := q.Bind(sparql.Binding{"ProductType": ds.Types[0].IRI})
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := exec.Query(bound, st, exec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("Q4 on root type returned nothing")
	}
	// A leaf type must touch far less data.
	var leaf int
	for i, n := range ds.Types {
		if len(n.Children) == 0 {
			leaf = i
			break
		}
	}
	boundLeaf, err := q.Bind(sparql.Binding{"ProductType": ds.Types[leaf].IRI})
	if err != nil {
		t.Fatal(err)
	}
	resLeaf, _, err := exec.Query(boundLeaf, st, exec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if resLeaf.Cout*2 >= res.Cout {
		t.Fatalf("leaf Cout %v not far below root Cout %v", resLeaf.Cout, res.Cout)
	}
}

func TestQ2Runs(t *testing.T) {
	st, _, err := BuildStore(TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	bound, err := Q2().Bind(sparql.Binding{"Product": ProductIRI(0)})
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := exec.Query(bound, st, exec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("Q2 returned nothing — products share no features")
	}
}

func TestQ1Runs(t *testing.T) {
	st, ds, err := BuildStore(TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	bound, err := Q1().Bind(sparql.Binding{
		"ProductType": ds.Types[0].IRI,
		"Country":     rdf.NewIRI(NS + "CountryUS"),
	})
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := exec.Query(bound, st, exec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("Q1 returned nothing")
	}
}

func TestQ3Runs(t *testing.T) {
	st, ds, err := BuildStore(TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	// A leaf type with one of its own pool features: products carrying both
	// exist by construction (feature draws are leaf-biased).
	leaf := -1
	for i := range ds.Types {
		if len(ds.Types[i].Children) == 0 && len(ds.Types[i].Features) > 0 {
			leaf = i
			break
		}
	}
	if leaf < 0 {
		t.Fatal("no leaf type with features")
	}
	rows := 0
	for _, code := range CountryCodes {
		bound, err := Q3().Bind(sparql.Binding{
			"ProductType": ds.Types[leaf].IRI,
			"Feature":     ds.Types[leaf].Features[0],
			"Country":     CountryIRI(code),
		})
		if err != nil {
			t.Fatal(err)
		}
		res, _, err := exec.Query(bound, st, exec.Options{})
		if err != nil {
			t.Fatal(err)
		}
		rows += len(res.Rows)
	}
	if rows == 0 {
		t.Fatal("Q3 returned nothing across all countries")
	}
}

func TestEmitErrorPropagates(t *testing.T) {
	cfg := TestConfig()
	cfg.Products = 10
	want := "sink full"
	n := 0
	_, err := Generate(cfg, func(rdf.Triple) error {
		n++
		if n > 5 {
			return errTest(want)
		}
		return nil
	})
	if err == nil || err.Error() != want {
		t.Fatalf("err = %v, want %q", err, want)
	}
}

type errTest string

func (e errTest) Error() string { return string(e) }
