// Package bsbm implements a scaled-down Berlin SPARQL Benchmark (BSBM)
// data generator plus the Business-Intelligence query templates the paper
// measures (Q2 "similar products", Q4 "feature price ratio").
//
// The generator reproduces the structural skew that drives the paper's E1
// and E3 findings: product types form a hierarchy, every product is typed
// with a leaf type *and all its ancestors*, so the number of products per
// type grows geometrically toward the root. A query parameterized by
// product type therefore touches wildly different data volumes depending on
// how generic the chosen type is — "depending on how high it is in the type
// hierarchy, the amount of data touched by the query differs greatly" (E1).
package bsbm

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/rdf"
	"repro/internal/store"
)

// NS is the vocabulary namespace.
const NS = "http://bsbm.example.org/"

// Vocabulary IRIs.
var (
	ClassProductType    = rdf.NewIRI(NS + "ProductType")
	PredType            = rdf.NewIRI(rdf.RDFType)
	PredSubClassOf      = rdf.NewIRI(NS + "subClassOf")
	PredProductFeature  = rdf.NewIRI(NS + "productFeature")
	PredProducer        = rdf.NewIRI(NS + "producer")
	PredLabel           = rdf.NewIRI(NS + "label")
	PredPropertyNumeric = rdf.NewIRI(NS + "propertyNumeric1")
	PredOfferProduct    = rdf.NewIRI(NS + "product")
	PredOfferPrice      = rdf.NewIRI(NS + "price")
	PredOfferVendor     = rdf.NewIRI(NS + "vendor")
	PredReviewFor       = rdf.NewIRI(NS + "reviewFor")
	PredReviewRating    = rdf.NewIRI(NS + "rating1")
	PredReviewer        = rdf.NewIRI(NS + "reviewer")
	PredCountry         = rdf.NewIRI(NS + "country")
)

// Config sizes the generated dataset. The zero value is unusable; use
// DefaultConfig or TestConfig.
type Config struct {
	Products           int   // number of products
	TypeDepth          int   // product-type tree depth (root = level 0)
	TypeBranching      int   // children per type node
	FeaturesPerLevel   int   // features attached per type node
	FeaturesPerProduct int   // features each product draws from its type chain
	Producers          int   // number of producers
	Vendors            int   // number of vendors
	OffersPerProduct   int   // average offers per product
	ReviewsPerProduct  int   // average reviews per product
	Reviewers          int   // number of reviewer resources
	Seed               int64 // RNG seed; generation is deterministic per seed
}

// DefaultConfig approximates (at reduced scale) the BSBM mix used in the
// paper: ~1M triples with Products≈30000.
func DefaultConfig() Config {
	return Config{
		Products:           30000,
		TypeDepth:          4,
		TypeBranching:      4,
		FeaturesPerLevel:   10,
		FeaturesPerProduct: 5,
		Producers:          300,
		Vendors:            100,
		OffersPerProduct:   6,
		ReviewsPerProduct:  3,
		Reviewers:          1500,
		Seed:               1,
	}
}

// TestConfig is small enough for unit tests while keeping the hierarchy
// skew (used throughout the test suites and quick benches).
func TestConfig() Config {
	return Config{
		Products:           2000,
		TypeDepth:          3,
		TypeBranching:      3,
		FeaturesPerLevel:   6,
		FeaturesPerProduct: 4,
		Producers:          40,
		Vendors:            20,
		OffersPerProduct:   4,
		ReviewsPerProduct:  2,
		Reviewers:          100,
		Seed:               1,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Products <= 0:
		return fmt.Errorf("bsbm: Products must be positive")
	case c.TypeDepth < 1:
		return fmt.Errorf("bsbm: TypeDepth must be >= 1")
	case c.TypeBranching < 2:
		return fmt.Errorf("bsbm: TypeBranching must be >= 2")
	case c.FeaturesPerLevel < 1 || c.FeaturesPerProduct < 1:
		return fmt.Errorf("bsbm: feature counts must be >= 1")
	case c.Producers < 1 || c.Vendors < 1 || c.Reviewers < 1:
		return fmt.Errorf("bsbm: producers, vendors, reviewers must be >= 1")
	case c.OffersPerProduct < 0 || c.ReviewsPerProduct < 0:
		return fmt.Errorf("bsbm: offers/reviews must be >= 0")
	}
	return nil
}

// TypeNode is one node of the product-type hierarchy.
type TypeNode struct {
	IRI      rdf.Term
	Level    int // 0 = root
	Parent   int // index into Dataset.Types; -1 for root
	Children []int
	Features []rdf.Term // features attached at this node
}

// Dataset describes what was generated (for domain introspection in tests
// and experiments); the triples themselves go to the sink.
type Dataset struct {
	Config Config
	Types  []TypeNode // breadth-first; Types[0] is the root
	// ProductsPerType[i] is the number of products typed (directly or via
	// descendants) with Types[i].
	ProductsPerType []int
}

// CountryCodes are the vendor country codes, assigned round-robin so every
// country is populated even at tiny scales.
var CountryCodes = []string{"US", "DE", "GB", "JP", "CN", "FR", "ES", "RU", "KR", "AT"}

// TypeIRI returns the IRI term of product type i.
func TypeIRI(i int) rdf.Term { return rdf.NewIRI(fmt.Sprintf("%sProductType%d", NS, i)) }

// CountryIRI returns the IRI term of a vendor country code.
func CountryIRI(code string) rdf.Term { return rdf.NewIRI(NS + "Country" + code) }

// FeatureIRI returns the IRI term of feature i.
func FeatureIRI(i int) rdf.Term { return rdf.NewIRI(fmt.Sprintf("%sProductFeature%d", NS, i)) }

// ProductIRI returns the IRI term of product i.
func ProductIRI(i int) rdf.Term { return rdf.NewIRI(fmt.Sprintf("%sProduct%d", NS, i)) }

// Generate produces the dataset, emitting every triple to emit. It returns
// dataset metadata. Generation is deterministic for a given config.
func Generate(cfg Config, emit func(rdf.Triple) error) (*Dataset, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	ds := &Dataset{Config: cfg}
	featureCounter := 0

	// Build the type tree breadth-first.
	ds.Types = append(ds.Types, TypeNode{IRI: TypeIRI(0), Level: 0, Parent: -1})
	for i := 0; i < len(ds.Types); i++ {
		node := &ds.Types[i]
		for f := 0; f < cfg.FeaturesPerLevel; f++ {
			node.Features = append(node.Features, FeatureIRI(featureCounter))
			featureCounter++
		}
		if node.Level >= cfg.TypeDepth {
			continue
		}
		for b := 0; b < cfg.TypeBranching; b++ {
			child := TypeNode{
				IRI:    TypeIRI(len(ds.Types)),
				Level:  node.Level + 1,
				Parent: i,
			}
			node.Children = append(node.Children, len(ds.Types))
			ds.Types = append(ds.Types, child)
		}
	}
	ds.ProductsPerType = make([]int, len(ds.Types))

	// Emit type-hierarchy triples.
	for i := range ds.Types {
		n := &ds.Types[i]
		if err := emit(rdf.NewTriple(n.IRI, PredType, ClassProductType)); err != nil {
			return nil, err
		}
		if n.Parent >= 0 {
			if err := emit(rdf.NewTriple(n.IRI, PredSubClassOf, ds.Types[n.Parent].IRI)); err != nil {
				return nil, err
			}
		}
	}

	// Leaves for product assignment.
	var leaves []int
	for i := range ds.Types {
		if len(ds.Types[i].Children) == 0 {
			leaves = append(leaves, i)
		}
	}

	// Products.
	for p := 0; p < cfg.Products; p++ {
		prod := ProductIRI(p)
		leaf := leaves[rng.Intn(len(leaves))]
		// Type chain: leaf and all ancestors. BSBM materializes the full
		// chain, which is what makes generic types huge.
		for t := leaf; t != -1; t = ds.Types[t].Parent {
			ds.ProductsPerType[t]++
			if err := emit(rdf.NewTriple(prod, PredType, ds.Types[t].IRI)); err != nil {
				return nil, err
			}
		}
		// Features: drawn from the pools along the type chain (shared
		// ancestry ⇒ shared features ⇒ the "similar products" query works).
		// Draws are leaf-biased with a minority reaching ancestor pools,
		// and Zipf-skewed within each pool, so feature popularity is
		// heavy-tailed: a few globally hot features, many rare ones. This
		// is what makes the Q2 similarity-join runtime distribution
		// strongly non-normal (the paper's E1 KS observation).
		chain := typeChain(ds, leaf)
		for f := 0; f < cfg.FeaturesPerProduct; f++ {
			var node *TypeNode
			if rng.Float64() < 0.7 || len(chain) == 1 {
				node = &ds.Types[chain[0]] // the leaf's own pool
			} else {
				node = &ds.Types[chain[1+rng.Intn(len(chain)-1)]]
			}
			feat := node.Features[zipfIndex(rng, len(node.Features), 1.6)]
			if err := emit(rdf.NewTriple(prod, PredProductFeature, feat)); err != nil {
				return nil, err
			}
		}
		if err := emit(rdf.NewTriple(prod, PredLabel, rdf.NewLiteral(fmt.Sprintf("Product %d", p)))); err != nil {
			return nil, err
		}
		if err := emit(rdf.NewTriple(prod, PredProducer, producerIRI(rng.Intn(cfg.Producers)))); err != nil {
			return nil, err
		}
		if err := emit(rdf.NewTriple(prod, PredPropertyNumeric, rdf.NewInteger(int64(rng.Intn(2000))))); err != nil {
			return nil, err
		}
		// Offers.
		for o := 0; o < cfg.OffersPerProduct; o++ {
			offer := rdf.NewIRI(fmt.Sprintf("%sOffer%d_%d", NS, p, o))
			v := rng.Intn(cfg.Vendors)
			price := 10 + rng.Intn(9000)
			if err := emit(rdf.NewTriple(offer, PredOfferProduct, prod)); err != nil {
				return nil, err
			}
			if err := emit(rdf.NewTriple(offer, PredOfferPrice, rdf.NewInteger(int64(price)))); err != nil {
				return nil, err
			}
			if err := emit(rdf.NewTriple(offer, PredOfferVendor, vendorIRI(v))); err != nil {
				return nil, err
			}
		}
		// Reviews.
		for r := 0; r < cfg.ReviewsPerProduct; r++ {
			rev := rdf.NewIRI(fmt.Sprintf("%sReview%d_%d", NS, p, r))
			if err := emit(rdf.NewTriple(rev, PredReviewFor, prod)); err != nil {
				return nil, err
			}
			if err := emit(rdf.NewTriple(rev, PredReviewRating, rdf.NewInteger(int64(1+rng.Intn(10))))); err != nil {
				return nil, err
			}
			if err := emit(rdf.NewTriple(rev, PredReviewer, reviewerIRI(rng.Intn(cfg.Reviewers)))); err != nil {
				return nil, err
			}
		}
	}
	// Vendors get a country (used by drill-down queries). Round-robin
	// assignment keeps every country populated even at tiny scales.
	for v := 0; v < cfg.Vendors; v++ {
		c := CountryCodes[v%len(CountryCodes)]
		if err := emit(rdf.NewTriple(vendorIRI(v), PredCountry, CountryIRI(c))); err != nil {
			return nil, err
		}
	}
	return ds, nil
}

func typeChain(ds *Dataset, leaf int) []int {
	var chain []int
	for t := leaf; t != -1; t = ds.Types[t].Parent {
		chain = append(chain, t)
	}
	return chain
}

// zipfIndex samples an index in [0, n) with probability ∝ 1/(i+1)^s.
func zipfIndex(rng *rand.Rand, n int, s float64) int {
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), s)
	}
	x := rng.Float64() * total
	acc := 0.0
	for i := 0; i < n; i++ {
		acc += 1 / math.Pow(float64(i+1), s)
		if x < acc {
			return i
		}
	}
	return n - 1
}

func producerIRI(i int) rdf.Term { return rdf.NewIRI(fmt.Sprintf("%sProducer%d", NS, i)) }
func vendorIRI(i int) rdf.Term   { return rdf.NewIRI(fmt.Sprintf("%sVendor%d", NS, i)) }
func reviewerIRI(i int) rdf.Term { return rdf.NewIRI(fmt.Sprintf("%sReviewer%d", NS, i)) }

// BuildStore generates the dataset directly into a triple store.
func BuildStore(cfg Config) (*store.Store, *Dataset, error) {
	b := store.NewBuilder()
	ds, err := Generate(cfg, b.Add)
	if err != nil {
		return nil, nil, err
	}
	return b.Build(), ds, nil
}
