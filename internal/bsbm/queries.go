package bsbm

import "repro/internal/sparql"

// The BSBM-BI query templates measured in the paper, expressed in the
// engine's SPARQL subset. The templates capture the data-touching join
// structure of the originals; aggregation post-processing (ratio/top-k
// arithmetic) is not what drives the paper's runtime effects and is
// represented by the ORDER BY/LIMIT epilogue where the original has one.

// QueryQ4 is BSBM-BI Q4: "find the feature with the highest ratio between
// price with that feature and price without that feature", parameterized by
// %ProductType. Its cost is dominated by touching every product of the
// given type together with their features and offers — the E1/E3 query.
const QueryQ4Text = `
PREFIX bsbm: <http://bsbm.example.org/>
SELECT ?feature ?price WHERE {
  ?product a %ProductType .
  ?product bsbm:productFeature ?feature .
  ?offer bsbm:product ?product .
  ?offer bsbm:price ?price .
}`

// QueryQ2Text is BSBM-BI Q2: "find the 10 products most similar to a
// specific product", parameterized by %Product — products sharing features
// with the given one. Feature popularity skew makes its runtime non-normal
// (the KS-distance example in E1).
const QueryQ2Text = `
PREFIX bsbm: <http://bsbm.example.org/>
SELECT ?other ?label WHERE {
  %Product bsbm:productFeature ?f .
  ?other bsbm:productFeature ?f .
  ?other bsbm:label ?label .
} LIMIT 1000`

// QueryQ1Text is a drill-down lookup: offers for products of a type from
// vendors of a country (two-parameter template, used by curation tests).
const QueryQ1Text = `
PREFIX bsbm: <http://bsbm.example.org/>
SELECT ?offer ?price WHERE {
  ?product a %ProductType .
  ?offer bsbm:product ?product .
  ?offer bsbm:price ?price .
  ?offer bsbm:vendor ?vendor .
  ?vendor bsbm:country %Country .
}`

// QueryQ3Text is the deeper drill-down: offers for products of a type that
// carry a specific feature, from vendors of a country. Three parameters and
// six patterns make DPsub join ordering the dominant cost of one-shot
// optimization — the query service's plan-cache benches measure exactly
// that cold cost against the cached path.
const QueryQ3Text = `
PREFIX bsbm: <http://bsbm.example.org/>
SELECT ?offer ?price WHERE {
  ?product a %ProductType .
  ?product bsbm:productFeature %Feature .
  ?offer bsbm:product ?product .
  ?offer bsbm:price ?price .
  ?offer bsbm:vendor ?vendor .
  ?vendor bsbm:country %Country .
}`

// QueryQ5Text is the optional-offers drill-down: every labelled product
// of a type, with its offer prices where offers exist — products without
// offers survive with an unbound ?price. The left join over the skewed
// offer distribution is the compositional-algebra counterpart of Q1's
// inner drill-down; the materializing baseline rejects it.
const QueryQ5Text = `
PREFIX bsbm: <http://bsbm.example.org/>
SELECT ?product ?label ?price WHERE {
  ?product a %ProductType .
  ?product bsbm:label ?label .
  OPTIONAL { ?offer bsbm:product ?product . ?offer bsbm:price ?price . }
}`

// QueryQ6Text is the union drill-down: all market activity — offers or
// reviews — attached to products of a type, as one relation with a
// per-branch attachment variable.
const QueryQ6Text = `
PREFIX bsbm: <http://bsbm.example.org/>
SELECT ?product ?offer ?review WHERE {
  ?product a %ProductType .
  { ?offer bsbm:product ?product . } UNION { ?review bsbm:reviewFor ?product . }
}`

// Q4 returns the parsed Q4 template.
func Q4() *sparql.Query { return sparql.MustParse(QueryQ4Text) }

// Q5 returns the parsed Q5 (optional offers) template.
func Q5() *sparql.Query { return sparql.MustParse(QueryQ5Text) }

// Q6 returns the parsed Q6 (offers-or-reviews union) template.
func Q6() *sparql.Query { return sparql.MustParse(QueryQ6Text) }

// Q2 returns the parsed Q2 template.
func Q2() *sparql.Query { return sparql.MustParse(QueryQ2Text) }

// Q1 returns the parsed Q1 template.
func Q1() *sparql.Query { return sparql.MustParse(QueryQ1Text) }

// Q3 returns the parsed Q3 template.
func Q3() *sparql.Query { return sparql.MustParse(QueryQ3Text) }
