package experiments

import (
	"fmt"

	"repro/internal/bsbm"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/workload"
)

// X7Result is the scale-sensitivity experiment: the paper measured 100M
// triples; we run at laptop scales and must show that E3's shape metrics
// (mean/median ratio, relative variance) persist — and grow — with scale,
// supporting the claim that the reproduction's milder magnitudes are a
// scale effect, not a modelling error.
type X7Result struct {
	Rows  []X7Row
	Table *report.Table
}

// X7Row is the E3/E1 shape metrics at one scale.
type X7Row struct {
	Products        int
	Triples         int
	MeanMedianRatio float64
	VarOverMeanSq   float64
	Q95OverMedian   float64
}

// X7 sweeps BSBM dataset sizes (quarter, full, and 4× the configured test
// scale) and recomputes the E3 distribution metrics for Q4 under uniform
// sampling at each size.
func X7(env *Env) (*X7Result, error) {
	sc := env.Scale
	base := sc.BSBM
	res := &X7Result{}
	t := report.NewTable("X7: E3 shape metrics vs dataset scale (BSBM Q4, uniform sampling)",
		"products", "triples", "mean/median", "var/mean²", "q95/median")
	for _, factor := range []int{1, 4, 16} {
		cfg := base
		cfg.Products = base.Products / 4 * factor
		if cfg.Products < 100 {
			cfg.Products = 100
		}
		st, _, err := bsbm.BuildStore(cfg)
		if err != nil {
			return nil, err
		}
		r := &workload.Runner{Store: st, Opts: exec.Options{}}
		q4 := bsbm.Q4()
		dom, err := core.ExtractDomain(q4, st)
		if err != nil {
			return nil, err
		}
		ms, err := r.Run(q4, core.NewUniformSampler(dom, sc.Seed+30).Sample(sc.Samples/2))
		if err != nil {
			return nil, err
		}
		works := workload.Values(ms, workload.MetricWork)
		sum := stats.Summarize(works)
		row := X7Row{
			Products:        cfg.Products,
			Triples:         st.Len(),
			MeanMedianRatio: stats.MeanMedianRatio(works),
		}
		if sum.Mean > 0 {
			row.VarOverMeanSq = sum.Variance / (sum.Mean * sum.Mean)
		}
		if sum.Median > 0 {
			row.Q95OverMedian = sum.Q95 / sum.Median
		}
		res.Rows = append(res.Rows, row)
		t.Add(fmt.Sprintf("%d", row.Products), fmt.Sprintf("%d", row.Triples),
			report.FormatFloat(row.MeanMedianRatio),
			report.FormatFloat(row.VarOverMeanSq),
			report.FormatFloat(row.Q95OverMedian))
	}
	res.Table = t
	return res, nil
}
