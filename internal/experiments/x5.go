package experiments

import (
	"repro/internal/bsbm"
	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/snb"
	"repro/internal/sparql"
	"repro/internal/stats"
	"repro/internal/workload"
)

// X5Result reproduces the Section III claim: "the cost function Cout of the
// query strongly correlates with its running time (ca. 85% Pearson
// correlation coefficient)".
//
// We compute Pearson(Cout, runtime) on a mixed workload across both
// datasets — against the deterministic work counter (noise-free) and
// against wall-clock time.
type X5Result struct {
	PearsonWork     float64 // Cout vs deterministic work
	PearsonRuntime  float64 // Cout vs wall-clock ms
	PearsonEstimate float64 // optimizer-estimated Cout vs measured Cout
	SpearmanWork    float64 // rank correlation: scale-free monotonicity check
	SpearmanRuntime float64
	N               int
	Table           *report.Table
}

// X5 runs the correlation experiment; env must carry both stores.
func X5(env *Env) (*X5Result, error) {
	sc := env.Scale
	perStore := sc.Samples / 2
	if perStore < 10 {
		perStore = 10
	}
	var couts, works, runtimes, ests []float64
	collect := func(r *workload.Runner, tmpl *sparql.Query, seed int64) error {
		dom, err := core.ExtractDomain(tmpl, r.Store)
		if err != nil {
			return err
		}
		ms, err := r.Run(tmpl, core.NewUniformSampler(dom, seed).Sample(perStore))
		if err != nil {
			return err
		}
		for _, m := range ms {
			couts = append(couts, m.Cout)
			works = append(works, m.Work)
			runtimes = append(runtimes, workload.MetricRuntime(m))
			ests = append(ests, m.EstCost)
		}
		return nil
	}
	if err := collect(env.bsbmRunner(), bsbm.Q4(), sc.Seed+10); err != nil {
		return nil, err
	}
	if err := collect(env.bsbmRunner(), bsbm.Q2(), sc.Seed+11); err != nil {
		return nil, err
	}
	if err := collect(env.snbRunner(), snb.Q2(), sc.Seed+12); err != nil {
		return nil, err
	}
	res := &X5Result{
		PearsonWork:     stats.Pearson(couts, works),
		PearsonRuntime:  stats.Pearson(couts, runtimes),
		PearsonEstimate: stats.Pearson(ests, couts),
		SpearmanWork:    stats.Spearman(couts, works),
		SpearmanRuntime: stats.Spearman(couts, runtimes),
		N:               len(couts),
	}
	t := report.NewTable("X5: Cout vs runtime correlation (Section III)",
		"pairing", "paper", "measured")
	t.Add("Pearson(Cout, runtime)", "~0.85", report.FormatFloat(res.PearsonRuntime))
	t.Add("Pearson(Cout, work units)", "~0.85", report.FormatFloat(res.PearsonWork))
	t.Add("Pearson(estimated Cout, measured Cout)", "(not reported)", report.FormatFloat(res.PearsonEstimate))
	t.Add("Spearman(Cout, runtime)", "(not reported)", report.FormatFloat(res.SpearmanRuntime))
	t.Add("Spearman(Cout, work units)", "(not reported)", report.FormatFloat(res.SpearmanWork))
	res.Table = t
	return res, nil
}
