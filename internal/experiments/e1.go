package experiments

import (
	"repro/internal/bsbm"
	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/workload"
)

// E1Result reproduces example E1: high variance of BSBM-BI Q4 under
// uniform sampling and extreme non-normality of BSBM-BI Q2.
//
// Paper values (100M triples, Virtuoso): Q4 runtime variance ≈ 674·10⁶
// (ms²) — i.e. variance/mean² ≫ 1; Q2 KS distance vs normal = 0.89 with
// p ≈ 10⁻²¹.
type E1Result struct {
	// Q4 under uniform type sampling, in work units.
	Q4              stats.Summary
	Q4VarOverMeanSq float64 // dimensionless skew indicator (scale-free)
	// Q4 wall-clock milliseconds (noisy but comparable to the paper's unit).
	Q4RuntimeVarianceMs2 float64
	// Q2 normality test.
	Q2KS  stats.KSResult
	Table *report.Table
}

// E1 runs the experiment on env's BSBM store.
func E1(env *Env) (*E1Result, error) {
	r := env.bsbmRunner()
	sc := env.Scale

	// Q4: uniform sampling of %ProductType.
	q4 := bsbm.Q4()
	domQ4, err := core.ExtractDomain(q4, env.BSBM)
	if err != nil {
		return nil, err
	}
	msQ4, err := r.Run(q4, core.NewUniformSampler(domQ4, sc.Seed).Sample(sc.Samples))
	if err != nil {
		return nil, err
	}
	workQ4 := workload.Summarize(msQ4, workload.MetricWork)
	rtQ4 := workload.Summarize(msQ4, workload.MetricRuntime)

	// Q2: uniform sampling of %Product.
	q2 := bsbm.Q2()
	domQ2, err := core.ExtractDomain(q2, env.BSBM)
	if err != nil {
		return nil, err
	}
	msQ2, err := r.Run(q2, core.NewUniformSampler(domQ2, sc.Seed+1).Sample(sc.Samples))
	if err != nil {
		return nil, err
	}
	ks := stats.KSNormal(workload.Values(msQ2, workload.MetricWork))

	res := &E1Result{
		Q4:                   workQ4,
		Q4RuntimeVarianceMs2: rtQ4.Variance,
		Q2KS:                 ks,
	}
	if workQ4.Mean > 0 {
		res.Q4VarOverMeanSq = workQ4.Variance / (workQ4.Mean * workQ4.Mean)
	}
	t := report.NewTable("E1: uniform sampling — variance and non-normality",
		"metric", "paper", "measured")
	t.Add("Q4 variance / mean² (work)", "≫ 1 (var 674e6 ms²)", report.FormatFloat(res.Q4VarOverMeanSq))
	t.Add("Q4 runtime variance (ms²)", "674e6", report.FormatFloat(res.Q4RuntimeVarianceMs2))
	t.Add("Q2 KS distance vs normal", "0.89", report.FormatFloat(ks.D))
	t.Add("Q2 KS p-value", "1e-21", report.FormatFloat(ks.PValue))
	res.Table = t
	return res, nil
}
