package experiments

import (
	"testing"

	"repro/internal/exec"
	"repro/internal/obs"
)

// Trace-correctness suite: a traced run must change nothing — results and
// accounting stay bit-identical to the untraced run — and the collected
// span tree must account for the run exactly: the root span's inclusive
// Cout/Work/Scanned equal the Result's, the per-span exclusive (Self*)
// values sum back to the same totals, the root emits exactly the result
// rows, and the per-morsel breakdowns agree with the run's morsel count.

// checkTrace asserts the span-tree invariants against the run's Result.
func checkTrace(t *testing.T, name string, root *obs.Span, res *exec.Result) {
	t.Helper()
	if root == nil {
		t.Fatalf("%s: no trace collected", name)
	}
	if root.Cout != res.Cout || root.Work != res.Work || root.Scanned != int64(res.Scanned) {
		t.Errorf("%s: root span (cout=%v work=%v scanned=%d) != result (cout=%v work=%v scanned=%d)",
			name, root.Cout, root.Work, root.Scanned, res.Cout, res.Work, res.Scanned)
	}
	cout, work, scanned := obs.Sum(root)
	if cout != res.Cout || work != res.Work || scanned != int64(res.Scanned) {
		t.Errorf("%s: self-value sum (cout=%v work=%v scanned=%d) != result (cout=%v work=%v scanned=%d)",
			name, cout, work, scanned, res.Cout, res.Work, res.Scanned)
	}
	if root.Rows != int64(len(res.Rows)) {
		t.Errorf("%s: root span rows %d != result rows %d", name, root.Rows, len(res.Rows))
	}
	if got := countMorsels(root); got != res.Morsels {
		t.Errorf("%s: span morsel breakdown has %d morsels, result ran %d", name, got, res.Morsels)
	}
}

func countMorsels(s *obs.Span) int {
	if s == nil {
		return 0
	}
	n := len(s.Morsels)
	for _, c := range s.Children {
		n += countMorsels(c)
	}
	return n
}

// TestTraceAccountingExact covers every golden and algebra template with
// curated bindings, on the streaming and columnar engines at Parallelism
// 1, 2 and 8 (small morsels force genuine multi-morsel schedules), plus
// the materializing engine for the templates it supports.
func TestTraceAccountingExact(t *testing.T) {
	env := sharedEnv(t)
	type tcase struct {
		goldenTemplate
		algebra bool
	}
	var cases []tcase
	for _, g := range goldenTemplates() {
		cases = append(cases, tcase{g, false})
	}
	for _, g := range algebraTemplates() {
		cases = append(cases, tcase{g, true})
	}
	for _, g := range cases {
		st := env.BSBM
		if g.snb {
			st = env.SNB
		}
		bindings := curatedBindings(t, g.tmpl, st, 2)
		if len(bindings) > 2 {
			bindings = bindings[:2]
		}
		for bi, b := range bindings {
			bound, err := g.tmpl.Bind(b)
			if err != nil {
				t.Fatalf("%s binding %d: %v", g.name, bi, err)
			}
			for _, mode := range []exec.ExecMode{exec.Streaming, exec.Columnar} {
				for _, par := range []int{1, 2, 8} {
					name := caseName(g.name, bi, mode, par)
					opts := exec.Options{Mode: mode, Parallelism: par, MorselSize: 128}
					plain, _, err := exec.Query(bound, st, opts)
					if err != nil {
						t.Fatalf("%s untraced: %v", name, err)
					}
					capture := &obs.Capture{}
					opts.Trace = capture
					traced, _, err := exec.Query(bound, st, opts)
					if err != nil {
						t.Fatalf("%s traced: %v", name, err)
					}
					if err := equalResults(traced, plain); err != nil {
						t.Errorf("%s: tracing changed the run: %v", name, err)
					}
					checkTrace(t, name, capture.Root, traced)
				}
			}
			if !g.algebra {
				capture := &obs.Capture{}
				res, _, err := exec.Query(bound, st, exec.Options{Mode: exec.Materializing, Trace: capture})
				if err != nil {
					t.Fatalf("%s binding %d materializing: %v", g.name, bi, err)
				}
				checkTrace(t, g.name+"/materializing", capture.Root, res)
			}
		}
	}
}

func caseName(tmpl string, bi int, mode exec.ExecMode, par int) string {
	m := "streaming"
	if mode == exec.Columnar {
		m = "columnar"
	}
	return tmpl + "/" + m + "/par" + string(rune('0'+par)) + "/b" + string(rune('0'+bi))
}

// TestTraceAccountingLeapfrog runs the golden templates under the
// columnar engine with leapfrog lowering enabled (eligible star BGPs
// replace their binary join tree with the multiway triejoin) and asserts
// the same exactness invariants against each run's own Result, serially
// and under the morsel driver.
func TestTraceAccountingLeapfrog(t *testing.T) {
	env := sharedEnv(t)
	for _, g := range goldenTemplates() {
		st := env.BSBM
		if g.snb {
			st = env.SNB
		}
		bindings := curatedBindings(t, g.tmpl, st, 1)
		if len(bindings) > 1 {
			bindings = bindings[:1]
		}
		for bi, b := range bindings {
			bound, err := g.tmpl.Bind(b)
			if err != nil {
				t.Fatalf("%s binding %d: %v", g.name, bi, err)
			}
			for _, par := range []int{1, 2, 8} {
				name := caseName(g.name+"-leapfrog", bi, exec.Columnar, par)
				capture := &obs.Capture{}
				res, _, err := exec.Query(bound, st, exec.Options{
					Mode: exec.Columnar, Leapfrog: true, Parallelism: par, MorselSize: 128, Trace: capture,
				})
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				checkTrace(t, name, capture.Root, res)
			}
		}
	}
}
