package experiments

import (
	"fmt"

	"repro/internal/bsbm"
	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/workload"
)

// X6Result is the payoff experiment implied by the paper's Section III: the
// curated parameter classes restore properties P1–P3.
//
//	P1 (bounded variance): within-class variance/mean² collapses versus the
//	     uniform baseline;
//	P2 (stable sampling): independent groups drawn per class agree;
//	P3 (single plan): every class executes exactly one optimal plan.
//
// BSBM-BI Q4 is the running example: it "would turn into two queries, Q4a
// (where the type parameter denotes a very specific product type) and Q4b
// (with the parameter being a generic type of many products)".
type X6Result struct {
	UniformVarOverMeanSq float64
	UniformAvgDeviation  float64
	// UniformKSPValue is the two-sample KS p-value between two independent
	// uniform binding groups (the baseline for the per-class values).
	UniformKSPValue float64
	Classes         []X6Class
	Table           *report.Table
}

// X6Class carries per-class stability metrics.
type X6Class struct {
	Name                string
	Size                int
	VarOverMeanSq       float64
	AvgDeviation        float64 // across independent groups sampled within the class
	DistinctPlans       int     // must be 1 (P3)
	WithinClassVariance float64
	// KSPValue is the two-sample Kolmogorov–Smirnov p-value between two
	// independent samples drawn from the class — P2 in its strongest form:
	// "a different sample of parameter bindings should result in an
	// identical runtime distribution". High p-value = indistinguishable.
	KSPValue float64
}

// X6 runs curation on BSBM-BI Q4 and re-measures the E1/E2 metrics per
// class.
func X6(env *Env) (*X6Result, error) {
	sc := env.Scale
	r := env.bsbmRunner()
	q4 := bsbm.Q4()

	// Baseline: uniform sampling (E1/E2 metrics).
	dom, err := core.ExtractDomain(q4, env.BSBM)
	if err != nil {
		return nil, err
	}
	uniform := core.NewUniformSampler(dom, sc.Seed+20)
	msU, err := r.Run(q4, uniform.Sample(sc.Samples))
	if err != nil {
		return nil, err
	}
	sumU := workload.Summarize(msU, workload.MetricWork)
	stabU, err := r.GroupStability(q4, uniform, sc.Groups, sc.GroupSize, workload.MetricWork)
	if err != nil {
		return nil, err
	}

	// Curation: analyze + cluster + per-class stratified sampling.
	a, err := core.Analyze(q4, env.BSBM, dom, core.AnalyzeOptions{Seed: sc.Seed})
	if err != nil {
		return nil, err
	}
	cl := core.Cluster(a, core.ClusterOptions{MinClassSize: 2, MergeSmall: true})
	curated := core.Curate("Q4", cl, sc.Seed+21)

	res := &X6Result{
		UniformAvgDeviation: stabU.AvgDeviation,
	}
	if sumU.Mean > 0 {
		res.UniformVarOverMeanSq = sumU.Variance / (sumU.Mean * sumU.Mean)
	}
	res.UniformKSPValue = twoSampleKS(stabU)

	t := report.NewTable("X6: curated classes restore P1-P3 (BSBM-BI Q4)",
		"workload", "n", "var/mean² (P1)", "group avg dev (P2)", "KS p (P2)", "#plans (P3)")
	t.Add("uniform (baseline)",
		fmt.Sprintf("%d", sumU.N),
		report.FormatFloat(res.UniformVarOverMeanSq),
		pct(stabU.AvgDeviation),
		report.FormatFloat(res.UniformKSPValue),
		fmt.Sprintf("%d", len(workload.DistinctPlans(msU))))

	for _, cq := range curated {
		ms, err := r.Run(q4, cq.Sampler.Sample(sc.Samples/2))
		if err != nil {
			return nil, err
		}
		sum := workload.Summarize(ms, workload.MetricWork)
		stab, err := r.GroupStability(q4, cq.Sampler, sc.Groups, sc.GroupSize, workload.MetricWork)
		if err != nil {
			return nil, err
		}
		xc := X6Class{
			Name:                cq.Name,
			Size:                len(cq.Class.Points),
			AvgDeviation:        stab.AvgDeviation,
			DistinctPlans:       len(workload.DistinctPlans(ms)),
			WithinClassVariance: sum.Variance,
			KSPValue:            twoSampleKS(stab),
		}
		if sum.Mean > 0 {
			xc.VarOverMeanSq = sum.Variance / (sum.Mean * sum.Mean)
		}
		res.Classes = append(res.Classes, xc)
		t.Add(xc.Name,
			fmt.Sprintf("%d", xc.Size),
			report.FormatFloat(xc.VarOverMeanSq),
			pct(xc.AvgDeviation),
			report.FormatFloat(xc.KSPValue),
			fmt.Sprintf("%d", xc.DistinctPlans))
	}
	res.Table = t
	return res, nil
}

// twoSampleKS runs the two-sample Kolmogorov–Smirnov test between the first
// two groups of a stability result and returns the p-value.
func twoSampleKS(stab *workload.StabilityResult) float64 {
	a := workload.Values(stab.Groups[0].Measurements, workload.MetricWork)
	b := workload.Values(stab.Groups[1].Measurements, workload.MetricWork)
	return stats.KSTwoSample(a, b).PValue
}

// MeanClassVarRatio returns the mean of class var/mean² divided by the
// uniform var/mean² — the headline improvement factor (≪ 1 when curation
// works).
func (r *X6Result) MeanClassVarRatio() float64 {
	if len(r.Classes) == 0 || r.UniformVarOverMeanSq == 0 {
		return 0
	}
	s := 0.0
	for _, c := range r.Classes {
		s += c.VarOverMeanSq
	}
	return (s / float64(len(r.Classes))) / r.UniformVarOverMeanSq
}
