package experiments

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/bsbm"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/snb"
	"repro/internal/sparql"
	"repro/internal/store"
)

// The golden-equality suite: over every BSBM and SNB query template, with
// curated parameter bindings drawn from the paper's own pipeline (domain
// extraction → per-binding analysis → clustering), the streaming engine
// must agree with the materializing engine bit-for-bit — same Vars, same
// Rows in the same order, same measured Cout, Work and Scanned — for both
// interior-join algorithms.

type goldenTemplate struct {
	name string
	tmpl *sparql.Query
	snb  bool // template runs against the SNB store (else BSBM)
}

func goldenTemplates() []goldenTemplate {
	return []goldenTemplate{
		{"bsbm-q1", bsbm.Q1(), false},
		{"bsbm-q2", bsbm.Q2(), false},
		{"bsbm-q3", bsbm.Q3(), false},
		{"bsbm-q4", bsbm.Q4(), false},
		{"snb-q1", snb.Q1(), true},
		{"snb-q2", snb.Q2(), true},
		{"snb-q3", snb.Q3(), true},
	}
}

// curatedBindings draws at least min bindings via the curation pipeline:
// every parameter class contributes members, topped up with uniform draws.
func curatedBindings(t *testing.T, tmpl *sparql.Query, st *store.Store, min int) []sparql.Binding {
	t.Helper()
	dom, err := core.ExtractDomain(tmpl, st)
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.Analyze(tmpl, st, dom, core.AnalyzeOptions{MaxBindings: 150, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	cl := core.Cluster(a, core.ClusterOptions{})
	var out []sparql.Binding
	for _, cq := range core.Curate("q", cl, 11) {
		out = append(out, cq.Sampler.Sample(2)...)
	}
	if len(out) < min {
		out = append(out, core.NewUniformSampler(dom, 13).Sample(min-len(out))...)
	}
	return out
}

func equalResults(a, b *exec.Result) error {
	if len(a.Vars) != len(b.Vars) {
		return fmt.Errorf("vars %v vs %v", a.Vars, b.Vars)
	}
	for i := range a.Vars {
		if a.Vars[i] != b.Vars[i] {
			return fmt.Errorf("vars %v vs %v", a.Vars, b.Vars)
		}
	}
	if len(a.Rows) != len(b.Rows) {
		return fmt.Errorf("%d rows vs %d rows", len(a.Rows), len(b.Rows))
	}
	for i := range a.Rows {
		for j := range a.Rows[i] {
			if a.Rows[i][j] != b.Rows[i][j] {
				return fmt.Errorf("row %d col %d: %d vs %d", i, j, a.Rows[i][j], b.Rows[i][j])
			}
		}
	}
	if a.Cout != b.Cout {
		return fmt.Errorf("Cout %v vs %v", a.Cout, b.Cout)
	}
	if a.Work != b.Work {
		return fmt.Errorf("Work %v vs %v", a.Work, b.Work)
	}
	if a.Scanned != b.Scanned {
		return fmt.Errorf("Scanned %d vs %d", a.Scanned, b.Scanned)
	}
	return nil
}

func TestGoldenStreamingEqualsMaterializing(t *testing.T) {
	env := sharedEnv(t)
	for _, g := range goldenTemplates() {
		st := env.BSBM
		if g.snb {
			st = env.SNB
		}
		bindings := curatedBindings(t, g.tmpl, st, 3)
		if len(bindings) < 3 {
			t.Fatalf("%s: only %d curated bindings", g.name, len(bindings))
		}
		for bi, b := range bindings {
			bound, err := g.tmpl.Bind(b)
			if err != nil {
				t.Fatalf("%s binding %d: %v", g.name, bi, err)
			}
			for _, alg := range []exec.JoinAlgorithm{exec.HashJoin, exec.SortMergeJoin} {
				sres, splan, err := exec.Query(bound, st, exec.Options{Join: alg, Mode: exec.Streaming})
				if err != nil {
					t.Fatalf("%s binding %d streaming: %v", g.name, bi, err)
				}
				mres, mplan, err := exec.Query(bound, st, exec.Options{Join: alg, Mode: exec.Materializing})
				if err != nil {
					t.Fatalf("%s binding %d materializing: %v", g.name, bi, err)
				}
				if splan.Signature != mplan.Signature {
					t.Fatalf("%s binding %d: plans diverge: %s vs %s", g.name, bi, splan.Signature, mplan.Signature)
				}
				if err := equalResults(sres, mres); err != nil {
					t.Errorf("%s binding %d (alg %d): %v", g.name, bi, alg, err)
				}
			}
		}
	}
}

// TestGoldenColumnarMatchesStreaming: the columnar engine must be
// bit-identical to the serial streaming engine — same Vars, Rows, row
// order, Cout, Work and Scanned — for both join algorithms, serially and
// at Parallelism 2 and 8, over every template and curated binding.
func TestGoldenColumnarMatchesStreaming(t *testing.T) {
	env := sharedEnv(t)
	for _, g := range goldenTemplates() {
		st := env.BSBM
		if g.snb {
			st = env.SNB
		}
		bindings := curatedBindings(t, g.tmpl, st, 3)
		for bi, b := range bindings {
			bound, err := g.tmpl.Bind(b)
			if err != nil {
				t.Fatalf("%s binding %d: %v", g.name, bi, err)
			}
			for _, alg := range []exec.JoinAlgorithm{exec.HashJoin, exec.SortMergeJoin} {
				sres, _, err := exec.Query(bound, st, exec.Options{Join: alg, Mode: exec.Streaming})
				if err != nil {
					t.Fatalf("%s binding %d streaming: %v", g.name, bi, err)
				}
				cres, _, err := exec.Query(bound, st, exec.Options{Join: alg, Mode: exec.Columnar})
				if err != nil {
					t.Fatalf("%s binding %d columnar: %v", g.name, bi, err)
				}
				if err := equalResults(cres, sres); err != nil {
					t.Errorf("%s binding %d (alg %d) columnar: %v", g.name, bi, alg, err)
				}
				if cres.Scanned > 0 && cres.Kernels.Batches == 0 {
					t.Errorf("%s binding %d: columnar run produced no batches", g.name, bi)
				}
				for _, par := range []int{2, 8} {
					pres, _, err := exec.Query(bound, st, exec.Options{Join: alg, Mode: exec.Columnar, Parallelism: par, MorselSize: 128})
					if err != nil {
						t.Fatalf("%s binding %d columnar parallelism %d: %v", g.name, bi, par, err)
					}
					if err := equalResults(pres, sres); err != nil {
						t.Errorf("%s binding %d (alg %d) columnar parallelism %d: %v", g.name, bi, alg, par, err)
					}
				}
			}
		}
	}
}

// TestGoldenPushdownPreservesResults: with filter pushdown enabled the
// final result rows stay identical on every template; only the cost
// accounting may shrink (never grow).
func TestGoldenPushdownPreservesResults(t *testing.T) {
	env := sharedEnv(t)
	for _, g := range goldenTemplates() {
		st := env.BSBM
		if g.snb {
			st = env.SNB
		}
		for bi, b := range curatedBindings(t, g.tmpl, st, 3) {
			bound, err := g.tmpl.Bind(b)
			if err != nil {
				t.Fatalf("%s binding %d: %v", g.name, bi, err)
			}
			plain, _, err := exec.Query(bound, st, exec.Options{Mode: exec.Streaming})
			if err != nil {
				t.Fatal(err)
			}
			pushed, _, err := exec.Query(bound, st, exec.Options{Mode: exec.Streaming, PushFilters: true})
			if err != nil {
				t.Fatalf("%s binding %d pushed: %v", g.name, bi, err)
			}
			if len(plain.Rows) != len(pushed.Rows) {
				t.Fatalf("%s binding %d: pushdown changed result size %d vs %d",
					g.name, bi, len(plain.Rows), len(pushed.Rows))
			}
			for i := range plain.Rows {
				for j := range plain.Rows[i] {
					if plain.Rows[i][j] != pushed.Rows[i][j] {
						t.Fatalf("%s binding %d: pushdown changed row %d", g.name, bi, i)
					}
				}
			}
			if pushed.Cout > plain.Cout {
				t.Errorf("%s binding %d: pushdown increased Cout %v > %v", g.name, bi, pushed.Cout, plain.Cout)
			}
		}
	}
}

// TestGoldenParallelCuration: the curation pipeline returns byte-identical
// parameter classes whether the per-binding analysis is serial or fanned
// out across workers — on both benchmark stores.
func TestGoldenParallelCuration(t *testing.T) {
	env := sharedEnv(t)
	cases := []struct {
		name string
		tmpl *sparql.Query
		st   *store.Store
	}{
		{"bsbm-q4", bsbm.Q4(), env.BSBM},
		{"snb-q3", snb.Q3(), env.SNB},
	}
	for _, c := range cases {
		dom, err := core.ExtractDomain(c.tmpl, c.st)
		if err != nil {
			t.Fatal(err)
		}
		serial, err := core.Analyze(c.tmpl, c.st, dom, core.AnalyzeOptions{MaxBindings: 120, Seed: 3, Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		parallel, err := core.Analyze(c.tmpl, c.st, dom, core.AnalyzeOptions{MaxBindings: 120, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		sc := core.Cluster(serial, core.ClusterOptions{})
		pc := core.Cluster(parallel, core.ClusterOptions{})
		if len(sc.Classes) != len(pc.Classes) {
			t.Fatalf("%s: class count differs: %d vs %d", c.name, len(sc.Classes), len(pc.Classes))
		}
		for i := range sc.Classes {
			a, b := sc.Classes[i], pc.Classes[i]
			if a.Signature != b.Signature || a.Band != b.Band ||
				a.CostLo != b.CostLo || a.CostHi != b.CostHi || len(a.Points) != len(b.Points) {
				t.Fatalf("%s: class %d differs between serial and parallel", c.name, i)
			}
			for j := range a.Points {
				if a.Points[j].Signature != b.Points[j].Signature || a.Points[j].Cost != b.Points[j].Cost {
					t.Fatalf("%s: class %d point %d differs", c.name, i, j)
				}
			}
		}
	}
}

// TestGoldenParallelMatchesSerial: over every BSBM/SNB template with
// curated bindings, morsel-driven execution at Parallelism 2 and 8 must be
// bit-identical to the serial streaming run — same Vars, same Rows in the
// same order, same measured Cout, Work and Scanned. A small MorselSize
// forces genuine multi-morsel parallelism at test scale; the morsel size
// never affects results, only the schedule.
func TestGoldenParallelMatchesSerial(t *testing.T) {
	env := sharedEnv(t)
	for _, g := range goldenTemplates() {
		st := env.BSBM
		if g.snb {
			st = env.SNB
		}
		bindings := curatedBindings(t, g.tmpl, st, 3)
		for bi, b := range bindings {
			bound, err := g.tmpl.Bind(b)
			if err != nil {
				t.Fatalf("%s binding %d: %v", g.name, bi, err)
			}
			serial, _, err := exec.Query(bound, st, exec.Options{})
			if err != nil {
				t.Fatalf("%s binding %d serial: %v", g.name, bi, err)
			}
			for _, par := range []int{2, 8} {
				res, _, err := exec.Query(bound, st, exec.Options{Parallelism: par, MorselSize: 128})
				if err != nil {
					t.Fatalf("%s binding %d parallelism %d: %v", g.name, bi, par, err)
				}
				if err := equalResults(res, serial); err != nil {
					t.Errorf("%s binding %d parallelism %d: %v", g.name, bi, par, err)
				}
			}
		}
	}
}

// algebraTemplates are the compositional-algebra workload templates
// (OPTIONAL/UNION/aggregates). They are kept out of goldenTemplates
// deliberately: the materializing engine is the frozen paper baseline and
// rejects these constructs, so the golden property here is streaming ==
// columnar (serial and parallel) plus the typed rejection.
func algebraTemplates() []goldenTemplate {
	return []goldenTemplate{
		{"bsbm-q5-optional", bsbm.Q5(), false},
		{"bsbm-q6-union", bsbm.Q6(), false},
		{"snb-q4-grouped", snb.Q4(), true},
	}
}

// TestGoldenAlgebraEngines: over every algebra template and curated
// binding, the streaming and columnar engines agree bit-for-bit — Vars,
// Rows, row order, Cout, Work, Scanned — serially and at Parallelism 2
// and 8, and the materializing engine rejects the query with
// exec.ErrUnsupportedConstruct.
func TestGoldenAlgebraEngines(t *testing.T) {
	env := sharedEnv(t)
	for _, g := range algebraTemplates() {
		st := env.BSBM
		if g.snb {
			st = env.SNB
		}
		bindings := curatedBindings(t, g.tmpl, st, 3)
		if len(bindings) < 3 {
			t.Fatalf("%s: only %d curated bindings", g.name, len(bindings))
		}
		for bi, b := range bindings {
			bound, err := g.tmpl.Bind(b)
			if err != nil {
				t.Fatalf("%s binding %d: %v", g.name, bi, err)
			}
			if _, _, err := exec.Query(bound, st, exec.Options{Mode: exec.Materializing}); !errors.Is(err, exec.ErrUnsupportedConstruct) {
				t.Fatalf("%s binding %d materializing: error = %v, want ErrUnsupportedConstruct", g.name, bi, err)
			}
			sres, _, err := exec.Query(bound, st, exec.Options{Mode: exec.Streaming})
			if err != nil {
				t.Fatalf("%s binding %d streaming: %v", g.name, bi, err)
			}
			for _, par := range []int{1, 2, 8} {
				for _, mode := range []exec.ExecMode{exec.Streaming, exec.Columnar} {
					res, _, err := exec.Query(bound, st, exec.Options{Mode: mode, Parallelism: par, MorselSize: 128})
					if err != nil {
						t.Fatalf("%s binding %d mode %d parallelism %d: %v", g.name, bi, mode, par, err)
					}
					if err := equalResults(res, sres); err != nil {
						t.Errorf("%s binding %d mode %d parallelism %d: %v", g.name, bi, mode, par, err)
					}
				}
			}
		}
	}
}

// TestGoldenShardInvariance: the headline sharding invariant. Every
// engine — materializing, streaming, columnar and columnar+leapfrog, the
// latter three at Parallelism 1, 2 and 8 — must produce bit-identical
// results (Vars, Rows, row order, Cout, Work, Scanned) over subject-hash
// sharded federations at 1 and 4 shards as over the plain store, for
// every golden template and curated binding. Per-shard sorted runs over
// disjoint subjects k-way merge into exactly the global index stream, so
// plans, rows and accounting cannot depend on the shard count.
func TestGoldenShardInvariance(t *testing.T) {
	env := sharedEnv(t)
	shardedBSBM := map[int]*store.Sharded{1: store.NewSharded(env.BSBM, 1), 4: store.NewSharded(env.BSBM, 4)}
	shardedSNB := map[int]*store.Sharded{1: store.NewSharded(env.SNB, 1), 4: store.NewSharded(env.SNB, 4)}
	type engineRun struct {
		name string
		opts exec.Options
	}
	runs := []engineRun{{"materializing", exec.Options{Mode: exec.Materializing}}}
	for _, par := range []int{1, 2, 8} {
		ms := 0
		if par > 1 {
			ms = 128
		}
		runs = append(runs,
			engineRun{fmt.Sprintf("streaming-p%d", par), exec.Options{Mode: exec.Streaming, Parallelism: par, MorselSize: ms}},
			engineRun{fmt.Sprintf("columnar-p%d", par), exec.Options{Mode: exec.Columnar, Parallelism: par, MorselSize: ms}},
			engineRun{fmt.Sprintf("leapfrog-p%d", par), exec.Options{Mode: exec.Columnar, Leapfrog: true, Parallelism: par, MorselSize: ms}},
		)
	}
	for _, g := range goldenTemplates() {
		single, byCount := env.BSBM, shardedBSBM
		if g.snb {
			single, byCount = env.SNB, shardedSNB
		}
		bindings := curatedBindings(t, g.tmpl, single, 3)
		if len(bindings) < 3 {
			t.Fatalf("%s: only %d curated bindings", g.name, len(bindings))
		}
		for bi, b := range bindings {
			bound, err := g.tmpl.Bind(b)
			if err != nil {
				t.Fatalf("%s binding %d: %v", g.name, bi, err)
			}
			for _, run := range runs {
				sres, splan, err := exec.Query(bound, single, run.opts)
				if err != nil {
					t.Fatalf("%s binding %d %s single: %v", g.name, bi, run.name, err)
				}
				for _, shards := range []int{1, 4} {
					res, plan, err := exec.Query(bound, byCount[shards], run.opts)
					if err != nil {
						t.Fatalf("%s binding %d %s shards=%d: %v", g.name, bi, run.name, shards, err)
					}
					if plan.Signature != splan.Signature {
						t.Fatalf("%s binding %d %s shards=%d: plans diverge: %s vs %s",
							g.name, bi, run.name, shards, plan.Signature, splan.Signature)
					}
					if err := equalResults(res, sres); err != nil {
						t.Errorf("%s binding %d %s shards=%d: %v", g.name, bi, run.name, shards, err)
					}
				}
			}
		}
	}
}

// mappedCopy round-trips a store through a v4 snapshot and reopens it from
// the in-memory image with zero deserialization — the experiment-scale
// equivalent of serving from an OS file mapping. The v4 writer emits terms
// in dictionary ID order, so the mapped copy assigns identical IDs and
// exact identical statistics, making results comparable ID-for-ID.
func mappedCopy(t *testing.T, st *store.Store) *store.Store {
	t.Helper()
	var buf bytes.Buffer
	if err := st.WriteSnapshotVersion(&buf, 4); err != nil {
		t.Fatal(err)
	}
	m, err := store.OpenMappedBytes(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if m.Backend() != "mapped" {
		t.Fatalf("backend = %q, want mapped", m.Backend())
	}
	return m
}

// TestGoldenMappedBase: every engine — materializing, streaming, columnar
// and columnar+leapfrog, the latter three at Parallelism 1, 2 and 8 — must
// produce bit-identical results (Vars, Rows, row order, Cout, Work,
// Scanned) over the mmap-backed store and the heap store, for every golden
// template and curated binding.
func TestGoldenMappedBase(t *testing.T) {
	env := sharedEnv(t)
	mappedBSBM := mappedCopy(t, env.BSBM)
	mappedSNB := mappedCopy(t, env.SNB)
	type engineRun struct {
		name string
		opts exec.Options
	}
	runs := []engineRun{{"materializing", exec.Options{Mode: exec.Materializing}}}
	for _, par := range []int{1, 2, 8} {
		ms := 0
		if par > 1 {
			ms = 128
		}
		runs = append(runs,
			engineRun{fmt.Sprintf("streaming-p%d", par), exec.Options{Mode: exec.Streaming, Parallelism: par, MorselSize: ms}},
			engineRun{fmt.Sprintf("columnar-p%d", par), exec.Options{Mode: exec.Columnar, Parallelism: par, MorselSize: ms}},
			engineRun{fmt.Sprintf("leapfrog-p%d", par), exec.Options{Mode: exec.Columnar, Leapfrog: true, Parallelism: par, MorselSize: ms}},
		)
	}
	for _, g := range goldenTemplates() {
		heap, mapped := env.BSBM, mappedBSBM
		if g.snb {
			heap, mapped = env.SNB, mappedSNB
		}
		bindings := curatedBindings(t, g.tmpl, heap, 3)
		if len(bindings) < 3 {
			t.Fatalf("%s: only %d curated bindings", g.name, len(bindings))
		}
		for bi, b := range bindings {
			bound, err := g.tmpl.Bind(b)
			if err != nil {
				t.Fatalf("%s binding %d: %v", g.name, bi, err)
			}
			for _, run := range runs {
				hres, hplan, err := exec.Query(bound, heap, run.opts)
				if err != nil {
					t.Fatalf("%s binding %d %s heap: %v", g.name, bi, run.name, err)
				}
				mres, mplan, err := exec.Query(bound, mapped, run.opts)
				if err != nil {
					t.Fatalf("%s binding %d %s mapped: %v", g.name, bi, run.name, err)
				}
				if hplan.Signature != mplan.Signature {
					t.Fatalf("%s binding %d %s: plans diverge over mapped base: %s vs %s",
						g.name, bi, run.name, hplan.Signature, mplan.Signature)
				}
				if err := equalResults(mres, hres); err != nil {
					t.Errorf("%s binding %d %s: mapped diverges from heap: %v", g.name, bi, run.name, err)
				}
			}
		}
	}
}
