// Package experiments reproduces every empirical result in the paper:
//
//	E1a — BSBM-BI Q4 runtime variance under uniform parameter sampling
//	E1b — BSBM-BI Q2 runtime distribution vs normal (Kolmogorov–Smirnov)
//	E2  — LDBC Q2 four-group stability table (q10/median/q90/avg)
//	E3  — BSBM-BI Q4 distribution table (min/median/mean/q95/max), bimodality
//	E4  — LDBC Q3 plan variability across country pairs
//	X5  — Cout vs runtime correlation (~85% Pearson, Section III)
//	X6  — the payoff: curated parameter classes restore properties P1–P3
//
// Each experiment returns a typed result plus a rendered table; cmd/repro
// prints them and EXPERIMENTS.md records paper-vs-measured values.
package experiments

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/bsbm"
	"repro/internal/exec"
	"repro/internal/rdf"
	"repro/internal/snb"
	"repro/internal/store"
	"repro/internal/workload"
)

// Scale bundles the dataset sizes and sampling effort of a full experiment
// run.
type Scale struct {
	Name      string
	BSBM      bsbm.Config
	SNB       snb.Config
	Groups    int // number of independent binding groups (E2)
	GroupSize int // bindings per group (the paper uses 100)
	Samples   int // bindings for distribution experiments (E1/E3/X5)
	Seed      int64
}

// SmallScale is fast enough for unit tests and -short benches (~150k
// triples total).
func SmallScale() Scale {
	return Scale{
		Name:      "small",
		BSBM:      bsbm.TestConfig(),
		SNB:       snb.TestConfig(),
		Groups:    4,
		GroupSize: 40,
		Samples:   120,
		Seed:      1,
	}
}

// PaperScale approximates the paper's setup at laptop size (~2M triples,
// 4 groups × 100 bindings exactly as in E2).
func PaperScale() Scale {
	return Scale{
		Name:      "paper",
		BSBM:      bsbm.DefaultConfig(),
		SNB:       snb.DefaultConfig(),
		Groups:    4,
		GroupSize: 100,
		Samples:   400,
		Seed:      1,
	}
}

// Env holds the generated datasets for one run.
type Env struct {
	Scale    Scale
	BSBM     *store.Store
	BSBMData *bsbm.Dataset
	SNB      *store.Store
	SNBData  *snb.Dataset
}

// NewEnv generates both datasets.
func NewEnv(sc Scale) (*Env, error) { return NewEnvCached(sc, "") }

// NewEnvCached is NewEnv with a snapshot cache: when cacheDir is non-empty,
// each store is loaded from <cacheDir>/<dataset>-<scale>-<seed>.snap if
// present and written there (v2 format) after generation otherwise. Cache
// hits skip dictionary encoding, deduplication and all index sorting — the
// expensive half of dataset preparation — and still re-run the seeded
// generator with a discard sink to recover the Dataset metadata, so a
// cached Env is indistinguishable from a generated one.
func NewEnvCached(sc Scale, cacheDir string) (*Env, error) {
	bst, bds, err := cachedStore(cacheDir, fmt.Sprintf("bsbm-%s-%d", sc.Name, sc.BSBM.Seed),
		func() (*store.Store, *bsbm.Dataset, error) { return bsbm.BuildStore(sc.BSBM) },
		func() (*bsbm.Dataset, error) { return bsbm.Generate(sc.BSBM, discardTriple) })
	if err != nil {
		return nil, fmt.Errorf("experiments: bsbm: %w", err)
	}
	sst, sds, err := cachedStore(cacheDir, fmt.Sprintf("snb-%s-%d", sc.Name, sc.SNB.Seed),
		func() (*store.Store, *snb.Dataset, error) { return snb.BuildStore(sc.SNB) },
		func() (*snb.Dataset, error) { return snb.Generate(sc.SNB, discardTriple) })
	if err != nil {
		return nil, fmt.Errorf("experiments: snb: %w", err)
	}
	return &Env{Scale: sc, BSBM: bst, BSBMData: bds, SNB: sst, SNBData: sds}, nil
}

func discardTriple(rdf.Triple) error { return nil }

// cachedStore loads name's snapshot from dir, falling back to build (and
// then writing the snapshot for next time). meta regenerates the dataset
// metadata on a cache hit without paying for store construction.
func cachedStore[D any](dir, name string, build func() (*store.Store, *D, error), meta func() (*D, error)) (*store.Store, *D, error) {
	if dir == "" {
		return build()
	}
	path := filepath.Join(dir, name+".snap")
	if f, err := os.Open(path); err == nil {
		st, err := store.ReadSnapshot(f)
		f.Close()
		if err == nil {
			ds, err := meta()
			if err != nil {
				return nil, nil, err
			}
			return st, ds, nil
		}
		// A corrupt cache entry (interrupted write, partial download) is a
		// cache miss, not a fatal error: fall through and regenerate.
	}
	st, ds, err := build()
	if err != nil {
		return nil, nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	// Write to a temp name and rename so an interrupted run never leaves a
	// truncated snapshot at the cache key, and concurrent readers only ever
	// see complete files.
	tmp, err := os.CreateTemp(dir, name+".tmp-*")
	if err != nil {
		return nil, nil, err
	}
	if err := st.WriteSnapshot(tmp); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return nil, nil, err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return nil, nil, err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return nil, nil, err
	}
	return st, ds, nil
}

// NewBSBMEnv generates only the BSBM side (for experiments that do not
// need the social network).
func NewBSBMEnv(sc Scale) (*Env, error) {
	bst, bds, err := bsbm.BuildStore(sc.BSBM)
	if err != nil {
		return nil, err
	}
	return &Env{Scale: sc, BSBM: bst, BSBMData: bds}, nil
}

// NewSNBEnv generates only the SNB side.
func NewSNBEnv(sc Scale) (*Env, error) {
	sst, sds, err := snb.BuildStore(sc.SNB)
	if err != nil {
		return nil, err
	}
	return &Env{Scale: sc, SNB: sst, SNBData: sds}, nil
}

// bsbmRunner returns a workload runner over the BSBM store.
func (e *Env) bsbmRunner() *workload.Runner {
	return &workload.Runner{Store: e.BSBM, Opts: exec.Options{}}
}

// snbRunner returns a workload runner over the SNB store.
func (e *Env) snbRunner() *workload.Runner {
	return &workload.Runner{Store: e.SNB, Opts: exec.Options{}}
}
