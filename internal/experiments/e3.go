package experiments

import (
	"repro/internal/bsbm"
	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/workload"
)

// E3Result reproduces example E3: BSBM-BI Q4's runtime distribution is
// "clustered" — queries are either very fast or very slow, so the mean is
// not representative.
//
// Paper values: Min 59 ms, Median 354 ms, Mean 3.6 s, q95 17.6 s,
// Max 259 s; mean/median > 10; "almost no query in between" the modes.
type E3Result struct {
	Work            stats.Summary // in deterministic work units
	Runtime         stats.Summary // in wall-clock ms
	MeanMedianRatio float64
	GapRatio        float64 // largest multiplicative gap between consecutive runtimes
	FracNearMean    float64 // fraction of runs within ±25% of the mean
	Histogram       string  // log-scale ASCII histogram of the work distribution
	Table           *report.Table
}

// E3 runs the experiment on env's BSBM store.
func E3(env *Env) (*E3Result, error) {
	r := env.bsbmRunner()
	sc := env.Scale
	q4 := bsbm.Q4()
	dom, err := core.ExtractDomain(q4, env.BSBM)
	if err != nil {
		return nil, err
	}
	ms, err := r.Run(q4, core.NewUniformSampler(dom, sc.Seed+2).Sample(sc.Samples))
	if err != nil {
		return nil, err
	}
	works := workload.Values(ms, workload.MetricWork)
	res := &E3Result{
		Work:            stats.Summarize(works),
		Runtime:         workload.Summarize(ms, workload.MetricRuntime),
		MeanMedianRatio: stats.MeanMedianRatio(works),
	}
	res.GapRatio, _ = stats.LargestRelativeGap(works)
	res.FracNearMean = stats.FractionWithin(works, res.Work.Mean*0.75, res.Work.Mean*1.25)

	if res.Work.Min > 0 && res.Work.Max > res.Work.Min {
		h := stats.NewLogHistogram(res.Work.Min, res.Work.Max*1.001, 12)
		h.AddAll(works)
		res.Histogram = h.Render(40)
	}

	t := report.NewTable("E3: BSBM-BI Q4 runtime distribution under uniform sampling",
		"statistic", "paper", "measured (work)", "measured (ms)")
	t.Add("Min", "59 ms", report.FormatFloat(res.Work.Min), report.FormatDuration(res.Runtime.Min))
	t.Add("Median", "354 ms", report.FormatFloat(res.Work.Median), report.FormatDuration(res.Runtime.Median))
	t.Add("Mean", "3.6 s", report.FormatFloat(res.Work.Mean), report.FormatDuration(res.Runtime.Mean))
	t.Add("q95", "17.6 s", report.FormatFloat(res.Work.Q95), report.FormatDuration(res.Runtime.Q95))
	t.Add("Max", "259 s", report.FormatFloat(res.Work.Max), report.FormatDuration(res.Runtime.Max))
	t.Add("Mean/Median", "> 10", report.FormatFloat(res.MeanMedianRatio), "")
	t.Add("frac within ±25% of mean", "≈ 0", report.FormatFloat(res.FracNearMean), "")
	res.Table = t
	return res, nil
}
