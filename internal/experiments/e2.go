package experiments

import (
	"fmt"

	"repro/internal/bsbm"
	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/snb"
	"repro/internal/workload"
)

// E2Result reproduces example E2: the same query run with k independent
// uniform parameter groups reports group aggregates that disagree.
//
// Paper values: LDBC Q2 over 4×100 bindings — average deviates up to 40%,
// median/percentiles up to 100%; BSBM-BI Q2 mean differs up to ~15%,
// median up to ~25%.
type E2Result struct {
	SNBQ2  *workload.StabilityResult
	BSBMQ2 *workload.StabilityResult
	// The 4-group table exactly as printed in the paper (q10, Median, q90,
	// Average rows; one column per group), in work units.
	Table    *report.Table
	DevTable *report.Table
}

// E2 runs the experiment; env must carry both stores.
func E2(env *Env) (*E2Result, error) {
	sc := env.Scale

	// LDBC Q2 parameterized by %Person.
	snbQ2 := snb.Q2()
	domP, err := core.ExtractDomain(snbQ2, env.SNB)
	if err != nil {
		return nil, err
	}
	snbRes, err := env.snbRunner().GroupStability(
		snbQ2, core.NewUniformSampler(domP, sc.Seed), sc.Groups, sc.GroupSize, workload.MetricWork)
	if err != nil {
		return nil, err
	}

	// BSBM-BI Q2 parameterized by %Product.
	bq2 := bsbm.Q2()
	domB, err := core.ExtractDomain(bq2, env.BSBM)
	if err != nil {
		return nil, err
	}
	bsbmRes, err := env.bsbmRunner().GroupStability(
		bq2, core.NewUniformSampler(domB, sc.Seed+1), sc.Groups, sc.GroupSize, workload.MetricWork)
	if err != nil {
		return nil, err
	}

	res := &E2Result{SNBQ2: snbRes, BSBMQ2: bsbmRes}

	headers := []string{"Time (work units)"}
	for g := range snbRes.Groups {
		headers = append(headers, fmt.Sprintf("Group %d", g+1))
	}
	t := report.NewTable("E2: LDBC Q2 — independent uniform groups", headers...)
	addRow := func(name string, pick func(workload.GroupResult) float64) {
		row := []string{name}
		for _, g := range snbRes.Groups {
			row = append(row, report.FormatFloat(pick(g)))
		}
		t.Add(row...)
	}
	addRow("q10", func(g workload.GroupResult) float64 { return g.Summary.Q10 })
	addRow("Median", func(g workload.GroupResult) float64 { return g.Summary.Median })
	addRow("q90", func(g workload.GroupResult) float64 { return g.Summary.Q90 })
	addRow("Average", func(g workload.GroupResult) float64 { return g.Summary.Mean })
	res.Table = t

	d := report.NewTable("E2: cross-group max relative deviation",
		"metric", "paper", "LDBC Q2 measured", "BSBM Q2 measured")
	d.Add("average", "up to 40%", pct(snbRes.AvgDeviation), pct(bsbmRes.AvgDeviation))
	d.Add("median", "up to 100%", pct(snbRes.MedianDeviation), pct(bsbmRes.MedianDeviation))
	d.Add("q90", "up to 100%", pct(snbRes.Q90Deviation), pct(bsbmRes.Q90Deviation))
	res.DevTable = d
	return res, nil
}

func pct(x float64) string { return fmt.Sprintf("%.0f%%", x*100) }
