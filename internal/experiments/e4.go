package experiments

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/rdf"
	"repro/internal/report"
	"repro/internal/snb"
	"repro/internal/sparql"
)

// E4Result reproduces example E4: LDBC Q3's optimal plan depends on the
// country-pair parameters — "if X and Y are Finland and Zimbabwe, there are
// supposedly very few people that have been to both, but if X and Y are USA
// and Canada, this intersection is very large" — so the optimizer should
// start from the friendship expansion in one case and from the visitor
// intersection in the other.
type E4Result struct {
	DistinctPlans int
	// PlanStats maps plan signature -> (#pairs, mean co-visitor count).
	PlanStats map[string]PlanStat
	// Example pairs, mirroring the paper's narrative.
	PopularPair, RarePair       [2]int
	PopularSig, RareSig         string
	PopularCovisit, RareCovisit int
	Table                       *report.Table
}

// PlanStat summarizes the bindings that chose one optimal plan.
type PlanStat struct {
	Pairs       int
	MeanCovisit float64
}

// E4 runs the experiment on env's SNB store.
func E4(env *Env) (*E4Result, error) {
	ds := env.SNBData
	// A mid-to-high degree person keeps the friendship side non-trivial.
	person := 0
	for p, d := range ds.Degree {
		if d > ds.Degree[person] {
			person = p
		}
	}
	nc := ds.Config.Countries
	// Domain: fixed person × all ordered country pairs (X != Y).
	dom := &core.Domain{
		Params: []sparql.Param{"CountryX", "CountryY", "Person"},
		Values: [][]rdf.Term{countryTerms(nc), countryTerms(nc), {snb.PersonIRI(person)}},
	}
	a, err := core.Analyze(snb.Q3(), env.SNB, dom, core.AnalyzeOptions{MaxBindings: nc*nc + 1})
	if err != nil {
		return nil, err
	}

	covisit := covisitMatrix(ds)
	res := &E4Result{PlanStats: map[string]PlanStat{}}
	type acc struct {
		pairs int
		sum   float64
	}
	accs := map[string]*acc{}
	for _, pt := range a.Points {
		x, okx := countryIndex(pt.Binding["CountryX"])
		y, oky := countryIndex(pt.Binding["CountryY"])
		if !okx || !oky || x == y {
			continue
		}
		s, ok := accs[pt.Signature]
		if !ok {
			s = &acc{}
			accs[pt.Signature] = s
		}
		s.pairs++
		s.sum += float64(covisit[x][y])
	}
	for sig, s := range accs {
		res.PlanStats[sig] = PlanStat{Pairs: s.pairs, MeanCovisit: s.sum / float64(s.pairs)}
	}
	res.DistinctPlans = len(res.PlanStats)

	// The paper's two exemplary pairs: most co-visited vs least co-visited.
	res.PopularPair, res.RarePair = extremePairs(covisit)
	res.PopularCovisit = covisit[res.PopularPair[0]][res.PopularPair[1]]
	res.RareCovisit = covisit[res.RarePair[0]][res.RarePair[1]]
	res.PopularSig = signatureFor(a, res.PopularPair)
	res.RareSig = signatureFor(a, res.RarePair)

	t := report.NewTable("E4: LDBC Q3 — optimal plan depends on the country pair",
		"plan signature", "#pairs", "mean co-visitors")
	sigs := make([]string, 0, len(res.PlanStats))
	for sig := range res.PlanStats {
		sigs = append(sigs, sig)
	}
	sort.Slice(sigs, func(i, j int) bool {
		a, b := res.PlanStats[sigs[i]], res.PlanStats[sigs[j]]
		if a.MeanCovisit != b.MeanCovisit {
			return a.MeanCovisit > b.MeanCovisit
		}
		return sigs[i] < sigs[j] // deterministic order for tied means
	})
	for _, sig := range sigs {
		st := res.PlanStats[sig]
		t.Add(sig, fmt.Sprintf("%d", st.Pairs), report.FormatFloat(st.MeanCovisit))
	}
	t.Add("", "", "")
	t.Add(fmt.Sprintf("popular pair (%d,%d): %d co-visitors", res.PopularPair[0], res.PopularPair[1], res.PopularCovisit), res.PopularSig, "")
	t.Add(fmt.Sprintf("rare pair (%d,%d): %d co-visitors", res.RarePair[0], res.RarePair[1], res.RareCovisit), res.RareSig, "")
	res.Table = t
	return res, nil
}

func countryTerms(n int) []rdf.Term {
	out := make([]rdf.Term, n)
	for i := range out {
		out[i] = snb.CountryIRI(i)
	}
	return out
}

// countryIndex parses the index back out of a country IRI.
func countryIndex(t rdf.Term) (int, bool) {
	var i int
	if _, err := fmt.Sscanf(t.Value, snb.NS+"country%d", &i); err != nil {
		return 0, false
	}
	return i, true
}

// covisitMatrix computes |visitors(a) ∩ visitors(b)| for all country pairs.
func covisitMatrix(ds *snb.Dataset) [][]int {
	nc := ds.Config.Countries
	m := make([][]int, nc)
	for a := 0; a < nc; a++ {
		m[a] = make([]int, nc)
	}
	for a := 0; a < nc; a++ {
		seen := map[int]bool{}
		for _, p := range ds.Visitors[a] {
			seen[p] = true
		}
		for b := a + 1; b < nc; b++ {
			n := 0
			for _, p := range ds.Visitors[b] {
				if seen[p] {
					n++
				}
			}
			m[a][b], m[b][a] = n, n
		}
	}
	return m
}

// extremePairs finds the most and least co-visited country pairs (the
// least-visited among pairs with at least zero co-visitors, preferring a
// pair with the minimum count).
func extremePairs(m [][]int) (popular, rare [2]int) {
	best, worst := -1, int(^uint(0)>>1)
	for a := range m {
		for b := range m[a] {
			if a == b {
				continue
			}
			if m[a][b] > best {
				best = m[a][b]
				popular = [2]int{a, b}
			}
			if m[a][b] < worst {
				worst = m[a][b]
				rare = [2]int{a, b}
			}
		}
	}
	return popular, rare
}

// signatureFor looks up the analyzed signature of a specific country pair.
func signatureFor(a *core.Analysis, pair [2]int) string {
	for _, pt := range a.Points {
		x, okx := countryIndex(pt.Binding["CountryX"])
		y, oky := countryIndex(pt.Binding["CountryY"])
		if okx && oky && x == pair[0] && y == pair[1] {
			return pt.Signature
		}
	}
	return ""
}
