package experiments

import (
	"strings"
	"sync"
	"testing"
)

// A shared small environment: dataset generation dominates test time, so
// build it once.
var (
	envOnce sync.Once
	envVal  *Env
	envErr  error
)

func sharedEnv(t *testing.T) *Env {
	t.Helper()
	envOnce.Do(func() {
		envVal, envErr = NewEnv(SmallScale())
	})
	if envErr != nil {
		t.Fatal(envErr)
	}
	return envVal
}

func TestE1Shapes(t *testing.T) {
	res, err := E1(sharedEnv(t))
	if err != nil {
		t.Fatal(err)
	}
	// E1a: variance must dwarf the squared mean (paper: 674e6 ms² variance
	// on second-scale means).
	if res.Q4VarOverMeanSq < 1 {
		t.Errorf("Q4 var/mean² = %v, want > 1 (high variance)", res.Q4VarOverMeanSq)
	}
	// E1b: KS distance far from normal (paper: 0.89).
	if res.Q2KS.D < 0.2 {
		t.Errorf("Q2 KS distance = %v, want clearly non-normal (> 0.2)", res.Q2KS.D)
	}
	if res.Q2KS.PValue > 0.01 {
		t.Errorf("Q2 KS p-value = %v, want < 0.01", res.Q2KS.PValue)
	}
	if res.Table == nil || !strings.Contains(res.Table.String(), "E1") {
		t.Error("table missing")
	}
}

func TestE2Shapes(t *testing.T) {
	res, err := E2(sharedEnv(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SNBQ2.Groups) != SmallScale().Groups {
		t.Fatalf("groups = %d", len(res.SNBQ2.Groups))
	}
	// E2: group aggregates must disagree noticeably under uniform sampling
	// (paper: up to 40% on the average). At small scale we require > 3%.
	if res.SNBQ2.AvgDeviation < 0.03 {
		t.Errorf("SNB Q2 avg deviation = %v, want noticeable instability", res.SNBQ2.AvgDeviation)
	}
	if res.Table == nil || res.DevTable == nil {
		t.Fatal("tables missing")
	}
	if !strings.Contains(res.Table.String(), "Group 1") {
		t.Error("E2 table malformed")
	}
}

func TestE3Shapes(t *testing.T) {
	res, err := E3(sharedEnv(t))
	if err != nil {
		t.Fatal(err)
	}
	// Paper: mean over 10× the median. Our hierarchy gives a strong ratio;
	// require > 2 at small scale.
	if res.MeanMedianRatio < 2 {
		t.Errorf("mean/median = %v, want ≫ 1", res.MeanMedianRatio)
	}
	// Bimodality: a large multiplicative gap between consecutive runtimes.
	if res.GapRatio < 2 {
		t.Errorf("largest gap ratio = %v, want bimodal gap", res.GapRatio)
	}
	// "no actual query with the runtime close to the mean"
	if res.FracNearMean > 0.3 {
		t.Errorf("%.0f%% of runs near the mean, want few", res.FracNearMean*100)
	}
	if res.Work.Max <= res.Work.Min {
		t.Error("degenerate distribution")
	}
	if res.Histogram == "" {
		t.Error("histogram missing")
	}
}

func TestE4Shapes(t *testing.T) {
	res, err := E4(sharedEnv(t))
	if err != nil {
		t.Fatal(err)
	}
	// E4: at least two distinct optimal plans across country pairs.
	if res.DistinctPlans < 2 {
		t.Fatalf("distinct plans = %d, want >= 2\n%s", res.DistinctPlans, res.Table)
	}
	// The popular pair must have far more co-visitors than the rare pair.
	if res.PopularCovisit <= res.RareCovisit {
		t.Errorf("popular covisit %d <= rare %d", res.PopularCovisit, res.RareCovisit)
	}
	if res.PopularSig == "" || res.RareSig == "" {
		t.Error("example signatures missing")
	}
}

func TestX5Shapes(t *testing.T) {
	res, err := X5(sharedEnv(t))
	if err != nil {
		t.Fatal(err)
	}
	// Paper: ~0.85 Pearson between Cout and runtime. Our deterministic
	// work correlation should be at least that strong.
	if res.PearsonWork < 0.8 {
		t.Errorf("Pearson(Cout, work) = %v, want >= 0.8", res.PearsonWork)
	}
	if res.N < 30 {
		t.Errorf("sample too small: %d", res.N)
	}
	// Wall-clock correlation is noisy in CI but should remain positive and
	// substantial.
	if res.PearsonRuntime < 0.3 {
		t.Errorf("Pearson(Cout, runtime) = %v, want > 0.3", res.PearsonRuntime)
	}
	// Rank correlation isolates monotonicity; it should be very strong
	// against deterministic work.
	if res.SpearmanWork < 0.9 {
		t.Errorf("Spearman(Cout, work) = %v, want > 0.9", res.SpearmanWork)
	}
}

func TestX6CurationPayoff(t *testing.T) {
	res, err := X6(sharedEnv(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Classes) < 2 {
		t.Fatalf("classes = %d, want >= 2 (Q4a/Q4b)\n%s", len(res.Classes), res.Table)
	}
	// P3: one plan per class.
	for _, c := range res.Classes {
		if c.DistinctPlans != 1 {
			t.Errorf("class %s executes %d plans, want 1 (P3)", c.Name, c.DistinctPlans)
		}
	}
	// P1: within-class relative variance collapses versus uniform.
	ratio := res.MeanClassVarRatio()
	if ratio >= 0.5 {
		t.Errorf("class var/mean² ratio vs uniform = %v, want < 0.5\n%s", ratio, res.Table)
	}
	// P2: per-class group deviation below the uniform baseline.
	worst := 0.0
	for _, c := range res.Classes {
		if c.AvgDeviation > worst {
			worst = c.AvgDeviation
		}
	}
	if worst >= res.UniformAvgDeviation && res.UniformAvgDeviation > 0.02 {
		t.Errorf("worst class deviation %v >= uniform %v (P2 not improved)", worst, res.UniformAvgDeviation)
	}
}

func TestScales(t *testing.T) {
	small := SmallScale()
	paper := PaperScale()
	if small.GroupSize >= paper.GroupSize {
		t.Error("small scale should be smaller")
	}
	if paper.Groups != 4 || paper.GroupSize != 100 {
		t.Error("paper scale must use 4 groups of 100 (E2)")
	}
	if err := small.BSBM.Validate(); err != nil {
		t.Error(err)
	}
	if err := paper.SNB.Validate(); err != nil {
		t.Error(err)
	}
}

func TestPartialEnvs(t *testing.T) {
	sc := SmallScale()
	b, err := NewBSBMEnv(sc)
	if err != nil {
		t.Fatal(err)
	}
	if b.BSBM == nil || b.SNB != nil {
		t.Error("BSBM-only env wrong")
	}
	s, err := NewSNBEnv(sc)
	if err != nil {
		t.Fatal(err)
	}
	if s.SNB == nil || s.BSBM != nil {
		t.Error("SNB-only env wrong")
	}
}

func TestX7ScaleShapePersists(t *testing.T) {
	res, err := X7(sharedEnv(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 scales", len(res.Rows))
	}
	for i, row := range res.Rows {
		if row.MeanMedianRatio < 1.2 {
			t.Errorf("scale %d: mean/median = %v, shape lost", i, row.MeanMedianRatio)
		}
		if i > 0 && res.Rows[i].Triples <= res.Rows[i-1].Triples {
			t.Errorf("scales not increasing: %d then %d", res.Rows[i-1].Triples, res.Rows[i].Triples)
		}
	}
	if res.Table == nil {
		t.Fatal("table missing")
	}
}
