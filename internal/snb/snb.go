// Package snb implements a scaled-down LDBC Social Network Benchmark data
// generator in the spirit of S3G2 (the "Scalable Structure-Correlated
// Social Graph Generator" the LDBC benchmark builds on), plus the
// interactive query templates the paper measures (Q2 "newest posts of
// friends", Q3 "friends within two steps who visited countries X and Y").
//
// The generator reproduces the three real-world properties the paper's
// examples depend on:
//
//   - correlation between attribute dimensions: first names are drawn from
//     country-specific pools ("if the %name is Li, and the %country is
//     China, the query is an unselective join"),
//   - heavy-tailed friendship degrees with homophily (friends are biased
//     toward the same country), which spreads Q2's runtime (E2),
//   - correlated country visits (people visit their own region and a few
//     globally popular destinations), so some country pairs are co-visited
//     by many people and most pairs by almost none (E4).
package snb

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/rdf"
	"repro/internal/store"
)

// NS is the vocabulary namespace.
const NS = "http://snb.example.org/"

// Vocabulary IRIs.
var (
	ClassPerson    = rdf.NewIRI(NS + "Person")
	PredType       = rdf.NewIRI(rdf.RDFType)
	PredFirstName  = rdf.NewIRI(NS + "firstName")
	PredLivesIn    = rdf.NewIRI(NS + "livesIn")
	PredKnows      = rdf.NewIRI(NS + "knows")
	PredHasCreator = rdf.NewIRI(NS + "hasCreator")
	PredCreated    = rdf.NewIRI(NS + "creationDate")
	PredHasBeenTo  = rdf.NewIRI(NS + "hasBeenTo")
	PredContent    = rdf.NewIRI(NS + "content")
	PredName       = rdf.NewIRI(NS + "name")
)

// Config sizes the generated network.
type Config struct {
	Persons         int     // number of persons
	Countries       int     // number of countries
	NamesPerCountry int     // characteristic first names per country
	GlobalNames     int     // shared first-name pool
	MeanDegree      int     // mean number of friends
	DegreeZipfS     float64 // Zipf exponent for the degree distribution (>1)
	Homophily       float64 // probability a friend comes from the same country
	PostsPerFriend  int     // posts per person per friend (posting activity tracks degree)
	VisitsPerPerson int     // extra country visits beyond the home country
	Seed            int64
}

// DefaultConfig approximates (at reduced scale) the SNB dataset of the
// paper: ~1M triples with Persons≈20000.
func DefaultConfig() Config {
	return Config{
		Persons:         20000,
		Countries:       50,
		NamesPerCountry: 20,
		GlobalNames:     30,
		MeanDegree:      12,
		DegreeZipfS:     2.0,
		Homophily:       0.7,
		PostsPerFriend:  2,
		VisitsPerPerson: 3,
		Seed:            1,
	}
}

// TestConfig is small enough for unit tests while keeping degree skew and
// correlations.
func TestConfig() Config {
	return Config{
		Persons:         1500,
		Countries:       12,
		NamesPerCountry: 8,
		GlobalNames:     10,
		MeanDegree:      8,
		DegreeZipfS:     2.0,
		Homophily:       0.7,
		PostsPerFriend:  2,
		VisitsPerPerson: 3,
		Seed:            1,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Persons < 2:
		return fmt.Errorf("snb: Persons must be >= 2")
	case c.Countries < 2:
		return fmt.Errorf("snb: Countries must be >= 2")
	case c.NamesPerCountry < 1 || c.GlobalNames < 1:
		return fmt.Errorf("snb: name pools must be >= 1")
	case c.MeanDegree < 1:
		return fmt.Errorf("snb: MeanDegree must be >= 1")
	case c.DegreeZipfS <= 1:
		return fmt.Errorf("snb: DegreeZipfS must be > 1")
	case c.Homophily < 0 || c.Homophily > 1:
		return fmt.Errorf("snb: Homophily must be in [0,1]")
	case c.PostsPerFriend < 0 || c.VisitsPerPerson < 0:
		return fmt.Errorf("snb: posts/visits must be >= 0")
	}
	return nil
}

// Dataset records generation metadata for experiments and tests.
type Dataset struct {
	Config      Config
	CountryOf   []int   // person -> country index
	Degree      []int   // person -> friend count (undirected degree)
	Populations []int   // country -> inhabitant count
	Visitors    [][]int // country -> sorted person ids who visited it
}

// PersonIRI returns the IRI of person i.
func PersonIRI(i int) rdf.Term { return rdf.NewIRI(fmt.Sprintf("%sperson%d", NS, i)) }

// CountryIRI returns the IRI of country i.
func CountryIRI(i int) rdf.Term { return rdf.NewIRI(fmt.Sprintf("%scountry%d", NS, i)) }

// PostIRI returns the IRI of post (person, seq).
func PostIRI(person, seq int) rdf.Term {
	return rdf.NewIRI(fmt.Sprintf("%spost%d_%d", NS, person, seq))
}

// countryName gives human-flavoured country labels; index 0 is the most
// populous ("China" in the paper's running example).
func countryName(i int) string {
	names := []string{"China", "India", "USA", "Indonesia", "Brazil", "Russia",
		"Japan", "Mexico", "Germany", "Turkey", "France", "UK"}
	if i < len(names) {
		return names[i]
	}
	return fmt.Sprintf("Country%d", i)
}

// firstName returns the j-th characteristic name of country c; index 0 is
// the country's dominant name (e.g. "Li" for China).
func firstName(c, j int) string {
	if c == 0 && j == 0 {
		return "Li"
	}
	if c == 2 && j == 0 {
		return "John"
	}
	return fmt.Sprintf("Name_c%d_%d", c, j)
}

func globalName(j int) string { return fmt.Sprintf("Global_%d", j) }

// Generate produces the dataset, emitting every triple to emit.
// Deterministic per config.
func Generate(cfg Config, emit func(rdf.Triple) error) (*Dataset, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	ds := &Dataset{
		Config:      cfg,
		CountryOf:   make([]int, cfg.Persons),
		Degree:      make([]int, cfg.Persons),
		Populations: make([]int, cfg.Countries),
		Visitors:    make([][]int, cfg.Countries),
	}

	// Countries carry human-readable names ("China" is country 0, matching
	// the paper's running example).
	for c := 0; c < cfg.Countries; c++ {
		if err := emit(rdf.NewTriple(CountryIRI(c), PredName, rdf.NewLiteral(countryName(c)))); err != nil {
			return nil, err
		}
	}

	// Country of residence: Zipf-distributed population.
	countryWeights := zipfWeights(cfg.Countries, 1.0)
	for p := 0; p < cfg.Persons; p++ {
		c := sampleWeighted(rng, countryWeights)
		ds.CountryOf[p] = c
		ds.Populations[c]++
	}
	// Persons grouped by country for homophilous friend picking.
	byCountry := make([][]int, cfg.Countries)
	for p, c := range ds.CountryOf {
		byCountry[c] = append(byCountry[c], p)
	}

	// Emit person attributes: type, livesIn, correlated firstName.
	nameWeights := zipfWeights(cfg.NamesPerCountry, 1.2)
	globalWeights := zipfWeights(cfg.GlobalNames, 1.2)
	for p := 0; p < cfg.Persons; p++ {
		person := PersonIRI(p)
		c := ds.CountryOf[p]
		if err := emit(rdf.NewTriple(person, PredType, ClassPerson)); err != nil {
			return nil, err
		}
		if err := emit(rdf.NewTriple(person, PredLivesIn, CountryIRI(c))); err != nil {
			return nil, err
		}
		var name string
		if rng.Float64() < 0.75 {
			name = firstName(c, sampleWeighted(rng, nameWeights))
		} else {
			name = globalName(sampleWeighted(rng, globalWeights))
		}
		if err := emit(rdf.NewTriple(person, PredFirstName, rdf.NewLiteral(name))); err != nil {
			return nil, err
		}
	}

	// Friendship graph: heavy-tailed target degrees with homophily; edges
	// are symmetric and emitted in both directions.
	zipf := rand.NewZipf(rng, cfg.DegreeZipfS, 1, uint64(cfg.Persons/4))
	target := make([]int, cfg.Persons)
	for p := range target {
		// Base degree plus a heavy-tailed bonus; hubs emerge naturally.
		target[p] = 1 + rng.Intn(cfg.MeanDegree) + int(zipf.Uint64())
	}
	type edge struct{ a, b int }
	edges := map[edge]bool{}
	addEdge := func(a, b int) bool {
		if a == b {
			return false
		}
		if a > b {
			a, b = b, a
		}
		if edges[edge{a, b}] {
			return false
		}
		edges[edge{a, b}] = true
		ds.Degree[a]++
		ds.Degree[b]++
		return true
	}
	for p := 0; p < cfg.Persons; p++ {
		for ds.Degree[p] < target[p] {
			var q int
			if rng.Float64() < cfg.Homophily {
				pool := byCountry[ds.CountryOf[p]]
				if len(pool) < 2 {
					q = rng.Intn(cfg.Persons)
				} else {
					q = pool[rng.Intn(len(pool))]
				}
			} else {
				q = rng.Intn(cfg.Persons)
			}
			if !addEdge(p, q) {
				// Collision or self-loop: one blind retry then give up this
				// slot to guarantee termination.
				q = rng.Intn(cfg.Persons)
				if !addEdge(p, q) {
					break
				}
			}
		}
	}
	for e := range edges {
		if err := emit(rdf.NewTriple(PersonIRI(e.a), PredKnows, PersonIRI(e.b))); err != nil {
			return nil, err
		}
		if err := emit(rdf.NewTriple(PersonIRI(e.b), PredKnows, PersonIRI(e.a))); err != nil {
			return nil, err
		}
	}

	// Posts: activity proportional to degree; ISO dates spread over 2012-13.
	for p := 0; p < cfg.Persons; p++ {
		n := ds.Degree[p] * cfg.PostsPerFriend / 2
		if n < 1 {
			n = 1
		}
		for s := 0; s < n; s++ {
			post := PostIRI(p, s)
			if err := emit(rdf.NewTriple(post, PredHasCreator, PersonIRI(p))); err != nil {
				return nil, err
			}
			date := randomDate(rng)
			if err := emit(rdf.NewTriple(post, PredCreated, rdf.NewTypedLiteral(date, rdf.XSDDateTime))); err != nil {
				return nil, err
			}
			if err := emit(rdf.NewTriple(post, PredContent, rdf.NewLiteral(fmt.Sprintf("post %d by %d", s, p)))); err != nil {
				return nil, err
			}
		}
	}

	// Country visits: home country always; then a mix of neighbour
	// countries (regional travel) and Zipf-popular global destinations.
	visitSeen := make([]map[int]bool, cfg.Persons)
	visit := func(p, c int) error {
		if visitSeen[p] == nil {
			visitSeen[p] = map[int]bool{}
		}
		if visitSeen[p][c] {
			return nil
		}
		visitSeen[p][c] = true
		ds.Visitors[c] = append(ds.Visitors[c], p)
		return emit(rdf.NewTriple(PersonIRI(p), PredHasBeenTo, CountryIRI(c)))
	}
	destWeights := zipfWeights(cfg.Countries, 1.5)
	for p := 0; p < cfg.Persons; p++ {
		home := ds.CountryOf[p]
		if err := visit(p, home); err != nil {
			return nil, err
		}
		for v := 0; v < cfg.VisitsPerPerson; v++ {
			var c int
			if rng.Float64() < 0.5 {
				// Regional: a neighbour of the home country.
				if rng.Intn(2) == 0 {
					c = (home + 1) % cfg.Countries
				} else {
					c = (home - 1 + cfg.Countries) % cfg.Countries
				}
			} else {
				// Global destination popularity.
				c = sampleWeighted(rng, destWeights)
			}
			if err := visit(p, c); err != nil {
				return nil, err
			}
		}
	}
	return ds, nil
}

// randomDate yields an ISO xsd:dateTime lexical form in 2012–2013; ISO
// strings order chronologically under lexical comparison.
func randomDate(rng *rand.Rand) string {
	year := 2012 + rng.Intn(2)
	month := 1 + rng.Intn(12)
	day := 1 + rng.Intn(28)
	return fmt.Sprintf("%04d-%02d-%02dT%02d:%02d:%02dZ",
		year, month, day, rng.Intn(24), rng.Intn(60), rng.Intn(60))
}

// zipfWeights returns normalized weights w_i ∝ 1/(i+1)^s.
func zipfWeights(n int, s float64) []float64 {
	w := make([]float64, n)
	sum := 0.0
	for i := range w {
		w[i] = 1 / math.Pow(float64(i+1), s)
		sum += w[i]
	}
	for i := range w {
		w[i] /= sum
	}
	return w
}

// sampleWeighted draws an index with the given normalized weights.
func sampleWeighted(rng *rand.Rand, w []float64) int {
	x := rng.Float64()
	acc := 0.0
	for i, wi := range w {
		acc += wi
		if x < acc {
			return i
		}
	}
	return len(w) - 1
}

// BuildStore generates the dataset directly into a triple store.
func BuildStore(cfg Config) (*store.Store, *Dataset, error) {
	b := store.NewBuilder()
	ds, err := Generate(cfg, b.Add)
	if err != nil {
		return nil, nil, err
	}
	return b.Build(), ds, nil
}
