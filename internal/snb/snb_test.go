package snb

import (
	"sort"
	"testing"

	"repro/internal/exec"
	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/stats"
	"repro/internal/store"
)

func TestValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := TestConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{},
		{Persons: 10, Countries: 1},
		{Persons: 10, Countries: 5, NamesPerCountry: 1, GlobalNames: 1, MeanDegree: 2, DegreeZipfS: 0.5},
		{Persons: 10, Countries: 5, NamesPerCountry: 1, GlobalNames: 1, MeanDegree: 2, DegreeZipfS: 2, Homophily: 1.5},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d should fail validation", i)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := TestConfig()
	count := func() (int, *Dataset) {
		n := 0
		ds, err := Generate(cfg, func(rdf.Triple) error { n++; return nil })
		if err != nil {
			t.Fatal(err)
		}
		return n, ds
	}
	n1, ds1 := count()
	n2, ds2 := count()
	if n1 != n2 {
		t.Fatalf("triple counts differ: %d vs %d", n1, n2)
	}
	for i := range ds1.Degree {
		if ds1.Degree[i] != ds2.Degree[i] {
			t.Fatalf("degrees differ at person %d", i)
		}
	}
}

func TestCountryPopulationSkew(t *testing.T) {
	_, ds, err := BuildStore(TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Country 0 ("China") must be the most populous by construction.
	for c := 1; c < len(ds.Populations); c++ {
		if ds.Populations[c] > ds.Populations[0] {
			t.Fatalf("country %d (%d) more populous than country 0 (%d)",
				c, ds.Populations[c], ds.Populations[0])
		}
	}
}

func TestNameCountryCorrelation(t *testing.T) {
	st, _, err := BuildStore(TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	d := st.Dict()
	lookupCount := func(name string, country int) int {
		nid, ok1 := d.Lookup(rdf.NewLiteral(name))
		cid, ok2 := d.Lookup(CountryIRI(country))
		fn, _ := d.Lookup(PredFirstName)
		li, _ := d.Lookup(PredLivesIn)
		if !ok1 || !ok2 {
			return 0
		}
		// Count persons with both name and country.
		named, _ := st.Match(store.Pattern{P: fn, O: nid})
		n := 0
		for _, tr := range named {
			if st.Count(store.Pattern{S: tr.S, P: li, O: cid}) > 0 {
				n++
			}
		}
		return n
	}
	liChina := lookupCount("Li", 0)
	johnChina := lookupCount("John", 0)
	if liChina == 0 {
		t.Fatal("no Li in China — correlation missing")
	}
	if johnChina >= liChina {
		t.Fatalf("John in China (%d) >= Li in China (%d) — correlation inverted", johnChina, liChina)
	}
}

func TestDegreeHeavyTail(t *testing.T) {
	_, ds, err := BuildStore(TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	degs := make([]float64, len(ds.Degree))
	for i, d := range ds.Degree {
		degs[i] = float64(d)
	}
	s := stats.Summarize(degs)
	if s.Max < 3*s.Median {
		t.Fatalf("degree distribution not heavy-tailed: max %v median %v", s.Max, s.Median)
	}
	if s.Min < 1 {
		t.Fatalf("isolated person: min degree %v", s.Min)
	}
}

func TestKnowsSymmetric(t *testing.T) {
	st, _, err := BuildStore(TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	knows, _ := st.Dict().Lookup(PredKnows)
	all, _ := st.Match(store.Pattern{P: knows})
	for _, tr := range all {
		if st.Count(store.Pattern{S: tr.O, P: knows, O: tr.S}) != 1 {
			t.Fatalf("knows edge %v not symmetric", tr)
		}
	}
}

func TestVisitCorrelation(t *testing.T) {
	_, ds, err := BuildStore(TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Co-visits of (0,1) (popular + neighbour) must dwarf a far rare pair.
	co := func(a, b int) int {
		seen := map[int]bool{}
		for _, p := range ds.Visitors[a] {
			seen[p] = true
		}
		n := 0
		for _, p := range ds.Visitors[b] {
			if seen[p] {
				n++
			}
		}
		return n
	}
	popular := co(0, 1)
	nc := ds.Config.Countries
	rare := co(nc/2, nc-2)
	if popular == 0 {
		t.Fatal("no co-visitors of countries 0 and 1")
	}
	if rare >= popular {
		t.Fatalf("rare pair co-visits (%d) >= popular pair (%d)", rare, popular)
	}
}

func TestQ2Runs(t *testing.T) {
	st, ds, err := BuildStore(TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Pick the highest-degree person for a guaranteed non-empty result.
	best := 0
	for p, d := range ds.Degree {
		if d > ds.Degree[best] {
			best = p
		}
	}
	bound, err := Q2().Bind(sparql.Binding{"Person": PersonIRI(best)})
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := exec.Query(bound, st, exec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("Q2 empty for the top hub")
	}
	if len(res.Rows) > 20 {
		t.Fatalf("LIMIT 20 violated: %d rows", len(res.Rows))
	}
	// Dates must be descending.
	d := st.Dict()
	for i := 1; i < len(res.Rows); i++ {
		prev := d.Decode(res.Rows[i-1][1]).Value
		cur := d.Decode(res.Rows[i][1]).Value
		if cur > prev {
			t.Fatalf("dates not descending: %s after %s", cur, prev)
		}
	}
}

func TestQ3PlanDependsOnCountryPair(t *testing.T) {
	st, ds, err := BuildStore(TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	best := 0
	for p, d := range ds.Degree {
		if d > ds.Degree[best] {
			best = p
		}
	}
	person := PersonIRI(best)
	nc := ds.Config.Countries
	bindPopular := sparql.Binding{"Person": person, "CountryX": CountryIRI(0), "CountryY": CountryIRI(1)}
	bindRare := sparql.Binding{"Person": person, "CountryX": CountryIRI(nc / 2), "CountryY": CountryIRI(nc - 2)}
	qp, err := Q3().Bind(bindPopular)
	if err != nil {
		t.Fatal(err)
	}
	qr, err := Q3().Bind(bindRare)
	if err != nil {
		t.Fatal(err)
	}
	_, planPop, err := exec.Query(qp, st, exec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, planRare, err := exec.Query(qr, st, exec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// E4: the two bindings should give different optimal plans (this is a
	// property of the data shape; if it ever fails the generator has lost
	// its co-visit skew).
	if planPop.Signature == planRare.Signature {
		t.Logf("popular plan:\n%s", planPop)
		t.Logf("rare plan:\n%s", planRare)
		t.Fatal("popular and rare country pairs produced identical optimal plans")
	}
}

func TestQ1IntroExample(t *testing.T) {
	st, _, err := BuildStore(TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Li × China: unselective. John × China: selective (possibly empty).
	qLi, err := Q1().Bind(sparql.Binding{"Name": rdf.NewLiteral("Li"), "Country": CountryIRI(0)})
	if err != nil {
		t.Fatal(err)
	}
	resLi, _, err := exec.Query(qLi, st, exec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	qJohn, err := Q1().Bind(sparql.Binding{"Name": rdf.NewLiteral("John"), "Country": CountryIRI(0)})
	if err != nil {
		t.Fatal(err)
	}
	resJohn, _, err := exec.Query(qJohn, st, exec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(resJohn.Rows) >= len(resLi.Rows) {
		t.Fatalf("John@China (%d) >= Li@China (%d): correlation broken",
			len(resJohn.Rows), len(resLi.Rows))
	}
}

func TestVisitorsSorted(t *testing.T) {
	_, ds, err := BuildStore(TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	for c, vs := range ds.Visitors {
		if !sort.IntsAreSorted(vs) {
			t.Fatalf("visitors of country %d not sorted", c)
		}
	}
}
