package snb

import "repro/internal/sparql"

// The LDBC interactive query templates measured in the paper, expressed in
// the engine's SPARQL subset.

// QueryQ2Text is LDBC Q2: "finds the newest 20 posts of the user's
// friends", parameterized by %Person. Friend-degree and posting-activity
// skew make its runtime sample-dependent — the E2 stability example.
const QueryQ2Text = `
PREFIX sn: <http://snb.example.org/>
SELECT ?post ?date WHERE {
  %Person sn:knows ?friend .
  ?post sn:hasCreator ?friend .
  ?post sn:creationDate ?date .
} ORDER BY DESC(?date) LIMIT 20`

// QueryQ3Text is LDBC Q3: "finds the friends within two steps that have
// been to countries X and Y". The optimal plan starts either from the
// two-step friendship expansion or from the people who visited both
// countries, depending on how frequently X and Y are co-visited — the E4
// plan-variability example.
const QueryQ3Text = `
PREFIX sn: <http://snb.example.org/>
SELECT DISTINCT ?f2 WHERE {
  %Person sn:knows ?f1 .
  ?f1 sn:knows ?f2 .
  ?f2 sn:hasBeenTo %CountryX .
  ?f2 sn:hasBeenTo %CountryY .
  FILTER(?f2 != %Person)
}`

// QueryQ1Text is the paper's introductory template: persons by first name
// and country of residence. Name↔country correlation makes the two
// parameters jointly selective or unselective.
const QueryQ1Text = `
PREFIX sn: <http://snb.example.org/>
SELECT ?person WHERE {
  ?person sn:firstName %Name .
  ?person sn:livesIn %Country .
}`

// QueryQ4Text is the grouped-counts template: posts per friend of
// %Person, grouped and filtered on the group size — LDBC's "friend
// activity" shape expressed with the compositional algebra (GROUP BY +
// COUNT + HAVING). The materializing baseline rejects it.
const QueryQ4Text = `
PREFIX sn: <http://snb.example.org/>
SELECT ?friend (COUNT(*) AS ?n) WHERE {
  %Person sn:knows ?friend .
  ?post sn:hasCreator ?friend .
} GROUP BY ?friend HAVING(?n >= 1) ORDER BY ?friend`

// Q2 returns the parsed Q2 template.
func Q2() *sparql.Query { return sparql.MustParse(QueryQ2Text) }

// Q4 returns the parsed Q4 (grouped friend activity) template.
func Q4() *sparql.Query { return sparql.MustParse(QueryQ4Text) }

// Q3 returns the parsed Q3 template.
func Q3() *sparql.Query { return sparql.MustParse(QueryQ3Text) }

// Q1 returns the parsed Q1 template.
func Q1() *sparql.Query { return sparql.MustParse(QueryQ1Text) }
