package difftest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"testing"

	"repro/internal/exec"
	"repro/internal/store"
)

// failureArtifact is the reproduction record written to DIFFTEST_OUT when
// a differential check fails, so CI can upload it.
type failureArtifact struct {
	Seed    int64    `json:"seed"`
	Query   string   `json:"query,omitempty"`
	Updates []string `json:"updates,omitempty"`
	Error   string   `json:"error"`
}

// reportFailure records the failing scenario for reproduction and fails
// the test with the seed front and center.
func reportFailure(t *testing.T, sc *Scenario, query string, err error) {
	t.Helper()
	if out := os.Getenv("DIFFTEST_OUT"); out != "" {
		art := failureArtifact{Seed: sc.Seed, Query: query, Error: err.Error()}
		for _, u := range sc.Updates {
			art.Updates = append(art.Updates, u.String())
		}
		if data, jerr := json.MarshalIndent(art, "", "  "); jerr == nil {
			_ = os.WriteFile(out, data, 0o644)
		}
	}
	t.Fatalf("seed %d (rerun with DIFFTEST_SEED=%d): %v", sc.Seed, sc.Seed, err)
}

// seedsUnderTest returns the scenario seeds: DIFFTEST_SEED pins a single
// scenario, otherwise a fixed deterministic batch runs.
func seedsUnderTest(t *testing.T) []int64 {
	if s := os.Getenv("DIFFTEST_SEED"); s != "" {
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("bad DIFFTEST_SEED %q: %v", s, err)
		}
		return []int64{n}
	}
	var out []int64
	for s := int64(1); s <= 10; s++ {
		out = append(out, s)
	}
	return out
}

// TestDifferentialEngines is the harness entry point: for every scenario
// seed it cross-checks the full engine matrix over the pristine store and
// the delta-overlaid store, and checks the overlay against the
// rebuilt-from-scratch reference — rows and accounting byte-identical
// everywhere, which is the PR's acceptance criterion at Parallelism 1, 2
// and 8.
func TestDifferentialEngines(t *testing.T) {
	const queriesPerScenario = 30
	for _, seed := range seedsUnderTest(t) {
		sc, err := GenScenario(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		checkStoreEquivalence(t, sc)
		qrng := rand.New(rand.NewSource(sc.Seed * 7919))
		for qi := 0; qi < queriesPerScenario; qi++ {
			q, err := sc.GenQuery(qrng)
			if err != nil {
				reportFailure(t, sc, "", err)
			}
			text := q.String()
			if _, err := RunQuery(q, sc.Base, "pristine"); err != nil {
				reportFailure(t, sc, text, err)
			}
			ovl, err := RunQuery(q, sc.Overlay, "overlay")
			if err != nil {
				reportFailure(t, sc, text, err)
			}
			reb, err := RunQuery(q, sc.Rebuilt, "rebuilt")
			if err != nil {
				reportFailure(t, sc, text, err)
			}
			if ovl != reb {
				reportFailure(t, sc, text, fmt.Errorf(
					"overlay result diverges from rebuilt store\n--- overlay\n%s\n--- rebuilt\n%s", ovl, reb))
			}
		}
	}
}

// TestDifferentialStarBGP cross-checks star-shaped BGPs — the shape the
// leapfrog triejoin lowers to a single multiway node — across the strict
// engine matrix (byte-identical) and the leapfrog matrix (byte-identical
// to each other at Parallelism 1, 2 and 8, multiset-identical to the
// binary-plan reference), over the pristine store, the delta overlay and
// the rebuilt reference store.
func TestDifferentialStarBGP(t *testing.T) {
	const queriesPerScenario = 15
	for _, seed := range seedsUnderTest(t) {
		sc, err := GenScenario(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		qrng := rand.New(rand.NewSource(sc.Seed * 6133))
		for qi := 0; qi < queriesPerScenario; qi++ {
			q, err := sc.GenStarQuery(qrng)
			if err != nil {
				reportFailure(t, sc, "", err)
			}
			text := q.String()
			if _, err := RunStarQuery(q, sc.Base, "pristine"); err != nil {
				reportFailure(t, sc, text, err)
			}
			ovl, err := RunStarQuery(q, sc.Overlay, "overlay")
			if err != nil {
				reportFailure(t, sc, text, err)
			}
			reb, err := RunStarQuery(q, sc.Rebuilt, "rebuilt")
			if err != nil {
				reportFailure(t, sc, text, err)
			}
			if ovl != reb {
				reportFailure(t, sc, text, fmt.Errorf(
					"overlay result diverges from rebuilt store\n--- overlay\n%s\n--- rebuilt\n%s", ovl, reb))
			}
		}
	}
}

// checkStoreEquivalence asserts the overlay's whole statistics surface
// matches the rebuilt reference exactly — the property that makes the
// optimizer's plan choice (and therefore row order) identical over both.
func checkStoreEquivalence(t *testing.T, sc *Scenario) {
	t.Helper()
	ov, ref := sc.Overlay, sc.Rebuilt
	if ov.Len() != ref.Len() {
		reportFailure(t, sc, "", fmt.Errorf("Len: overlay %d != rebuilt %d", ov.Len(), ref.Len()))
	}
	ovPreds, refPreds := ov.Predicates(), ref.Predicates()
	if len(ovPreds) != len(refPreds) {
		reportFailure(t, sc, "", fmt.Errorf("Predicates: %d vs %d", len(ovPreds), len(refPreds)))
	}
	for i, p := range refPreds {
		if ovPreds[i] != p {
			reportFailure(t, sc, "", fmt.Errorf("Predicates[%d]: %d vs %d", i, ovPreds[i], p))
		}
		if ov.PredicateStats(p) != ref.PredicateStats(p) {
			reportFailure(t, sc, "", fmt.Errorf("PredicateStats(%d): %+v vs %+v",
				p, ov.PredicateStats(p), ref.PredicateStats(p)))
		}
	}
	// Spot-check counts for every pattern shape over a seeded sample.
	rng := rand.New(rand.NewSource(sc.Seed * 104729))
	all, _ := ref.Match(store.Pattern{})
	for i := 0; i < 30 && len(all) > 0; i++ {
		tr := all[rng.Intn(len(all))]
		for _, pat := range []store.Pattern{
			{S: tr.S}, {P: tr.P}, {O: tr.O},
			{S: tr.S, P: tr.P}, {S: tr.S, O: tr.O}, {P: tr.P, O: tr.O},
			{S: tr.S, P: tr.P, O: tr.O}, {},
		} {
			if ov.Count(pat) != ref.Count(pat) {
				reportFailure(t, sc, "", fmt.Errorf("Count(%v): %d vs %d", pat, ov.Count(pat), ref.Count(pat)))
			}
		}
	}
}

// TestDifferentialSnapshotRoundTrip runs a slice of the matrix over an
// overlay that has been through a v3 snapshot write/read cycle: queries
// over the restored overlay must match the original overlay exactly.
func TestDifferentialSnapshotRoundTrip(t *testing.T) {
	sc, err := GenScenario(12345)
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/ov.snap"
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Overlay.WriteSnapshot(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	restored, err := store.LoadAny(path)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Delta() == nil {
		t.Fatal("restored snapshot lost the delta overlay")
	}
	qrng := rand.New(rand.NewSource(999))
	for qi := 0; qi < 15; qi++ {
		q, err := sc.GenQuery(qrng)
		if err != nil {
			t.Fatal(err)
		}
		want, err := RunQuery(q, sc.Overlay, "overlay")
		if err != nil {
			t.Fatal(err)
		}
		got, err := RunQuery(q, restored, "restored")
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("query %s diverges after v3 round trip\n--- overlay\n%s\n--- restored\n%s",
				q.String(), want, got)
		}
	}
}

// TestDifferentialAlgebra cross-checks OPTIONAL/UNION/aggregate queries —
// the compositional algebra the materializing baseline does not support —
// across the streaming and columnar engines at Parallelism 1, 2 and 8,
// over the pristine store, the delta overlay (whose history includes
// pattern-driven WHERE updates) and the rebuilt reference store.
func TestDifferentialAlgebra(t *testing.T) {
	const queriesPerScenario = 20
	for _, seed := range seedsUnderTest(t) {
		sc, err := GenScenario(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		qrng := rand.New(rand.NewSource(sc.Seed * 9973))
		for qi := 0; qi < queriesPerScenario; qi++ {
			q, err := sc.GenAlgebraQuery(qrng)
			if err != nil {
				reportFailure(t, sc, "", err)
			}
			text := q.String()
			if _, err := RunAlgebraQuery(q, sc.Base, "pristine"); err != nil {
				reportFailure(t, sc, text, err)
			}
			ovl, err := RunAlgebraQuery(q, sc.Overlay, "overlay")
			if err != nil {
				reportFailure(t, sc, text, err)
			}
			reb, err := RunAlgebraQuery(q, sc.Rebuilt, "rebuilt")
			if err != nil {
				reportFailure(t, sc, text, err)
			}
			if ovl != reb {
				reportFailure(t, sc, text, fmt.Errorf(
					"overlay result diverges from rebuilt store\n--- overlay\n%s\n--- rebuilt\n%s", ovl, reb))
			}
		}
	}
}

// shardCountUnderTest picks the shard count for a scenario: the SHARDS
// environment variable pins it (the CI matrix axis runs 1 and 4),
// otherwise the count rotates deterministically per seed so the fixed
// batch covers several partitionings, non-power-of-two included.
func shardCountUnderTest(t *testing.T, seed int64) int {
	if s := os.Getenv("SHARDS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			t.Fatalf("bad SHARDS %q", s)
		}
		return n
	}
	rotation := []int{2, 3, 4, 8}
	return rotation[int(seed)%len(rotation)]
}

// TestDifferentialSharded is the shard-count-invariance harness: for every
// scenario the full engine matrix runs over subject-hash sharded views of
// the pristine store, the post-update overlay, and the fully compacted
// post-update store, and every result — rows AND Cout/Work/Scanned
// accounting — must be byte-identical to the single-store world. The
// sharded overlay is produced by replaying the scenario's own update
// history through exec.ApplyUpdateSharded, so the routed update path is
// differentially checked against the unsharded one too.
func TestDifferentialSharded(t *testing.T) {
	const queriesPerScenario = 20
	for _, seed := range seedsUnderTest(t) {
		sc, err := GenScenario(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		n := shardCountUnderTest(t, seed)
		shBase := store.NewSharded(sc.Base, n)
		sd := shBase.NewDelta()
		for _, u := range sc.Updates {
			sd, err = exec.ApplyUpdateSharded(sd, u)
			if err != nil {
				reportFailure(t, sc, "", fmt.Errorf("shards=%d: replay update: %w", n, err))
			}
		}
		shOverlay := sd.Overlay()
		shCompacted := sd.Commit(store.BuildOptions{})
		if shOverlay.Len() != sc.Overlay.Len() || shCompacted.Len() != sc.Overlay.Len() {
			reportFailure(t, sc, "", fmt.Errorf("shards=%d: sizes %d/%d != overlay %d",
				n, shOverlay.Len(), shCompacted.Len(), sc.Overlay.Len()))
		}
		qrng := rand.New(rand.NewSource(sc.Seed * 2741))
		for qi := 0; qi < queriesPerScenario; qi++ {
			q, err := sc.GenQuery(qrng)
			if err != nil {
				reportFailure(t, sc, "", err)
			}
			text := q.String()
			for _, cell := range []struct {
				label   string
				single  *store.Store
				sharded *store.Sharded
			}{
				{"pristine", sc.Base, shBase},
				{"overlay", sc.Overlay, shOverlay},
				{"compacted", sc.Overlay, shCompacted},
			} {
				want, err := RunQuery(q, cell.single, cell.label)
				if err != nil {
					reportFailure(t, sc, text, err)
				}
				got, err := RunQuery(q, cell.sharded, cell.label+"-sharded")
				if err != nil {
					reportFailure(t, sc, text, err)
				}
				if got != want {
					reportFailure(t, sc, text, fmt.Errorf(
						"shards=%d %s: sharded diverges from single store\n--- single\n%s\n--- sharded\n%s",
						n, cell.label, want, got))
				}
			}
		}
	}
}

// TestDifferentialShardedAlgebra runs the algebra matrix (OPTIONAL/UNION/
// aggregates) and star-BGP leapfrog matrix over sharded views, checking
// byte-identity against the single-store world.
func TestDifferentialShardedAlgebra(t *testing.T) {
	const queriesPerScenario = 10
	for _, seed := range seedsUnderTest(t) {
		sc, err := GenScenario(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		n := shardCountUnderTest(t, seed)
		shBase := store.NewSharded(sc.Base, n)
		shOverlay := store.NewSharded(sc.Overlay, n)
		qrng := rand.New(rand.NewSource(sc.Seed * 4397))
		for qi := 0; qi < queriesPerScenario; qi++ {
			q, err := sc.GenAlgebraQuery(qrng)
			if err != nil {
				reportFailure(t, sc, "", err)
			}
			text := q.String()
			for _, cell := range []struct {
				label   string
				single  *store.Store
				sharded *store.Sharded
			}{
				{"pristine", sc.Base, shBase},
				{"overlay", sc.Overlay, shOverlay},
			} {
				want, err := RunAlgebraQuery(q, cell.single, cell.label)
				if err != nil {
					reportFailure(t, sc, text, err)
				}
				got, err := RunAlgebraQuery(q, cell.sharded, cell.label+"-sharded")
				if err != nil {
					reportFailure(t, sc, text, err)
				}
				if got != want {
					reportFailure(t, sc, text, fmt.Errorf(
						"shards=%d %s: sharded algebra diverges\n--- single\n%s\n--- sharded\n%s",
						n, cell.label, want, got))
				}
			}
			sq, err := sc.GenStarQuery(qrng)
			if err != nil {
				reportFailure(t, sc, "", err)
			}
			want, err := RunStarQuery(sq, sc.Base, "pristine")
			if err != nil {
				reportFailure(t, sc, sq.String(), err)
			}
			got, err := RunStarQuery(sq, shBase, "pristine-sharded")
			if err != nil {
				reportFailure(t, sc, sq.String(), err)
			}
			if got != want {
				reportFailure(t, sc, sq.String(), fmt.Errorf(
					"shards=%d: sharded star query diverges\n--- single\n%s\n--- sharded\n%s", n, want, got))
			}
		}
	}
}

// mappedWorld rebuilds a scenario's world over an mmap-style base: the base
// store is serialized as a v4 snapshot, reopened through OpenMappedBytes
// (zero-deserialization, bounds-checked accessors), and the scenario's
// update history is replayed on top of it, yielding a Delta overlay whose
// bottom layer is mapped memory. The v4 writer emits terms in dictionary ID
// order, so the mapped world assigns byte-identical IDs, statistics and
// therefore plans.
func mappedWorld(t *testing.T, sc *Scenario) (base, overlay *store.Store) {
	t.Helper()
	var buf bytes.Buffer
	if err := sc.Base.WriteSnapshotVersion(&buf, 4); err != nil {
		reportFailure(t, sc, "", fmt.Errorf("write v4: %w", err))
	}
	mapped, err := store.OpenMappedBytes(buf.Bytes())
	if err != nil {
		reportFailure(t, sc, "", fmt.Errorf("open mapped: %w", err))
	}
	if mapped.Backend() != "mapped" {
		reportFailure(t, sc, "", fmt.Errorf("base backend = %q, want mapped", mapped.Backend()))
	}
	d := mapped.NewDelta()
	for _, u := range sc.Updates {
		d, err = exec.ApplyUpdateDelta(d, u)
		if err != nil {
			reportFailure(t, sc, "", fmt.Errorf("replay update over mapped base: %w", err))
		}
	}
	return mapped, d.Overlay()
}

// TestDifferentialMappedBase is the mmap-backed cell of the matrix: every
// engine configuration (streaming and columnar, serial and at Parallelism 2
// and 8) over the pristine mapped store and over a Delta overlay whose base
// is mapped memory must be byte-identical — rows AND accounting — to the
// heap-backed reference world.
func TestDifferentialMappedBase(t *testing.T) {
	const queriesPerScenario = 15
	for _, seed := range seedsUnderTest(t) {
		sc, err := GenScenario(seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		mbase, movl := mappedWorld(t, sc)
		if mbase.Len() != sc.Base.Len() || movl.Len() != sc.Overlay.Len() {
			reportFailure(t, sc, "", fmt.Errorf("mapped world sizes %d/%d != heap %d/%d",
				mbase.Len(), movl.Len(), sc.Base.Len(), sc.Overlay.Len()))
		}
		qrng := rand.New(rand.NewSource(sc.Seed * 3571))
		for qi := 0; qi < queriesPerScenario; qi++ {
			q, err := sc.GenQuery(qrng)
			if err != nil {
				reportFailure(t, sc, "", err)
			}
			text := q.String()
			heapBase, err := RunQuery(q, sc.Base, "pristine-heap")
			if err != nil {
				reportFailure(t, sc, text, err)
			}
			mapBase, err := RunQuery(q, mbase, "pristine-mapped")
			if err != nil {
				reportFailure(t, sc, text, err)
			}
			if mapBase != heapBase {
				reportFailure(t, sc, text, fmt.Errorf(
					"mapped base diverges from heap base\n--- heap\n%s\n--- mapped\n%s", heapBase, mapBase))
			}
			heapOvl, err := RunQuery(q, sc.Overlay, "overlay-heap")
			if err != nil {
				reportFailure(t, sc, text, err)
			}
			mapOvl, err := RunQuery(q, movl, "overlay-mapped")
			if err != nil {
				reportFailure(t, sc, text, err)
			}
			if mapOvl != heapOvl {
				reportFailure(t, sc, text, fmt.Errorf(
					"mapped overlay diverges from heap overlay\n--- heap\n%s\n--- mapped\n%s", heapOvl, mapOvl))
			}
		}
	}
}
