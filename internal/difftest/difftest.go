// Package difftest implements the differential test harness for the query
// engines and the updatable store: a seeded generator produces random
// datasets, random update histories (ground INSERT DATA / DELETE DATA
// plus pattern-driven DELETE/INSERT WHERE ops) and random BGP queries
// (bounded patterns, filters, DISTINCT/ORDER BY/LIMIT/OFFSET
// modifiers), and every query is executed through the full engine matrix —
// Materializing, Streaming, and Streaming at Parallelism 2 and 8 — over
// both the pristine store and the delta-overlaid store, with the overlay
// additionally cross-checked against a store rebuilt from scratch over the
// equivalent triple set. Algebra queries (OPTIONAL/UNION/aggregates) run
// through the streaming and columnar cells only; the materializing
// engine is the frozen paper baseline and must reject them with
// exec.ErrUnsupportedConstruct, which the harness asserts. All executions of one (store, query) pair must be
// byte-identical in rows AND accounting (Cout/Work/Scanned); the overlay
// and the rebuilt store must also agree byte-for-byte with each other,
// because the rebuilt reference shares the overlay's dictionary IDs and the
// overlay's statistics are exact, so the optimizer provably picks the same
// plan over either.
//
// Everything is driven by a single int64 seed; a failing scenario reports
// it, and setting DIFFTEST_SEED reruns exactly that scenario. When
// DIFFTEST_OUT is set, the failing scenario (seed, query, stores) is also
// written there as JSON so CI can upload it as a reproduction artifact.
package difftest

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"

	"repro/internal/dict"
	"repro/internal/exec"
	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/store"
)

// Scenario is one generated differential-testing world: a base store, an
// update history, the resulting overlay, and the independently rebuilt
// reference store.
type Scenario struct {
	Seed    int64
	Base    *store.Store
	Delta   *store.Delta
	Overlay *store.Store
	Rebuilt *store.Store
	Updates []*sparql.Update // the applied history, for reproduction dumps
	vocabP  []rdf.Term       // predicate vocabulary for query generation
	vocabS  []rdf.Term
	vocabO  []rdf.Term
}

// GenScenario builds the world for one seed: a random dataset, a random
// update history applied through store.Delta, and the rebuilt reference.
func GenScenario(seed int64) (*Scenario, error) {
	rng := rand.New(rand.NewSource(seed))
	sc := &Scenario{Seed: seed}

	nSub := 10 + rng.Intn(30)
	nPred := 3 + rng.Intn(5)
	nObj := 8 + rng.Intn(25)
	nClass := 1 + rng.Intn(3)
	for i := 0; i < nPred; i++ {
		sc.vocabP = append(sc.vocabP, rdf.NewIRI(fmt.Sprintf("http://d/p%d", i)))
	}
	sc.vocabP = append(sc.vocabP, rdf.NewIRI(rdf.RDFType))
	for i := 0; i < nSub; i++ {
		sc.vocabS = append(sc.vocabS, rdf.NewIRI(fmt.Sprintf("http://d/s%d", i)))
	}
	for i := 0; i < nObj; i++ {
		switch rng.Intn(3) {
		case 0:
			sc.vocabO = append(sc.vocabO, rdf.NewTypedLiteral(fmt.Sprintf("%d", rng.Intn(100)), rdf.XSDInteger))
		case 1:
			sc.vocabO = append(sc.vocabO, rdf.NewLiteral(fmt.Sprintf("v%d", i)))
		default:
			sc.vocabO = append(sc.vocabO, rdf.NewIRI(fmt.Sprintf("http://d/o%d", i)))
		}
	}
	for i := 0; i < nClass; i++ {
		sc.vocabO = append(sc.vocabO, rdf.NewIRI(fmt.Sprintf("http://d/Class%d", i)))
	}
	// Objects double as subjects occasionally (IRIs only), so joins chain.
	randTriple := func() rdf.Triple {
		s := sc.vocabS[rng.Intn(len(sc.vocabS))]
		p := sc.vocabP[rng.Intn(len(sc.vocabP))]
		o := sc.vocabO[rng.Intn(len(sc.vocabO))]
		if p.Value == rdf.RDFType {
			o = rdf.NewIRI(fmt.Sprintf("http://d/Class%d", rng.Intn(nClass)))
		}
		return rdf.Triple{S: s, P: p, O: o}
	}

	b := store.NewBuilder()
	nBase := 50 + rng.Intn(250)
	for i := 0; i < nBase; i++ {
		if err := b.Add(randTriple()); err != nil {
			return nil, err
		}
	}
	sc.Base = b.Build()

	// Update history: a few batches of inserts, deletes and pattern-driven
	// WHERE ops, expressed as parsed SPARQL-Update requests and applied
	// through exec.ApplyUpdateDelta so the harness exercises the same code
	// path the service does.
	d := sc.Base.NewDelta()
	batches := 1 + rng.Intn(4)
	for bi := 0; bi < batches; bi++ {
		var ops []string
		nIns := rng.Intn(20)
		if nIns > 0 {
			var lines []string
			for i := 0; i < nIns; i++ {
				lines = append(lines, "  "+randTriple().String())
			}
			ops = append(ops, "INSERT DATA {\n"+strings.Join(lines, "\n")+"\n}")
		}
		cur, _ := d.Overlay().Match(store.Pattern{})
		nDel := rng.Intn(12)
		if nDel > 0 && len(cur) > 0 {
			var lines []string
			dd := sc.Base.Dict()
			for i := 0; i < nDel; i++ {
				tr := cur[rng.Intn(len(cur))]
				lines = append(lines, "  "+rdf.Triple{S: dd.Decode(tr.S), P: dd.Decode(tr.P), O: dd.Decode(tr.O)}.String())
			}
			ops = append(ops, "DELETE DATA {\n"+strings.Join(lines, "\n")+"\n}")
		}
		// Occasionally a pattern-driven op: delete a predicate's edges,
		// derive a new predicate, or rename one — the WHERE runs against
		// the snapshot left by the preceding ops of the same request.
		if rng.Intn(2) == 0 {
			p := sc.vocabP[rng.Intn(len(sc.vocabP))].String()
			switch rng.Intn(3) {
			case 0:
				ops = append(ops, fmt.Sprintf("DELETE WHERE { ?s %s ?o . }", p))
			case 1:
				ops = append(ops, fmt.Sprintf("INSERT { ?s <http://d/w%d> ?o . } WHERE { ?s %s ?o . }", bi, p))
			default:
				p2 := sc.vocabP[rng.Intn(len(sc.vocabP))].String()
				ops = append(ops, fmt.Sprintf("DELETE { ?s %s ?o . } INSERT { ?s %s ?o . } WHERE { ?s %s ?o . }", p, p2, p))
			}
		}
		if len(ops) == 0 {
			continue
		}
		u, err := sparql.ParseUpdate(strings.Join(ops, " ;\n"))
		if err != nil {
			return nil, fmt.Errorf("seed %d: generated update does not parse: %w", seed, err)
		}
		sc.Updates = append(sc.Updates, u)
		d, err = exec.ApplyUpdateDelta(d, u)
		if err != nil {
			return nil, err
		}
	}
	sc.Delta = d
	sc.Overlay = d.Overlay()

	// The reference store: rebuilt from scratch over the merged triple
	// set, onto a fresh dictionary pre-seeded with the overlay
	// dictionary's terms in ID order so both stores assign identical IDs
	// (and therefore identical index orders, statistics and plans).
	rb := store.NewBuilder()
	od := sc.Overlay.Dict()
	for id := dict.ID(1); int(id) <= od.Len(); id++ {
		if got := rb.Dict().Encode(od.Decode(id)); got != id {
			return nil, fmt.Errorf("seed %d: reference dictionary drift at id %d", seed, id)
		}
	}
	merged, _ := sc.Overlay.Match(store.Pattern{})
	for _, tr := range merged {
		rb.AddID(tr)
	}
	sc.Rebuilt = rb.Build()
	return sc, nil
}

// GenQuery produces one random BGP query over the scenario's vocabulary:
// 1–3 triple patterns chained through shared variables, with random
// constants, optional FILTER comparisons and random DISTINCT / ORDER BY /
// LIMIT / OFFSET modifiers. The query is rendered and re-parsed so the
// harness also covers the parser round trip.
func (sc *Scenario) GenQuery(rng *rand.Rand) (*sparql.Query, error) {
	vars := []sparql.Var{"a", "b", "c", "d"}
	nPat := 1 + rng.Intn(3)
	q := &sparql.Query{}
	usedVars := map[sparql.Var]bool{}
	pickVar := func() sparql.Var {
		// Prefer a used variable so patterns connect.
		if len(usedVars) > 0 && rng.Intn(3) > 0 {
			for {
				v := vars[rng.Intn(len(vars))]
				if usedVars[v] {
					return v
				}
			}
		}
		v := vars[rng.Intn(len(vars))]
		usedVars[v] = true
		return v
	}
	for i := 0; i < nPat; i++ {
		var tp sparql.TriplePattern
		// Subject: variable (75%) or constant.
		if rng.Intn(4) > 0 {
			tp.S = sparql.VarNode(pickVar())
		} else {
			tp.S = sparql.TermNode(sc.vocabS[rng.Intn(len(sc.vocabS))])
		}
		// Predicate: constant (80%) or variable.
		if rng.Intn(5) > 0 {
			tp.P = sparql.TermNode(sc.vocabP[rng.Intn(len(sc.vocabP))])
		} else {
			tp.P = sparql.VarNode(pickVar())
		}
		// Object: variable (60%) or constant.
		if rng.Intn(5) >= 2 {
			tp.O = sparql.VarNode(pickVar())
		} else {
			tp.O = sparql.TermNode(sc.vocabO[rng.Intn(len(sc.vocabO))])
		}
		q.Where = append(q.Where, tp)
	}
	var varList []sparql.Var
	for _, v := range vars {
		if usedVars[v] {
			varList = append(varList, v)
		}
	}
	// Filters over used variables.
	if len(varList) > 0 {
		for i := 0; i < rng.Intn(3); i++ {
			f := sparql.Filter{
				Left: sparql.VarNode(varList[rng.Intn(len(varList))]),
				Op:   sparql.CompareOp(rng.Intn(6)),
			}
			if rng.Intn(2) == 0 {
				f.Right = sparql.TermNode(rdf.NewTypedLiteral(fmt.Sprintf("%d", rng.Intn(100)), rdf.XSDInteger))
			} else {
				f.Right = sparql.VarNode(varList[rng.Intn(len(varList))])
			}
			q.Filters = append(q.Filters, f)
		}
	}
	// Modifiers.
	if rng.Intn(3) == 0 {
		q.Distinct = true
	}
	if len(varList) > 0 && rng.Intn(2) == 0 {
		n := 1 + rng.Intn(2)
		for i := 0; i < n && i < len(varList); i++ {
			q.OrderBy = append(q.OrderBy, sparql.OrderKey{Var: varList[i], Desc: rng.Intn(2) == 0})
		}
	}
	if len(varList) > 0 && rng.Intn(3) == 0 {
		// Project a subset.
		q.Select = varList[:1+rng.Intn(len(varList))]
	}
	switch rng.Intn(4) {
	case 0:
		q.Limit = rng.Intn(20) // includes LIMIT 0
		q.HasLimit = true
	case 1:
		q.Offset = rng.Intn(30) // may run past the result
	case 2:
		q.Limit = rng.Intn(10)
		q.HasLimit = true
		q.Offset = rng.Intn(10)
	}
	// Round-trip through the text form.
	parsed, err := sparql.Parse(q.String())
	if err != nil {
		return nil, fmt.Errorf("generated query does not re-parse: %w\n%s", err, q.String())
	}
	return parsed, nil
}

// Canonical renders an execution result into one comparable string: the
// schema, the accounting, and every row decoded through d. Unbound
// columns (OPTIONAL/UNION padding) render as UNDEF.
func Canonical(d *dict.Dict, res *exec.Result) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "vars=%v cout=%v work=%v scanned=%d rows=%d\n",
		res.Vars, res.Cout, res.Work, res.Scanned, len(res.Rows))
	for _, row := range res.Rows {
		for j, id := range row {
			if j > 0 {
				sb.WriteByte('\t')
			}
			if t, ok := d.TryDecode(id); ok {
				sb.WriteString(t.String())
			} else {
				sb.WriteString("UNDEF")
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// EngineRun names one cell of the execution matrix.
type EngineRun struct {
	Name string
	Opts exec.Options
}

// EngineMatrix is the cross-checked engine configurations: the
// materializing reference, the serial streaming engine, streaming at
// Parallelism 2 and 8 with a tiny morsel size so test-scale stores
// genuinely split (including single-triple morsels), and the columnar
// engine serial and parallel. Setting ENGINE_MODE to one of the engine
// names promotes it to the front of the matrix, making it the reference
// the others are diffed against — CI rotates it across the serial modes.
func EngineMatrix() []EngineRun {
	m := []EngineRun{
		{Name: "materializing", Opts: exec.Options{Mode: exec.Materializing}},
		{Name: "streaming", Opts: exec.Options{}},
		{Name: "streaming-p2-m1", Opts: exec.Options{Parallelism: 2, MorselSize: 1}},
		{Name: "streaming-p8-m16", Opts: exec.Options{Parallelism: 8, MorselSize: 16}},
		{Name: "columnar", Opts: exec.Options{Mode: exec.Columnar}},
		{Name: "columnar-p2-m1", Opts: exec.Options{Mode: exec.Columnar, Parallelism: 2, MorselSize: 1}},
		{Name: "columnar-p8-m16", Opts: exec.Options{Mode: exec.Columnar, Parallelism: 8, MorselSize: 16}},
	}
	if mode := os.Getenv("ENGINE_MODE"); mode != "" {
		for i := range m {
			if m[i].Name == mode {
				m[0], m[i] = m[i], m[0]
				break
			}
		}
	}
	return m
}

// LeapfrogMatrix is the leapfrog triejoin configurations. Leapfrog emits
// rows in trie order (not the binary plan's order) and accounts the
// multiway join as one node, so these runs are compared byte-identically
// only against each other; against the binary-plan reference they must
// agree on the sorted row multiset.
func LeapfrogMatrix() []EngineRun {
	return []EngineRun{
		{Name: "leapfrog", Opts: exec.Options{Mode: exec.Columnar, Leapfrog: true}},
		{Name: "leapfrog-p2-m1", Opts: exec.Options{Mode: exec.Columnar, Leapfrog: true, Parallelism: 2, MorselSize: 1}},
		{Name: "leapfrog-p8-m16", Opts: exec.Options{Mode: exec.Columnar, Leapfrog: true, Parallelism: 8, MorselSize: 16}},
	}
}

// GenStarQuery produces one random star-shaped BGP: 4–6 triple patterns
// all sharing the hub variable ?h, each with a distinct leaf variable or
// constant at the other end — the shape the leapfrog triejoin lowers to a
// single multiway node. Filters, DISTINCT, ORDER BY and projection are
// generated as usual, but never LIMIT/OFFSET: those select a prefix of an
// engine-dependent row order, which would break the multiset comparison
// against the trie-ordered leapfrog result.
func (sc *Scenario) GenStarQuery(rng *rand.Rand) (*sparql.Query, error) {
	leafVars := []sparql.Var{"a", "b", "c", "d", "e", "f"}
	nPat := 4 + rng.Intn(3)
	q := &sparql.Query{}
	used := []sparql.Var{"h"}
	for i := 0; i < nPat; i++ {
		var tp sparql.TriplePattern
		hubAtSubject := rng.Intn(4) > 0
		// Each pattern may spend its fresh variable on the predicate (10%)
		// or the non-hub end (70%), never both: patterns stay free of
		// repeated variables.
		predVar := rng.Intn(10) == 0
		if predVar {
			tp.P = sparql.VarNode(leafVars[i])
			used = append(used, leafVars[i])
		} else {
			tp.P = sparql.TermNode(sc.vocabP[rng.Intn(len(sc.vocabP))])
		}
		var leaf sparql.Node
		switch {
		case !predVar && rng.Intn(10) < 7:
			leaf = sparql.VarNode(leafVars[i])
			used = append(used, leafVars[i])
		case hubAtSubject:
			leaf = sparql.TermNode(sc.vocabO[rng.Intn(len(sc.vocabO))])
		default:
			leaf = sparql.TermNode(sc.vocabS[rng.Intn(len(sc.vocabS))])
		}
		if hubAtSubject {
			tp.S, tp.O = sparql.VarNode("h"), leaf
		} else {
			tp.S, tp.O = leaf, sparql.VarNode("h")
		}
		q.Where = append(q.Where, tp)
	}
	for i := 0; i < rng.Intn(2); i++ {
		f := sparql.Filter{
			Left: sparql.VarNode(used[rng.Intn(len(used))]),
			Op:   sparql.CompareOp(rng.Intn(6)),
		}
		if rng.Intn(2) == 0 {
			f.Right = sparql.TermNode(rdf.NewTypedLiteral(fmt.Sprintf("%d", rng.Intn(100)), rdf.XSDInteger))
		} else {
			f.Right = sparql.VarNode(used[rng.Intn(len(used))])
		}
		q.Filters = append(q.Filters, f)
	}
	if rng.Intn(3) == 0 {
		q.Distinct = true
	}
	if rng.Intn(2) == 0 {
		q.OrderBy = append(q.OrderBy, sparql.OrderKey{Var: used[rng.Intn(len(used))], Desc: rng.Intn(2) == 0})
	}
	if rng.Intn(3) == 0 {
		q.Select = used[:1+rng.Intn(len(used))]
	}
	parsed, err := sparql.Parse(q.String())
	if err != nil {
		return nil, fmt.Errorf("generated star query does not re-parse: %w\n%s", err, q.String())
	}
	return parsed, nil
}

// CanonicalRows renders only the decoded result rows, sorted — the
// order-insensitive multiset fingerprint used to compare trie-ordered
// leapfrog output against the binary-plan reference.
func CanonicalRows(d *dict.Dict, res *exec.Result) string {
	lines := make([]string, 0, len(res.Rows))
	var sb strings.Builder
	for _, row := range res.Rows {
		sb.Reset()
		for j, id := range row {
			if j > 0 {
				sb.WriteByte('\t')
			}
			sb.WriteString(d.Decode(id).String())
		}
		lines = append(lines, sb.String())
	}
	sort.Strings(lines)
	return fmt.Sprintf("vars=%v rows=%d\n%s\n", res.Vars, len(res.Rows), strings.Join(lines, "\n"))
}

// RunStarQuery executes a star query through the strict engine matrix
// (all byte-identical) and the leapfrog matrix (byte-identical to each
// other at Parallelism 1, 2 and 8; sorted-row-multiset identical to the
// strict reference). It returns the strict canonical result.
func RunStarQuery(q *sparql.Query, st store.Source, label string) (string, error) {
	ref, err := RunQuery(q, st, label)
	if err != nil {
		return "", err
	}
	var refRows string
	var lfRef, lfRefName string
	for _, er := range LeapfrogMatrix() {
		res, _, err := exec.Query(q, st, er.Opts)
		if err != nil {
			return "", fmt.Errorf("%s/%s: %w", label, er.Name, err)
		}
		got := Canonical(st.Dict(), res)
		if lfRef == "" {
			lfRef, lfRefName = got, er.Name
			refRows = CanonicalRows(st.Dict(), res)
			continue
		}
		if got != lfRef {
			return "", fmt.Errorf("%s: engine %s diverges from %s\n--- %s\n%s\n--- %s\n%s",
				label, er.Name, lfRefName, lfRefName, lfRef, er.Name, got)
		}
	}
	// Multiset check against the strict matrix's serial streaming cell.
	sres, _, err := exec.Query(q, st, exec.Options{})
	if err != nil {
		return "", fmt.Errorf("%s/streaming: %w", label, err)
	}
	if want := CanonicalRows(st.Dict(), sres); refRows != want {
		return "", fmt.Errorf("%s: leapfrog row multiset diverges from streaming\n--- streaming\n%s\n--- leapfrog\n%s",
			label, want, refRows)
	}
	return ref, nil
}

// RunQuery executes q over st with every engine configuration and checks
// all results agree; it returns the canonical result, or an error naming
// the first diverging engine pair.
func RunQuery(q *sparql.Query, st store.Source, label string) (string, error) {
	var ref string
	var refName string
	for _, er := range EngineMatrix() {
		res, _, err := exec.Query(q, st, er.Opts)
		if err != nil {
			return "", fmt.Errorf("%s/%s: %w", label, er.Name, err)
		}
		got := Canonical(st.Dict(), res)
		if ref == "" {
			ref, refName = got, er.Name
			continue
		}
		if got != ref {
			return "", fmt.Errorf("%s: engine %s diverges from %s\n--- %s\n%s\n--- %s\n%s",
				label, er.Name, refName, refName, ref, er.Name, got)
		}
	}
	return ref, nil
}

// AlgebraEngineMatrix is the engine matrix for algebra queries
// (OPTIONAL/UNION/aggregates): the streaming and columnar engines, serial
// and at Parallelism 2 and 8. The materializing engine is excluded — it
// is the frozen paper baseline and rejects these constructs with
// exec.ErrUnsupportedConstruct, which RunAlgebraQuery asserts separately.
func AlgebraEngineMatrix() []EngineRun {
	return []EngineRun{
		{Name: "streaming", Opts: exec.Options{}},
		{Name: "streaming-p2-m1", Opts: exec.Options{Parallelism: 2, MorselSize: 1}},
		{Name: "streaming-p8-m16", Opts: exec.Options{Parallelism: 8, MorselSize: 16}},
		{Name: "columnar", Opts: exec.Options{Mode: exec.Columnar}},
		{Name: "columnar-p2-m1", Opts: exec.Options{Mode: exec.Columnar, Parallelism: 2, MorselSize: 1}},
		{Name: "columnar-p8-m16", Opts: exec.Options{Mode: exec.Columnar, Parallelism: 8, MorselSize: 16}},
	}
}

// GenAlgebraQuery produces one random compositional query over the
// scenario's vocabulary: a base BGP extended with an OPTIONAL group, a
// UNION, or GROUP BY + aggregation (sometimes combined), with the usual
// random filters and modifiers. The query is generated as text and
// re-parsed so the harness also covers the extended grammar.
func (sc *Scenario) GenAlgebraQuery(rng *rand.Rand) (*sparql.Query, error) {
	pred := func() string { return sc.vocabP[rng.Intn(len(sc.vocabP))].String() }
	var b strings.Builder
	shape := rng.Intn(4)
	agg := shape == 2 || (shape == 3 && rng.Intn(2) == 0)
	if agg {
		fn := []string{"COUNT(?b)", "COUNT(DISTINCT ?b)", "SUM(?b)", "MIN(?b)", "MAX(?b)", "AVG(?b)"}[rng.Intn(6)]
		b.WriteString("SELECT ?a (COUNT(*) AS ?n) (" + fn + " AS ?v) WHERE {\n")
	} else {
		b.WriteString("SELECT * WHERE {\n")
	}
	fmt.Fprintf(&b, "  ?a %s ?b .\n", pred())
	if rng.Intn(2) == 0 {
		fmt.Fprintf(&b, "  FILTER(?b > %d)\n", rng.Intn(100))
	}
	switch shape {
	case 0, 2: // OPTIONAL (possibly under aggregation)
		if rng.Intn(2) == 0 {
			fmt.Fprintf(&b, "  OPTIONAL { ?b %s ?c . }\n", pred())
		} else {
			fmt.Fprintf(&b, "  OPTIONAL { ?a %s ?c . ?c %s ?d . }\n", pred(), pred())
		}
	case 1: // UNION joined with the base pattern
		if rng.Intn(2) == 0 {
			fmt.Fprintf(&b, "  { ?a %s ?c . } UNION { ?a %s ?d . }\n", pred(), pred())
		} else {
			fmt.Fprintf(&b, "  { ?b %s ?c . } UNION { ?c %s ?b . }\n", pred(), pred())
		}
	case 3: // OPTIONAL and UNION stacked
		fmt.Fprintf(&b, "  { ?a %s ?c . } UNION { ?a %s ?c . }\n", pred(), pred())
		fmt.Fprintf(&b, "  OPTIONAL { ?c %s ?d . }\n", pred())
	}
	b.WriteString("}")
	if agg {
		b.WriteString(" GROUP BY ?a")
		if rng.Intn(2) == 0 {
			fmt.Fprintf(&b, " HAVING(?n >= %d)", 1+rng.Intn(3))
		}
		b.WriteString(" ORDER BY ?a")
	} else if rng.Intn(2) == 0 {
		b.WriteString(" ORDER BY ?a ?b")
	}
	if rng.Intn(4) == 0 {
		fmt.Fprintf(&b, " LIMIT %d", 1+rng.Intn(20))
	}
	q, err := sparql.Parse(b.String())
	if err != nil {
		return nil, fmt.Errorf("generated algebra query does not parse: %w\n%s", err, b.String())
	}
	// Round-trip through the renderer as well.
	parsed, err := sparql.Parse(q.String())
	if err != nil {
		return nil, fmt.Errorf("generated algebra query does not re-parse: %w\n%s", err, q.String())
	}
	return parsed, nil
}

// RunAlgebraQuery executes q through the algebra engine matrix and checks
// all cells agree byte-identically in rows AND accounting; it also
// asserts the materializing engine rejects q with ErrUnsupportedConstruct.
func RunAlgebraQuery(q *sparql.Query, st store.Source, label string) (string, error) {
	if _, _, err := exec.Query(q, st, exec.Options{Mode: exec.Materializing}); !errors.Is(err, exec.ErrUnsupportedConstruct) {
		return "", fmt.Errorf("%s/materializing: error = %v, want ErrUnsupportedConstruct", label, err)
	}
	var ref, refName string
	for _, er := range AlgebraEngineMatrix() {
		res, _, err := exec.Query(q, st, er.Opts)
		if err != nil {
			return "", fmt.Errorf("%s/%s: %w", label, er.Name, err)
		}
		got := Canonical(st.Dict(), res)
		if ref == "" {
			ref, refName = got, er.Name
			continue
		}
		if got != ref {
			return "", fmt.Errorf("%s: engine %s diverges from %s\n--- %s\n%s\n--- %s\n%s",
				label, er.Name, refName, refName, ref, er.Name, got)
		}
	}
	return ref, nil
}
