package service

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/rdf"
	"repro/internal/store"
)

// writeV4Snapshot serializes st as a v4 snapshot under dir and returns the
// file path.
func writeV4Snapshot(t *testing.T, dir, name string, st *store.Store) string {
	t.Helper()
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.WriteSnapshotVersion(f, 4); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestServiceMappedBackend loads a v4 snapshot through the service's default
// path and checks it serves from the mapping: correct query results, mapped
// backend surfaced in /stats and /metrics, and the HeapLoad escape hatch.
func TestServiceMappedBackend(t *testing.T) {
	path := writeV4Snapshot(t, t.TempDir(), "tiny.v4.snap", buildTinyStore(t))

	svc, err := Load(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := svc.Store().Backend(); got != "mapped" {
		t.Fatalf("backend = %q, want mapped", got)
	}

	out, err := svc.Query(context.Background(), `SELECT ?f WHERE { <http://x/alice> <http://x/knows> ?f . } ORDER BY ?f`, nil)
	if err != nil {
		t.Fatal(err)
	}
	rows := out.DecodedRows()
	out.Close()
	if len(rows) != 2 || rows[0][0] != "<http://x/bob>" || rows[1][0] != "<http://x/carol>" {
		t.Fatalf("rows = %v", rows)
	}

	st := svc.Stats()
	if st.Store.Backend != "mapped" {
		t.Fatalf("stats backend = %q", st.Store.Backend)
	}
	if st.Store.MappedBytes <= 0 {
		t.Fatalf("stats mapped bytes = %d", st.Store.MappedBytes)
	}
	if st.Store.MappingsAwaitingUnmap != 0 {
		t.Fatalf("awaiting unmap = %d", st.Store.MappingsAwaitingUnmap)
	}

	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	body := fetchText(t, srv.URL+"/metrics")
	for _, want := range []string{
		"repro_store_mapped 1\n",
		fmt.Sprintf("repro_store_mapped_bytes %d\n", st.Store.MappedBytes),
		"repro_store_mappings_awaiting_unmap 0\n",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, body)
		}
	}

	// -heap-load forces the fully validating deserialization path.
	heap, err := Load(path, Options{HeapLoad: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := heap.Store().Backend(); got != "heap" {
		t.Fatalf("HeapLoad backend = %q, want heap", got)
	}
	if hs := heap.Stats(); hs.Store.MappedBytes != 0 || hs.Store.Backend != "heap" {
		t.Fatalf("HeapLoad stats = %+v", hs.Store)
	}
}

// TestReloadRemapDefersUnmap reloads from one mapped snapshot to another
// while an outcome from the old generation is still open, and checks the
// old mapping stays readable until that outcome closes.
func TestReloadRemapDefersUnmap(t *testing.T) {
	dir := t.TempDir()
	pathA := writeV4Snapshot(t, dir, "a.v4.snap", buildTinyStore(t))

	b := store.NewBuilder()
	if err := b.Add(rdf.NewTriple(rdf.NewIRI("http://x/dave"), rdf.NewIRI("http://x/knows"), rdf.NewIRI("http://x/erin"))); err != nil {
		t.Fatal(err)
	}
	pathB := writeV4Snapshot(t, dir, "b.v4.snap", b.Build())

	svc, err := Load(pathA, Options{AllowReload: true})
	if err != nil {
		t.Fatal(err)
	}
	oldMappings := svc.Store().Mappings()
	if len(oldMappings) == 0 {
		t.Fatal("mapped load has no mapping")
	}
	oldMapping := oldMappings[0]

	// A query outcome from generation 1, deliberately left open across the
	// reload: its rows decode lazily out of the old mapping.
	out, err := svc.Query(context.Background(), `SELECT ?f WHERE { <http://x/alice> <http://x/knows> ?f . } ORDER BY ?f`, nil)
	if err != nil {
		t.Fatal(err)
	}

	gen, triples, err := svc.Reload(pathB)
	if err != nil {
		t.Fatal(err)
	}
	if gen != 2 || triples != 1 {
		t.Fatalf("reload = gen %d, %d triples", gen, triples)
	}
	if got := svc.Store().Backend(); got != "mapped" {
		t.Fatalf("post-reload backend = %q", got)
	}
	if ms := svc.Store().Mappings(); len(ms) != 1 || ms[0] == oldMapping {
		t.Fatal("reload did not swap the mapping")
	}

	// The retired generation is pinned by the open outcome: gauge up, old
	// mapping alive, and decoding through it still yields generation-1 rows.
	if n := svc.Stats().Store.MappingsAwaitingUnmap; n != 1 {
		t.Fatalf("awaiting unmap = %d, want 1", n)
	}
	if oldMapping.Refs() <= 0 {
		t.Fatal("old mapping released while a query still holds it")
	}
	rows := out.DecodedRows()
	if len(rows) != 2 || rows[0][0] != "<http://x/bob>" || rows[1][0] != "<http://x/carol>" {
		t.Fatalf("rows decoded after remap = %v", rows)
	}

	// Closing the last outcome drains the generation: gauge back to zero and
	// the mapping unmapped.
	out.Close()
	if n := svc.Stats().Store.MappingsAwaitingUnmap; n != 0 {
		t.Fatalf("awaiting unmap after close = %d, want 0", n)
	}
	if refs := oldMapping.Refs(); refs != 0 {
		t.Fatalf("old mapping refs after close = %d, want 0", refs)
	}
	// Close is idempotent; a second call must not double-release.
	out.Close()
	if refs := oldMapping.Refs(); refs != 0 {
		t.Fatalf("old mapping refs after double close = %d", refs)
	}
}

// TestMappedReloadQueryRace hammers queries against the service while the
// main goroutine remaps between two v4 snapshots, checking every result is
// internally consistent with the generation it ran against. Run with -race
// this exercises the pin/retire/unmap lifecycle under contention.
func TestMappedReloadQueryRace(t *testing.T) {
	dir := t.TempDir()
	pathA := writeV4Snapshot(t, dir, "a.v4.snap", buildTinyStore(t))

	b := store.NewBuilder()
	add := func(s, p, o rdf.Term) {
		if err := b.Add(rdf.NewTriple(s, p, o)); err != nil {
			t.Fatal(err)
		}
	}
	iri := rdf.NewIRI
	knows := iri("http://x/knows")
	add(iri("http://x/alice"), knows, iri("http://x/bob"))
	pathB := writeV4Snapshot(t, dir, "b.v4.snap", b.Build())

	svc, err := Load(pathA, Options{AllowReload: true, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}

	const workers = 8
	const perWorker = 40
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				out, err := svc.Query(context.Background(), `SELECT ?s ?f WHERE { ?s <http://x/knows> ?f . } ORDER BY ?s ?f`, nil)
				if err != nil {
					errc <- err
					return
				}
				rows := out.DecodedRows()
				n := len(rows)
				out.Close()
				// Snapshot A has 3 knows edges, snapshot B has 1; any
				// other count means a torn read across the swap.
				if n != 3 && n != 1 {
					errc <- fmt.Errorf("query saw %d knows edges, want 3 or 1", n)
					return
				}
			}
		}()
	}
	paths := []string{pathB, pathA}
	for i := 0; i < 20; i++ {
		if _, _, err := svc.Reload(paths[i%2]); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	// With every query drained, no retired generation may still hold a
	// mapping.
	if n := svc.Stats().Store.MappingsAwaitingUnmap; n != 0 {
		t.Fatalf("awaiting unmap after drain = %d, want 0", n)
	}
}

func fetchText(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d %s", url, resp.StatusCode, data)
	}
	return string(data)
}
