package service

import (
	"context"
	"sync"

	"repro/internal/sparql"
	"repro/internal/workload"
)

// WorkloadExecutor adapts the service to workload.Executor, so the
// benchmark workloads can be driven through the full service path —
// prepared templates, admission control, shared plan cache — and compared
// apples-to-apples against the direct workload.Runner path. Templates are
// prepared once, keyed by canonical text; for the measurements to be
// comparable to a Runner with the same exec options, configure the service
// with the same Options.Exec (in particular EarlyStop off, since EarlyStop
// changes the Work/Cout accounting).
type WorkloadExecutor struct {
	svc *Service
	ctx context.Context

	mu     sync.Mutex
	byText map[string]*Prepared
}

// WorkloadExecutor returns an adapter executing through s under ctx (nil
// means context.Background()).
func (s *Service) WorkloadExecutor(ctx context.Context) *WorkloadExecutor {
	if ctx == nil {
		ctx = context.Background()
	}
	return &WorkloadExecutor{svc: s, ctx: ctx, byText: make(map[string]*Prepared)}
}

// ExecuteTemplate implements workload.Executor through the service path.
func (w *WorkloadExecutor) ExecuteTemplate(tmpl *sparql.Query, b sparql.Binding) (workload.Measurement, error) {
	text := tmpl.String()
	w.mu.Lock()
	p, ok := w.byText[text]
	if !ok {
		p = &Prepared{Name: text, Text: text, Params: tmpl.Params(), tmpl: tmpl}
		w.byText[text] = p
	}
	w.mu.Unlock()
	out, err := w.svc.Execute(w.ctx, p, b)
	if err != nil {
		return workload.Measurement{}, err
	}
	return workload.Measurement{
		Binding:   b,
		Runtime:   out.Result.Duration,
		Work:      out.Result.Work,
		Cout:      out.Result.Cout,
		EstCost:   out.Plan.EstCost,
		Rows:      len(out.Result.Rows),
		Signature: out.Plan.Signature,
	}, nil
}
