package service

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"

	"repro/internal/bsbm"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/rdf"
	"repro/internal/snb"
	"repro/internal/sparql"
	"repro/internal/store"
	"repro/internal/workload"
)

// buildTinyStore builds a small hand-written social graph, cheap enough for
// per-test construction.
func buildTinyStore(t testing.TB) *store.Store {
	t.Helper()
	b := store.NewBuilder()
	add := func(s, p, o rdf.Term) {
		t.Helper()
		if err := b.Add(rdf.NewTriple(s, p, o)); err != nil {
			t.Fatal(err)
		}
	}
	iri := rdf.NewIRI
	knows, age := iri("http://x/knows"), iri("http://x/age")
	add(iri("http://x/alice"), knows, iri("http://x/bob"))
	add(iri("http://x/alice"), knows, iri("http://x/carol"))
	add(iri("http://x/bob"), knows, iri("http://x/carol"))
	add(iri("http://x/alice"), age, rdf.NewInteger(30))
	add(iri("http://x/bob"), age, rdf.NewInteger(25))
	add(iri("http://x/carol"), age, rdf.NewInteger(35))
	return b.Build()
}

var (
	mixedOnce  sync.Once
	mixedStore *store.Store
	mixedErr   error
)

// buildMixedStore builds one store holding both the BSBM and SNB test
// datasets, so mixed-family templates run against a single shared store.
func buildMixedStore(t testing.TB) *store.Store {
	t.Helper()
	mixedOnce.Do(func() {
		b := store.NewBuilder()
		emit := func(tr rdf.Triple) error { return b.Add(tr) }
		if _, err := bsbm.Generate(bsbm.TestConfig(), emit); err != nil {
			mixedErr = err
			return
		}
		if _, err := snb.Generate(snb.TestConfig(), emit); err != nil {
			mixedErr = err
			return
		}
		mixedStore = b.Build()
	})
	if mixedErr != nil {
		t.Fatal(mixedErr)
	}
	return mixedStore
}

func TestPrepareAndExecute(t *testing.T) {
	svc := New(buildTinyStore(t), "", Options{})
	p, err := svc.Prepare("friends", `SELECT ?f WHERE { %who <http://x/knows> ?f . } ORDER BY ?f`)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Params) != 1 || p.Params[0] != "who" {
		t.Fatalf("params = %v", p.Params)
	}
	b := sparql.Binding{"who": rdf.NewIRI("http://x/alice")}
	out, err := svc.Execute(context.Background(), p, b)
	if err != nil {
		t.Fatal(err)
	}
	rows := out.DecodedRows()
	if len(rows) != 2 || rows[0][0] != "<http://x/bob>" || rows[1][0] != "<http://x/carol>" {
		t.Fatalf("rows = %v", rows)
	}
	if out.CacheHit {
		t.Fatal("first execution cannot be a cache hit")
	}
	// Same binding again: plan cache hit, identical rows.
	out2, err := svc.Execute(context.Background(), p, b)
	if err != nil {
		t.Fatal(err)
	}
	if !out2.CacheHit {
		t.Fatal("second execution should hit the plan cache")
	}
	if got := out2.DecodedRows(); len(got) != 2 || got[0][0] != rows[0][0] {
		t.Fatalf("cache-hit rows differ: %v", got)
	}
	st := svc.Stats()
	if st.Cache.Hits != 1 || st.Cache.Misses != 1 {
		t.Fatalf("cache counters = %+v", st.Cache)
	}
	if st.Requests["execute"].Count != 2 {
		t.Fatalf("request counts = %+v", st.Requests)
	}
}

func TestQueryOneShotSharesCacheWithPrepared(t *testing.T) {
	svc := New(buildTinyStore(t), "", Options{})
	text := `SELECT ?f WHERE { %who <http://x/knows> ?f . }`
	p, err := svc.Prepare("q", text)
	if err != nil {
		t.Fatal(err)
	}
	b := sparql.Binding{"who": rdf.NewIRI("http://x/alice")}
	if _, err := svc.Execute(context.Background(), p, b); err != nil {
		t.Fatal(err)
	}
	// The ad-hoc path canonicalizes the text, so the same template with
	// different whitespace hits the same cache entry.
	out, err := svc.Query(context.Background(), "SELECT ?f WHERE {\n\n  %who <http://x/knows> ?f .\n}", b)
	if err != nil {
		t.Fatal(err)
	}
	if !out.CacheHit {
		t.Fatal("one-shot query should share the prepared template's cache entry")
	}
}

func TestExecuteBatch(t *testing.T) {
	svc := New(buildTinyStore(t), "", Options{})
	p, err := svc.Prepare("friends", `SELECT ?f WHERE { %who <http://x/knows> ?f . } ORDER BY ?f`)
	if err != nil {
		t.Fatal(err)
	}
	outs, err := svc.ExecuteBatch(context.Background(), p, []sparql.Binding{
		{"who": rdf.NewIRI("http://x/alice")},
		{"who": rdf.NewIRI("http://x/bob")},
		{"who": rdf.NewIRI("http://x/alice")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 3 {
		t.Fatalf("got %d outcomes", len(outs))
	}
	if n := len(outs[0].Result.Rows); n != 2 {
		t.Fatalf("alice rows = %d", n)
	}
	if n := len(outs[1].Result.Rows); n != 1 {
		t.Fatalf("bob rows = %d", n)
	}
	if !outs[2].CacheHit {
		t.Fatal("repeated batch binding should hit the cache")
	}
}

func TestInputErrors(t *testing.T) {
	svc := New(buildTinyStore(t), "", Options{})
	if _, err := svc.Prepare("bad", "SELECT WHERE {"); !IsInputError(err) {
		t.Fatalf("parse error not classified as input error: %v", err)
	}
	p, err := svc.Prepare("q", `SELECT ?f WHERE { %who <http://x/knows> ?f . }`)
	if err != nil {
		t.Fatal(err)
	}
	// Missing binding.
	if _, err := svc.Execute(context.Background(), p, nil); !IsInputError(err) {
		t.Fatalf("unbound parameter not classified as input error: %v", err)
	}
	// Failed requests are visible in the stats, not silently dropped.
	if rs := svc.Stats().Requests["execute"]; rs.Count != 1 || rs.Errors != 1 {
		t.Fatalf("error not recorded in request stats: %+v", rs)
	}
}

func TestAdmissionControl(t *testing.T) {
	svc := New(buildTinyStore(t), "", Options{Workers: 1, QueueDepth: -1})
	// Occupy the single worker slot.
	release, err := svc.admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	p, err := svc.Prepare("q", `SELECT * WHERE { ?s ?p ?o . }`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Execute(context.Background(), p, nil); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("want ErrOverloaded with no queue, got %v", err)
	}
	if got := svc.Stats().Pool.Rejected; got != 1 {
		t.Fatalf("rejected = %d", got)
	}
	release()
	if _, err := svc.Execute(context.Background(), p, nil); err != nil {
		t.Fatalf("after release: %v", err)
	}
}

func TestAdmissionQueueAndCancel(t *testing.T) {
	svc := New(buildTinyStore(t), "", Options{Workers: 1, QueueDepth: 1})
	release, err := svc.admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// One request fits in the queue and waits...
	queued := make(chan error, 1)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		r, err := svc.admit(ctx)
		if err == nil {
			r()
		}
		queued <- err
	}()
	// ...wait until it is actually queued, then a second one is rejected.
	for svc.queued.Load() == 0 {
		runtime.Gosched()
	}
	if _, err := svc.admit(context.Background()); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("queue overflow: want ErrOverloaded, got %v", err)
	}
	// The queued request honors its context.
	cancel()
	if err := <-queued; !errors.Is(err, context.Canceled) {
		t.Fatalf("queued request: want context.Canceled, got %v", err)
	}
	release()
}

func TestSnapshotSwap(t *testing.T) {
	st1 := buildTinyStore(t)
	b := store.NewBuilder()
	if err := b.Add(rdf.NewTriple(rdf.NewIRI("http://x/dave"), rdf.NewIRI("http://x/knows"), rdf.NewIRI("http://x/erin"))); err != nil {
		t.Fatal(err)
	}
	st2 := b.Build()

	svc := New(st1, "", Options{})
	p, err := svc.Prepare("all", `SELECT ?s ?o WHERE { ?s <http://x/knows> ?o . } ORDER BY ?s ?o`)
	if err != nil {
		t.Fatal(err)
	}
	out1, err := svc.Execute(context.Background(), p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out1.Generation != 1 || len(out1.Result.Rows) != 3 {
		t.Fatalf("gen1: generation=%d rows=%d", out1.Generation, len(out1.Result.Rows))
	}
	if gen := svc.Swap(st2, "v2"); gen != 2 {
		t.Fatalf("swap generation = %d", gen)
	}
	out2, err := svc.Execute(context.Background(), p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out2.Generation != 2 || len(out2.Result.Rows) != 1 {
		t.Fatalf("gen2: generation=%d rows=%d", out2.Generation, len(out2.Result.Rows))
	}
	if got := out2.DecodedRows()[0][0]; got != "<http://x/dave>" {
		t.Fatalf("gen2 rows = %v", out2.DecodedRows())
	}
	// The pre-swap outcome still decodes correctly through its own pinned
	// snapshot, even though the service moved on.
	if got := out1.DecodedRows()[0][0]; got != "<http://x/alice>" {
		t.Fatalf("pinned outcome decodes wrong: %v", out1.DecodedRows())
	}
	// The new generation's first execution is a miss (fresh cache), the
	// second a hit.
	if out2.CacheHit {
		t.Fatal("fresh cache after swap cannot hit")
	}
	out3, err := svc.Execute(context.Background(), p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !out3.CacheHit {
		t.Fatal("second post-swap execution should hit")
	}
}

func TestPlanCacheEviction(t *testing.T) {
	svc := New(buildTinyStore(t), "", Options{PlanCacheSize: 2})
	p, err := svc.Prepare("q", `SELECT ?f WHERE { %who <http://x/knows> ?f . }`)
	if err != nil {
		t.Fatal(err)
	}
	whos := []string{"http://x/alice", "http://x/bob", "http://x/carol"}
	for _, w := range whos {
		if _, err := svc.Execute(context.Background(), p, sparql.Binding{"who": rdf.NewIRI(w)}); err != nil {
			t.Fatal(err)
		}
	}
	st := svc.Stats()
	if st.Cache.Size != 2 || st.Cache.Evictions != 1 {
		t.Fatalf("cache stats = %+v", st.Cache)
	}
	// alice was evicted (LRU); bob and carol still hit.
	out, err := svc.Execute(context.Background(), p, sparql.Binding{"who": rdf.NewIRI("http://x/carol")})
	if err != nil {
		t.Fatal(err)
	}
	if !out.CacheHit {
		t.Fatal("carol should still be cached")
	}
	out, err = svc.Execute(context.Background(), p, sparql.Binding{"who": rdf.NewIRI("http://x/alice")})
	if err != nil {
		t.Fatal(err)
	}
	if out.CacheHit {
		t.Fatal("alice should have been evicted")
	}
}

// TestWorkloadThroughService drives a BSBM workload through the service
// path and checks the measurements are identical (up to wall-clock) to the
// direct workload.Runner path with the same exec options.
func TestWorkloadThroughService(t *testing.T) {
	st := buildMixedStore(t)
	tmpl := bsbm.Q4()
	dom, err := core.ExtractDomain(tmpl, st)
	if err != nil {
		t.Fatal(err)
	}
	bindings := core.NewUniformSampler(dom, 7).Sample(6)

	direct := &workload.Runner{Store: st, Opts: exec.Options{}}
	want, err := direct.Run(tmpl, bindings)
	if err != nil {
		t.Fatal(err)
	}

	// Same exec options (EarlyStop off) so accounting is comparable.
	svc := New(st, "", Options{Exec: exec.Options{}})
	got, err := workload.RunWith(svc.WorkloadExecutor(nil), tmpl, bindings)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d vs %d measurements", len(got), len(want))
	}
	for i := range got {
		if got[i].Work != want[i].Work || got[i].Cout != want[i].Cout ||
			got[i].Rows != want[i].Rows || got[i].Signature != want[i].Signature ||
			got[i].EstCost != want[i].EstCost {
			t.Fatalf("measurement %d differs: service %+v vs direct %+v", i, got[i], want[i])
		}
	}
}
