// Package service implements a long-lived, concurrency-safe query service
// over an immutable snapshot-loaded store — the resident-engine layer the
// one-shot CLIs lack. It provides:
//
//   - prepared templates: a query template is parsed once and executed many
//     times by substituting parameter bindings, never re-parsing;
//   - a shared plan cache: an LRU keyed by canonical template text plus the
//     binding's signature (plan.CacheKey), so repeated bindings skip
//     compilation and DPsub join ordering entirely, with hit/miss/eviction
//     counters;
//   - admission control: a bounded worker pool with a request-queue cap and
//     fast ErrOverloaded (HTTP 429) rejection, keeping the streaming
//     engine's per-query allocations bounded under load;
//   - hot snapshot swap: Reload/Swap atomically install a new store while
//     in-flight queries finish against the old one (each request pins one
//     snapshot state for its whole execution);
//   - a JSON HTTP API (Handler): /query, /prepare, /execute, /stats,
//     /healthz, /reload.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dict"
	"repro/internal/exec"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/sparql"
	"repro/internal/stats"
	"repro/internal/store"
)

// ErrOverloaded is returned when all workers are busy and the request queue
// is full. The HTTP layer maps it to 429 Too Many Requests.
var ErrOverloaded = errors.New("service: overloaded, request rejected")

// inputError marks errors caused by the request (bad query text, unbound or
// unknown parameters) rather than by execution; the HTTP layer maps it to
// 400.
type inputError struct{ err error }

func (e *inputError) Error() string { return e.err.Error() }
func (e *inputError) Unwrap() error { return e.err }

func badInput(err error) error {
	if err == nil {
		return nil
	}
	return &inputError{err: err}
}

// IsInputError reports whether err was caused by the request itself.
func IsInputError(err error) bool {
	var ie *inputError
	return errors.As(err, &ie)
}

// Options configures a Service. The zero value means: GOMAXPROCS workers, a
// queue of 4x the workers, a 1024-entry plan cache, and the exec defaults
// (streaming engine, exact paper accounting). Use DefaultOptions for the
// serving-mode defaults (EarlyStop on).
type Options struct {
	// Workers bounds concurrent query executions (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds requests waiting for a worker beyond the ones
	// already running; arrivals past the cap are rejected immediately with
	// ErrOverloaded. 0 means 4*Workers; negative means no queue (reject as
	// soon as all workers are busy).
	QueueDepth int
	// Parallelism is the per-query intra-query worker ceiling
	// (exec.Options.Parallelism): parallelism-eligible pipelines and hash-
	// join probes of one query fan out across up to this many workers.
	// Workers beyond the query's own goroutine are drawn opportunistically
	// from the *same* token pool that admits queries, so intra-query
	// parallelism and request concurrency jointly respect the Workers
	// budget instead of multiplying — a saturated service runs every query
	// serially, an idle one lets a single query use the spare cores.
	// Default 1 (serial, paper-experiment semantics).
	Parallelism int
	// PlanCacheSize is the shared plan cache's entry capacity. 0 means
	// 1024; negative disables caching.
	PlanCacheSize int
	// Exec are the execution options every query runs with.
	Exec exec.Options
	// HeapLoad forces Load/Reload to fully deserialize snapshots into heap
	// stores even when the file is in the v4 mapped layout. Default off: v4
	// snapshots are served straight from an OS file mapping
	// (store.OpenMapped) with O(1) open cost. cmd/served exposes this as
	// -heap-load.
	HeapLoad bool
	// Shards runs the service in coordinator mode over a subject-hash
	// sharded store: single-store inputs (New, or Load/Reload of a plain
	// snapshot) are partitioned into this many shards, and every query
	// scatter-gathers across them through the store.Source seam with
	// bit-identical results and accounting. <= 1 serves a single store.
	// Loading a sharded snapshot directory always serves it sharded, at
	// the directory's own shard count. cmd/served exposes this as -shards.
	Shards int
	// AllowReload enables the HTTP POST /reload endpoint, which loads any
	// server-readable path a client names. Off by default — enable only
	// when the listener is trusted (cmd/served -allow-reload). The
	// in-process Reload/Swap methods are always available.
	AllowReload bool
	// AllowUpdate enables the HTTP POST /update endpoint (SPARQL-Update
	// INSERT DATA / DELETE DATA). Off by default — enable only when the
	// listener is trusted (cmd/served -allow-update). The in-process
	// Update method is always available.
	AllowUpdate bool
	// CompactThreshold is the auto-compaction policy: when a commit's
	// pending delta (inserts + deletes) reaches this size, the delta is
	// folded into a fresh fully indexed store instead of published as an
	// overlay, bounding the merge-on-read cost every query pays. 0 means
	// adaptive — max(1024, base/8) changes, so small stores compact
	// eagerly and large ones amortize the rebuild; negative disables
	// auto-compaction (overlays grow until Compact is called).
	CompactThreshold int
	// TraceSample enables 1-in-N execution tracing: every Nth query
	// (counted across /query and /execute) runs with a span collector and
	// the finished trace is retained in the recent-trace ring served by
	// GET /trace/recent. 0 disables sampling. Tracing never changes
	// results or accounting; only the sampled query pays the collection
	// overhead.
	TraceSample int
	// SlowQueryMs arms slow-query capture: every query runs traced, and
	// any whose execution reaches this many milliseconds is retained in
	// the ring (marked slow) and emitted as one structured JSON line to
	// SlowLog. 0 disables — queries then run untraced unless sampled or
	// explicitly analyzed.
	SlowQueryMs int
	// TraceRecent is the recent-trace ring capacity. 0 means 64.
	TraceRecent int
	// SlowLog receives the structured slow-query log, one JSON object per
	// line. nil disables the log; slow traces are still retained in the
	// ring when SlowQueryMs is set.
	SlowLog io.Writer
}

// DefaultOptions returns the serving-mode defaults: streaming engine with
// EarlyStop, so LIMIT terminates pipelines as soon as possible. Paper
// experiments that need draining accounting pass exec.Options{} instead.
func DefaultOptions() Options {
	return Options{Exec: exec.Options{EarlyStop: true}}
}

func (o Options) normalized() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	switch {
	case o.QueueDepth == 0:
		o.QueueDepth = 4 * o.Workers
	case o.QueueDepth < 0:
		o.QueueDepth = 0
	}
	switch {
	case o.PlanCacheSize == 0:
		o.PlanCacheSize = 1024
	case o.PlanCacheSize < 0:
		o.PlanCacheSize = 0
	}
	if o.Parallelism < 1 {
		// Accept the knob through Exec too, for callers building
		// exec.Options directly.
		o.Parallelism = o.Exec.Parallelism
	}
	if o.Parallelism < 1 {
		o.Parallelism = 1
	}
	o.Exec.Parallelism = o.Parallelism
	if o.TraceRecent == 0 {
		o.TraceRecent = 64
	}
	return o
}

// snapState is one immutable snapshot generation: the store, its plan cache
// (cached plans embed this store's dictionary IDs, so the cache lives and
// dies with the snapshot) and bookkeeping. Requests pin the state once
// (pinState) and use it for their whole execution, so a concurrent swap
// never mixes stores mid-query.
//
// The pin count is what makes /reload over mmap-backed stores safe: it
// starts at 1 (the published reference, dropped when a swap retires the
// generation) and counts one per in-flight query. A mapped generation
// holds its own reference on every mapping backing the store — one for a
// plain mapped store, one per mapped shard for a sharded store — released
// only when the last pin drops. The munmap syscalls are thus deferred
// until every query whose result rows and dictionary still point into the
// old mappings has drained; for a sharded snapshot all shard generations
// stay pinned together until that drain.
type snapState struct {
	store  store.Source
	gen    uint64
	source string
	cache  *planCache

	svc      *Service
	mappings []*store.Mapping // generation's retained mapping refs, empty for heap
	pins     atomic.Int64     // published ref + in-flight queries
	retired  atomic.Bool      // set when a swap replaced this generation
}

// newState builds a snapshot generation with the published pin, retaining
// its own reference on every mapping backing the store (if any).
func (s *Service) newState(st store.Source, gen uint64, source string) *snapState {
	ss := &snapState{
		store:  st,
		gen:    gen,
		source: source,
		cache:  newPlanCache(s.opts.PlanCacheSize, &s.cacheCtr),
		svc:    s,
	}
	ss.pins.Store(1)
	for _, m := range st.Mappings() {
		if m.Retain() {
			ss.mappings = append(ss.mappings, m)
		}
	}
	return ss
}

// tryPin takes a pin unless the generation has already fully drained.
func (ss *snapState) tryPin() bool {
	for {
		n := ss.pins.Load()
		if n <= 0 {
			return false
		}
		if ss.pins.CompareAndSwap(n, n+1) {
			return true
		}
	}
}

// pin adds a pin; the caller must already hold one.
func (ss *snapState) pin() { ss.pins.Add(1) }

// unpin drops one pin; the last drop releases the generation's mapping
// references (unmapping each file once no other generation shares it) and
// clears the generation from the awaiting-unmap gauge.
func (ss *snapState) unpin() {
	if ss.pins.Add(-1) != 0 {
		return
	}
	for _, m := range ss.mappings {
		m.Release()
	}
	if len(ss.mappings) > 0 && ss.retired.Load() {
		ss.svc.retiredMapped.Add(-1)
	}
}

// pinState returns the current generation with a pin taken. The retry
// loop covers the race where a swap retires the loaded state and its last
// pin drops between Load and tryPin.
func (s *Service) pinState() *snapState {
	for {
		st := s.state.Load()
		if st.tryPin() {
			return st
		}
	}
}

// Prepared is a registered query template: parsed once, executed per
// binding. Its canonical Text is the plan-cache key component shared with
// identical ad-hoc queries.
type Prepared struct {
	Name   string
	Text   string // canonical template text (tmpl.String())
	Params []sparql.Param
	tmpl   *sparql.Query
}

// engineVariant names the engine configuration for plan-cache keying:
// cached entries from different engine modes never collide, so operators
// can flip -engine between restarts (or run A/B services over one
// snapshot) without cache cross-talk. The streaming default keeps the
// empty variant, preserving existing cache keys.
func engineVariant(o exec.Options) string {
	switch o.Mode {
	case exec.Materializing:
		return "materializing"
	case exec.Columnar:
		if o.Leapfrog {
			return "columnar+leapfrog"
		}
		return "columnar"
	default:
		return ""
	}
}

// kernelCounters aggregate exec.KernelStats across all queries, atomically
// so the query hot path never takes the stats mutex.
type kernelCounters struct {
	batches       atomic.Uint64
	filterRows    atomic.Uint64
	hashProbeRows atomic.Uint64
	mergeRows     atomic.Uint64
	gatherRows    atomic.Uint64
	leapfrogSeeks atomic.Uint64
	leapfrogRows  atomic.Uint64
	leftJoinRows  atomic.Uint64
	unionRows     atomic.Uint64
	aggGroups     atomic.Uint64
}

func (k *kernelCounters) add(ks exec.KernelStats) {
	if ks == (exec.KernelStats{}) {
		return
	}
	k.batches.Add(uint64(ks.Batches))
	k.filterRows.Add(uint64(ks.FilterRows))
	k.hashProbeRows.Add(uint64(ks.HashProbeRows))
	k.mergeRows.Add(uint64(ks.MergeRows))
	k.gatherRows.Add(uint64(ks.GatherRows))
	k.leapfrogSeeks.Add(uint64(ks.LeapfrogSeeks))
	k.leapfrogRows.Add(uint64(ks.LeapfrogRows))
	k.leftJoinRows.Add(uint64(ks.LeftJoinRows))
	k.unionRows.Add(uint64(ks.UnionRows))
	k.aggGroups.Add(uint64(ks.AggGroups))
}

// Service is the concurrent query service. Create one with New; all methods
// are safe for concurrent use.
type Service struct {
	opts    Options
	variant string // engine-configuration component of plan-cache keys

	state  atomic.Pointer[snapState]
	swapMu sync.Mutex // serializes Swap/Reload

	// retiredMapped gauges retired mmap-backed generations whose mapping
	// reference is still held open by in-flight queries.
	retiredMapped atomic.Int64

	cacheCtr cacheCounters

	// pool is the shared CPU budget: one token per admitted query, plus
	// opportunistic extra tokens for intra-query pipeline workers (the
	// executor's Options.Pool points here).
	pool     *exec.TokenPool
	queued   atomic.Int64
	inflight atomic.Int64
	rejected atomic.Uint64

	// Update telemetry: applied update requests, triples going through
	// delta application, and how many commits folded the delta
	// (auto-compaction or explicit Compact).
	updates     atomic.Uint64
	compactions atomic.Uint64

	// Intra-query parallelism telemetry, aggregated from exec results.
	parQueries    atomic.Uint64 // queries that ran >= 1 parallel operator
	parMorsels    atomic.Uint64 // morsels executed across all queries
	parWorkersSum atomic.Uint64 // sum of per-query peak worker counts
	parWorkersMax atomic.Uint64 // largest per-query peak worker count

	// Columnar kernel telemetry, aggregated from exec results.
	kern kernelCounters

	// Tracing: the recent-trace ring plus the sampling sequence and
	// traced/slow counters.
	ring     *obs.Ring
	traceSeq atomic.Uint64
	traced   atomic.Uint64
	slow     atomic.Uint64
	slowMu   sync.Mutex // serializes SlowLog writes

	prepMu   sync.RWMutex
	prepared map[string]*Prepared

	statMu    sync.Mutex
	counts    map[string]uint64
	errCounts map[string]uint64
	latency   map[string]*stats.Histogram
}

// New returns a Service over st. The source string is reported by Stats
// and /healthz ("" for an in-memory store). With Options.Shards > 1 a
// plain store is partitioned into a sharded federation first (an already
// sharded st is served as-is).
func New(st store.Source, source string, opts Options) *Service {
	opts = opts.normalized()
	if single, ok := st.(*store.Store); ok && opts.Shards > 1 {
		st = store.NewSharded(single, opts.Shards)
	}
	s := &Service{
		opts:      opts,
		variant:   engineVariant(opts.Exec),
		pool:      exec.NewTokenPool(opts.Workers),
		ring:      obs.NewRing(opts.TraceRecent),
		prepared:  make(map[string]*Prepared),
		counts:    make(map[string]uint64),
		errCounts: make(map[string]uint64),
		latency:   make(map[string]*stats.Histogram),
	}
	// Intra-query workers draw from the admission pool: one CPU budget.
	s.opts.Exec.Pool = s.pool
	s.state.Store(s.newState(st, 1, source))
	return s
}

// Load opens path (snapshot or N-Triples, auto-detected) and returns a
// Service over it. v4 snapshots are served mmap-backed unless
// Options.HeapLoad forces full deserialization; either way the service
// owns the store's lifecycle (its generations hold the mapping open and
// the last drained one unmaps it).
func Load(path string, opts Options) (*Service, error) {
	st, err := loadStore(path, opts.HeapLoad, opts.Shards)
	if err != nil {
		return nil, err
	}
	s := New(st, path, opts)
	// New retained the service's own mapping references; drop the creation
	// references so each mapping's lifetime is governed entirely by
	// snapshot generations.
	for _, m := range st.Mappings() {
		m.Release()
	}
	return s, nil
}

// loadStore resolves the configured loading path: sharded snapshot
// directories open as sharded federations at their own shard count, v4
// files map in by default (full heap deserialization when forced), and a
// single-store load under shards > 1 is partitioned after loading. The
// partitioning path always deserializes onto the heap — the federation
// shares the loaded store's dictionary, which for a mapped store would
// point into the mapping — so mapped sharded serving goes through a
// sharded snapshot directory (cmd/datagen -shards).
func loadStore(path string, heapLoad bool, shards int) (store.Source, error) {
	if store.IsShardedSnapshot(path) {
		return store.LoadSharded(path, heapLoad)
	}
	if shards > 1 {
		st, err := store.LoadAny(path)
		if err != nil {
			return nil, err
		}
		return store.NewSharded(st, shards), nil
	}
	if heapLoad {
		return store.LoadAny(path)
	}
	return store.LoadAnyMapped(path)
}

// Store returns the current snapshot's store.
func (s *Service) Store() store.Source { return s.state.Load().store }

// Generation returns the current snapshot generation (starts at 1,
// incremented by every swap).
func (s *Service) Generation() uint64 { return s.state.Load().gen }

// Swap atomically installs a new store as the next generation. In-flight
// queries finish against the snapshot they started with; the plan cache is
// replaced (its entries embed the old dictionary's IDs) while the
// cumulative cache counters survive. Returns the new generation.
func (s *Service) Swap(st store.Source, source string) uint64 {
	s.swapMu.Lock()
	defer s.swapMu.Unlock()
	return s.swapLocked(st, source)
}

// swapLocked publishes st as the next generation and retires the old one:
// its published pin is dropped, and if it was mmap-backed its mappings
// stay open (gauged as awaiting unmap) until the last in-flight query
// over it drains. The caller holds swapMu.
func (s *Service) swapLocked(st store.Source, source string) uint64 {
	old := s.state.Load()
	gen := old.gen + 1
	s.state.Store(s.newState(st, gen, source))
	old.retired.Store(true)
	if len(old.mappings) > 0 {
		s.retiredMapped.Add(1)
	}
	old.unpin()
	return gen
}

// Reload loads path (snapshot or N-Triples; v4 snapshots map in O(1)
// unless Options.HeapLoad) and swaps it in, returning the new generation
// and its triple count (from the loaded store itself, so a racing Reload
// cannot skew the pair). The load happens outside any lock; queries are
// served from the old snapshot until the swap point, and queries in
// flight over a retired mapped snapshot keep it mapped until they drain.
func (s *Service) Reload(path string) (gen uint64, triples int, err error) {
	st, err := loadStore(path, s.opts.HeapLoad, s.opts.Shards)
	if err != nil {
		return 0, 0, err
	}
	gen = s.Swap(st, path)
	triples = st.Len()
	for _, m := range st.Mappings() {
		m.Release() // the new generation holds its own references
	}
	return gen, triples, nil
}

// UpdateResult describes one applied update.
type UpdateResult struct {
	// Generation is the snapshot generation the update published.
	Generation uint64 `json:"generation"`
	// Triples is the store size after the update.
	Triples int `json:"triples"`
	// Inserted and Deleted count the triples named by the request's
	// INSERT DATA / DELETE DATA blocks (before set semantics — inserting
	// an existing triple or deleting an absent one is a no-op).
	Inserted int `json:"inserted"`
	Deleted  int `json:"deleted"`
	// PendingInserts/PendingDeletes are the published snapshot's delta
	// sizes (zero right after a compaction).
	PendingInserts int `json:"pending_inserts"`
	PendingDeletes int `json:"pending_deletes"`
	// Compacted reports whether this update folded the delta into a
	// fresh fully indexed store (the size-threshold auto-compaction).
	Compacted bool `json:"compacted"`
}

// Update parses text as SPARQL-Update (ground INSERT DATA / DELETE DATA
// and pattern-driven DELETE/INSERT WHERE, whose WHERE blocks run against
// the current snapshot plus the preceding operations of the request) and
// publishes the result as the next snapshot generation, MVCC-style:
// in-flight queries finish against the snapshot they pinned; new queries
// see the new one. Small deltas are published as overlay snapshots (the
// base indexes are shared and reads merge the delta in); once the pending
// delta reaches Options.CompactThreshold it is folded into a fresh fully
// indexed store. Updates serialize with each other and with Swap/Reload.
func (s *Service) Update(ctx context.Context, text string) (res *UpdateResult, err error) {
	start := time.Now()
	defer func() { s.observe("update", time.Since(start), err) }()
	release, err := s.admit(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	u, err := sparql.ParseUpdate(text)
	if err != nil {
		return nil, badInput(err)
	}
	s.swapMu.Lock()
	defer s.swapMu.Unlock()
	cur := s.state.Load()
	var (
		next      store.Source
		unchanged bool
		compacted bool
	)
	switch cs := cur.store.(type) {
	case *store.Sharded:
		sd0 := cs.NewDelta()
		sd, aerr := exec.ApplyUpdateSharded(sd0, u)
		if aerr != nil {
			return nil, badInput(aerr)
		}
		if unchanged = sd == sd0; !unchanged {
			next, compacted = s.publishShardedDelta(sd)
		}
	case *store.Store:
		d0 := cs.NewDelta()
		d, aerr := exec.ApplyUpdateDelta(d0, u)
		if aerr != nil {
			return nil, badInput(aerr)
		}
		if unchanged = d == d0; !unchanged {
			next, compacted = s.publishDelta(d)
		}
	}
	s.updates.Add(1)
	if unchanged {
		// The update changed nothing (set semantics): keep the current
		// snapshot — and with it the plan cache — instead of publishing an
		// identical generation.
		res = &UpdateResult{
			Generation: cur.gen,
			Triples:    cur.store.Len(),
			Inserted:   u.InsertCount(),
			Deleted:    u.DeleteCount(),
		}
		res.PendingInserts, res.PendingDeletes = pendingOf(cur.store)
		return res, nil
	}
	gen := s.swapLocked(next, updateSource(cur.source))
	if compacted {
		s.compactions.Add(1)
	}
	res = &UpdateResult{
		Generation: gen,
		Triples:    next.Len(),
		Inserted:   u.InsertCount(),
		Deleted:    u.DeleteCount(),
		Compacted:  compacted,
	}
	res.PendingInserts, res.PendingDeletes = pendingOf(next)
	return res, nil
}

// pendingOf returns a snapshot's overlay delta sizes (summed across
// shards for a sharded store; zero for fully indexed snapshots).
func pendingOf(st store.Source) (inserts, deletes int) {
	switch cs := st.(type) {
	case *store.Sharded:
		return cs.Pending()
	case *store.Store:
		if d := cs.Delta(); d != nil {
			return d.InsertCount(), d.DeleteCount()
		}
	}
	return 0, 0
}

// publishDelta decides the snapshot form for a pending delta: an overlay
// below the compaction threshold, a folded store at or above it.
func (s *Service) publishDelta(d *store.Delta) (*store.Store, bool) {
	if t := s.compactThresholdFor(d.Base().Len()); t > 0 && d.Size() >= t {
		return d.Commit(store.BuildOptions{}), true
	}
	return d.Overlay(), false
}

// publishShardedDelta publishes a sharded delta with per-shard
// auto-compaction: each shard's threshold resolves against that shard's
// own base size, so one hot shard folds without forcing a rebuild of the
// cold ones.
func (s *Service) publishShardedDelta(sd *store.ShardedDelta) (*store.Sharded, bool) {
	compacted := false
	next := sd.Publish(func(_ int, d *store.Delta) bool {
		if t := s.compactThresholdFor(d.Base().Len()); t > 0 && d.Size() >= t {
			compacted = true
			return true
		}
		return false
	}, store.BuildOptions{})
	return next, compacted
}

// compactThresholdFor resolves the auto-compaction threshold against a
// base store size (0 configures the adaptive default, negative disables).
func (s *Service) compactThresholdFor(baseLen int) int {
	t := s.opts.CompactThreshold
	switch {
	case t < 0:
		return 0
	case t == 0:
		t = baseLen / 8
		if t < 1024 {
			t = 1024
		}
	}
	return t
}

// Compact folds the current snapshot's pending delta (if any) into a
// fresh fully indexed store — every shard's, for a sharded snapshot —
// and publishes it. It returns the resulting generation (unchanged when
// there was nothing to fold).
func (s *Service) Compact() uint64 {
	s.swapMu.Lock()
	defer s.swapMu.Unlock()
	cur := s.state.Load()
	switch cs := cur.store.(type) {
	case *store.Sharded:
		sd := cs.NewDelta()
		if sd.Empty() {
			return cur.gen
		}
		s.compactions.Add(1)
		return s.swapLocked(sd.Commit(store.BuildOptions{}), updateSource(cur.source))
	case *store.Store:
		d := cs.Delta()
		if d == nil || d.Empty() {
			return cur.gen
		}
		s.compactions.Add(1)
		return s.swapLocked(d.Commit(store.BuildOptions{}), updateSource(cur.source))
	}
	return cur.gen
}

// baseLenOf returns the fully indexed base size of st: the delta's base
// for an overlay, summed across shards for a sharded store.
func baseLenOf(st store.Source) int {
	switch cs := st.(type) {
	case *store.Sharded:
		return cs.BaseLen()
	case *store.Store:
		if d := cs.Delta(); d != nil {
			return d.Base().Len()
		}
	}
	return st.Len()
}

// mappedBytesOf sums the sizes of the distinct mappings backing st (0 for
// heap stores).
func mappedBytesOf(st store.Source) int {
	n := 0
	for _, m := range st.Mappings() {
		n += m.Size()
	}
	return n
}

// updateSource labels a snapshot produced by updates after its origin.
func updateSource(source string) string {
	const suffix = "+updates"
	if source == "" || strings.HasSuffix(source, suffix) {
		if source == "" {
			return suffix[1:]
		}
		return source
	}
	return source + suffix
}

// Prepare parses text as a query template and registers it under name.
// Re-preparing a name replaces the previous template.
func (s *Service) Prepare(name, text string) (*Prepared, error) {
	if name == "" {
		return nil, badInput(fmt.Errorf("service: empty template name"))
	}
	q, err := sparql.Parse(text)
	if err != nil {
		return nil, badInput(err)
	}
	p := &Prepared{Name: name, Text: q.String(), Params: q.Params(), tmpl: q}
	s.prepMu.Lock()
	s.prepared[name] = p
	s.prepMu.Unlock()
	return p, nil
}

// Lookup returns the prepared template registered under name.
func (s *Service) Lookup(name string) (*Prepared, bool) {
	s.prepMu.RLock()
	defer s.prepMu.RUnlock()
	p, ok := s.prepared[name]
	return p, ok
}

// PreparedNames returns the names of all registered templates.
func (s *Service) PreparedNames() []string {
	s.prepMu.RLock()
	defer s.prepMu.RUnlock()
	out := make([]string, 0, len(s.prepared))
	for n := range s.prepared {
		out = append(out, n)
	}
	return out
}

// Outcome is the service-level result of one execution: the exec result
// plus the plan that produced it and cache/snapshot provenance.
type Outcome struct {
	Result     *exec.Result
	Plan       *plan.Plan
	CacheHit   bool
	Generation uint64
	// Store is the snapshot the query executed against — decode row IDs
	// with its dictionary, not the service's current one (a swap may have
	// happened since).
	Store store.Source
	// Analyze is the rendered EXPLAIN ANALYZE listing and Trace the
	// finalized span tree, both set only when the execution was requested
	// with RunOptions.Analyze.
	Analyze string
	Trace   *obs.Span

	closed atomic.Bool
	unpin  func()
}

// Close releases the snapshot pin the outcome holds. Call it once the
// result has been consumed (rows decoded, payload rendered): over an
// mmap-backed snapshot the result rows and dictionary point into the
// mapping, and the pin is what keeps a since-reloaded snapshot mapped.
// Close is idempotent and safe on a nil outcome; never closing merely
// delays the old mapping's unmap until process exit.
func (o *Outcome) Close() {
	if o == nil || o.unpin == nil {
		return
	}
	if o.closed.CompareAndSwap(false, true) {
		o.unpin()
	}
}

// RunOptions are per-request execution options beyond the binding.
type RunOptions struct {
	// Analyze traces the execution and returns the EXPLAIN ANALYZE
	// rendering (and span tree) in the Outcome.
	Analyze bool
}

// runMeta carries request provenance into run for trace attribution.
type runMeta struct {
	endpoint  string
	template  string
	admitWait time.Duration
	analyze   bool
}

// DecodedRows renders the result rows as N-Triples term strings using the
// executing snapshot's dictionary.
func (o *Outcome) DecodedRows() [][]string { return o.decodeRows(o.Result.Rows) }

// decodeRows decodes a (possibly truncated) slice of the outcome's rows, so
// response rendering never pays for rows it will not ship. Unbound cells
// (the dict.None sentinel left by OPTIONAL) render as "UNDEF", matching
// the SPARQL results vocabulary.
func (o *Outcome) decodeRows(rows [][]dict.ID) [][]string {
	d := o.Store.Dict()
	out := make([][]string, len(rows))
	for i, row := range rows {
		cells := make([]string, len(row))
		for j, id := range row {
			if t, ok := d.TryDecode(id); ok {
				cells[j] = t.String()
			} else {
				cells[j] = "UNDEF"
			}
		}
		out[i] = cells
	}
	return out
}

// Execute runs the prepared template with one binding, through admission
// control and the plan cache.
func (s *Service) Execute(ctx context.Context, p *Prepared, b sparql.Binding) (*Outcome, error) {
	return s.ExecuteWith(ctx, p, b, RunOptions{})
}

// ExecuteWith is Execute with per-request options (EXPLAIN ANALYZE).
func (s *Service) ExecuteWith(ctx context.Context, p *Prepared, b sparql.Binding, ro RunOptions) (out *Outcome, err error) {
	start := time.Now()
	defer func() {
		d := time.Since(start)
		s.observe("execute", d, err)
		s.observe("template:"+p.Name, d, err)
	}()
	release, err := s.admit(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	m := runMeta{endpoint: "execute", template: p.Name, admitWait: time.Since(start), analyze: ro.Analyze}
	st := s.pinState()
	out, err = s.run(ctx, st, p.tmpl, p.Text, b, m)
	if err != nil {
		st.unpin()
		return nil, err
	}
	out.unpin = st.unpin
	return out, nil
}

// ExecuteBatch runs the prepared template once per binding, under a single
// admission (one worker slot executes the whole batch) and a single
// snapshot state, so every result of a batch comes from the same store
// generation.
func (s *Service) ExecuteBatch(ctx context.Context, p *Prepared, bindings []sparql.Binding) (out []*Outcome, err error) {
	start := time.Now()
	defer func() {
		d := time.Since(start)
		s.observe("execute", d, err)
		s.observe("template:"+p.Name, d, err)
	}()
	release, err := s.admit(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	m := runMeta{endpoint: "execute", template: p.Name, admitWait: time.Since(start)}
	st := s.pinState()
	defer st.unpin()
	out = make([]*Outcome, 0, len(bindings))
	for i, b := range bindings {
		o, err := s.run(ctx, st, p.tmpl, p.Text, b, m)
		if err != nil {
			for _, done := range out {
				done.Close()
			}
			return nil, fmt.Errorf("batch item %d: %w", i, err)
		}
		// Each outcome pins independently (under the batch pin held above),
		// so callers can Close results one by one.
		st.pin()
		o.unpin = st.unpin
		out = append(out, o)
	}
	return out, nil
}

// Query is the one-shot path: parse text, bind b (may be nil for fully
// bound queries) and execute. Identical query texts share plan-cache
// entries with each other and with prepared templates, since the cache key
// uses the canonical rendering.
func (s *Service) Query(ctx context.Context, text string, b sparql.Binding) (*Outcome, error) {
	return s.QueryWith(ctx, text, b, RunOptions{})
}

// QueryWith is Query with per-request options (EXPLAIN ANALYZE).
func (s *Service) QueryWith(ctx context.Context, text string, b sparql.Binding, ro RunOptions) (out *Outcome, err error) {
	start := time.Now()
	defer func() { s.observe("query", time.Since(start), err) }()
	// Admission comes first — under overload even parsing is work the
	// fast-reject path must not pay.
	release, err := s.admit(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	m := runMeta{endpoint: "query", admitWait: time.Since(start), analyze: ro.Analyze}
	q, err := sparql.Parse(text)
	if err != nil {
		return nil, badInput(err)
	}
	st := s.pinState()
	out, err = s.run(ctx, st, q, q.String(), b, m)
	if err != nil {
		st.unpin()
		return nil, err
	}
	out.unpin = st.unpin
	return out, nil
}

// run executes one (template, binding) pair against the pinned snapshot
// state: plan-cache lookup first, full bind/compile/optimize on a miss.
// The run is traced when the request asked for EXPLAIN ANALYZE, when the
// 1-in-N sampler selects it, or when slow-query capture is armed (the
// trace is then discarded if the query comes in under the threshold).
func (s *Service) run(ctx context.Context, st *snapState, tmpl *sparql.Query, text string, b sparql.Binding, m runMeta) (*Outcome, error) {
	key := plan.CacheKeyVariant(text, b, s.variant)
	ent, hit := st.cache.get(key)
	if !hit {
		bound := tmpl
		if len(tmpl.Params()) > 0 || len(b) > 0 {
			var err error
			bound, err = tmpl.Bind(b)
			if err != nil {
				return nil, badInput(err)
			}
		}
		c, err := plan.Compile(bound, st.store)
		if err != nil {
			return nil, badInput(err)
		}
		p, err := plan.Optimize(c, plan.NewEstimator(st.store))
		if err != nil {
			return nil, err
		}
		ent = &planEntry{key: key, c: c, p: p}
		st.cache.put(ent)
	}
	execOpts := s.opts.Exec
	var capture *obs.Capture
	sampled := false
	if n := s.opts.TraceSample; n > 0 && s.traceSeq.Add(1)%uint64(n) == 0 {
		sampled = true
	}
	if m.analyze || sampled || s.opts.SlowQueryMs > 0 {
		capture = &obs.Capture{}
		execOpts.Trace = capture
	}
	res, err := exec.RunCtx(ctx, ent.c, ent.p, st.store, execOpts)
	if err != nil {
		return nil, err
	}
	s.kern.add(res.Kernels)
	if res.Morsels > 0 {
		s.parQueries.Add(1)
		s.parMorsels.Add(uint64(res.Morsels))
		s.parWorkersSum.Add(uint64(res.Workers))
		for {
			max := s.parWorkersMax.Load()
			if uint64(res.Workers) <= max || s.parWorkersMax.CompareAndSwap(max, uint64(res.Workers)) {
				break
			}
		}
	}
	out := &Outcome{Result: res, Plan: ent.p, CacheHit: hit, Generation: st.gen, Store: st.store}
	if capture != nil && capture.Root != nil {
		s.recordTrace(m, sampled, text, ent.p.Signature, hit, st.gen, res, capture.Root, out)
	}
	return out, nil
}

// recordTrace decides a captured trace's fate: EXPLAIN ANALYZE requests
// get the rendering in their Outcome, sampled and slow traces are retained
// in the recent-trace ring, and slow traces additionally emit one
// structured log line. A trace captured only because slow-query capture is
// armed is dropped when the query comes in under the threshold.
func (s *Service) recordTrace(m runMeta, sampled bool, text, sig string, hit bool, gen uint64, res *exec.Result, root *obs.Span, out *Outcome) {
	s.traced.Add(1)
	if m.analyze {
		out.Analyze = obs.Render(root)
		out.Trace = root
	}
	slow := s.opts.SlowQueryMs > 0 && res.Duration >= time.Duration(s.opts.SlowQueryMs)*time.Millisecond
	if !m.analyze && !sampled && !slow {
		return
	}
	t := &obs.QueryTrace{
		Time:            time.Now(),
		Endpoint:        m.endpoint,
		Query:           text,
		Template:        m.template,
		PlanSignature:   sig,
		CacheHit:        hit,
		Generation:      gen,
		AdmissionWaitUs: m.admitWait.Microseconds(),
		DurationUs:      res.Duration.Microseconds(),
		Rows:            len(res.Rows),
		Cout:            res.Cout,
		Work:            res.Work,
		Scanned:         res.Scanned,
		Slow:            slow,
		Sampled:         sampled,
		Root:            root,
	}
	s.ring.Add(t)
	if !slow {
		return
	}
	s.slow.Add(1)
	if w := s.opts.SlowLog; w != nil {
		line, err := json.Marshal(slowLogLine{
			Time:            t.Time.Format(time.RFC3339Nano),
			Level:           "warn",
			Msg:             "slow query",
			TraceID:         t.ID,
			Endpoint:        m.endpoint,
			Template:        m.template,
			Query:           text,
			DurationMs:      float64(res.Duration) / float64(time.Millisecond),
			ThresholdMs:     s.opts.SlowQueryMs,
			AdmissionWaitUs: t.AdmissionWaitUs,
			Rows:            len(res.Rows),
			Cout:            res.Cout,
			Work:            res.Work,
			Scanned:         res.Scanned,
			PlanSignature:   sig,
			CacheHit:        hit,
			Generation:      gen,
		})
		if err == nil {
			s.slowMu.Lock()
			_, _ = w.Write(append(line, '\n'))
			s.slowMu.Unlock()
		}
	}
}

// slowLogLine is one structured slow-query log record: a summary without
// the span tree — the full trace stays in the ring under TraceID.
type slowLogLine struct {
	Time            string  `json:"time"`
	Level           string  `json:"level"`
	Msg             string  `json:"msg"`
	TraceID         uint64  `json:"trace_id"`
	Endpoint        string  `json:"endpoint"`
	Template        string  `json:"template,omitempty"`
	Query           string  `json:"query"`
	DurationMs      float64 `json:"duration_ms"`
	ThresholdMs     int     `json:"threshold_ms"`
	AdmissionWaitUs int64   `json:"admission_wait_us"`
	Rows            int     `json:"rows"`
	Cout            float64 `json:"cout"`
	Work            float64 `json:"work"`
	Scanned         int     `json:"scanned"`
	PlanSignature   string  `json:"plan_signature"`
	CacheHit        bool    `json:"cache_hit"`
	Generation      uint64  `json:"generation"`
}

// TraceRecent returns up to n retained traces, newest first (n < 1 means
// all retained).
func (s *Service) TraceRecent(n int) []*obs.QueryTrace { return s.ring.Recent(n) }

// admit acquires one token from the shared CPU pool, waiting in the
// bounded queue when the pool is exhausted. It fails fast with
// ErrOverloaded when the queue is full, and with ctx's error if the caller
// gives up while queued. Queued admissions always win released tokens over
// opportunistic intra-query grabs (see exec.TokenPool), so parallel
// pipelines shrink under load instead of starving admission. The returned
// release function must be called when the request finishes.
func (s *Service) admit(ctx context.Context) (func(), error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if !s.pool.TryAcquire() {
		if s.queued.Add(1) > int64(s.opts.QueueDepth) {
			s.queued.Add(-1)
			s.rejected.Add(1)
			return nil, ErrOverloaded
		}
		err := s.pool.Acquire(ctx)
		s.queued.Add(-1)
		if err != nil {
			return nil, err
		}
	}
	s.inflight.Add(1)
	return func() {
		s.inflight.Add(-1)
		s.pool.Release()
	}, nil
}

// engineMode renders an exec.ExecMode for /stats and CLI flags.
func engineMode(m exec.ExecMode) string {
	switch m {
	case exec.Materializing:
		return "materializing"
	case exec.Columnar:
		return "columnar"
	default:
		return "streaming"
	}
}

// ParseEngineMode maps the -engine flag value to an exec.ExecMode.
func ParseEngineMode(name string) (exec.ExecMode, error) {
	switch name {
	case "", "streaming":
		return exec.Streaming, nil
	case "materializing":
		return exec.Materializing, nil
	case "columnar":
		return exec.Columnar, nil
	default:
		return exec.Streaming, fmt.Errorf("unknown engine %q (want streaming, materializing or columnar)", name)
	}
}

// maxLatencyKeys caps the latency map's cardinality. Per-template keys
// derive from client-chosen /prepare names, so without a cap an
// adversarial (or merely enthusiastic) client could grow the map — and
// every /stats and /metrics payload — without bound. Observations past
// the cap fold into the "other" key, so the map holds at most
// maxLatencyKeys distinct keys plus "other".
const maxLatencyKeys = 64

// latencyOverflowKey aggregates observations whose key did not fit.
const latencyOverflowKey = "other"

// observe records one finished request — failed ones included, so an error
// storm is visible in /stats rather than indistinguishable from idleness.
func (s *Service) observe(endpoint string, d time.Duration, err error) {
	ms := float64(d) / float64(time.Millisecond)
	s.statMu.Lock()
	defer s.statMu.Unlock()
	h, ok := s.latency[endpoint]
	if !ok {
		if len(s.latency) >= maxLatencyKeys && endpoint != latencyOverflowKey {
			endpoint = latencyOverflowKey
			h = s.latency[endpoint]
		}
		if h == nil {
			// 1µs .. 10s in geometric steps — query latencies span orders of
			// magnitude (cache hit on an empty result vs a cold heavy join).
			h = stats.NewLogHistogram(0.001, 10_000, 21)
			s.latency[endpoint] = h
		}
	}
	h.Add(ms)
	s.counts[endpoint]++
	if err != nil {
		s.errCounts[endpoint]++
	}
}

// CacheStats are the shared plan cache's size and lifetime counters.
type CacheStats struct {
	Size      int    `json:"size"`
	Capacity  int    `json:"capacity"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
}

// PoolStats describe the shared CPU pool: admission control plus the token
// budget intra-query workers draw from.
type PoolStats struct {
	Workers    int    `json:"workers"`
	QueueDepth int    `json:"queue_depth"`
	InFlight   int64  `json:"in_flight"`
	Queued     int64  `json:"queued"`
	Rejected   uint64 `json:"rejected"`
	// TokensInUse is the number of pool tokens currently held (admitted
	// queries plus their active intra-query workers).
	TokensInUse int `json:"tokens_in_use"`
	// TokenWaits counts admissions that had to wait for a token;
	// TokenWaitMs is the total time they spent waiting.
	TokenWaits  uint64  `json:"token_waits"`
	TokenWaitMs float64 `json:"token_wait_ms"`
}

// ParallelStats describe morsel-driven intra-query parallelism since
// startup: how many queries ran parallel operators, how many morsels they
// executed and the per-query peak worker counts (average and maximum) —
// the worker-utilization view of Options.Parallelism.
type ParallelStats struct {
	Parallelism int     `json:"parallelism"`
	Queries     uint64  `json:"queries"`
	Morsels     uint64  `json:"morsels"`
	AvgWorkers  float64 `json:"avg_workers"`
	MaxWorkers  uint64  `json:"max_workers"`
}

// KernelStats are the cumulative kernel counters aggregated from every
// query since startup. Most are columnar-engine telemetry (all zero when
// the service runs a row engine); LeftJoinRows, UnionRows and AggGroups
// are logical algebra-operator counts maintained identically by the
// streaming and columnar engines.
type KernelStats struct {
	Batches       uint64 `json:"batches"`
	FilterRows    uint64 `json:"filter_rows"`
	HashProbeRows uint64 `json:"hash_probe_rows"`
	MergeRows     uint64 `json:"merge_rows"`
	GatherRows    uint64 `json:"gather_rows"`
	LeapfrogSeeks uint64 `json:"leapfrog_seeks"`
	LeapfrogRows  uint64 `json:"leapfrog_rows"`
	LeftJoinRows  uint64 `json:"left_join_rows"`
	UnionRows     uint64 `json:"union_rows"`
	AggGroups     uint64 `json:"agg_groups"`
}

// EngineStats name the configured execution engine and its kernel
// telemetry.
type EngineStats struct {
	// Mode is "streaming", "materializing" or "columnar".
	Mode string `json:"mode"`
	// Leapfrog reports whether eligible star BGPs lower to the multiway
	// leapfrog triejoin (columnar mode only).
	Leapfrog bool        `json:"leapfrog"`
	Kernels  KernelStats `json:"kernels"`
}

// StoreStats describe the current snapshot. A snapshot with pending
// changes is an overlay: BaseTriples is its fully indexed base's size and
// PendingInserts/PendingDeletes the delta merged in on every read.
type StoreStats struct {
	Triples        int    `json:"triples"`
	Generation     uint64 `json:"generation"`
	Source         string `json:"source,omitempty"`
	BaseTriples    int    `json:"base_triples"`
	PendingInserts int    `json:"pending_inserts"`
	PendingDeletes int    `json:"pending_deletes"`
	// Backend is the snapshot's index backing: "heap" for deserialized
	// stores, "mapped" for stores served from an mmap'd v4 snapshot.
	Backend string `json:"backend"`
	// MappedBytes is the size of the snapshot file mapping backing the
	// current store (0 for heap).
	MappedBytes int `json:"mapped_bytes"`
	// MappingsAwaitingUnmap counts retired mmap-backed generations still
	// held open by in-flight queries (each unmaps when its last query
	// drains). A sharded generation counts once — all its shard mappings
	// retire and release together.
	MappingsAwaitingUnmap int64 `json:"mappings_awaiting_unmap"`
	// Shards is the shard count in coordinator mode (0 for a single
	// store), and PerShard the per-shard breakdown.
	Shards   int               `json:"shards,omitempty"`
	PerShard []ShardStoreStats `json:"per_shard,omitempty"`
}

// ShardStoreStats describe one shard of a sharded snapshot.
type ShardStoreStats struct {
	Triples        int    `json:"triples"`
	BaseTriples    int    `json:"base_triples"`
	PendingInserts int    `json:"pending_inserts"`
	PendingDeletes int    `json:"pending_deletes"`
	Backend        string `json:"backend"`
	MappedBytes    int    `json:"mapped_bytes"`
}

// UpdateStats describe the update path since startup.
type UpdateStats struct {
	// Updates counts applied update requests; Compactions counts the
	// snapshots that folded the pending delta into a fresh store
	// (threshold-triggered or explicit Compact).
	Updates     uint64 `json:"updates"`
	Compactions uint64 `json:"compactions"`
	// CompactThreshold is the delta size (inserts + deletes) at which the
	// next update will compact, resolved against the current base.
	CompactThreshold int `json:"compact_threshold"`
}

// HistogramStats is a serialized stats.Histogram: bucket i of Counts covers
// [Bounds[i-1], Bounds[i]), with open-ended first and last buckets.
type HistogramStats struct {
	BoundsMs []float64 `json:"bounds_ms"`
	Counts   []int     `json:"counts"`
	Total    int       `json:"total"`
	SumMs    float64   `json:"sum_ms"`
}

// TraceStats describe the tracing subsystem: its configuration plus how
// many queries ran traced, how many crossed the slow threshold, and how
// many traces were retained in the ring (lifetime, not just currently
// held).
type TraceStats struct {
	Sample      int    `json:"sample"`
	SlowQueryMs int    `json:"slow_query_ms"`
	RingSize    int    `json:"ring_size"`
	Traced      uint64 `json:"traced"`
	Slow        uint64 `json:"slow"`
	Retained    uint64 `json:"retained"`
}

// RequestStats are the per-endpoint request count (failures included),
// error count and latency histogram.
type RequestStats struct {
	Count     uint64         `json:"count"`
	Errors    uint64         `json:"errors"`
	LatencyMs HistogramStats `json:"latency_ms"`
}

// Stats is the full service statistics snapshot returned by /stats.
type Stats struct {
	Store    StoreStats              `json:"store"`
	Updates  UpdateStats             `json:"updates"`
	Cache    CacheStats              `json:"cache"`
	Pool     PoolStats               `json:"pool"`
	Parallel ParallelStats           `json:"parallel"`
	Engine   EngineStats             `json:"engine"`
	Trace    TraceStats              `json:"trace"`
	Prepared []string                `json:"prepared"`
	Requests map[string]RequestStats `json:"requests"`
}

// Stats returns a consistent-enough snapshot of the service counters.
func (s *Service) Stats() Stats {
	st := s.state.Load()
	storeStats := StoreStats{
		Triples:               st.store.Len(),
		Generation:            st.gen,
		Source:                st.source,
		BaseTriples:           baseLenOf(st.store),
		Backend:               st.store.Backend(),
		MappedBytes:           mappedBytesOf(st.store),
		MappingsAwaitingUnmap: s.retiredMapped.Load(),
	}
	storeStats.PendingInserts, storeStats.PendingDeletes = pendingOf(st.store)
	if sh, ok := st.store.(*store.Sharded); ok {
		storeStats.Shards = sh.NumShards()
		storeStats.PerShard = make([]ShardStoreStats, sh.NumShards())
		for i := range storeStats.PerShard {
			shard := sh.Shard(i)
			ss := ShardStoreStats{
				Triples:     shard.Len(),
				BaseTriples: shard.Len(),
				Backend:     shard.Backend(),
				MappedBytes: shard.MappedBytes(),
			}
			if d := shard.Delta(); d != nil {
				ss.BaseTriples = d.Base().Len()
				ss.PendingInserts = d.InsertCount()
				ss.PendingDeletes = d.DeleteCount()
			}
			storeStats.PerShard[i] = ss
		}
	}
	out := Stats{
		Store: storeStats,
		Updates: UpdateStats{
			Updates:          s.updates.Load(),
			Compactions:      s.compactions.Load(),
			CompactThreshold: s.compactThresholdFor(baseLenOf(st.store)),
		},
		Cache: CacheStats{
			Size:      st.cache.size(),
			Capacity:  s.opts.PlanCacheSize,
			Hits:      s.cacheCtr.hits.Load(),
			Misses:    s.cacheCtr.misses.Load(),
			Evictions: s.cacheCtr.evictions.Load(),
		},
		Pool: PoolStats{
			Workers:     s.opts.Workers,
			QueueDepth:  s.opts.QueueDepth,
			InFlight:    s.inflight.Load(),
			Queued:      s.queued.Load(),
			Rejected:    s.rejected.Load(),
			TokensInUse: s.pool.InUse(),
		},
		Parallel: ParallelStats{
			Parallelism: s.opts.Parallelism,
			Queries:     s.parQueries.Load(),
			Morsels:     s.parMorsels.Load(),
			MaxWorkers:  s.parWorkersMax.Load(),
		},
		Engine: EngineStats{
			Mode:     engineMode(s.opts.Exec.Mode),
			Leapfrog: s.opts.Exec.Leapfrog && s.opts.Exec.Mode == exec.Columnar,
			Kernels: KernelStats{
				Batches:       s.kern.batches.Load(),
				FilterRows:    s.kern.filterRows.Load(),
				HashProbeRows: s.kern.hashProbeRows.Load(),
				MergeRows:     s.kern.mergeRows.Load(),
				GatherRows:    s.kern.gatherRows.Load(),
				LeapfrogSeeks: s.kern.leapfrogSeeks.Load(),
				LeapfrogRows:  s.kern.leapfrogRows.Load(),
				LeftJoinRows:  s.kern.leftJoinRows.Load(),
				UnionRows:     s.kern.unionRows.Load(),
				AggGroups:     s.kern.aggGroups.Load(),
			},
		},
		Trace: TraceStats{
			Sample:      s.opts.TraceSample,
			SlowQueryMs: s.opts.SlowQueryMs,
			RingSize:    s.opts.TraceRecent,
			Traced:      s.traced.Load(),
			Slow:        s.slow.Load(),
			Retained:    s.ring.Total(),
		},
		Prepared: s.PreparedNames(),
		Requests: make(map[string]RequestStats),
	}
	waits, waited := s.pool.WaitStats()
	out.Pool.TokenWaits = waits
	out.Pool.TokenWaitMs = float64(waited) / float64(time.Millisecond)
	if q := out.Parallel.Queries; q > 0 {
		out.Parallel.AvgWorkers = float64(s.parWorkersSum.Load()) / float64(q)
	}
	s.statMu.Lock()
	defer s.statMu.Unlock()
	for name, h := range s.latency {
		out.Requests[name] = RequestStats{
			Count:  s.counts[name],
			Errors: s.errCounts[name],
			LatencyMs: HistogramStats{
				BoundsMs: append([]float64(nil), h.Bounds...),
				Counts:   append([]int(nil), h.Counts...),
				Total:    h.Total(),
				SumMs:    h.Sum(),
			},
		}
	}
	return out
}
