package service

import (
	"context"
	"testing"

	"repro/internal/exec"
	"repro/internal/rdf"
	"repro/internal/store"
)

// buildStarServiceStore builds a store with enough star structure that a
// three-pattern hub query both answers non-trivially and is
// leapfrog-eligible.
func buildStarServiceStore(t testing.TB) *store.Store {
	t.Helper()
	b := store.NewBuilder()
	iri := rdf.NewIRI
	add := func(s, p, o rdf.Term) {
		t.Helper()
		if err := b.Add(rdf.NewTriple(s, p, o)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 20; i++ {
		h := iri(rdf.NewIRI("http://x/hub").Value + string(rune('a'+i)))
		add(h, iri("http://x/p1"), rdf.NewInteger(int64(i)))
		add(h, iri("http://x/p2"), rdf.NewLiteral("x"))
		if i%4 == 0 {
			add(h, iri("http://x/p3"), rdf.NewLiteral("y"))
		}
	}
	return b.Build()
}

const starServiceQuery = `SELECT * WHERE {
  ?h <http://x/p1> ?a .
  ?h <http://x/p2> ?b .
  ?h <http://x/p3> ?c .
}`

// TestColumnarService: a service configured with the columnar engine (and
// leapfrog) answers identically to the streaming default and reports its
// kernel counters through Stats.
func TestColumnarService(t *testing.T) {
	st := buildStarServiceStore(t)
	ref := New(st, "", Options{Exec: exec.Options{}})
	col := New(st, "", Options{Exec: exec.Options{Mode: exec.Columnar}})
	lf := New(st, "", Options{Exec: exec.Options{Mode: exec.Columnar, Leapfrog: true}})

	ctx := context.Background()
	want, err := ref.Query(ctx, starServiceQuery, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := col.Query(ctx, starServiceQuery, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Result.Rows) != len(want.Result.Rows) ||
		got.Result.Cout != want.Result.Cout || got.Result.Work != want.Result.Work {
		t.Fatalf("columnar service diverges: %d rows cout=%v work=%v, want %d rows cout=%v work=%v",
			len(got.Result.Rows), got.Result.Cout, got.Result.Work,
			len(want.Result.Rows), want.Result.Cout, want.Result.Work)
	}
	lfOut, err := lf.Query(ctx, starServiceQuery, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(lfOut.Result.Rows) != len(want.Result.Rows) {
		t.Fatalf("leapfrog service rows = %d, want %d", len(lfOut.Result.Rows), len(want.Result.Rows))
	}

	refStats, colStats, lfStats := ref.Stats(), col.Stats(), lf.Stats()
	if refStats.Engine.Mode != "streaming" || refStats.Engine.Kernels != (KernelStats{}) {
		t.Fatalf("streaming service engine stats: %+v", refStats.Engine)
	}
	if colStats.Engine.Mode != "columnar" || colStats.Engine.Kernels.Batches == 0 {
		t.Fatalf("columnar service engine stats: %+v", colStats.Engine)
	}
	if !lfStats.Engine.Leapfrog || lfStats.Engine.Kernels.LeapfrogRows == 0 {
		t.Fatalf("leapfrog service engine stats: %+v", lfStats.Engine)
	}
}

// TestEngineVariantCacheKeys: services with different engine configurations
// derive distinct plan-cache keys from the same query text, and the
// streaming default keeps the historical key format.
func TestEngineVariantCacheKeys(t *testing.T) {
	cases := []struct {
		opts exec.Options
		want string
	}{
		{exec.Options{}, ""},
		{exec.Options{Mode: exec.Materializing}, "materializing"},
		{exec.Options{Mode: exec.Columnar}, "columnar"},
		{exec.Options{Mode: exec.Columnar, Leapfrog: true}, "columnar+leapfrog"},
	}
	seen := map[string]bool{}
	for _, c := range cases {
		if got := engineVariant(c.opts); got != c.want {
			t.Fatalf("engineVariant(%+v) = %q, want %q", c.opts, got, c.want)
		}
		if seen[engineVariant(c.opts)] {
			t.Fatalf("variant %q not unique", c.want)
		}
		seen[engineVariant(c.opts)] = true
	}
	// Each variant service still caches within itself.
	st := buildStarServiceStore(t)
	svc := New(st, "", Options{Exec: exec.Options{Mode: exec.Columnar, Leapfrog: true}})
	ctx := context.Background()
	if _, err := svc.Query(ctx, starServiceQuery, nil); err != nil {
		t.Fatal(err)
	}
	out, err := svc.Query(ctx, starServiceQuery, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !out.CacheHit {
		t.Fatal("second identical query missed the plan cache")
	}
	if svc.Stats().Engine.Kernels.LeapfrogRows == 0 {
		t.Fatal("cached leapfrog plan did not execute the leapfrog operator")
	}
}
