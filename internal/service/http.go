package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"net/http"
	"strconv"

	"repro/internal/obs"
	"repro/internal/rdf"
	"repro/internal/sparql"
)

// This file implements the service's JSON HTTP API:
//
//	POST /query    {"query": "...", "bindings": {...}, "max_rows": n}
//	POST /prepare  {"name": "...", "query": "..."}
//	POST /execute  {"name": "...", "bindings": {...}}            (single)
//	POST /execute  {"name": "...", "batch": [{...}, {...}]}      (batch)
//	POST /reload   {"path": "new.snap"}
//	POST /update   {"update": "INSERT DATA { ... }"}
//	GET  /stats
//	GET  /healthz
//
// Binding values use N-Triples term syntax ("<http://x/T1>", "\"lit\"").
// Overload rejections are 429, request errors 400, execution errors 500.

type queryRequest struct {
	Query    string            `json:"query"`
	Bindings map[string]string `json:"bindings,omitempty"`
	MaxRows  int               `json:"max_rows,omitempty"`
	// Explain: "analyze" traces the execution and returns the EXPLAIN
	// ANALYZE listing and span tree alongside the result.
	Explain string `json:"explain,omitempty"`
}

type prepareRequest struct {
	Name  string `json:"name"`
	Query string `json:"query"`
}

type prepareResponse struct {
	Name   string   `json:"name"`
	Params []string `json:"params"`
	Text   string   `json:"text"`
}

type executeRequest struct {
	Name     string              `json:"name"`
	Bindings map[string]string   `json:"bindings,omitempty"`
	Batch    []map[string]string `json:"batch,omitempty"`
	MaxRows  int                 `json:"max_rows,omitempty"`
	// Explain: "analyze" traces the execution (single-binding form only).
	Explain string `json:"explain,omitempty"`
}

// resultPayload is one execution's JSON rendering. Rows are truncated to
// MaxRows when requested; RowCount always reports the full result size.
type resultPayload struct {
	Vars          []string   `json:"vars"`
	Rows          [][]string `json:"rows"`
	RowCount      int        `json:"row_count"`
	Truncated     bool       `json:"truncated,omitempty"`
	Cout          float64    `json:"cout"`
	Work          float64    `json:"work"`
	Scanned       int        `json:"scanned"`
	DurationUs    int64      `json:"duration_us"`
	PlanSignature string     `json:"plan_signature"`
	CacheHit      bool       `json:"cache_hit"`
	Generation    uint64     `json:"generation"`
	// ExplainAnalyze is the rendered EXPLAIN ANALYZE listing and Spans the
	// span tree, both present only when the request asked for
	// explain=analyze.
	ExplainAnalyze string    `json:"explain_analyze,omitempty"`
	Spans          *obs.Span `json:"spans,omitempty"`
}

type executeResponse struct {
	Results []resultPayload `json:"results"`
}

type reloadRequest struct {
	Path string `json:"path"`
}

type updateRequest struct {
	Update string `json:"update"`
}

type reloadResponse struct {
	Generation uint64 `json:"generation"`
	Triples    int    `json:"triples"`
}

type healthResponse struct {
	Status     string `json:"status"`
	Triples    int    `json:"triples"`
	Generation uint64 `json:"generation"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// Handler returns the service's HTTP API as an http.Handler, suitable for
// cmd/served and for in-process httptest servers.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query", s.handleQuery)
	mux.HandleFunc("POST /prepare", s.handlePrepare)
	mux.HandleFunc("POST /execute", s.handleExecute)
	mux.HandleFunc("POST /reload", s.handleReload)
	mux.HandleFunc("POST /update", s.handleUpdate)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /trace/recent", s.handleTraceRecent)
	return mux
}

func (s *Service) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if !decodeBody(w, r, &req) {
		return
	}
	b, err := parseBindingMap(req.Bindings)
	if err != nil {
		writeError(w, badInput(err))
		return
	}
	ro, err := parseExplain(req.Explain)
	if err != nil {
		writeError(w, err)
		return
	}
	out, err := s.QueryWith(r.Context(), req.Query, b, ro)
	if err != nil {
		writeError(w, err)
		return
	}
	defer out.Close()
	writeJSON(w, http.StatusOK, payload(out, req.MaxRows))
}

// parseExplain maps a request's explain field to RunOptions.
func parseExplain(v string) (RunOptions, error) {
	switch v {
	case "":
		return RunOptions{}, nil
	case "analyze":
		return RunOptions{Analyze: true}, nil
	default:
		return RunOptions{}, badInput(fmt.Errorf("unknown explain mode %q (want \"analyze\")", v))
	}
}

func (s *Service) handlePrepare(w http.ResponseWriter, r *http.Request) {
	var req prepareRequest
	if !decodeBody(w, r, &req) {
		return
	}
	p, err := s.Prepare(req.Name, req.Query)
	if err != nil {
		writeError(w, err)
		return
	}
	params := make([]string, len(p.Params))
	for i, pr := range p.Params {
		params[i] = string(pr)
	}
	writeJSON(w, http.StatusOK, prepareResponse{Name: p.Name, Params: params, Text: p.Text})
}

func (s *Service) handleExecute(w http.ResponseWriter, r *http.Request) {
	var req executeRequest
	if !decodeBody(w, r, &req) {
		return
	}
	p, ok := s.Lookup(req.Name)
	if !ok {
		writeError(w, badInput(fmt.Errorf("unknown prepared template %q", req.Name)))
		return
	}
	if len(req.Batch) > 0 && req.Bindings != nil {
		writeError(w, badInput(errors.New("use either bindings or batch, not both")))
		return
	}
	ro, err := parseExplain(req.Explain)
	if err != nil {
		writeError(w, err)
		return
	}
	if ro.Analyze && len(req.Batch) > 0 {
		writeError(w, badInput(errors.New("explain=analyze supports single executions only")))
		return
	}
	if ro.Analyze {
		b, err := parseBindingMap(req.Bindings)
		if err != nil {
			writeError(w, badInput(err))
			return
		}
		out, err := s.ExecuteWith(r.Context(), p, b, ro)
		if err != nil {
			writeError(w, err)
			return
		}
		defer out.Close()
		writeJSON(w, http.StatusOK, payload(out, req.MaxRows))
		return
	}
	batch := req.Batch
	if len(batch) == 0 {
		batch = []map[string]string{req.Bindings}
	}
	bindings := make([]sparql.Binding, len(batch))
	for i, m := range batch {
		b, err := parseBindingMap(m)
		if err != nil {
			writeError(w, badInput(fmt.Errorf("batch item %d: %w", i, err)))
			return
		}
		bindings[i] = b
	}
	outs, err := s.ExecuteBatch(r.Context(), p, bindings)
	if err != nil {
		writeError(w, err)
		return
	}
	resp := executeResponse{Results: make([]resultPayload, len(outs))}
	for i, out := range outs {
		resp.Results[i] = payload(out, req.MaxRows)
		out.Close()
	}
	if len(req.Batch) == 0 {
		// Single-binding form: return the bare result object.
		writeJSON(w, http.StatusOK, resp.Results[0])
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Service) handleReload(w http.ResponseWriter, r *http.Request) {
	if !s.opts.AllowReload {
		writeJSON(w, http.StatusForbidden, errorResponse{Error: "reload disabled (enable with Options.AllowReload / served -allow-reload)"})
		return
	}
	var req reloadRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Path == "" {
		writeError(w, badInput(errors.New("missing path")))
		return
	}
	gen, triples, err := s.Reload(req.Path)
	if err != nil {
		// A path the operator got wrong is a client error; an unreadable or
		// corrupt file is a server-side data problem and stays a 500.
		if errors.Is(err, fs.ErrNotExist) {
			err = badInput(err)
		}
		writeError(w, fmt.Errorf("reload %s: %w", req.Path, err))
		return
	}
	writeJSON(w, http.StatusOK, reloadResponse{Generation: gen, Triples: triples})
}

func (s *Service) handleUpdate(w http.ResponseWriter, r *http.Request) {
	if !s.opts.AllowUpdate {
		writeJSON(w, http.StatusForbidden, errorResponse{Error: "updates disabled (enable with Options.AllowUpdate / served -allow-update)"})
		return
	}
	var req updateRequest
	if !decodeBodyLimit(w, r, &req, maxUpdateBodyBytes) {
		return
	}
	if req.Update == "" {
		writeError(w, badInput(errors.New("missing update")))
		return
	}
	res, err := s.Update(r.Context(), req.Update)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Service) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// traceRecentResponse is the GET /trace/recent payload: the lifetime
// retained-trace count plus up to n retained traces, newest first.
type traceRecentResponse struct {
	Total  uint64            `json:"total"`
	Traces []*obs.QueryTrace `json:"traces"`
}

func (s *Service) handleTraceRecent(w http.ResponseWriter, r *http.Request) {
	n := 0
	if v := r.URL.Query().Get("n"); v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil {
			writeError(w, badInput(fmt.Errorf("invalid n %q: %w", v, err)))
			return
		}
		n = parsed
	}
	traces := s.ring.Recent(n)
	if traces == nil {
		traces = []*obs.QueryTrace{}
	}
	writeJSON(w, http.StatusOK, traceRecentResponse{Total: s.ring.Total(), Traces: traces})
}

func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, healthResponse{
		Status:     "ok",
		Triples:    s.Store().Len(),
		Generation: s.Generation(),
	})
}

// payload renders an outcome, truncating rows to maxRows when positive.
func payload(out *Outcome, maxRows int) resultPayload {
	res := out.Result
	vars := make([]string, len(res.Vars))
	for i, v := range res.Vars {
		vars[i] = "?" + string(v)
	}
	// Truncate before decoding so a small max_rows never pays to render a
	// huge result.
	raw := res.Rows
	truncated := false
	if maxRows > 0 && len(raw) > maxRows {
		raw = raw[:maxRows]
		truncated = true
	}
	rows := out.decodeRows(raw)
	return resultPayload{
		Vars:           vars,
		Rows:           rows,
		RowCount:       len(res.Rows),
		Truncated:      truncated,
		Cout:           res.Cout,
		Work:           res.Work,
		Scanned:        res.Scanned,
		DurationUs:     res.Duration.Microseconds(),
		PlanSignature:  out.Plan.Signature,
		CacheHit:       out.CacheHit,
		Generation:     out.Generation,
		ExplainAnalyze: out.Analyze,
		Spans:          out.Trace,
	}
}

// parseBindingMap converts the JSON binding map (param name -> N-Triples
// term) into a sparql.Binding.
func parseBindingMap(m map[string]string) (sparql.Binding, error) {
	if len(m) == 0 {
		return nil, nil
	}
	out := make(sparql.Binding, len(m))
	for name, src := range m {
		t, err := rdf.ParseTerm(src)
		if err != nil {
			return nil, fmt.Errorf("binding %s: %w", name, err)
		}
		out[sparql.Param(name)] = t
	}
	return out, nil
}

// maxBodyBytes caps request bodies: query texts and binding batches are
// small, and an unbounded body would let clients buy unbounded decode work
// before admission control sees the request. Updates carry bulk triple
// data, so /update gets its own, larger cap.
const (
	maxBodyBytes       = 1 << 20
	maxUpdateBodyBytes = 16 << 20
)

func decodeBody(w http.ResponseWriter, r *http.Request, dst any) bool {
	return decodeBodyLimit(w, r, dst, maxBodyBytes)
}

func decodeBodyLimit(w http.ResponseWriter, r *http.Request, dst any, limit int64) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, limit))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, badInput(fmt.Errorf("request body exceeds the %d-byte limit", tooBig.Limit)))
			return false
		}
		writeError(w, badInput(fmt.Errorf("invalid request body: %w", err)))
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError maps service errors onto HTTP statuses: overload to 429 (with
// a Retry-After hint), request errors to 400, everything else to 500. A
// cancelled client gets no response body (it is gone).
func writeError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrOverloaded):
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: err.Error()})
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		// The client dropped the request; nothing useful to write.
		writeJSON(w, statusClientClosedRequest, errorResponse{Error: err.Error()})
	case IsInputError(err):
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
	default:
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
	}
}

// statusClientClosedRequest is nginx's non-standard 499, the conventional
// code for "client closed request".
const statusClientClosedRequest = 499
