package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/rdf"
	"repro/internal/store"
)

func startTestServer(t *testing.T, opts Options) (*Service, *httptest.Server) {
	t.Helper()
	svc := New(buildTinyStore(t), "test", opts)
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(srv.Close)
	return svc, srv
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func getJSON(t *testing.T, url string, dst any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(dst); err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestHTTPQueryAndHealthz(t *testing.T) {
	_, srv := startTestServer(t, Options{})
	var health healthResponse
	if resp := getJSON(t, srv.URL+"/healthz", &health); resp.StatusCode != 200 {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	if health.Status != "ok" || health.Triples != 6 || health.Generation != 1 {
		t.Fatalf("health = %+v", health)
	}

	resp, body := postJSON(t, srv.URL+"/query", queryRequest{
		Query:    `SELECT ?f WHERE { %who <http://x/knows> ?f . } ORDER BY ?f`,
		Bindings: map[string]string{"who": "<http://x/alice>"},
	})
	if resp.StatusCode != 200 {
		t.Fatalf("query status %d: %s", resp.StatusCode, body)
	}
	var res resultPayload
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if res.RowCount != 2 || res.Rows[0][0] != "<http://x/bob>" || res.Vars[0] != "?f" {
		t.Fatalf("result = %+v", res)
	}
	if res.Generation != 1 || res.PlanSignature == "" {
		t.Fatalf("metadata missing: %+v", res)
	}
}

func TestHTTPPrepareExecuteBatchAndStats(t *testing.T) {
	_, srv := startTestServer(t, Options{})
	resp, body := postJSON(t, srv.URL+"/prepare", prepareRequest{
		Name:  "friends",
		Query: `SELECT ?f WHERE { %who <http://x/knows> ?f . } ORDER BY ?f`,
	})
	if resp.StatusCode != 200 {
		t.Fatalf("prepare status %d: %s", resp.StatusCode, body)
	}
	var prep prepareResponse
	if err := json.Unmarshal(body, &prep); err != nil {
		t.Fatal(err)
	}
	if len(prep.Params) != 1 || prep.Params[0] != "who" {
		t.Fatalf("prepare = %+v", prep)
	}

	// Single-binding form returns a bare result object.
	resp, body = postJSON(t, srv.URL+"/execute", executeRequest{
		Name:     "friends",
		Bindings: map[string]string{"who": "<http://x/alice>"},
	})
	if resp.StatusCode != 200 {
		t.Fatalf("execute status %d: %s", resp.StatusCode, body)
	}
	var single resultPayload
	if err := json.Unmarshal(body, &single); err != nil {
		t.Fatal(err)
	}
	if single.RowCount != 2 || single.CacheHit {
		t.Fatalf("single = %+v", single)
	}

	// Batch form; the repeated binding is a cache hit.
	resp, body = postJSON(t, srv.URL+"/execute", executeRequest{
		Name: "friends",
		Batch: []map[string]string{
			{"who": "<http://x/alice>"},
			{"who": "<http://x/bob>"},
		},
	})
	if resp.StatusCode != 200 {
		t.Fatalf("batch status %d: %s", resp.StatusCode, body)
	}
	var batch executeResponse
	if err := json.Unmarshal(body, &batch); err != nil {
		t.Fatal(err)
	}
	if len(batch.Results) != 2 || !batch.Results[0].CacheHit || batch.Results[1].RowCount != 1 {
		t.Fatalf("batch = %+v", batch)
	}

	var st Stats
	if resp := getJSON(t, srv.URL+"/stats", &st); resp.StatusCode != 200 {
		t.Fatalf("stats status %d", resp.StatusCode)
	}
	if st.Cache.Hits != 1 || st.Cache.Misses != 2 {
		t.Fatalf("cache stats = %+v", st.Cache)
	}
	if st.Requests["execute"].Count != 2 || st.Requests["execute"].LatencyMs.Total != 2 {
		t.Fatalf("request stats = %+v", st.Requests)
	}
	if len(st.Prepared) != 1 || st.Prepared[0] != "friends" {
		t.Fatalf("prepared list = %v", st.Prepared)
	}
	// A serial service still reports its pool/parallelism configuration.
	if st.Parallel.Parallelism != 1 || st.Parallel.Queries != 0 {
		t.Fatalf("parallel stats = %+v", st.Parallel)
	}
	if st.Pool.TokensInUse != 0 {
		t.Fatalf("pool stats = %+v (no request in flight)", st.Pool)
	}
}

func TestHTTPMaxRowsTruncation(t *testing.T) {
	_, srv := startTestServer(t, Options{})
	resp, body := postJSON(t, srv.URL+"/query", queryRequest{
		Query:   `SELECT * WHERE { ?s ?p ?o . }`,
		MaxRows: 2,
	})
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var res resultPayload
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.RowCount != 6 || !res.Truncated {
		t.Fatalf("truncation wrong: rows=%d count=%d truncated=%v", len(res.Rows), res.RowCount, res.Truncated)
	}
}

func TestHTTPErrors(t *testing.T) {
	svc, srv := startTestServer(t, Options{Workers: 1, QueueDepth: -1})

	// Unknown template.
	if resp, _ := postJSON(t, srv.URL+"/execute", executeRequest{Name: "nope"}); resp.StatusCode != 400 {
		t.Fatalf("unknown template: status %d", resp.StatusCode)
	}
	// Malformed term.
	if resp, _ := postJSON(t, srv.URL+"/query", queryRequest{
		Query:    `SELECT ?f WHERE { %who <http://x/knows> ?f . }`,
		Bindings: map[string]string{"who": "not-a-term"},
	}); resp.StatusCode != 400 {
		t.Fatalf("bad term: status %d", resp.StatusCode)
	}
	// Parse error.
	if resp, _ := postJSON(t, srv.URL+"/query", queryRequest{Query: "SELECT WHERE {"}); resp.StatusCode != 400 {
		t.Fatalf("parse error: status %d", resp.StatusCode)
	}
	// Unknown JSON field.
	resp, err := http.Post(srv.URL+"/query", "application/json", bytes.NewReader([]byte(`{"nope": 1}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("unknown field: status %d", resp.StatusCode)
	}

	// Overload: occupy the single worker, no queue configured.
	release, err := svc.admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	resp2, body := postJSON(t, srv.URL+"/query", queryRequest{Query: `SELECT * WHERE { ?s ?p ?o . }`})
	if resp2.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overload: status %d body %s", resp2.StatusCode, body)
	}
	if resp2.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	release()
}

func TestHTTPReloadDisabledByDefault(t *testing.T) {
	_, srv := startTestServer(t, Options{})
	if resp, _ := postJSON(t, srv.URL+"/reload", reloadRequest{Path: "/nope"}); resp.StatusCode != http.StatusForbidden {
		t.Fatalf("reload without AllowReload: status %d", resp.StatusCode)
	}
}

func TestHTTPReload(t *testing.T) {
	svc, srv := startTestServer(t, Options{AllowReload: true})

	// Write a one-triple snapshot to disk and hot-swap it in.
	b := store.NewBuilder()
	if err := b.Add(rdf.NewTriple(rdf.NewIRI("http://x/dave"), rdf.NewIRI("http://x/knows"), rdf.NewIRI("http://x/erin"))); err != nil {
		t.Fatal(err)
	}
	st := b.Build()
	path := filepath.Join(t.TempDir(), "v2.snap")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.WriteSnapshot(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	resp, body := postJSON(t, srv.URL+"/reload", reloadRequest{Path: path})
	if resp.StatusCode != 200 {
		t.Fatalf("reload status %d: %s", resp.StatusCode, body)
	}
	var rl reloadResponse
	if err := json.Unmarshal(body, &rl); err != nil {
		t.Fatal(err)
	}
	if rl.Generation != 2 || rl.Triples != 1 {
		t.Fatalf("reload = %+v", rl)
	}
	if svc.Generation() != 2 {
		t.Fatalf("service generation = %d", svc.Generation())
	}

	// Queries now run against the new snapshot.
	resp, body = postJSON(t, srv.URL+"/query", queryRequest{Query: `SELECT * WHERE { ?s <http://x/knows> ?o . }`})
	if resp.StatusCode != 200 {
		t.Fatalf("post-reload query status %d: %s", resp.StatusCode, body)
	}
	var res resultPayload
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if res.RowCount != 1 || res.Generation != 2 {
		t.Fatalf("post-reload result = %+v", res)
	}

	// Reloading a missing file fails without touching the served snapshot.
	resp, _ = postJSON(t, srv.URL+"/reload", reloadRequest{Path: filepath.Join(t.TempDir(), "missing.snap")})
	if resp.StatusCode != 400 {
		t.Fatalf("missing reload: status %d", resp.StatusCode)
	}
	if svc.Generation() != 2 {
		t.Fatal("failed reload must not bump the generation")
	}
}
