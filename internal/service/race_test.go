package service

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/bsbm"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/rdf"
	"repro/internal/snb"
	"repro/internal/sparql"
	"repro/internal/store"
)

// raceWorkItem is one (template, binding) pair of the mixed workload.
type raceWorkItem struct {
	name string
	prep *Prepared
	bind sparql.Binding
	key  string
}

// buildMixedWorkload prepares every BSBM and SNB template on svc and
// samples bindings for each from the shared store's actual domains.
func buildMixedWorkload(t *testing.T, svc *Service, st *store.Store, perTemplate int) []raceWorkItem {
	t.Helper()
	templates := []struct {
		name string
		text string
	}{
		{"bsbm-q1", bsbm.QueryQ1Text},
		{"bsbm-q2", bsbm.QueryQ2Text},
		{"bsbm-q3", bsbm.QueryQ3Text},
		{"bsbm-q4", bsbm.QueryQ4Text},
		{"snb-q1", snb.QueryQ1Text},
		{"snb-q2", snb.QueryQ2Text},
		{"snb-q3", snb.QueryQ3Text},
	}
	var items []raceWorkItem
	for ti, tm := range templates {
		p, err := svc.Prepare(tm.name, tm.text)
		if err != nil {
			t.Fatalf("%s: %v", tm.name, err)
		}
		dom, err := core.ExtractDomain(p.tmpl, st)
		if err != nil {
			t.Fatalf("%s: %v", tm.name, err)
		}
		for bi, b := range core.NewUniformSampler(dom, int64(100+ti)).Sample(perTemplate) {
			items = append(items, raceWorkItem{
				name: tm.name,
				prep: p,
				bind: b,
				key:  fmt.Sprintf("%s#%d", tm.name, bi),
			})
		}
	}
	return items
}

// canonical renders an outcome into one comparable string: plan signature,
// accounting and every decoded row.
func canonical(out *Outcome) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "sig=%s cout=%v work=%v scanned=%d rows=%d\n",
		out.Plan.Signature, out.Result.Cout, out.Result.Work, out.Result.Scanned, len(out.Result.Rows))
	for _, row := range out.DecodedRows() {
		sb.WriteString(strings.Join(row, "\t"))
		sb.WriteByte('\n')
	}
	return sb.String()
}

// TestConcurrentExecutionMatchesSerial runs the mixed BSBM/SNB workload
// from many goroutines against one shared store and plan cache (run it
// under -race) and asserts every result is byte-identical to the serial
// reference execution.
func TestConcurrentExecutionMatchesSerial(t *testing.T) {
	st := buildMixedStore(t)
	svc := New(st, "", Options{Workers: 4, QueueDepth: 1 << 16})
	items := buildMixedWorkload(t, svc, st, 5)

	// Serial reference, through the very same service path.
	want := make(map[string]string, len(items))
	for _, it := range items {
		out, err := svc.Execute(context.Background(), it.prep, it.bind)
		if err != nil {
			t.Fatalf("serial %s: %v", it.key, err)
		}
		want[it.key] = canonical(out)
	}

	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Each goroutine walks the workload from a different offset so
			// cache hits, misses and evictions interleave across templates.
			for i := range items {
				it := items[(i+g*7)%len(items)]
				out, err := svc.Execute(context.Background(), it.prep, it.bind)
				if err != nil {
					errs <- fmt.Errorf("goroutine %d %s: %v", g, it.key, err)
					return
				}
				if got := canonical(out); got != want[it.key] {
					errs <- fmt.Errorf("goroutine %d %s: result differs from serial\ngot:\n%s\nwant:\n%s",
						g, it.key, got, want[it.key])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	stats := svc.Stats()
	if stats.Cache.Hits == 0 {
		t.Fatal("concurrent run should produce plan-cache hits")
	}
	if stats.Pool.Rejected != 0 {
		t.Fatalf("queue was sized to never reject, got %d rejections", stats.Pool.Rejected)
	}
}

// TestConcurrentExecutionWithSwap hammers the service while snapshots are
// swapped underneath: every response must be internally consistent with
// the generation it reports.
func TestConcurrentExecutionWithSwap(t *testing.T) {
	stA := buildTinyStore(t) // 3 knows-edges
	b := store.NewBuilder()
	if err := b.Add(rdf.NewTriple(rdf.NewIRI("http://x/dave"), rdf.NewIRI("http://x/knows"), rdf.NewIRI("http://x/erin"))); err != nil {
		t.Fatal(err)
	}
	stB := b.Build() // 1 knows-edge

	svc := New(stA, "a", Options{Workers: 4, QueueDepth: 1 << 16})
	p, err := svc.Prepare("all", `SELECT ?s ?o WHERE { ?s <http://x/knows> ?o . } ORDER BY ?s ?o`)
	if err != nil {
		t.Fatal(err)
	}
	wantByGenParity := map[uint64]int{0: 1, 1: 3} // even gens: stB (1 row), odd: stA (3 rows)

	var wg sync.WaitGroup
	errs := make(chan error, 9)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				out, err := svc.Execute(context.Background(), p, nil)
				if err != nil {
					errs <- fmt.Errorf("goroutine %d: %v", g, err)
					return
				}
				if want := wantByGenParity[out.Generation%2]; len(out.Result.Rows) != want {
					errs <- fmt.Errorf("goroutine %d: generation %d returned %d rows, want %d",
						g, out.Generation, len(out.Result.Rows), want)
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		next := stB
		for i := 0; i < 50; i++ {
			svc.Swap(next, "swap")
			if next == stB {
				next = stA
			} else {
				next = stB
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestParallelMixedWorkloadRace runs one large scan-heavy query at
// Parallelism=8 concurrently with the PR-3 mixed BSBM/SNB workload against
// one shared store and one shared token pool (run under -race). Exec
// options use exact accounting (no EarlyStop), so every canonical result —
// rows, row order, Cout, Work, Scanned — must be byte-identical both
// across concurrent parallel executions and to the Parallelism=1 reference
// service: morsel-driven execution is bit-deterministic regardless of
// scheduling and of how many pool tokens each run managed to grab.
func TestParallelMixedWorkloadRace(t *testing.T) {
	st := buildMixedStore(t)
	mkOpts := func(par int) Options {
		return Options{
			Workers:     4,
			QueueDepth:  1 << 16,
			Parallelism: par,
			// Small morsels so the test-scale store genuinely splits.
			Exec: exec.Options{MorselSize: 128},
		}
	}
	svc := New(st, "", mkOpts(8))
	ref := New(st, "", mkOpts(1))
	items := buildMixedWorkload(t, svc, st, 3)
	refItems := buildMixedWorkload(t, ref, st, 3)

	const bigQuery = `SELECT * WHERE { ?s ?p ?o . }`

	// Serial reference canonicals, from the Parallelism=1 service.
	want := make(map[string]string, len(items))
	for i, it := range refItems {
		out, err := ref.Execute(context.Background(), it.prep, it.bind)
		if err != nil {
			t.Fatalf("reference %s: %v", it.key, err)
		}
		want[items[i].key] = canonical(out)
	}
	refBig, err := ref.Query(context.Background(), bigQuery, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantBig := canonical(refBig)

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := range items {
				it := items[(i+g*5)%len(items)]
				out, err := svc.Execute(context.Background(), it.prep, it.bind)
				if err != nil {
					errs <- fmt.Errorf("mixed goroutine %d %s: %v", g, it.key, err)
					return
				}
				if got := canonical(out); got != want[it.key] {
					errs <- fmt.Errorf("mixed goroutine %d %s: parallel result differs from serial\ngot:\n%s\nwant:\n%s",
						g, it.key, got, want[it.key])
					return
				}
			}
		}(g)
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				out, err := svc.Query(context.Background(), bigQuery, nil)
				if err != nil {
					errs <- fmt.Errorf("big goroutine %d: %v", g, err)
					return
				}
				if got := canonical(out); got != wantBig {
					errs <- fmt.Errorf("big goroutine %d iteration %d: result differs from serial", g, i)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	stats := svc.Stats()
	if stats.Parallel.Queries == 0 || stats.Parallel.Morsels == 0 {
		t.Fatalf("no parallel execution recorded: %+v", stats.Parallel)
	}
	if stats.Parallel.MaxWorkers > 8 {
		t.Fatalf("worker ceiling exceeded: %+v", stats.Parallel)
	}
	if stats.Pool.TokensInUse != 0 {
		t.Fatalf("%d tokens leaked", stats.Pool.TokensInUse)
	}
	if refStats := ref.Stats(); refStats.Parallel.Queries != 0 {
		t.Fatalf("Parallelism=1 service ran parallel operators: %+v", refStats.Parallel)
	}
}
