package service

import (
	"context"
	"reflect"
	"testing"
)

// algebraCacheQueries: one query per compositional construct, all
// answerable against buildTinyStore. Each has a distinct composed plan
// signature (lj/un/jn spines), so each must occupy its own cache entry.
var algebraCacheQueries = []struct {
	name string
	text string
}{
	{"optional", `SELECT ?p ?q ?a WHERE { ?p <http://x/knows> ?q . OPTIONAL { ?q <http://x/age> ?a . } } ORDER BY ?p ?q`},
	{"union", `SELECT ?s ?o WHERE { { ?s <http://x/knows> ?o . } UNION { ?o <http://x/knows> ?s . } } ORDER BY ?s ?o`},
	{"aggregate", `SELECT ?s (COUNT(*) AS ?n) WHERE { ?s <http://x/knows> ?o . } GROUP BY ?s ORDER BY ?s`},
}

// TestAlgebraPlanCachePerConstruct: every compositional construct caches
// its plan — the second execution of the same text is a cache hit with
// identical decoded rows — and distinct constructs occupy distinct
// entries (one miss each, never a false share).
func TestAlgebraPlanCachePerConstruct(t *testing.T) {
	svc := New(buildTinyStore(t), "", Options{})
	ctx := context.Background()
	for _, q := range algebraCacheQueries {
		out1, err := svc.Query(ctx, q.text, nil)
		if err != nil {
			t.Fatalf("%s: %v", q.name, err)
		}
		if out1.CacheHit {
			t.Fatalf("%s: first execution cannot be a cache hit", q.name)
		}
		out2, err := svc.Query(ctx, q.text, nil)
		if err != nil {
			t.Fatalf("%s: %v", q.name, err)
		}
		if !out2.CacheHit {
			t.Fatalf("%s: second execution should hit the plan cache", q.name)
		}
		if !reflect.DeepEqual(out1.DecodedRows(), out2.DecodedRows()) {
			t.Fatalf("%s: cached plan changed the rows:\nfirst:  %v\nsecond: %v",
				q.name, out1.DecodedRows(), out2.DecodedRows())
		}
	}
	st := svc.Stats()
	if want := uint64(len(algebraCacheQueries)); st.Cache.Misses != want || st.Cache.Hits != want {
		t.Fatalf("cache counters = %+v, want %d misses and %d hits", st.Cache, want, want)
	}
	if st.Cache.Size != len(algebraCacheQueries) {
		t.Fatalf("cache size = %d, want one entry per construct (%d)", st.Cache.Size, len(algebraCacheQueries))
	}
}

// TestServiceDecodesUnboundAsUndef: OPTIONAL rows with unbound cells
// survive response rendering — the service decodes the dict.None sentinel
// as "UNDEF" instead of panicking in Dict.Decode.
func TestServiceDecodesUnboundAsUndef(t *testing.T) {
	svc := New(buildTinyStore(t), "", Options{})
	// carol knows nobody, so joining her back as subject of the optional
	// pattern leaves ?b unbound on some rows.
	out, err := svc.Query(context.Background(),
		`SELECT ?s ?o ?b WHERE { ?s <http://x/knows> ?o . OPTIONAL { ?o <http://x/knows> ?b . } } ORDER BY ?s ?o ?b`, nil)
	if err != nil {
		t.Fatal(err)
	}
	rows := out.DecodedRows()
	var undef, bound int
	for _, r := range rows {
		if r[2] == "UNDEF" {
			undef++
		} else {
			bound++
		}
	}
	if undef == 0 || bound == 0 {
		t.Fatalf("want both UNDEF and bound optional cells, got rows %v", rows)
	}
}
