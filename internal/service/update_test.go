package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/store"
)

const probeQuery = `SELECT ?s ?o WHERE { ?s <http://x/knows> ?o . } ORDER BY ?s ?o`

func TestServiceUpdate(t *testing.T) {
	svc := New(buildTinyStore(t), "tiny", Options{})
	ctx := context.Background()

	before, err := svc.Query(ctx, probeQuery, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := svc.Update(ctx, `INSERT DATA { <http://x/dave> <http://x/knows> <http://x/erin> . }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Inserted != 1 || res.Deleted != 0 || res.PendingInserts != 1 || res.Compacted {
		t.Fatalf("unexpected result %+v", res)
	}
	if res.Generation != before.Generation+1 {
		t.Fatalf("generation = %d, want %d", res.Generation, before.Generation+1)
	}
	after, err := svc.Query(ctx, probeQuery, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(after.Result.Rows) != len(before.Result.Rows)+1 {
		t.Fatalf("rows = %d, want %d", len(after.Result.Rows), len(before.Result.Rows)+1)
	}
	if after.Generation != res.Generation {
		t.Fatalf("query ran against generation %d, want %d", after.Generation, res.Generation)
	}
	// Delete one base edge; both changes are now pending on the overlay.
	res, err = svc.Update(ctx, `DELETE DATA { <http://x/alice> <http://x/knows> <http://x/bob> . }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.PendingInserts != 1 || res.PendingDeletes != 1 {
		t.Fatalf("pending = %d/%d, want 1/1", res.PendingInserts, res.PendingDeletes)
	}
	st := svc.Stats()
	if st.Store.PendingInserts != 1 || st.Store.PendingDeletes != 1 ||
		st.Store.Triples != st.Store.BaseTriples+st.Store.PendingInserts-st.Store.PendingDeletes {
		t.Fatalf("stats store = %+v", st.Store)
	}
	if st.Updates.Updates != 2 || st.Updates.Compactions != 0 {
		t.Fatalf("stats updates = %+v", st.Updates)
	}
	// Explicit compaction folds the overlay.
	gen := svc.Compact()
	if gen <= res.Generation {
		t.Fatalf("Compact generation = %d", gen)
	}
	st = svc.Stats()
	if st.Store.PendingInserts != 0 || st.Store.PendingDeletes != 0 || st.Updates.Compactions != 1 {
		t.Fatalf("stats after compact = %+v / %+v", st.Store, st.Updates)
	}
	final, err := svc.Query(ctx, probeQuery, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(final.Result.Rows) != len(after.Result.Rows)-1 {
		t.Fatalf("rows after delete+compact = %d, want %d", len(final.Result.Rows), len(after.Result.Rows)-1)
	}
	// Parse errors are input errors; nothing is published.
	genBefore := svc.Generation()
	if _, err := svc.Update(ctx, `INSERT garbage`); err == nil || !IsInputError(err) {
		t.Fatalf("bad update error = %v", err)
	}
	if svc.Generation() != genBefore {
		t.Fatal("failed update must not publish a snapshot")
	}
	// A semantically empty update (re-inserting an existing triple) keeps
	// the current snapshot — and therefore the plan cache — instead of
	// publishing an identical generation.
	warm, err := svc.Query(ctx, probeQuery, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err = svc.Update(ctx, `INSERT DATA { <http://x/alice> <http://x/knows> <http://x/carol> . }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Generation != genBefore || res.Compacted {
		t.Fatalf("no-op update result = %+v, want generation %d", res, genBefore)
	}
	cached, err := svc.Query(ctx, probeQuery, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cached.Generation != warm.Generation || !cached.CacheHit {
		t.Fatalf("no-op update must preserve the snapshot and plan cache: gen %d vs %d, hit=%v",
			cached.Generation, warm.Generation, cached.CacheHit)
	}
}

func TestServiceUpdateAutoCompaction(t *testing.T) {
	svc := New(buildTinyStore(t), "", Options{CompactThreshold: 2})
	ctx := context.Background()
	res, err := svc.Update(ctx, `INSERT DATA { <http://x/u1> <http://x/knows> <http://x/u2> . }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Compacted || res.PendingInserts != 1 {
		t.Fatalf("first update should stay an overlay: %+v", res)
	}
	res, err = svc.Update(ctx, `INSERT DATA { <http://x/u3> <http://x/knows> <http://x/u4> . }`)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Compacted || res.PendingInserts != 0 || res.PendingDeletes != 0 {
		t.Fatalf("threshold update should compact: %+v", res)
	}
	if st := svc.Stats(); st.Updates.Compactions != 1 || st.Updates.CompactThreshold != 2 {
		t.Fatalf("stats = %+v", st.Updates)
	}
	// Negative threshold never auto-compacts.
	svc2 := New(buildTinyStore(t), "", Options{CompactThreshold: -1})
	for i := 0; i < 5; i++ {
		res, err = svc2.Update(ctx, fmt.Sprintf(`INSERT DATA { <http://x/n%d> <http://x/knows> <http://x/m%d> . }`, i, i))
		if err != nil {
			t.Fatal(err)
		}
		if res.Compacted {
			t.Fatal("negative threshold must never compact")
		}
	}
	if res.PendingInserts != 5 {
		t.Fatalf("pending inserts = %d, want 5", res.PendingInserts)
	}
}

func TestHTTPUpdate(t *testing.T) {
	post := func(srv *httptest.Server, path, body string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Post(srv.URL+path, "application/json", bytes.NewBufferString(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return resp, buf.Bytes()
	}
	// Disabled by default.
	locked := httptest.NewServer(New(buildTinyStore(t), "", Options{}).Handler())
	defer locked.Close()
	resp, _ := post(locked, "/update", `{"update": "INSERT DATA { <http://x/a> <http://x/p> <http://x/b> . }"}`)
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("update without AllowUpdate = %d, want 403", resp.StatusCode)
	}

	srv := httptest.NewServer(New(buildTinyStore(t), "", Options{AllowUpdate: true}).Handler())
	defer srv.Close()
	resp, body := post(srv, "/update", `{"update": "INSERT DATA { <http://x/dave> <http://x/knows> <http://x/erin> . }"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("update = %d: %s", resp.StatusCode, body)
	}
	var res UpdateResult
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if res.PendingInserts != 1 || res.Generation != 2 {
		t.Fatalf("update result = %+v", res)
	}
	// The inserted edge is queryable and /stats reports the delta.
	resp, body = post(srv, "/query", fmt.Sprintf(`{"query": %q}`, probeQuery))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query = %d: %s", resp.StatusCode, body)
	}
	var qr struct {
		RowCount   int    `json:"row_count"`
		Generation uint64 `json:"generation"`
	}
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.RowCount != 4 || qr.Generation != 2 {
		t.Fatalf("query after update = %+v", qr)
	}
	statsResp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer statsResp.Body.Close()
	var st Stats
	if err := json.NewDecoder(statsResp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Store.PendingInserts != 1 || st.Updates.Updates != 1 {
		t.Fatalf("stats = %+v / %+v", st.Store, st.Updates)
	}
	// Malformed updates are 400s.
	resp, _ = post(srv, "/update", `{"update": "INSERT nope"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad update = %d, want 400", resp.StatusCode)
	}
	resp, _ = post(srv, "/update", `{}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty update = %d, want 400", resp.StatusCode)
	}
}

// TestUpdateQueryReloadRace is the writers-vs-readers MVCC check: one
// writer commits deltas (with auto-compaction firing along the way) and
// occasionally reloads the original dataset from disk, while reader
// goroutines hammer the probe query. Every observed result must be
// byte-identical to the result the writer recorded for that snapshot
// generation — a reader can never see a half-applied update or a mix of
// two snapshots. Run under -race.
func TestUpdateQueryReloadRace(t *testing.T) {
	base := buildTinyStore(t)
	ntPath := filepath.Join(t.TempDir(), "base.nt")
	var nt bytes.Buffer
	matches, _ := base.Match(store.Pattern{})
	for _, tr := range matches {
		d := base.Dict()
		fmt.Fprintf(&nt, "%s %s %s .\n", d.Decode(tr.S), d.Decode(tr.P), d.Decode(tr.O))
	}
	if err := os.WriteFile(ntPath, nt.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	svc := New(base, "tiny", Options{Workers: 4, QueueDepth: 1 << 16, CompactThreshold: 4})
	ctx := context.Background()

	var mu sync.Mutex
	expected := make(map[uint64]string)
	record := func() error {
		out, err := svc.Query(ctx, probeQuery, nil)
		if err != nil {
			return err
		}
		mu.Lock()
		expected[out.Generation] = canonical(out)
		mu.Unlock()
		return nil
	}
	if err := record(); err != nil {
		t.Fatal(err)
	}

	type observation struct {
		gen uint64
		got string
	}
	const readers = 6
	obsCh := make(chan []observation, readers)
	errCh := make(chan error, readers+1)
	var readerWG, writerWG sync.WaitGroup
	readersDone := make(chan struct{})
	for g := 0; g < readers; g++ {
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			var obs []observation
			defer func() { obsCh <- obs }()
			for i := 0; i < 150; i++ {
				out, err := svc.Query(ctx, probeQuery, nil)
				if err != nil {
					errCh <- err
					return
				}
				obs = append(obs, observation{gen: out.Generation, got: canonical(out)})
			}
		}()
	}

	// The single writer: inserts, deletes, compactions and reloads, each
	// followed by recording the published generation's expected result. It
	// keeps mutating until every reader has finished its observations (or
	// an iteration cap, as a hang backstop).
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		for i := 0; i < 5000; i++ {
			if i >= 20 { // always run enough iterations to hit compaction
				select {
				case <-readersDone:
					return
				default:
				}
			}
			var text string
			if i%3 == 2 {
				text = fmt.Sprintf(`DELETE DATA { <http://x/w%d> <http://x/knows> <http://x/v%d> . }`, i-1, i-1)
			} else {
				text = fmt.Sprintf(`INSERT DATA { <http://x/w%d> <http://x/knows> <http://x/v%d> . }`, i, i)
			}
			if _, err := svc.Update(ctx, text); err != nil {
				errCh <- fmt.Errorf("writer update %d: %w", i, err)
				return
			}
			if err := record(); err != nil {
				errCh <- fmt.Errorf("writer record %d: %w", i, err)
				return
			}
			if i%13 == 12 {
				if _, _, err := svc.Reload(ntPath); err != nil {
					errCh <- fmt.Errorf("writer reload %d: %w", i, err)
					return
				}
				if err := record(); err != nil {
					errCh <- fmt.Errorf("writer record after reload %d: %w", i, err)
					return
				}
			}
		}
	}()

	readerWG.Wait()
	close(readersDone)
	writerWG.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	total := 0
	for g := 0; g < readers; g++ {
		for _, o := range <-obsCh {
			total++
			mu.Lock()
			want, ok := expected[o.gen]
			mu.Unlock()
			if !ok {
				t.Fatalf("reader observed unrecorded generation %d", o.gen)
			}
			if o.got != want {
				t.Fatalf("generation %d: reader result diverges from committed snapshot\ngot:\n%s\nwant:\n%s",
					o.gen, o.got, want)
			}
		}
	}
	if total == 0 {
		t.Fatal("readers made no observations")
	}
	if st := svc.Stats(); st.Updates.Compactions == 0 {
		t.Fatalf("test meant to exercise auto-compaction: %+v", st.Updates)
	}
}

func TestServiceUpdateWhere(t *testing.T) {
	svc := New(buildTinyStore(t), "tiny", Options{})
	ctx := context.Background()

	// Pattern-driven modification: retire alice's outgoing edges and
	// mark the removed peers, with the WHERE running against the current
	// snapshot under the same swap lock as ground updates.
	res, err := svc.Update(ctx, `
		DELETE { <http://x/alice> <http://x/knows> ?q . }
		INSERT { ?q <http://x/orphaned> "true" . }
		WHERE { <http://x/alice> <http://x/knows> ?q . }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.PendingDeletes != 2 || res.PendingInserts != 2 {
		t.Fatalf("pending = %d/%d, want 2/2", res.PendingInserts, res.PendingDeletes)
	}
	out, err := svc.Query(ctx, probeQuery, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Result.Rows) != 1 {
		t.Fatalf("knows rows after delete-where = %d, want 1", len(out.Result.Rows))
	}
	out, err = svc.Query(ctx, `SELECT ?q WHERE { ?q <http://x/orphaned> "true" . } ORDER BY ?q`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Result.Rows) != 2 {
		t.Fatalf("orphaned rows = %d, want 2", len(out.Result.Rows))
	}
	// A WHERE op matching nothing publishes no new generation.
	gen := svc.Generation()
	res, err = svc.Update(ctx, `DELETE WHERE { ?s <http://x/nosuch> ?o . }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Generation != gen || svc.Generation() != gen {
		t.Fatalf("no-match WHERE update published generation %d (was %d)", res.Generation, gen)
	}
}

func TestServiceStatsAlgebraKernels(t *testing.T) {
	svc := New(buildTinyStore(t), "tiny", Options{})
	ctx := context.Background()
	for _, q := range []string{
		`SELECT ?s ?a WHERE { ?s <http://x/knows> ?o . OPTIONAL { ?o <http://x/age> ?a . } }`,
		`SELECT ?s WHERE { { ?s <http://x/knows> ?o . } UNION { ?s <http://x/age> ?a . } }`,
		`SELECT ?o (COUNT(*) AS ?n) WHERE { ?s <http://x/knows> ?o . } GROUP BY ?o`,
	} {
		if _, err := svc.Query(ctx, q, nil); err != nil {
			t.Fatal(err)
		}
	}
	k := svc.Stats().Engine.Kernels
	if k.LeftJoinRows == 0 || k.UnionRows == 0 || k.AggGroups == 0 {
		t.Fatalf("algebra kernel counters not wired: %+v", k)
	}
}
