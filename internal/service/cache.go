package service

import (
	"container/list"
	"sync"
	"sync/atomic"

	"repro/internal/plan"
)

// planEntry is one cached compilation: the compiled query and its optimized
// plan. Both are immutable once built and may be executed concurrently
// against the snapshot they were compiled for, so a cache hit skips parsing,
// compilation and DPsub entirely.
type planEntry struct {
	key string
	c   *plan.Compiled
	p   *plan.Plan
}

// cacheCounters are the service-lifetime hit/miss/eviction counters. They
// live outside the cache itself so they survive snapshot swaps (each swap
// installs a fresh cache, since cached plans embed the old snapshot's
// dictionary IDs).
type cacheCounters struct {
	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
}

// planCache is a concurrency-safe LRU of plan entries keyed by
// plan.CacheKey. A non-positive capacity disables caching (every get is a
// miss, every put a no-op) — used to measure the cold path.
type planCache struct {
	counters *cacheCounters
	capacity int

	mu    sync.Mutex
	ll    *list.List // front = most recently used
	byKey map[string]*list.Element
}

func newPlanCache(capacity int, counters *cacheCounters) *planCache {
	return &planCache{
		counters: counters,
		capacity: capacity,
		ll:       list.New(),
		byKey:    make(map[string]*list.Element),
	}
}

// get returns the entry under key, marking it most recently used.
func (pc *planCache) get(key string) (*planEntry, bool) {
	if pc.capacity <= 0 {
		pc.counters.misses.Add(1)
		return nil, false
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	el, ok := pc.byKey[key]
	if !ok {
		pc.counters.misses.Add(1)
		return nil, false
	}
	pc.ll.MoveToFront(el)
	pc.counters.hits.Add(1)
	return el.Value.(*planEntry), true
}

// put inserts e, evicting the least recently used entry when full. A
// concurrent racer may have inserted the same key already; the existing
// entry wins (both were compiled from identical inputs).
func (pc *planCache) put(e *planEntry) {
	if pc.capacity <= 0 {
		return
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if el, ok := pc.byKey[e.key]; ok {
		pc.ll.MoveToFront(el)
		return
	}
	pc.byKey[e.key] = pc.ll.PushFront(e)
	for pc.ll.Len() > pc.capacity {
		last := pc.ll.Back()
		pc.ll.Remove(last)
		delete(pc.byKey, last.Value.(*planEntry).key)
		pc.counters.evictions.Add(1)
	}
}

// size returns the current number of cached entries.
func (pc *planCache) size() int {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.ll.Len()
}
