package service

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
)

// This file implements GET /metrics: the service's counters rendered in
// the Prometheus text exposition format (version 0.0.4), with no client
// library — the format is plain text and this service's metric set is
// small and fixed. Every counter already surfaced by /stats is mapped:
// store/snapshot gauges, update and compaction counters, plan-cache
// counters, the token pool, parallelism telemetry, kernel and algebra
// counters, tracing counters, and the per-endpoint request counts and
// latency histograms (cumulative `le` buckets with +Inf, _sum in seconds,
// _count).

// handleMetrics renders the exposition from one Stats snapshot.
func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.Stats()
	var b strings.Builder
	m := metricWriter{b: &b}

	m.gauge("repro_store_triples", "Triples in the current snapshot.", float64(st.Store.Triples))
	m.gauge("repro_store_base_triples", "Triples in the snapshot's fully indexed base.", float64(st.Store.BaseTriples))
	m.gauge("repro_store_pending_inserts", "Pending delta inserts merged in on read.", float64(st.Store.PendingInserts))
	m.gauge("repro_store_pending_deletes", "Pending delta deletes merged in on read.", float64(st.Store.PendingDeletes))
	m.counter("repro_store_generation", "Current snapshot generation (increments on every swap).", float64(st.Store.Generation))
	mapped := 0.0
	if st.Store.Backend == "mapped" {
		mapped = 1
	}
	m.gauge("repro_store_mapped", "1 when the current snapshot serves from an mmap-backed v4 file, 0 for heap.", mapped)
	m.gauge("repro_store_mapped_bytes", "Bytes of the snapshot file mappings backing the current store (0 for heap).", float64(st.Store.MappedBytes))
	m.gauge("repro_store_mappings_awaiting_unmap", "Retired mmap-backed generations still pinned by in-flight queries.", float64(st.Store.MappingsAwaitingUnmap))
	m.gauge("repro_store_shards", "Shard count in coordinator mode (0 for a single store).", float64(st.Store.Shards))
	if len(st.Store.PerShard) > 0 {
		m.header("repro_shard_triples", "Triples per shard.", "gauge")
		for i, ss := range st.Store.PerShard {
			m.shardLabeled("repro_shard_triples", i, float64(ss.Triples))
		}
		m.header("repro_shard_pending_inserts", "Pending delta inserts per shard.", "gauge")
		for i, ss := range st.Store.PerShard {
			m.shardLabeled("repro_shard_pending_inserts", i, float64(ss.PendingInserts))
		}
		m.header("repro_shard_pending_deletes", "Pending delta deletes per shard.", "gauge")
		for i, ss := range st.Store.PerShard {
			m.shardLabeled("repro_shard_pending_deletes", i, float64(ss.PendingDeletes))
		}
		m.header("repro_shard_mapped_bytes", "Bytes of the snapshot file mapping backing each shard (0 for heap).", "gauge")
		for i, ss := range st.Store.PerShard {
			m.shardLabeled("repro_shard_mapped_bytes", i, float64(ss.MappedBytes))
		}
	}

	m.counter("repro_updates_total", "Applied update requests.", float64(st.Updates.Updates))
	m.counter("repro_compactions_total", "Snapshots that folded the pending delta into a fresh store.", float64(st.Updates.Compactions))
	m.gauge("repro_compact_threshold", "Delta size at which the next update compacts (0 = disabled).", float64(st.Updates.CompactThreshold))

	m.gauge("repro_plan_cache_size", "Plan cache entries in the current snapshot's cache.", float64(st.Cache.Size))
	m.gauge("repro_plan_cache_capacity", "Plan cache entry capacity.", float64(st.Cache.Capacity))
	m.counter("repro_plan_cache_hits_total", "Plan cache hits.", float64(st.Cache.Hits))
	m.counter("repro_plan_cache_misses_total", "Plan cache misses.", float64(st.Cache.Misses))
	m.counter("repro_plan_cache_evictions_total", "Plan cache evictions.", float64(st.Cache.Evictions))

	m.gauge("repro_pool_workers", "Token pool size (admission + intra-query workers).", float64(st.Pool.Workers))
	m.gauge("repro_pool_queue_depth", "Admission queue capacity.", float64(st.Pool.QueueDepth))
	m.gauge("repro_pool_in_flight", "Requests currently executing.", float64(st.Pool.InFlight))
	m.gauge("repro_pool_queued", "Requests currently waiting for a token.", float64(st.Pool.Queued))
	m.gauge("repro_pool_tokens_in_use", "Pool tokens currently held.", float64(st.Pool.TokensInUse))
	m.counter("repro_pool_rejected_total", "Requests rejected with 429 by admission control.", float64(st.Pool.Rejected))
	m.counter("repro_pool_token_waits_total", "Admissions that had to wait for a token.", float64(st.Pool.TokenWaits))
	m.counter("repro_pool_token_wait_seconds_total", "Total time admissions spent waiting for tokens.", st.Pool.TokenWaitMs/1e3)

	m.gauge("repro_parallelism", "Configured per-query worker ceiling.", float64(st.Parallel.Parallelism))
	m.counter("repro_parallel_queries_total", "Queries that ran at least one parallel operator.", float64(st.Parallel.Queries))
	m.counter("repro_parallel_morsels_total", "Morsels executed across all queries.", float64(st.Parallel.Morsels))
	m.gauge("repro_parallel_max_workers", "Largest per-query peak worker count observed.", float64(st.Parallel.MaxWorkers))

	k := st.Engine.Kernels
	m.counter("repro_kernel_batches_total", "Columnar batches processed.", float64(k.Batches))
	m.counter("repro_kernel_filter_rows_total", "Rows through columnar filter kernels.", float64(k.FilterRows))
	m.counter("repro_kernel_hash_probe_rows_total", "Rows through columnar hash-probe kernels.", float64(k.HashProbeRows))
	m.counter("repro_kernel_merge_rows_total", "Rows through columnar merge kernels.", float64(k.MergeRows))
	m.counter("repro_kernel_gather_rows_total", "Rows gathered into dense batches.", float64(k.GatherRows))
	m.counter("repro_kernel_leapfrog_seeks_total", "Leapfrog trie cursor seeks.", float64(k.LeapfrogSeeks))
	m.counter("repro_kernel_leapfrog_rows_total", "Rows emitted by leapfrog joins.", float64(k.LeapfrogRows))
	m.counter("repro_algebra_left_join_rows_total", "Rows emitted by left outer joins (OPTIONAL).", float64(k.LeftJoinRows))
	m.counter("repro_algebra_union_rows_total", "Rows emitted by unions.", float64(k.UnionRows))
	m.counter("repro_algebra_agg_groups_total", "Groups emitted by aggregations.", float64(k.AggGroups))

	m.counter("repro_traces_total", "Queries that ran with a trace collector.", float64(st.Trace.Traced))
	m.counter("repro_slow_queries_total", "Queries at or above the slow-query threshold.", float64(st.Trace.Slow))
	m.counter("repro_traces_retained_total", "Traces retained in the recent-trace ring (lifetime).", float64(st.Trace.Retained))

	// Per-endpoint request counters and latency histograms, in sorted key
	// order so the exposition is deterministic.
	keys := make([]string, 0, len(st.Requests))
	for key := range st.Requests {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	m.header("repro_requests_total", "Finished requests per endpoint (failures included).", "counter")
	for _, key := range keys {
		m.labeled("repro_requests_total", key, float64(st.Requests[key].Count))
	}
	m.header("repro_request_errors_total", "Failed requests per endpoint.", "counter")
	for _, key := range keys {
		m.labeled("repro_request_errors_total", key, float64(st.Requests[key].Errors))
	}
	m.header("repro_request_latency_seconds", "Request latency per endpoint.", "histogram")
	for _, key := range keys {
		m.histogram("repro_request_latency_seconds", key, st.Requests[key].LatencyMs)
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write([]byte(b.String()))
}

// metricWriter emits exposition lines.
type metricWriter struct {
	b *strings.Builder
}

func (m metricWriter) header(name, help, typ string) {
	fmt.Fprintf(m.b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

func (m metricWriter) counter(name, help string, v float64) {
	m.header(name, help, "counter")
	fmt.Fprintf(m.b, "%s %s\n", name, formatValue(v))
}

func (m metricWriter) gauge(name, help string, v float64) {
	m.header(name, help, "gauge")
	fmt.Fprintf(m.b, "%s %s\n", name, formatValue(v))
}

func (m metricWriter) labeled(name, endpoint string, v float64) {
	fmt.Fprintf(m.b, "%s{endpoint=\"%s\"} %s\n", name, escapeLabel(endpoint), formatValue(v))
}

func (m metricWriter) shardLabeled(name string, shard int, v float64) {
	fmt.Fprintf(m.b, "%s{shard=\"%d\"} %s\n", name, shard, formatValue(v))
}

// histogram renders a stats latency histogram (milliseconds) as Prometheus
// cumulative buckets in seconds. The serialized histogram's bucket i
// covers [BoundsMs[i-1], BoundsMs[i]) with open-ended first and last
// buckets, so bucket i's cumulative count maps to le=BoundsMs[i] and the
// final open bucket to le=+Inf.
func (m metricWriter) histogram(name, endpoint string, h HistogramStats) {
	label := escapeLabel(endpoint)
	cum := 0
	for i, bound := range h.BoundsMs {
		if i < len(h.Counts) {
			cum += h.Counts[i]
		}
		fmt.Fprintf(m.b, "%s_bucket{endpoint=\"%s\",le=\"%s\"} %d\n", name, label, formatValue(bound/1e3), cum)
	}
	fmt.Fprintf(m.b, "%s_bucket{endpoint=\"%s\",le=\"+Inf\"} %d\n", name, label, h.Total)
	fmt.Fprintf(m.b, "%s_sum{endpoint=\"%s\"} %s\n", name, label, formatValue(h.SumMs/1e3))
	fmt.Fprintf(m.b, "%s_count{endpoint=\"%s\"} %d\n", name, label, h.Total)
}

// formatValue renders a sample value with full float64 round-trip
// precision and no exponent surprises for integral values.
func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// escapeLabel escapes a label value per the exposition format (backslash,
// double quote, newline).
func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}
