package service

import (
	"context"
	"fmt"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/rdf"
	"repro/internal/store"
)

// writeShardedSnapshot partitions st into n subject-hash shards and writes
// them as a sharded snapshot directory, returning its path.
func writeShardedSnapshot(t *testing.T, dir, name string, st *store.Store, n int) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := store.WriteSharded(path, store.NewSharded(st, n)); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestServiceShardedCoordinator wraps the mixed BSBM/SNB store in a
// 4-shard coordinator and checks the whole prepared-workload surface is
// byte-identical to the single-store service, and that /stats and
// /metrics expose the per-shard breakdown.
func TestServiceShardedCoordinator(t *testing.T) {
	st := buildMixedStore(t)
	single := New(st, "", Options{Workers: 2})
	sharded := New(st, "", Options{Workers: 2, Shards: 4})

	if got := sharded.Store().Backend(); got != "sharded(4, heap)" {
		t.Fatalf("backend = %q", got)
	}
	items := buildMixedWorkload(t, single, st, 3)
	shardedItems := buildMixedWorkload(t, sharded, st, 3)
	for i, it := range items {
		want, err := single.Execute(context.Background(), it.prep, it.bind)
		if err != nil {
			t.Fatalf("single %s: %v", it.key, err)
		}
		got, err := sharded.Execute(context.Background(), shardedItems[i].prep, shardedItems[i].bind)
		if err != nil {
			t.Fatalf("sharded %s: %v", it.key, err)
		}
		if canonical(got) != canonical(want) {
			t.Fatalf("%s: sharded coordinator diverges from single store\ngot:\n%s\nwant:\n%s",
				it.key, canonical(got), canonical(want))
		}
	}

	stats := sharded.Stats()
	if stats.Store.Shards != 4 || len(stats.Store.PerShard) != 4 {
		t.Fatalf("stats shards = %d, per-shard = %d", stats.Store.Shards, len(stats.Store.PerShard))
	}
	var sum int
	for _, ps := range stats.Store.PerShard {
		sum += ps.Triples
	}
	if sum != stats.Store.Triples {
		t.Fatalf("per-shard triples sum %d != total %d", sum, stats.Store.Triples)
	}
	if ss := single.Stats(); ss.Store.Shards != 0 || len(ss.Store.PerShard) != 0 {
		t.Fatalf("single-store stats leak shard fields: %+v", ss.Store)
	}

	srv := httptest.NewServer(sharded.Handler())
	defer srv.Close()
	body := fetchText(t, srv.URL+"/metrics")
	for _, want := range []string{
		"repro_store_shards 4\n",
		fmt.Sprintf("repro_shard_triples{shard=\"0\"} %d\n", stats.Store.PerShard[0].Triples),
		"repro_shard_pending_inserts{shard=\"3\"} 0\n",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, body)
		}
	}
}

// TestServiceShardedUpdate routes updates by subject hash across shards
// and keeps the query surface identical to a single-store service fed the
// same updates; per-shard pending counts show up in /stats and
// compaction folds every shard.
func TestServiceShardedUpdate(t *testing.T) {
	ctx := context.Background()
	single := New(buildTinyStore(t), "tiny", Options{})
	sharded := New(buildTinyStore(t), "tiny", Options{Shards: 3})

	updates := []string{
		`INSERT DATA { <http://x/dave> <http://x/knows> <http://x/erin> .
		               <http://x/erin> <http://x/knows> <http://x/alice> . }`,
		`DELETE DATA { <http://x/alice> <http://x/knows> <http://x/bob> . }`,
	}
	for _, u := range updates {
		wantRes, err := single.Update(ctx, u)
		if err != nil {
			t.Fatal(err)
		}
		gotRes, err := sharded.Update(ctx, u)
		if err != nil {
			t.Fatal(err)
		}
		if gotRes.Inserted != wantRes.Inserted || gotRes.Deleted != wantRes.Deleted ||
			gotRes.PendingInserts != wantRes.PendingInserts || gotRes.PendingDeletes != wantRes.PendingDeletes {
			t.Fatalf("update results diverge: %+v vs %+v", gotRes, wantRes)
		}
		want, err := single.Query(ctx, probeQuery, nil)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sharded.Query(ctx, probeQuery, nil)
		if err != nil {
			t.Fatal(err)
		}
		if canonical(got) != canonical(want) {
			t.Fatalf("post-update results diverge\ngot:\n%s\nwant:\n%s", canonical(got), canonical(want))
		}
	}
	stats := sharded.Stats()
	var pi, pd int
	for _, ps := range stats.Store.PerShard {
		pi += ps.PendingInserts
		pd += ps.PendingDeletes
	}
	if pi != stats.Store.PendingInserts || pd != stats.Store.PendingDeletes || pi != 2 || pd != 1 {
		t.Fatalf("per-shard pending (%d,%d) vs totals (%d,%d)", pi, pd, stats.Store.PendingInserts, stats.Store.PendingDeletes)
	}

	// A no-op update must not publish a new generation on any shard.
	gen := sharded.Generation()
	res, err := sharded.Update(ctx, `DELETE DATA { <http://x/nobody> <http://x/knows> <http://x/noone> . }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Generation != gen {
		t.Fatalf("no-op update published generation %d (was %d)", res.Generation, gen)
	}

	sharded.Compact()
	stats = sharded.Stats()
	if stats.Store.PendingInserts != 0 || stats.Store.PendingDeletes != 0 {
		t.Fatalf("pending after compact: %+v", stats.Store)
	}
	for i, ps := range stats.Store.PerShard {
		if ps.PendingInserts != 0 || ps.PendingDeletes != 0 || ps.Triples != ps.BaseTriples {
			t.Fatalf("shard %d not folded: %+v", i, ps)
		}
	}
	want, err := single.Query(ctx, probeQuery, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sharded.Query(ctx, probeQuery, nil)
	if err != nil {
		t.Fatal(err)
	}
	if canonical(got) != canonical(want) {
		t.Fatal("results diverge after sharded compaction")
	}
}

// TestShardedReloadDefersUnmapAllShards reloads a mapped 4-shard snapshot
// directory while an outcome from the old generation is still open: every
// one of the retired generation's shard mappings must stay pinned until
// the last in-flight query drains, then all release together.
func TestShardedReloadDefersUnmapAllShards(t *testing.T) {
	dir := t.TempDir()
	pathA := writeShardedSnapshot(t, dir, "a.shards", buildTinyStore(t), 4)
	pathB := writeShardedSnapshot(t, dir, "b.shards", buildMixedStore(t), 4)

	svc, err := Load(pathA, Options{AllowReload: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := svc.Store().Backend(); got != "sharded(4, mapped)" {
		t.Fatalf("backend = %q", got)
	}
	oldMappings := svc.Store().Mappings()
	if len(oldMappings) != 4 {
		t.Fatalf("mapped sharded load has %d mappings, want 4", len(oldMappings))
	}

	out, err := svc.Query(context.Background(), probeQuery, nil)
	if err != nil {
		t.Fatal(err)
	}

	if _, _, err := svc.Reload(pathB); err != nil {
		t.Fatal(err)
	}
	// One retired generation holds all four shard mappings.
	if n := svc.Stats().Store.MappingsAwaitingUnmap; n != 1 {
		t.Fatalf("awaiting unmap = %d, want 1", n)
	}
	for i, m := range oldMappings {
		if m.Refs() <= 0 {
			t.Fatalf("shard %d mapping released while a query still pins its generation", i)
		}
	}
	if rows := out.DecodedRows(); len(rows) != 3 {
		t.Fatalf("rows decoded after sharded remap = %v", rows)
	}

	out.Close()
	if n := svc.Stats().Store.MappingsAwaitingUnmap; n != 0 {
		t.Fatalf("awaiting unmap after close = %d, want 0", n)
	}
	for i, m := range oldMappings {
		if refs := m.Refs(); refs != 0 {
			t.Fatalf("shard %d mapping refs after drain = %d, want 0", i, refs)
		}
	}
}

// TestShardedReloadQueryRace hammers queries against the coordinator
// while the main goroutine reloads between two mapped sharded snapshot
// directories (run under -race): every result must be consistent with
// one generation, and once drained no shard mapping may stay pinned.
func TestShardedReloadQueryRace(t *testing.T) {
	dir := t.TempDir()
	pathA := writeShardedSnapshot(t, dir, "a.shards", buildTinyStore(t), 4)

	b := store.NewBuilder()
	if err := b.Add(rdf.NewTriple(rdf.NewIRI("http://x/dave"), rdf.NewIRI("http://x/knows"), rdf.NewIRI("http://x/erin"))); err != nil {
		t.Fatal(err)
	}
	pathB := writeShardedSnapshot(t, dir, "b.shards", b.Build(), 4)

	svc, err := Load(pathA, Options{AllowReload: true, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}

	const workers = 8
	const perWorker = 40
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				out, err := svc.Query(context.Background(), probeQuery, nil)
				if err != nil {
					errc <- err
					return
				}
				rows := out.DecodedRows()
				n := len(rows)
				out.Close()
				// Snapshot A has 3 knows edges, snapshot B has 1; any other
				// count means a torn read across shard generations.
				if n != 3 && n != 1 {
					errc <- fmt.Errorf("query saw %d knows edges, want 3 or 1", n)
					return
				}
			}
		}()
	}
	paths := []string{pathB, pathA}
	for i := 0; i < 20; i++ {
		if _, _, err := svc.Reload(paths[i%2]); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	if n := svc.Stats().Store.MappingsAwaitingUnmap; n != 0 {
		t.Fatalf("awaiting unmap after drain = %d, want 0", n)
	}
}
