package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/exec"
	"repro/internal/obs"
	"repro/internal/rdf"
	"repro/internal/sparql"
)

// TestLatencyCardinalityCap is the regression test for the latency-map
// growth bug: per-template histogram keys derive from client-chosen
// /prepare names, so a client registering many templates used to grow
// /stats without bound. The map must now hold at most maxLatencyKeys
// distinct keys plus the "other" overflow bucket, with no observation
// lost to the folding.
func TestLatencyCardinalityCap(t *testing.T) {
	svc := New(buildTinyStore(t), "", Options{})
	who := sparql.Binding{"who": rdf.NewIRI("http://x/alice")}
	const templates = 3 * maxLatencyKeys / 2
	for i := 0; i < templates; i++ {
		name := fmt.Sprintf("tmpl-%03d", i)
		p, err := svc.Prepare(name, `SELECT ?f WHERE { %who <http://x/knows> ?f . }`)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := svc.Execute(context.Background(), p, who); err != nil {
			t.Fatal(err)
		}
	}
	st := svc.Stats()
	if len(st.Requests) > maxLatencyKeys+1 {
		t.Fatalf("latency map grew to %d keys, cap is %d + overflow", len(st.Requests), maxLatencyKeys)
	}
	other, ok := st.Requests[latencyOverflowKey]
	if !ok || other.Count == 0 {
		t.Fatalf("overflow bucket %q missing or empty: %+v", latencyOverflowKey, other)
	}
	// Each Execute observes the "execute" endpoint and its template key;
	// folding must conserve the total observation count.
	var total, histTotal uint64
	for _, r := range st.Requests {
		total += r.Count
		histTotal += uint64(r.LatencyMs.Total)
	}
	if want := uint64(2 * templates); total != want || histTotal != want {
		t.Fatalf("observation counts = %d (histograms %d), want %d", total, histTotal, want)
	}
	// The cap folds only new keys: the hot "execute" endpoint key was
	// created first and must still be tracked individually.
	if st.Requests["execute"].Count != uint64(templates) {
		t.Fatalf("execute endpoint count = %d, want %d", st.Requests["execute"].Count, templates)
	}
}

// TestTraceSamplingAndRing drives the 1-in-N sampler: with TraceSample 2,
// half the executions retain a trace in the /trace/recent ring, newest
// first, each carrying the span tree and accounting totals.
func TestTraceSamplingAndRing(t *testing.T) {
	svc := New(buildTinyStore(t), "", Options{TraceSample: 2, TraceRecent: 8})
	p, err := svc.Prepare("friends", `SELECT ?f WHERE { %who <http://x/knows> ?f . }`)
	if err != nil {
		t.Fatal(err)
	}
	who := sparql.Binding{"who": rdf.NewIRI("http://x/alice")}
	const runs = 6
	for i := 0; i < runs; i++ {
		if _, err := svc.Execute(context.Background(), p, who); err != nil {
			t.Fatal(err)
		}
	}
	st := svc.Stats()
	if st.Trace.Traced != runs/2 || st.Trace.Retained != runs/2 {
		t.Fatalf("traced=%d retained=%d, want %d each", st.Trace.Traced, st.Trace.Retained, runs/2)
	}
	traces := svc.TraceRecent(10)
	if len(traces) != runs/2 {
		t.Fatalf("ring holds %d traces, want %d", len(traces), runs/2)
	}
	for i, tr := range traces {
		if !tr.Sampled || tr.Slow {
			t.Fatalf("trace %d: sampled=%v slow=%v, want sampled only", i, tr.Sampled, tr.Slow)
		}
		if tr.Root == nil || tr.Endpoint != "execute" || tr.Template != "friends" {
			t.Fatalf("trace %d incomplete: %+v", i, tr)
		}
		if tr.Root.Cout != tr.Cout || tr.Root.Work != tr.Work || tr.Root.Scanned != int64(tr.Scanned) {
			t.Fatalf("trace %d: span totals disagree with trace accounting", i)
		}
		if i > 0 && traces[i-1].ID <= tr.ID {
			t.Fatalf("ring not newest-first: %d then %d", traces[i-1].ID, tr.ID)
		}
	}
}

// TestExplainAnalyzeOutcome requests analyze explicitly: the outcome must
// carry both the rendered EXPLAIN ANALYZE listing and the span tree, and
// the run is retained for /trace/recent regardless of sampling.
func TestExplainAnalyzeOutcome(t *testing.T) {
	svc := New(buildTinyStore(t), "", Options{})
	out, err := svc.QueryWith(context.Background(),
		`SELECT ?f ?a WHERE { ?x <http://x/knows> ?f . ?f <http://x/age> ?a . }`,
		nil, RunOptions{Analyze: true})
	if err != nil {
		t.Fatal(err)
	}
	if out.Trace == nil {
		t.Fatal("analyze outcome has no span tree")
	}
	if !strings.Contains(out.Analyze, "actual:") || !strings.Contains(out.Analyze, "wall=") {
		t.Fatalf("EXPLAIN ANALYZE rendering looks wrong:\n%s", out.Analyze)
	}
	if out.Trace.Cout != out.Result.Cout || out.Trace.Work != out.Result.Work {
		t.Fatalf("span totals (cout=%v work=%v) != result (cout=%v work=%v)",
			out.Trace.Cout, out.Trace.Work, out.Result.Cout, out.Result.Work)
	}
	if got := svc.TraceRecent(1); len(got) != 1 || got[0].Root != out.Trace {
		t.Fatal("analyze run was not retained in the trace ring")
	}
}

// TestSlowQueryLog fabricates a run over the slow threshold and checks
// the structured log line plus the slow counters. recordTrace is called
// directly so the test does not depend on wall-clock timing.
func TestSlowQueryLog(t *testing.T) {
	var buf bytes.Buffer
	svc := New(buildTinyStore(t), "", Options{SlowQueryMs: 1, SlowLog: &buf})
	res := &exec.Result{
		Cout:     3,
		Work:     9,
		Scanned:  12,
		Duration: 5 * time.Millisecond,
	}
	root := &obs.Span{Op: "IndexScan", Cout: 3, Work: 9, Scanned: 12}
	out := &Outcome{}
	svc.recordTrace(runMeta{endpoint: "execute", template: "q7", admitWait: 42 * time.Microsecond},
		false, "SELECT ...", "plan-sig", true, 1, res, root, out)
	st := svc.Stats()
	if st.Trace.Traced != 1 || st.Trace.Slow != 1 || st.Trace.Retained != 1 {
		t.Fatalf("trace stats = %+v, want one traced+slow+retained", st.Trace)
	}
	traces := svc.TraceRecent(1)
	if len(traces) != 1 || !traces[0].Slow || traces[0].Root != root {
		t.Fatalf("slow trace not retained correctly: %+v", traces)
	}
	var line struct {
		Level       string  `json:"level"`
		Msg         string  `json:"msg"`
		TraceID     uint64  `json:"trace_id"`
		Template    string  `json:"template"`
		DurationMs  float64 `json:"duration_ms"`
		ThresholdMs int     `json:"threshold_ms"`
		Cout        float64 `json:"cout"`
	}
	if err := json.Unmarshal(bytes.TrimSpace(buf.Bytes()), &line); err != nil {
		t.Fatalf("slow log is not one JSON line: %v\n%s", err, buf.String())
	}
	if line.Level != "warn" || line.Msg != "slow query" || line.Template != "q7" ||
		line.DurationMs != 5 || line.ThresholdMs != 1 || line.Cout != 3 {
		t.Fatalf("slow log line fields wrong: %+v", line)
	}
	if line.TraceID != traces[0].ID {
		t.Fatalf("slow log trace_id %d does not reference ring entry %d", line.TraceID, traces[0].ID)
	}
	// Under the threshold: traced but neither retained nor logged.
	buf.Reset()
	fast := &exec.Result{Duration: 100 * time.Microsecond}
	svc.recordTrace(runMeta{endpoint: "execute"}, false, "SELECT ...", "sig", false, 1, fast, root, &Outcome{})
	if got := svc.Stats().Trace; got.Slow != 1 || got.Retained != 1 {
		t.Fatalf("fast run leaked into slow accounting: %+v", got)
	}
	if buf.Len() != 0 {
		t.Fatalf("fast run wrote a slow log line: %s", buf.String())
	}
}
