//go:build unix

package store

import (
	"fmt"
	"math"
	"os"
	"syscall"
)

// mmapFile maps path read-only. The returned unmap function releases the
// mapping (invoked by Mapping.Release when the last reference drops).
func mmapFile(path string) ([]byte, func([]byte) error, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return mmapFd(f)
}

// mmapFd maps an already-open file read-only, so a caller that has sniffed
// the format from f can map the very fd it sniffed (no reopen race).
func mmapFd(f *os.File) ([]byte, func([]byte) error, error) {
	fi, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := fi.Size()
	if size == 0 {
		// mmap of length 0 is an error; an empty file fails header
		// validation anyway, with a clearer message than EINVAL.
		return nil, func([]byte) error { return nil }, nil
	}
	if size > math.MaxInt {
		return nil, nil, fmt.Errorf("store: %s: %d bytes exceeds the addressable size", f.Name(), size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, fmt.Errorf("store: mmap %s: %w", f.Name(), err)
	}
	return data, syscall.Munmap, nil
}
