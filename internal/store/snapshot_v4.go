package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"unsafe"

	"repro/internal/dict"
	"repro/internal/rdf"
)

// Snapshot v4: the disk-native, mmap-scannable layout. Unlike v1–v3, which
// are decode-then-rebuild serializations, a v4 file IS the store: every
// structure the read path touches — the six permutation indexes, the
// dictionary and the statistics — is stored page-aligned and fixed-width,
// so OpenMapped maps the file, validates the header page in O(1) and
// serves queries straight off the mapping while the OS page cache does
// buffer management. Startup cost is independent of dataset size, and the
// working set may exceed RAM.
//
// All integers are little-endian. The file is a sequence of 4096-byte-
// aligned sections, located by a section table in the header page:
//
//	header page (4096 bytes):
//	  magic        [8]byte  "RDFSNAP4"
//	  pageSize     uint32   (4096)
//	  typeID       uint32   dictionary id of rdf:type, 0 if absent
//	  nTriples     uint64
//	  nTerms       uint64
//	  termHeapLen  uint64
//	  nPreds       uint64
//	  nClasses     uint64
//	  nTypeMembers uint64
//	  fileSize     uint64
//	  sections     12 × { off uint64, len uint64 }
//
//	section 0–5:  permutation indexes (SPO, SOP, PSO, POS, OSP, OPS) —
//	              nTriples × 12 bytes {s, p, o uint32}, each sorted by
//	              its order; scanned zero-copy as []IDTriple
//	section 6:    term offset table — (nTerms+1) × uint64 offsets into
//	              the heap; record of id i spans [off[i-1], off[i])
//	section 7:    term string heap — per record: kind byte, then value,
//	              lang, datatype as uvarint-length-prefixed bytes
//	section 8:    sorted-id table — nTerms × uint32 ids ordered by
//	              rdf.Term.Compare (binary-search Lookup without a map)
//	section 9:    predicate stats — nPreds × {pred, count, distinctS,
//	              distinctO uint32}, ascending pred
//	section 10:   class table — nClasses × {class, start, count uint32},
//	              ascending class; start/count index section 11
//	section 11:   rdf:type members — nTypeMembers × uint32 subject ids,
//	              the concatenated sorted member runs of section 10
//
// Section offsets are fully determined by the header counts (each section
// starts at the next page boundary after its predecessor, in the order
// above), which is what lets the reader validate the whole table — bounds,
// alignment, widths, non-overlap — by recomputing it, in O(1).
//
// Trust model (two tiers, like the v2/v3 hardening but split by cost):
// OpenMapped performs O(1) structural validation of the header page plus
// per-access bounds checks on everything reached through untrusted offsets
// (term records fail TryDecode, never fault); ReadSnapshot on a v4 file is
// the fully-validating path — it checks the triple stream and dictionary
// exactly as hard as the v2 reader and rebuilds a heap store through the
// standard construction path.
const (
	snapshotMagicV4 = "RDFSNAP4"
	v4PageSize      = 4096
	v4NumSections   = 12
	v4HeaderLen     = 72 + v4NumSections*16

	v4SecOffTable    = 6
	v4SecTermHeap    = 7
	v4SecSortedIDs   = 8
	v4SecPredStats   = 9
	v4SecClassTable  = 10
	v4SecTypeMembers = 11
)

type v4Section struct{ off, len uint64 }

type v4Header struct {
	typeID       uint32
	nTriples     uint64
	nTerms       uint64
	heapLen      uint64
	nPreds       uint64
	nClasses     uint64
	nTypeMembers uint64
	fileSize     uint64
	sections     [v4NumSections]v4Section
}

func v4Align(x uint64) uint64 { return (x + v4PageSize - 1) &^ uint64(v4PageSize-1) }

// layout fills in the section table and file size from the counts: the
// canonical placement every writer produces and every reader verifies.
func (h *v4Header) layout() {
	sizes := [v4NumSections]uint64{}
	for o := 0; o < int(numOrders); o++ {
		sizes[o] = h.nTriples * idTripleBytes
	}
	sizes[v4SecOffTable] = (h.nTerms + 1) * 8
	sizes[v4SecTermHeap] = h.heapLen
	sizes[v4SecSortedIDs] = h.nTerms * 4
	sizes[v4SecPredStats] = h.nPreds * 16
	sizes[v4SecClassTable] = h.nClasses * 12
	sizes[v4SecTypeMembers] = h.nTypeMembers * 4
	off := uint64(v4PageSize)
	for i, sz := range sizes {
		h.sections[i] = v4Section{off: off, len: sz}
		off = v4Align(off + sz)
	}
	h.fileSize = off
}

// writeV4 lays the store out in the v4 format. A pending delta is folded
// in: each permutation section receives that order's merged run, and the
// statistics sections are written from the overlay's patched-exact values,
// so the file opens as the equivalent plain store.
func (s *Store) writeV4(bw *bufio.Writer) error {
	nTerms := s.dict.Len()
	if s.n > math.MaxUint32 || nTerms > math.MaxUint32 {
		return fmt.Errorf("store: %d triples / %d terms exceed the v4 32-bit id space", s.n, nTerms)
	}
	// Decode the dictionary once; record offsets and the Compare-sorted id
	// table both derive from it.
	terms := make([]rdf.Term, nTerms)
	for i := range terms {
		terms[i] = s.dict.Decode(dict.ID(i + 1))
	}
	offs := make([]uint64, nTerms+1)
	for i, t := range terms {
		offs[i+1] = offs[i] + termRecordLen(t)
	}
	sorted := make([]dict.ID, nTerms)
	for i := range sorted {
		sorted[i] = dict.ID(i + 1)
	}
	sort.Slice(sorted, func(i, j int) bool {
		return terms[sorted[i]-1].Compare(terms[sorted[j]-1]) < 0
	})
	preds := s.Predicates()
	classes := make([]dict.ID, 0, len(s.typeIdx))
	nMembers := 0
	for c, subjects := range s.typeIdx {
		classes = append(classes, c)
		nMembers += len(subjects)
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i] < classes[j] })

	h := v4Header{
		typeID:       uint32(s.typeID),
		nTriples:     uint64(s.n),
		nTerms:       uint64(nTerms),
		heapLen:      offs[nTerms],
		nPreds:       uint64(len(preds)),
		nClasses:     uint64(len(classes)),
		nTypeMembers: uint64(nMembers),
	}
	h.layout()

	w := &v4Writer{bw: bw}
	w.writeHeader(&h)

	// Sections 0–5: the six permutation indexes, overlay-merged.
	var tbuf [idTripleBytes]byte
	for o := order(0); o < numOrders; o++ {
		w.padTo(h.sections[o].off)
		s.forEachOrder(o, func(t IDTriple) {
			binary.LittleEndian.PutUint32(tbuf[0:4], uint32(t.S))
			binary.LittleEndian.PutUint32(tbuf[4:8], uint32(t.P))
			binary.LittleEndian.PutUint32(tbuf[8:12], uint32(t.O))
			w.write(tbuf[:])
		})
	}
	// Section 6: term offset table.
	w.padTo(h.sections[v4SecOffTable].off)
	var u64 [8]byte
	for _, off := range offs {
		binary.LittleEndian.PutUint64(u64[:], off)
		w.write(u64[:])
	}
	// Section 7: term string heap.
	w.padTo(h.sections[v4SecTermHeap].off)
	var vbuf [binary.MaxVarintLen64]byte
	for _, t := range terms {
		w.write([]byte{byte(t.Kind)})
		for _, part := range [3]string{t.Value, t.Lang, t.Datatype} {
			n := binary.PutUvarint(vbuf[:], uint64(len(part)))
			w.write(vbuf[:n])
			w.writeString(part)
		}
	}
	// Section 8: Compare-sorted id table.
	w.padTo(h.sections[v4SecSortedIDs].off)
	var u32 [4]byte
	for _, id := range sorted {
		binary.LittleEndian.PutUint32(u32[:], uint32(id))
		w.write(u32[:])
	}
	// Section 9: predicate statistics, ascending predicate id.
	w.padTo(h.sections[v4SecPredStats].off)
	var pbuf [16]byte
	for _, p := range preds {
		st := s.pstats[p]
		binary.LittleEndian.PutUint32(pbuf[0:4], uint32(p))
		binary.LittleEndian.PutUint32(pbuf[4:8], uint32(st.Count))
		binary.LittleEndian.PutUint32(pbuf[8:12], uint32(st.DistinctS))
		binary.LittleEndian.PutUint32(pbuf[12:16], uint32(st.DistinctO))
		w.write(pbuf[:])
	}
	// Section 10: class table; section 11: concatenated member runs.
	w.padTo(h.sections[v4SecClassTable].off)
	var cbuf [12]byte
	start := 0
	for _, c := range classes {
		subjects := s.typeIdx[c]
		binary.LittleEndian.PutUint32(cbuf[0:4], uint32(c))
		binary.LittleEndian.PutUint32(cbuf[4:8], uint32(start))
		binary.LittleEndian.PutUint32(cbuf[8:12], uint32(len(subjects)))
		w.write(cbuf[:])
		start += len(subjects)
	}
	w.padTo(h.sections[v4SecTypeMembers].off)
	for _, c := range classes {
		for _, subj := range s.typeIdx[c] {
			binary.LittleEndian.PutUint32(u32[:], uint32(subj))
			w.write(u32[:])
		}
	}
	w.padTo(h.fileSize)
	return w.err
}

// forEachOrder streams the store's triples in the given permutation order,
// folding a pending delta in (the per-order counterpart of forEachSPO).
func (s *Store) forEachOrder(o order, fn func(IDTriple)) {
	if s.delta == nil {
		for _, t := range s.idx[o] {
			fn(t)
		}
		return
	}
	mergeRuns(s.idx[o], s.delta.del[o], s.delta.ins[o], o, fn)
}

// termRecordLen is the heap footprint of one term record.
func termRecordLen(t rdf.Term) uint64 {
	n := uint64(1)
	for _, part := range [3]string{t.Value, t.Lang, t.Datatype} {
		n += uint64(uvarintLen(uint64(len(part)))) + uint64(len(part))
	}
	return n
}

func uvarintLen(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}

// v4Writer tracks the output offset so sections land exactly where the
// header's layout says, with zero padding between them.
type v4Writer struct {
	bw  *bufio.Writer
	off uint64
	err error
}

var v4Zeros [v4PageSize]byte

func (w *v4Writer) write(b []byte) {
	if w.err != nil {
		return
	}
	_, w.err = w.bw.Write(b)
	w.off += uint64(len(b))
}

func (w *v4Writer) writeString(s string) {
	if w.err != nil {
		return
	}
	_, w.err = w.bw.WriteString(s)
	w.off += uint64(len(s))
}

func (w *v4Writer) padTo(off uint64) {
	for w.err == nil && w.off < off {
		n := off - w.off
		if n > v4PageSize {
			n = v4PageSize
		}
		w.write(v4Zeros[:n])
	}
}

func (w *v4Writer) writeHeader(h *v4Header) {
	page := make([]byte, v4PageSize)
	copy(page, snapshotMagicV4)
	binary.LittleEndian.PutUint32(page[8:12], v4PageSize)
	binary.LittleEndian.PutUint32(page[12:16], h.typeID)
	binary.LittleEndian.PutUint64(page[16:24], h.nTriples)
	binary.LittleEndian.PutUint64(page[24:32], h.nTerms)
	binary.LittleEndian.PutUint64(page[32:40], h.heapLen)
	binary.LittleEndian.PutUint64(page[40:48], h.nPreds)
	binary.LittleEndian.PutUint64(page[48:56], h.nClasses)
	binary.LittleEndian.PutUint64(page[56:64], h.nTypeMembers)
	binary.LittleEndian.PutUint64(page[64:72], h.fileSize)
	at := 72
	for _, sec := range h.sections {
		binary.LittleEndian.PutUint64(page[at:at+8], sec.off)
		binary.LittleEndian.PutUint64(page[at+8:at+16], sec.len)
		at += 16
	}
	w.write(page)
}

// OpenMapped maps a v4 snapshot file and returns a ready *Store backed by
// it, in O(1): only the header page is validated — magic, counts, and the
// recomputed section table (which pins every section's offset, length,
// alignment and non-overlap) — and no index or dictionary data is
// deserialized. Everything reached later through on-disk offsets is
// bounds-checked at access time, so a corrupt file degrades to failed
// TryDecodes and empty matches, never a fault. Call Mapping().Release when
// done with the store (long-lived holders Retain their own reference).
func OpenMapped(path string) (*Store, error) {
	data, unmap, err := mmapFile(path)
	if err != nil {
		return nil, err
	}
	st, err := openMappedData(data, unmap)
	if err != nil {
		if unmap != nil && len(data) > 0 {
			_ = unmap(data)
		}
		return nil, err
	}
	return st, nil
}

// OpenMappedFile is OpenMapped over an already-open file. The mapping is
// taken from f's descriptor directly, so callers that sniffed the format
// from f (LoadAnyMapped) serve exactly the file they sniffed even if the
// path has been rewritten since. f's read offset is irrelevant and the
// caller keeps ownership of f (closing it does not invalidate the
// mapping).
func OpenMappedFile(f *os.File) (*Store, error) {
	data, unmap, err := mmapFd(f)
	if err != nil {
		return nil, err
	}
	st, err := openMappedData(data, unmap)
	if err != nil {
		if unmap != nil && len(data) > 0 {
			_ = unmap(data)
		}
		return nil, err
	}
	return st, nil
}

// OpenMappedBytes is OpenMapped over an in-memory v4 image — the fuzzing
// and testing entry point, and the carrier for the non-unix fallback. The
// buffer is copied only if it is not 8-byte aligned.
func OpenMappedBytes(data []byte) (*Store, error) {
	if len(data) > 0 && uintptr(unsafe.Pointer(&data[0]))%8 != 0 {
		buf := make([]uint64, (len(data)+7)/8)
		aligned := unsafe.Slice((*byte)(unsafe.Pointer(&buf[0])), len(data))
		copy(aligned, data)
		data = aligned
	}
	return openMappedData(data, nil)
}

// openMappedData performs the O(1) structural validation and assembles the
// Store over zero-copy views.
func openMappedData(data []byte, unmap func([]byte) error) (*Store, error) {
	if !hostLittleEndian() {
		return nil, fmt.Errorf("store: v4 mapped snapshots require a little-endian host")
	}
	if len(data) < v4PageSize {
		return nil, fmt.Errorf("store: v4 snapshot truncated: %d bytes, want at least one %d-byte page", len(data), v4PageSize)
	}
	if string(data[:8]) != snapshotMagicV4 {
		return nil, fmt.Errorf("store: bad snapshot magic %q", data[:8])
	}
	if ps := binary.LittleEndian.Uint32(data[8:12]); ps != v4PageSize {
		return nil, fmt.Errorf("store: v4 page size %d, want %d", ps, v4PageSize)
	}
	h := v4Header{
		typeID:       binary.LittleEndian.Uint32(data[12:16]),
		nTriples:     binary.LittleEndian.Uint64(data[16:24]),
		nTerms:       binary.LittleEndian.Uint64(data[24:32]),
		heapLen:      binary.LittleEndian.Uint64(data[32:40]),
		nPreds:       binary.LittleEndian.Uint64(data[40:48]),
		nClasses:     binary.LittleEndian.Uint64(data[48:56]),
		nTypeMembers: binary.LittleEndian.Uint64(data[56:64]),
		fileSize:     binary.LittleEndian.Uint64(data[64:72]),
	}
	// Count caps first: they bound every product in layout() well below
	// uint64 overflow, so the strict table comparison below cannot be
	// defeated by wraparound.
	if h.nTriples > math.MaxUint32 || h.nTerms > math.MaxUint32 {
		return nil, fmt.Errorf("store: v4 header counts %d/%d exceed 32-bit id space", h.nTriples, h.nTerms)
	}
	if h.nPreds > h.nTerms || h.nClasses > h.nTerms {
		return nil, fmt.Errorf("store: v4 header claims %d predicates / %d classes over %d terms", h.nPreds, h.nClasses, h.nTerms)
	}
	if h.nTypeMembers > h.nTriples {
		return nil, fmt.Errorf("store: v4 header claims %d type members over %d triples", h.nTypeMembers, h.nTriples)
	}
	if h.heapLen > uint64(len(data)) {
		return nil, fmt.Errorf("store: v4 term heap length %d exceeds file size %d", h.heapLen, len(data))
	}
	if uint64(h.typeID) > h.nTerms {
		return nil, fmt.Errorf("store: v4 rdf:type id %d outside [0, %d]", h.typeID, h.nTerms)
	}
	// The section table is fully determined by the counts: recompute it and
	// require exact agreement. This rejects out-of-range offsets,
	// overlapping or misaligned sections and length/count mismatches in one
	// comparison, and pins fileSize == len(data).
	want := h
	want.layout()
	if want.fileSize != uint64(len(data)) || h.fileSize != want.fileSize {
		return nil, fmt.Errorf("store: v4 file size %d (header %d) does not match layout %d", len(data), h.fileSize, want.fileSize)
	}
	stored := data[72 : 72+v4NumSections*16]
	for i := range want.sections {
		off := binary.LittleEndian.Uint64(stored[i*16:])
		length := binary.LittleEndian.Uint64(stored[i*16+8:])
		if off != want.sections[i].off || length != want.sections[i].len {
			return nil, fmt.Errorf("store: v4 section %d at [%d,+%d), want [%d,+%d)", i, off, length, want.sections[i].off, want.sections[i].len)
		}
	}
	h.sections = want.sections
	if uintptr(unsafe.Pointer(&data[0]))%8 != 0 {
		return nil, fmt.Errorf("store: v4 buffer is not 8-byte aligned")
	}
	sec := func(i int) []byte {
		s := h.sections[i]
		return data[s.off : s.off+s.len]
	}

	m := newMapping(data, unmap)
	mt := &mappedTerms{
		m:      m,
		n:      int(h.nTerms),
		offs:   viewUint64(sec(v4SecOffTable)),
		heap:   sec(v4SecTermHeap),
		sorted: viewIDs(sec(v4SecSortedIDs)),
	}
	if mt.offs[0] != 0 || mt.offs[h.nTerms] != h.heapLen {
		return nil, fmt.Errorf("store: v4 term offset table spans [%d, %d), want [0, %d)", mt.offs[0], mt.offs[h.nTerms], h.heapLen)
	}
	src := &mappedSource{m: m}
	for o := order(0); o < numOrders; o++ {
		src.idx[o] = viewTriples(sec(int(o)))
	}
	s := &Store{
		dict: dict.NewOver(mt),
		n:    int(h.nTriples),
		idx:  src.idx,
		src:  src,
	}
	// Statistics blocks: O(#preds + #classes) assembly, views for members.
	s.pstats = make(map[dict.ID]PredStats, h.nPreds)
	pb := sec(v4SecPredStats)
	for i := uint64(0); i < h.nPreds; i++ {
		rec := pb[i*16:]
		s.pstats[dict.ID(binary.LittleEndian.Uint32(rec[0:4]))] = PredStats{
			Count:     int(binary.LittleEndian.Uint32(rec[4:8])),
			DistinctS: int(binary.LittleEndian.Uint32(rec[8:12])),
			DistinctO: int(binary.LittleEndian.Uint32(rec[12:16])),
		}
	}
	members := viewIDs(sec(v4SecTypeMembers))
	s.typeIdx = make(map[dict.ID][]dict.ID, h.nClasses)
	cb := sec(v4SecClassTable)
	for i := uint64(0); i < h.nClasses; i++ {
		rec := cb[i*12:]
		class := dict.ID(binary.LittleEndian.Uint32(rec[0:4]))
		start := uint64(binary.LittleEndian.Uint32(rec[4:8]))
		count := uint64(binary.LittleEndian.Uint32(rec[8:12]))
		if start+count > h.nTypeMembers {
			return nil, fmt.Errorf("store: v4 class %d members [%d,+%d) outside %d", class, start, count, h.nTypeMembers)
		}
		s.typeIdx[class] = members[start : start+count]
	}
	s.typeID = dict.ID(h.typeID)
	return s, nil
}

// readV4Heap is the fully-validating streaming path behind ReadSnapshot:
// the v4 image is loaded into memory, structurally validated like
// OpenMapped, then its triple stream and dictionary are checked exactly as
// hard as the v2 reader checks its input — SPO strictly increasing
// (duplicates rejected), every id in [1, nTerms], every term record
// parseable and distinct — and a plain heap store is rebuilt through the
// standard construction path. Statistics and the other five index sections
// of the file are not trusted at all: they are recomputed from scratch.
func readV4Heap(br *bufio.Reader, magic []byte, opts BuildOptions) (*Store, error) {
	rest, err := io.ReadAll(br)
	if err != nil {
		return nil, fmt.Errorf("store: reading v4 snapshot: %w", err)
	}
	buf := make([]byte, 0, len(magic)+len(rest))
	buf = append(buf, magic...)
	buf = append(buf, rest...)
	ms, err := OpenMappedBytes(buf)
	if err != nil {
		return nil, err
	}
	base := ms.dict.Base().(*mappedTerms)
	nTerms := uint64(base.Len())
	d := dict.NewWithCapacity(int(min(nTerms, maxSnapshotPrealloc)))
	for i := uint64(0); i < nTerms; i++ {
		t, ok := base.TryDecode(dict.ID(i + 1))
		if !ok {
			return nil, fmt.Errorf("store: v4 term %d is corrupt", i+1)
		}
		if len(t.Value)+len(t.Lang)+len(t.Datatype) > maxSnapshotStr {
			return nil, fmt.Errorf("store: v4 term %d exceeds the %d-byte limit", i+1, maxSnapshotStr)
		}
		if got := d.Encode(t); uint64(got) != i+1 {
			return nil, fmt.Errorf("store: snapshot term %d duplicates term %d", i+1, got)
		}
	}
	spo := ms.idx[orderSPO]
	triples := make([]IDTriple, len(spo))
	for i, t := range spo {
		if uint64(t.S) == 0 || uint64(t.S) > nTerms || uint64(t.P) == 0 || uint64(t.P) > nTerms || uint64(t.O) == 0 || uint64(t.O) > nTerms {
			return nil, fmt.Errorf("store: triple %d references term ids (%d %d %d) outside [1, %d]", i, t.S, t.P, t.O, nTerms)
		}
		if i > 0 && !lessByOrder(spo[i-1], t, orderSPO) {
			return nil, fmt.Errorf("store: v4 SPO index not strictly increasing at triple %d", i)
		}
		triples[i] = t
	}
	return buildIndexes(d, triples, opts), nil
}
