package store

// Scan is a batch cursor over the triples matching one pattern. It walks
// the contiguous range of the best-fitting permutation index without
// copying: every batch is a subslice of the index, valid for the lifetime
// of the store. Streaming executors pull batches with Next instead of
// materializing the full match slice, so leaf-scan memory is O(batch)
// rather than O(result).
type Scan struct {
	rest []IDTriple
	ord  order
}

// Scan opens a cursor over the triples matching pat. The triples are
// delivered in the sort order of the chosen index — the same order Match
// returns them in, so Scan and Match are interchangeable for equal results.
func (s *Store) Scan(pat Pattern) *Scan {
	matches, o := s.Match(pat)
	return &Scan{rest: matches, ord: o}
}

// Next returns the next batch of at most max triples as a zero-copy
// subslice of the index, or nil when the cursor is exhausted. max <= 0
// returns everything remaining in one batch.
func (sc *Scan) Next(max int) []IDTriple {
	if len(sc.rest) == 0 {
		return nil
	}
	if max <= 0 || max >= len(sc.rest) {
		out := sc.rest
		sc.rest = nil
		return out
	}
	out := sc.rest[:max:max]
	sc.rest = sc.rest[max:]
	return out
}

// Remaining returns how many triples the cursor has not yet delivered.
func (sc *Scan) Remaining() int { return len(sc.rest) }
