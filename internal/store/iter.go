package store

import (
	"fmt"
	"sort"

	"repro/internal/dict"
)

// Scan is a batch cursor over the triples matching one pattern. On a
// plain store it walks the contiguous range of the best-fitting
// permutation index without copying: every batch is a subslice of the
// index, valid for the lifetime of the store. On an overlay store the
// cursor merges on read — the base run is streamed with deleted triples
// masked and pending insertions interleaved in index order — and batches
// are assembled in an internal buffer that is reused across Next calls
// (consume a batch before pulling the next). Either way, streaming
// executors pull batches with Next instead of materializing the full
// match slice, so leaf-scan memory is O(batch) rather than O(result).
//
// A Scan is also a seekable trie cursor: SeekVar repositions it (in either
// direction) at the first triple of its range whose unbound-position key
// components reach a target, and Head peeks at the next triple without
// consuming it. ScanSeek opens the cursor on the permutation whose sort
// key lists the unbound positions in a caller-chosen order, which is what
// a leapfrog triejoin needs — the six hexastore permutations supply every
// ordering of up to three trie levels for free.
type Scan struct {
	rest []IDTriple // base index run not yet delivered
	del  []IDTriple // pending deletions within rest, same order
	ins  []IDTriple // pending insertions for the range, same order
	ord  order
	buf  []IDTriple // merged-batch buffer, reused across Next calls

	// Full range runs, kept so SeekVar can reposition bidirectionally
	// (a leapfrog cursor re-enters the same key group once per binding of
	// the variables above it). Slice headers only — no copies.
	rest0, del0, ins0 []IDTriple
	nb                int        // bound-prefix length of the sort key
	prefix            [3]dict.ID // bound-prefix values, index-key order

	// sub, when non-nil, makes the cursor a k-way merge over per-shard
	// child cursors (same order, disjoint triple sets — see merged.go).
	// The run fields above are unused in that mode; every method
	// delegates to the children.
	sub []*Scan
}

// initRuns records the cursor's full runs and bound-key prefix.
func (sc *Scan) initRuns(pat Pattern) {
	sc.rest0, sc.del0, sc.ins0 = sc.rest, sc.del, sc.ins
	sc.prefix, sc.nb = prefixBounds(sc.ord, pat)
}

// Scan opens a cursor over the triples matching pat. The triples are
// delivered in the sort order of the chosen index — the same order Match
// returns them in, so Scan and Match are interchangeable for equal results.
func (s *Store) Scan(pat Pattern) *Scan {
	o := orderFor(pat.boundMask())
	idx := s.idx[o]
	lo, hi := searchRange(idx, o, pat)
	sc := &Scan{rest: idx[lo:hi], ord: o}
	if s.delta != nil {
		sc.del = runFor(s.delta.del[o], o, pat)
		sc.ins = runFor(s.delta.ins[o], o, pat)
	}
	sc.initRuns(pat)
	return sc
}

// ScanSeek opens a seekable cursor over the triples matching pat, sorted
// with the unbound triple positions ordered exactly as varPos lists them
// (0=S, 1=P, 2=O). varPos must contain each unbound position of pat once;
// among the six permutation indexes there is always exactly one whose sort
// key is the bound positions followed by varPos, so the cursor walks a
// contiguous binary-searched range just like Scan. Overlay stores expose
// the same cursor over base+delta with deletions masked and insertions
// interleaved. This is the trie-iterator order contract of the leapfrog
// triejoin: level d of the trie is varPos[d].
func (s *Store) ScanSeek(pat Pattern, varPos []int) *Scan {
	mask := pat.boundMask()
	nb := 3 - len(varPos)
	chosen := numOrders
	for o := order(0); o < numOrders; o++ {
		p := orderPositions[o]
		ok := true
		for i := 0; i < nb; i++ {
			if mask&(1<<p[i]) == 0 {
				ok = false
				break
			}
		}
		for i, vp := range varPos {
			if !ok || p[nb+i] != vp {
				ok = false
				break
			}
		}
		if ok {
			chosen = o
			break
		}
	}
	if chosen == numOrders {
		panic(fmt.Sprintf("store: no index order for pattern %v with varPos %v", pat, varPos))
	}
	idx := s.idx[chosen]
	lo, hi := searchRange(idx, chosen, pat)
	sc := &Scan{rest: idx[lo:hi], ord: chosen}
	if s.delta != nil {
		sc.del = runFor(s.delta.del[chosen], chosen, pat)
		sc.ins = runFor(s.delta.ins[chosen], chosen, pat)
	}
	sc.initRuns(pat)
	return sc
}

// SeekVar repositions the cursor at the first triple of its full range
// whose unbound-position key components are >= (v0, v1, ...), comparing
// lexicographically in the cursor's index order; unused trailing
// components are ignored (pass 0). Seeks move in either direction over the
// range — the cursor's Next/Head position is reset to the seek target.
// On an overlay every run (base, deletions, insertions) is repositioned by
// its own binary search; a deletion and its base twin compare equal, so
// the every-deletion-masks-one-undelivered-triple invariant is preserved
// and Remaining stays exact.
func (sc *Scan) SeekVar(v0, v1, v2 dict.ID) {
	if sc.sub != nil {
		for _, c := range sc.sub {
			c.SeekVar(v0, v1, v2)
		}
		return
	}
	k := sc.prefix
	vs := [3]dict.ID{v0, v1, v2}
	for i := sc.nb; i < 3; i++ {
		k[i] = vs[i-sc.nb]
	}
	sc.rest = seekRun(sc.rest0, sc.ord, k)
	sc.del = seekRun(sc.del0, sc.ord, k)
	sc.ins = seekRun(sc.ins0, sc.ord, k)
}

// seekRun returns the suffix of run starting at the first triple whose key
// under o is >= k. Explicit binary search: a leapfrog join seeks in its
// innermost loop, so this must not allocate.
func seekRun(run []IDTriple, o order, k [3]dict.ID) []IDTriple {
	i, j := 0, len(run)
	for i < j {
		h := int(uint(i+j) >> 1)
		if keyLess(run[h], o, k) {
			i = h + 1
		} else {
			j = h
		}
	}
	return run[i:]
}

// keyLess reports whether t's full sort key under o is lexicographically
// below k.
func keyLess(t IDTriple, o order, k [3]dict.ID) bool {
	a, b, c := key(t, o)
	if a != k[0] {
		return a < k[0]
	}
	if b != k[1] {
		return b < k[1]
	}
	return c < k[2]
}

// Head returns the next undelivered triple without consuming it, or false
// when the cursor is exhausted. Deleted base triples at the head are
// discarded eagerly (they deliver nothing, so this never reorders the
// stream).
func (sc *Scan) Head() (IDTriple, bool) {
	if sc.sub != nil {
		_, t, ok := sc.headChild()
		return t, ok
	}
	for len(sc.rest) > 0 && len(sc.del) > 0 && sc.rest[0] == sc.del[0] {
		sc.rest = sc.rest[1:]
		sc.del = sc.del[1:]
	}
	switch {
	case len(sc.rest) == 0 && len(sc.ins) == 0:
		return IDTriple{}, false
	case len(sc.rest) == 0:
		return sc.ins[0], true
	case len(sc.ins) == 0 || !lessByOrder(sc.ins[0], sc.rest[0], sc.ord):
		return sc.rest[0], true
	default:
		return sc.ins[0], true
	}
}

// HeadVar returns the unbound-position key components of the head triple
// in the cursor's index order — the trie key a leapfrog iterator compares
// and seeks on. Trailing components beyond the unbound count are zero.
func (sc *Scan) HeadVar() ([3]dict.ID, bool) {
	t, ok := sc.Head()
	if !ok {
		return [3]dict.ID{}, false
	}
	a, b, c := key(t, sc.ord)
	full := [3]dict.ID{a, b, c}
	var out [3]dict.ID
	copy(out[:], full[sc.nb:])
	return out, true
}

// Next returns the next batch of at most max triples, or nil when the
// cursor is exhausted. max <= 0 returns everything remaining in one
// batch. Without pending delta changes the batch is a zero-copy subslice
// of the index; a merging cursor returns its internal buffer, valid until
// the next call.
func (sc *Scan) Next(max int) []IDTriple {
	if sc.sub != nil {
		return sc.nextMerged(max)
	}
	if len(sc.del) == 0 && len(sc.ins) == 0 {
		if len(sc.rest) == 0 {
			return nil
		}
		if max <= 0 || max >= len(sc.rest) {
			out := sc.rest
			sc.rest = nil
			return out
		}
		out := sc.rest[:max:max]
		sc.rest = sc.rest[max:]
		return out
	}
	n := sc.Remaining()
	if n == 0 {
		return nil
	}
	if max > 0 && max < n {
		n = max
	}
	if cap(sc.buf) < n {
		sc.buf = make([]IDTriple, 0, n)
	}
	buf := sc.buf[:0]
	for len(buf) < n {
		// Skip deleted base triples. Deletions emit nothing, so consuming
		// them eagerly never reorders the stream.
		if len(sc.rest) > 0 && len(sc.del) > 0 && sc.rest[0] == sc.del[0] {
			sc.rest = sc.rest[1:]
			sc.del = sc.del[1:]
			continue
		}
		switch {
		case len(sc.rest) == 0:
			buf = append(buf, sc.ins[0])
			sc.ins = sc.ins[1:]
		case len(sc.ins) == 0 || !lessByOrder(sc.ins[0], sc.rest[0], sc.ord):
			buf = append(buf, sc.rest[0])
			sc.rest = sc.rest[1:]
		default:
			buf = append(buf, sc.ins[0])
			sc.ins = sc.ins[1:]
		}
	}
	sc.buf = buf
	return buf
}

// Remaining returns how many triples the cursor has not yet delivered.
// Every pending deletion masks exactly one undelivered base triple (a
// cursor invariant), so the count is exact.
func (sc *Scan) Remaining() int {
	if sc.sub != nil {
		n := 0
		for _, c := range sc.sub {
			n += c.Remaining()
		}
		return n
	}
	return len(sc.rest) - len(sc.del) + len(sc.ins)
}

// ScanPartitions opens up to n cursors that jointly cover the triples
// matching pat: the merged stream Scan would deliver is split into n
// contiguous morsels at triple granularity. Concatenating the partitions'
// triples in slice order yields exactly Scan(pat)'s stream, so a
// morsel-driven executor that merges per-partition results in partition
// order reproduces the serial scan bit-for-bit. On a plain store the
// morsels are equal-sized zero-copy views of the index; on an overlay the
// split points are chosen from the larger of the base run and the insert
// run and the other runs are aligned to them by binary search, so sizes
// stay balanced up to the delta skew (some partitions may even be empty —
// they deliver nothing and preserve the concatenation order). Fewer than
// n cursors are returned when the merged range holds fewer than n
// triples; an empty range returns nil. Every cursor is independent and
// safe to drive from concurrent goroutines.
func (s *Store) ScanPartitions(pat Pattern, n int) []*Scan {
	o := orderFor(pat.boundMask())
	idx := s.idx[o]
	lo, hi := searchRange(idx, o, pat)
	base := idx[lo:hi]
	var del, ins []IDTriple
	if s.delta != nil {
		del = runFor(s.delta.del[o], o, pat)
		ins = runFor(s.delta.ins[o], o, pat)
	}
	total := len(base) - len(del) + len(ins)
	if total == 0 {
		return nil
	}
	if n < 1 {
		n = 1
	}
	if n > total {
		n = total
	}
	if len(del) == 0 && len(ins) == 0 {
		out := make([]*Scan, n)
		for i := 0; i < n; i++ {
			plo := i * len(base) / n
			phi := (i + 1) * len(base) / n
			out[i] = &Scan{rest: base[plo:phi:phi], ord: o}
			out[i].initRuns(pat)
		}
		return out
	}
	// Pick boundary triples from the larger run, then align every run to
	// the boundaries with a lower-bound search. A deleted triple and its
	// base twin compare equal, so they always land in the same partition.
	primary, secondary := base, ins
	if len(ins) > len(base) {
		primary, secondary = ins, base
	}
	lowerBound := func(run []IDTriple, t IDTriple) int {
		return sort.Search(len(run), func(i int) bool { return !lessByOrder(run[i], t, o) })
	}
	out := make([]*Scan, n)
	pPrev, sPrev, dPrev := 0, 0, 0
	for i := 0; i < n; i++ {
		pNext, sNext, dNext := len(primary), len(secondary), len(del)
		if i < n-1 {
			pNext = (i + 1) * len(primary) / n
			if pNext < len(primary) {
				boundary := primary[pNext]
				sNext = lowerBound(secondary, boundary)
				dNext = lowerBound(del, boundary)
			}
		}
		sc := &Scan{ord: o}
		if len(ins) > len(base) {
			sc.ins = primary[pPrev:pNext:pNext]
			sc.rest = secondary[sPrev:sNext:sNext]
		} else {
			sc.rest = primary[pPrev:pNext:pNext]
			sc.ins = secondary[sPrev:sNext:sNext]
		}
		sc.del = del[dPrev:dNext:dNext]
		sc.initRuns(pat)
		out[i] = sc
		pPrev, sPrev, dPrev = pNext, sNext, dNext
	}
	return out
}
