package store

import "sort"

// Scan is a batch cursor over the triples matching one pattern. On a
// plain store it walks the contiguous range of the best-fitting
// permutation index without copying: every batch is a subslice of the
// index, valid for the lifetime of the store. On an overlay store the
// cursor merges on read — the base run is streamed with deleted triples
// masked and pending insertions interleaved in index order — and batches
// are assembled in an internal buffer that is reused across Next calls
// (consume a batch before pulling the next). Either way, streaming
// executors pull batches with Next instead of materializing the full
// match slice, so leaf-scan memory is O(batch) rather than O(result).
type Scan struct {
	rest []IDTriple // base index run not yet delivered
	del  []IDTriple // pending deletions within rest, same order
	ins  []IDTriple // pending insertions for the range, same order
	ord  order
	buf  []IDTriple // merged-batch buffer, reused across Next calls
}

// Scan opens a cursor over the triples matching pat. The triples are
// delivered in the sort order of the chosen index — the same order Match
// returns them in, so Scan and Match are interchangeable for equal results.
func (s *Store) Scan(pat Pattern) *Scan {
	o := orderFor(pat.boundMask())
	idx := s.idx[o]
	lo, hi := searchRange(idx, o, pat)
	sc := &Scan{rest: idx[lo:hi], ord: o}
	if s.delta != nil {
		sc.del = runFor(s.delta.del[o], o, pat)
		sc.ins = runFor(s.delta.ins[o], o, pat)
	}
	return sc
}

// Next returns the next batch of at most max triples, or nil when the
// cursor is exhausted. max <= 0 returns everything remaining in one
// batch. Without pending delta changes the batch is a zero-copy subslice
// of the index; a merging cursor returns its internal buffer, valid until
// the next call.
func (sc *Scan) Next(max int) []IDTriple {
	if len(sc.del) == 0 && len(sc.ins) == 0 {
		if len(sc.rest) == 0 {
			return nil
		}
		if max <= 0 || max >= len(sc.rest) {
			out := sc.rest
			sc.rest = nil
			return out
		}
		out := sc.rest[:max:max]
		sc.rest = sc.rest[max:]
		return out
	}
	n := sc.Remaining()
	if n == 0 {
		return nil
	}
	if max > 0 && max < n {
		n = max
	}
	if cap(sc.buf) < n {
		sc.buf = make([]IDTriple, 0, n)
	}
	buf := sc.buf[:0]
	for len(buf) < n {
		// Skip deleted base triples. Deletions emit nothing, so consuming
		// them eagerly never reorders the stream.
		if len(sc.rest) > 0 && len(sc.del) > 0 && sc.rest[0] == sc.del[0] {
			sc.rest = sc.rest[1:]
			sc.del = sc.del[1:]
			continue
		}
		switch {
		case len(sc.rest) == 0:
			buf = append(buf, sc.ins[0])
			sc.ins = sc.ins[1:]
		case len(sc.ins) == 0 || !lessByOrder(sc.ins[0], sc.rest[0], sc.ord):
			buf = append(buf, sc.rest[0])
			sc.rest = sc.rest[1:]
		default:
			buf = append(buf, sc.ins[0])
			sc.ins = sc.ins[1:]
		}
	}
	sc.buf = buf
	return buf
}

// Remaining returns how many triples the cursor has not yet delivered.
// Every pending deletion masks exactly one undelivered base triple (a
// cursor invariant), so the count is exact.
func (sc *Scan) Remaining() int { return len(sc.rest) - len(sc.del) + len(sc.ins) }

// ScanPartitions opens up to n cursors that jointly cover the triples
// matching pat: the merged stream Scan would deliver is split into n
// contiguous morsels at triple granularity. Concatenating the partitions'
// triples in slice order yields exactly Scan(pat)'s stream, so a
// morsel-driven executor that merges per-partition results in partition
// order reproduces the serial scan bit-for-bit. On a plain store the
// morsels are equal-sized zero-copy views of the index; on an overlay the
// split points are chosen from the larger of the base run and the insert
// run and the other runs are aligned to them by binary search, so sizes
// stay balanced up to the delta skew (some partitions may even be empty —
// they deliver nothing and preserve the concatenation order). Fewer than
// n cursors are returned when the merged range holds fewer than n
// triples; an empty range returns nil. Every cursor is independent and
// safe to drive from concurrent goroutines.
func (s *Store) ScanPartitions(pat Pattern, n int) []*Scan {
	o := orderFor(pat.boundMask())
	idx := s.idx[o]
	lo, hi := searchRange(idx, o, pat)
	base := idx[lo:hi]
	var del, ins []IDTriple
	if s.delta != nil {
		del = runFor(s.delta.del[o], o, pat)
		ins = runFor(s.delta.ins[o], o, pat)
	}
	total := len(base) - len(del) + len(ins)
	if total == 0 {
		return nil
	}
	if n < 1 {
		n = 1
	}
	if n > total {
		n = total
	}
	if len(del) == 0 && len(ins) == 0 {
		out := make([]*Scan, n)
		for i := 0; i < n; i++ {
			plo := i * len(base) / n
			phi := (i + 1) * len(base) / n
			out[i] = &Scan{rest: base[plo:phi:phi], ord: o}
		}
		return out
	}
	// Pick boundary triples from the larger run, then align every run to
	// the boundaries with a lower-bound search. A deleted triple and its
	// base twin compare equal, so they always land in the same partition.
	primary, secondary := base, ins
	if len(ins) > len(base) {
		primary, secondary = ins, base
	}
	lowerBound := func(run []IDTriple, t IDTriple) int {
		return sort.Search(len(run), func(i int) bool { return !lessByOrder(run[i], t, o) })
	}
	out := make([]*Scan, n)
	pPrev, sPrev, dPrev := 0, 0, 0
	for i := 0; i < n; i++ {
		pNext, sNext, dNext := len(primary), len(secondary), len(del)
		if i < n-1 {
			pNext = (i + 1) * len(primary) / n
			if pNext < len(primary) {
				boundary := primary[pNext]
				sNext = lowerBound(secondary, boundary)
				dNext = lowerBound(del, boundary)
			}
		}
		sc := &Scan{ord: o}
		if len(ins) > len(base) {
			sc.ins = primary[pPrev:pNext:pNext]
			sc.rest = secondary[sPrev:sNext:sNext]
		} else {
			sc.rest = primary[pPrev:pNext:pNext]
			sc.ins = secondary[sPrev:sNext:sNext]
		}
		sc.del = del[dPrev:dNext:dNext]
		out[i] = sc
		pPrev, sPrev, dPrev = pNext, sNext, dNext
	}
	return out
}
