package store

// Scan is a batch cursor over the triples matching one pattern. It walks
// the contiguous range of the best-fitting permutation index without
// copying: every batch is a subslice of the index, valid for the lifetime
// of the store. Streaming executors pull batches with Next instead of
// materializing the full match slice, so leaf-scan memory is O(batch)
// rather than O(result).
type Scan struct {
	rest []IDTriple
	ord  order
}

// Scan opens a cursor over the triples matching pat. The triples are
// delivered in the sort order of the chosen index — the same order Match
// returns them in, so Scan and Match are interchangeable for equal results.
func (s *Store) Scan(pat Pattern) *Scan {
	matches, o := s.Match(pat)
	return &Scan{rest: matches, ord: o}
}

// Next returns the next batch of at most max triples as a zero-copy
// subslice of the index, or nil when the cursor is exhausted. max <= 0
// returns everything remaining in one batch.
func (sc *Scan) Next(max int) []IDTriple {
	if len(sc.rest) == 0 {
		return nil
	}
	if max <= 0 || max >= len(sc.rest) {
		out := sc.rest
		sc.rest = nil
		return out
	}
	out := sc.rest[:max:max]
	sc.rest = sc.rest[max:]
	return out
}

// Remaining returns how many triples the cursor has not yet delivered.
func (sc *Scan) Remaining() int { return len(sc.rest) }

// ScanPartitions opens up to n cursors that jointly cover the triples
// matching pat: the contiguous index range Match would return is split into
// n contiguous morsels at triple granularity, sized within one triple of
// each other. Concatenating the partitions' triples in slice order yields
// exactly Scan(pat)'s stream, so a morsel-driven executor that merges
// per-partition results in partition order reproduces the serial scan
// bit-for-bit. Fewer than n cursors are returned when the range holds fewer
// than n triples; an empty range returns nil. Every cursor is an
// independent zero-copy view of the same immutable index, safe to drive
// from concurrent goroutines.
func (s *Store) ScanPartitions(pat Pattern, n int) []*Scan {
	matches, o := s.Match(pat)
	if len(matches) == 0 {
		return nil
	}
	if n < 1 {
		n = 1
	}
	if n > len(matches) {
		n = len(matches)
	}
	out := make([]*Scan, n)
	for i := 0; i < n; i++ {
		lo := i * len(matches) / n
		hi := (i + 1) * len(matches) / n
		out[i] = &Scan{rest: matches[lo:hi:hi], ord: o}
	}
	return out
}
