package store

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/rdf"
)

func TestLoadAnyAutoDetect(t *testing.T) {
	dir := t.TempDir()

	ntPath := filepath.Join(dir, "data.nt")
	nt := `<http://x/a> <http://x/p> <http://x/b> .
<http://x/b> <http://x/p> <http://x/c> .
`
	if err := os.WriteFile(ntPath, []byte(nt), 0o644); err != nil {
		t.Fatal(err)
	}
	fromNT, err := LoadAny(ntPath)
	if err != nil {
		t.Fatal(err)
	}
	if fromNT.Len() != 2 {
		t.Fatalf("nt: %d triples", fromNT.Len())
	}

	// The same data as v1 and v2 snapshots loads identically.
	for _, version := range []int{1, 2} {
		path := filepath.Join(dir, "data.snap")
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := fromNT.WriteSnapshotVersion(f, version); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		fromSnap, err := LoadAny(path)
		if err != nil {
			t.Fatalf("v%d: %v", version, err)
		}
		if fromSnap.Len() != fromNT.Len() {
			t.Fatalf("v%d: %d triples", version, fromSnap.Len())
		}
		pid, ok := fromSnap.Dict().Lookup(rdf.NewIRI("http://x/p"))
		if !ok || fromSnap.Count(Pattern{P: pid}) != 2 {
			t.Fatalf("v%d: predicate lookup broken", version)
		}
	}

	if _, err := LoadAny(filepath.Join(dir, "missing.nt")); err == nil {
		t.Fatal("missing file must error")
	}
	bad := filepath.Join(dir, "bad.nt")
	if err := os.WriteFile(bad, []byte("not ntriples at all\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadAny(bad); err == nil {
		t.Fatal("malformed N-Triples must error")
	}
}
