package store

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/rdf"
)

func TestLoadAnyAutoDetect(t *testing.T) {
	dir := t.TempDir()

	ntPath := filepath.Join(dir, "data.nt")
	nt := `<http://x/a> <http://x/p> <http://x/b> .
<http://x/b> <http://x/p> <http://x/c> .
`
	if err := os.WriteFile(ntPath, []byte(nt), 0o644); err != nil {
		t.Fatal(err)
	}
	fromNT, err := LoadAny(ntPath)
	if err != nil {
		t.Fatal(err)
	}
	if fromNT.Len() != 2 {
		t.Fatalf("nt: %d triples", fromNT.Len())
	}

	// The same data as v1 and v2 snapshots loads identically.
	for _, version := range []int{1, 2} {
		path := filepath.Join(dir, "data.snap")
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := fromNT.WriteSnapshotVersion(f, version); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		fromSnap, err := LoadAny(path)
		if err != nil {
			t.Fatalf("v%d: %v", version, err)
		}
		if fromSnap.Len() != fromNT.Len() {
			t.Fatalf("v%d: %d triples", version, fromSnap.Len())
		}
		pid, ok := fromSnap.Dict().Lookup(rdf.NewIRI("http://x/p"))
		if !ok || fromSnap.Count(Pattern{P: pid}) != 2 {
			t.Fatalf("v%d: predicate lookup broken", version)
		}
	}

	if _, err := LoadAny(filepath.Join(dir, "missing.nt")); err == nil {
		t.Fatal("missing file must error")
	}
	bad := filepath.Join(dir, "bad.nt")
	if err := os.WriteFile(bad, []byte("not ntriples at all\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadAny(bad); err == nil {
		t.Fatal("malformed N-Triples must error")
	}
}

// errAfterReader yields its payload, then fails with err instead of EOF.
type errAfterReader struct {
	data []byte
	err  error
}

func (r *errAfterReader) Read(p []byte) (int, error) {
	if len(r.data) == 0 {
		return 0, r.err
	}
	n := copy(p, r.data)
	r.data = r.data[n:]
	return n, nil
}

// The format sniff used to swallow every ReadFull error, so a reader that
// failed with a real I/O error inside the first 8 bytes fell through to
// the N-Triples parser and surfaced as a bogus parse error (or, for an
// empty prefix, as a silently empty store).
func TestLoadAnyReaderPropagatesSniffError(t *testing.T) {
	sentinel := errors.New("disk on fire")
	for _, prefix := range [][]byte{nil, []byte("<ht")} {
		_, err := LoadAnyReader(&errAfterReader{data: prefix, err: sentinel})
		if !errors.Is(err, sentinel) {
			t.Fatalf("prefix %q: err = %v, want the sniff's I/O error", prefix, err)
		}
	}
}

// Short and empty inputs are still legal N-Triples, not errors.
func TestLoadAnyReaderShortInput(t *testing.T) {
	for _, in := range []string{"", "\n", "# c\n"} {
		st, err := LoadAnyReader(&errAfterReader{data: []byte(in), err: io.EOF})
		if err != nil {
			t.Fatalf("%q: %v", in, err)
		}
		if st.Len() != 0 {
			t.Fatalf("%q: %d triples", in, st.Len())
		}
	}
}

// LoadAnyMapped sniffs and serves from a single file descriptor: a v4
// snapshot comes back mapped, everything else heap-loaded, and the
// mapping must survive the sniff fd being closed (LoadAnyMapped closes
// its *os.File before returning).
func TestLoadAnyMappedSingleFd(t *testing.T) {
	dir := t.TempDir()
	b := NewBuilder()
	if err := b.Add(rdf.NewTriple(rdf.NewIRI("http://x/a"), rdf.NewIRI("http://x/p"), rdf.NewIRI("http://x/b"))); err != nil {
		t.Fatal(err)
	}
	st := b.Build()

	v4 := filepath.Join(dir, "data.v4.snap")
	f, err := os.Create(v4)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.WriteSnapshotVersion(f, 4); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	mapped, err := LoadAnyMapped(v4)
	if err != nil {
		t.Fatal(err)
	}
	if mapped.Backend() != "mapped" {
		t.Fatalf("v4 backend = %q, want mapped", mapped.Backend())
	}
	if mapped.Len() != 1 {
		t.Fatalf("v4: %d triples", mapped.Len())
	}
	// Read through the mapping after the open fd is long gone.
	if got, _ := mapped.Match(Pattern{}); len(got) != 1 {
		t.Fatalf("mapped match: %d triples", len(got))
	}
	if m := mapped.Mapping(); m != nil {
		m.Release()
	}

	nt := filepath.Join(dir, "data.nt")
	if err := os.WriteFile(nt, []byte("<http://x/a> <http://x/p> <http://x/b> .\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	heap, err := LoadAnyMapped(nt)
	if err != nil {
		t.Fatal(err)
	}
	if heap.Backend() != "heap" || heap.Len() != 1 {
		t.Fatalf("nt fallback: backend %q, %d triples", heap.Backend(), heap.Len())
	}

	short := filepath.Join(dir, "short")
	if err := os.WriteFile(short, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadAnyMapped(short); err == nil {
		t.Fatal("1-byte non-N-Triples input must error")
	}
}
