package store

import (
	"bytes"
	"io"
	"os"
	"strings"
)

// LoadAny builds a store from path, auto-detecting the format: binary
// snapshots (any version) are recognized by their "RDFSNAP" magic, anything
// else is parsed as N-Triples. It is the one loading path shared by
// cmd/queryrun, cmd/benchrun and cmd/served.
func LoadAny(path string) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadAnyReader(f)
}

// LoadAnyMapped is LoadAny that serves v4 snapshots straight from an OS
// file mapping: a v4 file comes back as an OpenMapped store in O(1) with
// no deserialization, every other format falls through to the heap path.
// It is what cmd/served uses by default (see its -heap-load flag).
//
// The sniff and the load share one file descriptor: the 8-byte magic is
// read, then the same fd is either mmap'd (v4) or rewound and parsed, so a
// concurrent rewrite of path between sniff and load cannot switch the
// format under us.
func LoadAnyMapped(path string) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var magic [8]byte
	n, err := io.ReadFull(f, magic[:])
	if err != nil && err != io.EOF && err != io.ErrUnexpectedEOF {
		return nil, err
	}
	if n == 8 && string(magic[:]) == snapshotMagicV4 {
		return OpenMappedFile(f)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	return LoadAnyReader(f)
}

// LoadAnyReader is LoadAny over an already-open reader. The format sniff
// reads the first 8 bytes and stitches them back with io.MultiReader, so
// non-seekable inputs (pipes, process substitution) work too. A short
// input (under 8 bytes) is legal — it is parsed as N-Triples — but a read
// that fails with a real I/O error is reported as that error instead of
// falling through to a confusing parse failure.
func LoadAnyReader(r io.Reader) (*Store, error) {
	var magic [8]byte
	n, err := io.ReadFull(r, magic[:])
	if err != nil && err != io.EOF && err != io.ErrUnexpectedEOF {
		return nil, err
	}
	full := io.MultiReader(bytes.NewReader(magic[:n]), r)
	if n == 8 && strings.HasPrefix(string(magic[:]), "RDFSNAP") {
		return ReadSnapshot(full)
	}
	b := NewBuilder()
	if err := b.LoadNTriples(full); err != nil {
		return nil, err
	}
	return b.Build(), nil
}
