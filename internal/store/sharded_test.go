package store

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/rdf"
)

var shardCounts = []int{1, 2, 4, 7}

// drainScan collects a cursor's whole stream in mixed batch sizes, which
// exercises both the merge path and the zero-copy plain-run path.
func drainScan(sc *Scan) []IDTriple {
	var out []IDTriple
	max := 3
	for {
		batch := sc.Next(max)
		if batch == nil {
			return out
		}
		out = append(out, batch...)
		max = max*2 + 1
	}
}

// patternShapes returns one pattern per bound-mask shape, with values
// drawn from the store so bound patterns actually match.
func patternShapes(st Source) []Pattern {
	all, _ := st.Match(Pattern{})
	t := all[len(all)/2]
	return []Pattern{
		{},
		{S: t.S},
		{P: t.P},
		{O: t.O},
		{S: t.S, P: t.P},
		{S: t.S, O: t.O},
		{P: t.P, O: t.O},
		{S: t.S, P: t.P, O: t.O},
	}
}

// checkSourceEquivalence asserts that sh and ref answer every read-path
// method identically — the stream-identity contract behind shard-count
// invariance.
func checkSourceEquivalence(t *testing.T, sh, ref Source) {
	t.Helper()
	if sh.Len() != ref.Len() {
		t.Fatalf("Len: %d != %d", sh.Len(), ref.Len())
	}
	for _, pat := range patternShapes(ref) {
		if got, want := sh.Count(pat), ref.Count(pat); got != want {
			t.Fatalf("Count(%+v): %d != %d", pat, got, want)
		}
		got, _ := sh.Match(pat)
		want, _ := ref.Match(pat)
		if !equalTriples(got, want) {
			t.Fatalf("Match(%+v): %v != %v", pat, got, want)
		}
		if got := drainScan(sh.Scan(pat)); !equalTriples(got, want) {
			t.Fatalf("Scan(%+v): %v != %v", pat, got, want)
		}
		gotBuf, _ := sh.MatchBuf(pat, make([]IDTriple, 0, 4))
		if !equalTriples(gotBuf, want) {
			t.Fatalf("MatchBuf(%+v): %v != %v", pat, gotBuf, want)
		}
		for _, n := range []int{1, 2, 3, 8, 64} {
			var cat []IDTriple
			for _, part := range sh.ScanPartitions(pat, n) {
				cat = append(cat, drainScan(part)...)
			}
			if !equalTriples(cat, want) {
				t.Fatalf("ScanPartitions(%+v, %d): concat %v != %v", pat, n, cat, want)
			}
		}
	}
	// Seekable trie cursors: drain in PSO and POS orders per predicate.
	for _, p := range ref.Predicates() {
		for _, varPos := range [][]int{{0, 2}, {2, 0}} {
			got := drainScan(sh.ScanSeek(Pattern{P: p}, varPos))
			want := drainScan(ref.ScanSeek(Pattern{P: p}, varPos))
			if !equalTriples(got, want) {
				t.Fatalf("ScanSeek(P=%d, %v): %v != %v", p, varPos, got, want)
			}
		}
	}
	if !reflect.DeepEqual(sh.Predicates(), ref.Predicates()) {
		t.Fatalf("Predicates: %v != %v", sh.Predicates(), ref.Predicates())
	}
	for _, p := range ref.Predicates() {
		if got, want := sh.PredicateStats(p), ref.PredicateStats(p); got != want {
			t.Fatalf("PredicateStats(%d): %+v != %+v", p, got, want)
		}
	}
	if tid, ok := ref.Dict().Lookup(rdf.NewIRI(rdf.RDFType)); ok {
		for _, c := range ref.DistinctValues(2, Pattern{P: tid}) {
			got := sh.SubjectsOfClass(c)
			want := ref.SubjectsOfClass(c)
			if len(got) != len(want) || (len(got) > 0 && !reflect.DeepEqual(got, want)) {
				t.Fatalf("SubjectsOfClass(%d): %v != %v", c, got, want)
			}
		}
	}
	for pos := 0; pos < 3; pos++ {
		for _, pat := range patternShapes(ref)[:4] {
			got := sh.DistinctValues(pos, pat)
			want := ref.DistinctValues(pos, pat)
			if len(got) != len(want) || (len(got) > 0 && !reflect.DeepEqual(got, want)) {
				t.Fatalf("DistinctValues(%d, %+v): %v != %v", pos, pat, got, want)
			}
		}
	}
}

func TestShardedReadEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ref := buildFrom(t, randomTriples(rng, 400))
	for _, n := range shardCounts {
		sh := NewSharded(ref, n)
		if sh.NumShards() != n {
			t.Fatalf("NumShards = %d, want %d", sh.NumShards(), n)
		}
		checkSourceEquivalence(t, sh, ref)
	}
}

func TestShardedOverlayEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	triples := randomTriples(rng, 300)
	base := buildFrom(t, triples)

	// Identical op batches against the single store's delta and each
	// sharded delta; the overlays must stay read-equivalent, exact stats
	// included.
	var ops []DeltaOp
	ops = append(ops, DeltaOp{Insert: true, Triples: randomTriples(rng, 60)})
	del := triples[10:40]
	ops = append(ops, DeltaOp{Triples: del})
	ops = append(ops, DeltaOp{Insert: true, Triples: append([]rdf.Triple{trp("brand-new-s", "brand-new-p", "brand-new-o")}, del[:5]...)})

	d, err := base.NewDelta().ApplyOps(ops)
	if err != nil {
		t.Fatal(err)
	}
	refOv := d.Overlay()

	for _, n := range shardCounts {
		sh := NewSharded(base, n)
		sd, err := sh.NewDelta().ApplyOps(ops)
		if err != nil {
			t.Fatal(err)
		}
		shOv := sd.Overlay()
		if gi, gd := shOv.Pending(); gi != d.InsertCount() || gd != d.DeleteCount() {
			t.Fatalf("shards=%d: pending (%d,%d) != (%d,%d)", n, gi, gd, d.InsertCount(), d.DeleteCount())
		}
		checkSourceEquivalence(t, shOv, refOv)

		// Committing folds every shard; the result must stay equivalent and
		// report no pending changes.
		shCommit := sd.Commit(BuildOptions{})
		if i, dd := shCommit.Pending(); i != 0 || dd != 0 {
			t.Fatalf("shards=%d: commit left pending (%d,%d)", n, i, dd)
		}
		checkSourceEquivalence(t, shCommit, refOv)

		// Updating the overlay again must extend the same per-shard deltas.
		sd2, err := shOv.NewDelta().ApplyOps([]DeltaOp{{Insert: true, Triples: randomTriples(rng, 10)}})
		if err != nil {
			t.Fatal(err)
		}
		if sd2.Size() <= sd.Size() {
			t.Fatalf("shards=%d: overlay update did not extend the pending delta", n)
		}
	}
}

func TestShardedApplyOpsNoChangeIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	triples := randomTriples(rng, 50)
	base := buildFrom(t, triples)
	sh := NewSharded(base, 4)
	sd := sh.NewDelta()

	// Inserting present triples and deleting absent ones is a no-op; the
	// ShardedDelta must come back pointer-identical so the service skips
	// republishing.
	got, err := sd.ApplyOps([]DeltaOp{
		{Insert: true, Triples: triples[:5]},
		{Triples: []rdf.Triple{trp("nobody", "nothing", "nowhere")}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != sd {
		t.Fatal("no-change ApplyOps must return the receiver")
	}
	if _, ok := base.Dict().Lookup(iri("nobody")); ok {
		t.Fatal("deleting an unknown subject must not grow the dictionary")
	}
}

// Sharded updates that introduce new terms must assign exactly the IDs an
// unsharded update would: inserts are pre-encoded in operation order
// before routing. Two independent stores (separate dictionaries) built
// from the same input receive the same ops; their raw ID streams must
// coincide.
func TestShardedUpdateDictOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	triples := randomTriples(rng, 100)
	single := buildFrom(t, triples)
	sharded := NewSharded(buildFrom(t, triples), 4)

	ops := []DeltaOp{
		{Insert: true, Triples: []rdf.Triple{
			trp("new-a", "new-p1", "new-x"),
			trp("new-b", "new-p2", "new-y"),
			trp("new-c", "new-p1", "new-a"),
		}},
		{Triples: triples[:7]},
		{Insert: true, Triples: []rdf.Triple{trp("new-d", "new-p2", "new-b")}},
	}
	d, err := single.NewDelta().ApplyOps(ops)
	if err != nil {
		t.Fatal(err)
	}
	sd, err := sharded.NewDelta().ApplyOps(ops)
	if err != nil {
		t.Fatal(err)
	}
	refOv, shOv := d.Overlay(), sd.Overlay()
	if refOv.Dict().Len() != shOv.Dict().Len() {
		t.Fatalf("dict length %d != %d", shOv.Dict().Len(), refOv.Dict().Len())
	}
	want, _ := refOv.Match(Pattern{})
	got, _ := shOv.Match(Pattern{})
	if !equalTriples(got, want) {
		t.Fatalf("raw ID streams diverge: %v != %v", got, want)
	}
}

func TestShardedSnapshotRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	base := buildFrom(t, randomTriples(rng, 250))
	sh := NewSharded(base, 4)
	dir := t.TempDir() + "/snap"
	if err := WriteSharded(dir, sh); err != nil {
		t.Fatal(err)
	}
	if !IsShardedSnapshot(dir) {
		t.Fatal("written directory not recognized as sharded snapshot")
	}
	if IsShardedSnapshot(dir + "/shard-0000.snap") {
		t.Fatal("plain shard file misdetected as sharded snapshot")
	}
	for _, heap := range []bool{true, false} {
		got, err := LoadSharded(dir, heap)
		if err != nil {
			t.Fatal(err)
		}
		checkSourceEquivalence(t, got, base)
		// All shards must share one dictionary object so sharded updates
		// agree on new-term IDs.
		for i := 0; i < got.NumShards(); i++ {
			if got.Shard(i).Dict() != got.Dict() {
				t.Fatalf("heap=%v: shard %d has its own dictionary", heap, i)
			}
		}
		if !heap {
			if n := len(got.Mappings()); n != 4 {
				t.Fatalf("mapped sharded load: %d mappings, want 4", n)
			}
			// Updates over the mapped federation must behave like heap ones.
			sd, err := got.NewDelta().ApplyOps([]DeltaOp{{Insert: true, Triples: []rdf.Triple{trp("zz", "zp", "zo")}}})
			if err != nil {
				t.Fatal(err)
			}
			if sd.InsertCount() != 1 {
				t.Fatalf("mapped sharded update: %d pending inserts", sd.InsertCount())
			}
			for _, m := range got.Mappings() {
				m.Release()
			}
		}
	}
}

func TestShardedBackendNaming(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	base := buildFrom(t, randomTriples(rng, 60))
	sh := NewSharded(base, 3)
	if got := sh.Backend(); got != "sharded(3, heap)" {
		t.Fatalf("Backend = %q", got)
	}
	if sh.BaseLen() != sh.Len() {
		t.Fatalf("BaseLen %d != Len %d for pristine shards", sh.BaseLen(), sh.Len())
	}
}
