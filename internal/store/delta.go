package store

import (
	"fmt"
	"sort"

	"repro/internal/dict"
	"repro/internal/rdf"
)

// This file implements the updatable-store layer: an immutable Delta of
// insertions and deletions against a base Store, published either as an
// overlay snapshot (Overlay: the base's indexes stay untouched and every
// read merges the delta in on the fly) or folded into a fresh fully
// indexed store (Commit). Both results are ordinary immutable *Store
// values, so the MVCC story is the existing one: writers build a new
// snapshot and swap an atomic pointer; in-flight readers keep the snapshot
// they pinned.
//
// Invariants (established by Apply, validated by the v3 snapshot reader):
//
//   - ins ∩ base = ∅ — an insertion never duplicates a base triple;
//   - del ⊆ base — a deletion always names an existing base triple;
//   - ins ∩ del = ∅ — a triple is never both inserted and deleted.
//
// These keep every overlay count exact: |overlay| = |base| − |del| + |ins|
// holds for the whole store and for any index range, which is what lets
// the overlay's Count/Len/PredicateStats agree bit-for-bit with a store
// rebuilt from the merged triple set — and therefore lets the optimizer
// pick the same plan over either, the property the differential harness
// asserts.

// Delta is an immutable batch of insertions and deletions over a base
// Store. The insert and delete sets are kept sorted under every
// permutation order, so every index range the base can answer has a
// matching delta run and all permutation indexes stay virtually
// consistent under overlay reads. Create one with Store.NewDelta, extend
// it with Apply (copy-on-write; the receiver is never mutated), and
// publish it with Overlay or Commit.
type Delta struct {
	base *Store
	ins  [numOrders][]IDTriple
	del  [numOrders][]IDTriple
}

// NewDelta returns the pending delta of s: the empty delta for a plain
// store, or the overlay's current delta so updates over an overlay
// snapshot extend it rather than stack overlays.
func (s *Store) NewDelta() *Delta {
	if s.delta != nil {
		return s.delta
	}
	return &Delta{base: s}
}

// Delta returns the delta an overlay store reads through, or nil for a
// plain (fully indexed) store.
func (s *Store) Delta() *Delta { return s.delta }

// Base returns the store the delta applies to.
func (d *Delta) Base() *Store { return d.base }

// InsertCount returns the number of pending inserted triples.
func (d *Delta) InsertCount() int { return len(d.ins[orderSPO]) }

// DeleteCount returns the number of pending deleted triples.
func (d *Delta) DeleteCount() int { return len(d.del[orderSPO]) }

// Size returns the total number of pending changes (inserts + deletes) —
// the quantity auto-compaction policies threshold on.
func (d *Delta) Size() int { return d.InsertCount() + d.DeleteCount() }

// Empty reports whether the delta holds no changes.
func (d *Delta) Empty() bool { return d.Size() == 0 }

// contains reports whether the base store holds t.
func (s *Store) baseContains(t IDTriple) bool {
	idx := s.idx[orderSPO]
	lo, hi := searchRange(idx, orderSPO, Pattern{S: t.S, P: t.P, O: t.O})
	return hi > lo
}

// DeltaOp is one insert-or-delete batch of an update. A multi-operation
// update (e.g. a parsed SPARQL-Update request) folds into a Delta through
// ApplyOps with one sort at the end instead of one per operation.
type DeltaOp struct {
	Insert  bool // true inserts Triples, false deletes them
	Triples []rdf.Triple
}

// Apply returns a Delta extending d with the given insertions and
// deletions, under RDF set semantics applied in argument order (all
// inserts, then all deletes): inserting a triple already present (in the
// base and not deleted, or already inserted) is a no-op; inserting a
// deleted base triple resurrects it; deleting an inserted triple removes
// the insertion; deleting an absent triple is a no-op. New terms are
// encoded into the base store's shared dictionary. d itself is never
// mutated, so snapshots holding it stay valid; when nothing changes, d
// itself is returned (callers can use pointer equality to skip
// republishing).
func (d *Delta) Apply(ins, del []rdf.Triple) (*Delta, error) {
	var ops []DeltaOp
	if len(ins) > 0 {
		ops = append(ops, DeltaOp{Insert: true, Triples: ins})
	}
	if len(del) > 0 {
		ops = append(ops, DeltaOp{Triples: del})
	}
	return d.ApplyOps(ops)
}

// ApplyOps is Apply over an ordered operation sequence. It is
// incremental: membership in the pending sets is answered by binary
// search on the existing sorted runs plus four small touch-sets (triples
// this call adds to / removes from each set), and each order's new run is
// produced by one linear merge of the old run with the sorted touches —
// no per-update rebuild of the whole delta and no full re-sort, so a
// k-triple update against an n-change pending delta costs O(k log n)
// bookkeeping plus the unavoidable copy-on-write O(n) per order. Returns
// d itself when the ops leave the delta semantically unchanged (including
// an insert cancelled by a later delete in the same call), so callers can
// skip republishing on pointer equality.
func (d *Delta) ApplyOps(ops []DeltaOp) (*Delta, error) {
	for _, op := range ops {
		for _, t := range op.Triples {
			if !t.Valid() {
				return nil, fmt.Errorf("store: invalid triple %v", t)
			}
		}
	}
	var (
		dd     = d.base.dict
		oldIns = d.ins[orderSPO]
		oldDel = d.del[orderSPO]
		// Touch-sets: what this call adds to / removes from each pending
		// set, relative to d. Empty at the end ⇔ nothing changed.
		insAdd = map[IDTriple]struct{}{}
		insRem = map[IDTriple]struct{}{}
		delAdd = map[IDTriple]struct{}{}
		delRem = map[IDTriple]struct{}{}
	)
	member := func(old []IDTriple, rem, add map[IDTriple]struct{}, it IDTriple) bool {
		if _, ok := add[it]; ok {
			return true
		}
		if _, ok := rem[it]; ok {
			return false
		}
		return sortedContains(old, orderSPO, it)
	}
	// remove drops a current member (it is in the add-set or the old
	// run); insert admits a current non-member (it may re-admit an old
	// entry removed earlier in this call).
	remove := func(rem, add map[IDTriple]struct{}, it IDTriple) {
		if _, ok := add[it]; ok {
			delete(add, it)
			return
		}
		rem[it] = struct{}{}
	}
	insert := func(rem, add map[IDTriple]struct{}, it IDTriple) {
		if _, ok := rem[it]; ok {
			delete(rem, it)
			return
		}
		add[it] = struct{}{}
	}
	for _, op := range ops {
		for _, t := range op.Triples {
			if op.Insert {
				it := IDTriple{S: dd.Encode(t.S), P: dd.Encode(t.P), O: dd.Encode(t.O)}
				switch {
				case member(oldDel, delRem, delAdd, it):
					remove(delRem, delAdd, it) // resurrect a deleted base triple
				case d.base.baseContains(it) || member(oldIns, insRem, insAdd, it):
					// Already present.
				default:
					insert(insRem, insAdd, it)
				}
				continue
			}
			// Lookup-only: deleting a triple with unknown terms is a no-op
			// and must not grow the dictionary.
			s, okS := dd.Lookup(t.S)
			p, okP := dd.Lookup(t.P)
			o, okO := dd.Lookup(t.O)
			if !okS || !okP || !okO {
				continue
			}
			it := IDTriple{S: s, P: p, O: o}
			switch {
			case member(oldIns, insRem, insAdd, it):
				remove(insRem, insAdd, it) // cancel a pending insert
			case member(oldDel, delRem, delAdd, it):
				// Already deleted.
			case d.base.baseContains(it):
				insert(delRem, delAdd, it)
			}
		}
	}
	if len(insAdd)+len(insRem)+len(delAdd)+len(delRem) == 0 {
		return d, nil
	}
	out := &Delta{base: d.base}
	for o := order(0); o < numOrders; o++ {
		out.ins[o] = mergeTouches(d.ins[o], insAdd, insRem, o)
		out.del[o] = mergeTouches(d.del[o], delAdd, delRem, o)
	}
	return out, nil
}

// mergeTouches produces a sorted run from an existing one plus small
// add/remove touch-sets: the additions are sorted on their own and merged
// into the old run in one linear pass that skips removed entries.
func mergeTouches(old []IDTriple, add, rem map[IDTriple]struct{}, o order) []IDTriple {
	if len(add) == 0 && len(rem) == 0 {
		return old
	}
	added := setToSlice(add)
	sortByOrder(added, o)
	out := make([]IDTriple, 0, len(old)+len(added)-len(rem))
	for len(old) > 0 || len(added) > 0 {
		if len(old) > 0 {
			if _, dead := rem[old[0]]; dead {
				old = old[1:]
				continue
			}
		}
		switch {
		case len(old) == 0:
			out = append(out, added[0])
			added = added[1:]
		case len(added) == 0 || !lessByOrder(added[0], old[0], o):
			out = append(out, old[0])
			old = old[1:]
		default:
			out = append(out, added[0])
			added = added[1:]
		}
	}
	return out
}

// setSorted installs the insert and delete sets, sorting them under every
// permutation order.
func (d *Delta) setSorted(ins, del []IDTriple) {
	for o := order(0); o < numOrders; o++ {
		if len(ins) > 0 {
			cp := make([]IDTriple, len(ins))
			copy(cp, ins)
			sortByOrder(cp, o)
			d.ins[o] = cp
		}
		if len(del) > 0 {
			cp := make([]IDTriple, len(del))
			copy(cp, del)
			sortByOrder(cp, o)
			d.del[o] = cp
		}
	}
}

func setToSlice(set map[IDTriple]struct{}) []IDTriple {
	out := make([]IDTriple, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	return out
}

// runFor returns the subrange of a delta slice (sorted by o) matching
// pat's bound prefix — the delta-side counterpart of searchRange on a base
// index.
func runFor(idx []IDTriple, o order, pat Pattern) []IDTriple {
	lo, hi := searchRange(idx, o, pat)
	return idx[lo:hi]
}

// mergeRuns streams the union of a base index run and an insert run (both
// sorted by o), masking the delete run (sorted by o, a subset of the base
// run), calling fn for every surviving triple in index order.
func mergeRuns(base, del, ins []IDTriple, o order, fn func(IDTriple)) {
	for len(base) > 0 || len(ins) > 0 {
		// Skip deleted base triples; deletions never reorder emissions, so
		// consuming them eagerly is safe.
		if len(base) > 0 && len(del) > 0 && base[0] == del[0] {
			base = base[1:]
			del = del[1:]
			continue
		}
		switch {
		case len(base) == 0:
			fn(ins[0])
			ins = ins[1:]
		case len(ins) == 0:
			fn(base[0])
			base = base[1:]
		case lessByOrder(ins[0], base[0], o):
			fn(ins[0])
			ins = ins[1:]
		default:
			fn(base[0])
			base = base[1:]
		}
	}
}

// Overlay returns an immutable snapshot that reads the base through the
// delta: Match, Count, Scan, ScanPartitions, Len, PredicateStats,
// SubjectsOfClass and DistinctValues all observe the merged triple set,
// with exactly the values a store rebuilt from that set would report. The
// base's six permutation indexes are shared, not copied; only the
// statistics touched by the delta are recomputed (one merged pass over
// each affected predicate run and rdf:type class). An empty delta returns
// the base itself.
func (d *Delta) Overlay() *Store {
	if d.Empty() {
		return d.base
	}
	base := d.base
	s := &Store{
		dict:  base.dict,
		n:     base.n - d.DeleteCount() + d.InsertCount(),
		src:   base.src, // overlay shares the base's backing, heap or mapped
		idx:   base.idx,
		delta: d,
	}
	s.pstats = d.patchedPredStats(s)
	s.typeID, s.typeIdx = d.patchedTypeIndex(s)
	return s
}

// patchedPredStats rebuilds the per-predicate statistics entries for every
// predicate the delta touches, by one merged pass over that predicate's
// PSO run (count + distinct subjects) and POS run (distinct objects).
// Untouched predicates share the base's exact entries.
func (d *Delta) patchedPredStats(s *Store) map[dict.ID]PredStats {
	base := d.base
	touched := make(map[dict.ID]struct{})
	for _, t := range d.ins[orderSPO] {
		touched[t.P] = struct{}{}
	}
	for _, t := range d.del[orderSPO] {
		touched[t.P] = struct{}{}
	}
	out := make(map[dict.ID]PredStats, len(base.pstats)+len(touched))
	for p, st := range base.pstats {
		out[p] = st
	}
	for p := range touched {
		pat := Pattern{P: p}
		st := PredStats{}
		var lastS dict.ID
		pso := base.idx[orderPSO]
		lo, hi := searchRange(pso, orderPSO, pat)
		mergeRuns(pso[lo:hi], runFor(d.del[orderPSO], orderPSO, pat), runFor(d.ins[orderPSO], orderPSO, pat), orderPSO, func(t IDTriple) {
			st.Count++
			if st.Count == 1 || t.S != lastS {
				st.DistinctS++
				lastS = t.S
			}
		})
		if st.Count == 0 {
			delete(out, p)
			continue
		}
		var lastO dict.ID
		distO := 0
		pos := base.idx[orderPOS]
		lo, hi = searchRange(pos, orderPOS, pat)
		mergeRuns(pos[lo:hi], runFor(d.del[orderPOS], orderPOS, pat), runFor(d.ins[orderPOS], orderPOS, pat), orderPOS, func(t IDTriple) {
			if distO == 0 || t.O != lastO {
				distO++
				lastO = t.O
			}
		})
		st.DistinctO = distO
		out[p] = st
	}
	return out
}

// patchedTypeIndex rebuilds the class → sorted-member-subjects entries for
// every rdf:type class the delta touches. The rdf:type ID is re-resolved
// from the shared dictionary, so a delta inserting the very first rdf:type
// triple makes the type index appear on the overlay.
func (d *Delta) patchedTypeIndex(s *Store) (dict.ID, map[dict.ID][]dict.ID) {
	base := d.base
	typeID, ok := base.dict.Lookup(rdf.NewIRI(rdf.RDFType))
	if !ok {
		return base.typeID, base.typeIdx
	}
	touched := make(map[dict.ID]struct{})
	for _, t := range d.ins[orderSPO] {
		if t.P == typeID {
			touched[t.O] = struct{}{}
		}
	}
	for _, t := range d.del[orderSPO] {
		if t.P == typeID {
			touched[t.O] = struct{}{}
		}
	}
	if len(touched) == 0 {
		return typeID, base.typeIdx
	}
	out := make(map[dict.ID][]dict.ID, len(base.typeIdx)+len(touched))
	for c, subjects := range base.typeIdx {
		out[c] = subjects
	}
	pos := base.idx[orderPOS]
	for c := range touched {
		pat := Pattern{P: typeID, O: c}
		var subjects []dict.ID
		lo, hi := searchRange(pos, orderPOS, pat)
		mergeRuns(pos[lo:hi], runFor(d.del[orderPOS], orderPOS, pat), runFor(d.ins[orderPOS], orderPOS, pat), orderPOS, func(t IDTriple) {
			if len(subjects) == 0 || subjects[len(subjects)-1] != t.S {
				subjects = append(subjects, t.S)
			}
		})
		if len(subjects) == 0 {
			delete(out, c)
			continue
		}
		out[c] = subjects
	}
	return typeID, out
}

// Commit folds the delta into a fresh, fully indexed immutable store over
// the same shared dictionary: the merged SPO stream (already sorted, so
// the base sort is skipped) goes through the standard construction path,
// and the result carries no delta. Publish it through the same atomic
// swap as any snapshot; readers pinned to the overlay keep reading it.
// An empty delta returns the base.
func (d *Delta) Commit(opts BuildOptions) *Store {
	if d.Empty() {
		return d.base
	}
	base := d.base
	merged := make([]IDTriple, 0, base.n-d.DeleteCount()+d.InsertCount())
	mergeRuns(base.idx[orderSPO], d.del[orderSPO], d.ins[orderSPO], orderSPO, func(t IDTriple) {
		merged = append(merged, t)
	})
	return buildIndexes(base.dict, merged, opts)
}

// sortedContains reports whether a slice sorted by o contains t.
func sortedContains(idx []IDTriple, o order, t IDTriple) bool {
	i := sort.Search(len(idx), func(i int) bool { return !lessByOrder(idx[i], t, o) })
	return i < len(idx) && idx[i] == t
}

// newDeltaFromSets reconstructs a Delta from raw insert and delete sets
// (the v3 snapshot path), validating the Delta invariants: every deletion
// must name a base triple, no insertion may duplicate one, and the two
// sets must be disjoint. The slices must be SPO-sorted and duplicate-free
// (the snapshot reader guarantees this by construction).
func newDeltaFromSets(base *Store, ins, del []IDTriple) (*Delta, error) {
	for _, t := range ins {
		if base.baseContains(t) {
			return nil, fmt.Errorf("store: delta insert %v duplicates a base triple", t)
		}
	}
	for _, t := range del {
		if !base.baseContains(t) {
			return nil, fmt.Errorf("store: delta delete %v names no base triple", t)
		}
		if sortedContains(ins, orderSPO, t) {
			return nil, fmt.Errorf("store: triple %v both inserted and deleted", t)
		}
	}
	d := &Delta{base: base}
	d.setSorted(ins, del)
	return d, nil
}
