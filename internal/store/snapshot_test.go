package store

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/dict"
	"repro/internal/rdf"
)

func TestSnapshotRoundTrip(t *testing.T) {
	st, ids := buildTestStore(t)
	var buf bytes.Buffer
	if err := st.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != st.Len() {
		t.Fatalf("Len = %d, want %d", got.Len(), st.Len())
	}
	if got.Dict().Len() != st.Dict().Len() {
		t.Fatalf("dict len = %d, want %d", got.Dict().Len(), st.Dict().Len())
	}
	// All patterns answer identically.
	pats := []Pattern{
		{},
		{S: ids["s1"]},
		{P: ids["knows"]},
		{O: ids["s3"]},
		{S: ids["s1"], P: ids["knows"]},
		{P: ids["knows"], O: ids["s3"]},
	}
	for _, p := range pats {
		if got.Count(p) != st.Count(p) {
			t.Fatalf("Count(%v): %d vs %d", p, got.Count(p), st.Count(p))
		}
	}
	// Dictionary IDs must be preserved exactly (same insertion order).
	for name, id := range ids {
		term := rdf.NewIRI("http://x/" + name)
		gotID, ok := got.Dict().Lookup(term)
		if !ok || gotID != id {
			t.Fatalf("term %s: id %d vs %d", name, gotID, id)
		}
	}
	// Predicate statistics are rebuilt identically.
	if got.PredicateStats(ids["knows"]) != st.PredicateStats(ids["knows"]) {
		t.Fatal("predicate stats differ after round trip")
	}
	// Type index too.
	if len(got.SubjectsOfClass(ids["Person"])) != len(st.SubjectsOfClass(ids["Person"])) {
		t.Fatal("type index differs after round trip")
	}
}

func TestSnapshotAllTermKinds(t *testing.T) {
	b := NewBuilder()
	s := rdf.NewIRI("http://x/s")
	p := rdf.NewIRI("http://x/p")
	objs := []rdf.Term{
		rdf.NewLiteral("plain"),
		rdf.NewLangLiteral("hallo", "de"),
		rdf.NewTypedLiteral("7", rdf.XSDInteger),
		rdf.NewBlank("b1"),
		rdf.NewLiteral("unicode ✓ and \"quotes\"\n"),
	}
	for _, o := range objs {
		if err := b.Add(rdf.NewTriple(s, p, o)); err != nil {
			t.Fatal(err)
		}
	}
	st := b.Build()
	var buf bytes.Buffer
	if err := st.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range objs {
		id, ok := got.Dict().Lookup(o)
		if !ok {
			t.Fatalf("term %v lost in round trip", o)
		}
		if got.Dict().Decode(id) != o {
			t.Fatalf("term %v corrupted", o)
		}
	}
}

func TestSnapshotErrors(t *testing.T) {
	// Bad magic.
	if _, err := ReadSnapshot(strings.NewReader("NOTASNAP????")); err == nil {
		t.Fatal("bad magic should fail")
	}
	// Truncated.
	st, _ := buildTestStore(t)
	var buf bytes.Buffer
	if err := st.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{5, 9, 20, len(full) - 4} {
		if _, err := ReadSnapshot(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d should fail", cut)
		}
	}
	// Corrupt a triple's term ID to an out-of-range value.
	corrupt := append([]byte(nil), full...)
	corrupt[len(corrupt)-1] = 0xFF
	corrupt[len(corrupt)-2] = 0xFF
	corrupt[len(corrupt)-3] = 0xFF
	corrupt[len(corrupt)-4] = 0xFF
	if _, err := ReadSnapshot(bytes.NewReader(corrupt)); err == nil {
		t.Fatal("invalid term id should fail")
	}
}

func TestSnapshotEmptyStore(t *testing.T) {
	st := NewBuilder().Build()
	var buf bytes.Buffer
	if err := st.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 || got.Dict().Len() != 0 {
		t.Fatal("empty store round trip not empty")
	}
	if got.Count(Pattern{}) != 0 {
		t.Fatal("empty store should count 0")
	}
	_ = dict.None
}
