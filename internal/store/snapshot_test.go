package store

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"

	"repro/internal/dict"
	"repro/internal/rdf"
)

func TestSnapshotRoundTrip(t *testing.T) {
	st, ids := buildTestStore(t)
	var buf bytes.Buffer
	if err := st.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != st.Len() {
		t.Fatalf("Len = %d, want %d", got.Len(), st.Len())
	}
	if got.Dict().Len() != st.Dict().Len() {
		t.Fatalf("dict len = %d, want %d", got.Dict().Len(), st.Dict().Len())
	}
	// All patterns answer identically.
	pats := []Pattern{
		{},
		{S: ids["s1"]},
		{P: ids["knows"]},
		{O: ids["s3"]},
		{S: ids["s1"], P: ids["knows"]},
		{P: ids["knows"], O: ids["s3"]},
	}
	for _, p := range pats {
		if got.Count(p) != st.Count(p) {
			t.Fatalf("Count(%v): %d vs %d", p, got.Count(p), st.Count(p))
		}
	}
	// Dictionary IDs must be preserved exactly (same insertion order).
	for name, id := range ids {
		term := rdf.NewIRI("http://x/" + name)
		gotID, ok := got.Dict().Lookup(term)
		if !ok || gotID != id {
			t.Fatalf("term %s: id %d vs %d", name, gotID, id)
		}
	}
	// Predicate statistics are rebuilt identically.
	if got.PredicateStats(ids["knows"]) != st.PredicateStats(ids["knows"]) {
		t.Fatal("predicate stats differ after round trip")
	}
	// Type index too.
	if len(got.SubjectsOfClass(ids["Person"])) != len(st.SubjectsOfClass(ids["Person"])) {
		t.Fatal("type index differs after round trip")
	}
}

func TestSnapshotAllTermKinds(t *testing.T) {
	b := NewBuilder()
	s := rdf.NewIRI("http://x/s")
	p := rdf.NewIRI("http://x/p")
	objs := []rdf.Term{
		rdf.NewLiteral("plain"),
		rdf.NewLangLiteral("hallo", "de"),
		rdf.NewTypedLiteral("7", rdf.XSDInteger),
		rdf.NewBlank("b1"),
		rdf.NewLiteral("unicode ✓ and \"quotes\"\n"),
	}
	for _, o := range objs {
		if err := b.Add(rdf.NewTriple(s, p, o)); err != nil {
			t.Fatal(err)
		}
	}
	st := b.Build()
	var buf bytes.Buffer
	if err := st.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range objs {
		id, ok := got.Dict().Lookup(o)
		if !ok {
			t.Fatalf("term %v lost in round trip", o)
		}
		if got.Dict().Decode(id) != o {
			t.Fatalf("term %v corrupted", o)
		}
	}
}

func TestSnapshotErrors(t *testing.T) {
	// Bad magic.
	if _, err := ReadSnapshot(strings.NewReader("NOTASNAP????")); err == nil {
		t.Fatal("bad magic should fail")
	}
	// Truncated.
	st, _ := buildTestStore(t)
	var buf bytes.Buffer
	if err := st.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{5, 9, 20, len(full) - 4} {
		if _, err := ReadSnapshot(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d should fail", cut)
		}
	}
	// Corrupt a triple's term ID to an out-of-range value.
	corrupt := append([]byte(nil), full...)
	corrupt[len(corrupt)-1] = 0xFF
	corrupt[len(corrupt)-2] = 0xFF
	corrupt[len(corrupt)-3] = 0xFF
	corrupt[len(corrupt)-4] = 0xFF
	if _, err := ReadSnapshot(bytes.NewReader(corrupt)); err == nil {
		t.Fatal("invalid term id should fail")
	}
}

// writeV1Fixture serializes st exactly as the pre-v2 code did (fixed-width
// uint32 header and triples), so compatibility with snapshots written
// before the format change is tested against real v1 bytes.
func writeV1Fixture(t *testing.T, st *Store) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := st.WriteSnapshotVersion(&buf, 1); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSnapshotV1StillLoads: a v1 snapshot loads into a store identical to
// the same data loaded from v2 or built in process.
func TestSnapshotV1StillLoads(t *testing.T) {
	built, ids := buildTestStore(t)
	v1 := writeV1Fixture(t, built)
	var v2 bytes.Buffer
	if err := built.WriteSnapshot(&v2); err != nil {
		t.Fatal(err)
	}
	fromV1, err := ReadSnapshot(bytes.NewReader(v1))
	if err != nil {
		t.Fatal(err)
	}
	fromV2, err := ReadSnapshot(bytes.NewReader(v2.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	pats := []Pattern{{}, {S: ids["s1"]}, {P: ids["knows"]}, {O: ids["s3"]}, {P: ids["knows"], O: ids["s3"]}}
	for _, st := range []*Store{fromV1, fromV2} {
		if st.Len() != built.Len() || st.Dict().Len() != built.Dict().Len() {
			t.Fatal("size mismatch after load")
		}
		for _, p := range pats {
			if st.Count(p) != built.Count(p) {
				t.Fatalf("Count(%v) differs", p)
			}
		}
		if st.PredicateStats(ids["knows"]) != built.PredicateStats(ids["knows"]) {
			t.Fatal("predicate stats differ")
		}
	}
}

// TestSnapshotV2Smaller: delta+varint triples make v2 measurably smaller
// than v1 on realistic (sorted, dense-id) data.
func TestSnapshotV2Smaller(t *testing.T) {
	st := randomBuilder(5, 4000).Build()
	var v2 bytes.Buffer
	if err := st.WriteSnapshot(&v2); err != nil {
		t.Fatal(err)
	}
	v1 := writeV1Fixture(t, st)
	if v2.Len() >= len(v1) {
		t.Fatalf("v2 (%d bytes) not smaller than v1 (%d bytes)", v2.Len(), len(v1))
	}
	got, err := ReadSnapshot(&v2)
	if err != nil {
		t.Fatal(err)
	}
	equalStores(t, st, got.Rebuild(BuildOptions{})) // indexes identical too
	if got.Len() != st.Len() {
		t.Fatalf("Len %d vs %d", got.Len(), st.Len())
	}
}

// TestSnapshotRejectsHugeCounts: headers claiming absurd term/triple counts
// must fail with an error (when the stream runs dry), not allocate
// gigabytes up front. The fixtures end immediately after the header.
func TestSnapshotRejectsHugeCounts(t *testing.T) {
	// v1: 4G terms, 4G triples, empty body.
	v1 := []byte(snapshotMagicV1)
	v1 = append(v1, 0xFF, 0xFF, 0xFF, 0xFF) // nTerms
	v1 = append(v1, 0xFF, 0xFF, 0xFF, 0xFF) // nTriples
	if _, err := ReadSnapshot(bytes.NewReader(v1)); err == nil {
		t.Fatal("v1 huge header should fail")
	}
	// v2: uvarint counts beyond the 32-bit id space are rejected outright.
	v2 := []byte(snapshotMagicV2)
	v2 = binary.AppendUvarint(v2, 1<<40)
	v2 = binary.AppendUvarint(v2, 1<<40)
	if _, err := ReadSnapshot(bytes.NewReader(v2)); err == nil {
		t.Fatal("v2 huge header should fail")
	}
	// v2: plausible counts but an empty body still errors cleanly.
	v2 = []byte(snapshotMagicV2)
	v2 = binary.AppendUvarint(v2, 1<<30)
	v2 = binary.AppendUvarint(v2, 1<<30)
	if _, err := ReadSnapshot(bytes.NewReader(v2)); err == nil {
		t.Fatal("v2 truncated-after-header should fail")
	}
}

// TestSnapshotRejectsDuplicateTriples: duplicate triples would produce a
// store whose Len/Count/pstats disagree with any Builder-built store.
func TestSnapshotRejectsDuplicateTriples(t *testing.T) {
	st, _ := buildTestStore(t)
	// v1: append a copy of the last triple and patch the triple count.
	v1 := writeV1Fixture(t, st)
	v1 = append(v1, v1[len(v1)-12:]...)
	binary.LittleEndian.PutUint32(v1[12:16], uint32(st.Len()+1))
	if _, err := ReadSnapshot(bytes.NewReader(v1)); err == nil {
		t.Fatal("v1 duplicate triple should fail")
	}
	// v2: an all-zero delta record encodes "same triple again".
	var v2 bytes.Buffer
	if err := st.WriteSnapshot(&v2); err != nil {
		t.Fatal(err)
	}
	raw := append([]byte(nil), v2.Bytes()...)
	raw = append(raw, 0, 0, 0)
	// Patch the uvarint triple count: re-encode the whole prefix instead of
	// poking bytes — counts this small are single-byte uvarints.
	if st.Len() >= 127 {
		t.Fatal("fixture store grew; rewrite the uvarint patch")
	}
	idx := len(snapshotMagicV2)
	termCount, n := binary.Uvarint(raw[idx:])
	if n <= 0 || termCount == 0 {
		t.Fatal("cannot parse term count")
	}
	cntIdx := idx + n
	tripCount, n2 := binary.Uvarint(raw[cntIdx:])
	if n2 != 1 || int(tripCount) != st.Len() {
		t.Fatalf("unexpected triple count encoding (%d bytes, %d)", n2, tripCount)
	}
	raw[cntIdx] = byte(st.Len() + 1)
	if _, err := ReadSnapshot(bytes.NewReader(raw)); err == nil {
		t.Fatal("v2 duplicate triple should fail")
	}
}

// TestSnapshotV2Truncated: cutting a v2 stream at any point must produce a
// clean error.
func TestSnapshotV2Truncated(t *testing.T) {
	st, _ := buildTestStore(t)
	var buf bytes.Buffer
	if err := st.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 0; cut < len(full); cut += 7 {
		if _, err := ReadSnapshot(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d should fail", cut)
		}
	}
}

func TestSnapshotBadVersionArg(t *testing.T) {
	st, _ := buildTestStore(t)
	var buf bytes.Buffer
	if err := st.WriteSnapshotVersion(&buf, 5); err == nil {
		t.Fatal("unknown snapshot version should fail")
	}
}

func TestSnapshotEmptyStore(t *testing.T) {
	st := NewBuilder().Build()
	var buf bytes.Buffer
	if err := st.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 || got.Dict().Len() != 0 {
		t.Fatal("empty store round trip not empty")
	}
	if got.Count(Pattern{}) != 0 {
		t.Fatal("empty store should count 0")
	}
	_ = dict.None
}
