package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/dict"
)

// Sharded snapshots are directories: a manifest.json naming the format,
// shard count, total triple count and the exact global per-predicate
// statistics, next to one v4 snapshot file per shard. Each shard file
// carries the full shared dictionary — v4 emits terms in ID order, so
// every reopened shard dictionary assigns identical IDs and LoadSharded
// can rebind all shards to a single dictionary object, which sharded
// updates require (new terms must get one globally agreed ID).

const shardedManifestName = "manifest.json"

type shardedManifest struct {
	Format  string             `json:"format"`
	Shards  int                `json:"shards"`
	Triples int                `json:"triples"`
	Preds   []shardedPredStats `json:"predicate_stats"`
}

type shardedPredStats struct {
	P         dict.ID `json:"p"`
	Count     int     `json:"count"`
	DistinctS int     `json:"distinct_s"`
	DistinctO int     `json:"distinct_o"`
}

const shardedFormat = "rdfsnap-sharded-v1"

func shardFileName(i int) string { return fmt.Sprintf("shard-%04d.snap", i) }

// IsShardedSnapshot reports whether path is a sharded snapshot directory
// (a directory containing a manifest.json).
func IsShardedSnapshot(path string) bool {
	fi, err := os.Stat(path)
	if err != nil || !fi.IsDir() {
		return false
	}
	_, err = os.Stat(filepath.Join(path, shardedManifestName))
	return err == nil
}

// WriteSharded writes sh as a sharded snapshot directory at dir, creating
// it if needed. Shard files are v4, so a LoadSharded serves them straight
// from OS file mappings.
func WriteSharded(dir string, sh *Sharded) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for i, s := range sh.shards {
		if err := writeShardFile(filepath.Join(dir, shardFileName(i)), s); err != nil {
			return err
		}
	}
	m := shardedManifest{
		Format:  shardedFormat,
		Shards:  len(sh.shards),
		Triples: sh.Len(),
		Preds:   make([]shardedPredStats, 0, len(sh.pstats)),
	}
	for p, st := range sh.pstats {
		m.Preds = append(m.Preds, shardedPredStats{P: p, Count: st.Count, DistinctS: st.DistinctS, DistinctO: st.DistinctO})
	}
	sort.Slice(m.Preds, func(i, j int) bool { return m.Preds[i].P < m.Preds[j].P })
	data, err := json.MarshalIndent(&m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, shardedManifestName), append(data, '\n'), 0o644)
}

func writeShardFile(path string, s *Store) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := s.WriteSnapshotVersion(f, 4); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadSharded opens a sharded snapshot directory. With heapLoad false the
// shard files are served from OS file mappings (the O(1) path); with
// heapLoad true they are deserialized onto the heap. All shards are
// rebound to shard 0's dictionary so the federation encodes new terms
// into one ID space; the rebinding is sound because every shard file
// carries the same dictionary in the same ID order, which is verified by
// length before rebinding.
func LoadSharded(dir string, heapLoad bool) (*Sharded, error) {
	data, err := os.ReadFile(filepath.Join(dir, shardedManifestName))
	if err != nil {
		return nil, err
	}
	var m shardedManifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("store: sharded manifest %s: %w", dir, err)
	}
	if m.Format != shardedFormat {
		return nil, fmt.Errorf("store: %s: unsupported sharded format %q", dir, m.Format)
	}
	if m.Shards < 1 {
		return nil, fmt.Errorf("store: %s: invalid shard count %d", dir, m.Shards)
	}
	shards := make([]*Store, m.Shards)
	release := func() {
		for _, s := range shards {
			if s == nil {
				continue
			}
			if mp := s.Mapping(); mp != nil {
				mp.Release()
			}
		}
	}
	for i := range shards {
		path := filepath.Join(dir, shardFileName(i))
		var (
			s   *Store
			err error
		)
		if heapLoad {
			s, err = LoadAny(path)
		} else {
			s, err = LoadAnyMapped(path)
		}
		if err != nil {
			release()
			return nil, fmt.Errorf("store: sharded shard %d: %w", i, err)
		}
		shards[i] = s
	}
	d := shards[0].dict
	total := shards[0].Len()
	for i, s := range shards[1:] {
		if s.dict.Len() != d.Len() {
			release()
			return nil, fmt.Errorf("store: sharded shard %d: dictionary length %d != shard 0's %d", i+1, s.dict.Len(), d.Len())
		}
		s.dict = d
		total += s.Len()
	}
	if total != m.Triples {
		release()
		return nil, fmt.Errorf("store: %s: shard triples sum %d != manifest %d", dir, total, m.Triples)
	}
	pstats := make(map[dict.ID]PredStats, len(m.Preds))
	for _, ps := range m.Preds {
		pstats[ps.P] = PredStats{Count: ps.Count, DistinctS: ps.DistinctS, DistinctO: ps.DistinctO}
	}
	return &Sharded{shards: shards, dict: d, n: total, pstats: pstats}, nil
}
