package store

import "repro/internal/dict"

// Source is the read seam the plan and exec layers run against: everything
// a query needs from a triple store — exact counts, merged matches,
// streaming and seekable cursors, morsel partitions, and the statistics
// the optimizer's cardinality estimator is built on. Two implementations
// exist, both in this package (the interface is sealed by Match's
// unexported order result): *Store, a single hexastore (heap-built or
// mmap-backed, plain or overlay), and *Sharded, a hash-partitioned
// federation of per-shard *Stores whose merged read paths reproduce a
// single store's streams bit-for-bit.
//
// The contract every implementation upholds — and what makes executors
// agnostic to the backing — is stream identity: for the same triple set,
// Match/Scan/ScanSeek deliver identical triples in identical order,
// ScanPartitions' cursors concatenate to exactly Scan's stream, and
// Count/Len/PredicateStats/SubjectsOfClass report exactly the values a
// freshly built single store over that set would. Identical streams and
// statistics give identical plans, rows and Cout/Work/Scanned accounting
// regardless of sharding or parallelism.
type Source interface {
	// Dict returns the dictionary all triple IDs resolve against.
	Dict() *dict.Dict
	// Len returns the number of triples.
	Len() int
	// Count returns the exact number of triples matching pat.
	Count(pat Pattern) int
	// Match returns the triples matching pat in index sort order.
	Match(pat Pattern) ([]IDTriple, order)
	// MatchBuf is Match with caller-provided scratch (see Store.MatchBuf).
	MatchBuf(pat Pattern, scratch []IDTriple) (matches, scratch2 []IDTriple)
	// Scan opens a batch cursor over the triples matching pat.
	Scan(pat Pattern) *Scan
	// ScanSeek opens a seekable trie cursor with the unbound positions
	// ordered as varPos lists them (see Store.ScanSeek).
	ScanSeek(pat Pattern, varPos []int) *Scan
	// ScanPartitions splits Scan(pat)'s stream into up to n contiguous
	// morsels whose concatenation is exactly that stream.
	ScanPartitions(pat Pattern, n int) []*Scan
	// PredicateStats returns exact per-predicate statistics.
	PredicateStats(p dict.ID) PredStats
	// Predicates returns all predicate IDs in ascending order.
	Predicates() []dict.ID
	// SubjectsOfClass returns the sorted subject IDs with rdf:type c.
	SubjectsOfClass(c dict.ID) []dict.ID
	// DistinctValues returns the distinct IDs in the given position of
	// triples matching pat.
	DistinctValues(position int, pat Pattern) []dict.ID
	// Backend names the index backing ("heap", "mapped", or a sharded
	// composite like "sharded(4, mapped)").
	Backend() string
	// Mappings returns the distinct refcounted snapshot mappings backing
	// this source (nil for pure heap stores). Holders that outlive the
	// opener retain each.
	Mappings() []*Mapping
}

var (
	_ Source = (*Store)(nil)
	_ Source = (*Sharded)(nil)
)

// Mappings returns the store's backing mapping as a one-element slice, or
// nil for a heap store. It is the Source-interface view of Mapping.
func (s *Store) Mappings() []*Mapping {
	if m := s.Mapping(); m != nil {
		return []*Mapping{m}
	}
	return nil
}
