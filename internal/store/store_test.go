package store

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/dict"
	"repro/internal/rdf"
)

func buildTestStore(t *testing.T) (*Store, map[string]dict.ID) {
	t.Helper()
	b := NewBuilder()
	add := func(s, p, o rdf.Term) {
		t.Helper()
		if err := b.Add(rdf.NewTriple(s, p, o)); err != nil {
			t.Fatal(err)
		}
	}
	iri := func(n string) rdf.Term { return rdf.NewIRI("http://x/" + n) }
	add(iri("s1"), iri("knows"), iri("s2"))
	add(iri("s1"), iri("knows"), iri("s3"))
	add(iri("s2"), iri("knows"), iri("s3"))
	add(iri("s1"), iri("name"), rdf.NewLiteral("alice"))
	add(iri("s2"), iri("name"), rdf.NewLiteral("bob"))
	add(iri("s3"), iri("name"), rdf.NewLiteral("carol"))
	add(iri("s1"), rdf.NewIRI(rdf.RDFType), iri("Person"))
	add(iri("s2"), rdf.NewIRI(rdf.RDFType), iri("Person"))
	add(iri("s3"), rdf.NewIRI(rdf.RDFType), iri("Robot"))
	st := b.Build()
	ids := map[string]dict.ID{}
	for _, n := range []string{"s1", "s2", "s3", "knows", "name", "Person", "Robot"} {
		id, ok := st.Dict().Lookup(iri(n))
		if !ok {
			t.Fatalf("missing id for %s", n)
		}
		ids[n] = id
	}
	return st, ids
}

func TestBuilderRejectsInvalid(t *testing.T) {
	b := NewBuilder()
	err := b.Add(rdf.NewTriple(rdf.NewLiteral("s"), rdf.NewIRI("http://x/p"), rdf.NewLiteral("o")))
	if err == nil {
		t.Fatal("expected error")
	}
}

func TestBuilderDeduplicates(t *testing.T) {
	b := NewBuilder()
	tr := rdf.NewTriple(rdf.NewIRI("http://x/s"), rdf.NewIRI("http://x/p"), rdf.NewLiteral("o"))
	for i := 0; i < 3; i++ {
		if err := b.Add(tr); err != nil {
			t.Fatal(err)
		}
	}
	if b.Len() != 1 {
		t.Fatalf("Len = %d, want 1", b.Len())
	}
	if st := b.Build(); st.Len() != 1 {
		t.Fatalf("store Len = %d, want 1", st.Len())
	}
}

func TestCountAllPatternShapes(t *testing.T) {
	st, ids := buildTestStore(t)
	typeID, _ := st.Dict().Lookup(rdf.NewIRI(rdf.RDFType))
	cases := []struct {
		name string
		pat  Pattern
		want int
	}{
		{"all", Pattern{}, 9},
		{"S", Pattern{S: ids["s1"]}, 4},
		{"P", Pattern{P: ids["knows"]}, 3},
		{"O", Pattern{O: ids["s3"]}, 2},
		{"SP", Pattern{S: ids["s1"], P: ids["knows"]}, 2},
		{"SO", Pattern{S: ids["s1"], O: ids["s3"]}, 1},
		{"PO", Pattern{P: typeID, O: ids["Person"]}, 2},
		{"SPO", Pattern{S: ids["s1"], P: ids["knows"], O: ids["s2"]}, 1},
		{"SPO-miss", Pattern{S: ids["s2"], P: ids["knows"], O: ids["s1"]}, 0},
	}
	for _, c := range cases {
		if got := st.Count(c.pat); got != c.want {
			t.Errorf("%s: Count(%v) = %d, want %d", c.name, c.pat, got, c.want)
		}
		m, _ := st.Match(c.pat)
		if len(m) != c.want {
			t.Errorf("%s: len(Match) = %d, want %d", c.name, len(m), c.want)
		}
		for _, tr := range m {
			if !matches(tr, c.pat) {
				t.Errorf("%s: Match returned non-matching triple %v", c.name, tr)
			}
		}
	}
}

func matches(t IDTriple, p Pattern) bool {
	return (p.S == dict.None || p.S == t.S) &&
		(p.P == dict.None || p.P == t.P) &&
		(p.O == dict.None || p.O == t.O)
}

func TestPredicateStats(t *testing.T) {
	st, ids := buildTestStore(t)
	ks := st.PredicateStats(ids["knows"])
	if ks.Count != 3 || ks.DistinctS != 2 || ks.DistinctO != 2 {
		t.Fatalf("knows stats = %+v, want {3 2 2}", ks)
	}
	ns := st.PredicateStats(ids["name"])
	if ns.Count != 3 || ns.DistinctS != 3 || ns.DistinctO != 3 {
		t.Fatalf("name stats = %+v, want {3 3 3}", ns)
	}
	if got := st.PredicateStats(ids["s1"]); got != (PredStats{}) {
		t.Fatalf("non-predicate stats should be zero, got %+v", got)
	}
}

func TestPredicatesListed(t *testing.T) {
	st, ids := buildTestStore(t)
	ps := st.Predicates()
	if len(ps) != 3 {
		t.Fatalf("Predicates() returned %d, want 3", len(ps))
	}
	seen := map[dict.ID]bool{}
	for _, p := range ps {
		seen[p] = true
	}
	if !seen[ids["knows"]] || !seen[ids["name"]] {
		t.Fatal("Predicates() missing expected predicates")
	}
}

func TestSubjectsOfClass(t *testing.T) {
	st, ids := buildTestStore(t)
	persons := st.SubjectsOfClass(ids["Person"])
	if len(persons) != 2 {
		t.Fatalf("Person members = %d, want 2", len(persons))
	}
	robots := st.SubjectsOfClass(ids["Robot"])
	if len(robots) != 1 {
		t.Fatalf("Robot members = %d, want 1", len(robots))
	}
	if len(st.SubjectsOfClass(ids["s1"])) != 0 {
		t.Fatal("non-class should have no members")
	}
}

func TestDistinctValues(t *testing.T) {
	st, ids := buildTestStore(t)
	subjects := st.DistinctValues(0, Pattern{P: ids["knows"]})
	if len(subjects) != 2 {
		t.Fatalf("distinct subjects of knows = %d, want 2", len(subjects))
	}
	objects := st.DistinctValues(2, Pattern{P: ids["knows"]})
	if len(objects) != 2 {
		t.Fatalf("distinct objects of knows = %d, want 2", len(objects))
	}
	preds := st.DistinctValues(1, Pattern{})
	if len(preds) != 3 {
		t.Fatalf("distinct predicates = %d, want 3", len(preds))
	}
	// Results must be sorted and unique.
	for i := 1; i < len(preds); i++ {
		if preds[i] <= preds[i-1] {
			t.Fatal("DistinctValues not sorted/unique")
		}
	}
}

func TestLoadNTriples(t *testing.T) {
	input := `<http://x/a> <http://x/p> <http://x/b> .
<http://x/b> <http://x/p> <http://x/c> .
<http://x/a> <http://x/p> <http://x/b> .
`
	b := NewBuilder()
	if err := b.LoadNTriples(strings.NewReader(input)); err != nil {
		t.Fatal(err)
	}
	st := b.Build()
	if st.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (dedup)", st.Len())
	}
	if err := NewBuilder().LoadNTriples(strings.NewReader("bogus\n")); err == nil {
		t.Fatal("expected parse error")
	}
}

// Property test: Match/Count agree with a naive scan for random data and
// random patterns, across all 8 bound-position shapes.
func TestMatchAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	b := NewBuilder()
	d := b.Dict()
	var all []IDTriple
	seen := map[IDTriple]struct{}{}
	for i := 0; i < 2000; i++ {
		tr := IDTriple{
			S: d.Encode(rdf.NewIRI(randName(rng, "s", 40))),
			P: d.Encode(rdf.NewIRI(randName(rng, "p", 8))),
			O: d.Encode(rdf.NewIRI(randName(rng, "o", 60))),
		}
		b.AddID(tr)
		if _, dup := seen[tr]; !dup {
			seen[tr] = struct{}{}
			all = append(all, tr)
		}
	}
	st := b.Build()
	if st.Len() != len(all) {
		t.Fatalf("store has %d triples, naive %d", st.Len(), len(all))
	}
	for trial := 0; trial < 500; trial++ {
		base := all[rng.Intn(len(all))]
		pat := Pattern{}
		if rng.Intn(2) == 0 {
			pat.S = base.S
		}
		if rng.Intn(2) == 0 {
			pat.P = base.P
		}
		if rng.Intn(2) == 0 {
			pat.O = base.O
		}
		want := 0
		for _, tr := range all {
			if matches(tr, pat) {
				want++
			}
		}
		if got := st.Count(pat); got != want {
			t.Fatalf("Count(%v) = %d, naive %d", pat, got, want)
		}
		m, _ := st.Match(pat)
		for _, tr := range m {
			if !matches(tr, pat) {
				t.Fatalf("Match(%v) returned %v", pat, tr)
			}
		}
	}
}

func randName(rng *rand.Rand, prefix string, n int) string {
	return "http://x/" + prefix + string(rune('0'+rng.Intn(10))) + string(rune('0'+rng.Intn(n/10+1)))
}

// Property: every index order yields sorted runs (quick over seeds).
func TestIndexesSorted(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := NewBuilder()
		d := b.Dict()
		for i := 0; i < 300; i++ {
			b.AddID(IDTriple{
				S: d.Encode(rdf.NewIRI(randName(rng, "s", 30))),
				P: d.Encode(rdf.NewIRI(randName(rng, "p", 5))),
				O: d.Encode(rdf.NewIRI(randName(rng, "o", 30))),
			})
		}
		st := b.Build()
		for o := order(0); o < numOrders; o++ {
			idx := st.idx[o]
			for i := 1; i < len(idx); i++ {
				if lessByOrder(idx[i], idx[i-1], o) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
