// Package store implements an in-memory, dictionary-encoded RDF triple
// store with all six subject/predicate/object permutation indexes (the
// Hexastore / RDF-3X layout). Every store value is immutable; every
// triple pattern with any combination of bound positions is answered by a
// binary-searched contiguous range of exactly one index, which also gives
// exact pattern cardinalities in O(log n). Exact counts are what the Cout
// cost model and the optimizer's cardinality estimator are built on.
//
// Updates never mutate a store: a Delta (sorted insert/delete sets over a
// base store, see delta.go) publishes either as an overlay snapshot whose
// reads merge the delta in on the fly — with counts still exact — or as a
// freshly indexed store (Commit). MVCC falls out of immutability: writers
// build the next snapshot and swap a pointer, readers keep the one they
// pinned.
package store

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/dict"
	"repro/internal/rdf"
)

// IDTriple is a dictionary-encoded triple.
type IDTriple struct {
	S, P, O dict.ID
}

// Pattern is a triple pattern over IDs; dict.None (0) marks a wildcard
// position.
type Pattern struct {
	S, P, O dict.ID
}

// String renders the pattern with '?' wildcards, for debugging.
func (p Pattern) String() string {
	f := func(id dict.ID) string {
		if id == dict.None {
			return "?"
		}
		return fmt.Sprintf("%d", id)
	}
	return fmt.Sprintf("(%s %s %s)", f(p.S), f(p.P), f(p.O))
}

// boundMask returns a 3-bit mask of bound positions: bit0=S, bit1=P, bit2=O.
func (p Pattern) boundMask() int {
	m := 0
	if p.S != dict.None {
		m |= 1
	}
	if p.P != dict.None {
		m |= 2
	}
	if p.O != dict.None {
		m |= 4
	}
	return m
}

// Store is an immutable triple store. Build one with a Builder. An
// overlay store (see Delta.Overlay) additionally carries a delta whose
// insertions and deletions every read path merges in on the fly; a plain
// store's delta is nil and its reads stay zero-copy.
type Store struct {
	dict    *dict.Dict
	n       int
	src     TripleSource          // backing of idx: heap or mmap (see mapping.go)
	idx     [numOrders][]IDTriple // cached src views; all read paths go through these
	pstats  map[dict.ID]PredStats
	typeIdx map[dict.ID][]dict.ID // rdf:type class -> sorted subject IDs
	typeID  dict.ID               // ID of rdf:type, or None if absent
	delta   *Delta                // non-nil for overlay snapshots
}

// Backend names the store's index backing: "heap" for built/deserialized
// stores, "mapped" for stores opened over a v4 snapshot image.
func (s *Store) Backend() string {
	if s.src == nil {
		return "heap"
	}
	return s.src.Backend()
}

// Mapping returns the refcounted snapshot mapping backing this store, or
// nil for a heap store. Overlay stores and deltas over a mapped base
// report the base's mapping (their dictionary and base indexes point into
// it); Commit produces heap indexes but keeps the mapped dictionary base,
// so committed stores report it too.
func (s *Store) Mapping() *Mapping {
	if s.src != nil {
		if m := s.src.Mapping(); m != nil {
			return m
		}
	}
	if mt, ok := s.dict.Base().(*mappedTerms); ok {
		return mt.mapping()
	}
	return nil
}

// MappedBytes returns the size of the backing mapping, 0 for heap stores.
func (s *Store) MappedBytes() int {
	if m := s.Mapping(); m != nil {
		return m.Size()
	}
	return 0
}

// PredStats holds exact per-predicate statistics used by the cardinality
// estimator.
type PredStats struct {
	Count     int // triples with this predicate
	DistinctS int // distinct subjects among them
	DistinctO int // distinct objects among them
}

// Builder accumulates triples and produces an immutable Store.
type Builder struct {
	dict    *dict.Dict
	triples []IDTriple
	dedup   map[IDTriple]struct{}
}

// NewBuilder returns an empty Builder with a fresh dictionary.
func NewBuilder() *Builder {
	return &Builder{
		dict:  dict.New(),
		dedup: make(map[IDTriple]struct{}),
	}
}

// Dict exposes the dictionary so generators can pre-encode terms.
func (b *Builder) Dict() *dict.Dict { return b.dict }

// Add encodes and inserts one triple. Duplicate triples are ignored
// (RDF graphs are sets). Invalid triples are rejected.
func (b *Builder) Add(t rdf.Triple) error {
	if !t.Valid() {
		return fmt.Errorf("store: invalid triple %v", t)
	}
	it := IDTriple{
		S: b.dict.Encode(t.S),
		P: b.dict.Encode(t.P),
		O: b.dict.Encode(t.O),
	}
	b.AddID(it)
	return nil
}

// AddID inserts an already-encoded triple, ignoring duplicates. The caller
// must have produced the IDs with this builder's Dict.
func (b *Builder) AddID(it IDTriple) {
	if _, dup := b.dedup[it]; dup {
		return
	}
	b.dedup[it] = struct{}{}
	b.triples = append(b.triples, it)
}

// Len returns the number of distinct triples added so far.
func (b *Builder) Len() int { return len(b.triples) }

// LoadNTriples reads N-Triples from r into the builder.
func (b *Builder) LoadNTriples(r io.Reader) error {
	rd := rdf.NewReader(r)
	for {
		t, err := rd.Read()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := b.Add(t); err != nil {
			return err
		}
	}
}

// Build sorts the six permutation indexes, computes statistics and returns
// the immutable store. The builder must not be used afterwards. Index
// construction runs in parallel (see BuildOpts); the result is
// byte-identical to a serial build.
func (b *Builder) Build() *Store { return b.BuildOpts(BuildOptions{}) }

// BuildOpts is Build with explicit construction options. The builder must
// not be used afterwards.
func (b *Builder) BuildOpts(opts BuildOptions) *Store {
	triples := b.triples
	b.triples = nil
	b.dedup = nil
	return buildIndexes(b.dict, triples, opts)
}

// Rebuild constructs a new Store over the same dictionary and triple set,
// re-deriving every index and statistic from a copy of the base index. It
// exists so benchmarks and equivalence tests can exercise the
// construction path in isolation from parsing and dictionary encoding.
// Rebuilding an overlay store folds its delta in (equivalent to Commit).
func (s *Store) Rebuild(opts BuildOptions) *Store {
	if s.delta != nil {
		return s.delta.Commit(opts)
	}
	cp := make([]IDTriple, len(s.idx[orderSPO]))
	copy(cp, s.idx[orderSPO])
	return buildIndexes(s.dict, cp, opts)
}

// Dict returns the store's dictionary.
func (s *Store) Dict() *dict.Dict { return s.dict }

// Len returns the number of triples.
func (s *Store) Len() int { return s.n }

// Match returns the triples matching pat in the sort order of the
// best-fitting permutation index. On a plain store the result is a
// zero-copy subslice of that index; an overlay store with pending changes
// in the range materializes the merged run (base minus deletions, with
// insertions interleaved in index order) into a fresh slice. The returned
// order value is the index's sort order (useful for merge joins); callers
// that only need the set of matches can ignore it.
func (s *Store) Match(pat Pattern) ([]IDTriple, order) {
	m, _, o := s.matchInto(pat, nil)
	return m, o
}

// MatchBuf is Match with caller-provided scratch for the overlay merge
// path: when the matched range has pending delta changes, the merged run
// is assembled in scratch's backing array (grown only when too small)
// instead of a fresh allocation. It returns the matches and the possibly
// grown scratch to pass back on the next call. On a plain store — or an
// overlay range without pending changes — matches is the usual zero-copy
// index subslice and scratch comes back untouched; matches must therefore
// be treated as read-only and is only valid until the next MatchBuf call
// with the same scratch. Probe loops (one Match per outer row) use this to
// stay allocation-free in steady state.
func (s *Store) MatchBuf(pat Pattern, scratch []IDTriple) (matches, scratch2 []IDTriple) {
	m, scr, _ := s.matchInto(pat, scratch)
	return m, scr
}

// matchInto implements Match and MatchBuf: zero-copy when possible,
// otherwise merging into scratch's backing array.
func (s *Store) matchInto(pat Pattern, scratch []IDTriple) ([]IDTriple, []IDTriple, order) {
	o := orderFor(pat.boundMask())
	idx := s.idx[o]
	lo, hi := searchRange(idx, o, pat)
	if s.delta == nil {
		return idx[lo:hi], scratch, o
	}
	del := runFor(s.delta.del[o], o, pat)
	ins := runFor(s.delta.ins[o], o, pat)
	if len(del) == 0 && len(ins) == 0 {
		return idx[lo:hi], scratch, o
	}
	need := hi - lo - len(del) + len(ins)
	out := scratch[:0]
	if cap(out) < need {
		out = make([]IDTriple, 0, need)
	}
	mergeRuns(idx[lo:hi], del, ins, o, func(t IDTriple) { out = append(out, t) })
	return out, out[:0], o
}

// Count returns the exact number of triples matching pat in O(log n) —
// on an overlay, the base range size minus deletions plus insertions in
// the range, each located by its own binary search.
func (s *Store) Count(pat Pattern) int {
	o := orderFor(pat.boundMask())
	idx := s.idx[o]
	lo, hi := searchRange(idx, o, pat)
	n := hi - lo
	if s.delta != nil {
		n += len(runFor(s.delta.ins[o], o, pat)) - len(runFor(s.delta.del[o], o, pat))
	}
	return n
}

// PredicateStats returns exact statistics for predicate p. The zero value
// is returned for unknown predicates.
func (s *Store) PredicateStats(p dict.ID) PredStats { return s.pstats[p] }

// Predicates returns the IDs of all predicates present, in ascending ID
// order.
func (s *Store) Predicates() []dict.ID {
	out := make([]dict.ID, 0, len(s.pstats))
	for p := range s.pstats {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SubjectsOfClass returns the sorted subject IDs having rdf:type c, sharing
// the store's backing array (callers must not modify it).
func (s *Store) SubjectsOfClass(c dict.ID) []dict.ID { return s.typeIdx[c] }

// DistinctValues returns the distinct IDs occurring in the given position
// (0=S,1=P,2=O) of triples matching pat. Used for parameter-domain
// extraction.
func (s *Store) DistinctValues(position int, pat Pattern) []dict.ID {
	// Choose an index where `position` is ordered first among the unbound
	// positions so distinct values appear in runs.
	triples, o := s.Match(pat)
	return distinctValues(triples, o, pat.boundMask(), position)
}

// distinctValues extracts the distinct IDs in `position` from matches
// delivered in order o under bound mask `mask`; shared by Store and
// Sharded.
func distinctValues(triples []IDTriple, o order, mask, position int) []dict.ID {
	var out []dict.ID
	if firstUnboundIsPosition(o, mask, position) {
		// Matches are grouped by this position: distinct values are run
		// heads, no dedup map needed.
		var last dict.ID
		for i := range triples {
			v := positionValue(triples[i], position)
			if i == 0 || v != last {
				out = append(out, v)
				last = v
			}
		}
		return out
	}
	seen := make(map[dict.ID]struct{})
	for i := range triples {
		v := positionValue(triples[i], position)
		if _, ok := seen[v]; !ok {
			seen[v] = struct{}{}
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func positionValue(t IDTriple, position int) dict.ID {
	switch position {
	case 0:
		return t.S
	case 1:
		return t.P
	default:
		return t.O
	}
}

// firstUnboundIsPosition reports whether, in order o with bound mask m, the
// first unbound position in the sort order equals `position` — i.e. matches
// are grouped by that position.
func firstUnboundIsPosition(o order, mask, position int) bool {
	for _, pos := range orderPositions[o] {
		bit := 1 << pos
		if mask&bit != 0 {
			continue
		}
		return pos == position
	}
	return false
}

// computeStats is the serial statistics path; buildParallel runs the same
// three passes concurrently.
func (s *Store) computeStats() {
	s.pstats = statsFromPSO(s.idx[orderPSO])
	mergeDistinctObjects(s.pstats, distinctObjectsFromPOS(s.idx[orderPOS]))
	s.typeIdx = make(map[dict.ID][]dict.ID)
	typeID, ok := s.dict.Lookup(rdf.NewIRI(rdf.RDFType))
	if !ok {
		return
	}
	s.typeID = typeID
	s.typeIdx = typeIndexFromPOS(s.idx[orderPOS], typeID)
}
