package store

import (
	"slices"

	"repro/internal/dict"
)

// order identifies one of the six triple component permutations.
type order uint8

const (
	orderSPO order = iota
	orderSOP
	orderPSO
	orderPOS
	orderOSP
	orderOPS
	numOrders
)

// orderPositions[o] lists triple positions (0=S,1=P,2=O) in sort-key order.
var orderPositions = [numOrders][3]int{
	orderSPO: {0, 1, 2},
	orderSOP: {0, 2, 1},
	orderPSO: {1, 0, 2},
	orderPOS: {1, 2, 0},
	orderOSP: {2, 0, 1},
	orderOPS: {2, 1, 0},
}

// String names the order for debugging.
func (o order) String() string {
	names := [numOrders]string{"SPO", "SOP", "PSO", "POS", "OSP", "OPS"}
	if int(o) < len(names) {
		return names[o]
	}
	return "?"
}

// orderForMask maps a bound-position bitmask (bit0=S, bit1=P, bit2=O) to an
// index whose sort key starts with exactly the bound positions, so matches
// form one contiguous range.
var orderForMask = [8]order{
	0:         orderSPO, // no bound positions: full scan, any order
	1:         orderSPO, // S
	2:         orderPSO, // P
	4:         orderOSP, // O
	1 | 2:     orderSPO, // S,P
	1 | 4:     orderSOP, // S,O
	2 | 4:     orderPOS, // P,O
	1 | 2 | 4: orderSPO, // S,P,O
}

func orderFor(mask int) order { return orderForMask[mask&7] }

// key extracts the three-component sort key of t under order o.
func key(t IDTriple, o order) (a, b, c dict.ID) {
	p := orderPositions[o]
	return positionValue(t, p[0]), positionValue(t, p[1]), positionValue(t, p[2])
}

func lessByOrder(x, y IDTriple, o order) bool {
	xa, xb, xc := key(x, o)
	ya, yb, yc := key(y, o)
	if xa != ya {
		return xa < ya
	}
	if xb != yb {
		return xb < yb
	}
	return xc < yc
}

// sortByOrder sorts via the generic (non-reflective) pdqsort. The sort is
// unstable, but a deduplicated triple set has no equal elements under any
// full permutation, so the result is the unique sorted sequence regardless
// of input order or scheduling.
func sortByOrder(ts []IDTriple, o order) {
	p := orderPositions[o]
	slices.SortFunc(ts, func(x, y IDTriple) int {
		// Pack the first two key components of each triple into one
		// uint64 so most comparisons are a single branch.
		xk := uint64(positionValue(x, p[0]))<<32 | uint64(positionValue(x, p[1]))
		yk := uint64(positionValue(y, p[0]))<<32 | uint64(positionValue(y, p[1]))
		switch {
		case xk < yk:
			return -1
		case xk > yk:
			return 1
		}
		xc, yc := positionValue(x, p[2]), positionValue(y, p[2])
		switch {
		case xc < yc:
			return -1
		case xc > yc:
			return 1
		}
		return 0
	})
}

// searchRange returns the half-open index range [lo, hi) of triples in idx
// (sorted by o) matching pat. pat's bound positions must be a prefix of o's
// sort key (guaranteed by orderFor). The binary searches are written as
// explicit loops (not sort.Search closures) so the per-probe hot path —
// one searchRange per Match/MatchBuf call — stays allocation-free.
func searchRange(idx []IDTriple, o order, pat Pattern) (lo, hi int) {
	bounds, nb := prefixBounds(o, pat)
	i, j := 0, len(idx)
	for i < j {
		h := int(uint(i+j) >> 1)
		if prefixLess(idx[h], o, bounds, nb) {
			i = h + 1
		} else {
			j = h
		}
	}
	lo = i
	j = len(idx)
	for i < j {
		h := int(uint(i+j) >> 1)
		if !prefixGreater(idx[h], o, bounds, nb) {
			i = h + 1
		} else {
			j = h
		}
	}
	return lo, i
}

// prefixBounds extracts the bound prefix values of pat under order o,
// returning the component array and how many entries are meaningful.
func prefixBounds(o order, pat Pattern) ([3]dict.ID, int) {
	var out [3]dict.ID
	n := 0
	for _, pos := range orderPositions[o] {
		v := positionValue(IDTriple{S: pat.S, P: pat.P, O: pat.O}, pos)
		if v == dict.None {
			break
		}
		out[n] = v
		n++
	}
	return out, n
}

// prefixLess reports whether t's key prefix under o is strictly below the
// first nb bound values.
func prefixLess(t IDTriple, o order, bounds [3]dict.ID, nb int) bool {
	for i, pos := range orderPositions[o][:nb] {
		v := positionValue(t, pos)
		if v != bounds[i] {
			return v < bounds[i]
		}
	}
	return false
}

// prefixGreater reports whether t's key prefix under o is strictly above
// the first nb bound values.
func prefixGreater(t IDTriple, o order, bounds [3]dict.ID, nb int) bool {
	for i, pos := range orderPositions[o][:nb] {
		v := positionValue(t, pos)
		if v != bounds[i] {
			return v > bounds[i]
		}
	}
	return false
}
