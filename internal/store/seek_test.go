package store

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/dict"
	"repro/internal/rdf"
)

// seekWorld builds a base store plus an overlay with a delta that deletes
// some base triples and inserts fresh ones, so every seek path (plain,
// overlay-with-changes) is exercised against the same logical triple set.
func seekWorld(t testing.TB, seed int64, n int) (base, overlay *Store) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder()
	for i := 0; i < n; i++ {
		tr := rdf.Triple{
			S: rdf.NewIRI(fmt.Sprintf("http://s/%d", rng.Intn(n/4+1))),
			P: rdf.NewIRI(fmt.Sprintf("http://p/%d", rng.Intn(5))),
			O: rdf.NewIRI(fmt.Sprintf("http://o/%d", rng.Intn(n/3+1))),
		}
		if err := b.Add(tr); err != nil {
			t.Fatal(err)
		}
	}
	base = b.Build()
	all, _ := base.Match(Pattern{})
	d := base.NewDelta()
	var del, ins []rdf.Triple
	dd := base.Dict()
	for i := 0; i < len(all); i += 7 {
		tr := all[i]
		del = append(del, rdf.Triple{S: dd.Decode(tr.S), P: dd.Decode(tr.P), O: dd.Decode(tr.O)})
	}
	for i := 0; i < n/5; i++ {
		ins = append(ins, rdf.Triple{
			S: rdf.NewIRI(fmt.Sprintf("http://s/new%d", rng.Intn(20))),
			P: rdf.NewIRI(fmt.Sprintf("http://p/%d", rng.Intn(5))),
			O: rdf.NewIRI(fmt.Sprintf("http://o/new%d", rng.Intn(40))),
		})
	}
	d, err := d.Apply(ins, del)
	if err != nil {
		t.Fatal(err)
	}
	return base, d.Overlay()
}

// drainVar collects the unbound-position keys the cursor delivers from its
// current position by seeking strictly past each head. nvars is the number
// of unbound positions (the meaningful key components).
func drainVar(sc *Scan, nvars int) [][3]dict.ID {
	var out [][3]dict.ID
	for {
		vk, ok := sc.HeadVar()
		if !ok {
			return out
		}
		out = append(out, vk)
		next := vk
		next[nvars-1]++
		if next[nvars-1] == 0 { // overflow: nothing can follow
			return out
		}
		sc.SeekVar(next[0], next[1], next[2])
	}
}

// TestScanSeekOrders checks, on the plain and overlay stores, that ScanSeek
// delivers exactly Match's triple set sorted by the requested variable
// order, for every unbound-position ordering of several pattern shapes.
func TestScanSeekOrders(t *testing.T) {
	base, overlay := seekWorld(t, 1, 400)
	for _, st := range []*Store{base, overlay} {
		all, _ := st.Match(Pattern{})
		pid := all[len(all)/2].P
		sid := all[len(all)/3].S
		cases := []struct {
			pat    Pattern
			orders [][]int
		}{
			{Pattern{}, [][]int{{0, 1, 2}, {2, 0, 1}, {1, 2, 0}}},
			{Pattern{P: pid}, [][]int{{0, 2}, {2, 0}}},
			{Pattern{S: sid}, [][]int{{1, 2}, {2, 1}}},
			{Pattern{S: sid, P: pid}, [][]int{{2}}},
		}
		for _, tc := range cases {
			want, _ := st.Match(tc.pat)
			for _, vp := range tc.orders {
				sc := st.ScanSeek(tc.pat, vp)
				if got, exp := sc.Remaining(), len(want); got != exp {
					t.Fatalf("pat %v varPos %v: Remaining %d, want %d", tc.pat, vp, got, exp)
				}
				keys := drainVar(st.ScanSeek(tc.pat, vp), len(vp))
				if len(keys) != len(want) {
					t.Fatalf("pat %v varPos %v: drained %d keys, want %d", tc.pat, vp, len(keys), len(want))
				}
				// Keys must be strictly increasing (triples are a set).
				for i := 1; i < len(keys); i++ {
					a, b := keys[i-1], keys[i]
					if !(a[0] < b[0] || (a[0] == b[0] && (a[1] < b[1] || (a[1] == b[1] && a[2] < b[2])))) {
						t.Fatalf("pat %v varPos %v: keys not increasing at %d: %v then %v", tc.pat, vp, i, a, b)
					}
				}
				// The delivered key multiset must match the expected triples'
				// keys under the same variable order.
				var expect [][3]dict.ID
				for _, tr := range want {
					var k [3]dict.ID
					for i, pos := range vp {
						k[i] = positionValue(tr, pos)
					}
					expect = append(expect, k)
				}
				sort.Slice(expect, func(i, j int) bool {
					a, b := expect[i], expect[j]
					if a[0] != b[0] {
						return a[0] < b[0]
					}
					if a[1] != b[1] {
						return a[1] < b[1]
					}
					return a[2] < b[2]
				})
				for i := range keys {
					if keys[i] != expect[i] {
						t.Fatalf("pat %v varPos %v: key[%d] = %v, want %v", tc.pat, vp, i, keys[i], expect[i])
					}
				}
			}
		}
	}
}

// TestScanSeekBidirectional checks that a cursor can seek backward after
// being consumed forward — the re-enter-a-group move a leapfrog trie
// iterator makes once per binding of the variables above it.
func TestScanSeekBidirectional(t *testing.T) {
	base, overlay := seekWorld(t, 2, 300)
	for _, st := range []*Store{base, overlay} {
		sc := st.ScanSeek(Pattern{}, []int{0, 1, 2})
		first, ok := sc.HeadVar()
		if !ok {
			t.Fatal("empty cursor")
		}
		// Consume everything.
		for sc.Next(64) != nil {
		}
		if _, ok := sc.Head(); ok {
			t.Fatal("cursor not exhausted after drain")
		}
		// Seek back to the start.
		sc.SeekVar(0, 0, 0)
		again, ok := sc.HeadVar()
		if !ok || again != first {
			t.Fatalf("after backward seek: head %v ok=%v, want %v", again, ok, first)
		}
		if got, want := sc.Remaining(), st.Count(Pattern{}); got != want {
			t.Fatalf("after backward seek: Remaining %d, want %d", got, want)
		}
	}
}

// TestScanSeekAgreesWithScan cross-checks SeekVar against a linear filter
// of the plain Scan stream for random targets.
func TestScanSeekAgreesWithScan(t *testing.T) {
	base, overlay := seekWorld(t, 3, 350)
	rng := rand.New(rand.NewSource(99))
	for _, st := range []*Store{base, overlay} {
		all, _ := st.Match(Pattern{})
		for trial := 0; trial < 50; trial++ {
			var target [3]dict.ID
			if trial%3 == 0 && len(all) > 0 {
				tr := all[rng.Intn(len(all))]
				target = [3]dict.ID{tr.O, tr.S, tr.P} // OSP order key
			} else {
				target = [3]dict.ID{dict.ID(rng.Intn(200)), dict.ID(rng.Intn(200)), dict.ID(rng.Intn(200))}
			}
			sc := st.ScanSeek(Pattern{}, []int{2, 0, 1}) // O, S, P
			sc.SeekVar(target[0], target[1], target[2])
			got, gotOK := sc.HeadVar()
			// Linear reference: smallest (O,S,P) key >= target.
			var want [3]dict.ID
			wantOK := false
			for _, tr := range all {
				k := [3]dict.ID{tr.O, tr.S, tr.P}
				less := k[0] < target[0] || (k[0] == target[0] && (k[1] < target[1] || (k[1] == target[1] && k[2] < target[2])))
				if less {
					continue
				}
				if !wantOK {
					want, wantOK = k, true
					continue
				}
				better := k[0] < want[0] || (k[0] == want[0] && (k[1] < want[1] || (k[1] == want[1] && k[2] < want[2])))
				if better {
					want = k
				}
			}
			if gotOK != wantOK || (gotOK && got != want) {
				t.Fatalf("SeekVar(%v): head %v ok=%v, want %v ok=%v", target, got, gotOK, want, wantOK)
			}
		}
	}
}

// TestScanOverlayNextAllocs is the allocation regression test for the
// overlay merge path: after the first batch sizes the internal buffer,
// Next must not allocate.
func TestScanOverlayNextAllocs(t *testing.T) {
	_, overlay := seekWorld(t, 4, 4000)
	if overlay.Delta() == nil || overlay.Delta().Empty() {
		t.Fatal("overlay has no pending changes")
	}
	sc := overlay.Scan(Pattern{})
	if sc.Next(32) == nil {
		t.Fatal("empty scan")
	}
	runs := 50
	if sc.Remaining() < runs*32 {
		t.Fatalf("scan too small for %d warm runs: %d remaining", runs, sc.Remaining())
	}
	avg := testing.AllocsPerRun(runs, func() {
		if sc.Next(32) == nil {
			t.Fatal("cursor exhausted mid-measurement")
		}
	})
	if avg != 0 {
		t.Fatalf("overlay Scan.Next allocates %.1f times per batch in steady state, want 0", avg)
	}
}

// TestMatchBufAllocs is the allocation regression test for the probe path:
// repeated MatchBuf calls over an overlay with pending changes must reuse
// the caller's scratch once it has grown to the largest run.
func TestMatchBufAllocs(t *testing.T) {
	_, overlay := seekWorld(t, 5, 2000)
	all, _ := overlay.Match(Pattern{})
	subs := make([]dict.ID, 0, 64)
	seen := map[dict.ID]bool{}
	for _, tr := range all {
		if !seen[tr.S] {
			seen[tr.S] = true
			subs = append(subs, tr.S)
		}
	}
	var scratch []IDTriple
	warm := func() {
		for _, s := range subs {
			var m []IDTriple
			m, scratch = overlay.MatchBuf(Pattern{S: s}, scratch)
			_ = m
		}
	}
	warm()
	avg := testing.AllocsPerRun(20, warm)
	if avg != 0 {
		t.Fatalf("MatchBuf allocates %.1f times per probe sweep in steady state, want 0", avg)
	}
	// And it must agree with Match.
	for _, s := range subs {
		var m []IDTriple
		m, scratch = overlay.MatchBuf(Pattern{S: s}, scratch)
		want, _ := overlay.Match(Pattern{S: s})
		if len(m) != len(want) {
			t.Fatalf("MatchBuf(%d): %d matches, Match: %d", s, len(m), len(want))
		}
		for i := range m {
			if m[i] != want[i] {
				t.Fatalf("MatchBuf(%d): triple %d = %v, want %v", s, i, m[i], want[i])
			}
		}
	}
}
