package store

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/dict"
	"repro/internal/rdf"
)

// v4Image serializes st in the v4 format.
func v4Image(t testing.TB, st *Store) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := st.WriteSnapshotVersion(&buf, 4); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// equalStoreSurface compares every observable surface of two stores that
// do NOT share a dictionary struct (unlike equalStores, which compares
// raw index slices): lengths, per-order index contents, statistics, the
// type index, and term resolution in both directions.
func equalStoreSurface(t *testing.T, want, got *Store) {
	t.Helper()
	if want.Len() != got.Len() {
		t.Fatalf("Len %d vs %d", want.Len(), got.Len())
	}
	if want.dict.Len() != got.dict.Len() {
		t.Fatalf("dict Len %d vs %d", want.dict.Len(), got.dict.Len())
	}
	for id := dict.ID(1); int(id) <= want.dict.Len(); id++ {
		wt := want.dict.Decode(id)
		gt, ok := got.dict.TryDecode(id)
		if !ok || wt != gt {
			t.Fatalf("term %d: %v vs %v (ok=%v)", id, wt, gt, ok)
		}
		if back, ok := got.dict.Lookup(wt); !ok || back != id {
			t.Fatalf("term %d round trip via Lookup: got %d (ok=%v)", id, back, ok)
		}
	}
	for o := order(0); o < numOrders; o++ {
		x, _ := want.Match(patternAll(o))
		y, _ := got.Match(patternAll(o))
		if len(x) != len(y) {
			t.Fatalf("order %v: %d vs %d triples", o, len(x), len(y))
		}
	}
	wx, _ := want.Match(Pattern{})
	gx, _ := got.Match(Pattern{})
	for i := range wx {
		if wx[i] != gx[i] {
			t.Fatalf("SPO diverges at %d: %v vs %v", i, wx[i], gx[i])
		}
	}
	wp, gp := want.Predicates(), got.Predicates()
	if len(wp) != len(gp) {
		t.Fatalf("predicate count %d vs %d", len(wp), len(gp))
	}
	for i, p := range wp {
		if gp[i] != p {
			t.Fatalf("predicate %d: %d vs %d", i, p, gp[i])
		}
		if want.PredicateStats(p) != got.PredicateStats(p) {
			t.Fatalf("pstats[%d]: %+v vs %+v", p, want.PredicateStats(p), got.PredicateStats(p))
		}
	}
	if want.typeID != got.typeID {
		t.Fatalf("typeID %d vs %d", want.typeID, got.typeID)
	}
	if len(want.typeIdx) != len(got.typeIdx) {
		t.Fatalf("typeIdx size %d vs %d", len(want.typeIdx), len(got.typeIdx))
	}
	for c, xs := range want.typeIdx {
		ys := got.SubjectsOfClass(c)
		if len(xs) != len(ys) {
			t.Fatalf("class %d: %d vs %d members", c, len(xs), len(ys))
		}
		for i := range xs {
			if xs[i] != ys[i] {
				t.Fatalf("class %d member %d: %d vs %d", c, i, xs[i], ys[i])
			}
		}
	}
	// Spot-check bound patterns across both backings.
	for _, pat := range boundPatterns(want) {
		if a, b := want.Count(pat), got.Count(pat); a != b {
			t.Fatalf("Count(%v): %d vs %d", pat, a, b)
		}
		am, _ := want.Match(pat)
		bm, _ := got.Match(pat)
		if len(am) != len(bm) {
			t.Fatalf("Match(%v): %d vs %d", pat, len(am), len(bm))
		}
		for i := range am {
			if am[i] != bm[i] {
				t.Fatalf("Match(%v) diverges at %d", pat, i)
			}
		}
	}
}

func patternAll(o order) Pattern { return Pattern{} }

// boundPatterns derives a set of patterns with every bound-mask shape from
// the store's own first triple and predicates.
func boundPatterns(s *Store) []Pattern {
	all, _ := s.Match(Pattern{})
	if len(all) == 0 {
		return nil
	}
	tr := all[len(all)/2]
	return []Pattern{
		{S: tr.S}, {P: tr.P}, {O: tr.O},
		{S: tr.S, P: tr.P}, {P: tr.P, O: tr.O}, {S: tr.S, O: tr.O},
		{S: tr.S, P: tr.P, O: tr.O},
		{S: tr.S + 1000000}, // absent
	}
}

func TestSnapshotV4RoundTripMapped(t *testing.T) {
	st := randomBuilder(3, 500).Build()
	img := v4Image(t, st)
	mapped, err := OpenMappedBytes(img)
	if err != nil {
		t.Fatal(err)
	}
	if mapped.Backend() != "mapped" {
		t.Fatalf("Backend = %q, want mapped", mapped.Backend())
	}
	if mapped.MappedBytes() != len(img) {
		t.Fatalf("MappedBytes = %d, want %d", mapped.MappedBytes(), len(img))
	}
	if st.Backend() != "heap" || st.MappedBytes() != 0 {
		t.Fatalf("heap store reports %q/%d", st.Backend(), st.MappedBytes())
	}
	equalStoreSurface(t, st, mapped)
}

func TestSnapshotV4ReadSnapshotRebuildsHeap(t *testing.T) {
	st := randomBuilder(4, 300).Build()
	img := v4Image(t, st)
	heap, err := ReadSnapshot(bytes.NewReader(img))
	if err != nil {
		t.Fatal(err)
	}
	if heap.Backend() != "heap" {
		t.Fatalf("ReadSnapshot of v4 gave backend %q, want heap", heap.Backend())
	}
	equalStoreSurface(t, st, heap)
}

func TestSnapshotV4FoldsOverlay(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	base := randomBuilder(5, 300).Build()
	all, _ := base.Match(Pattern{})
	var dels []rdf.Triple
	for i := 0; i < 20; i++ {
		tr := all[rng.Intn(len(all))]
		d := base.Dict()
		dels = append(dels, rdf.NewTriple(d.Decode(tr.S), d.Decode(tr.P), d.Decode(tr.O)))
	}
	d, err := base.NewDelta().Apply(randomTriples(rng, 25), dels)
	if err != nil {
		t.Fatal(err)
	}
	ov := d.Overlay()
	img := v4Image(t, ov)
	mapped, err := OpenMappedBytes(img)
	if err != nil {
		t.Fatal(err)
	}
	// The v4 file folds the delta: it must equal the committed store.
	equalStoreSurface(t, d.Commit(BuildOptions{}), mapped)
	if mapped.Delta() != nil {
		t.Fatal("v4 open produced an overlay store")
	}
}

func TestSnapshotV4EmptyStore(t *testing.T) {
	st := NewBuilder().Build()
	img := v4Image(t, st)
	mapped, err := OpenMappedBytes(img)
	if err != nil {
		t.Fatal(err)
	}
	if mapped.Len() != 0 || mapped.Dict().Len() != 0 {
		t.Fatalf("empty store round trip: %d triples, %d terms", mapped.Len(), mapped.Dict().Len())
	}
}

func TestOpenMappedFile(t *testing.T) {
	st := randomBuilder(6, 200).Build()
	path := filepath.Join(t.TempDir(), "snap.v4")
	if err := os.WriteFile(path, v4Image(t, st), 0o644); err != nil {
		t.Fatal(err)
	}
	mapped, err := OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	m := mapped.Mapping()
	if m == nil || m.Refs() != 1 {
		t.Fatalf("mapping refs = %v", m)
	}
	equalStoreSurface(t, st, mapped)
	m.Release()
	if m.Retain() {
		t.Fatal("Retain succeeded after full release")
	}
}

func TestLoadAnyMapped(t *testing.T) {
	st := randomBuilder(7, 100).Build()
	dir := t.TempDir()
	v4path := filepath.Join(dir, "snap.v4")
	v2path := filepath.Join(dir, "snap.v2")
	if err := os.WriteFile(v4path, v4Image(t, st), 0o644); err != nil {
		t.Fatal(err)
	}
	var v2 bytes.Buffer
	if err := st.WriteSnapshot(&v2); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(v2path, v2.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	m4, err := LoadAnyMapped(v4path)
	if err != nil {
		t.Fatal(err)
	}
	if m4.Backend() != "mapped" {
		t.Fatalf("v4 via LoadAnyMapped: backend %q", m4.Backend())
	}
	m2, err := LoadAnyMapped(v2path)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Backend() != "heap" {
		t.Fatalf("v2 via LoadAnyMapped: backend %q", m2.Backend())
	}
	equalStoreSurface(t, st, m4)
	equalStoreSurface(t, st, m2)
	if m := m4.Mapping(); m != nil {
		m.Release()
	}
}

// TestSnapshotV4DeltaOverMapped is the update path over a mapped base:
// fresh terms get tail ids identical to the heap twin's, overlays and
// commits stay bit-identical across backings, and both keep reporting the
// base mapping.
func TestSnapshotV4DeltaOverMapped(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	heapBase := randomBuilder(8, 300).Build()
	mappedBase, err := OpenMappedBytes(v4Image(t, heapBase))
	if err != nil {
		t.Fatal(err)
	}
	ins := randomTriples(rng, 30)
	all, _ := heapBase.Match(Pattern{})
	var dels []rdf.Triple
	d := heapBase.Dict()
	for i := 0; i < 10; i++ {
		tr := all[rng.Intn(len(all))]
		dels = append(dels, rdf.NewTriple(d.Decode(tr.S), d.Decode(tr.P), d.Decode(tr.O)))
	}
	dh, err := heapBase.NewDelta().Apply(ins, dels)
	if err != nil {
		t.Fatal(err)
	}
	dm, err := mappedBase.NewDelta().Apply(ins, dels)
	if err != nil {
		t.Fatal(err)
	}
	ovh, ovm := dh.Overlay(), dm.Overlay()
	if ovm.Backend() != "mapped" || ovm.Mapping() == nil {
		t.Fatalf("overlay over mapped base reports %q", ovm.Backend())
	}
	equalStoreSurface(t, ovh, ovm)
	ch, cm := dh.Commit(BuildOptions{}), dm.Commit(BuildOptions{})
	if cm.Backend() != "heap" {
		t.Fatalf("committed store backend %q, want heap", cm.Backend())
	}
	if cm.Mapping() == nil {
		t.Fatal("committed store over mapped dictionary lost the mapping")
	}
	equalStoreSurface(t, ch, cm)
}

// corruptV4 returns a mutated copy of img.
func corruptV4(img []byte, mutate func([]byte)) []byte {
	cp := append([]byte(nil), img...)
	mutate(cp)
	return cp
}

func TestOpenMappedRejectsCorrupt(t *testing.T) {
	st := randomBuilder(11, 120).Build()
	img := v4Image(t, st)
	le32 := func(b []byte, at int, v uint32) {
		b[at] = byte(v)
		b[at+1] = byte(v >> 8)
		b[at+2] = byte(v >> 16)
		b[at+3] = byte(v >> 24)
	}
	cases := map[string][]byte{
		"empty":          nil,
		"short header":   img[:100],
		"truncated page": img[:len(img)-v4PageSize/2],
		"truncated section": img[:v4Align(uint64(v4PageSize+10))- // mid second section
			v4PageSize/2],
		"bad magic":     corruptV4(img, func(b []byte) { b[7] = '9' }),
		"bad page size": corruptV4(img, func(b []byte) { le32(b, 8, 512) }),
		"huge triple count": corruptV4(img, func(b []byte) {
			b[16], b[17], b[18], b[19], b[20] = 0xff, 0xff, 0xff, 0xff, 0x01
		}),
		// Out-of-range section offset: point section 0 past EOF.
		"section offset out of range": corruptV4(img, func(b []byte) { le32(b, 72, uint32(len(img))+v4PageSize) }),
		// Overlapping runs: make section 1 alias section 0.
		"overlapping sections": corruptV4(img, func(b []byte) { copy(b[72+16:72+32], b[72:72+16]) }),
		"file size mismatch":   corruptV4(img, func(b []byte) { le32(b, 64, uint32(len(img))+v4PageSize) }),
		"appended garbage":     append(append([]byte(nil), img...), make([]byte, v4PageSize)...),
		"type id out of range": corruptV4(img, func(b []byte) { le32(b, 12, 1<<30) }),
	}
	for name, data := range cases {
		if _, err := OpenMappedBytes(data); err == nil {
			t.Errorf("%s: accepted", name)
		}
		if _, err := ReadSnapshot(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: ReadSnapshot accepted", name)
		}
	}
}

// TestOpenMappedHardenedAccessors corrupts interior section data that the
// O(1) open cannot see: the mapped store must stay safe (TryDecode fails,
// Lookup misses, no panics) and the fully-validating ReadSnapshot path
// must reject the same bytes.
func TestOpenMappedHardenedAccessors(t *testing.T) {
	st := randomBuilder(12, 120).Build()
	img := v4Image(t, st)
	// Locate the term offset table and heap sections from the header.
	secOff := func(i int) (uint64, uint64) {
		at := 72 + i*16
		off := uint64(0)
		length := uint64(0)
		for j := 7; j >= 0; j-- {
			off = off<<8 | uint64(img[at+j])
			length = length<<8 | uint64(img[at+8+j])
		}
		return off, length
	}
	offTab, _ := secOff(v4SecOffTable)
	heapOff, heapLen := secOff(v4SecTermHeap)

	t.Run("offset table out of range", func(t *testing.T) {
		bad := corruptV4(img, func(b []byte) {
			// Second entry jumps past the heap: record 1 becomes invalid.
			at := int(offTab) + 8
			v := heapLen + 1000
			for j := 0; j < 8; j++ {
				b[at+j] = byte(v >> (8 * j))
			}
		})
		ms, err := OpenMappedBytes(bad)
		if err != nil {
			t.Fatal(err) // O(1) open cannot see interior corruption
		}
		if _, ok := ms.Dict().TryDecode(1); ok {
			t.Fatal("TryDecode succeeded over corrupt offset")
		}
		// Every surface stays panic-free.
		ms.Dict().Lookup(rdf.NewIRI("http://nope/"))
		ms.Match(Pattern{})
		if _, err := ReadSnapshot(bytes.NewReader(bad)); err == nil {
			t.Fatal("ReadSnapshot accepted corrupt offset table")
		}
	})
	t.Run("corrupt term record", func(t *testing.T) {
		bad := corruptV4(img, func(b []byte) { b[heapOff] = 0xff }) // invalid kind
		ms, err := OpenMappedBytes(bad)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := ms.Dict().TryDecode(1); ok {
			t.Fatal("TryDecode succeeded over corrupt record")
		}
		ms.Dict().Lookup(rdf.NewIRI("http://nope/"))
		if _, err := ReadSnapshot(bytes.NewReader(bad)); err == nil {
			t.Fatal("ReadSnapshot accepted corrupt term record")
		}
	})
}

func TestOpenMappedBytesUnaligned(t *testing.T) {
	st := randomBuilder(13, 80).Build()
	img := v4Image(t, st)
	backing := make([]byte, len(img)+1)
	copy(backing[1:], img)
	mapped, err := OpenMappedBytes(backing[1:]) // misaligned base pointer
	if err != nil {
		t.Fatal(err)
	}
	equalStoreSurface(t, st, mapped)
}

// TestOpenMappedConstantWork asserts the O(1) property: opening a snapshot
// with 8x the triples must not allocate more (stats parsing is bounded by
// the vocabulary, which randomBuilder keeps fixed).
func TestOpenMappedConstantWork(t *testing.T) {
	small := v4Image(t, randomBuilder(14, 2000).Build())
	large := v4Image(t, randomBuilder(14, 16000).Build())
	measure := func(img []byte) float64 {
		return testing.AllocsPerRun(10, func() {
			if _, err := OpenMappedBytes(img); err != nil {
				t.Fatal(err)
			}
		})
	}
	a, b := measure(small), measure(large)
	if b > a*1.5+16 {
		t.Fatalf("open allocations grow with triple count: %v (n=2000) vs %v (n=16000)", a, b)
	}
}

// TestOpenMappedFasterThanHeapLoad pins the headline property with a wide
// safety margin (the benchmarks measure the real ratio, typically far over
// the 50x acceptance line): mapped open of a 50k-triple snapshot must beat
// the v2 heap load by at least 10x, min-of-trials.
func TestOpenMappedFasterThanHeapLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	st := randomBuilder(15, 50000).Build()
	img4 := v4Image(t, st)
	var v2 bytes.Buffer
	if err := st.WriteSnapshot(&v2); err != nil {
		t.Fatal(err)
	}
	best := func(f func()) time.Duration {
		b := time.Duration(1 << 62)
		for i := 0; i < 5; i++ {
			start := time.Now()
			f()
			if d := time.Since(start); d < b {
				b = d
			}
		}
		return b
	}
	open := best(func() {
		if _, err := OpenMappedBytes(img4); err != nil {
			t.Fatal(err)
		}
	})
	load := best(func() {
		if _, err := ReadSnapshot(bytes.NewReader(v2.Bytes())); err != nil {
			t.Fatal(err)
		}
	})
	if open*10 > load {
		t.Fatalf("mapped open %v not >=10x faster than heap load %v", open, load)
	}
}

// FuzzOpenMapped drives the O(1) mapped open (and the fully-validating
// streaming path over the same bytes) with arbitrary input: neither may
// panic, every surface of an accepted mapped store must be safe to touch,
// and when the strict reader also accepts, the two must agree.
func FuzzOpenMapped(f *testing.F) {
	st := randomBuilder(16, 60).Build()
	var buf bytes.Buffer
	if err := st.WriteSnapshotVersion(&buf, 4); err != nil {
		f.Fatal(err)
	}
	img := buf.Bytes()
	f.Add(img)
	f.Add(img[:len(img)/2])
	f.Add(img[:v4PageSize])
	f.Add(corruptV4(img, func(b []byte) { b[72] ^= 0xff }))
	f.Add(corruptV4(img, func(b []byte) { b[v4PageSize+5] ^= 0xff }))
	f.Add(corruptV4(img, func(b []byte) { b[len(b)-3] ^= 0xff }))
	f.Add([]byte(snapshotMagicV4))
	f.Fuzz(func(t *testing.T, data []byte) {
		ms, err := OpenMappedBytes(data)
		if err != nil {
			return
		}
		// Touch every hardened surface.
		n := ms.Dict().Len()
		for id := 1; id <= n && id <= 512; id++ {
			if term, ok := ms.Dict().TryDecode(dict.ID(id)); ok {
				ms.Dict().Lookup(term)
			}
		}
		matches, _ := ms.Match(Pattern{})
		if len(matches) != ms.Len() {
			t.Fatalf("mapped store inconsistent: Len %d but %d matches", ms.Len(), len(matches))
		}
		for _, pat := range boundPatterns(ms) {
			m, _ := ms.Match(pat)
			if ms.Count(pat) != len(m) {
				t.Fatalf("Count(%v) disagrees with Match", pat)
			}
		}
		for _, p := range ms.Predicates() {
			ms.PredicateStats(p)
		}
		// The strict reader sees the same bytes; if it accepts, the rebuilt
		// heap store must agree with the mapped view on the triple stream.
		hs, err := ReadSnapshot(bytes.NewReader(data))
		if err != nil {
			return
		}
		if hs.Len() != ms.Len() {
			t.Fatalf("heap rebuild Len %d vs mapped %d", hs.Len(), ms.Len())
		}
		hm, _ := hs.Match(Pattern{})
		if !equalTriples(hm, matches) {
			t.Fatal("heap rebuild disagrees with mapped triple stream")
		}
	})
}
