package store

import (
	"fmt"
	"sort"

	"repro/internal/dict"
	"repro/internal/rdf"
)

// Sharded is a hash-partitioned federation of per-shard *Stores behind
// the same Source seam a single store serves: triples are routed to
// shards by a hash of their subject ID, every shard is an ordinary
// immutable hexastore (heap or mmap-backed, plain or overlay, with its
// own Delta and MVCC generation), and all shards share one dictionary so
// IDs join and decode identically across shards.
//
// The read paths federate at the index-run level: each shard's matching
// run is a sorted sequence over a disjoint triple subset, so k-way
// merging the runs back together (mergeScans) reproduces exactly the
// stream a single store over the union would deliver. Subject-bound
// patterns hit exactly one shard and keep the single-store fast path.
// Because the streams are identical and the coordinator keeps exact
// global statistics (Count sums over disjoint shards; DistinctS and the
// rdf:type class index partition cleanly by subject; DistinctO is
// maintained globally, since distinct objects do not sum across shards),
// the optimizer picks identical plans and the executor produces
// bit-identical rows and Cout/Work/Scanned accounting at any shard
// count — the same invariance the morsel driver guarantees across worker
// counts, lifted to the shard level.
//
// A Sharded is immutable, like Store: updates go through NewDelta /
// ShardedDelta and publish a fresh Sharded.
type Sharded struct {
	shards []*Store
	dict   *dict.Dict
	n      int                   // total triples (sum of shard sizes)
	pstats map[dict.ID]PredStats // exact global per-predicate statistics
}

// shardOf routes a subject ID to its home shard (Fibonacci hashing on the
// ID). The routing is deterministic for a given dictionary, which is all
// correctness needs — results are invariant to placement.
func shardOf(s dict.ID, n int) int {
	if n <= 1 {
		return 0
	}
	h := uint64(s) * 0x9E3779B97F4A7C15
	return int((h >> 32) % uint64(n))
}

// NewSharded partitions st's triples (delta merged in, for an overlay)
// across n shards by subject hash. The shards share st's dictionary and
// each is built through the standard parallel index construction; the
// global statistics are st's own exact values, so a Sharded and the store
// it came from are indistinguishable to the planner.
func NewSharded(st *Store, n int) *Sharded {
	return NewShardedOpts(st, n, BuildOptions{})
}

// NewShardedOpts is NewSharded with explicit per-shard build options.
func NewShardedOpts(st *Store, n int, opts BuildOptions) *Sharded {
	if n < 1 {
		n = 1
	}
	all, _ := st.Match(Pattern{})
	counts := make([]int, n)
	for _, t := range all {
		counts[shardOf(t.S, n)]++
	}
	buckets := make([][]IDTriple, n)
	for i := range buckets {
		buckets[i] = make([]IDTriple, 0, counts[i])
	}
	for _, t := range all {
		b := shardOf(t.S, n)
		buckets[b] = append(buckets[b], t)
	}
	shards := make([]*Store, n)
	for i := range shards {
		shards[i] = buildIndexes(st.dict, buckets[i], opts)
	}
	return &Sharded{
		shards: shards,
		dict:   st.dict,
		n:      st.Len(),
		pstats: st.pstats,
	}
}

// NumShards returns the shard count.
func (sh *Sharded) NumShards() int { return len(sh.shards) }

// Shard returns shard i (for per-shard stats and tests); treat it as
// read-only.
func (sh *Sharded) Shard(i int) *Store { return sh.shards[i] }

// Dict returns the dictionary shared by every shard.
func (sh *Sharded) Dict() *dict.Dict { return sh.dict }

// Len returns the total number of triples across all shards.
func (sh *Sharded) Len() int { return sh.n }

// Backend names the composite backing: "sharded(N, heap)", "sharded(N,
// mapped)", or "sharded(N, mixed)" when per-shard compaction has left
// shards on different backings.
func (sh *Sharded) Backend() string {
	b := sh.shards[0].Backend()
	for _, s := range sh.shards[1:] {
		if s.Backend() != b {
			b = "mixed"
			break
		}
	}
	return fmt.Sprintf("sharded(%d, %s)", len(sh.shards), b)
}

// Mappings returns the distinct snapshot mappings backing the shards
// (empty for pure heap shards). A service generation retains every one of
// them, so /reload pins all shards' mappings until the last in-flight
// query drains.
func (sh *Sharded) Mappings() []*Mapping {
	var out []*Mapping
	for _, s := range sh.shards {
		m := s.Mapping()
		if m == nil {
			continue
		}
		dup := false
		for _, seen := range out {
			if seen == m {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, m)
		}
	}
	return out
}

// MappedBytes returns the total size of the distinct mappings backing the
// shards (0 for heap).
func (sh *Sharded) MappedBytes() int {
	n := 0
	for _, m := range sh.Mappings() {
		n += m.Size()
	}
	return n
}

// Pending returns the total overlay delta sizes across shards (zero when
// every shard is fully indexed).
func (sh *Sharded) Pending() (inserts, deletes int) {
	for _, s := range sh.shards {
		if d := s.Delta(); d != nil {
			inserts += d.InsertCount()
			deletes += d.DeleteCount()
		}
	}
	return inserts, deletes
}

// BaseLen returns the total size of the shards' fully indexed bases.
func (sh *Sharded) BaseLen() int {
	n := 0
	for _, s := range sh.shards {
		if d := s.Delta(); d != nil {
			n += d.Base().Len()
		} else {
			n += s.Len()
		}
	}
	return n
}

// Count returns the exact number of triples matching pat: shards hold
// disjoint triple sets, so per-shard exact counts sum exactly.
func (sh *Sharded) Count(pat Pattern) int {
	n := 0
	for _, s := range sh.shards {
		n += s.Count(pat)
	}
	return n
}

// Match returns the triples matching pat in index sort order, k-way
// merged across shards. When exactly one shard holds matches (always the
// case for subject-bound patterns) the result is that shard's zero-copy
// subslice.
func (sh *Sharded) Match(pat Pattern) ([]IDTriple, order) {
	m, _, o := sh.matchInto(pat, nil)
	return m, o
}

// MatchBuf is Match with caller-provided scratch, mirroring
// Store.MatchBuf: the merged run is assembled in scratch's backing array
// unless a single shard's zero-copy subslice suffices.
func (sh *Sharded) MatchBuf(pat Pattern, scratch []IDTriple) (matches, scratch2 []IDTriple) {
	m, scr, _ := sh.matchInto(pat, scratch)
	return m, scr
}

func (sh *Sharded) matchInto(pat Pattern, scratch []IDTriple) ([]IDTriple, []IDTriple, order) {
	if len(sh.shards) == 1 {
		return sh.shards[0].matchInto(pat, scratch)
	}
	o := orderFor(pat.boundMask())
	// Open per-shard cursors and drop empty ones; with one contributor the
	// shard's own match path (zero-copy where possible) answers directly.
	var (
		scans []*Scan
		only  = -1
		need  = 0
	)
	for i, s := range sh.shards {
		sc := s.Scan(pat)
		r := sc.Remaining()
		if r == 0 {
			continue
		}
		need += r
		scans = append(scans, sc)
		only = i
	}
	switch len(scans) {
	case 0:
		return nil, scratch, o
	case 1:
		return sh.shards[only].matchInto(pat, scratch)
	}
	out := scratch[:0]
	if cap(out) < need {
		out = make([]IDTriple, 0, need)
	}
	merged := &Scan{ord: o, sub: scans}
	for {
		c, t, ok := merged.headChild()
		if !ok {
			break
		}
		out = append(out, t)
		c.advance()
	}
	return out, out[:0], o
}

// Scan opens a merged batch cursor over the triples matching pat.
func (sh *Sharded) Scan(pat Pattern) *Scan {
	if len(sh.shards) == 1 {
		return sh.shards[0].Scan(pat)
	}
	children := make([]*Scan, len(sh.shards))
	for i, s := range sh.shards {
		children[i] = s.Scan(pat)
	}
	return mergeScans(children, orderFor(pat.boundMask()), pat)
}

// ScanSeek opens a merged seekable trie cursor (see Store.ScanSeek):
// seeks fan out to every shard cursor and the head is the minimum across
// them, preserving the leapfrog trie-iterator contract.
func (sh *Sharded) ScanSeek(pat Pattern, varPos []int) *Scan {
	if len(sh.shards) == 1 {
		return sh.shards[0].ScanSeek(pat, varPos)
	}
	children := make([]*Scan, len(sh.shards))
	for i, s := range sh.shards {
		children[i] = s.ScanSeek(pat, varPos)
	}
	return mergeScans(children, children[0].ord, pat)
}

// ScanPartitions splits the merged stream into up to n contiguous morsels
// with the same concatenation contract as Store.ScanPartitions — this is
// the scatter half of scatter-gather: every partition is a merged cursor
// spanning the shards' sub-runs between two global boundary triples, so
// the existing morsel driver executes across shards and its in-order
// merge (the gather half) reproduces the serial stream bit-for-bit.
// Boundaries are drawn from the largest single run, so sizes stay
// balanced up to hash skew; partitions may be empty, which preserves the
// concatenation order.
func (sh *Sharded) ScanPartitions(pat Pattern, n int) []*Scan {
	if len(sh.shards) == 1 {
		return sh.shards[0].ScanPartitions(pat, n)
	}
	scans := make([]*Scan, len(sh.shards))
	total := 0
	for i, s := range sh.shards {
		scans[i] = s.Scan(pat)
		total += scans[i].Remaining()
	}
	if total == 0 {
		return nil
	}
	if n < 1 {
		n = 1
	}
	if n > total {
		n = total
	}
	o := scans[0].ord
	if n == 1 {
		return []*Scan{mergeScans(scans, o, pat)}
	}
	// Boundary triples come from the largest run among all shards' base
	// and insert runs; every run of every shard is cut at each boundary by
	// a lower-bound search. A deleted triple and its base twin compare
	// equal, so they land in the same partition, keeping Remaining exact.
	var primary []IDTriple
	for _, sc := range scans {
		if len(sc.rest0) > len(primary) {
			primary = sc.rest0
		}
		if len(sc.ins0) > len(primary) {
			primary = sc.ins0
		}
	}
	lowerBound := func(run []IDTriple, t IDTriple) int {
		return sort.Search(len(run), func(i int) bool { return !lessByOrder(run[i], t, o) })
	}
	type cuts struct{ rest, del, ins int }
	prev := make([]cuts, len(scans))
	out := make([]*Scan, 0, n)
	for i := 0; i < n; i++ {
		var boundary IDTriple
		hasBoundary := false
		if i < n-1 {
			if p := (i + 1) * len(primary) / n; p < len(primary) {
				boundary = primary[p]
				hasBoundary = true
			}
		}
		children := make([]*Scan, 0, len(scans))
		for j, sc := range scans {
			rn, dn, in := len(sc.rest0), len(sc.del0), len(sc.ins0)
			if hasBoundary {
				rn = lowerBound(sc.rest0, boundary)
				dn = lowerBound(sc.del0, boundary)
				in = lowerBound(sc.ins0, boundary)
			}
			c := &Scan{
				ord:  o,
				rest: sc.rest0[prev[j].rest:rn:rn],
				del:  sc.del0[prev[j].del:dn:dn],
				ins:  sc.ins0[prev[j].ins:in:in],
			}
			c.initRuns(pat)
			prev[j] = cuts{rn, dn, in}
			children = append(children, c)
		}
		out = append(out, mergeScans(children, o, pat))
	}
	return out
}

// PredicateStats returns the exact global statistics for predicate p.
func (sh *Sharded) PredicateStats(p dict.ID) PredStats { return sh.pstats[p] }

// Predicates returns the IDs of all predicates present, ascending.
func (sh *Sharded) Predicates() []dict.ID {
	out := make([]dict.ID, 0, len(sh.pstats))
	for p := range sh.pstats {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SubjectsOfClass returns the sorted subject IDs having rdf:type c,
// merged across shards. Subjects partition cleanly by shard (they are
// what the hash routes on), so the per-shard sorted lists are disjoint
// and a k-way merge is exact.
func (sh *Sharded) SubjectsOfClass(c dict.ID) []dict.ID {
	if len(sh.shards) == 1 {
		return sh.shards[0].SubjectsOfClass(c)
	}
	var lists [][]dict.ID
	total := 0
	for _, s := range sh.shards {
		if l := s.SubjectsOfClass(c); len(l) > 0 {
			lists = append(lists, l)
			total += len(l)
		}
	}
	switch len(lists) {
	case 0:
		return nil
	case 1:
		return lists[0]
	}
	out := make([]dict.ID, 0, total)
	for len(lists) > 0 {
		min := 0
		for i := 1; i < len(lists); i++ {
			if lists[i][0] < lists[min][0] {
				min = i
			}
		}
		out = append(out, lists[min][0])
		if lists[min] = lists[min][1:]; len(lists[min]) == 0 {
			lists[min] = lists[len(lists)-1]
			lists = lists[:len(lists)-1]
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// DistinctValues returns the distinct IDs in the given position of
// triples matching pat, with the same ordering contract as
// Store.DistinctValues.
func (sh *Sharded) DistinctValues(position int, pat Pattern) []dict.ID {
	triples, o := sh.Match(pat)
	return distinctValues(triples, o, pat.boundMask(), position)
}

// ShardedDelta is the sharded counterpart of Delta: one pending Delta per
// shard, extended together and published together. Triples route to their
// home shard by subject hash; a triple's entire history (insert, delete,
// resurrect) plays out inside one shard's delta, so per-shard RDF set
// semantics compose to exactly the unsharded semantics.
type ShardedDelta struct {
	base   *Sharded
	deltas []*Delta
}

// NewDelta returns the pending sharded delta: each shard's own pending
// delta (empty for plain shards), so updates over a sharded overlay
// extend it rather than stack overlays.
func (sh *Sharded) NewDelta() *ShardedDelta {
	ds := make([]*Delta, len(sh.shards))
	for i, s := range sh.shards {
		ds[i] = s.NewDelta()
	}
	return &ShardedDelta{base: sh, deltas: ds}
}

// Base returns the Sharded the delta applies to.
func (sd *ShardedDelta) Base() *Sharded { return sd.base }

// ShardDelta returns shard i's pending delta.
func (sd *ShardedDelta) ShardDelta(i int) *Delta { return sd.deltas[i] }

// InsertCount returns the number of pending inserted triples across all
// shards.
func (sd *ShardedDelta) InsertCount() int {
	n := 0
	for _, d := range sd.deltas {
		n += d.InsertCount()
	}
	return n
}

// DeleteCount returns the number of pending deleted triples across all
// shards.
func (sd *ShardedDelta) DeleteCount() int {
	n := 0
	for _, d := range sd.deltas {
		n += d.DeleteCount()
	}
	return n
}

// Size returns the total number of pending changes.
func (sd *ShardedDelta) Size() int { return sd.InsertCount() + sd.DeleteCount() }

// Empty reports whether no shard has pending changes.
func (sd *ShardedDelta) Empty() bool { return sd.Size() == 0 }

// ApplyOps routes an ordered operation sequence to the shards and extends
// each shard's delta (copy-on-write; the receiver is never mutated).
// Insert terms are pre-encoded into the shared dictionary in operation
// order first, so the dictionary assigns exactly the IDs an unsharded
// ApplyOps would — row values, ORDER BY and plan signatures stay
// bit-identical across shard counts even for updates that introduce new
// terms. Returns sd itself when nothing changed, preserving the
// pointer-equality no-op contract.
func (sd *ShardedDelta) ApplyOps(ops []DeltaOp) (*ShardedDelta, error) {
	for _, op := range ops {
		for _, t := range op.Triples {
			if !t.Valid() {
				return nil, fmt.Errorf("store: invalid triple %v", t)
			}
		}
	}
	n := len(sd.deltas)
	dd := sd.base.dict
	for _, op := range ops {
		if !op.Insert {
			continue // deletes are lookup-only and never grow the dictionary
		}
		for _, t := range op.Triples {
			dd.Encode(t.S)
			dd.Encode(t.P)
			dd.Encode(t.O)
		}
	}
	routed := make([][]DeltaOp, n)
	parts := make([][]rdf.Triple, n)
	for _, op := range ops {
		for i := range parts {
			parts[i] = nil
		}
		for _, t := range op.Triples {
			var (
				sid dict.ID
				ok  bool
			)
			if op.Insert {
				sid = dd.Encode(t.S) // already encoded above; returns the ID
			} else if sid, ok = dd.Lookup(t.S); !ok {
				continue // unknown subject: the delete is a no-op everywhere
			}
			b := shardOf(sid, n)
			parts[b] = append(parts[b], t)
		}
		for i, ts := range parts {
			if len(ts) > 0 {
				routed[i] = append(routed[i], DeltaOp{Insert: op.Insert, Triples: ts})
			}
		}
	}
	out := make([]*Delta, n)
	changed := false
	for i, d := range sd.deltas {
		if len(routed[i]) == 0 {
			out[i] = d
			continue
		}
		nd, err := d.ApplyOps(routed[i])
		if err != nil {
			return nil, err
		}
		out[i] = nd
		if nd != d {
			changed = true
		}
	}
	if !changed {
		return sd, nil
	}
	return &ShardedDelta{base: sd.base, deltas: out}, nil
}

// Overlay publishes the delta as a sharded overlay snapshot: every shard
// with pending changes becomes an overlay store, the rest are shared
// untouched.
func (sd *ShardedDelta) Overlay() *Sharded {
	if sd.Empty() {
		return sd.base
	}
	return sd.publish(func(int, *Delta) bool { return false }, BuildOptions{})
}

// Commit folds every shard's pending delta into a fresh fully indexed
// shard store.
func (sd *ShardedDelta) Commit(opts BuildOptions) *Sharded {
	if sd.Empty() {
		return sd.base
	}
	return sd.publish(func(int, *Delta) bool { return true }, opts)
}

// Publish builds the next Sharded snapshot with a per-shard publication
// decision: shards for which compact returns true fold their delta into a
// fresh store (auto-compaction), the others publish overlays. Global
// statistics are re-derived exactly for every predicate any shard's delta
// touches, by merged in-order passes over the new shard set — the sharded
// analog of Delta.patchedPredStats.
func (sd *ShardedDelta) Publish(compact func(shard int, d *Delta) bool, opts BuildOptions) *Sharded {
	if sd.Empty() {
		return sd.base
	}
	return sd.publish(compact, opts)
}

func (sd *ShardedDelta) publish(compact func(shard int, d *Delta) bool, opts BuildOptions) *Sharded {
	base := sd.base
	shards := make([]*Store, len(sd.deltas))
	total := 0
	for i, d := range sd.deltas {
		if compact(i, d) {
			shards[i] = d.Commit(opts)
		} else {
			shards[i] = d.Overlay()
		}
		total += shards[i].Len()
	}
	out := &Sharded{shards: shards, dict: base.dict, n: total}
	out.pstats = sd.patchedPredStats(out)
	return out
}

// patchedPredStats rebuilds the global per-predicate statistics for every
// predicate any shard's delta touches, by one merged in-order pass over
// the new shard set per permutation (PSO for count + distinct subjects,
// POS for distinct objects). Untouched predicates keep the base's exact
// entries — the same incremental patching Delta.Overlay does, over merged
// sharded runs.
func (sd *ShardedDelta) patchedPredStats(next *Sharded) map[dict.ID]PredStats {
	base := sd.base
	touched := make(map[dict.ID]struct{})
	for _, d := range sd.deltas {
		for _, t := range d.ins[orderSPO] {
			touched[t.P] = struct{}{}
		}
		for _, t := range d.del[orderSPO] {
			touched[t.P] = struct{}{}
		}
	}
	out := make(map[dict.ID]PredStats, len(base.pstats)+len(touched))
	for p, st := range base.pstats {
		out[p] = st
	}
	for p := range touched {
		pat := Pattern{P: p}
		st := PredStats{}
		var lastS dict.ID
		sc := next.ScanSeek(pat, []int{0, 2}) // PSO order: grouped by subject
		for {
			batch := sc.Next(4096)
			if batch == nil {
				break
			}
			for _, t := range batch {
				st.Count++
				if st.Count == 1 || t.S != lastS {
					st.DistinctS++
					lastS = t.S
				}
			}
		}
		if st.Count == 0 {
			delete(out, p)
			continue
		}
		var lastO dict.ID
		distO := 0
		sc = next.ScanSeek(pat, []int{2, 0}) // POS order: grouped by object
		for {
			batch := sc.Next(4096)
			if batch == nil {
				break
			}
			for _, t := range batch {
				if distO == 0 || t.O != lastO {
					distO++
					lastO = t.O
				}
			}
		}
		st.DistinctO = distO
		out[p] = st
	}
	return out
}
