//go:build !unix

package store

import (
	"io"
	"os"
)

// mmapFile on platforms without the unix mmap syscall falls back to
// reading the file into memory. OpenMapped still works — same format,
// same O(1) validation, same bounds-checked accessors — it just pays a
// one-time sequential read instead of demand paging.
func mmapFile(path string) ([]byte, func([]byte) error, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	return data, func([]byte) error { return nil }, nil
}

// mmapFd is the fallback's already-open-file variant: it rewinds f and
// reads it fully.
func mmapFd(f *os.File) ([]byte, func([]byte) error, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, nil, err
	}
	data, err := io.ReadAll(f)
	if err != nil {
		return nil, nil, err
	}
	return data, func([]byte) error { return nil }, nil
}
