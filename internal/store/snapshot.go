package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/dict"
	"repro/internal/rdf"
)

// Snapshot format: a compact binary serialization of a store (dictionary +
// triples). Generating a paper-scale dataset takes ~10 s; loading its
// snapshot takes a fraction of that, so experiment drivers can reuse
// datasets across processes. Two versions exist, auto-detected by magic:
//
// v1 (all integers little-endian, fixed width):
//
//	magic   [8]byte  "RDFSNAP1"
//	nTerms  uint32
//	nTriple uint32
//	terms   nTerms × { kind uint8, value str, lang str, datatype str }
//	triples nTriple × { s, p, o uint32 }   (dictionary IDs, SPO order)
//
// where str is uint32 length + bytes.
//
// v2 (the default; unsigned varints, delta-encoded triples):
//
//	magic   [8]byte  "RDFSNAP2"
//	nTerms  uvarint
//	nTriple uvarint
//	terms   nTerms × { kind uint8, value vstr, lang vstr, datatype vstr }
//	triples nTriple × delta record, strictly increasing SPO order
//
// where vstr is uvarint length + bytes. Each triple is encoded against its
// predecessor (starting from the zero triple): uvarint(S−prevS), then the
// full P and O if the subject advanced; otherwise 0, uvarint(P−prevP),
// then the full O if the predicate advanced; otherwise 0, 0,
// uvarint(O−prevO). Since the stream is strictly increasing, the final
// delta is never zero — a zero marks a duplicate (or unsorted) triple and
// is rejected, as are term IDs outside [1, nTerms]. Dictionary IDs are
// dense and insertion-ordered, so SPO deltas are small and most records
// fit in a few bytes, versus a fixed 12 in v1.
// v3 (written automatically for overlay stores; readable everywhere):
//
//	magic   [8]byte  "RDFSNAP3"
//	nTerms  uvarint
//	nBase   uvarint
//	nIns    uvarint
//	nDel    uvarint
//	terms   as in v2
//	base    nBase delta records (v2 scheme), strictly increasing SPO
//	ins     nIns  delta records, strictly increasing SPO
//	del     nDel  delta records, strictly increasing SPO
//
// A v3 snapshot persists an overlay store losslessly — base triples and
// the pending insert/delete sets stay separate, so reading one restores
// the overlay (same base, same delta) rather than a folded store. The
// reader re-validates the Delta invariants (inserts disjoint from the
// base, deletes a subset of it), so a corrupt or hand-built file cannot
// smuggle in an overlay whose counts would lie.
const (
	snapshotMagicV1 = "RDFSNAP1"
	snapshotMagicV2 = "RDFSNAP2"
	snapshotMagicV3 = "RDFSNAP3"

	// maxSnapshotStr caps a single term component read from a snapshot.
	maxSnapshotStr = 1 << 24
	// maxSnapshotPrealloc caps slice/map pre-allocation driven by the
	// untrusted header counts: a corrupt header claiming 4G triples must
	// not allocate 48 GB up front. Reading still fails naturally when the
	// stream runs out; this only bounds what is allocated before that.
	// Kept small enough (64Ki entries) that a rejected corrupt header
	// costs microseconds, not tens of milliseconds of map pre-sizing —
	// legitimate larger snapshots just grow by amortized append.
	maxSnapshotPrealloc = 1 << 16
)

// WriteSnapshot serializes the store to w: plain stores use the compact
// v2 format, overlay stores the v3 format, which keeps the base and the
// pending delta separate so nothing about the overlay is lost.
func (s *Store) WriteSnapshot(w io.Writer) error {
	if s.delta != nil && !s.delta.Empty() {
		return s.WriteSnapshotVersion(w, 3)
	}
	return s.WriteSnapshotVersion(w, 2)
}

// WriteSnapshotVersion serializes the store in the requested format
// version (1, 2, 3 or 4). v1 exists so older readers and size/speed
// comparisons keep working; v1, v2 and v4 fold a pending delta into the
// triple stream (data-lossless, overlay structure dropped), v3 keeps
// base and delta separate. v4 is the page-aligned disk-native layout
// (see snapshot_v4.go) that OpenMapped serves without deserialization.
func (s *Store) WriteSnapshotVersion(w io.Writer, version int) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	switch version {
	case 1:
		if err := s.writeV1(bw); err != nil {
			return err
		}
	case 2:
		if err := s.writeV2(bw); err != nil {
			return err
		}
	case 3:
		if err := s.writeV3(bw); err != nil {
			return err
		}
	case 4:
		if err := s.writeV4(bw); err != nil {
			return err
		}
	default:
		return fmt.Errorf("store: unknown snapshot version %d (want 1, 2, 3 or 4)", version)
	}
	return bw.Flush()
}

func (s *Store) writeV1(bw *bufio.Writer) error {
	if _, err := bw.WriteString(snapshotMagicV1); err != nil {
		return err
	}
	nTerms := s.dict.Len()
	if err := binary.Write(bw, binary.LittleEndian, uint32(nTerms)); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(s.n)); err != nil {
		return err
	}
	writeStr := func(x string) error {
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(x))); err != nil {
			return err
		}
		_, err := bw.WriteString(x)
		return err
	}
	for id := dict.ID(1); int(id) <= nTerms; id++ {
		t := s.dict.Decode(id)
		if err := bw.WriteByte(byte(t.Kind)); err != nil {
			return err
		}
		if err := writeStr(t.Value); err != nil {
			return err
		}
		if err := writeStr(t.Lang); err != nil {
			return err
		}
		if err := writeStr(t.Datatype); err != nil {
			return err
		}
	}
	var werr error
	s.forEachSPO(func(tr IDTriple) {
		if werr != nil {
			return
		}
		var buf [12]byte
		binary.LittleEndian.PutUint32(buf[0:4], uint32(tr.S))
		binary.LittleEndian.PutUint32(buf[4:8], uint32(tr.P))
		binary.LittleEndian.PutUint32(buf[8:12], uint32(tr.O))
		_, werr = bw.Write(buf[:])
	})
	return werr
}

// forEachSPO streams the store's triples in SPO order — the base index
// directly for a plain store, the merged overlay stream otherwise — so
// the v1/v2 writers fold a pending delta in instead of dropping it.
func (s *Store) forEachSPO(fn func(IDTriple)) {
	if s.delta == nil {
		for _, tr := range s.idx[orderSPO] {
			fn(tr)
		}
		return
	}
	mergeRuns(s.idx[orderSPO], s.delta.del[orderSPO], s.delta.ins[orderSPO], orderSPO, fn)
}

func (s *Store) writeV2(bw *bufio.Writer) error {
	if _, err := bw.WriteString(snapshotMagicV2); err != nil {
		return err
	}
	var vbuf [binary.MaxVarintLen64]byte
	writeUvarint := func(x uint64) error {
		n := binary.PutUvarint(vbuf[:], x)
		_, err := bw.Write(vbuf[:n])
		return err
	}
	nTerms := s.dict.Len()
	if err := writeUvarint(uint64(nTerms)); err != nil {
		return err
	}
	if err := writeUvarint(uint64(s.n)); err != nil {
		return err
	}
	if err := s.writeTerms(bw, writeUvarint, nTerms); err != nil {
		return err
	}
	enc := tripleEncoder{write: writeUvarint}
	var werr error
	s.forEachSPO(func(tr IDTriple) {
		if werr != nil {
			return
		}
		werr = enc.encode(tr)
	})
	return werr
}

// writeV3 serializes an overlay store (or a plain one, with empty delta
// sections): the shared dictionary, then the base, insert and delete
// triple streams, each delta-encoded in strictly increasing SPO order.
func (s *Store) writeV3(bw *bufio.Writer) error {
	if _, err := bw.WriteString(snapshotMagicV3); err != nil {
		return err
	}
	var vbuf [binary.MaxVarintLen64]byte
	writeUvarint := func(x uint64) error {
		n := binary.PutUvarint(vbuf[:], x)
		_, err := bw.Write(vbuf[:n])
		return err
	}
	var ins, del []IDTriple
	base := s.idx[orderSPO]
	if s.delta != nil {
		ins = s.delta.ins[orderSPO]
		del = s.delta.del[orderSPO]
	}
	nTerms := s.dict.Len()
	for _, n := range []uint64{uint64(nTerms), uint64(len(base)), uint64(len(ins)), uint64(len(del))} {
		if err := writeUvarint(n); err != nil {
			return err
		}
	}
	if err := s.writeTerms(bw, writeUvarint, nTerms); err != nil {
		return err
	}
	for _, stream := range [][]IDTriple{base, ins, del} {
		enc := tripleEncoder{write: writeUvarint}
		for _, tr := range stream {
			if err := enc.encode(tr); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeTerms writes the shared dictionary section in the v2/v3 encoding:
// one kind byte plus three uvarint-length-prefixed strings per term.
func (s *Store) writeTerms(bw *bufio.Writer, writeUvarint func(uint64) error, nTerms int) error {
	writeStr := func(x string) error {
		if err := writeUvarint(uint64(len(x))); err != nil {
			return err
		}
		_, err := bw.WriteString(x)
		return err
	}
	for id := dict.ID(1); int(id) <= nTerms; id++ {
		t := s.dict.Decode(id)
		if err := bw.WriteByte(byte(t.Kind)); err != nil {
			return err
		}
		if err := writeStr(t.Value); err != nil {
			return err
		}
		if err := writeStr(t.Lang); err != nil {
			return err
		}
		if err := writeStr(t.Datatype); err != nil {
			return err
		}
	}
	return nil
}

// tripleEncoder emits the v2/v3 delta-encoded triple records: each triple
// against its predecessor, starting from the zero triple.
type tripleEncoder struct {
	write func(uint64) error
	prev  IDTriple
}

func (e *tripleEncoder) encode(tr IDTriple) error {
	var fields [3]uint64
	switch {
	case tr.S != e.prev.S:
		fields = [3]uint64{uint64(tr.S - e.prev.S), uint64(tr.P), uint64(tr.O)}
	case tr.P != e.prev.P:
		fields = [3]uint64{0, uint64(tr.P - e.prev.P), uint64(tr.O)}
	default:
		fields = [3]uint64{0, 0, uint64(tr.O - e.prev.O)}
	}
	e.prev = tr
	for _, f := range fields {
		if err := e.write(f); err != nil {
			return err
		}
	}
	return nil
}

// ReadSnapshot deserializes a store previously written by WriteSnapshot,
// auto-detecting the format version by magic. Indexes and statistics are
// rebuilt through the same (parallel) construction path as Builder.Build,
// so the result is identical to the original store.
func ReadSnapshot(r io.Reader) (*Store, error) {
	return ReadSnapshotOpts(r, BuildOptions{})
}

// ReadSnapshotOpts is ReadSnapshot with explicit construction options.
// A v3 snapshot restores the overlay it was written from: the base store
// is rebuilt through the standard construction path and the insert/delete
// sets are re-attached as a validated Delta.
func ReadSnapshotOpts(r io.Reader, opts BuildOptions) (*Store, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	magic := make([]byte, len(snapshotMagicV1))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("store: reading snapshot magic: %w", err)
	}
	var d *dict.Dict
	var triples []IDTriple
	var err error
	switch string(magic) {
	case snapshotMagicV1:
		d, triples, err = readV1(br)
	case snapshotMagicV2:
		d, triples, err = readV2(br)
	case snapshotMagicV3:
		return readV3(br, opts)
	case snapshotMagicV4:
		return readV4Heap(br, magic, opts)
	default:
		return nil, fmt.Errorf("store: bad snapshot magic %q", magic)
	}
	if err != nil {
		return nil, err
	}
	return buildIndexes(d, triples, opts), nil
}

// readTerms reads the shared dictionary section: nTerms records of
// kind byte + three strings, with readStr supplying the version-specific
// string decoding.
func readTerms(br *bufio.Reader, nTerms uint64, readStr func() (string, error)) (*dict.Dict, error) {
	d := dict.NewWithCapacity(int(min(nTerms, maxSnapshotPrealloc)))
	for i := uint64(0); i < nTerms; i++ {
		kind, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("store: reading snapshot term %d: %w", i+1, err)
		}
		if kind > byte(rdf.Blank) {
			return nil, fmt.Errorf("store: snapshot term %d has invalid kind %d", i+1, kind)
		}
		value, err := readStr()
		if err != nil {
			return nil, err
		}
		lang, err := readStr()
		if err != nil {
			return nil, err
		}
		datatype, err := readStr()
		if err != nil {
			return nil, err
		}
		t := rdf.Term{Kind: rdf.Kind(kind), Value: value, Lang: lang, Datatype: datatype}
		got := d.Encode(t)
		if uint64(got) != i+1 {
			return nil, fmt.Errorf("store: snapshot term %d duplicates term %d", i+1, got)
		}
	}
	return d, nil
}

func readV1(br *bufio.Reader) (*dict.Dict, []IDTriple, error) {
	var nTerms, nTriples uint32
	if err := binary.Read(br, binary.LittleEndian, &nTerms); err != nil {
		return nil, nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, &nTriples); err != nil {
		return nil, nil, err
	}
	readStr := func() (string, error) {
		var n uint32
		if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
			return "", err
		}
		return readStrBody(br, uint64(n))
	}
	d, err := readTerms(br, uint64(nTerms), readStr)
	if err != nil {
		return nil, nil, err
	}
	triples := make([]IDTriple, 0, int(min(uint64(nTriples), maxSnapshotPrealloc)))
	buf := make([]byte, 12)
	for i := uint32(0); i < nTriples; i++ {
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, nil, fmt.Errorf("store: reading triple %d: %w", i, err)
		}
		tr := IDTriple{
			S: dict.ID(binary.LittleEndian.Uint32(buf[0:4])),
			P: dict.ID(binary.LittleEndian.Uint32(buf[4:8])),
			O: dict.ID(binary.LittleEndian.Uint32(buf[8:12])),
		}
		for _, id := range []dict.ID{tr.S, tr.P, tr.O} {
			if id == dict.None || uint64(id) > uint64(nTerms) {
				return nil, nil, fmt.Errorf("store: triple %d references invalid term id %d", i, id)
			}
		}
		triples = append(triples, tr)
	}
	// v1 places no ordering constraint on the stream, so duplicates must
	// be detected explicitly: a store built from them would disagree with
	// a Builder-built store on Len, Count and predicate statistics.
	sortByOrder(triples, orderSPO)
	for i := 1; i < len(triples); i++ {
		if triples[i] == triples[i-1] {
			return nil, nil, fmt.Errorf("store: snapshot contains duplicate triple %v", triples[i])
		}
	}
	return d, triples, nil
}

func readV2(br *bufio.Reader) (*dict.Dict, []IDTriple, error) {
	readUvarint := func() (uint64, error) { return binary.ReadUvarint(br) }
	nTerms, err := readUvarint()
	if err != nil {
		return nil, nil, fmt.Errorf("store: reading snapshot term count: %w", err)
	}
	nTriples, err := readUvarint()
	if err != nil {
		return nil, nil, fmt.Errorf("store: reading snapshot triple count: %w", err)
	}
	if nTerms > math.MaxUint32 || nTriples > math.MaxUint32 {
		return nil, nil, fmt.Errorf("store: snapshot header counts %d/%d exceed 32-bit id space", nTerms, nTriples)
	}
	readStr := func() (string, error) {
		n, err := readUvarint()
		if err != nil {
			return "", err
		}
		return readStrBody(br, n)
	}
	d, err := readTerms(br, nTerms, readStr)
	if err != nil {
		return nil, nil, err
	}
	triples, err := readTripleStream(readUvarint, nTriples, nTerms, "triple")
	if err != nil {
		return nil, nil, err
	}
	return d, triples, nil
}

// readV3 reads an overlay snapshot: dictionary, base stream, insert
// stream and delete stream, rebuilding the base store and re-attaching
// the delta (with its invariants re-validated).
func readV3(br *bufio.Reader, opts BuildOptions) (*Store, error) {
	readUvarint := func() (uint64, error) { return binary.ReadUvarint(br) }
	var counts [4]uint64
	names := [4]string{"term", "base triple", "insert", "delete"}
	for i := range counts {
		n, err := readUvarint()
		if err != nil {
			return nil, fmt.Errorf("store: reading snapshot %s count: %w", names[i], err)
		}
		if n > math.MaxUint32 {
			return nil, fmt.Errorf("store: snapshot %s count %d exceeds 32-bit id space", names[i], n)
		}
		counts[i] = n
	}
	nTerms := counts[0]
	readStr := func() (string, error) {
		n, err := readUvarint()
		if err != nil {
			return "", err
		}
		return readStrBody(br, n)
	}
	d, err := readTerms(br, nTerms, readStr)
	if err != nil {
		return nil, err
	}
	base, err := readTripleStream(readUvarint, counts[1], nTerms, "base triple")
	if err != nil {
		return nil, err
	}
	ins, err := readTripleStream(readUvarint, counts[2], nTerms, "insert")
	if err != nil {
		return nil, err
	}
	del, err := readTripleStream(readUvarint, counts[3], nTerms, "delete")
	if err != nil {
		return nil, err
	}
	st := buildIndexes(d, base, opts)
	delta, err := newDeltaFromSets(st, ins, del)
	if err != nil {
		return nil, err
	}
	return delta.Overlay(), nil
}

// readTripleStream decodes one delta-encoded triple stream (the v2/v3
// record format): n records in strictly increasing SPO order, every term
// id within [1, nTerms]. A zero delta (a duplicate or out-of-order
// record) is rejected.
func readTripleStream(readUvarint func() (uint64, error), n, nTerms uint64, what string) ([]IDTriple, error) {
	triples := make([]IDTriple, 0, int(min(n, maxSnapshotPrealloc)))
	var s, p, o uint64
	for i := uint64(0); i < n; i++ {
		read := func(field string) (uint64, error) {
			v, err := readUvarint()
			if err != nil {
				return 0, fmt.Errorf("store: reading %s %d %s: %w", what, i, field, err)
			}
			// No valid id or delta exceeds the 32-bit id space; rejecting
			// larger values here also keeps the running sums below from
			// wrapping uint64.
			if v > math.MaxUint32 {
				return 0, fmt.Errorf("store: %s %d %s %d exceeds 32-bit id space", what, i, field, v)
			}
			return v, nil
		}
		dS, err := read("subject delta")
		if err != nil {
			return nil, err
		}
		if dS != 0 {
			s += dS
			if p, err = read("predicate"); err != nil {
				return nil, err
			}
			if o, err = read("object"); err != nil {
				return nil, err
			}
		} else {
			dP, err := read("predicate delta")
			if err != nil {
				return nil, err
			}
			if dP != 0 {
				p += dP
				if o, err = read("object"); err != nil {
					return nil, err
				}
			} else {
				dO, err := read("object delta")
				if err != nil {
					return nil, err
				}
				if dO == 0 {
					return nil, fmt.Errorf("store: snapshot %s %d duplicates its predecessor", what, i)
				}
				o += dO
			}
		}
		if s == 0 || s > nTerms || p == 0 || p > nTerms || o == 0 || o > nTerms {
			return nil, fmt.Errorf("store: %s %d references term ids (%d %d %d) outside [1, %d]", what, i, s, p, o, nTerms)
		}
		triples = append(triples, IDTriple{S: dict.ID(s), P: dict.ID(p), O: dict.ID(o)})
	}
	return triples, nil
}

func readStrBody(br *bufio.Reader, n uint64) (string, error) {
	if n > maxSnapshotStr {
		return "", fmt.Errorf("store: snapshot string of %d bytes exceeds limit", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(br, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}
