package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/dict"
	"repro/internal/rdf"
)

// Snapshot format: a compact binary serialization of a store (dictionary +
// triples). Generating a paper-scale dataset takes ~10 s; loading its
// snapshot takes a fraction of that, so experiment drivers can reuse
// datasets across processes.
//
// Layout (all integers little-endian):
//
//	magic   [8]byte  "RDFSNAP1"
//	nTerms  uint32
//	nTriple uint32
//	terms   nTerms × { kind uint8, value str, lang str, datatype str }
//	triples nTriple × { s, p, o uint32 }   (dictionary IDs, SPO order)
//
// where str is uint32 length + bytes.
const snapshotMagic = "RDFSNAP1"

// WriteSnapshot serializes the store to w.
func (s *Store) WriteSnapshot(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.WriteString(snapshotMagic); err != nil {
		return err
	}
	nTerms := s.dict.Len()
	if err := binary.Write(bw, binary.LittleEndian, uint32(nTerms)); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(s.n)); err != nil {
		return err
	}
	writeStr := func(x string) error {
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(x))); err != nil {
			return err
		}
		_, err := bw.WriteString(x)
		return err
	}
	for id := dict.ID(1); int(id) <= nTerms; id++ {
		t := s.dict.Decode(id)
		if err := bw.WriteByte(byte(t.Kind)); err != nil {
			return err
		}
		if err := writeStr(t.Value); err != nil {
			return err
		}
		if err := writeStr(t.Lang); err != nil {
			return err
		}
		if err := writeStr(t.Datatype); err != nil {
			return err
		}
	}
	for _, tr := range s.idx[orderSPO] {
		var buf [12]byte
		binary.LittleEndian.PutUint32(buf[0:4], uint32(tr.S))
		binary.LittleEndian.PutUint32(buf[4:8], uint32(tr.P))
		binary.LittleEndian.PutUint32(buf[8:12], uint32(tr.O))
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadSnapshot deserializes a store previously written by WriteSnapshot.
// Indexes and statistics are rebuilt, so the result is identical to the
// original store.
func ReadSnapshot(r io.Reader) (*Store, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	magic := make([]byte, len(snapshotMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("store: reading snapshot magic: %w", err)
	}
	if string(magic) != snapshotMagic {
		return nil, fmt.Errorf("store: bad snapshot magic %q", magic)
	}
	var nTerms, nTriples uint32
	if err := binary.Read(br, binary.LittleEndian, &nTerms); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, &nTriples); err != nil {
		return nil, err
	}
	const maxStr = 1 << 24
	readStr := func() (string, error) {
		var n uint32
		if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
			return "", err
		}
		if n > maxStr {
			return "", fmt.Errorf("store: snapshot string of %d bytes exceeds limit", n)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(br, buf); err != nil {
			return "", err
		}
		return string(buf), nil
	}
	d := dict.NewWithCapacity(int(nTerms))
	for i := uint32(0); i < nTerms; i++ {
		kind, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		if kind > byte(rdf.Blank) {
			return nil, fmt.Errorf("store: snapshot term %d has invalid kind %d", i+1, kind)
		}
		value, err := readStr()
		if err != nil {
			return nil, err
		}
		lang, err := readStr()
		if err != nil {
			return nil, err
		}
		datatype, err := readStr()
		if err != nil {
			return nil, err
		}
		t := rdf.Term{Kind: rdf.Kind(kind), Value: value, Lang: lang, Datatype: datatype}
		got := d.Encode(t)
		if got != dict.ID(i+1) {
			return nil, fmt.Errorf("store: snapshot term %d duplicates term %d", i+1, got)
		}
	}
	triples := make([]IDTriple, nTriples)
	buf := make([]byte, 12)
	for i := range triples {
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("store: reading triple %d: %w", i, err)
		}
		tr := IDTriple{
			S: dict.ID(binary.LittleEndian.Uint32(buf[0:4])),
			P: dict.ID(binary.LittleEndian.Uint32(buf[4:8])),
			O: dict.ID(binary.LittleEndian.Uint32(buf[8:12])),
		}
		for _, id := range []dict.ID{tr.S, tr.P, tr.O} {
			if id == dict.None || int(id) > int(nTerms) {
				return nil, fmt.Errorf("store: triple %d references invalid term id %d", i, id)
			}
		}
		triples[i] = tr
	}
	s := &Store{dict: d, n: int(nTriples)}
	s.idx[orderSPO] = triples
	for o := orderSPO + 1; o < numOrders; o++ {
		cp := make([]IDTriple, len(triples))
		copy(cp, triples)
		s.idx[o] = cp
	}
	for o := order(0); o < numOrders; o++ {
		sortByOrder(s.idx[o], o)
	}
	s.computeStats()
	return s, nil
}
