package store

import (
	"bytes"
	"math/rand"
	"testing"
)

// fuzzSnapshotSeeds builds valid snapshot byte streams in every format
// version (plain v1/v2/v3 and a real overlay v3), plus corrupted
// variants, as the fuzz corpus baseline.
func fuzzSnapshotSeeds(f *testing.F) [][]byte {
	f.Helper()
	rng := rand.New(rand.NewSource(11))
	b := NewBuilder()
	for _, tr := range randomTriples(rng, 30) {
		if err := b.Add(tr); err != nil {
			f.Fatal(err)
		}
	}
	st := b.Build()
	var seeds [][]byte
	for _, v := range []int{1, 2, 3} {
		var buf bytes.Buffer
		if err := st.WriteSnapshotVersion(&buf, v); err != nil {
			f.Fatal(err)
		}
		seeds = append(seeds, buf.Bytes())
	}
	d := st.NewDelta()
	var err error
	d, err = d.Apply(randomTriples(rng, 10), randomTriples(rng, 40)[:3])
	if err != nil {
		f.Fatal(err)
	}
	var ov bytes.Buffer
	if err := d.Overlay().WriteSnapshot(&ov); err != nil {
		f.Fatal(err)
	}
	seeds = append(seeds, ov.Bytes())
	// Corruptions: truncation, flipped magic, flipped interior bytes.
	full := seeds[len(seeds)-1]
	seeds = append(seeds, full[:len(full)/2])
	bad := append([]byte(nil), full...)
	bad[7] = '9'
	seeds = append(seeds, bad)
	bad2 := append([]byte(nil), full...)
	bad2[len(bad2)/2] ^= 0xff
	seeds = append(seeds, bad2, []byte("RDFSNAP"), nil)
	return seeds
}

// FuzzReadSnapshot checks the snapshot readers (all three format
// versions) on arbitrary bytes: they must never panic and never build an
// inconsistent store — every store they do accept must survive a
// write/read round trip with its triple stream, length and pending delta
// intact.
func FuzzReadSnapshot(f *testing.F) {
	for _, s := range fuzzSnapshotSeeds(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := ReadSnapshot(bytes.NewReader(data))
		if err != nil {
			return // malformed input is fine; panics are not
		}
		if st.Len() > 1<<20 {
			return // don't pay to re-serialize absurd accepted inputs
		}
		matches, _ := st.Match(Pattern{})
		if len(matches) != st.Len() {
			t.Fatalf("accepted store is inconsistent: Len %d but %d matches", st.Len(), len(matches))
		}
		var buf bytes.Buffer
		if err := st.WriteSnapshot(&buf); err != nil {
			t.Fatalf("accepted store failed to serialize: %v", err)
		}
		again, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("round trip failed to re-parse: %v", err)
		}
		if again.Len() != st.Len() {
			t.Fatalf("round trip changed Len: %d vs %d", again.Len(), st.Len())
		}
		am, _ := again.Match(Pattern{})
		if !equalTriples(am, matches) {
			t.Fatal("round trip changed the triple stream")
		}
		d1, d2 := st.Delta(), again.Delta()
		switch {
		case d1 == nil && d2 == nil:
		case d1 == nil || d2 == nil:
			t.Fatalf("round trip changed overlay-ness: %v vs %v", d1, d2)
		case d1.InsertCount() != d2.InsertCount() || d1.DeleteCount() != d2.DeleteCount():
			t.Fatalf("round trip changed delta: %d/%d vs %d/%d",
				d1.InsertCount(), d1.DeleteCount(), d2.InsertCount(), d2.DeleteCount())
		}
	})
}
