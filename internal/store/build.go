package store

import (
	"runtime"
	"sync"

	"repro/internal/dict"
	"repro/internal/rdf"
)

// Store construction. Both Builder.Build and ReadSnapshot funnel into
// buildIndexes, the single shared path that turns a deduplicated triple
// set into a fully indexed Store: the base SPO index is sorted once, the
// other five permutations are copied up front and sorted concurrently
// (bounded by BuildOptions.Parallelism), and each statistics pass starts
// as soon as the one index it reads (PSO or POS) is ready instead of
// waiting for the whole build. The parallel and serial paths produce
// byte-identical stores: every index is a permutation of distinct triples,
// so the unstable sort has a unique fixpoint regardless of scheduling.

// BuildOptions configures store construction.
type BuildOptions struct {
	// Parallelism bounds the number of concurrent index-sort and
	// statistics workers. 0 means GOMAXPROCS; 1 forces the serial path.
	Parallelism int
}

func (o BuildOptions) workers() int {
	if o.Parallelism <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Parallelism
}

// buildIndexes constructs a Store over d from a set of distinct triples,
// taking ownership of the slice (it becomes the SPO index after sorting).
func buildIndexes(d *dict.Dict, triples []IDTriple, opts BuildOptions) *Store {
	s := &Store{dict: d, n: len(triples)}
	s.idx[orderSPO] = triples
	if opts.workers() == 1 {
		if !isSortedByOrder(triples, orderSPO) {
			sortByOrder(triples, orderSPO)
		}
		for o := orderSPO + 1; o < numOrders; o++ {
			cp := make([]IDTriple, len(triples))
			copy(cp, triples)
			sortByOrder(cp, o)
			s.idx[o] = cp
		}
		s.computeStats()
		s.src = &heapSource{idx: s.idx}
		return s
	}
	s.buildParallel(opts.workers())
	s.src = &heapSource{idx: s.idx}
	return s
}

// buildParallel sorts all six permutations and computes statistics with at
// most `workers` concurrent tasks. Statistics depend only on the PSO and
// POS indexes, so those two are scheduled first and each stats pass blocks
// on exactly the index it reads.
func (s *Store) buildParallel(workers int) {
	triples := s.idx[orderSPO]
	// Copy the five derived permutations before any sorting starts so
	// every copy sees the same (unsorted) base; the sorts then proceed
	// independently.
	for o := orderSPO + 1; o < numOrders; o++ {
		cp := make([]IDTriple, len(triples))
		copy(cp, triples)
		s.idx[o] = cp
	}
	sem := make(chan struct{}, workers)
	var ready [numOrders]chan struct{}
	for o := range ready {
		ready[o] = make(chan struct{})
	}
	var wg sync.WaitGroup
	sortOne := func(o order) {
		defer wg.Done()
		sem <- struct{}{}
		if o != orderSPO || !isSortedByOrder(s.idx[o], o) {
			sortByOrder(s.idx[o], o)
		}
		<-sem
		close(ready[o])
	}
	// Stats inputs first, then the base, then the remaining permutations.
	for _, o := range [numOrders]order{orderPSO, orderPOS, orderSPO, orderSOP, orderOSP, orderOPS} {
		wg.Add(1)
		go sortOne(o)
	}
	// The rdf:type lookup only reads the dictionary, which is safe to
	// share with the sort workers.
	typeID, haveType := s.dict.Lookup(rdf.NewIRI(rdf.RDFType))
	var (
		pstats   map[dict.ID]PredStats
		distO    map[dict.ID]int
		typeIdx  map[dict.ID][]dict.ID
		statsWG  sync.WaitGroup
		runAfter = func(dep order, f func()) {
			defer statsWG.Done()
			<-ready[dep]
			sem <- struct{}{}
			f()
			<-sem
		}
	)
	statsWG.Add(3)
	go runAfter(orderPSO, func() { pstats = statsFromPSO(s.idx[orderPSO]) })
	go runAfter(orderPOS, func() { distO = distinctObjectsFromPOS(s.idx[orderPOS]) })
	go runAfter(orderPOS, func() {
		typeIdx = make(map[dict.ID][]dict.ID)
		if haveType {
			typeIdx = typeIndexFromPOS(s.idx[orderPOS], typeID)
		}
	})
	wg.Wait()
	statsWG.Wait()
	mergeDistinctObjects(pstats, distO)
	s.pstats = pstats
	s.typeIdx = typeIdx
	if haveType {
		s.typeID = typeID
	}
}

func isSortedByOrder(ts []IDTriple, o order) bool {
	for i := 1; i < len(ts); i++ {
		if lessByOrder(ts[i], ts[i-1], o) {
			return false
		}
	}
	return true
}

// statsFromPSO computes per-predicate triple counts and distinct subject
// counts; predicate runs are contiguous in PSO order.
func statsFromPSO(pso []IDTriple) map[dict.ID]PredStats {
	out := make(map[dict.ID]PredStats)
	for i := 0; i < len(pso); {
		p := pso[i].P
		st := PredStats{}
		var lastS dict.ID
		j := i
		for ; j < len(pso) && pso[j].P == p; j++ {
			st.Count++
			if j == i || pso[j].S != lastS {
				st.DistinctS++
				lastS = pso[j].S
			}
		}
		out[p] = st
		i = j
	}
	return out
}

// distinctObjectsFromPOS computes distinct object counts per predicate;
// within a predicate run of the POS index equal objects are adjacent.
func distinctObjectsFromPOS(pos []IDTriple) map[dict.ID]int {
	out := make(map[dict.ID]int)
	for i := 0; i < len(pos); {
		p := pos[i].P
		distinct := 0
		var lastO dict.ID
		j := i
		for ; j < len(pos) && pos[j].P == p; j++ {
			if j == i || pos[j].O != lastO {
				distinct++
				lastO = pos[j].O
			}
		}
		out[p] = distinct
		i = j
	}
	return out
}

func mergeDistinctObjects(pstats map[dict.ID]PredStats, distO map[dict.ID]int) {
	for p, n := range distO {
		st := pstats[p]
		st.DistinctO = n
		pstats[p] = st
	}
}

// typeIndexFromPOS builds the class -> sorted member subjects index from
// the POS range of rdf:type triples. POS order sorts that range by class
// and then by subject, so every class is a single contiguous run with its
// subjects already sorted and distinct.
func typeIndexFromPOS(pos []IDTriple, typeID dict.ID) map[dict.ID][]dict.ID {
	out := make(map[dict.ID][]dict.ID)
	lo, hi := searchRange(pos, orderPOS, Pattern{P: typeID})
	members := pos[lo:hi]
	for i := 0; i < len(members); {
		c := members[i].O
		j := i
		var subjects []dict.ID
		for ; j < len(members) && members[j].O == c; j++ {
			if len(subjects) == 0 || subjects[len(subjects)-1] != members[j].S {
				subjects = append(subjects, members[j].S)
			}
		}
		out[c] = subjects
		i = j
	}
	return out
}
