package store

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/dict"
	"repro/internal/rdf"
)

func iri(s string) rdf.Term { return rdf.NewIRI("http://x/" + s) }

func trp(s, p, o string) rdf.Triple {
	return rdf.Triple{S: iri(s), P: iri(p), O: iri(o)}
}

// randomTriples produces a reproducible triple set with subject/predicate
// /object skew, rdf:type triples included.
func randomTriples(rng *rand.Rand, n int) []rdf.Triple {
	var out []rdf.Triple
	for i := 0; i < n; i++ {
		t := trp(
			fmt.Sprintf("s%d", rng.Intn(n/2+1)),
			fmt.Sprintf("p%d", rng.Intn(6)),
			fmt.Sprintf("o%d", rng.Intn(n/3+1)),
		)
		if rng.Intn(8) == 0 {
			t.P = rdf.NewIRI(rdf.RDFType)
			t.O = iri(fmt.Sprintf("Class%d", rng.Intn(3)))
		}
		out = append(out, t)
	}
	return out
}

func buildFrom(t *testing.T, triples []rdf.Triple) *Store {
	t.Helper()
	b := NewBuilder()
	for _, tr := range triples {
		if err := b.Add(tr); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

// referenceStore rebuilds the merged triple set from scratch onto a fresh
// dictionary that is pre-seeded with the overlay dictionary's terms in ID
// order, so the rebuilt store assigns identical IDs — the strongest
// equivalence an overlay can be held to.
func referenceStore(t *testing.T, ov *Store) *Store {
	t.Helper()
	b := NewBuilder()
	d := ov.Dict()
	for id := dict.ID(1); int(id) <= d.Len(); id++ {
		if got := b.Dict().Encode(d.Decode(id)); got != id {
			t.Fatalf("reference dict drift: %d != %d", got, id)
		}
	}
	matches, _ := ov.Match(Pattern{})
	for _, tr := range matches {
		b.AddID(tr)
	}
	return b.Build()
}

// applyRandomDelta mutates the store through a chain of random
// insert/delete batches, returning the final delta.
func applyRandomDelta(t *testing.T, rng *rand.Rand, st *Store, batches int) *Delta {
	t.Helper()
	d := st.NewDelta()
	for b := 0; b < batches; b++ {
		var ins, del []rdf.Triple
		cur, _ := d.Overlay().Match(Pattern{})
		for i := 0; i < 5+rng.Intn(10); i++ {
			ins = append(ins, randomTriples(rng, 30)[0])
		}
		for i := 0; i < rng.Intn(8) && len(cur) > 0; i++ {
			v := cur[rng.Intn(len(cur))]
			dd := st.Dict()
			del = append(del, rdf.Triple{S: dd.Decode(v.S), P: dd.Decode(v.P), O: dd.Decode(v.O)})
		}
		var err error
		d, err = d.Apply(ins, del)
		if err != nil {
			t.Fatal(err)
		}
	}
	return d
}

func TestDeltaApplySemantics(t *testing.T) {
	st := buildFrom(t, []rdf.Triple{trp("a", "p", "b"), trp("a", "p", "c")})
	d := st.NewDelta()

	// Inserting an existing triple is a no-op.
	d1, err := d.Apply([]rdf.Triple{trp("a", "p", "b")}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !d1.Empty() {
		t.Fatalf("insert of existing triple should be a no-op, got size %d", d1.Size())
	}
	// Deleting an absent triple is a no-op (and must not grow the dict).
	dictLen := st.Dict().Len()
	d2, err := d.Apply(nil, []rdf.Triple{trp("nope", "nope", "nope")})
	if err != nil {
		t.Fatal(err)
	}
	if !d2.Empty() || st.Dict().Len() != dictLen {
		t.Fatal("delete of absent triple should be a no-op without dict growth")
	}
	// Delete then re-insert resurrects.
	d3, err := d.Apply(nil, []rdf.Triple{trp("a", "p", "b")})
	if err != nil {
		t.Fatal(err)
	}
	if d3.DeleteCount() != 1 {
		t.Fatalf("DeleteCount = %d, want 1", d3.DeleteCount())
	}
	d4, err := d3.Apply([]rdf.Triple{trp("a", "p", "b")}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !d4.Empty() {
		t.Fatal("re-insert should cancel the pending delete")
	}
	// Insert then delete cancels.
	d5, err := d.Apply([]rdf.Triple{trp("x", "p", "y")}, nil)
	if err != nil {
		t.Fatal(err)
	}
	d6, err := d5.Apply(nil, []rdf.Triple{trp("x", "p", "y")})
	if err != nil {
		t.Fatal(err)
	}
	if !d6.Empty() {
		t.Fatal("delete should cancel the pending insert")
	}
	// The original delta was never mutated.
	if !d.Empty() || d3.DeleteCount() != 1 || d5.InsertCount() != 1 {
		t.Fatal("Apply mutated its receiver")
	}
	// Invalid triples are rejected.
	if _, err := d.Apply([]rdf.Triple{{}}, nil); err == nil {
		t.Fatal("invalid triple should be rejected")
	}
	// A no-op application returns the receiver itself, so callers can
	// detect "nothing changed" by pointer equality and skip republishing.
	if d1 != d || d2 != d {
		t.Fatal("no-op Apply should return the receiver")
	}
}

func TestDeltaApplyOps(t *testing.T) {
	st := buildFrom(t, []rdf.Triple{trp("a", "p", "b")})
	// Ops apply in order within one call: insert x, delete x, insert y.
	d, err := st.NewDelta().ApplyOps([]DeltaOp{
		{Insert: true, Triples: []rdf.Triple{trp("x", "p", "y")}},
		{Triples: []rdf.Triple{trp("x", "p", "y"), trp("a", "p", "b")}},
		{Insert: true, Triples: []rdf.Triple{trp("q", "p", "r")}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if d.InsertCount() != 1 || d.DeleteCount() != 1 {
		t.Fatalf("counts = %d/%d, want 1/1", d.InsertCount(), d.DeleteCount())
	}
	ov := d.Overlay()
	if ov.Len() != 1 || ov.Count(Pattern{}) != 1 {
		t.Fatalf("overlay len = %d, want 1", ov.Len())
	}
	// A second application of semantically no-op ops returns d itself.
	d2, err := d.ApplyOps([]DeltaOp{
		{Insert: true, Triples: []rdf.Triple{trp("q", "p", "r")}}, // already inserted
		{Triples: []rdf.Triple{trp("nope", "p", "nope")}},         // absent
	})
	if err != nil {
		t.Fatal(err)
	}
	if d2 != d {
		t.Fatal("no-op ApplyOps should return the receiver")
	}
	// Duplicate triples inside one op are a single change.
	d3, err := st.NewDelta().ApplyOps([]DeltaOp{
		{Insert: true, Triples: []rdf.Triple{trp("z", "p", "z"), trp("z", "p", "z")}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if d3.InsertCount() != 1 {
		t.Fatalf("InsertCount = %d, want 1", d3.InsertCount())
	}
}

// TestOverlayMatchesRebuild is the core overlay-correctness check: every
// read API of an overlaid store must agree exactly with a store rebuilt
// from scratch over the merged triple set (same dictionary IDs).
func TestOverlayMatchesRebuild(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		st := buildFrom(t, randomTriples(rng, 120))
		d := applyRandomDelta(t, rng, st, 3)
		ov := d.Overlay()
		ref := referenceStore(t, ov)

		if ov.Len() != ref.Len() {
			t.Fatalf("seed %d: Len %d != %d", seed, ov.Len(), ref.Len())
		}
		if !reflect.DeepEqual(ov.Predicates(), ref.Predicates()) {
			t.Fatalf("seed %d: Predicates diverge", seed)
		}
		for _, p := range ref.Predicates() {
			if ov.PredicateStats(p) != ref.PredicateStats(p) {
				t.Fatalf("seed %d: PredicateStats(%d) = %+v != %+v",
					seed, p, ov.PredicateStats(p), ref.PredicateStats(p))
			}
		}
		// Every pattern shape, over a sample of constants drawn from the
		// reference store.
		all, _ := ref.Match(Pattern{})
		pats := []Pattern{{}}
		for i := 0; i < 40 && i < len(all); i++ {
			tr := all[rng.Intn(len(all))]
			pats = append(pats,
				Pattern{S: tr.S}, Pattern{P: tr.P}, Pattern{O: tr.O},
				Pattern{S: tr.S, P: tr.P}, Pattern{S: tr.S, O: tr.O},
				Pattern{P: tr.P, O: tr.O}, Pattern{S: tr.S, P: tr.P, O: tr.O})
		}
		for _, pat := range pats {
			if ov.Count(pat) != ref.Count(pat) {
				t.Fatalf("seed %d: Count(%v) = %d != %d", seed, pat, ov.Count(pat), ref.Count(pat))
			}
			om, oo := ov.Match(pat)
			rm, ro := ref.Match(pat)
			if oo != ro {
				t.Fatalf("seed %d: Match(%v) order %v != %v", seed, pat, oo, ro)
			}
			if !equalTriples(om, rm) {
				t.Fatalf("seed %d: Match(%v) diverges:\noverlay %v\nrebuilt %v", seed, pat, om, rm)
			}
			for pos := 0; pos < 3; pos++ {
				if !reflect.DeepEqual(ov.DistinctValues(pos, pat), ref.DistinctValues(pos, pat)) {
					t.Fatalf("seed %d: DistinctValues(%d, %v) diverges", seed, pos, pat)
				}
			}
		}
		// Type index.
		if typeID, ok := ref.Dict().Lookup(rdf.NewIRI(rdf.RDFType)); ok {
			classes := ref.DistinctValues(2, Pattern{P: typeID})
			for _, c := range classes {
				if !reflect.DeepEqual(ov.SubjectsOfClass(c), ref.SubjectsOfClass(c)) {
					t.Fatalf("seed %d: SubjectsOfClass(%d) diverges", seed, c)
				}
			}
		}
		// Commit and Rebuild fold to the same store.
		com := d.Commit(BuildOptions{})
		if com.Delta() != nil || com.Len() != ref.Len() {
			t.Fatalf("seed %d: Commit produced delta=%v len=%d", seed, com.Delta(), com.Len())
		}
		cm, _ := com.Match(Pattern{})
		if !equalTriples(cm, all) {
			t.Fatalf("seed %d: Commit triple set diverges", seed)
		}
		rb := ov.Rebuild(BuildOptions{Parallelism: 2})
		rm2, _ := rb.Match(Pattern{})
		if !equalTriples(rm2, all) {
			t.Fatalf("seed %d: Rebuild over overlay diverges", seed)
		}
	}
}

func equalTriples(a, b []IDTriple) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestOverlayScanEquivalence checks the merge-on-read cursor against
// Match for every pattern shape, at several batch sizes, and checks that
// partition streams concatenate to the serial scan.
func TestOverlayScanEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	st := buildFrom(t, randomTriples(rng, 150))
	d := applyRandomDelta(t, rng, st, 4)
	ov := d.Overlay()
	all, _ := ov.Match(Pattern{})
	pats := []Pattern{{}}
	for i := 0; i < 25; i++ {
		tr := all[rng.Intn(len(all))]
		pats = append(pats, Pattern{S: tr.S}, Pattern{P: tr.P}, Pattern{O: tr.O},
			Pattern{S: tr.S, P: tr.P}, Pattern{P: tr.P, O: tr.O}, Pattern{S: tr.S, O: tr.O})
	}
	for _, pat := range pats {
		want, _ := ov.Match(pat)
		for _, batch := range []int{0, 1, 3, 7, 1 << 20} {
			sc := ov.Scan(pat)
			if sc.Remaining() != len(want) {
				t.Fatalf("Scan(%v).Remaining = %d, want %d", pat, sc.Remaining(), len(want))
			}
			var got []IDTriple
			for {
				b := sc.Next(batch)
				if b == nil {
					break
				}
				got = append(got, b...) // copy out: the merge buffer is reused
			}
			if !equalTriples(got, want) {
				t.Fatalf("Scan(%v, batch %d) diverges from Match", pat, batch)
			}
		}
		for _, n := range []int{1, 2, 3, 8, 64, 1 << 16} {
			parts := ov.ScanPartitions(pat, n)
			var got []IDTriple
			for _, p := range parts {
				for {
					b := p.Next(5)
					if b == nil {
						break
					}
					got = append(got, b...)
				}
			}
			if len(want) == 0 {
				if parts != nil {
					t.Fatalf("ScanPartitions(%v, %d) should be nil on empty range", pat, n)
				}
				continue
			}
			if !equalTriples(got, want) {
				t.Fatalf("ScanPartitions(%v, %d) concatenation diverges (%d vs %d triples)",
					pat, n, len(got), len(want))
			}
		}
	}
}

// TestSnapshotV3RoundTrip writes an overlay store and reads it back,
// checking that base, delta and merged views all survive.
func TestSnapshotV3RoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	st := buildFrom(t, randomTriples(rng, 80))
	d := applyRandomDelta(t, rng, st, 2)
	if d.Empty() {
		t.Fatal("test wants a non-empty delta")
	}
	ov := d.Overlay()
	var buf bytes.Buffer
	if err := ov.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(buf.Bytes(), []byte(snapshotMagicV3)) {
		t.Fatalf("overlay snapshot should use v3, got %q", buf.Bytes()[:8])
	}
	got, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	gd := got.Delta()
	if gd == nil {
		t.Fatal("v3 read lost the delta")
	}
	if gd.InsertCount() != d.InsertCount() || gd.DeleteCount() != d.DeleteCount() {
		t.Fatalf("delta counts diverge: %d/%d vs %d/%d",
			gd.InsertCount(), gd.DeleteCount(), d.InsertCount(), d.DeleteCount())
	}
	if gd.Base().Len() != st.Len() || got.Len() != ov.Len() {
		t.Fatalf("len diverge: base %d vs %d, merged %d vs %d",
			gd.Base().Len(), st.Len(), got.Len(), ov.Len())
	}
	wm, _ := ov.Match(Pattern{})
	gm, _ := got.Match(Pattern{})
	if !equalTriples(wm, gm) {
		t.Fatal("merged triple stream diverges after v3 round trip")
	}
	// The v2 path folds the delta in instead of dropping it.
	var v2 bytes.Buffer
	if err := ov.WriteSnapshotVersion(&v2, 2); err != nil {
		t.Fatal(err)
	}
	flat, err := ReadSnapshot(bytes.NewReader(v2.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	fm, _ := flat.Match(Pattern{})
	if flat.Delta() != nil || !equalTriples(fm, wm) {
		t.Fatal("v2 write of an overlay must fold the delta in")
	}
	// v1 likewise.
	var v1 bytes.Buffer
	if err := ov.WriteSnapshotVersion(&v1, 1); err != nil {
		t.Fatal(err)
	}
	flat1, err := ReadSnapshot(bytes.NewReader(v1.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	fm1, _ := flat1.Match(Pattern{})
	if !equalTriples(fm1, wm) {
		t.Fatal("v1 write of an overlay must fold the delta in")
	}
}

// TestSnapshotV3Invalid checks that hand-built v3 files violating the
// delta invariants are rejected.
func TestSnapshotV3Invalid(t *testing.T) {
	base := buildFrom(t, []rdf.Triple{trp("a", "p", "b"), trp("c", "p", "d")})
	write := func(ins, del []IDTriple) []byte {
		d := &Delta{base: base}
		d.setSorted(ins, del)
		ov := &Store{dict: base.dict, n: base.n, idx: base.idx, pstats: base.pstats, delta: d}
		var buf bytes.Buffer
		if err := ov.WriteSnapshotVersion(&buf, 3); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	baseTriples, _ := base.Match(Pattern{})
	// An insert duplicating a base triple.
	if _, err := ReadSnapshot(bytes.NewReader(write([]IDTriple{baseTriples[0]}, nil))); err == nil {
		t.Fatal("insert duplicating base triple should be rejected")
	}
	// A delete naming no base triple.
	bogus := IDTriple{S: baseTriples[0].S, P: baseTriples[0].P, O: baseTriples[0].S}
	if base.baseContains(bogus) {
		t.Fatal("test setup: bogus triple is real")
	}
	if _, err := ReadSnapshot(bytes.NewReader(write(nil, []IDTriple{bogus}))); err == nil {
		t.Fatal("delete naming no base triple should be rejected")
	}
	// Truncations of a valid v3 file fail cleanly.
	rng := rand.New(rand.NewSource(9))
	st := buildFrom(t, randomTriples(rng, 40))
	d := applyRandomDelta(t, rng, st, 2)
	var buf bytes.Buffer
	if err := d.Overlay().WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 0; cut < len(full); cut += 11 {
		if _, err := ReadSnapshot(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d should fail", cut)
		}
	}
}

func TestOverlayEmptyDelta(t *testing.T) {
	st := buildFrom(t, []rdf.Triple{trp("a", "p", "b")})
	d := st.NewDelta()
	if d.Overlay() != st || d.Commit(BuildOptions{}) != st {
		t.Fatal("empty delta should publish the base store itself")
	}
	// NewDelta over an overlay extends the pending delta.
	d2, err := d.Apply([]rdf.Triple{trp("x", "q", "y")}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ov := d2.Overlay()
	if ov.NewDelta() != d2 {
		t.Fatal("NewDelta over an overlay should return its pending delta")
	}
	if ov.Len() != 2 || ov.Count(Pattern{}) != 2 {
		t.Fatalf("overlay Len/Count = %d/%d, want 2/2", ov.Len(), ov.Count(Pattern{}))
	}
}
