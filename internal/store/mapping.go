package store

import (
	"sync/atomic"
	"unsafe"

	"repro/internal/dict"
	"repro/internal/rdf"
)

// This file implements the mmap-backed side of the TripleSource seam: a
// refcounted Mapping over the raw snapshot bytes, zero-copy reinterpreted
// views of the page-aligned v4 sections (permutation indexes as []IDTriple,
// offset/sorted tables as integer slices), and mappedTerms, the dict.Base
// that resolves term ids directly against the on-disk offset table and
// string heap. Every accessor that follows untrusted on-disk offsets is
// bounds-checked: a corrupt file yields a failed TryDecode or an empty
// match, never an out-of-range access or panic.

// TripleSource is the backing of a store's six permutation indexes — the
// seam that lets Match/Count/Scan/ScanPartitions/ScanSeek (and the Delta
// overlay on top) run identically over heap-built and mmap-backed stores.
// The Store caches the index slices it hands out at construction, so the
// hot paths cost the same over either backing: a []IDTriple is a
// []IDTriple whether it points into the Go heap or into a mapping.
//
// The interface is sealed (index is unexported): the two implementations
// are the in-package heapSource and mappedSource.
type TripleSource interface {
	// Backend names the backing: "heap" or "mapped".
	Backend() string
	// Mapping returns the refcounted file mapping, or nil for heap.
	Mapping() *Mapping
	index(o order) []IDTriple
}

// heapSource backs a store built in memory (Builder, ReadSnapshot v1–v3,
// Delta.Commit).
type heapSource struct {
	idx [numOrders][]IDTriple
}

func (h *heapSource) Backend() string          { return "heap" }
func (h *heapSource) Mapping() *Mapping        { return nil }
func (h *heapSource) index(o order) []IDTriple { return h.idx[o] }

// mappedSource backs a store opened with OpenMapped: the index slices are
// zero-copy views into the mapping.
type mappedSource struct {
	m   *Mapping
	idx [numOrders][]IDTriple
}

func (ms *mappedSource) Backend() string          { return "mapped" }
func (ms *mappedSource) Mapping() *Mapping        { return ms.m }
func (ms *mappedSource) index(o order) []IDTriple { return ms.idx[o] }

// Mapping is a refcounted read-only view of a v4 snapshot's bytes —
// usually an OS file mapping, or a plain in-memory buffer for
// OpenMappedBytes and non-unix fallbacks. It is created with one
// reference, owned by whoever opened it; holders that outlive the opener
// (e.g. each service snapshot generation) Retain their own reference, and
// the unmap syscall runs only when the last reference is released. That is
// what lets /reload swap mappings while in-flight queries — whose result
// rows and dictionary still point into the old mapping — drain safely.
type Mapping struct {
	data  []byte
	size  int
	refs  atomic.Int64
	unmap func([]byte) error
}

func newMapping(data []byte, unmap func([]byte) error) *Mapping {
	m := &Mapping{data: data, size: len(data), unmap: unmap}
	m.refs.Store(1)
	return m
}

// Size returns the mapped byte count (fixed at creation).
func (m *Mapping) Size() int { return m.size }

// Refs returns the current reference count (for tests and gauges).
func (m *Mapping) Refs() int64 { return m.refs.Load() }

// Retain adds a reference. It returns false — without retaining — when the
// mapping has already been fully released; callers must then treat the
// mapping (and any store over it) as gone.
func (m *Mapping) Retain() bool {
	for {
		n := m.refs.Load()
		if n <= 0 {
			return false
		}
		if m.refs.CompareAndSwap(n, n+1) {
			return true
		}
	}
}

// Release drops one reference; the last release unmaps the file. Releasing
// more times than retained is a bug the refcount makes visible (Retain
// fails forever after).
func (m *Mapping) Release() {
	if m.refs.Add(-1) != 0 {
		return
	}
	if m.unmap != nil {
		_ = m.unmap(m.data)
	}
	m.data = nil
}

// hostLittleEndian reports whether the host lays integers out
// little-endian — the only byte order the zero-copy v4 views support (the
// format itself is defined little-endian, like v1–v3).
func hostLittleEndian() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}

// Zero-copy section views. The callers (openMappedData) have already
// verified section bounds, byte widths and the base pointer's alignment,
// so the unsafe.Slice reinterpretations below are in-bounds and aligned.

func viewTriples(b []byte) []IDTriple {
	if len(b) < idTripleBytes {
		return nil
	}
	return unsafe.Slice((*IDTriple)(unsafe.Pointer(&b[0])), len(b)/idTripleBytes)
}

func viewUint64(b []byte) []uint64 {
	if len(b) < 8 {
		return nil
	}
	return unsafe.Slice((*uint64)(unsafe.Pointer(&b[0])), len(b)/8)
}

func viewIDs(b []byte) []dict.ID {
	if len(b) < 4 {
		return nil
	}
	return unsafe.Slice((*dict.ID)(unsafe.Pointer(&b[0])), len(b)/4)
}

// idTripleBytes is the on-disk (and in-memory) width of an IDTriple: three
// little-endian uint32 components, no padding.
const idTripleBytes = 12

// mappedTerms resolves dictionary ids against the v4 term sections: the
// (nTerms+1)-entry offset table, the contiguous string heap, and the
// sorted-id table that orders ids by rdf.Term.Compare for binary-search
// Lookup. It implements dict.Base; the store's *dict.Dict wraps it via
// dict.NewOver, so updates over a mapped store encode fresh terms into a
// mutable tail with exactly the id sequence a heap-loaded store would
// assign.
//
// All accessors are hardened against corrupt on-disk input: offsets are
// checked against the heap bounds, records must parse to exactly their
// offset-delimited length, and any violation surfaces as a failed
// TryDecode / Lookup — never a panic or out-of-range read.
type mappedTerms struct {
	m      *Mapping
	n      int       // term count
	offs   []uint64  // n+1 entries, record i spans heap[offs[i]:offs[i+1]]
	heap   []byte    // term records: kind byte + 3 uvarint-length strings
	sorted []dict.ID // ids 1..n ordered by rdf.Term.Compare
}

func (mt *mappedTerms) mapping() *Mapping { return mt.m }

// Len returns the term count.
func (mt *mappedTerms) Len() int { return mt.n }

// record returns the raw bytes of term id's record, or false when the
// offset table entry is corrupt.
func (mt *mappedTerms) record(id dict.ID) ([]byte, bool) {
	if id == dict.None || int(id) > mt.n {
		return nil, false
	}
	lo, hi := mt.offs[id-1], mt.offs[id]
	if lo > hi || hi > uint64(len(mt.heap)) {
		return nil, false
	}
	return mt.heap[lo:hi], true
}

// parseRecord splits a term record into its kind and three component byte
// views (no copying). It fails on truncated records, invalid kinds, and
// records with trailing garbage.
func parseRecord(rec []byte) (kind rdf.Kind, value, lang, datatype []byte, ok bool) {
	if len(rec) < 1 || rec[0] > byte(rdf.Blank) {
		return 0, nil, nil, nil, false
	}
	kind = rdf.Kind(rec[0])
	rest := rec[1:]
	next := func() ([]byte, bool) {
		n, w := uvarint(rest)
		if w <= 0 || n > uint64(len(rest)-w) {
			return nil, false
		}
		s := rest[w : w+int(n)]
		rest = rest[w+int(n):]
		return s, true
	}
	if value, ok = next(); !ok {
		return 0, nil, nil, nil, false
	}
	if lang, ok = next(); !ok {
		return 0, nil, nil, nil, false
	}
	if datatype, ok = next(); !ok {
		return 0, nil, nil, nil, false
	}
	if len(rest) != 0 {
		return 0, nil, nil, nil, false
	}
	return kind, value, lang, datatype, true
}

// uvarint is binary.Uvarint without the import cycle risk of a Reader:
// it decodes from a byte slice, returning the value and the number of
// bytes consumed (0 when truncated, negative on overflow), exactly like
// encoding/binary.Uvarint.
func uvarint(b []byte) (uint64, int) {
	var x uint64
	var s uint
	for i, c := range b {
		if i == 10 {
			return 0, -(i + 1)
		}
		if c < 0x80 {
			if i == 9 && c > 1 {
				return 0, -(i + 1)
			}
			return x | uint64(c)<<s, i + 1
		}
		x |= uint64(c&0x7f) << s
		s += 7
	}
	return 0, 0
}

// TryDecode returns the term for id, copying the component strings out of
// the mapping (so decoded terms never dangle into a released mapping
// through anything but the dictionary itself, whose lifecycle the Mapping
// refcount covers).
func (mt *mappedTerms) TryDecode(id dict.ID) (rdf.Term, bool) {
	rec, ok := mt.record(id)
	if !ok {
		return rdf.Term{}, false
	}
	kind, value, lang, datatype, ok := parseRecord(rec)
	if !ok {
		return rdf.Term{}, false
	}
	return rdf.Term{Kind: kind, Value: string(value), Lang: string(lang), Datatype: string(datatype)}, true
}

// compareRecord orders a raw term record against t with rdf.Term.Compare
// semantics (Kind, Value, Datatype, Lang) without copying the record's
// strings. The bool result is false for unparseable records.
func (mt *mappedTerms) compareRecord(id dict.ID, t rdf.Term) (int, bool) {
	rec, ok := mt.record(id)
	if !ok {
		return 0, false
	}
	kind, value, lang, datatype, ok := parseRecord(rec)
	if !ok {
		return 0, false
	}
	if kind != t.Kind {
		if kind < t.Kind {
			return -1, true
		}
		return 1, true
	}
	if c := cmpBytesString(value, t.Value); c != 0 {
		return c, true
	}
	if c := cmpBytesString(datatype, t.Datatype); c != 0 {
		return c, true
	}
	return cmpBytesString(lang, t.Lang), true
}

func cmpBytesString(b []byte, s string) int {
	n := min(len(b), len(s))
	for i := 0; i < n; i++ {
		if b[i] != s[i] {
			if b[i] < s[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(b) < len(s):
		return -1
	case len(b) > len(s):
		return 1
	}
	return 0
}

// Lookup finds t by binary search over the sorted-id table. On a corrupt
// table (unparseable records, broken ordering) it degrades to a miss,
// never a fault.
func (mt *mappedTerms) Lookup(t rdf.Term) (dict.ID, bool) {
	lo, hi := 0, len(mt.sorted)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		c, ok := mt.compareRecord(mt.sorted[mid], t)
		if !ok {
			return dict.None, false
		}
		switch {
		case c < 0:
			lo = mid + 1
		case c > 0:
			hi = mid
		default:
			return mt.sorted[mid], true
		}
	}
	return dict.None, false
}
