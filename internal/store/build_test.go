package store

import (
	"math/rand"
	"testing"

	"repro/internal/dict"
	"repro/internal/rdf"
)

// randomBuilder fills a builder with deterministic pseudo-random triples,
// including rdf:type assignments that interleave classes across subjects.
func randomBuilder(seed int64, n int) *Builder {
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder()
	d := b.Dict()
	typeID := rdf.NewIRI(rdf.RDFType)
	for i := 0; i < n; i++ {
		b.AddID(IDTriple{
			S: d.Encode(rdf.NewIRI(randName(rng, "s", 60))),
			P: d.Encode(rdf.NewIRI(randName(rng, "p", 9))),
			O: d.Encode(rdf.NewIRI(randName(rng, "o", 80))),
		})
		if rng.Intn(4) == 0 {
			b.AddID(IDTriple{
				S: d.Encode(rdf.NewIRI(randName(rng, "s", 60))),
				P: d.Encode(typeID),
				O: d.Encode(rdf.NewIRI(randName(rng, "C", 3))),
			})
		}
	}
	return b
}

// equalStores compares every observable surface of two stores built over
// the same dictionary: indexes, counts, statistics and the type index.
func equalStores(t *testing.T, a, b *Store) {
	t.Helper()
	if a.Len() != b.Len() {
		t.Fatalf("Len %d vs %d", a.Len(), b.Len())
	}
	for o := order(0); o < numOrders; o++ {
		x, y := a.idx[o], b.idx[o]
		if len(x) != len(y) {
			t.Fatalf("index %v: %d vs %d triples", o, len(x), len(y))
		}
		for i := range x {
			if x[i] != y[i] {
				t.Fatalf("index %v diverges at %d: %v vs %v", o, i, x[i], y[i])
			}
		}
	}
	if len(a.pstats) != len(b.pstats) {
		t.Fatalf("pstats size %d vs %d", len(a.pstats), len(b.pstats))
	}
	for p, st := range a.pstats {
		if b.pstats[p] != st {
			t.Fatalf("pstats[%d] %+v vs %+v", p, st, b.pstats[p])
		}
	}
	if a.typeID != b.typeID {
		t.Fatalf("typeID %d vs %d", a.typeID, b.typeID)
	}
	if len(a.typeIdx) != len(b.typeIdx) {
		t.Fatalf("typeIdx size %d vs %d", len(a.typeIdx), len(b.typeIdx))
	}
	for c, xs := range a.typeIdx {
		ys := b.typeIdx[c]
		if len(xs) != len(ys) {
			t.Fatalf("class %d: %d vs %d members", c, len(xs), len(ys))
		}
		for i := range xs {
			if xs[i] != ys[i] {
				t.Fatalf("class %d member %d: %d vs %d", c, i, xs[i], ys[i])
			}
		}
	}
}

// The tentpole invariant: parallel construction is byte-identical to the
// serial path at every parallelism level, including prime worker counts
// that leave sorts queued behind the semaphore.
func TestBuildParallelMatchesSerial(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		serial := randomBuilder(seed, 3000).BuildOpts(BuildOptions{Parallelism: 1})
		for _, par := range []int{0, 2, 3, 16} {
			parallel := serial.Rebuild(BuildOptions{Parallelism: par})
			equalStores(t, serial, parallel)
		}
	}
}

// Rebuild over the same dictionary must reproduce the original store
// exactly, whichever path built it.
func TestRebuildRoundTrip(t *testing.T) {
	st, _ := buildTestStore(t)
	equalStores(t, st, st.Rebuild(BuildOptions{}))
	equalStores(t, st, st.Rebuild(BuildOptions{Parallelism: 1}))
}

// Regression: SubjectsOfClass dropped members when rdf:type assignments
// interleaved classes across subject IDs — the old stats pass grouped by
// class over a subject-ordered index, so only the last run of a class
// survived.
func TestSubjectsOfClassInterleaved(t *testing.T) {
	b := NewBuilder()
	iri := func(n string) rdf.Term { return rdf.NewIRI("http://x/" + n) }
	typ := rdf.NewIRI(rdf.RDFType)
	for _, st := range [][2]string{{"s1", "A"}, {"s2", "B"}, {"s3", "A"}, {"s4", "B"}, {"s5", "A"}} {
		if err := b.Add(rdf.NewTriple(iri(st[0]), typ, iri(st[1]))); err != nil {
			t.Fatal(err)
		}
	}
	st := b.Build()
	idA, _ := st.Dict().Lookup(iri("A"))
	idB, _ := st.Dict().Lookup(iri("B"))
	if got := st.SubjectsOfClass(idA); len(got) != 3 {
		t.Fatalf("class A members = %v, want 3", got)
	}
	if got := st.SubjectsOfClass(idB); len(got) != 2 {
		t.Fatalf("class B members = %v, want 2", got)
	}
	// Members are sorted subject IDs.
	for _, c := range []dict.ID{idA, idB} {
		ms := st.SubjectsOfClass(c)
		for i := 1; i < len(ms); i++ {
			if ms[i] <= ms[i-1] {
				t.Fatalf("class %d members not sorted/unique: %v", c, ms)
			}
		}
	}
}

// DistinctValues must agree between the grouped (run-head) fast path and
// the map-and-sort slow path; exercise both against a naive computation
// for every position and pattern shape.
func TestDistinctValuesGroupedMatchesUngrouped(t *testing.T) {
	st := randomBuilder(11, 1500).Build()
	all, _ := st.Match(Pattern{})
	somePred := all[0].P
	someSubj := all[0].S
	pats := []Pattern{{}, {P: somePred}, {S: someSubj}, {S: someSubj, P: somePred}}
	for _, pat := range pats {
		for pos := 0; pos < 3; pos++ {
			naive := map[dict.ID]struct{}{}
			m, _ := st.Match(pat)
			for _, tr := range m {
				naive[positionValue(tr, pos)] = struct{}{}
			}
			got := st.DistinctValues(pos, pat)
			if len(got) != len(naive) {
				t.Fatalf("pat %v pos %d: %d distinct, naive %d", pat, pos, len(got), len(naive))
			}
			for i, v := range got {
				if _, ok := naive[v]; !ok {
					t.Fatalf("pat %v pos %d: unexpected value %d", pat, pos, v)
				}
				if i > 0 && got[i-1] >= v {
					t.Fatalf("pat %v pos %d: result not sorted/unique", pat, pos)
				}
			}
		}
	}
}
