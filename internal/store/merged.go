package store

// This file implements the k-way-merging side of the Scan cursor: the
// shard-federation counterpart of the overlay merge in iter.go. A merged
// cursor holds child cursors over the same pattern and index order whose
// triple sets are disjoint (shards partition by subject, and no triple is
// duplicated), so the merge is unambiguous: repeatedly emitting the
// smallest head under the index order reproduces exactly the stream a
// single store over the union would deliver. That stream identity — not
// any scheduling property — is what makes sharded execution bit-identical
// to unsharded execution.

// mergeScans builds a cursor over the union of children's streams. All
// children must share the cursor's index order and match the same
// pattern. Children that are already exhausted are dropped; a single
// surviving child is returned directly (zero merge overhead — this is
// the Shards=1 fast path and the common case for subject-bound patterns,
// which match in exactly one shard).
func mergeScans(children []*Scan, o order, pat Pattern) *Scan {
	live := children[:0]
	for _, c := range children {
		if c.Remaining() > 0 {
			live = append(live, c)
		}
	}
	switch len(live) {
	case 0:
		sc := &Scan{ord: o}
		sc.initRuns(pat)
		return sc
	case 1:
		return live[0]
	}
	sc := &Scan{ord: o, sub: live}
	sc.prefix, sc.nb = prefixBounds(o, pat)
	return sc
}

// headChild returns the child holding the smallest undelivered triple,
// with that triple. Children never hold equal triples (disjoint sets), so
// the minimum is unique and no tie-break is needed.
func (sc *Scan) headChild() (*Scan, IDTriple, bool) {
	var (
		best  *Scan
		bt    IDTriple
		found bool
	)
	for _, c := range sc.sub {
		t, ok := c.Head()
		if !ok {
			continue
		}
		if !found || lessByOrder(t, bt, sc.ord) {
			best, bt, found = c, t, true
		}
	}
	return best, bt, found
}

// advance consumes the cursor's head triple. Call only after Head
// returned true (which has already discarded any deleted prefix); the
// selection mirrors Head's so the consumed triple is the one Head
// reported.
func (sc *Scan) advance() {
	switch {
	case len(sc.rest) == 0:
		sc.ins = sc.ins[1:]
	case len(sc.ins) == 0 || !lessByOrder(sc.ins[0], sc.rest[0], sc.ord):
		sc.rest = sc.rest[1:]
	default:
		sc.ins = sc.ins[1:]
	}
}

// nextMerged is Next for a merging cursor: up to max triples assembled
// into the reused batch buffer by repeated minimum selection over the
// children.
func (sc *Scan) nextMerged(max int) []IDTriple {
	n := sc.Remaining()
	if n == 0 {
		return nil
	}
	if max > 0 && max < n {
		n = max
	}
	if cap(sc.buf) < n {
		sc.buf = make([]IDTriple, 0, n)
	}
	buf := sc.buf[:0]
	for len(buf) < n {
		c, t, ok := sc.headChild()
		if !ok {
			break
		}
		buf = append(buf, t)
		c.advance()
	}
	sc.buf = buf
	return buf
}
