package store

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/rdf"
)

func buildIterStore(t *testing.T, n int) *Store {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	b := NewBuilder()
	for i := 0; i < n; i++ {
		tr := rdf.NewTriple(
			rdf.NewIRI(fmt.Sprintf("http://x/s%d", rng.Intn(40))),
			rdf.NewIRI(fmt.Sprintf("http://x/p%d", rng.Intn(5))),
			rdf.NewIRI(fmt.Sprintf("http://x/o%d", rng.Intn(40))),
		)
		if err := b.Add(tr); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func TestScanMatchesMatch(t *testing.T) {
	st := buildIterStore(t, 500)
	pID, _ := st.Dict().Lookup(rdf.NewIRI("http://x/p1"))
	for _, pat := range []Pattern{{}, {P: pID}, {S: 1}, {P: 999999}} {
		want, _ := st.Match(pat)
		for _, batchSize := range []int{0, 1, 3, 64, 100000} {
			sc := st.Scan(pat)
			var got []IDTriple
			for {
				batch := sc.Next(batchSize)
				if batch == nil {
					break
				}
				if batchSize > 0 && len(batch) > batchSize {
					t.Fatalf("batch of %d exceeds max %d", len(batch), batchSize)
				}
				got = append(got, batch...)
			}
			if len(got) != len(want) {
				t.Fatalf("pat %v batch %d: got %d triples, want %d", pat, batchSize, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("pat %v batch %d: triple %d = %v, want %v (order must match Match)", pat, batchSize, i, got[i], want[i])
				}
			}
			if sc.Remaining() != 0 {
				t.Fatalf("remaining = %d after exhaustion", sc.Remaining())
			}
		}
	}
}

func TestScanEmpty(t *testing.T) {
	st := buildIterStore(t, 10)
	sc := st.Scan(Pattern{S: 123456})
	if sc.Remaining() != 0 {
		t.Fatalf("remaining = %d", sc.Remaining())
	}
	if batch := sc.Next(8); batch != nil {
		t.Fatalf("batch = %v, want nil", batch)
	}
}

func TestScanZeroCopy(t *testing.T) {
	st := buildIterStore(t, 200)
	want, _ := st.Match(Pattern{})
	sc := st.Scan(Pattern{})
	first := sc.Next(10)
	if len(first) != 10 {
		t.Fatalf("first batch = %d", len(first))
	}
	// Zero-copy: the batch must alias the index backing array.
	if &first[0] != &want[0] {
		t.Error("batch does not alias the index")
	}
	// The batch's capacity is clipped so appends cannot clobber the index.
	if cap(first) != 10 {
		t.Errorf("cap = %d, want 10 (three-index slice)", cap(first))
	}
}
