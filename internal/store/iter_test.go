package store

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/rdf"
)

func buildIterStore(t *testing.T, n int) *Store {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	b := NewBuilder()
	for i := 0; i < n; i++ {
		tr := rdf.NewTriple(
			rdf.NewIRI(fmt.Sprintf("http://x/s%d", rng.Intn(40))),
			rdf.NewIRI(fmt.Sprintf("http://x/p%d", rng.Intn(5))),
			rdf.NewIRI(fmt.Sprintf("http://x/o%d", rng.Intn(40))),
		)
		if err := b.Add(tr); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func TestScanMatchesMatch(t *testing.T) {
	st := buildIterStore(t, 500)
	pID, _ := st.Dict().Lookup(rdf.NewIRI("http://x/p1"))
	for _, pat := range []Pattern{{}, {P: pID}, {S: 1}, {P: 999999}} {
		want, _ := st.Match(pat)
		for _, batchSize := range []int{0, 1, 3, 64, 100000} {
			sc := st.Scan(pat)
			var got []IDTriple
			for {
				batch := sc.Next(batchSize)
				if batch == nil {
					break
				}
				if batchSize > 0 && len(batch) > batchSize {
					t.Fatalf("batch of %d exceeds max %d", len(batch), batchSize)
				}
				got = append(got, batch...)
			}
			if len(got) != len(want) {
				t.Fatalf("pat %v batch %d: got %d triples, want %d", pat, batchSize, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("pat %v batch %d: triple %d = %v, want %v (order must match Match)", pat, batchSize, i, got[i], want[i])
				}
			}
			if sc.Remaining() != 0 {
				t.Fatalf("remaining = %d after exhaustion", sc.Remaining())
			}
		}
	}
}

func TestScanEmpty(t *testing.T) {
	st := buildIterStore(t, 10)
	sc := st.Scan(Pattern{S: 123456})
	if sc.Remaining() != 0 {
		t.Fatalf("remaining = %d", sc.Remaining())
	}
	if batch := sc.Next(8); batch != nil {
		t.Fatalf("batch = %v, want nil", batch)
	}
}

func TestScanZeroCopy(t *testing.T) {
	st := buildIterStore(t, 200)
	want, _ := st.Match(Pattern{})
	sc := st.Scan(Pattern{})
	first := sc.Next(10)
	if len(first) != 10 {
		t.Fatalf("first batch = %d", len(first))
	}
	// Zero-copy: the batch must alias the index backing array.
	if &first[0] != &want[0] {
		t.Error("batch does not alias the index")
	}
	// The batch's capacity is clipped so appends cannot clobber the index.
	if cap(first) != 10 {
		t.Errorf("cap = %d, want 10 (three-index slice)", cap(first))
	}
}

func TestScanPartitionsCoverScanInOrder(t *testing.T) {
	st := buildIterStore(t, 700)
	pID, _ := st.Dict().Lookup(rdf.NewIRI("http://x/p1"))
	for _, pat := range []Pattern{{}, {P: pID}, {S: 1}} {
		want, _ := st.Match(pat)
		for _, n := range []int{1, 2, 3, 7, 16, len(want), len(want) + 5} {
			parts := st.ScanPartitions(pat, n)
			if len(want) == 0 {
				if parts != nil {
					t.Fatalf("pat %v: %d partitions over empty range", pat, len(parts))
				}
				continue
			}
			wantParts := n
			if wantParts > len(want) {
				wantParts = len(want)
			}
			if len(parts) != wantParts {
				t.Fatalf("pat %v n=%d: %d partitions, want %d", pat, n, len(parts), wantParts)
			}
			var got []IDTriple
			minSize, maxSize := len(want), 0
			for _, sc := range parts {
				r := sc.Remaining()
				if r < minSize {
					minSize = r
				}
				if r > maxSize {
					maxSize = r
				}
				for {
					batch := sc.Next(13)
					if batch == nil {
						break
					}
					got = append(got, batch...)
				}
			}
			if maxSize-minSize > 1 {
				t.Fatalf("pat %v n=%d: partition sizes spread %d..%d", pat, n, minSize, maxSize)
			}
			if len(got) != len(want) {
				t.Fatalf("pat %v n=%d: %d triples, want %d", pat, n, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("pat %v n=%d: triple %d differs (concatenation must equal Scan order)", pat, n, i)
				}
			}
		}
	}
}

func TestScanPartitionsEmptyAndInvalid(t *testing.T) {
	st := buildIterStore(t, 20)
	if parts := st.ScanPartitions(Pattern{S: 999999}, 4); parts != nil {
		t.Fatalf("empty range returned %d partitions", len(parts))
	}
	parts := st.ScanPartitions(Pattern{}, 0)
	if len(parts) != 1 {
		t.Fatalf("n=0 should clamp to one partition, got %d", len(parts))
	}
	want, _ := st.Match(Pattern{})
	if parts[0].Remaining() != len(want) {
		t.Fatalf("single partition holds %d of %d triples", parts[0].Remaining(), len(want))
	}
}
