package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); !almost(m, 5, 1e-12) {
		t.Fatalf("Mean = %v, want 5", m)
	}
	// Sample variance with n-1: sum sq dev = 32, / 7.
	if v := Variance(xs); !almost(v, 32.0/7.0, 1e-12) {
		t.Fatalf("Variance = %v, want %v", v, 32.0/7.0)
	}
	if Variance([]float64{1}) != 0 || Variance(nil) != 0 {
		t.Fatal("variance of <2 samples should be 0")
	}
	if Mean(nil) != 0 {
		t.Fatal("mean of empty should be 0")
	}
}

func TestPercentilesAndSummary(t *testing.T) {
	xs := []float64{10, 1, 5, 3, 8, 2, 9, 4, 7, 6} // 1..10 shuffled
	if med := Median(xs); !almost(med, 5.5, 1e-12) {
		t.Fatalf("Median = %v, want 5.5", med)
	}
	if p := Percentile(xs, 0); p != 1 {
		t.Fatalf("P0 = %v, want 1", p)
	}
	if p := Percentile(xs, 100); p != 10 {
		t.Fatalf("P100 = %v, want 10", p)
	}
	if p := Percentile(xs, 90); !almost(p, 9.1, 1e-9) {
		t.Fatalf("P90 = %v, want 9.1", p)
	}
	s := Summarize(xs)
	if s.N != 10 || s.Min != 1 || s.Max != 10 || !almost(s.Median, 5.5, 1e-12) {
		t.Fatalf("Summary wrong: %+v", s)
	}
	if s.String() == "" {
		t.Fatal("Summary.String empty")
	}
	if math.IsNaN(Percentile(nil, 50)) == false {
		t.Fatal("Percentile of empty should be NaN")
	}
	if (Summarize(nil) != Summary{}) {
		t.Fatal("Summarize(nil) should be zero")
	}
}

func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, 50)
		for i := range xs {
			xs[i] = rng.ExpFloat64() * 100
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 5 {
			v := Percentile(xs, p)
			if v < prev {
				return false
			}
			prev = v
		}
		return Min(xs) == Percentile(xs, 0) && Max(xs) == Percentile(xs, 100)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if r := Pearson(xs, ys); !almost(r, 1, 1e-12) {
		t.Fatalf("perfect positive correlation = %v", r)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if r := Pearson(xs, neg); !almost(r, -1, 1e-12) {
		t.Fatalf("perfect negative correlation = %v", r)
	}
	if !math.IsNaN(Pearson(xs, ys[:3])) {
		t.Fatal("length mismatch should be NaN")
	}
	if !math.IsNaN(Pearson([]float64{1, 1}, []float64{2, 3})) {
		t.Fatal("constant series should be NaN")
	}
}

func TestPearsonNoisyLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 500
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = rng.Float64() * 100
		ys[i] = 3*xs[i] + rng.NormFloat64()*5
	}
	if r := Pearson(xs, ys); r < 0.97 {
		t.Fatalf("noisy linear correlation = %v, want > 0.97", r)
	}
}

func TestMeanMedianRatioAndGap(t *testing.T) {
	// Strongly bimodal: 90 values near 1, 10 values near 1000.
	var xs []float64
	for i := 0; i < 90; i++ {
		xs = append(xs, 1+float64(i)*0.001)
	}
	for i := 0; i < 10; i++ {
		xs = append(xs, 1000+float64(i))
	}
	if r := MeanMedianRatio(xs); r < 50 {
		t.Fatalf("bimodal mean/median = %v, want large", r)
	}
	gap, mid := LargestRelativeGap(xs)
	if gap < 500 {
		t.Fatalf("gap ratio = %v, want large", gap)
	}
	if mid < 1.1 || mid > 999 {
		t.Fatalf("gap midpoint = %v, want between modes", mid)
	}
	// Unimodal data: small gap.
	uni := make([]float64, 100)
	for i := range uni {
		uni[i] = 100 + float64(i)
	}
	if g, _ := LargestRelativeGap(uni); g > 1.02 {
		t.Fatalf("unimodal gap = %v, want ~1", g)
	}
	if !math.IsNaN(MeanMedianRatio(nil)) {
		t.Fatal("empty ratio should be NaN")
	}
}

func TestFractionWithin(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if f := FractionWithin(xs, 2, 4); !almost(f, 0.6, 1e-12) {
		t.Fatalf("FractionWithin = %v, want 0.6", f)
	}
	if FractionWithin(nil, 0, 1) != 0 {
		t.Fatal("empty should be 0")
	}
}

func TestMaxRelativeDeviation(t *testing.T) {
	vs := []float64{1.80, 1.33, 1.53, 1.30} // the paper's E2 averages
	d := MaxRelativeDeviation(vs)
	if d < 0.15 || d > 0.35 {
		t.Fatalf("E2 deviation = %v, want ~0.2", d)
	}
	if MaxRelativeDeviation([]float64{5}) != 0 {
		t.Fatal("single value should be 0")
	}
	if MaxRelativeDeviation([]float64{0, 0}) != 0 {
		t.Fatal("zero mean should be 0")
	}
}
