package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestNormalCDF(t *testing.T) {
	if c := NormalCDF(0, 0, 1); !almost(c, 0.5, 1e-12) {
		t.Fatalf("Phi(0) = %v", c)
	}
	if c := NormalCDF(1.959964, 0, 1); !almost(c, 0.975, 1e-4) {
		t.Fatalf("Phi(1.96) = %v", c)
	}
	if NormalCDF(-1, 0, 0) != 0 || NormalCDF(1, 0, 0) != 1 {
		t.Fatal("degenerate sigma should step at mu")
	}
}

func TestKSNormalAcceptsNormalData(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = 10 + 2*rng.NormFloat64()
	}
	res := KSNormal(xs)
	if res.D > 0.08 {
		t.Fatalf("KS D on normal data = %v, want small", res.D)
	}
	if res.PValue < 0.01 {
		t.Fatalf("p-value on normal data = %v, want not tiny", res.PValue)
	}
}

func TestKSNormalRejectsBimodalData(t *testing.T) {
	// Mimic E1: clustered runtimes — a fast mode and a slow mode far apart.
	rng := rand.New(rand.NewSource(4))
	var xs []float64
	for i := 0; i < 450; i++ {
		xs = append(xs, 0.3+0.05*rng.Float64())
	}
	for i := 0; i < 50; i++ {
		xs = append(xs, 100+20*rng.Float64())
	}
	res := KSNormal(xs)
	if res.D < 0.3 {
		t.Fatalf("KS D on bimodal data = %v, want large", res.D)
	}
	if res.PValue > 1e-6 {
		t.Fatalf("p-value on bimodal data = %v, want ≈ 0", res.PValue)
	}
}

func TestKSEmpty(t *testing.T) {
	if r := KSNormal(nil); !math.IsNaN(r.D) {
		t.Fatal("empty sample should be NaN")
	}
	if r := KSTwoSample(nil, []float64{1}); !math.IsNaN(r.D) {
		t.Fatal("empty two-sample should be NaN")
	}
}

func TestKSTwoSampleSameDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	xs := make([]float64, 400)
	ys := make([]float64, 400)
	for i := range xs {
		xs[i] = rng.ExpFloat64()
		ys[i] = rng.ExpFloat64()
	}
	res := KSTwoSample(xs, ys)
	if res.D > 0.1 {
		t.Fatalf("two-sample D = %v for same distribution", res.D)
	}
	if res.PValue < 0.01 {
		t.Fatalf("p = %v, want large", res.PValue)
	}
}

func TestKSTwoSampleDifferentDistributions(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	xs := make([]float64, 400)
	ys := make([]float64, 400)
	for i := range xs {
		xs[i] = rng.ExpFloat64()
		ys[i] = 5 + rng.NormFloat64()
	}
	res := KSTwoSample(xs, ys)
	if res.D < 0.5 {
		t.Fatalf("two-sample D = %v for different distributions", res.D)
	}
	if res.PValue > 1e-6 {
		t.Fatalf("p = %v, want ≈ 0", res.PValue)
	}
}

func TestKSStatisticExactSmall(t *testing.T) {
	// Single point at the reference median: D = 0.5 exactly.
	res := KSAgainstCDF([]float64{0}, func(x float64) float64 { return NormalCDF(x, 0, 1) })
	if !almost(res.D, 0.5, 1e-12) {
		t.Fatalf("D = %v, want 0.5", res.D)
	}
}

func TestHistogram(t *testing.T) {
	h := NewLogHistogram(1, 1000, 3) // buckets: <1, [1,10), [10,100), [100,1000), >=1000
	h.AddAll([]float64{0.5, 2, 3, 50, 5000})
	if h.Total() != 5 {
		t.Fatalf("Total = %d", h.Total())
	}
	if h.Counts[0] != 1 || h.Counts[1] != 2 || h.Counts[2] != 1 || h.Counts[4] != 1 {
		t.Fatalf("counts = %v", h.Counts)
	}
	if h.Render(20) == "" {
		t.Fatal("Render empty")
	}
	lin := NewLinearHistogram(0, 10, 2)
	lin.Add(5)
	if lin.Counts[2] != 1 {
		t.Fatalf("linear counts = %v", lin.Counts)
	}
	if (&Histogram{Bounds: []float64{1}, Counts: make([]int, 2)}).Render(10) == "" {
		t.Fatal("empty histogram render should say so")
	}
}

func TestHistogramPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewLogHistogram(0, 10, 3) },
		func() { NewLogHistogram(10, 1, 3) },
		func() { NewLinearHistogram(5, 5, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
