package stats

import (
	"fmt"
	"math"
	"strings"
)

// Histogram is a fixed-bucket histogram with either linear or logarithmic
// bucket boundaries. Logarithmic buckets are the natural choice for query
// runtimes, which span several orders of magnitude in the paper's E3.
type Histogram struct {
	Bounds []float64 // len(Bounds)+1 buckets; bucket i covers [Bounds[i-1], Bounds[i])
	Counts []int     // len(Bounds)+1 counts; first bucket is (-inf, Bounds[0])
	total  int
	sum    float64
}

// NewLogHistogram builds a histogram with buckets at lo, lo·r, lo·r², …
// covering [lo, hi] with `buckets` geometric steps.
func NewLogHistogram(lo, hi float64, buckets int) *Histogram {
	if lo <= 0 || hi <= lo || buckets < 1 {
		panic("stats: invalid log histogram bounds")
	}
	r := math.Pow(hi/lo, 1/float64(buckets))
	bounds := make([]float64, buckets+1)
	b := lo
	for i := range bounds {
		bounds[i] = b
		b *= r
	}
	return &Histogram{Bounds: bounds, Counts: make([]int, len(bounds)+1)}
}

// NewLinearHistogram builds a histogram with equal-width buckets over
// [lo, hi].
func NewLinearHistogram(lo, hi float64, buckets int) *Histogram {
	if hi <= lo || buckets < 1 {
		panic("stats: invalid linear histogram bounds")
	}
	w := (hi - lo) / float64(buckets)
	bounds := make([]float64, buckets+1)
	for i := range bounds {
		bounds[i] = lo + w*float64(i)
	}
	return &Histogram{Bounds: bounds, Counts: make([]int, len(bounds)+1)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	i := 0
	for i < len(h.Bounds) && x >= h.Bounds[i] {
		i++
	}
	h.Counts[i]++
	h.total++
	h.sum += x
}

// AddAll records all observations.
func (h *Histogram) AddAll(xs []float64) {
	for _, x := range xs {
		h.Add(x)
	}
}

// Total returns the number of observations recorded.
func (h *Histogram) Total() int { return h.total }

// Sum returns the sum of all recorded observations — with Total it yields
// the mean, and it backs the `_sum` series of a Prometheus-style
// cumulative-histogram exposition.
func (h *Histogram) Sum() float64 { return h.sum }

// Render draws an ASCII bar chart, one line per non-empty bucket, bars
// scaled to width w.
func (h *Histogram) Render(w int) string {
	if w < 1 {
		w = 40
	}
	maxC := 0
	for _, c := range h.Counts {
		if c > maxC {
			maxC = c
		}
	}
	if maxC == 0 {
		return "(empty histogram)\n"
	}
	var b strings.Builder
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		var label string
		switch i {
		case 0:
			label = fmt.Sprintf("      < %8.3g", h.Bounds[0])
		case len(h.Bounds):
			label = fmt.Sprintf("     >= %8.3g", h.Bounds[len(h.Bounds)-1])
		default:
			label = fmt.Sprintf("%8.3g-%8.3g", h.Bounds[i-1], h.Bounds[i])
		}
		bar := strings.Repeat("#", int(math.Ceil(float64(c)/float64(maxC)*float64(w))))
		fmt.Fprintf(&b, "%s |%-*s %d\n", label, w, bar, c)
	}
	return b.String()
}
