package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestSpearmanPerfectMonotone(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{1, 4, 9, 16, 25} // nonlinear but monotone
	if r := Spearman(xs, ys); !almost(r, 1, 1e-12) {
		t.Fatalf("monotone Spearman = %v, want 1", r)
	}
	if r := Pearson(xs, ys); r >= 1-1e-9 {
		t.Fatal("Pearson should be < 1 on nonlinear data (sanity)")
	}
	desc := []float64{10, 8, 6, 4, 2}
	if r := Spearman(xs, desc); !almost(r, -1, 1e-12) {
		t.Fatalf("descending Spearman = %v, want -1", r)
	}
}

func TestSpearmanTies(t *testing.T) {
	xs := []float64{1, 2, 2, 3}
	ys := []float64{10, 20, 20, 30}
	if r := Spearman(xs, ys); !almost(r, 1, 1e-12) {
		t.Fatalf("tied Spearman = %v, want 1", r)
	}
	if !math.IsNaN(Spearman(xs, ys[:2])) {
		t.Fatal("length mismatch should be NaN")
	}
}

func TestRanksAverageTies(t *testing.T) {
	got := ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ranks = %v, want %v", got, want)
		}
	}
}

func TestKendall(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if r := Kendall(xs, ys); !almost(r, 1, 1e-12) {
		t.Fatalf("Kendall = %v, want 1", r)
	}
	rev := []float64{5, 4, 3, 2, 1}
	if r := Kendall(xs, rev); !almost(r, -1, 1e-12) {
		t.Fatalf("Kendall = %v, want -1", r)
	}
	if !math.IsNaN(Kendall([]float64{1, 1}, []float64{1, 1})) {
		t.Fatal("all-ties should be NaN")
	}
	if !math.IsNaN(Kendall(xs, ys[:3])) {
		t.Fatal("length mismatch should be NaN")
	}
}

func TestRankCorrelationNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 300
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = rng.Float64() * 1000
		ys[i] = math.Log(xs[i]+1) + rng.NormFloat64()*0.1 // monotone + noise
	}
	if r := Spearman(xs, ys); r < 0.95 {
		t.Fatalf("noisy monotone Spearman = %v, want > 0.95", r)
	}
	if r := Kendall(xs, ys); r < 0.8 {
		t.Fatalf("noisy monotone Kendall = %v, want > 0.8", r)
	}
}
