package stats

import (
	"math"
	"sort"
)

// NormalCDF returns the cumulative distribution function of N(mu, sigma²)
// at x. For sigma <= 0 it degenerates to a step function at mu.
func NormalCDF(x, mu, sigma float64) float64 {
	if sigma <= 0 {
		if x < mu {
			return 0
		}
		return 1
	}
	return 0.5 * (1 + math.Erf((x-mu)/(sigma*math.Sqrt2)))
}

// KSResult reports a Kolmogorov–Smirnov test outcome.
type KSResult struct {
	D      float64 // the KS statistic: sup |F_empirical - F_reference|
	PValue float64 // asymptotic p-value (Kolmogorov distribution)
	N      int     // effective sample size
}

// KSNormal runs a one-sample Kolmogorov–Smirnov test of xs against a normal
// distribution with the sample's own mean and standard deviation — exactly
// the procedure the paper applies to BSBM-BI Q2 runtimes in E1 ("the
// distance between the runtime distribution … and the normal distribution
// results in the distance of 0.89"). Fitting parameters from the sample
// makes the p-value approximate (Lilliefors correction is ignored), which
// matches the paper's usage as a distance measure.
func KSNormal(xs []float64) KSResult {
	mu := Mean(xs)
	sigma := StdDev(xs)
	return KSAgainstCDF(xs, func(x float64) float64 { return NormalCDF(x, mu, sigma) })
}

// KSAgainstCDF runs a one-sample KS test of xs against an arbitrary
// reference CDF.
func KSAgainstCDF(xs []float64, cdf func(float64) float64) KSResult {
	n := len(xs)
	if n == 0 {
		return KSResult{D: math.NaN(), PValue: math.NaN()}
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	d := 0.0
	for i, x := range s {
		f := cdf(x)
		// Compare against the empirical CDF just below and at x.
		lo := float64(i) / float64(n)
		hi := float64(i+1) / float64(n)
		if diff := math.Abs(f - lo); diff > d {
			d = diff
		}
		if diff := math.Abs(f - hi); diff > d {
			d = diff
		}
	}
	return KSResult{D: d, PValue: ksPValue(d, float64(n)), N: n}
}

// KSTwoSample runs a two-sample KS test (used to compare runtime
// distributions across different parameter samples — property P2).
func KSTwoSample(xs, ys []float64) KSResult {
	n, m := len(xs), len(ys)
	if n == 0 || m == 0 {
		return KSResult{D: math.NaN(), PValue: math.NaN()}
	}
	a := append([]float64(nil), xs...)
	b := append([]float64(nil), ys...)
	sort.Float64s(a)
	sort.Float64s(b)
	var i, j int
	d := 0.0
	for i < n && j < m {
		if a[i] <= b[j] {
			i++
		} else {
			j++
		}
		diff := math.Abs(float64(i)/float64(n) - float64(j)/float64(m))
		if diff > d {
			d = diff
		}
	}
	ne := float64(n) * float64(m) / float64(n+m)
	return KSResult{D: d, PValue: ksPValue(d, ne), N: n + m}
}

// ksPValue returns the asymptotic Kolmogorov-distribution p-value
// P(D_n > d) ≈ 2 Σ_{k≥1} (-1)^{k-1} exp(-2 k² λ²) with
// λ = d (√n + 0.12 + 0.11/√n) (Stephens' approximation).
func ksPValue(d, n float64) float64 {
	if n <= 0 || math.IsNaN(d) {
		return math.NaN()
	}
	sn := math.Sqrt(n)
	lambda := d * (sn + 0.12 + 0.11/sn)
	if lambda < 1e-9 {
		return 1
	}
	sum := 0.0
	sign := 1.0
	for k := 1; k <= 100; k++ {
		term := sign * math.Exp(-2*lambda*lambda*float64(k)*float64(k))
		sum += term
		sign = -sign
		if math.Abs(term) < 1e-12 {
			break
		}
	}
	p := 2 * sum
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}
