// Package stats provides the statistical machinery the paper's evaluation
// uses: descriptive summaries (mean, variance, quantiles), the
// Kolmogorov–Smirnov goodness-of-fit test against a fitted normal
// distribution (example E1), Pearson correlation (the Cout-vs-runtime claim
// in Section III) and simple bimodality diagnostics (example E3).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance (n-1 denominator), or 0 for
// fewer than two samples.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n-1)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the minimum, or +Inf for empty input.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum, or -Inf for empty input.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) using linear
// interpolation between closest ranks (the "exclusive" convention used by
// most benchmark reports). It sorts a copy; xs is not modified.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return percentileSorted(s, p)
}

func percentileSorted(s []float64, p float64) float64 {
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Median returns the 50th percentile.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Summary bundles the descriptive statistics reported in the paper's
// tables (E2's q10/median/q90/avg and E3's min/median/mean/q95/max).
type Summary struct {
	N        int
	Min      float64
	Q10      float64
	Median   float64
	Mean     float64
	Q90      float64
	Q95      float64
	Max      float64
	Variance float64
	StdDev   float64
}

// Summarize computes a Summary in one pass over a sorted copy.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	v := Variance(s)
	return Summary{
		N:        len(s),
		Min:      s[0],
		Q10:      percentileSorted(s, 10),
		Median:   percentileSorted(s, 50),
		Mean:     Mean(s),
		Q90:      percentileSorted(s, 90),
		Q95:      percentileSorted(s, 95),
		Max:      s[len(s)-1],
		Variance: v,
		StdDev:   math.Sqrt(v),
	}
}

// String renders the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%.3g q10=%.3g med=%.3g mean=%.3g q90=%.3g q95=%.3g max=%.3g var=%.3g",
		s.N, s.Min, s.Q10, s.Median, s.Mean, s.Q90, s.Q95, s.Max, s.Variance)
}

// Pearson returns the Pearson product-moment correlation coefficient of the
// paired samples xs, ys. It returns NaN if the lengths differ, fewer than
// two pairs are given, or either series is constant.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return math.NaN()
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return math.NaN()
	}
	return sxy / math.Sqrt(sxx*syy)
}

// MeanMedianRatio returns mean/median — the paper's E3 headline ("the
// arithmetic mean is over 10 times larger than the median"). Returns NaN
// for empty input or zero median.
func MeanMedianRatio(xs []float64) float64 {
	med := Median(xs)
	if med == 0 || math.IsNaN(med) {
		return math.NaN()
	}
	return Mean(xs) / med
}

// LargestRelativeGap sorts xs and returns the largest multiplicative gap
// between consecutive distinct positive values, along with the midpoint of
// that gap. A strongly bimodal ("clustered") runtime distribution — E3's
// "either extremely fast or surprisingly slow, almost no query in between"
// — exhibits a large such gap. Returns (1, NaN) when no gap exists.
func LargestRelativeGap(xs []float64) (ratio, midpoint float64) {
	s := make([]float64, 0, len(xs))
	for _, x := range xs {
		if x > 0 {
			s = append(s, x)
		}
	}
	sort.Float64s(s)
	ratio, midpoint = 1, math.NaN()
	for i := 1; i < len(s); i++ {
		if s[i-1] == 0 || s[i] == s[i-1] {
			continue
		}
		r := s[i] / s[i-1]
		if r > ratio {
			ratio = r
			midpoint = math.Sqrt(s[i] * s[i-1])
		}
	}
	return ratio, midpoint
}

// FractionWithin returns the fraction of xs lying within [lo, hi].
// E3 observes that no runtime lies near the mean; this quantifies it.
func FractionWithin(xs []float64, lo, hi float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, x := range xs {
		if x >= lo && x <= hi {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// MaxRelativeDeviation returns max_i |v_i - mean| / mean over a slice of
// group aggregates — the "deviation in reported average runtime would be up
// to 40%" metric of E2. Returns 0 for fewer than two values or zero mean.
func MaxRelativeDeviation(vs []float64) float64 {
	if len(vs) < 2 {
		return 0
	}
	m := Mean(vs)
	if m == 0 {
		return 0
	}
	worst := 0.0
	for _, v := range vs {
		d := math.Abs(v-m) / math.Abs(m)
		if d > worst {
			worst = d
		}
	}
	return worst
}
