package stats

import (
	"math"
	"sort"
)

// Spearman returns Spearman's rank correlation coefficient ρ of the paired
// samples — Pearson correlation of the rank transforms, with average ranks
// for ties. It complements Pearson in the Cout-vs-runtime experiment: rank
// correlation is insensitive to the (engine-specific) scale relationship
// between cost and time, so it isolates the monotonicity claim.
func Spearman(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return math.NaN()
	}
	return Pearson(ranks(xs), ranks(ys))
}

// ranks returns the 1-based fractional ranks of xs (ties get the average of
// the ranks they span).
func ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	out := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j < n && xs[idx[j]] == xs[idx[i]] {
			j++
		}
		// Average rank for the tie group [i, j).
		avg := (float64(i+1) + float64(j)) / 2
		for k := i; k < j; k++ {
			out[idx[k]] = avg
		}
		i = j
	}
	return out
}

// Kendall returns Kendall's τ-b rank correlation of the paired samples —
// the fraction of concordant minus discordant pairs, tie-corrected. O(n²);
// intended for the modest sample sizes of benchmark experiments.
func Kendall(xs, ys []float64) float64 {
	n := len(xs)
	if n != len(ys) || n < 2 {
		return math.NaN()
	}
	var concordant, discordant, tieX, tieY float64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dx := xs[i] - xs[j]
			dy := ys[i] - ys[j]
			switch {
			case dx == 0 && dy == 0:
				tieX++
				tieY++
			case dx == 0:
				tieX++
			case dy == 0:
				tieY++
			case dx*dy > 0:
				concordant++
			default:
				discordant++
			}
		}
	}
	total := float64(n*(n-1)) / 2
	den := math.Sqrt((total - tieX) * (total - tieY))
	if den == 0 {
		return math.NaN()
	}
	return (concordant - discordant) / den
}
