package plan

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/rdf"
	"repro/internal/store"
)

// buildCorrelatedStore creates data where the independence assumption is
// badly wrong: predicate pa and pb are perfectly correlated (every subject
// with pa=x also has pb=x), so |pa ⋈ pb on subject| = N, while independence
// predicts N·N/N = N as well... To produce a real gap we correlate
// *values*: subjects are split into groups; within a group everyone shares
// the same (a, b) combination, so joining on object via an intermediate
// variable explodes only for correlated pairs.
func buildCorrelatedStore(t testing.TB) *store.Store {
	t.Helper()
	b := store.NewBuilder()
	add := func(s, p, o rdf.Term) {
		t.Helper()
		if err := b.Add(rdf.NewTriple(s, p, o)); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(5))
	// 1000 people; tag (hobby) and city are perfectly correlated: hobby_i
	// occurs only in city_i. Independence predicts a hobby×city join to be
	// |hobby|·|city|/distinct ≈ uniform, but the true join is block-diagonal.
	for i := 0; i < 1000; i++ {
		p := iri(fmt.Sprintf("p%d", i))
		g := rng.Intn(10)
		add(p, iri("hobby"), iri(fmt.Sprintf("hobby%d", g)))
		add(p, iri("city"), iri(fmt.Sprintf("city%d", g)))
	}
	return b.Build()
}

func TestSamplingEstimatorCorrelatedJoin(t *testing.T) {
	st := buildCorrelatedStore(t)
	// ?x hobby H . ?y hobby H is fine for both; the correlated case:
	// ?p hobby ?h . ?p city ?c — join on ?p. True size: 1000 (each person
	// matches its own pair). Independence also gets this right (distinct
	// subjects). The interesting case is a *value* join:
	// ?p1 hobby ?h is irrelevant — use the star query per person but check
	// pairwise selectivity sampling matches the true join size.
	c := mustCompile(t, st, `SELECT * WHERE {
  ?p <http://x/hobby> ?h .
  ?q <http://x/city> ?c .
  ?p <http://x/city> ?c .
}`)
	se := NewSamplingEstimator(st, c, 0)
	// Pattern 1 and 2 join on ?c: true join size = sum over cities of
	// |q in city| * |p in city| = 10 groups ≈ 100² each ≈ 100k. Sampled
	// selectivity should reproduce that within sampling error.
	sel := se.pairSel[1][2]
	if sel < 0 {
		t.Fatal("patterns 1,2 share ?c but no selectivity sampled")
	}
	est := sel * 1000 * 1000
	// True size: Σ_g |city_g|² with ~100 per group ⇒ ≈ 100k (exact value
	// depends on the rng; recompute).
	counts := map[string]int{}
	cityID, _ := st.Dict().Lookup(iri("city"))
	ms, _ := st.Match(store.Pattern{P: cityID})
	for _, m := range ms {
		counts[fmt.Sprint(m.O)]++
	}
	truth := 0.0
	for _, n := range counts {
		truth += float64(n) * float64(n)
	}
	if est < truth*0.5 || est > truth*2 {
		t.Fatalf("sampled join estimate %.0f far from truth %.0f", est, truth)
	}
}

func TestSamplingEstimatorFullPipeline(t *testing.T) {
	st := buildIntroStore(t)
	c := mustCompile(t, st, `SELECT * WHERE {
  ?p <http://x/firstName> "Li" .
  ?p <http://x/livesIn> <http://x/China> .
  ?p a <http://x/Person> .
}`)
	se := NewSamplingEstimator(st, c, 0)
	p, err := Optimize(c, se)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Root.Patterns()) != 3 {
		t.Fatal("sampling-estimated plan incomplete")
	}
	// The correlated case: Li∧China co-occur heavily. The sampling
	// estimator's root cardinality should be close to the true result
	// (≈200 Li in China), where independence underestimates
	// (1000·distinct assumptions).
	ind, err := Optimize(c, NewEstimator(st))
	if err != nil {
		t.Fatal(err)
	}
	truth := trueResultSize(t, st)
	errSampling := ratio(p.EstCard, truth)
	errIndep := ratio(ind.EstCard, truth)
	if errSampling > errIndep*1.5 {
		t.Fatalf("sampling estimate (%.0f) worse than independence (%.0f) vs truth %.0f",
			p.EstCard, ind.EstCard, truth)
	}
}

func trueResultSize(t testing.TB, st *store.Store) float64 {
	t.Helper()
	d := st.Dict()
	li, ok1 := d.Lookup(rdf.NewLiteral("Li"))
	china, ok2 := d.Lookup(iri("China"))
	fn, _ := d.Lookup(iri("firstName"))
	liv, _ := d.Lookup(iri("livesIn"))
	if !ok1 || !ok2 {
		t.Fatal("terms missing")
	}
	named, _ := st.Match(store.Pattern{P: fn, O: li})
	n := 0.0
	for _, m := range named {
		if st.Count(store.Pattern{S: m.S, P: liv, O: china}) > 0 {
			n++
		}
	}
	return n
}

func ratio(a, b float64) float64 {
	if a == 0 || b == 0 {
		return 1e9
	}
	if a < b {
		return b / a
	}
	return a / b
}

func TestSamplingEstimatorMissingPattern(t *testing.T) {
	st := buildIntroStore(t)
	c := mustCompile(t, st, `SELECT * WHERE {
  ?p <http://x/firstName> "Zzyzx" .
  ?p <http://x/livesIn> ?c .
}`)
	se := NewSamplingEstimator(st, c, 0)
	p, err := Optimize(c, se)
	if err != nil {
		t.Fatal(err)
	}
	if p.EstCard != 0 {
		t.Fatalf("missing pattern should zero the estimate, got %v", p.EstCard)
	}
}

func TestSamplingEstimatorDisconnected(t *testing.T) {
	st := buildIntroStore(t)
	c := mustCompile(t, st, `SELECT * WHERE {
  ?p <http://x/firstName> "Li" .
  ?q <http://x/firstName> "John" .
}`)
	se := NewSamplingEstimator(st, c, 0)
	if se.pairSel[0][1] != -1 {
		t.Fatal("disconnected pair should have no selectivity")
	}
	p, err := Optimize(c, se)
	if err != nil {
		t.Fatal(err)
	}
	if p.EstCard <= 0 {
		t.Fatal("cross product should be positive")
	}
}

func TestSamplingSampleSizeBound(t *testing.T) {
	st := buildIntroStore(t)
	c := mustCompile(t, st, `SELECT * WHERE {
  ?p <http://x/firstName> ?n .
  ?p <http://x/livesIn> ?c .
}`)
	// Tiny sample must still yield a sane selectivity.
	se := NewSamplingEstimator(st, c, 8)
	sel := se.pairSel[0][1]
	if sel <= 0 || sel > 1 {
		t.Fatalf("selectivity = %v, want (0,1]", sel)
	}
}
