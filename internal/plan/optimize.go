package plan

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/sparql"
)

// MaxDPPatterns is the largest pattern count optimized with exact dynamic
// programming; larger queries fall back to the greedy algorithm. Subset DP
// enumerates 3^n splits, so 13 (≈1.6M splits) is a comfortable bound.
const MaxDPPatterns = 13

// Optimize returns the Cout-optimal join tree for c, computed by exact
// dynamic programming over connected subproblems when the query has at most
// MaxDPPatterns patterns, and by the greedy heuristic otherwise. For
// compositional-algebra queries the optimizer runs per BGP leaf; the tree
// above the leaves is fixed by the query text.
func Optimize(c *Compiled, est Model) (*Plan, error) {
	if c.Alg != nil {
		return planAlg(c, est, false)
	}
	if len(c.Patterns) <= MaxDPPatterns {
		return optimizeDP(c, est)
	}
	return OptimizeGreedy(c, est)
}

// planAlg optimizes every BGP leaf of the algebra tree and wraps the
// composed copy in a Plan with Root nil.
func planAlg(c *Compiled, est Model, greedy bool) (*Plan, error) {
	alg, err := optimizeAlg(c.Alg, c.Query, est, greedy)
	if err != nil {
		return nil, err
	}
	method := "dp"
	if greedy {
		method = "greedy"
	}
	return &Plan{
		Alg:       alg,
		EstCost:   alg.Cost,
		EstCard:   alg.Card,
		Signature: alg.Signature(),
		Method:    method,
	}, nil
}

type dpEntry struct {
	node *Node
	est  Set
}

// optimizeDP is a DPsub-style enumerator: for every subset of patterns it
// keeps the cheapest tree, preferring splits whose sides share a variable
// and falling back to cross products only when a subset is disconnected.
func optimizeDP(c *Compiled, est Model) (*Plan, error) {
	n := len(c.Patterns)
	if n == 0 {
		return nil, fmt.Errorf("plan: no patterns")
	}
	if n > 30 {
		return nil, fmt.Errorf("plan: too many patterns for DP (%d)", n)
	}
	full := uint32(1<<n) - 1
	table := make([]*dpEntry, 1<<n)
	// Leaves.
	for i := 0; i < n; i++ {
		cp := &c.Patterns[i]
		s := est.Leaf(*cp)
		table[1<<i] = &dpEntry{
			node: &Node{Leaf: cp, Card: s.Card, Cost: 0},
			est:  s,
		}
	}
	// Variable sets per mask for connectivity checks.
	varsOf := make([]map[sparql.Var]bool, 1<<n)
	for i := 0; i < n; i++ {
		vs := map[sparql.Var]bool{}
		for _, v := range c.Patterns[i].Vars() {
			vs[v] = true
		}
		varsOf[1<<i] = vs
	}
	for mask := uint32(1); mask <= full; mask++ {
		if bits.OnesCount32(mask) < 2 {
			continue
		}
		// Union variable set.
		vs := map[sparql.Var]bool{}
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				for v := range varsOf[1<<i] {
					vs[v] = true
				}
			}
		}
		varsOf[mask] = vs
		best := chooseBestSplit(est, mask, table, varsOf, true)
		if best == nil {
			// Disconnected subset: allow cross products.
			best = chooseBestSplit(est, mask, table, varsOf, false)
		}
		table[mask] = best
	}
	root := table[full]
	if root == nil {
		return nil, fmt.Errorf("plan: DP failed to cover all patterns")
	}
	return &Plan{
		Root:      root.node,
		EstCost:   root.node.Cost,
		EstCard:   root.node.Card,
		Signature: root.node.Signature(),
		Method:    "dp",
	}, nil
}

// chooseBestSplit scans all proper submask splits of mask; when
// requireShared is true, only splits whose sides share a variable qualify.
func chooseBestSplit(est Model, mask uint32, table []*dpEntry, varsOf []map[sparql.Var]bool, requireShared bool) *dpEntry {
	var best *dpEntry
	// Enumerate submasks; consider each unordered split once (sub < rest).
	for sub := (mask - 1) & mask; sub > 0; sub = (sub - 1) & mask {
		rest := mask &^ sub
		if sub > rest {
			continue
		}
		l, r := table[sub], table[rest]
		if l == nil || r == nil {
			continue
		}
		if requireShared && len(sharedVars(varsOf[sub], varsOf[rest])) == 0 {
			continue
		}
		joined := est.Join(l.est, r.est)
		cost := joined.Card + l.node.Cost + r.node.Cost
		if best == nil || cost < best.node.Cost ||
			(cost == best.node.Cost && tieBreak(l.node, r.node, best)) {
			best = &dpEntry{
				node: &Node{
					Left:  l.node,
					Right: r.node,
					Card:  joined.Card,
					Cost:  cost,
				},
				est: joined,
			}
		}
	}
	return best
}

// tieBreak makes DP deterministic when two splits have identical cost: the
// split with the lexicographically smaller signature wins.
func tieBreak(l, r *Node, best *dpEntry) bool {
	cand := (&Node{Left: l, Right: r}).Signature()
	return cand < best.node.Signature()
}

// OptimizeGreedy builds a join tree greedily: start from the
// smallest-cardinality pattern, then repeatedly join the relation that
// minimizes the resulting intermediate size, preferring connected joins.
// Used directly in the greedy-vs-DP ablation and as the fallback for
// queries beyond MaxDPPatterns.
func OptimizeGreedy(c *Compiled, est Model) (*Plan, error) {
	if c.Alg != nil {
		return planAlg(c, est, true)
	}
	n := len(c.Patterns)
	if n == 0 {
		return nil, fmt.Errorf("plan: no patterns")
	}
	type item struct {
		node *Node
		est  Set
		vars map[sparql.Var]bool
	}
	remaining := make([]*item, 0, n)
	for i := range c.Patterns {
		cp := &c.Patterns[i]
		s := est.Leaf(*cp)
		vs := map[sparql.Var]bool{}
		for _, v := range cp.Vars() {
			vs[v] = true
		}
		remaining = append(remaining, &item{
			node: &Node{Leaf: cp, Card: s.Card},
			est:  s,
			vars: vs,
		})
	}
	// Seed: smallest cardinality (ties: smallest pattern index).
	seedIdx := 0
	for i, it := range remaining {
		if it.est.Card < remaining[seedIdx].est.Card {
			seedIdx = i
		}
	}
	cur := remaining[seedIdx]
	remaining = append(remaining[:seedIdx], remaining[seedIdx+1:]...)
	for len(remaining) > 0 {
		bestIdx := -1
		bestCard := math.Inf(1)
		bestConnected := false
		for i, it := range remaining {
			connected := len(sharedVars(cur.vars, it.vars)) > 0
			if bestConnected && !connected {
				continue
			}
			j := est.Join(cur.est, it.est)
			if (connected && !bestConnected) || j.Card < bestCard {
				bestIdx, bestCard, bestConnected = i, j.Card, connected
			}
		}
		next := remaining[bestIdx]
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
		joined := est.Join(cur.est, next.est)
		node := &Node{
			Left:  cur.node,
			Right: next.node,
			Card:  joined.Card,
			Cost:  joined.Card + cur.node.Cost + next.node.Cost,
		}
		vars := map[sparql.Var]bool{}
		for v := range cur.vars {
			vars[v] = true
		}
		for v := range next.vars {
			vars[v] = true
		}
		cur = &item{node: node, est: joined, vars: vars}
	}
	return &Plan{
		Root:      cur.node,
		EstCost:   cur.node.Cost,
		EstCard:   cur.node.Card,
		Signature: cur.node.Signature(),
		Method:    "greedy",
	}, nil
}
