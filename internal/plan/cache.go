package plan

import (
	"sort"
	"strings"

	"repro/internal/sparql"
)

// BindingSignature returns a canonical string identity for a parameter
// binding: the parameter names in sorted order, each with its term in
// N-Triples syntax. Two bindings have equal signatures iff they substitute
// the same terms for the same parameters — the binding-side analogue of
// Node.Signature's plan identity.
func BindingSignature(b sparql.Binding) string {
	if len(b) == 0 {
		return ""
	}
	names := make([]string, 0, len(b))
	for p := range b {
		names = append(names, string(p))
	}
	sort.Strings(names)
	var sb strings.Builder
	for i, n := range names {
		if i > 0 {
			sb.WriteByte('\x1f')
		}
		sb.WriteString(n)
		sb.WriteByte('=')
		sb.WriteString(b[sparql.Param(n)].Key())
	}
	return sb.String()
}

// CacheKey is the plan-cache key of one (template, binding) execution:
// the canonical template text joined with the binding's signature. Against
// an immutable store, equal keys compile to identical Compiled queries and
// optimize to identical plans, so cached entries can be reused without
// re-running DPsub.
func CacheKey(templateText string, b sparql.Binding) string {
	return templateText + "\x00" + BindingSignature(b)
}

// CacheKeyVariant is CacheKey extended with an engine-variant tag. Lowering
// options that change the physical plan (e.g. the leapfrog multiway join)
// must not share cache entries with the default lowering of the same
// (template, binding) pair; the variant string keeps them apart. An empty
// variant yields exactly CacheKey.
func CacheKeyVariant(templateText string, b sparql.Binding, variant string) string {
	k := CacheKey(templateText, b)
	if variant == "" {
		return k
	}
	return k + "\x00" + variant
}
