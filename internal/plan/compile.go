// Package plan implements the logical query-plan layer: compilation of a
// bound SPARQL query into a join graph, cardinality estimation backed by
// exact store statistics, the classical Cout cost function ("sum of
// intermediate result sizes", Moerkotte), and two join-ordering optimizers —
// an exact dynamic-programming one (DPsize) and a greedy one for ablation.
//
// Plan identity is captured by a canonical Signature string: the paper's
// conditions (a) and (c) — same/different optimal plan across parameter
// bindings — are decided by comparing signatures.
package plan

import (
	"fmt"

	"repro/internal/dict"
	"repro/internal/sparql"
	"repro/internal/store"
)

// CompiledPattern is one triple pattern translated to the ID space.
type CompiledPattern struct {
	Index   int           // position in the query's WHERE clause
	Pat     store.Pattern // bound positions carry IDs; variables are None
	VarS    sparql.Var    // variable name per position ("" if bound)
	VarP    sparql.Var
	VarO    sparql.Var
	Missing bool // a constant term does not occur in the dictionary ⇒ empty
}

// Vars returns the distinct variables of the pattern.
func (cp CompiledPattern) Vars() []sparql.Var {
	var out []sparql.Var
	seen := map[sparql.Var]bool{}
	for _, v := range []sparql.Var{cp.VarS, cp.VarP, cp.VarO} {
		if v != "" && !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

// Compiled is a query lowered to the ID space, ready for optimization and
// execution.
type Compiled struct {
	Query    *sparql.Query
	Patterns []CompiledPattern
}

// Compile lowers a fully bound query (no parameters) onto a store's
// dictionary. Constant terms missing from the dictionary are legal — the
// pattern is marked Missing and has cardinality zero.
func Compile(q *sparql.Query, st *store.Store) (*Compiled, error) {
	if ps := q.Params(); len(ps) != 0 {
		return nil, fmt.Errorf("plan: query has unbound parameters %v", ps)
	}
	if len(q.Where) == 0 {
		return nil, fmt.Errorf("plan: empty WHERE clause")
	}
	c := &Compiled{Query: q}
	d := st.Dict()
	for i, tp := range q.Where {
		cp := CompiledPattern{Index: i}
		assign := func(n sparql.Node, id *dict.ID, v *sparql.Var) {
			switch n.Kind {
			case sparql.NodeVar:
				*v = n.Var
			case sparql.NodeTerm:
				got, ok := d.Lookup(n.Term)
				if !ok {
					cp.Missing = true
					return
				}
				*id = got
			}
		}
		assign(tp.S, &cp.Pat.S, &cp.VarS)
		assign(tp.P, &cp.Pat.P, &cp.VarP)
		assign(tp.O, &cp.Pat.O, &cp.VarO)
		c.Patterns = append(c.Patterns, cp)
	}
	return c, nil
}

// shareVar reports whether two patterns share at least one variable.
func shareVar(a, b CompiledPattern) bool {
	for _, va := range a.Vars() {
		for _, vb := range b.Vars() {
			if va == vb {
				return true
			}
		}
	}
	return false
}

// sharedVars returns the variables common to both var sets.
func sharedVars(a, b map[sparql.Var]bool) []sparql.Var {
	var out []sparql.Var
	for v := range a {
		if b[v] {
			out = append(out, v)
		}
	}
	return out
}
