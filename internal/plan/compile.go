// Package plan implements the logical query-plan layer: compilation of a
// bound SPARQL query into a join graph, cardinality estimation backed by
// exact store statistics, the classical Cout cost function ("sum of
// intermediate result sizes", Moerkotte), and two join-ordering optimizers —
// an exact dynamic-programming one (DPsize) and a greedy one for ablation.
//
// Plan identity is captured by a canonical Signature string: the paper's
// conditions (a) and (c) — same/different optimal plan across parameter
// bindings — are decided by comparing signatures.
package plan

import (
	"fmt"

	"repro/internal/dict"
	"repro/internal/sparql"
	"repro/internal/store"
)

// CompiledPattern is one triple pattern translated to the ID space.
type CompiledPattern struct {
	Index   int           // global position in compile order (WHERE clause order for flat queries)
	Pat     store.Pattern // bound positions carry IDs; variables are None
	VarS    sparql.Var    // variable name per position ("" if bound)
	VarP    sparql.Var
	VarO    sparql.Var
	Missing bool // a constant term does not occur in the dictionary ⇒ empty
}

// Vars returns the distinct variables of the pattern.
func (cp CompiledPattern) Vars() []sparql.Var {
	var out []sparql.Var
	seen := map[sparql.Var]bool{}
	for _, v := range []sparql.Var{cp.VarS, cp.VarP, cp.VarO} {
		if v != "" && !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

// Compiled is a query lowered to the ID space, ready for optimization and
// execution.
//
// For flat BGP queries, Patterns is the WHERE clause and Alg is nil. For
// compositional-algebra queries (Query.HasAlgebra), Alg holds the logical
// algebra tree whose BGP leaves own the per-leaf pattern slices, and
// Patterns is the concatenation of every leaf's patterns in global index
// order — informational only; execution follows Alg.
type Compiled struct {
	Query    *sparql.Query
	Patterns []CompiledPattern
	Alg      *AlgNode
}

// Compile lowers a fully bound query (no parameters) onto a store's
// dictionary. Constant terms missing from the dictionary are legal — the
// pattern is marked Missing and has cardinality zero.
func Compile(q *sparql.Query, st store.Source) (*Compiled, error) {
	if ps := q.Params(); len(ps) != 0 {
		return nil, fmt.Errorf("plan: query has unbound parameters %v", ps)
	}
	if q.Root().Empty() {
		return nil, fmt.Errorf("plan: empty WHERE clause")
	}
	c := &Compiled{Query: q}
	if q.HasAlgebra() {
		idx := 0
		alg, err := compileGroup(q.Root(), st, &idx)
		if err != nil {
			return nil, err
		}
		c.Alg = alg
		c.Patterns = collectPatterns(alg, nil)
		return c, nil
	}
	idx := 0
	c.Patterns = compilePatterns(q.Where, st, &idx)
	return c, nil
}

// compilePatterns lowers one basic graph pattern onto the dictionary,
// numbering patterns from *idx onward (incrementing it).
func compilePatterns(pats []sparql.TriplePattern, st store.Source, idx *int) []CompiledPattern {
	d := st.Dict()
	out := make([]CompiledPattern, 0, len(pats))
	for _, tp := range pats {
		cp := CompiledPattern{Index: *idx}
		*idx++
		assign := func(n sparql.Node, id *dict.ID, v *sparql.Var) {
			switch n.Kind {
			case sparql.NodeVar:
				*v = n.Var
			case sparql.NodeTerm:
				got, ok := d.Lookup(n.Term)
				if !ok {
					cp.Missing = true
					return
				}
				*id = got
			}
		}
		assign(tp.S, &cp.Pat.S, &cp.VarS)
		assign(tp.P, &cp.Pat.P, &cp.VarP)
		assign(tp.O, &cp.Pat.O, &cp.VarO)
		out = append(out, cp)
	}
	return out
}

// collectPatterns appends every BGP leaf's compiled patterns in tree
// (= global index) order.
func collectPatterns(a *AlgNode, out []CompiledPattern) []CompiledPattern {
	switch a.Kind {
	case AlgBGP:
		out = append(out, a.Compiled...)
	case AlgJoin, AlgLeftJoin:
		out = collectPatterns(a.Left, out)
		out = collectPatterns(a.Right, out)
	case AlgUnion:
		for _, br := range a.Branches {
			out = collectPatterns(br, out)
		}
	}
	return out
}

// shareVar reports whether two patterns share at least one variable.
func shareVar(a, b CompiledPattern) bool {
	for _, va := range a.Vars() {
		for _, vb := range b.Vars() {
			if va == vb {
				return true
			}
		}
	}
	return false
}

// sharedVars returns the variables common to both var sets.
func sharedVars(a, b map[sparql.Var]bool) []sparql.Var {
	var out []sparql.Var
	for v := range a {
		if b[v] {
			out = append(out, v)
		}
	}
	return out
}
