package plan

import (
	"sort"

	"repro/internal/sparql"
)

// This file decides when a compiled BGP is handed to the worst-case-optimal
// leapfrog triejoin instead of the lowered binary join tree, and fixes the
// global variable order its trie cursors iterate in. The hexastore's six
// permutations guarantee that for every pattern there is an index whose
// sort key is the pattern's constants followed by its (at most three)
// variable positions in any requested order, so the only real eligibility
// questions are structural.

// leapfrogNode replaces binaryRoot with a single PhysLeapfrog node when the
// compiled BGP is eligible:
//
//   - at least three patterns (binary plans are already optimal for fewer);
//   - no pattern marked Missing (a constant absent from the dictionary makes
//     the result empty; the binary plan handles that with zero work);
//   - every pattern has at least one variable and no variable repeated
//     within one pattern (a repeated variable would need a self-equality
//     the trie cursor cannot express as a sort prefix);
//   - some hub variable occurs in at least three patterns (star or cyclic
//     shape — the case where binary plans materialize large intermediates);
//   - the patterns are connected through shared variables (a disconnected
//     BGP is a cross product, which leapfrog would handle but a binary plan
//     handles no worse).
//
// The node inherits schema and cardinality from binaryRoot, so the epilogue
// built on top of it is identical to the binary plan's. Returns nil when
// ineligible.
func leapfrogNode(c *Compiled, binaryRoot *PhysNode) *PhysNode {
	if c == nil || len(c.Patterns) < 3 {
		return nil
	}
	occ := map[sparql.Var]int{}   // variable -> number of patterns containing it
	first := map[sparql.Var]int{} // variable -> first occurrence rank (pattern, then S,P,O)
	rank := 0
	for i := range c.Patterns {
		cp := &c.Patterns[i]
		if cp.Missing {
			return nil
		}
		seen := map[sparql.Var]bool{}
		for _, v := range [3]sparql.Var{cp.VarS, cp.VarP, cp.VarO} {
			if v == "" {
				continue
			}
			if seen[v] {
				return nil // repeated variable within one pattern
			}
			seen[v] = true
			occ[v]++
			if _, ok := first[v]; !ok {
				first[v] = rank
			}
			rank++
		}
		if len(seen) == 0 {
			return nil // fully bound pattern: nothing for the trie to walk
		}
	}
	hub := false
	for _, n := range occ {
		if n >= 3 {
			hub = true
			break
		}
	}
	if !hub {
		return nil
	}
	if !connectedByVars(c.Patterns) {
		return nil
	}
	// Global trie order: most-shared variables first (the hub leads, so the
	// tightest intersection happens at the top of the trie), ties broken by
	// first occurrence for determinism.
	vars := make([]sparql.Var, 0, len(occ))
	for v := range occ {
		vars = append(vars, v)
	}
	sort.Slice(vars, func(i, j int) bool {
		a, b := vars[i], vars[j]
		if occ[a] != occ[b] {
			return occ[a] > occ[b]
		}
		return first[a] < first[b]
	})
	leaves := make([]*CompiledPattern, len(c.Patterns))
	for i := range c.Patterns {
		leaves[i] = &c.Patterns[i]
	}
	return &PhysNode{
		Op:       PhysLeapfrog,
		Vars:     binaryRoot.Vars,
		Card:     binaryRoot.Card,
		Leaves:   leaves,
		TrieVars: vars,
	}
}

// connectedByVars reports whether the patterns form one connected component
// under the shares-a-variable relation.
func connectedByVars(pats []CompiledPattern) bool {
	n := len(pats)
	if n == 0 {
		return false
	}
	visited := make([]bool, n)
	stack := []int{0}
	visited[0] = true
	count := 1
	for len(stack) > 0 {
		i := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for j := 0; j < n; j++ {
			if !visited[j] && shareVar(pats[i], pats[j]) {
				visited[j] = true
				count++
				stack = append(stack, j)
			}
		}
	}
	return count == n
}
