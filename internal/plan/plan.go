package plan

import (
	"fmt"
	"strings"
)

// Node is a node of a logical join tree. A leaf is a triple-pattern scan; an
// inner node is a join. Card and Cost carry the estimator's output
// cardinality and accumulated Cout.
//
// Cout follows the paper's definition exactly:
//
//	Cout(T) = 0                                  if T is a scan
//	Cout(T) = |T| + Cout(T1) + Cout(T2)          if T = T1 ⋈ T2
//
// so a plan's cost is the sum of the sizes of all intermediate (and final)
// join results, and scans are free.
type Node struct {
	Leaf        *CompiledPattern // non-nil for scan leaves
	Left, Right *Node            // non-nil for joins
	Card        float64          // estimated output cardinality |T|
	Cost        float64          // estimated Cout(T)
}

// IsLeaf reports whether n is a scan.
func (n *Node) IsLeaf() bool { return n.Leaf != nil }

// Patterns returns the indexes of all patterns under n, in ascending order
// of first appearance (left to right).
func (n *Node) Patterns() []int {
	var out []int
	var walk func(*Node)
	walk = func(x *Node) {
		if x == nil {
			return
		}
		if x.IsLeaf() {
			out = append(out, x.Leaf.Index)
			return
		}
		walk(x.Left)
		walk(x.Right)
	}
	walk(n)
	return out
}

// Signature returns a canonical string identifying the plan's join shape
// over pattern indexes. Join commutativity is canonicalized (the two
// children are ordered lexicographically), so T1 ⋈ T2 and T2 ⋈ T1 share a
// signature, but different association shapes do not. Signatures implement
// the paper's plan-equality test in conditions (a) and (c).
func (n *Node) Signature() string {
	if n == nil {
		return ""
	}
	if n.IsLeaf() {
		return fmt.Sprintf("p%d", n.Leaf.Index)
	}
	l, r := n.Left.Signature(), n.Right.Signature()
	if l > r {
		l, r = r, l
	}
	return "(" + l + "*" + r + ")"
}

// String renders the tree with cardinalities, for debugging and reports.
func (n *Node) String() string {
	var b strings.Builder
	n.render(&b, 0)
	return b.String()
}

func (n *Node) render(b *strings.Builder, depth int) {
	indent := strings.Repeat("  ", depth)
	if n.IsLeaf() {
		fmt.Fprintf(b, "%sScan p%d %v card=%.0f\n", indent, n.Leaf.Index, n.Leaf.Pat, n.Card)
		return
	}
	fmt.Fprintf(b, "%sJoin card=%.0f cost=%.0f\n", indent, n.Card, n.Cost)
	n.Left.render(b, depth+1)
	n.Right.render(b, depth+1)
}

// Plan is the result of optimization. Exactly one of Root (flat BGP
// queries) and Alg (compositional-algebra queries) is non-nil.
type Plan struct {
	Root      *Node
	Alg       *AlgNode
	EstCost   float64 // estimated Cout of the whole plan
	EstCard   float64 // estimated result cardinality
	Signature string  // canonical plan identity
	Method    string  // "dp" or "greedy"
}

// String renders the plan.
func (p *Plan) String() string {
	var body string
	if p.Alg != nil {
		var b strings.Builder
		p.Alg.render(&b, 0)
		body = b.String()
	} else {
		body = p.Root.String()
	}
	return fmt.Sprintf("plan[%s] cost=%.1f card=%.1f sig=%s\n%s",
		p.Method, p.EstCost, p.EstCard, p.Signature, body)
}
