package plan

import (
	"fmt"
	"strings"

	"repro/internal/sparql"
	"repro/internal/store"
)

// This file implements the logical algebra layer above the join-ordering
// optimizer: queries using OPTIONAL, UNION or aggregation compile into a
// tree whose leaves are basic graph patterns and whose interior nodes
// are Join, LeftJoin and Union. DPsub (or the greedy fallback) runs
// per BGP leaf exactly as it does for flat queries; the composition
// operators above the leaves have fixed shapes dictated by the query
// text, so there is nothing for the optimizer to enumerate there.
// Aggregation (GROUP BY / aggregates / HAVING) always sits at the root
// of the WHERE result and is appended by the lowering epilogue.

// AlgKind discriminates algebra node kinds.
type AlgKind uint8

// Algebra node kinds.
const (
	// AlgBGP is a basic-graph-pattern leaf, optimized by DPsub.
	AlgBGP AlgKind = iota
	// AlgJoin is the inner join of two sub-expressions (a group's BGP
	// joined with its UNION blocks).
	AlgJoin
	// AlgLeftJoin is the left outer join of Left with Right (OPTIONAL).
	AlgLeftJoin
	// AlgUnion is the ordered concatenation of its branches, padding
	// branch-local variables with the unbound sentinel.
	AlgUnion
)

// String names the kind for rendering.
func (k AlgKind) String() string {
	switch k {
	case AlgBGP:
		return "BGP"
	case AlgJoin:
		return "Join"
	case AlgLeftJoin:
		return "LeftJoin"
	case AlgUnion:
		return "Union"
	default:
		return fmt.Sprintf("alg(%d)", uint8(k))
	}
}

// AlgNode is one node of the logical algebra tree. Pattern indexes are
// global across the whole query (compile order), so signatures and
// EXPLAIN output stay unambiguous.
type AlgNode struct {
	Kind     AlgKind
	Patterns []sparql.TriplePattern // AlgBGP: the leaf's source patterns
	Compiled []CompiledPattern      // AlgBGP: compiled onto the dictionary
	Filters  []sparql.Filter        // group-scoped filters over this node's output
	Left     *AlgNode               // AlgJoin / AlgLeftJoin
	Right    *AlgNode
	Branches []*AlgNode // AlgUnion

	// Optimizer output (set on the copy stored in Plan.Alg):
	Root *Node   // AlgBGP: the DPsub-optimized join tree over Compiled
	Card float64 // coarse composed cardinality estimate (informational)
	Cost float64 // coarse composed Cout estimate (informational)
}

// Vars returns the node's output schema: left/BGP columns first, then
// the new columns each composed input introduces, mirroring the physical
// operators' schemas exactly.
func (a *AlgNode) Vars() []sparql.Var {
	switch a.Kind {
	case AlgBGP:
		var out []sparql.Var
		for i := range a.Compiled {
			for _, v := range a.Compiled[i].Vars() {
				if varIndex(out, v) < 0 {
					out = append(out, v)
				}
			}
		}
		return out
	case AlgJoin, AlgLeftJoin:
		return joinSchema(a.Left.Vars(), a.Right.Vars())
	case AlgUnion:
		var out []sparql.Var
		for _, br := range a.Branches {
			out = joinSchema(out, br.Vars())
		}
		return out
	}
	return nil
}

// Signature composes a canonical identity string: BGP leaves use their
// join-tree signature, composition nodes tag their shape.
func (a *AlgNode) Signature() string {
	switch a.Kind {
	case AlgBGP:
		if a.Root != nil {
			return a.Root.Signature()
		}
		var b strings.Builder
		b.WriteString("bgp(")
		for i := range a.Compiled {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "p%d", a.Compiled[i].Index)
		}
		b.WriteByte(')')
		return b.String()
	case AlgJoin:
		return "jn(" + a.Left.Signature() + "*" + a.Right.Signature() + ")"
	case AlgLeftJoin:
		return "lj(" + a.Left.Signature() + "," + a.Right.Signature() + ")"
	case AlgUnion:
		parts := make([]string, len(a.Branches))
		for i, br := range a.Branches {
			parts[i] = br.Signature()
		}
		return "un(" + strings.Join(parts, "|") + ")"
	}
	return "?"
}

// render writes the optimized algebra tree for Plan.String.
func (a *AlgNode) render(b *strings.Builder, depth int) {
	indent := strings.Repeat("  ", depth)
	fmt.Fprintf(b, "%s%s card=%.0f cost=%.0f", indent, a.Kind, a.Card, a.Cost)
	for _, f := range a.Filters {
		fmt.Fprintf(b, " %s", f)
	}
	b.WriteString("\n")
	switch a.Kind {
	case AlgBGP:
		if a.Root != nil {
			a.Root.render(b, depth+1)
		}
	case AlgJoin, AlgLeftJoin:
		a.Left.render(b, depth+1)
		a.Right.render(b, depth+1)
	case AlgUnion:
		for _, br := range a.Branches {
			br.render(b, depth+1)
		}
	}
}

// compileGroup lowers a group graph pattern onto the dictionary,
// producing the algebra expression Join(BGP, unions...) left-joined with
// each optional, with the group's filters attached to the expression
// root. idx numbers patterns globally in compile order.
func compileGroup(g *sparql.Group, st store.Source, idx *int) (*AlgNode, error) {
	var expr *AlgNode
	if len(g.Patterns) > 0 {
		leaf, err := compileBGP(g.Patterns, st, idx)
		if err != nil {
			return nil, err
		}
		expr = leaf
	}
	for _, u := range g.Unions {
		un := &AlgNode{Kind: AlgUnion}
		for _, br := range u.Branches {
			be, err := compileGroup(br, st, idx)
			if err != nil {
				return nil, err
			}
			un.Branches = append(un.Branches, be)
		}
		if expr == nil {
			expr = un
		} else {
			expr = &AlgNode{Kind: AlgJoin, Left: expr, Right: un}
		}
	}
	for _, o := range g.Optionals {
		if expr == nil {
			return nil, fmt.Errorf("plan: OPTIONAL requires a preceding pattern in its group")
		}
		oe, err := compileGroup(o, st, idx)
		if err != nil {
			return nil, err
		}
		expr = &AlgNode{Kind: AlgLeftJoin, Left: expr, Right: oe}
	}
	if expr == nil {
		return nil, fmt.Errorf("plan: empty group graph pattern")
	}
	expr.Filters = append(expr.Filters, g.Filters...)
	return expr, nil
}

// compileBGP compiles one basic graph pattern leaf.
func compileBGP(pats []sparql.TriplePattern, st store.Source, idx *int) (*AlgNode, error) {
	leaf := &AlgNode{Kind: AlgBGP, Patterns: pats}
	leaf.Compiled = compilePatterns(pats, st, idx)
	return leaf, nil
}

// optimizeAlg runs the join-ordering optimizer over every BGP leaf and
// composes the per-leaf plans. It returns a copy of the tree (the
// compiled tree stays reusable across option sets) with Root/Card/Cost
// filled in. The composition estimates are deliberately coarse — they
// are informational; no optimization choice depends on them.
func optimizeAlg(a *AlgNode, q *sparql.Query, est Model, greedy bool) (*AlgNode, error) {
	out := &AlgNode{Kind: a.Kind, Patterns: a.Patterns, Compiled: a.Compiled, Filters: a.Filters}
	switch a.Kind {
	case AlgBGP:
		sub := &Compiled{Query: q, Patterns: out.Compiled}
		var (
			p   *Plan
			err error
		)
		if greedy {
			p, err = OptimizeGreedy(sub, est)
		} else {
			p, err = Optimize(sub, est)
		}
		if err != nil {
			return nil, err
		}
		out.Root = p.Root
		out.Card = p.EstCard
		out.Cost = p.EstCost
	case AlgJoin, AlgLeftJoin:
		l, err := optimizeAlg(a.Left, q, est, greedy)
		if err != nil {
			return nil, err
		}
		r, err := optimizeAlg(a.Right, q, est, greedy)
		if err != nil {
			return nil, err
		}
		out.Left, out.Right = l, r
		if a.Kind == AlgLeftJoin {
			// Every outer row emits at least once.
			out.Card = l.Card
		} else if l.Card > r.Card {
			out.Card = l.Card
		} else {
			out.Card = r.Card
		}
		out.Cost = out.Card + l.Cost + r.Cost
	case AlgUnion:
		for _, br := range a.Branches {
			ob, err := optimizeAlg(br, q, est, greedy)
			if err != nil {
				return nil, err
			}
			out.Branches = append(out.Branches, ob)
			out.Card += ob.Card
			out.Cost += ob.Cost
		}
		out.Cost += out.Card
	}
	return out, nil
}
