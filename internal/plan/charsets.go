package plan

import (
	"sort"

	"repro/internal/dict"
	"repro/internal/sparql"
	"repro/internal/store"
)

// CharacteristicSets are the RDF-specific statistics of Neumann & Moerkotte
// ("Characteristic sets: Accurate cardinality estimation for RDF queries
// with multiple joins", ICDE 2011): the distinct sets of predicates
// attached to subjects, with occurrence counts. They answer subject-star
// cardinalities ("how many subjects have predicates {p1,…,pk}, and how many
// result rows does the star produce") essentially exactly, which is the
// dominant query shape in the paper's workloads (Q4 is a product star; the
// intro example is a person star).
type CharacteristicSets struct {
	sets []charset
	// predCount[p] = total triples with predicate p (for per-predicate
	// multiplicity).
	predCount map[dict.ID]int
}

// charset is one characteristic set: a sorted predicate list, the number of
// distinct subjects exhibiting exactly this set, and per-predicate triple
// totals among those subjects (for duplicate-aware star cardinality).
type charset struct {
	preds    []dict.ID
	subjects int
	// occurrences[i] = total triples with preds[i] among these subjects
	// (≥ subjects when a predicate is multi-valued).
	occurrences []int
}

// BuildCharacteristicSets scans the store (SPO order: triples grouped by
// subject) and aggregates the characteristic sets.
func BuildCharacteristicSets(st store.Source) *CharacteristicSets {
	cs := &CharacteristicSets{predCount: map[dict.ID]int{}}
	all, _ := st.Match(store.Pattern{}) // SPO order: grouped by subject
	type key string
	agg := map[key]*charset{}
	var encode func(preds []dict.ID, counts []int) key
	encode = func(preds []dict.ID, _ []int) key {
		b := make([]byte, 0, len(preds)*4)
		for _, p := range preds {
			b = append(b, byte(p), byte(p>>8), byte(p>>16), byte(p>>24))
		}
		return key(b)
	}
	flush := func(preds []dict.ID, counts []int) {
		if len(preds) == 0 {
			return
		}
		k := encode(preds, counts)
		c, ok := agg[k]
		if !ok {
			c = &charset{
				preds:       append([]dict.ID(nil), preds...),
				occurrences: make([]int, len(preds)),
			}
			agg[k] = c
		}
		c.subjects++
		for i, n := range counts {
			c.occurrences[i] += n
		}
	}
	var preds []dict.ID
	var counts []int
	var curS dict.ID
	for i, tr := range all {
		cs.predCount[tr.P]++
		if i == 0 || tr.S != curS {
			flush(preds, counts)
			preds = preds[:0]
			counts = counts[:0]
			curS = tr.S
		}
		// SPO order also groups by predicate within a subject.
		if n := len(preds); n > 0 && preds[n-1] == tr.P {
			counts[n-1]++
		} else {
			preds = append(preds, tr.P)
			counts = append(counts, 1)
		}
	}
	flush(preds, counts)
	for _, c := range agg {
		cs.sets = append(cs.sets, *c)
	}
	// Deterministic order (by first predicate, then length).
	sort.Slice(cs.sets, func(i, j int) bool {
		a, b := cs.sets[i], cs.sets[j]
		for k := 0; k < len(a.preds) && k < len(b.preds); k++ {
			if a.preds[k] != b.preds[k] {
				return a.preds[k] < b.preds[k]
			}
		}
		return len(a.preds) < len(b.preds)
	})
	return cs
}

// NumSets returns the number of distinct characteristic sets.
func (cs *CharacteristicSets) NumSets() int { return len(cs.sets) }

// StarCardinality estimates the result cardinality of a subject star over
// the given predicates (all with unbound objects): the sum over all
// characteristic sets that are supersets of the query predicates of
// subjects × ∏ per-predicate multiplicity. For stars without object
// constraints the estimate is exact.
func (cs *CharacteristicSets) StarCardinality(preds []dict.ID) float64 {
	if len(preds) == 0 {
		return 0
	}
	q := append([]dict.ID(nil), preds...)
	sort.Slice(q, func(i, j int) bool { return q[i] < q[j] })
	total := 0.0
	for _, c := range cs.sets {
		// Superset test + collect multiplicities (c.preds is sorted).
		rows := float64(c.subjects)
		matched := 0
		j := 0
		for _, want := range q {
			for j < len(c.preds) && c.preds[j] < want {
				j++
			}
			if j >= len(c.preds) || c.preds[j] != want {
				break
			}
			rows *= float64(c.occurrences[j]) / float64(c.subjects)
			matched++
			j++
		}
		if matched == len(q) {
			total += rows
		}
	}
	return total
}

// StarSubjects returns the number of distinct subjects having at least the
// given predicates.
func (cs *CharacteristicSets) StarSubjects(preds []dict.ID) float64 {
	if len(preds) == 0 {
		return 0
	}
	q := append([]dict.ID(nil), preds...)
	sort.Slice(q, func(i, j int) bool { return q[i] < q[j] })
	total := 0.0
	for _, c := range cs.sets {
		j := 0
		matched := 0
		for _, want := range q {
			for j < len(c.preds) && c.preds[j] < want {
				j++
			}
			if j >= len(c.preds) || c.preds[j] != want {
				break
			}
			matched++
			j++
		}
		if matched == len(q) {
			total += float64(c.subjects)
		}
	}
	return total
}

// CharsetEstimator is a Model that answers subject-star sub-plans from
// characteristic sets and delegates everything else to the base Estimator.
// It demonstrates the third estimation strategy in the ablation suite
// (independence / sampling / characteristic sets).
type CharsetEstimator struct {
	base *Estimator
	cs   *CharacteristicSets
	// starPreds[i] = predicate of pattern i when it is star-eligible:
	// subject variable, bound predicate, unbound object variable.
	starPreds []dict.ID
	// starVar[i] = the subject variable of star-eligible pattern i.
	starVar []sparql.Var
}

// NewCharsetEstimator builds the estimator for compiled query c.
func NewCharsetEstimator(st store.Source, cs *CharacteristicSets, c *Compiled) *CharsetEstimator {
	e := &CharsetEstimator{
		base:      NewEstimator(st),
		cs:        cs,
		starPreds: make([]dict.ID, len(c.Patterns)),
		starVar:   make([]sparql.Var, len(c.Patterns)),
	}
	for i, cp := range c.Patterns {
		if cp.VarS != "" && cp.Pat.P != dict.None && cp.VarO != "" && cp.VarS != cp.VarO && !cp.Missing {
			e.starPreds[i] = cp.Pat.P
			e.starVar[i] = cp.VarS
		}
	}
	return e
}

// Leaf delegates to the exact base estimator.
func (e *CharsetEstimator) Leaf(cp CompiledPattern) Set { return e.base.Leaf(cp) }

// Join answers pure subject-star unions from characteristic sets and falls
// back to the independence model otherwise.
func (e *CharsetEstimator) Join(a, b Set) Set {
	out := joinSets(a, b)
	// Star-eligible: every pattern on both sides is a star pattern over
	// the same subject variable.
	var v sparql.Var
	var preds []dict.ID
	ok := true
	for _, i := range maskIndexes(a.Mask | b.Mask) {
		if i >= len(e.starPreds) || e.starPreds[i] == dict.None {
			ok = false
			break
		}
		if v == "" {
			v = e.starVar[i]
		} else if e.starVar[i] != v {
			ok = false
			break
		}
		preds = append(preds, e.starPreds[i])
	}
	if ok && len(preds) >= 2 {
		card := e.cs.StarCardinality(preds)
		out.Card = card
		if d, present := out.Distinct[v]; present {
			subj := e.cs.StarSubjects(preds)
			if subj < d {
				out.Distinct[v] = subj
			}
		}
		for vv, d := range out.Distinct {
			if d > out.Card {
				out.Distinct[vv] = out.Card
			}
		}
	}
	return out
}
