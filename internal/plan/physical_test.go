package plan

import (
	"strings"
	"testing"

	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/store"
)

const physNS = "http://x/"

func physIRI(n string) rdf.Term { return rdf.NewIRI(physNS + n) }

func buildPhysStore(t *testing.T) *store.Store {
	t.Helper()
	b := store.NewBuilder()
	add := func(s, p, o rdf.Term) {
		t.Helper()
		if err := b.Add(rdf.NewTriple(s, p, o)); err != nil {
			t.Fatal(err)
		}
	}
	add(physIRI("alice"), physIRI("knows"), physIRI("bob"))
	add(physIRI("bob"), physIRI("knows"), physIRI("carol"))
	add(physIRI("alice"), physIRI("age"), rdf.NewInteger(30))
	add(physIRI("bob"), physIRI("age"), rdf.NewInteger(17))
	add(physIRI("carol"), physIRI("age"), rdf.NewInteger(45))
	add(physIRI("post1"), physIRI("creator"), physIRI("bob"))
	add(physIRI("post1"), physIRI("date"), rdf.NewTypedLiteral("2013-01-05", rdf.XSDDate))
	return b.Build()
}

func lowerQuery(t *testing.T, st *store.Store, src string, opts PhysOptions) (*Physical, *Compiled) {
	t.Helper()
	c, err := Compile(sparql.MustParse(src), st)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Optimize(c, NewEstimator(st))
	if err != nil {
		t.Fatal(err)
	}
	ph, err := Lower(c, p, opts)
	if err != nil {
		t.Fatal(err)
	}
	return ph, c
}

// countOps returns how many nodes of each kind the tree contains.
func countOps(n *PhysNode, into map[PhysOp]int) {
	if n == nil {
		return
	}
	into[n.Op]++
	countOps(n.Left, into)
	countOps(n.Right, into)
}

func TestLowerSingleScan(t *testing.T) {
	st := buildPhysStore(t)
	ph, _ := lowerQuery(t, st, `SELECT * WHERE { ?s <http://x/knows> ?o . }`, PhysOptions{})
	if ph.Root.Op != PhysIndexScan {
		t.Fatalf("root = %s, want IndexScan\n%s", ph.Root.Op, ph)
	}
	if len(ph.Root.Vars) != 2 || ph.Root.Vars[0] != "s" || ph.Root.Vars[1] != "o" {
		t.Fatalf("schema = %v", ph.Root.Vars)
	}
}

func TestLowerChainUsesIndexProbes(t *testing.T) {
	st := buildPhysStore(t)
	ph, _ := lowerQuery(t, st, `SELECT * WHERE {
  ?a <http://x/knows> ?b .
  ?b <http://x/age> ?x .
}`, PhysOptions{})
	ops := map[PhysOp]int{}
	countOps(ph.Root, ops)
	if ops[PhysIndexProbe] != 1 || ops[PhysIndexScan] != 1 {
		t.Fatalf("ops = %v, want 1 probe over 1 scan\n%s", ops, ph)
	}
	if ops[PhysHashJoin]+ops[PhysMergeJoin]+ops[PhysCross] != 0 {
		t.Fatalf("unexpected interior join: %v", ops)
	}
}

func TestLowerLeafLeafProbesLargerSide(t *testing.T) {
	st := buildPhysStore(t)
	// knows has 2 triples, age has 3: the scan must be over knows.
	ph, _ := lowerQuery(t, st, `SELECT * WHERE {
  ?p <http://x/knows> ?q .
  ?q <http://x/age> ?x .
}`, PhysOptions{})
	var probe *PhysNode
	var walk func(*PhysNode)
	walk = func(n *PhysNode) {
		if n == nil {
			return
		}
		if n.Op == PhysIndexProbe {
			probe = n
		}
		walk(n.Left)
		walk(n.Right)
	}
	walk(ph.Root)
	if probe == nil {
		t.Fatalf("no probe\n%s", ph)
	}
	if probe.Left.Op != PhysIndexScan {
		t.Fatalf("probe outer = %s", probe.Left.Op)
	}
	if probe.Left.Card > probe.Card && probe.Leaf == probe.Left.Leaf {
		t.Fatalf("scanned the probed pattern")
	}
}

func TestLowerCrossProduct(t *testing.T) {
	st := buildPhysStore(t)
	ph, _ := lowerQuery(t, st, `SELECT * WHERE {
  <http://x/alice> <http://x/age> ?a .
  <http://x/bob> <http://x/age> ?b .
}`, PhysOptions{})
	ops := map[PhysOp]int{}
	countOps(ph.Root, ops)
	if ops[PhysCross] != 1 {
		t.Fatalf("ops = %v, want one cross product\n%s", ops, ph)
	}
}

func TestLowerMissingLeafScansEmptySide(t *testing.T) {
	// A missing leaf (constant absent from the dictionary) estimates to
	// cardinality 0, so it becomes the outer scan and the live pattern is
	// probed — exactly the materializing executor's decision.
	st := buildPhysStore(t)
	ph, _ := lowerQuery(t, st, `SELECT * WHERE {
  ?p <http://x/knows> ?f .
  ?f <http://x/nonexistent> ?z .
}`, PhysOptions{})
	ops := map[PhysOp]int{}
	countOps(ph.Root, ops)
	if ops[PhysIndexProbe] != 1 || ops[PhysIndexScan] != 1 {
		t.Fatalf("ops = %v\n%s", ops, ph)
	}
	probe := ph.Root
	for probe != nil && probe.Op != PhysIndexProbe {
		probe = probe.Left
	}
	if probe == nil || !probe.Left.Leaf.Missing {
		t.Fatalf("outer scan must be the missing (empty) leaf\n%s", ph)
	}
}

// handTree compiles src and builds the given join tree over its patterns;
// shape is a nested pair structure of pattern indexes.
func handTree(t *testing.T, st *store.Store, src string) (*Compiled, func(l, r *Node) *Node, func(i int) *Node) {
	t.Helper()
	c, err := Compile(sparql.MustParse(src), st)
	if err != nil {
		t.Fatal(err)
	}
	est := NewEstimator(st)
	leaf := func(i int) *Node {
		s := est.Leaf(c.Patterns[i])
		return &Node{Leaf: &c.Patterns[i], Card: s.Card}
	}
	join := func(l, r *Node) *Node {
		return &Node{Left: l, Right: r, Card: l.Card * r.Card}
	}
	return c, join, leaf
}

func TestLowerProbeOfMissingLeafFallsBackToJoin(t *testing.T) {
	// A composite outer joined with a missing leaf cannot be probed: the
	// lowering must degrade to a regular join over a scan of the leaf.
	st := buildPhysStore(t)
	c, join, leaf := handTree(t, st, `SELECT * WHERE {
  ?a <http://x/knows> ?b .
  ?b <http://x/age> ?x .
  ?b <http://x/nonexistent> ?z .
}`)
	root := join(join(leaf(0), leaf(1)), leaf(2))
	ph, err := Lower(c, &Plan{Root: root}, PhysOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ops := map[PhysOp]int{}
	countOps(ph.Root, ops)
	if ops[PhysHashJoin] != 1 {
		t.Fatalf("ops = %v, want hash-join fallback for the missing leaf\n%s", ops, ph)
	}
}

func TestLowerJoinAlgorithmOption(t *testing.T) {
	// A bushy tree with two composite children exercises the interior-join
	// algorithm choice.
	st := buildPhysStore(t)
	c, join, leaf := handTree(t, st, `SELECT * WHERE {
  ?a <http://x/knows> ?b .
  ?b <http://x/knows> ?c .
  ?c <http://x/age> ?x .
  ?a <http://x/age> ?y .
}`)
	root := join(join(leaf(0), leaf(1)), join(leaf(2), leaf(3)))
	for _, tc := range []struct {
		alg  PhysJoin
		want PhysOp
	}{{PhysJoinHash, PhysHashJoin}, {PhysJoinMerge, PhysMergeJoin}} {
		ph, err := Lower(c, &Plan{Root: root}, PhysOptions{Join: tc.alg})
		if err != nil {
			t.Fatal(err)
		}
		ops := map[PhysOp]int{}
		countOps(ph.Root, ops)
		if ops[tc.want] != 1 {
			t.Fatalf("alg %v: ops = %v, want one %s\n%s", tc.alg, ops, tc.want, ph)
		}
	}
}

func TestLowerEpilogueOrder(t *testing.T) {
	st := buildPhysStore(t)
	ph, _ := lowerQuery(t, st, `SELECT DISTINCT ?s WHERE {
  ?s <http://x/age> ?a .
  FILTER(?a > 18)
} ORDER BY ?a LIMIT 2`, PhysOptions{})
	var got []PhysOp
	for n := ph.Root; n != nil; n = n.Left {
		got = append(got, n.Op)
	}
	want := []PhysOp{PhysLimit, PhysDistinct, PhysProject, PhysOrder, PhysFilter, PhysIndexScan}
	if len(got) != len(want) {
		t.Fatalf("chain = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("chain[%d] = %s, want %s\n%s", i, got[i], want[i], ph)
		}
	}
}

func TestLowerPushdownSingleVarFilter(t *testing.T) {
	st := buildPhysStore(t)
	// ?p is introduced by the outer scan over knows (2 triples, smaller
	// than age's 3), so the filter must sit on that scan, below the probe.
	src := `SELECT * WHERE {
  ?p <http://x/knows> ?f .
  ?f <http://x/age> ?a .
  FILTER(?p = <http://x/alice>)
}`
	ph, _ := lowerQuery(t, st, src, PhysOptions{PushFilters: true})
	if ph.Root.Op != PhysIndexProbe {
		t.Fatalf("root = %s, want the probe (filter pushed below)\n%s", ph.Root.Op, ph)
	}
	if ph.Root.Left.Op != PhysFilter || ph.Root.Left.Left.Op != PhysIndexScan {
		t.Fatalf("want Filter over the outer IndexScan\n%s", ph)
	}
}

func TestLowerPushdownKeepsMultiVarFilterAtRoot(t *testing.T) {
	st := buildPhysStore(t)
	src := `SELECT * WHERE {
  ?p <http://x/age> ?a .
  ?q <http://x/age> ?b .
  FILTER(?a < ?b)
}`
	ph, _ := lowerQuery(t, st, src, PhysOptions{PushFilters: true})
	if ph.Root.Op != PhysFilter {
		t.Fatalf("multi-var filter must remain at root\n%s", ph)
	}
}

func TestLowerPushdownFilterOnScan(t *testing.T) {
	st := buildPhysStore(t)
	src := `SELECT * WHERE {
  ?s <http://x/age> ?a .
  FILTER(?a >= 30)
}`
	ph, _ := lowerQuery(t, st, src, PhysOptions{PushFilters: true})
	if ph.Root.Op != PhysFilter || ph.Root.Left.Op != PhysIndexScan {
		t.Fatalf("want Filter directly over IndexScan\n%s", ph)
	}
}

func TestLowerErrors(t *testing.T) {
	st := buildPhysStore(t)
	bad := []string{
		`SELECT ?zzz WHERE { ?s <http://x/age> ?a . }`,
		`SELECT * WHERE { ?s <http://x/age> ?a . FILTER(?nope > 1) }`,
		`SELECT * WHERE { ?s <http://x/age> ?a . } ORDER BY ?nope`,
	}
	for _, src := range bad {
		for _, push := range []bool{false, true} {
			c, err := Compile(sparql.MustParse(src), st)
			if err != nil {
				t.Fatal(err)
			}
			p, err := Optimize(c, NewEstimator(st))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := Lower(c, p, PhysOptions{PushFilters: push}); err == nil {
				t.Errorf("expected lowering error for %q (push=%v)", src, push)
			}
		}
	}
}

func TestPhysicalString(t *testing.T) {
	st := buildPhysStore(t)
	ph, _ := lowerQuery(t, st, `SELECT ?f WHERE {
  <http://x/alice> <http://x/knows> ?f .
  ?f <http://x/age> ?a .
  FILTER(?a >= 18)
}`, PhysOptions{})
	s := ph.String()
	for _, want := range []string{"IndexScan", "Project", "Filter"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendering missing %q:\n%s", want, s)
		}
	}
}

// TestLowerMarksParallelPipelines: the topmost node of every maximal
// scan→probe/filter/project chain carries the ParallelSource annotation
// pointing at its partitionable IndexScan, and nodes inside the pipeline or
// above a breaker stay unmarked.
func TestLowerMarksParallelPipelines(t *testing.T) {
	st := buildPhysStore(t)

	// A probe chain with filter and projection: one pipeline, marked at the
	// top (the Project), with the source scan at the bottom.
	ph, _ := lowerQuery(t, st, `SELECT ?x WHERE {
  ?a <http://x/knows> ?b .
  ?b <http://x/age> ?x .
  FILTER(?x > 10)
}`, PhysOptions{})
	if ph.ParallelPipelines() != 1 {
		t.Fatalf("pipelines = %d, want 1\n%s", ph.ParallelPipelines(), ph)
	}
	if ph.Root.ParallelSource == nil {
		t.Fatalf("root not marked as pipeline top\n%s", ph)
	}
	if ph.Root.ParallelSource.Op != PhysIndexScan {
		t.Fatalf("source = %s, want IndexScan", ph.Root.ParallelSource.Op)
	}
	var inner int
	var walk func(*PhysNode)
	walk = func(n *PhysNode) {
		if n == nil {
			return
		}
		if n != ph.Root && n.ParallelSource != nil {
			inner++
		}
		walk(n.Left)
		walk(n.Right)
	}
	walk(ph.Root)
	if inner != 0 {
		t.Fatalf("%d nodes inside the pipeline are marked too", inner)
	}
	if !strings.Contains(ph.String(), "[parallel-eligible]") {
		t.Fatalf("rendering missing parallel marker:\n%s", ph)
	}

	// ORDER BY is a breaker: the pipeline below it is marked, the Order and
	// anything above it is not.
	ph, _ = lowerQuery(t, st, `SELECT ?b WHERE {
  ?a <http://x/knows> ?b .
  ?b <http://x/age> ?x .
} ORDER BY ?b`, PhysOptions{})
	if ph.ParallelPipelines() != 1 {
		t.Fatalf("pipelines = %d, want 1\n%s", ph.ParallelPipelines(), ph)
	}
	// Neither the root nor the Order breaker may carry the annotation; the
	// single marked node must sit strictly below the Order.
	for n := ph.Root; n != nil && n.Op != PhysOrder; n = n.Left {
		if n.ParallelSource != nil {
			t.Fatalf("%s above the Order breaker marked as pipeline\n%s", n.Op, ph)
		}
	}
	var order *PhysNode
	for n := ph.Root; n != nil; n = n.Left {
		if n.Op == PhysOrder {
			order = n
			break
		}
	}
	if order == nil {
		t.Fatalf("no Order node\n%s", ph)
	}
	if order.ParallelSource != nil {
		t.Fatalf("Order breaker marked as pipeline\n%s", ph)
	}
	if order.Left.ParallelSource == nil {
		t.Fatalf("pipeline below the Order not marked\n%s", ph)
	}

	// A cross product: both leaf scans are their own (trivial) pipelines.
	ph, _ = lowerQuery(t, st, `SELECT * WHERE {
  ?a <http://x/knows> ?b .
  ?c <http://x/date> ?d .
}`, PhysOptions{})
	ops := map[PhysOp]int{}
	countOps(ph.Root, ops)
	if ops[PhysCross] != 1 {
		t.Fatalf("expected a cross product\n%s", ph)
	}
	if ph.ParallelPipelines() != 2 {
		t.Fatalf("pipelines = %d, want 2 (one per scan)\n%s", ph.ParallelPipelines(), ph)
	}

	// A missing-constant scan has nothing to partition: not eligible.
	ph, _ = lowerQuery(t, st, `SELECT * WHERE { ?s <http://x/nonexistent> ?o . }`, PhysOptions{})
	if ph.ParallelPipelines() != 0 {
		t.Fatalf("missing-leaf scan marked eligible\n%s", ph)
	}
}
