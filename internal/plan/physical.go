package plan

import (
	"fmt"
	"strings"

	"repro/internal/sparql"
)

// This file implements the physical-plan layer: lowering of an optimized
// logical join tree (Node) into a tree of physical operators that an
// executor can run directly. The lowering fixes every execution decision
// that the materializing executor used to make on the fly — operator
// selection (index scan, index-nested-loop probe, hash/sort-merge/cross
// join), output schemas, build-side choices for leaf-leaf joins, and the
// placement of FILTER, ORDER BY, projection, DISTINCT and LIMIT — so that
// the streaming and materializing engines execute the *same* physical plan
// and produce bit-identical results and accounting.

// PhysOp identifies a physical operator kind.
type PhysOp uint8

// Physical operator kinds.
const (
	// PhysIndexScan streams one triple pattern out of the store index.
	PhysIndexScan PhysOp = iota
	// PhysIndexProbe is an index nested-loop join: per row of Left, the
	// shared variables are bound into Leaf and the store is probed.
	PhysIndexProbe
	// PhysHashJoin joins Left and Right by hashing the smaller input.
	PhysHashJoin
	// PhysMergeJoin joins Left and Right by sorting both on the join key.
	PhysMergeJoin
	// PhysCross is a cross product (no shared variables).
	PhysCross
	// PhysFilter applies FILTER comparisons to Left's output.
	PhysFilter
	// PhysOrder sorts Left's output by the ORDER BY keys (blocking).
	PhysOrder
	// PhysProject projects Left's output onto the SELECT columns.
	PhysProject
	// PhysDistinct removes duplicate rows, keeping first occurrences.
	PhysDistinct
	// PhysLimit truncates the output to Limit rows.
	PhysLimit
	// PhysLeapfrog is a multiway worst-case-optimal join over all the
	// query's patterns at once: synchronized trie cursors (one per
	// pattern, each a seek-capable scan of the permutation index whose
	// sort key is the pattern's constants followed by its variables in the
	// global TrieVars order) intersect one variable at a time. It replaces
	// the whole binary join tree for eligible star/cyclic BGPs, so it
	// never materializes binary intermediate results.
	PhysLeapfrog
	// PhysLeftJoin is a left outer hash join (OPTIONAL): a hash table is
	// built on Right, Left rows stream through in order, matched rows emit
	// every combination (build insertion order) and unmatched rows emit
	// once with Right-only columns unbound (dict.None).
	PhysLeftJoin
	// PhysUnion concatenates its Kids in order, padding columns a branch
	// does not bind with the unbound sentinel.
	PhysUnion
	// PhysAggregate groups Left's rows by the GroupBy columns (groups in
	// first-occurrence order) and evaluates the Aggs over each group. With
	// no GroupBy columns it emits exactly one global group, even over
	// empty input.
	PhysAggregate
)

// String names the operator for plan rendering.
func (op PhysOp) String() string {
	switch op {
	case PhysIndexScan:
		return "IndexScan"
	case PhysIndexProbe:
		return "IndexNestedLoopProbe"
	case PhysHashJoin:
		return "HashJoin"
	case PhysMergeJoin:
		return "SortMergeJoin"
	case PhysCross:
		return "CrossProduct"
	case PhysFilter:
		return "Filter"
	case PhysOrder:
		return "Order"
	case PhysProject:
		return "Project"
	case PhysDistinct:
		return "Distinct"
	case PhysLimit:
		return "Limit"
	case PhysLeapfrog:
		return "LeapfrogTrieJoin"
	case PhysLeftJoin:
		return "HashLeftJoin"
	case PhysUnion:
		return "Union"
	case PhysAggregate:
		return "HashAggregate"
	default:
		return fmt.Sprintf("op(%d)", uint8(op))
	}
}

// PhysJoin selects the join algorithm for interior (non-index) joins.
// It mirrors exec's JoinAlgorithm without importing it (plan is below exec
// in the dependency order).
type PhysJoin uint8

const (
	// PhysJoinHash builds a hash table on the smaller input (default).
	PhysJoinHash PhysJoin = iota
	// PhysJoinMerge sorts both inputs on the join key and merges.
	PhysJoinMerge
)

// PhysOptions configures lowering.
type PhysOptions struct {
	// Join is the algorithm for interior joins (both children composite).
	Join PhysJoin
	// PushFilters evaluates single-variable filters at the lowest operator
	// whose schema covers them instead of after the full join tree. This
	// changes measured Cout (intermediate results shrink earlier), so it is
	// off by default to keep the paper's cost accounting exact.
	PushFilters bool
	// Leapfrog replaces the binary join tree of an eligible BGP — three or
	// more patterns, all connected through shared variables, some hub
	// variable occurring in at least three of them, no repeated variable
	// inside a pattern, no missing constants — with a single PhysLeapfrog
	// node. Ineligible queries lower exactly as before. The multiway join
	// emits rows in global trie order and counts only its final output
	// toward Cout, so results match the binary plans as multisets but not
	// row-for-row; it is therefore opt-in per run and excluded from the
	// bit-identical golden matrix.
	Leapfrog bool
}

// PhysNode is one node of a physical operator tree.
type PhysNode struct {
	Op          PhysOp
	Leaf        *CompiledPattern   // PhysIndexScan, PhysIndexProbe (the probed pattern)
	Left, Right *PhysNode          // children; unary operators use Left only
	Vars        []sparql.Var       // output schema
	Filters     []sparql.Filter    // PhysFilter
	Keys        []sparql.OrderKey  // PhysOrder
	Limit       int                // PhysLimit: max rows to emit; -1 means unlimited (offset only)
	Offset      int                // PhysLimit: rows to skip before emitting
	Card        float64            // estimated output cardinality (join/scan nodes)
	Leaves      []*CompiledPattern // PhysLeapfrog: all patterns of the multiway join
	TrieVars    []sparql.Var       // PhysLeapfrog: global variable order (trie levels)
	Kids        []*PhysNode        // PhysUnion: branches, in syntactic order
	GroupBy     []sparql.Var       // PhysAggregate: grouping keys (may be empty)
	Aggs        []sparql.Aggregate // PhysAggregate: aggregates, in SELECT order

	// ParallelSource marks this node as the top of a parallelism-eligible
	// pipeline and names its partitionable source: the PhysIndexScan whose
	// index range can be split into contiguous morsels, with every operator
	// between the scan and this node (index probes, filters, projections —
	// all stateless per row) applied morsel-by-morsel on independent
	// workers. Merging per-morsel outputs in morsel order reproduces the
	// serial stream bit-for-bit. Lower sets it on the topmost node of each
	// maximal scan→probe/filter/project chain; it is nil on every node
	// inside a marked pipeline, on pipeline breakers (joins, ORDER BY,
	// DISTINCT, LIMIT) and on chains rooted at a missing-constant scan
	// (nothing to partition).
	ParallelSource *PhysNode
}

// Physical is a complete lowered plan: the operator tree plus the lowering
// options it was built with.
type Physical struct {
	Root    *PhysNode
	Options PhysOptions
}

// String renders the operator tree for debugging and EXPLAIN output.
func (p *Physical) String() string {
	var b strings.Builder
	p.Root.render(&b, 0)
	return b.String()
}

func (n *PhysNode) render(b *strings.Builder, depth int) {
	indent := strings.Repeat("  ", depth)
	b.WriteString(indent)
	n.describe(b)
	b.WriteString("\n")
	if n.Left != nil {
		n.Left.render(b, depth+1)
	}
	if n.Right != nil {
		n.Right.render(b, depth+1)
	}
	for _, k := range n.Kids {
		k.render(b, depth+1)
	}
}

// Describe returns the node's one-line EXPLAIN text (operator name,
// operator-specific details, output schema) without children — the label
// the execution tracer attaches to the node's span.
func (n *PhysNode) Describe() string {
	var b strings.Builder
	n.describe(&b)
	return b.String()
}

func (n *PhysNode) describe(b *strings.Builder) {
	fmt.Fprintf(b, "%s", n.Op)
	switch n.Op {
	case PhysIndexScan, PhysIndexProbe:
		fmt.Fprintf(b, " p%d %v", n.Leaf.Index, n.Leaf.Pat)
	case PhysFilter:
		for _, f := range n.Filters {
			fmt.Fprintf(b, " %s", f)
		}
	case PhysLimit:
		if n.Limit >= 0 {
			fmt.Fprintf(b, " %d", n.Limit)
		}
		if n.Offset > 0 {
			fmt.Fprintf(b, " offset %d", n.Offset)
		}
	case PhysLeapfrog:
		b.WriteString(" [leapfrog] order(")
		for i, v := range n.TrieVars {
			if i > 0 {
				b.WriteString(" ")
			}
			fmt.Fprintf(b, "?%s", v)
		}
		b.WriteString(")")
		for _, cp := range n.Leaves {
			fmt.Fprintf(b, " p%d %v", cp.Index, cp.Pat)
		}
	case PhysUnion:
		fmt.Fprintf(b, " %d branches", len(n.Kids))
	case PhysAggregate:
		if len(n.GroupBy) > 0 {
			b.WriteString(" by(")
			for i, v := range n.GroupBy {
				if i > 0 {
					b.WriteString(" ")
				}
				fmt.Fprintf(b, "?%s", v)
			}
			b.WriteString(")")
		} else {
			b.WriteString(" global")
		}
		for _, a := range n.Aggs {
			fmt.Fprintf(b, " %s", a)
		}
	}
	fmt.Fprintf(b, " -> %v", n.Vars)
	if n.ParallelSource != nil {
		b.WriteString(" [parallel-eligible]")
	}
}

// Lower translates the optimized logical plan p for compiled query c into a
// physical operator tree. Operator selection replicates the materializing
// executor's rules exactly:
//
//   - a leaf is an IndexScan;
//   - a join with exactly one composite child probes the leaf child per
//     composite row (index nested loops), provided they share a variable
//     and the leaf's constants all exist in the dictionary;
//   - a leaf-leaf join scans the smaller side (by estimated cardinality,
//     ties to the left child) and probes the other;
//   - remaining joins use the configured algorithm when the children share
//     a variable and a cross product otherwise.
//
// The epilogue appends Filter (all filters, or only those not pushed down),
// Order, Project, Distinct and Limit in the exact order the materializing
// executor applies them. Filters, ORDER BY keys and SELECT columns naming
// variables absent from the covering schema are lowering errors.
func Lower(c *Compiled, p *Plan, opts PhysOptions) (*Physical, error) {
	if p == nil || (p.Root == nil && p.Alg == nil) {
		return nil, fmt.Errorf("plan: nil plan")
	}
	l := &lowerer{opts: opts}
	if p.Alg != nil {
		return l.lowerPhysicalAlg(c, p)
	}
	root, err := l.lower(p.Root)
	if err != nil {
		return nil, err
	}
	if opts.Leapfrog {
		if lf := leapfrogNode(c, root); lf != nil {
			root = lf
		}
	}
	root, err = l.epilogue(root, c.Query)
	if err != nil {
		return nil, err
	}
	markParallelPipelines(root)
	return &Physical{Root: root, Options: opts}, nil
}

// lowerPhysicalAlg lowers a compositional-algebra plan. Group-scoped
// filters are applied directly above the node that produced them (so
// PushFilters pushdown is a no-op for algebra queries — group scoping
// already fixes filter placement), then the epilogue appends aggregation,
// HAVING and the standard tail.
func (l *lowerer) lowerPhysicalAlg(c *Compiled, p *Plan) (*Physical, error) {
	root, err := l.lowerAlg(c.Query, p.Alg)
	if err != nil {
		return nil, err
	}
	root, err = l.epilogueAlg(root, c.Query)
	if err != nil {
		return nil, err
	}
	markParallelPipelines(root)
	return &Physical{Root: root, Options: l.opts}, nil
}

// lowerAlg lowers one algebra node, its subtree, and its attached filters.
func (l *lowerer) lowerAlg(q *sparql.Query, a *AlgNode) (*PhysNode, error) {
	var root *PhysNode
	switch a.Kind {
	case AlgBGP:
		var err error
		root, err = l.lower(a.Root)
		if err != nil {
			return nil, err
		}
		if l.opts.Leapfrog {
			// Per-leaf gating: leapfrogNode reads only the Compiled's
			// pattern list, so a synthetic Compiled scopes it to this leaf.
			sub := &Compiled{Query: q, Patterns: a.Compiled}
			if lf := leapfrogNode(sub, root); lf != nil {
				root = lf
			}
		}
	case AlgJoin:
		lp, err := l.lowerAlg(q, a.Left)
		if err != nil {
			return nil, err
		}
		rp, err := l.lowerAlg(q, a.Right)
		if err != nil {
			return nil, err
		}
		root = l.joinNode(lp, rp, a.Card)
	case AlgLeftJoin:
		lp, err := l.lowerAlg(q, a.Left)
		if err != nil {
			return nil, err
		}
		rp, err := l.lowerAlg(q, a.Right)
		if err != nil {
			return nil, err
		}
		root = &PhysNode{
			Op:    PhysLeftJoin,
			Left:  lp,
			Right: rp,
			Vars:  joinSchema(lp.Vars, rp.Vars),
			Card:  a.Card,
		}
	case AlgUnion:
		un := &PhysNode{Op: PhysUnion, Card: a.Card}
		for _, br := range a.Branches {
			kid, err := l.lowerAlg(q, br)
			if err != nil {
				return nil, err
			}
			un.Kids = append(un.Kids, kid)
			un.Vars = joinSchema(un.Vars, kid.Vars)
		}
		root = un
	default:
		return nil, fmt.Errorf("plan: unknown algebra node %v", a.Kind)
	}
	if len(a.Filters) > 0 {
		for _, f := range a.Filters {
			if err := checkFilterCovered(f, root.Vars); err != nil {
				return nil, err
			}
		}
		root = &PhysNode{Op: PhysFilter, Left: root, Vars: root.Vars, Filters: a.Filters, Card: root.Card}
	}
	return root, nil
}

// epilogueAlg appends the algebra epilogue: aggregation (grouping +
// aggregates), HAVING, then ORDER BY, projection, DISTINCT and LIMIT in
// the standard order. Root-group filters were already applied by
// lowerAlg, so q.Filters is not reapplied here.
func (l *lowerer) epilogueAlg(root *PhysNode, q *sparql.Query) (*PhysNode, error) {
	if len(q.GroupBy) > 0 || len(q.Aggs) > 0 {
		for _, v := range q.GroupBy {
			if varIndex(root.Vars, v) < 0 {
				return nil, fmt.Errorf("plan: GROUP BY unbound variable ?%s", v)
			}
		}
		vars := append([]sparql.Var(nil), q.GroupBy...)
		for _, ag := range q.Aggs {
			if ag.Var != "" && varIndex(root.Vars, ag.Var) < 0 {
				return nil, fmt.Errorf("plan: aggregate over unbound variable ?%s", ag.Var)
			}
			if varIndex(vars, ag.As) >= 0 {
				return nil, fmt.Errorf("plan: duplicate aggregate output ?%s", ag.As)
			}
			vars = append(vars, ag.As)
		}
		root = &PhysNode{
			Op:      PhysAggregate,
			Left:    root,
			Vars:    vars,
			GroupBy: append([]sparql.Var(nil), q.GroupBy...),
			Aggs:    append([]sparql.Aggregate(nil), q.Aggs...),
			Card:    root.Card,
		}
		if len(q.Having) > 0 {
			for _, f := range q.Having {
				if err := checkFilterCovered(f, root.Vars); err != nil {
					return nil, err
				}
			}
			root = &PhysNode{Op: PhysFilter, Left: root, Vars: root.Vars, Filters: q.Having, Card: root.Card}
		}
	}
	if len(q.OrderBy) > 0 {
		for _, k := range q.OrderBy {
			if varIndex(root.Vars, k.Var) < 0 {
				return nil, fmt.Errorf("plan: ORDER BY unbound variable ?%s", k.Var)
			}
		}
		root = &PhysNode{Op: PhysOrder, Left: root, Vars: root.Vars, Keys: q.OrderBy, Card: root.Card}
	}
	if len(q.Select) > 0 {
		for _, v := range q.Select {
			if varIndex(root.Vars, v) < 0 {
				return nil, fmt.Errorf("plan: SELECT of unbound variable ?%s", v)
			}
		}
		root = &PhysNode{Op: PhysProject, Left: root, Vars: append([]sparql.Var(nil), q.Select...), Card: root.Card}
	}
	if q.Distinct {
		root = &PhysNode{Op: PhysDistinct, Left: root, Vars: root.Vars, Card: root.Card}
	}
	if limit, has := q.LimitCount(); has || q.Offset > 0 {
		if !has {
			limit = -1
		}
		root = &PhysNode{Op: PhysLimit, Left: root, Vars: root.Vars, Limit: limit, Offset: q.Offset, Card: root.Card}
	}
	return root, nil
}

// ParallelPipelines counts the parallelism-eligible pipelines of the plan —
// the nodes carrying a ParallelSource annotation.
func (p *Physical) ParallelPipelines() int {
	var count func(*PhysNode) int
	count = func(n *PhysNode) int {
		if n == nil {
			return 0
		}
		c := 0
		if n.ParallelSource != nil {
			c = 1
		}
		c += count(n.Left) + count(n.Right)
		for _, k := range n.Kids {
			c += count(k)
		}
		return c
	}
	return count(p.Root)
}

// isPipelineOp reports whether op is a per-row streamable operator that a
// morsel-driven worker can run without coordination: no cross-row state, no
// buffering, no order sensitivity beyond preserving its input order.
func isPipelineOp(op PhysOp) bool {
	switch op {
	case PhysIndexScan, PhysIndexProbe, PhysFilter, PhysProject:
		return true
	}
	return false
}

// pipelineSource walks the scan→probe/filter/project chain below n down to
// its partitionable IndexScan, or returns nil when the chain bottoms out in
// a pipeline breaker or a missing-constant (empty) scan.
func pipelineSource(n *PhysNode) *PhysNode {
	for {
		switch n.Op {
		case PhysIndexScan:
			if n.Leaf == nil || n.Leaf.Missing {
				return nil
			}
			return n
		case PhysIndexProbe, PhysFilter, PhysProject:
			n = n.Left
		default:
			return nil
		}
	}
}

// markParallelPipelines annotates the topmost node of every maximal
// parallelism-eligible pipeline with its partitionable source. Nodes inside
// a marked pipeline are deliberately left unmarked so an executor seeing
// ParallelSource runs the whole chain per morsel exactly once.
func markParallelPipelines(n *PhysNode) {
	if n == nil {
		return
	}
	if isPipelineOp(n.Op) {
		if src := pipelineSource(n); src != nil {
			n.ParallelSource = src
			return
		}
	}
	markParallelPipelines(n.Left)
	markParallelPipelines(n.Right)
	for _, k := range n.Kids {
		markParallelPipelines(k)
	}
}

type lowerer struct {
	opts PhysOptions
}

func (l *lowerer) lower(n *Node) (*PhysNode, error) {
	if n == nil {
		return nil, fmt.Errorf("plan: nil logical node")
	}
	if n.IsLeaf() {
		return l.scan(n), nil
	}
	left, right := n.Left, n.Right
	switch {
	case right.IsLeaf() && !left.IsLeaf():
		outer, err := l.lower(left)
		if err != nil {
			return nil, err
		}
		return l.probe(outer, right, n.Card), nil
	case left.IsLeaf() && !right.IsLeaf():
		outer, err := l.lower(right)
		if err != nil {
			return nil, err
		}
		return l.probe(outer, left, n.Card), nil
	case left.IsLeaf() && right.IsLeaf():
		// Scan the smaller (by estimated cardinality), probe the other.
		if left.Card <= right.Card {
			return l.probe(l.scan(left), right, n.Card), nil
		}
		return l.probe(l.scan(right), left, n.Card), nil
	default:
		lp, err := l.lower(left)
		if err != nil {
			return nil, err
		}
		rp, err := l.lower(right)
		if err != nil {
			return nil, err
		}
		return l.joinNode(lp, rp, n.Card), nil
	}
}

func (l *lowerer) scan(n *Node) *PhysNode {
	return &PhysNode{
		Op:   PhysIndexScan,
		Leaf: n.Leaf,
		Vars: n.Leaf.Vars(),
		Card: n.Card,
	}
}

// probe lowers a join whose one child is a bare leaf. When the leaf shares
// a variable with the outer schema (and its constants resolve), the join is
// an index-nested-loop probe; otherwise it degrades to a regular join of
// the outer with a full scan of the leaf — exactly the materializing
// executor's fallback.
func (l *lowerer) probe(outer *PhysNode, leafNode *Node, card float64) *PhysNode {
	cp := leafNode.Leaf
	anyShared := false
	for _, v := range cp.Vars() {
		if varIndex(outer.Vars, v) >= 0 {
			anyShared = true
			break
		}
	}
	if !anyShared || cp.Missing {
		return l.joinNode(outer, l.scan(leafNode), card)
	}
	return &PhysNode{
		Op:   PhysIndexProbe,
		Leaf: cp,
		Left: outer,
		Vars: probeSchema(outer.Vars, cp),
		Card: card,
	}
}

// joinNode builds the physical join of two composite inputs: a cross
// product when they share no variable, the configured algorithm otherwise.
func (l *lowerer) joinNode(left, right *PhysNode, card float64) *PhysNode {
	op := PhysCross
	if schemasShareVar(left.Vars, right.Vars) {
		if l.opts.Join == PhysJoinMerge {
			op = PhysMergeJoin
		} else {
			op = PhysHashJoin
		}
	}
	return &PhysNode{
		Op:    op,
		Left:  left,
		Right: right,
		Vars:  joinSchema(left.Vars, right.Vars),
		Card:  card,
	}
}

// epilogue appends the post-join operators in the materializing executor's
// order: FILTER, ORDER BY, projection, DISTINCT, LIMIT.
func (l *lowerer) epilogue(root *PhysNode, q *sparql.Query) (*PhysNode, error) {
	rootFilters := q.Filters
	if l.opts.PushFilters {
		var err error
		root, rootFilters, err = pushFilters(root, q.Filters)
		if err != nil {
			return nil, err
		}
	}
	if len(rootFilters) > 0 {
		for _, f := range rootFilters {
			if err := checkFilterCovered(f, root.Vars); err != nil {
				return nil, err
			}
		}
		root = &PhysNode{Op: PhysFilter, Left: root, Vars: root.Vars, Filters: rootFilters, Card: root.Card}
	}
	if len(q.OrderBy) > 0 {
		for _, k := range q.OrderBy {
			if varIndex(root.Vars, k.Var) < 0 {
				return nil, fmt.Errorf("plan: ORDER BY unbound variable ?%s", k.Var)
			}
		}
		root = &PhysNode{Op: PhysOrder, Left: root, Vars: root.Vars, Keys: q.OrderBy, Card: root.Card}
	}
	if len(q.Select) > 0 {
		for _, v := range q.Select {
			if varIndex(root.Vars, v) < 0 {
				return nil, fmt.Errorf("plan: SELECT of unbound variable ?%s", v)
			}
		}
		root = &PhysNode{Op: PhysProject, Left: root, Vars: append([]sparql.Var(nil), q.Select...), Card: root.Card}
	}
	if q.Distinct {
		root = &PhysNode{Op: PhysDistinct, Left: root, Vars: root.Vars, Card: root.Card}
	}
	if limit, has := q.LimitCount(); has || q.Offset > 0 {
		if !has {
			limit = -1 // offset without limit: skip rows, emit the rest
		}
		root = &PhysNode{Op: PhysLimit, Left: root, Vars: root.Vars, Limit: limit, Offset: q.Offset, Card: root.Card}
	}
	return root, nil
}

// pushFilters places every single-variable filter at each lowest operator
// that introduces its variable (scans and probes), returning the filters
// that must remain at the root: multi-variable comparisons, plus any filter
// whose variable no operator covers (left to the root filter so the
// executor reports the same unbound-variable error as the materializing
// path).
func pushFilters(root *PhysNode, filters []sparql.Filter) (*PhysNode, []sparql.Filter, error) {
	var rest []sparql.Filter
	for _, f := range filters {
		v, single, err := singleFilterVar(f)
		if err != nil {
			return nil, nil, err
		}
		if !single {
			rest = append(rest, f)
			continue
		}
		newRoot, placed := placeFilter(root, f, v)
		if !placed {
			// Variable not produced anywhere: keep at root so execution
			// fails with the standard unbound-variable error.
			rest = append(rest, f)
			continue
		}
		root = newRoot
	}
	return root, rest, nil
}

// singleFilterVar reports whether f references exactly one distinct
// variable, and which. Parameters are a lowering error (Compile rejects
// them earlier; this guards direct callers).
func singleFilterVar(f sparql.Filter) (sparql.Var, bool, error) {
	var vars []sparql.Var
	for _, n := range []sparql.Node{f.Left, f.Right} {
		switch n.Kind {
		case sparql.NodeVar:
			vars = append(vars, n.Var)
		case sparql.NodeParam:
			return "", false, fmt.Errorf("plan: filter contains unbound parameter %%%s", n.Param)
		}
	}
	if len(vars) == 1 {
		return vars[0], true, nil
	}
	if len(vars) == 2 && vars[0] == vars[1] {
		return vars[0], true, nil
	}
	return "", false, nil
}

// placeFilter wraps, on every branch, the lowest operator introducing v in
// a PhysFilter evaluating f. It reports whether at least one operator was
// wrapped.
func placeFilter(n *PhysNode, f sparql.Filter, v sparql.Var) (*PhysNode, bool) {
	if varIndex(n.Vars, v) < 0 {
		return n, false
	}
	wrap := func(x *PhysNode) *PhysNode {
		// Merge into an existing filter wrapper to keep trees shallow.
		if x.Op == PhysFilter {
			x.Filters = append(x.Filters, f)
			return x
		}
		return &PhysNode{Op: PhysFilter, Left: x, Vars: x.Vars, Filters: []sparql.Filter{f}, Card: x.Card}
	}
	switch n.Op {
	case PhysIndexScan, PhysLeapfrog:
		// Scans introduce their variables; the leapfrog join has no
		// children to push into — both filter their own output.
		return wrap(n), true
	case PhysIndexProbe:
		// If the outer side already covers v, push below; otherwise the
		// probe introduces it, so filter the probe's output.
		if varIndex(n.Left.Vars, v) >= 0 {
			left, ok := placeFilter(n.Left, f, v)
			n.Left = left
			return n, ok
		}
		return wrap(n), true
	case PhysHashJoin, PhysMergeJoin, PhysCross:
		placedAny := false
		if varIndex(n.Left.Vars, v) >= 0 {
			left, ok := placeFilter(n.Left, f, v)
			n.Left, placedAny = left, ok
		}
		if varIndex(n.Right.Vars, v) >= 0 {
			right, ok := placeFilter(n.Right, f, v)
			n.Right = right
			placedAny = placedAny || ok
		}
		if !placedAny {
			return wrap(n), true
		}
		return n, true
	default:
		// Unary epilogue operators are built after pushdown.
		left, ok := placeFilter(n.Left, f, v)
		n.Left = left
		if !ok {
			return wrap(n), true
		}
		return n, true
	}
}

// checkFilterCovered verifies every variable of f is in the schema,
// mirroring the executor's unbound-variable errors.
func checkFilterCovered(f sparql.Filter, vars []sparql.Var) error {
	for _, n := range []sparql.Node{f.Left, f.Right} {
		switch n.Kind {
		case sparql.NodeVar:
			if varIndex(vars, n.Var) < 0 {
				return fmt.Errorf("plan: filter references unbound variable ?%s", n.Var)
			}
		case sparql.NodeParam:
			return fmt.Errorf("plan: filter contains unbound parameter %%%s", n.Param)
		}
	}
	return nil
}

// varIndex returns the column index of v in vars, or -1.
func varIndex(vars []sparql.Var, v sparql.Var) int {
	for i, x := range vars {
		if x == v {
			return i
		}
	}
	return -1
}

// probeSchema is the output schema of an index probe: the outer columns
// followed by the leaf's variables not bound by the outer side, in S,P,O
// first-occurrence order.
func probeSchema(outer []sparql.Var, cp *CompiledPattern) []sparql.Var {
	out := append([]sparql.Var(nil), outer...)
	seen := map[sparql.Var]bool{}
	for _, v := range [3]sparql.Var{cp.VarS, cp.VarP, cp.VarO} {
		if v == "" || varIndex(outer, v) >= 0 || seen[v] {
			continue
		}
		seen[v] = true
		out = append(out, v)
	}
	return out
}

// joinSchema is the output schema of a binary join: all left columns, then
// right columns not already present.
func joinSchema(left, right []sparql.Var) []sparql.Var {
	out := append([]sparql.Var(nil), left...)
	for _, v := range right {
		if varIndex(left, v) < 0 {
			out = append(out, v)
		}
	}
	return out
}

// schemasShareVar reports whether the schemas have a variable in common.
func schemasShareVar(a, b []sparql.Var) bool {
	for _, v := range a {
		if varIndex(b, v) >= 0 {
			return true
		}
	}
	return false
}
