package plan

import (
	"testing"

	"repro/internal/rdf"
	"repro/internal/sparql"
)

func TestBindingSignature(t *testing.T) {
	if got := BindingSignature(nil); got != "" {
		t.Fatalf("nil binding signature = %q", got)
	}
	a := sparql.Binding{
		"x": rdf.NewIRI("http://x/1"),
		"y": rdf.NewLiteral("v"),
	}
	b := sparql.Binding{
		"y": rdf.NewLiteral("v"),
		"x": rdf.NewIRI("http://x/1"),
	}
	if BindingSignature(a) != BindingSignature(b) {
		t.Fatal("signature depends on map insertion order")
	}
	c := sparql.Binding{
		"x": rdf.NewIRI("http://x/2"),
		"y": rdf.NewLiteral("v"),
	}
	if BindingSignature(a) == BindingSignature(c) {
		t.Fatal("different terms must produce different signatures")
	}
	// Parameter-name/term boundaries cannot be confused.
	d := sparql.Binding{"xy": rdf.NewLiteral("v")}
	e := sparql.Binding{"x": rdf.NewLiteral("yv")}
	if BindingSignature(d) == BindingSignature(e) {
		t.Fatal("name/term boundary ambiguity")
	}
}

func TestCacheKey(t *testing.T) {
	b := sparql.Binding{"t": rdf.NewIRI("http://x/T")}
	if CacheKey("SELECT A", b) == CacheKey("SELECT B", b) {
		t.Fatal("different templates must produce different keys")
	}
	if CacheKey("SELECT A", b) != CacheKey("SELECT A", sparql.Binding{"t": rdf.NewIRI("http://x/T")}) {
		t.Fatal("equal template+binding must produce equal keys")
	}
	if CacheKey("SELECT A", nil) == CacheKey("SELECT A", b) {
		t.Fatal("bound and unbound keys must differ")
	}
}
