package plan

import (
	"repro/internal/dict"
	"repro/internal/sparql"
	"repro/internal/store"
)

// Set is a cardinality estimate for a set of joined patterns: the output
// cardinality, per-variable distinct-value estimates, and the bitmask of
// pattern indexes covered. Optimizers combine Sets through a Model.
type Set struct {
	Card     float64
	Distinct map[sparql.Var]float64
	Mask     uint32 // bit i set ⇔ pattern with Index i is included
}

// Model produces cardinality estimates for single patterns and joins. The
// default implementation is Estimator (exact single-pattern counts +
// independence assumption); SamplingEstimator replaces the independence
// assumption with sampled pairwise join selectivities.
type Model interface {
	Leaf(cp CompiledPattern) Set
	Join(a, b Set) Set
}

// Estimator is the default Model: single-pattern estimates are *exact*
// (the hexastore answers every pattern shape by binary search) and joins
// use the classical independence assumption with per-variable
// distinct-value counts.
type Estimator struct {
	st store.Source
}

// NewEstimator returns an estimator over st.
func NewEstimator(st store.Source) *Estimator { return &Estimator{st: st} }

// Store returns the underlying store.
func (e *Estimator) Store() store.Source { return e.st }

// PatternCard returns the exact cardinality of a compiled pattern.
func (e *Estimator) PatternCard(cp CompiledPattern) float64 {
	if cp.Missing {
		return 0
	}
	return float64(e.st.Count(cp.Pat))
}

// varDistinct estimates the number of distinct values the pattern's
// variable v can take among the pattern's matches.
func (e *Estimator) varDistinct(cp CompiledPattern, v sparql.Var) float64 {
	if cp.Missing {
		return 0
	}
	card := float64(e.st.Count(cp.Pat))
	if card == 0 {
		return 0
	}
	// Position of v within the pattern.
	var pos int
	switch v {
	case cp.VarS:
		pos = 0
	case cp.VarP:
		pos = 1
	case cp.VarO:
		pos = 2
	default:
		return card
	}
	// With a bound predicate we have exact per-predicate distinct counts.
	if cp.Pat.P != dict.None {
		st := e.st.PredicateStats(cp.Pat.P)
		var d float64
		switch pos {
		case 0:
			if cp.Pat.O != dict.None {
				// (?, p, o): every match has a distinct subject.
				return card
			}
			d = float64(st.DistinctS)
		case 2:
			if cp.Pat.S != dict.None {
				return card
			}
			d = float64(st.DistinctO)
		default:
			return 1 // predicate is bound; var cannot sit there
		}
		if d > card {
			d = card
		}
		if d < 1 {
			d = 1
		}
		return d
	}
	// Unbound predicate: fall back to the global distinct count for the
	// position, capped by the pattern cardinality.
	d := float64(e.st.Dict().Len())
	if d > card {
		d = card
	}
	if d < 1 {
		d = 1
	}
	return d
}

// Leaf builds the estimate for a single pattern.
func (e *Estimator) Leaf(cp CompiledPattern) Set {
	s := Set{Card: e.PatternCard(cp), Distinct: map[sparql.Var]float64{}}
	if cp.Index >= 0 && cp.Index < 32 {
		s.Mask = 1 << cp.Index
	}
	for _, v := range cp.Vars() {
		s.Distinct[v] = e.varDistinct(cp, v)
	}
	return s
}

// Join estimates the join of a and b under the independence assumption.
func (e *Estimator) Join(a, b Set) Set { return joinSets(a, b) }

// joinSets estimates the join of a and b. For each shared variable v the
// classical formula divides by max(d_a(v), d_b(v)); disjoint var sets give
// a cross product.
func joinSets(a, b Set) Set {
	card := a.Card * b.Card
	avars := map[sparql.Var]bool{}
	for v := range a.Distinct {
		avars[v] = true
	}
	bvars := map[sparql.Var]bool{}
	for v := range b.Distinct {
		bvars[v] = true
	}
	for _, v := range sharedVars(avars, bvars) {
		da, db := a.Distinct[v], b.Distinct[v]
		m := da
		if db > m {
			m = db
		}
		if m > 0 {
			card /= m
		}
	}
	out := Set{
		Card:     card,
		Distinct: make(map[sparql.Var]float64, len(a.Distinct)+len(b.Distinct)),
		Mask:     a.Mask | b.Mask,
	}
	for v, d := range a.Distinct {
		out.Distinct[v] = d
	}
	for v, d := range b.Distinct {
		if prev, ok := out.Distinct[v]; !ok || d < prev {
			out.Distinct[v] = d
		}
	}
	// No variable can exceed the output cardinality.
	for v, d := range out.Distinct {
		if d > out.Card {
			out.Distinct[v] = out.Card
		}
	}
	return out
}
