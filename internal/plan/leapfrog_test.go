package plan

import (
	"strings"
	"testing"
)

const starQuery = `SELECT * WHERE {
  ?h <http://x/knows> ?a .
  ?h <http://x/age> ?x .
  ?h <http://x/creator> ?c .
}`

func TestLeapfrogEligibleStar(t *testing.T) {
	st := buildPhysStore(t)
	ph, _ := lowerQuery(t, st, starQuery, PhysOptions{Leapfrog: true})
	if ph.Root.Op != PhysLeapfrog {
		t.Fatalf("root = %s, want LeapfrogTrieJoin\n%s", ph.Root.Op, ph)
	}
	if len(ph.Root.Leaves) != 3 {
		t.Fatalf("leaves = %d, want 3", len(ph.Root.Leaves))
	}
	// The hub ?h occurs in all three patterns and must lead the trie order.
	if len(ph.Root.TrieVars) != 4 || ph.Root.TrieVars[0] != "h" {
		t.Fatalf("trie order = %v, want ?h first", ph.Root.TrieVars)
	}
	// Remaining variables tie at one occurrence each: first-occurrence order.
	for i, want := range []string{"h", "a", "x", "c"} {
		if string(ph.Root.TrieVars[i]) != want {
			t.Fatalf("trie order = %v, want [h a x c]", ph.Root.TrieVars)
		}
	}
	// Schema and cardinality come from the binary plan it replaced.
	bin, _ := lowerQuery(t, st, starQuery, PhysOptions{})
	if len(ph.Root.Vars) != len(bin.Root.Vars) {
		t.Fatalf("schema %v differs from binary plan %v", ph.Root.Vars, bin.Root.Vars)
	}
	for i := range bin.Root.Vars {
		if ph.Root.Vars[i] != bin.Root.Vars[i] {
			t.Fatalf("schema %v differs from binary plan %v", ph.Root.Vars, bin.Root.Vars)
		}
	}
}

func TestLeapfrogIneligible(t *testing.T) {
	st := buildPhysStore(t)
	cases := []struct {
		name, src string
	}{
		{"two-patterns", `SELECT * WHERE {
  ?a <http://x/knows> ?b .
  ?b <http://x/age> ?x .
}`},
		{"no-hub-chain", `SELECT * WHERE {
  ?a <http://x/knows> ?b .
  ?b <http://x/knows> ?c .
  ?c <http://x/age> ?x .
}`},
		{"disconnected", `SELECT * WHERE {
  ?h <http://x/knows> ?a .
  ?h <http://x/age> ?x .
  ?h <http://x/creator> ?c .
  ?z <http://x/date> ?d .
}`},
		{"missing-constant", `SELECT * WHERE {
  ?h <http://x/knows> ?a .
  ?h <http://x/age> ?x .
  ?h <http://x/nonexistent> ?c .
}`},
		{"repeated-var-in-pattern", `SELECT * WHERE {
  ?h <http://x/knows> ?h .
  ?h <http://x/age> ?x .
  ?h <http://x/creator> ?c .
}`},
	}
	for _, tc := range cases {
		ph, _ := lowerQuery(t, st, tc.src, PhysOptions{Leapfrog: true})
		ops := map[PhysOp]int{}
		countOps(ph.Root, ops)
		if ops[PhysLeapfrog] != 0 {
			t.Errorf("%s: lowered to leapfrog, want binary plan\n%s", tc.name, ph)
		}
	}
}

func TestLeapfrogOffByDefault(t *testing.T) {
	st := buildPhysStore(t)
	ph, _ := lowerQuery(t, st, starQuery, PhysOptions{})
	ops := map[PhysOp]int{}
	countOps(ph.Root, ops)
	if ops[PhysLeapfrog] != 0 {
		t.Fatalf("leapfrog node without opt-in\n%s", ph)
	}
}

func TestLeapfrogExplain(t *testing.T) {
	st := buildPhysStore(t)
	ph, _ := lowerQuery(t, st, starQuery, PhysOptions{Leapfrog: true})
	s := ph.String()
	if !strings.Contains(s, "LeapfrogTrieJoin") || !strings.Contains(s, "[leapfrog]") {
		t.Fatalf("rendering missing leapfrog tag:\n%s", s)
	}
	if !strings.Contains(s, "order(?h ?a ?x ?c)") {
		t.Fatalf("rendering missing trie order:\n%s", s)
	}
	for _, p := range []string{"p0", "p1", "p2"} {
		if !strings.Contains(s, p) {
			t.Fatalf("rendering missing pattern %s:\n%s", p, s)
		}
	}
}

func TestLeapfrogEpilogueAndFilters(t *testing.T) {
	st := buildPhysStore(t)
	src := `SELECT DISTINCT ?a WHERE {
  ?h <http://x/knows> ?a .
  ?h <http://x/age> ?x .
  ?h <http://x/creator> ?c .
  FILTER(?x > 18)
} ORDER BY ?a LIMIT 5`
	for _, push := range []bool{false, true} {
		ph, _ := lowerQuery(t, st, src, PhysOptions{Leapfrog: true, PushFilters: push})
		var chain []PhysOp
		for n := ph.Root; n != nil; n = n.Left {
			chain = append(chain, n.Op)
		}
		want := []PhysOp{PhysLimit, PhysDistinct, PhysProject, PhysOrder, PhysFilter, PhysLeapfrog}
		if len(chain) != len(want) {
			t.Fatalf("push=%v: chain = %v, want %v\n%s", push, chain, want, ph)
		}
		for i := range want {
			if chain[i] != want[i] {
				t.Fatalf("push=%v: chain[%d] = %s, want %s\n%s", push, i, chain[i], want[i], ph)
			}
		}
	}
}

func TestLeapfrogHubOrdering(t *testing.T) {
	st := buildPhysStore(t)
	// ?b occurs in three patterns, ?a in two: ?b must precede ?a even though
	// ?a occurs first in the query text.
	src := `SELECT * WHERE {
  ?a <http://x/knows> ?b .
  ?b <http://x/age> ?x .
  ?b <http://x/creator> ?c .
  ?a <http://x/date> ?d .
}`
	ph, _ := lowerQuery(t, st, src, PhysOptions{Leapfrog: true})
	if ph.Root.Op != PhysLeapfrog {
		t.Fatalf("root = %s, want LeapfrogTrieJoin\n%s", ph.Root.Op, ph)
	}
	tv := ph.Root.TrieVars
	if tv[0] != "b" || tv[1] != "a" {
		t.Fatalf("trie order = %v, want ?b (3 occurrences) then ?a (2)", tv)
	}
}

func TestCacheKeyVariant(t *testing.T) {
	base := CacheKey("q", nil)
	if CacheKeyVariant("q", nil, "") != base {
		t.Fatal("empty variant must equal CacheKey")
	}
	a := CacheKeyVariant("q", nil, "leapfrog")
	b := CacheKeyVariant("q", nil, "columnar")
	if a == base || b == base || a == b {
		t.Fatalf("variants must be distinct: %q %q %q", base, a, b)
	}
}
