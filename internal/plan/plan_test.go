package plan

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/store"
)

const ns = "http://x/"

func iri(n string) rdf.Term { return rdf.NewIRI(ns + n) }

// buildIntroStore creates the paper's intro scenario: persons with
// correlated firstName and livesIn. "Li" is frequent in China, "John" rare
// there; joins over the two patterns are respectively unselective and
// selective.
func buildIntroStore(t testing.TB) *store.Store {
	t.Helper()
	b := store.NewBuilder()
	add := func(s, p, o rdf.Term) {
		t.Helper()
		if err := b.Add(rdf.NewTriple(s, p, o)); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 1000; i++ {
		p := iri(fmt.Sprintf("person%d", i))
		var country, name string
		if i < 500 {
			country = "China"
			if rng.Float64() < 0.4 {
				name = "Li"
			} else {
				name = fmt.Sprintf("CN%d", rng.Intn(50))
			}
		} else {
			country = "USA"
			if rng.Float64() < 0.4 {
				name = "John"
			} else {
				name = fmt.Sprintf("US%d", rng.Intn(50))
			}
		}
		add(p, iri("firstName"), rdf.NewLiteral(name))
		add(p, iri("livesIn"), iri(country))
		add(p, rdf.NewIRI(rdf.RDFType), iri("Person"))
	}
	// One John in China so the selective join is non-empty.
	add(iri("personX"), iri("firstName"), rdf.NewLiteral("John"))
	add(iri("personX"), iri("livesIn"), iri("China"))
	return b.Build()
}

func mustCompile(t testing.TB, st *store.Store, src string) *Compiled {
	t.Helper()
	q := sparql.MustParse(src)
	c, err := Compile(q, st)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCompileBasics(t *testing.T) {
	st := buildIntroStore(t)
	c := mustCompile(t, st, `SELECT * WHERE {
  ?p <http://x/firstName> "Li" .
  ?p <http://x/livesIn> <http://x/China> .
}`)
	if len(c.Patterns) != 2 {
		t.Fatalf("patterns = %d", len(c.Patterns))
	}
	if c.Patterns[0].VarS != "p" || c.Patterns[0].VarO != "" {
		t.Fatalf("pattern 0 vars wrong: %+v", c.Patterns[0])
	}
	if c.Patterns[0].Missing || c.Patterns[1].Missing {
		t.Fatal("known terms marked missing")
	}
	if !shareVar(c.Patterns[0], c.Patterns[1]) {
		t.Fatal("patterns share ?p")
	}
}

func TestCompileErrors(t *testing.T) {
	st := buildIntroStore(t)
	q := sparql.MustParse(`SELECT * WHERE { ?p <http://x/firstName> %name . }`)
	if _, err := Compile(q, st); err == nil {
		t.Fatal("expected error for unbound parameter")
	}
}

func TestCompileMissingTerm(t *testing.T) {
	st := buildIntroStore(t)
	c := mustCompile(t, st, `SELECT * WHERE { ?p <http://x/firstName> "Zzyzx" . }`)
	if !c.Patterns[0].Missing {
		t.Fatal("unknown literal should be Missing")
	}
	est := NewEstimator(st)
	if card := est.PatternCard(c.Patterns[0]); card != 0 {
		t.Fatalf("missing pattern card = %v, want 0", card)
	}
	p, err := Optimize(c, est)
	if err != nil {
		t.Fatal(err)
	}
	if p.EstCard != 0 {
		t.Fatalf("plan card = %v, want 0", p.EstCard)
	}
}

func TestEstimatorExactSinglePatterns(t *testing.T) {
	st := buildIntroStore(t)
	est := NewEstimator(st)
	c := mustCompile(t, st, `SELECT * WHERE {
  ?p <http://x/livesIn> <http://x/China> .
  ?p <http://x/firstName> ?n .
  ?p ?pr <http://x/USA> .
}`)
	if got := est.PatternCard(c.Patterns[0]); got != 501 {
		t.Fatalf("China residents = %v, want 501", got)
	}
	if got := est.PatternCard(c.Patterns[1]); got != 1001 {
		t.Fatalf("firstName triples = %v, want 1001", got)
	}
	if got := est.PatternCard(c.Patterns[2]); got != 500 {
		t.Fatalf("USA triples = %v, want 500", got)
	}
}

func TestCoutDefinition(t *testing.T) {
	// Leaf cost must be 0; join cost = card + children costs.
	leafA := &Node{Leaf: &CompiledPattern{Index: 0}, Card: 10}
	leafB := &Node{Leaf: &CompiledPattern{Index: 1}, Card: 20}
	join := &Node{Left: leafA, Right: leafB, Card: 5, Cost: 5}
	if leafA.Cost != 0 || join.Cost != 5 {
		t.Fatal("Cout definition violated")
	}
	top := &Node{Left: join, Right: &Node{Leaf: &CompiledPattern{Index: 2}, Card: 3}, Card: 2, Cost: 2 + 5}
	if top.Cost != 7 {
		t.Fatal("Cout accumulation broken")
	}
}

func TestSignatureCanonical(t *testing.T) {
	a := &Node{Leaf: &CompiledPattern{Index: 0}}
	b := &Node{Leaf: &CompiledPattern{Index: 1}}
	ab := &Node{Left: a, Right: b}
	ba := &Node{Left: b, Right: a}
	if ab.Signature() != ba.Signature() {
		t.Fatalf("commutated joins differ: %s vs %s", ab.Signature(), ba.Signature())
	}
	c := &Node{Leaf: &CompiledPattern{Index: 2}}
	leftDeep := &Node{Left: ab, Right: c}
	rightDeep := &Node{Left: a, Right: &Node{Left: b, Right: c}}
	if leftDeep.Signature() == rightDeep.Signature() {
		t.Fatal("different association shapes must differ")
	}
}

func TestOptimizeSelectiveFirst(t *testing.T) {
	// John+China: the selective pattern (John) must be joined before the
	// unselective livesIn China scan is exploded — DP picks it up from the
	// cardinalities automatically.
	st := buildIntroStore(t)
	est := NewEstimator(st)
	c := mustCompile(t, st, `SELECT * WHERE {
  ?p <http://x/firstName> "John" .
  ?p <http://x/livesIn> <http://x/China> .
  ?p a <http://x/Person> .
}`)
	p, err := Optimize(c, est)
	if err != nil {
		t.Fatal(err)
	}
	if p.Method != "dp" {
		t.Fatalf("method = %s", p.Method)
	}
	// The first join must involve pattern 0 (John) and pattern 1 (China),
	// not the huge rdf:type scan.
	root := p.Root
	if root.IsLeaf() {
		t.Fatal("root is leaf")
	}
	firstJoin := root.Left
	if firstJoin.IsLeaf() {
		firstJoin = root.Right
	}
	pats := firstJoin.Patterns()
	if len(pats) != 2 {
		t.Fatalf("first join over %v", pats)
	}
	for _, idx := range pats {
		if idx == 2 {
			t.Fatalf("rdf:type scan joined first: %s", p.Root)
		}
	}
}

func TestDPOptimalVsBruteForce(t *testing.T) {
	// For every 3-pattern chain query, DP must be at least as cheap as all
	// left-deep orders enumerated by brute force.
	st := buildIntroStore(t)
	est := NewEstimator(st)
	c := mustCompile(t, st, `SELECT * WHERE {
  ?p <http://x/firstName> ?n .
  ?p <http://x/livesIn> ?c .
  ?p a <http://x/Person> .
}`)
	p, err := Optimize(c, est)
	if err != nil {
		t.Fatal(err)
	}
	perms := [][]int{{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}}
	for _, perm := range perms {
		cost := leftDeepCost(est, c, perm)
		if p.EstCost > cost+1e-9 {
			t.Fatalf("DP cost %.1f > left-deep %v cost %.1f", p.EstCost, perm, cost)
		}
	}
}

func leftDeepCost(est *Estimator, c *Compiled, order []int) float64 {
	cur := est.Leaf(c.Patterns[order[0]])
	cost := 0.0
	for _, idx := range order[1:] {
		next := est.Leaf(c.Patterns[idx])
		cur = est.Join(cur, next)
		cost += cur.Card
	}
	return cost
}

func TestGreedyProducesValidTree(t *testing.T) {
	st := buildIntroStore(t)
	est := NewEstimator(st)
	c := mustCompile(t, st, `SELECT * WHERE {
  ?p <http://x/firstName> ?n .
  ?p <http://x/livesIn> ?c .
  ?p a <http://x/Person> .
}`)
	g, err := OptimizeGreedy(c, est)
	if err != nil {
		t.Fatal(err)
	}
	if g.Method != "greedy" {
		t.Fatalf("method = %s", g.Method)
	}
	pats := g.Root.Patterns()
	if len(pats) != 3 {
		t.Fatalf("greedy tree covers %v", pats)
	}
	seen := map[int]bool{}
	for _, idx := range pats {
		if seen[idx] {
			t.Fatalf("pattern %d appears twice", idx)
		}
		seen[idx] = true
	}
	// Greedy can never beat exact DP.
	d, err := Optimize(c, est)
	if err != nil {
		t.Fatal(err)
	}
	if g.EstCost < d.EstCost-1e-9 {
		t.Fatalf("greedy %.1f beat DP %.1f", g.EstCost, d.EstCost)
	}
}

func TestDisconnectedCrossProduct(t *testing.T) {
	st := buildIntroStore(t)
	est := NewEstimator(st)
	c := mustCompile(t, st, `SELECT * WHERE {
  ?p <http://x/firstName> "Li" .
  ?q <http://x/firstName> "John" .
}`)
	p, err := Optimize(c, est)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Root.Patterns()) != 2 {
		t.Fatal("cross product plan incomplete")
	}
	if p.EstCard <= 0 {
		t.Fatalf("cross product card = %v", p.EstCard)
	}
}

func TestOptimizeSingle(t *testing.T) {
	st := buildIntroStore(t)
	est := NewEstimator(st)
	c := mustCompile(t, st, `SELECT * WHERE { ?p <http://x/firstName> "Li" . }`)
	p, err := Optimize(c, est)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Root.IsLeaf() || p.EstCost != 0 {
		t.Fatalf("single-pattern plan should be a free scan: %+v", p)
	}
	if p.Signature != "p0" {
		t.Fatalf("signature = %q", p.Signature)
	}
}

func TestLargeQueryFallsBackToGreedy(t *testing.T) {
	st := buildIntroStore(t)
	est := NewEstimator(st)
	var src string
	src = "SELECT * WHERE {\n"
	for i := 0; i < MaxDPPatterns+1; i++ {
		src += fmt.Sprintf("  ?p%d <http://x/firstName> ?n%d .\n  ?p%d <http://x/livesIn> ?c .\n", i, i, i)
	}
	src += "}"
	c := mustCompile(t, st, src)
	p, err := Optimize(c, est)
	if err != nil {
		t.Fatal(err)
	}
	if p.Method != "greedy" {
		t.Fatalf("method = %s, want greedy for %d patterns", p.Method, len(c.Patterns))
	}
}

func TestPlanString(t *testing.T) {
	st := buildIntroStore(t)
	est := NewEstimator(st)
	c := mustCompile(t, st, `SELECT * WHERE {
  ?p <http://x/firstName> "Li" .
  ?p <http://x/livesIn> <http://x/China> .
}`)
	p, err := Optimize(c, est)
	if err != nil {
		t.Fatal(err)
	}
	if s := p.String(); s == "" {
		t.Fatal("empty render")
	}
}
