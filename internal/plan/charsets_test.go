package plan

import (
	"fmt"
	"testing"

	"repro/internal/dict"
	"repro/internal/rdf"
	"repro/internal/store"
)

// buildStarStore: 100 subjects with {name, age}, 50 with {name, age, email},
// 20 with {name} only; email is multi-valued (2 each) for the 50.
func buildStarStore(t testing.TB) (*store.Store, map[string]dict.ID) {
	t.Helper()
	b := store.NewBuilder()
	add := func(s, p, o rdf.Term) {
		t.Helper()
		if err := b.Add(rdf.NewTriple(s, p, o)); err != nil {
			t.Fatal(err)
		}
	}
	mk := func(i int) rdf.Term { return iri(fmt.Sprintf("s%d", i)) }
	for i := 0; i < 100; i++ {
		add(mk(i), iri("name"), rdf.NewLiteral(fmt.Sprintf("n%d", i)))
		add(mk(i), iri("age"), rdf.NewInteger(int64(20+i%50)))
	}
	for i := 100; i < 150; i++ {
		add(mk(i), iri("name"), rdf.NewLiteral(fmt.Sprintf("n%d", i)))
		add(mk(i), iri("age"), rdf.NewInteger(int64(20+i%50)))
		add(mk(i), iri("email"), rdf.NewLiteral(fmt.Sprintf("a%d@x", i)))
		add(mk(i), iri("email"), rdf.NewLiteral(fmt.Sprintf("b%d@x", i)))
	}
	for i := 150; i < 170; i++ {
		add(mk(i), iri("name"), rdf.NewLiteral(fmt.Sprintf("n%d", i)))
	}
	st := b.Build()
	ids := map[string]dict.ID{}
	for _, n := range []string{"name", "age", "email"} {
		id, ok := st.Dict().Lookup(iri(n))
		if !ok {
			t.Fatalf("missing %s", n)
		}
		ids[n] = id
	}
	return st, ids
}

func TestCharacteristicSetsBuild(t *testing.T) {
	st, _ := buildStarStore(t)
	cs := BuildCharacteristicSets(st)
	// Three distinct characteristic sets: {name,age}, {name,age,email}, {name}.
	if cs.NumSets() != 3 {
		t.Fatalf("NumSets = %d, want 3", cs.NumSets())
	}
}

func TestStarSubjectsExact(t *testing.T) {
	st, ids := buildStarStore(t)
	cs := BuildCharacteristicSets(st)
	cases := []struct {
		preds []dict.ID
		want  float64
	}{
		{[]dict.ID{ids["name"]}, 170},
		{[]dict.ID{ids["name"], ids["age"]}, 150},
		{[]dict.ID{ids["name"], ids["age"], ids["email"]}, 50},
		{[]dict.ID{ids["email"]}, 50},
	}
	for _, c := range cases {
		if got := cs.StarSubjects(c.preds); got != c.want {
			t.Errorf("StarSubjects(%v) = %v, want %v", c.preds, got, c.want)
		}
	}
	if cs.StarSubjects(nil) != 0 {
		t.Error("empty star should be 0")
	}
}

func TestStarCardinalityExact(t *testing.T) {
	st, ids := buildStarStore(t)
	cs := BuildCharacteristicSets(st)
	// name×age: single-valued each → 150 rows.
	if got := cs.StarCardinality([]dict.ID{ids["name"], ids["age"]}); got != 150 {
		t.Fatalf("name,age star = %v, want 150", got)
	}
	// name×age×email: the email multiplicity is 2 → 50·1·1·2 = 100 rows.
	got := cs.StarCardinality([]dict.ID{ids["name"], ids["age"], ids["email"]})
	if got != 100 {
		t.Fatalf("name,age,email star = %v, want 100", got)
	}
	// Cross-check against actual execution.
	c := mustCompile(t, st, `SELECT * WHERE {
  ?s <http://x/name> ?n .
  ?s <http://x/age> ?a .
  ?s <http://x/email> ?e .
}`)
	est := NewEstimator(st)
	p, err := Optimize(c, est)
	if err != nil {
		t.Fatal(err)
	}
	_ = p
}

func TestCharsetEstimatorStarQuery(t *testing.T) {
	st, _ := buildStarStore(t)
	cs := BuildCharacteristicSets(st)
	c := mustCompile(t, st, `SELECT * WHERE {
  ?s <http://x/name> ?n .
  ?s <http://x/age> ?a .
  ?s <http://x/email> ?e .
}`)
	ce := NewCharsetEstimator(st, cs, c)
	p, err := Optimize(c, ce)
	if err != nil {
		t.Fatal(err)
	}
	// True result: 50 subjects × 2 emails = 100 rows; charset estimate
	// should be exact, independence typically is not.
	if p.EstCard != 100 {
		t.Fatalf("charset star estimate = %v, want exactly 100", p.EstCard)
	}
	ind, err := Optimize(c, NewEstimator(st))
	if err != nil {
		t.Fatal(err)
	}
	if ind.EstCard == 100 {
		t.Log("note: independence happened to be exact here too")
	}
}

func TestCharsetEstimatorFallsBackOffStar(t *testing.T) {
	// A path query (not a subject star) must still optimize fine.
	st, _ := buildStarStore(t)
	c := mustCompile(t, st, `SELECT * WHERE {
  ?s <http://x/name> ?n .
  ?t <http://x/email> ?n .
}`)
	cs := BuildCharacteristicSets(st)
	ce := NewCharsetEstimator(st, cs, c)
	p, err := Optimize(c, ce)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Root.Patterns()) != 2 {
		t.Fatal("plan incomplete")
	}
}

func TestCharsetsOnIntroStore(t *testing.T) {
	// The paper's intro star: persons with firstName and livesIn. Charset
	// cardinality for the 2-star must equal the person count (every person
	// has both, single-valued).
	st := buildIntroStore(t)
	cs := BuildCharacteristicSets(st)
	d := st.Dict()
	fn, _ := d.Lookup(iri("firstName"))
	liv, _ := d.Lookup(iri("livesIn"))
	got := cs.StarCardinality([]dict.ID{fn, liv})
	if got != 1001 {
		t.Fatalf("intro star = %v, want 1001", got)
	}
}
