package plan

import (
	"math/bits"

	"repro/internal/dict"
	"repro/internal/sparql"
	"repro/internal/store"
)

// SamplingEstimator is a correlation-aware Model: instead of assuming
// independence between join predicates, it measures pairwise join
// selectivities by probing the store with (a sample of) the actual pattern
// matches. On correlated data (the paper's central concern) the
// independence assumption can be off by orders of magnitude; sampled
// selectivities capture the correlation at a bounded cost.
//
// The model is System-R-style pairwise: card(A ⋈ B) is estimated as
// card(A)·card(B)·∏ s_ij over connected pattern pairs (i∈A, j∈B), where
// s_ij = |p_i ⋈ p_j| / (|p_i|·|p_j|) is computed once per compiled query by
// index probing. Per-variable distinct counts and everything else follow
// the base Estimator.
type SamplingEstimator struct {
	base *Estimator
	// pairSel[i][j] is s_ij for connected pattern pairs; -1 when the pair
	// shares no variable.
	pairSel [][]float64
	// varsOf[i] is the variable set of pattern i.
	varsOf []map[sparql.Var]bool
	// leafD[i][v] is the base estimator's distinct-value estimate for
	// variable v in pattern i (used to pick the representative pair).
	leafD []map[sparql.Var]float64
	// sampleSize bounds the number of outer rows probed per pair.
	sampleSize int
}

// DefaultSampleSize bounds per-pair probing work.
const DefaultSampleSize = 512

// NewSamplingEstimator precomputes pairwise join selectivities for the
// compiled query c. sampleSize <= 0 selects DefaultSampleSize.
func NewSamplingEstimator(st store.Source, c *Compiled, sampleSize int) *SamplingEstimator {
	if sampleSize <= 0 {
		sampleSize = DefaultSampleSize
	}
	e := &SamplingEstimator{
		base:       NewEstimator(st),
		sampleSize: sampleSize,
	}
	n := len(c.Patterns)
	e.pairSel = make([][]float64, n)
	e.varsOf = make([]map[sparql.Var]bool, n)
	for i := range e.pairSel {
		e.pairSel[i] = make([]float64, n)
		for j := range e.pairSel[i] {
			e.pairSel[i][j] = -1
		}
		e.varsOf[i] = map[sparql.Var]bool{}
		e.leafD = append(e.leafD, map[sparql.Var]float64{})
		for _, v := range c.Patterns[i].Vars() {
			e.varsOf[i][v] = true
			e.leafD[i][v] = e.base.varDistinct(c.Patterns[i], v)
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if !shareVar(c.Patterns[i], c.Patterns[j]) {
				continue
			}
			s := e.sampleJoinSelectivity(&c.Patterns[i], &c.Patterns[j])
			e.pairSel[i][j] = s
			e.pairSel[j][i] = s
		}
	}
	return e
}

// sampleJoinSelectivity estimates |a ⋈ b| / (|a|·|b|) by binding a sample
// of a's matches into b and summing exact index counts.
func (e *SamplingEstimator) sampleJoinSelectivity(a, b *CompiledPattern) float64 {
	st := e.base.Store()
	if a.Missing || b.Missing {
		return 0
	}
	ca, cb := st.Count(a.Pat), st.Count(b.Pat)
	if ca == 0 || cb == 0 {
		return 0
	}
	// Probe from the smaller side for accuracy.
	if cb < ca {
		a, b = b, a
		ca, cb = cb, ca
	}
	matches, _ := st.Match(a.Pat)
	stride := 1
	if len(matches) > e.sampleSize {
		stride = len(matches) / e.sampleSize
	}
	// Positions of a's variables shared with b, and the b positions they
	// bind.
	type link struct{ aPos, bPos int }
	var links []link
	aVars := [3]sparql.Var{a.VarS, a.VarP, a.VarO}
	bVars := [3]sparql.Var{b.VarS, b.VarP, b.VarO}
	for ai, av := range aVars {
		if av == "" {
			continue
		}
		for bi, bv := range bVars {
			if av == bv {
				links = append(links, link{aPos: ai, bPos: bi})
			}
		}
	}
	if len(links) == 0 {
		return -1
	}
	get := func(t store.IDTriple, pos int) dict.ID {
		switch pos {
		case 0:
			return t.S
		case 1:
			return t.P
		default:
			return t.O
		}
	}
	var joined float64
	probed := 0
	for i := 0; i < len(matches); i += stride {
		m := matches[i]
		pat := b.Pat
		conflict := false
		for _, l := range links {
			v := get(m, l.aPos)
			switch l.bPos {
			case 0:
				if pat.S != dict.None && pat.S != v {
					conflict = true
				}
				pat.S = v
			case 1:
				if pat.P != dict.None && pat.P != v {
					conflict = true
				}
				pat.P = v
			default:
				if pat.O != dict.None && pat.O != v {
					conflict = true
				}
				pat.O = v
			}
		}
		probed++
		if conflict {
			continue
		}
		joined += float64(st.Count(pat))
	}
	if probed == 0 {
		return 0
	}
	// Scale the sampled join size back to the full outer side.
	est := joined * float64(len(matches)) / float64(probed)
	return est / (float64(ca) * float64(cb))
}

// Leaf delegates to the exact single-pattern estimator.
func (e *SamplingEstimator) Leaf(cp CompiledPattern) Set { return e.base.Leaf(cp) }

// Join estimates card(A⋈B) with sampled pairwise selectivities. The join
// condition between the two sides is one equality per shared *variable*
// (further pattern pairs through the same variable are transitively
// redundant — multiplying them all would badly over-correct on star
// queries), so the model greedily picks one representative sampled pair per
// uncovered shared variable; a chosen pair covers every variable it binds.
// Variables with no sampled pair fall back to the independence formula.
// Distinct-value bookkeeping reuses the base model.
func (e *SamplingEstimator) Join(a, b Set) Set {
	out := joinSets(a, b) // distincts, mask, and the fallback card
	// Shared variables between the sides.
	bvars := map[sparql.Var]bool{}
	for v := range b.Distinct {
		bvars[v] = true
	}
	var shared []sparql.Var
	for v := range a.Distinct {
		if bvars[v] {
			shared = append(shared, v)
		}
	}
	if len(shared) == 0 {
		return out
	}
	sortVars(shared)
	card := a.Card * b.Card
	covered := map[sparql.Var]bool{}
	applied := false
	for _, v := range shared {
		if covered[v] {
			continue
		}
		// Representative pair: the patterns that bound v most tightly on
		// each side — the tuples surviving into an intermediate result are
		// characterized by the most selective pattern's values of v, so its
		// sampled pair best approximates the conditional selectivity.
		bi, bj, bestSel := -1, -1, -1.0
		bestScore := -1.0
		for _, i := range maskIndexes(a.Mask) {
			if !e.patternHasVar(i, v) {
				continue
			}
			for _, j := range maskIndexes(b.Mask) {
				if !e.patternHasVar(j, v) {
					continue
				}
				if i >= len(e.pairSel) || j >= len(e.pairSel) || e.pairSel[i][j] < 0 {
					continue
				}
				score := e.leafD[i][v] + e.leafD[j][v] // lower = tighter
				if bestScore < 0 || score < bestScore {
					bi, bj, bestSel, bestScore = i, j, e.pairSel[i][j], score
				}
			}
		}
		if bestSel < 0 {
			// No sampled pair: independence fallback for this variable.
			da, db := a.Distinct[v], b.Distinct[v]
			m := da
			if db > m {
				m = db
			}
			if m > 0 {
				card /= m
			}
			covered[v] = true
			continue
		}
		card *= bestSel
		applied = true
		// The chosen pair covers every variable both its patterns bind.
		for _, u := range shared {
			if e.patternHasVar(bi, u) && e.patternHasVar(bj, u) {
				covered[u] = true
			}
		}
	}
	if applied {
		out.Card = card
		for v, d := range out.Distinct {
			if d > out.Card {
				out.Distinct[v] = out.Card
			}
		}
	}
	return out
}

func (e *SamplingEstimator) patternHasVar(i int, v sparql.Var) bool {
	if i < 0 || i >= len(e.varsOf) {
		return false
	}
	return e.varsOf[i][v]
}

func sortVars(vs []sparql.Var) {
	for i := 1; i < len(vs); i++ {
		for j := i; j > 0 && vs[j] < vs[j-1]; j-- {
			vs[j], vs[j-1] = vs[j-1], vs[j]
		}
	}
}

func maskIndexes(mask uint32) []int {
	out := make([]int, 0, bits.OnesCount32(mask))
	for mask != 0 {
		i := bits.TrailingZeros32(mask)
		out = append(out, i)
		mask &^= 1 << i
	}
	return out
}
