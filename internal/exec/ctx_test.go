package exec

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/internal/plan"
	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/store"
)

// TestEarlyStopRowsUnchanged checks that EarlyStop never changes result
// rows — only the accounting may shrink (it reflects the work actually
// done, never more than the draining run's).
func TestEarlyStopRowsUnchanged(t *testing.T) {
	st := buildStreamStore(t)
	for _, src := range equivalenceQueries {
		q := sparql.MustParse(src)
		full, _, err := Query(q, st, Options{})
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		early, _, err := Query(q, st, Options{EarlyStop: true})
		if err != nil {
			t.Fatalf("%s early: %v", src, err)
		}
		if len(early.Rows) != len(full.Rows) {
			t.Fatalf("%s: EarlyStop changed row count %d -> %d", src, len(full.Rows), len(early.Rows))
		}
		for i := range early.Rows {
			for j := range early.Rows[i] {
				if early.Rows[i][j] != full.Rows[i][j] {
					t.Fatalf("%s: EarlyStop changed row %d", src, i)
				}
			}
		}
		if early.Work > full.Work || early.Scanned > full.Scanned || early.Cout > full.Cout {
			t.Fatalf("%s: EarlyStop did more work: work %v>%v scanned %d>%d cout %v>%v",
				src, early.Work, full.Work, early.Scanned, full.Scanned, early.Cout, full.Cout)
		}
		if q.Limit == 0 {
			// Without LIMIT there is nothing to stop early: the accounting
			// must be bit-identical.
			assertResultsIdentical(t, src+" (no limit)", early, full)
		}
	}
}

// TestEarlyStopSkipsWork checks the point of the flag: a LIMIT over a large
// scan stops after ~limit tuples instead of draining thousands.
func TestEarlyStopSkipsWork(t *testing.T) {
	st := buildChainStore(t, 6000)
	q := sparql.MustParse(`SELECT * WHERE { ?s ?p ?o . } LIMIT 5`)
	full, _, err := Query(q, st, Options{})
	if err != nil {
		t.Fatal(err)
	}
	early, _, err := Query(q, st, Options{EarlyStop: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(early.Rows) != 5 || len(full.Rows) != 5 {
		t.Fatalf("rows: early %d full %d", len(early.Rows), len(full.Rows))
	}
	if full.Scanned < 1000 {
		t.Fatalf("draining run should scan the whole store, scanned %d", full.Scanned)
	}
	if early.Scanned > 2*streamBatch {
		t.Fatalf("EarlyStop should stop within a couple of batches, scanned %d", early.Scanned)
	}
}

// TestRunCtxCancellation checks both engines abort with the context's error
// when it is cancelled.
func TestRunCtxCancellation(t *testing.T) {
	st := buildStreamStore(t)
	q := sparql.MustParse(`SELECT * WHERE { ?a <http://x/knows> ?b . ?b <http://x/knows> ?c . }`)
	c, err := plan.Compile(q, st)
	if err != nil {
		t.Fatal(err)
	}
	p, err := plan.Optimize(c, plan.NewEstimator(st))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, mode := range []ExecMode{Streaming, Materializing} {
		if _, err := RunCtx(ctx, c, p, st, Options{Mode: mode}); !errors.Is(err, context.Canceled) {
			t.Fatalf("mode %d: want context.Canceled, got %v", mode, err)
		}
	}
	// A live context executes normally and matches Run exactly.
	got, err := RunCtx(context.Background(), c, p, st, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := Run(c, p, st, Options{})
	if err != nil {
		t.Fatal(err)
	}
	assertResultsIdentical(t, "live ctx", got, want)
}

// buildChainStore creates a deterministic chain graph with n triples —
// large enough that a full scan spans many stream batches.
func buildChainStore(t testing.TB, n int) *store.Store {
	t.Helper()
	b := store.NewBuilder()
	for i := 0; i < n; i++ {
		tr := rdf.NewTriple(
			iri(fmt.Sprintf("s%d", i)),
			iri(fmt.Sprintf("p%d", i%3)),
			iri(fmt.Sprintf("s%d", (i+1)%n)),
		)
		if err := b.Add(tr); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}
