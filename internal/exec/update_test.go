package exec

import (
	"reflect"
	"testing"

	"repro/internal/sparql"
)

// applyAndQuery applies an update to the social store and returns the
// rows of a follow-up query against the resulting overlay.
func applyAndQuery(t *testing.T, update, query string) []string {
	t.Helper()
	st := buildSocialStore(t)
	d, err := ApplyUpdate(st, sparql.MustParseUpdate(update))
	if err != nil {
		t.Fatal(err)
	}
	snap := d.Overlay()
	res := run(t, snap, query, Options{})
	return decodeRows(snap, res)
}

func TestUpdateDeleteWhere(t *testing.T) {
	// DELETE WHERE shorthand: drop every knows edge out of alice.
	got := applyAndQuery(t,
		`DELETE WHERE { <http://x/alice> <http://x/knows> ?q . }`,
		`SELECT ?p ?q WHERE { ?p <http://x/knows> ?q . } ORDER BY ?p ?q`)
	want := []string{"<http://x/bob> | <http://x/carol>"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("rows = %v, want %v", got, want)
	}
}

func TestUpdateInsertWhere(t *testing.T) {
	// Materialize the symmetric closure of knows.
	got := applyAndQuery(t,
		`INSERT { ?q <http://x/knows> ?p . } WHERE { ?p <http://x/knows> ?q . }`,
		`SELECT ?p ?q WHERE { ?p <http://x/knows> ?q . } ORDER BY ?p ?q`)
	want := []string{
		"<http://x/alice> | <http://x/bob>",
		"<http://x/alice> | <http://x/carol>",
		"<http://x/bob> | <http://x/alice>",
		"<http://x/bob> | <http://x/carol>",
		"<http://x/carol> | <http://x/alice>",
		"<http://x/carol> | <http://x/bob>",
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("rows = %v, want %v", got, want)
	}
}

func TestUpdateDeleteInsertWhere(t *testing.T) {
	// Rename a predicate in one pass: deletions apply before insertions,
	// both instantiated from the same pre-op solution set.
	got := applyAndQuery(t,
		`DELETE { ?p <http://x/age> ?a . } INSERT { ?p <http://x/years> ?a . } WHERE { ?p <http://x/age> ?a . FILTER(?a > 20) }`,
		`SELECT ?p ?a WHERE { ?p <http://x/years> ?a . } ORDER BY ?p`)
	want := []string{
		`<http://x/alice> | "30"^^<http://www.w3.org/2001/XMLSchema#integer>`,
		`<http://x/carol> | "45"^^<http://www.w3.org/2001/XMLSchema#integer>`,
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("rows = %v, want %v", got, want)
	}
	got = applyAndQuery(t,
		`DELETE { ?p <http://x/age> ?a . } INSERT { ?p <http://x/years> ?a . } WHERE { ?p <http://x/age> ?a . FILTER(?a > 20) }`,
		`SELECT ?p ?a WHERE { ?p <http://x/age> ?a . } ORDER BY ?p`)
	want = []string{`<http://x/bob> | "17"^^<http://www.w3.org/2001/XMLSchema#integer>`}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("remaining age rows = %v, want %v", got, want)
	}
}

func TestUpdateOpsSeeEarlierOps(t *testing.T) {
	// The second op's WHERE must observe the first op's insertion.
	got := applyAndQuery(t,
		`INSERT DATA { <http://x/dave> <http://x/knows> <http://x/alice> . } ;
		 INSERT { ?p <http://x/greeted> ?q . } WHERE { ?p <http://x/knows> ?q . ?q <http://x/knows> ?r . }`,
		`SELECT ?p ?q WHERE { ?p <http://x/greeted> ?q . } ORDER BY ?p ?q`)
	want := []string{
		"<http://x/alice> | <http://x/bob>",
		"<http://x/dave> | <http://x/alice>",
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("rows = %v, want %v", got, want)
	}
}

func TestUpdateSkipsInvalidInstantiation(t *testing.T) {
	// ?a binds to a literal; using it as subject yields an invalid
	// triple, which is skipped silently rather than failing the update.
	st := buildSocialStore(t)
	d, err := ApplyUpdate(st, sparql.MustParseUpdate(
		`INSERT { ?a <http://x/p> ?p . } WHERE { ?p <http://x/age> ?a . }`))
	if err != nil {
		t.Fatal(err)
	}
	if d.InsertCount() != 0 {
		t.Fatalf("inserts = %d, want 0 (literal subjects skipped)", d.InsertCount())
	}
}

func TestUpdateWhereNoMatchIsNoop(t *testing.T) {
	st := buildSocialStore(t)
	d0 := st.NewDelta()
	d, err := ApplyUpdateDelta(d0, sparql.MustParseUpdate(
		`DELETE WHERE { ?p <http://x/nosuch> ?q . }`))
	if err != nil {
		t.Fatal(err)
	}
	if d != d0 {
		t.Fatal("no-match update should return the input delta unchanged")
	}
}
