package exec

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/store"
)

// edgeEngines is every engine configuration the edge cases run through:
// both engines, and the streaming engine at Parallelism 2 and 8 with
// single-triple morsels so even one-triple stores exercise the parallel
// machinery.
func edgeEngines() map[string]Options {
	return map[string]Options{
		"materializing":   {Mode: Materializing},
		"streaming":       {},
		"streaming-p2-m1": {Parallelism: 2, MorselSize: 1},
		"streaming-p8-m1": {Parallelism: 8, MorselSize: 1},
		"streaming-early": {EarlyStop: true},
		"streaming-p8-es": {Parallelism: 8, MorselSize: 1, EarlyStop: true},
	}
}

func edgeStore(t *testing.T, n int) *store.Store {
	t.Helper()
	b := store.NewBuilder()
	for i := 0; i < n; i++ {
		tr := rdf.Triple{
			S: rdf.NewIRI(fmt.Sprintf("http://x/s%d", i%5)),
			P: rdf.NewIRI(fmt.Sprintf("http://x/p%d", i%2)),
			O: rdf.NewInteger(int64(i)),
		}
		if err := b.Add(tr); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

// TestEdgeCases is the table-driven slice/empty/single-triple suite: each
// case pins the expected row count (and sometimes the exact rows) and must
// hold on every engine configuration, with identical rows across engines.
func TestEdgeCases(t *testing.T) {
	empty := edgeStore(t, 0)
	single := edgeStore(t, 1)
	dozen := edgeStore(t, 12)

	cases := []struct {
		name     string
		st       *store.Store
		query    string
		wantRows int
	}{
		{"limit-0", dozen, `SELECT * WHERE { ?s ?p ?o . } LIMIT 0`, 0},
		{"limit-0-ordered", dozen, `SELECT * WHERE { ?s ?p ?o . } ORDER BY ?o LIMIT 0`, 0},
		{"limit-exceeds", dozen, `SELECT * WHERE { ?s ?p ?o . } LIMIT 9999`, 12},
		{"offset-past-end", dozen, `SELECT * WHERE { ?s ?p ?o . } OFFSET 50`, 0},
		{"offset-at-end", dozen, `SELECT * WHERE { ?s ?p ?o . } OFFSET 12`, 0},
		{"offset-mid", dozen, `SELECT * WHERE { ?s ?p ?o . } ORDER BY ?o OFFSET 10`, 2},
		{"offset-plus-limit", dozen, `SELECT * WHERE { ?s ?p ?o . } ORDER BY ?o LIMIT 4 OFFSET 3`, 4},
		{"offset-limit-tail", dozen, `SELECT * WHERE { ?s ?p ?o . } ORDER BY ?o LIMIT 10 OFFSET 10`, 2},
		{"offset-zero", dozen, `SELECT * WHERE { ?s ?p ?o . } OFFSET 0`, 12},
		{"empty-store-scan", empty, `SELECT * WHERE { ?s ?p ?o . }`, 0},
		{"empty-store-join", empty, `SELECT * WHERE { ?s <http://x/p0> ?o . ?o <http://x/p1> ?q . }`, 0},
		{"empty-store-filter", empty, `SELECT * WHERE { ?s ?p ?o . FILTER(?o > 3) }`, 0},
		{"empty-store-limit", empty, `SELECT * WHERE { ?s ?p ?o . } LIMIT 5 OFFSET 1`, 0},
		{"single-triple", single, `SELECT * WHERE { ?s ?p ?o . }`, 1},
		{"single-triple-bound", single, `SELECT ?o WHERE { <http://x/s0> <http://x/p0> ?o . }`, 1},
		{"single-triple-miss", single, `SELECT * WHERE { ?s <http://x/nope> ?o . }`, 0},
		{"single-triple-offset", single, `SELECT * WHERE { ?s ?p ?o . } OFFSET 1`, 0},
		{"single-triple-self-join", single, `SELECT * WHERE { ?s ?p ?o . ?s <http://x/p0> ?o . }`, 1},
		{"missing-constant", dozen, `SELECT * WHERE { ?s <http://x/unseen> ?o . ?s ?p ?q . }`, 0},
		{"repeated-var", dozen, `SELECT * WHERE { ?s ?p ?s . }`, 0},
		{"distinct-preds", dozen, `SELECT DISTINCT ?p WHERE { ?s ?p ?o . }`, 2},
		{"distinct-limit-0", dozen, `SELECT DISTINCT ?p WHERE { ?s ?p ?o . } LIMIT 0`, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			q, err := sparql.Parse(tc.query)
			if err != nil {
				t.Fatal(err)
			}
			var ref string
			var refName string
			for name, opts := range edgeEngines() {
				res, _, err := Query(q, tc.st, opts)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if len(res.Rows) != tc.wantRows {
					t.Fatalf("%s: %d rows, want %d", name, len(res.Rows), tc.wantRows)
				}
				got := renderRows(tc.st, res)
				if ref == "" {
					ref, refName = got, name
					continue
				}
				if got != ref {
					t.Fatalf("rows diverge between %s and %s:\n%s\nvs\n%s", refName, name, ref, got)
				}
			}
		})
	}
}

// renderRows decodes result rows into one comparable string (rows only —
// EarlyStop configurations legitimately differ in accounting).
func renderRows(st *store.Store, res *Result) string {
	var sb strings.Builder
	for _, row := range res.Rows {
		for j, id := range row {
			if j > 0 {
				sb.WriteByte('\t')
			}
			sb.WriteString(st.Dict().Decode(id).String())
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// TestEdgeCasesOverlay reruns a representative slice of the table over a
// delta-overlaid store (including a store whose base is empty), so the
// merge-on-read path hits the same corners.
func TestEdgeCasesOverlay(t *testing.T) {
	base := edgeStore(t, 12)
	d, err := base.NewDelta().Apply(
		[]rdf.Triple{
			{S: rdf.NewIRI("http://x/s9"), P: rdf.NewIRI("http://x/p0"), O: rdf.NewInteger(100)},
			{S: rdf.NewIRI("http://x/s9"), P: rdf.NewIRI("http://x/p1"), O: rdf.NewInteger(101)},
		},
		[]rdf.Triple{
			{S: rdf.NewIRI("http://x/s0"), P: rdf.NewIRI("http://x/p0"), O: rdf.NewInteger(0)},
		})
	if err != nil {
		t.Fatal(err)
	}
	ov := d.Overlay() // 13 triples

	emptyBase := edgeStore(t, 0)
	de, err := emptyBase.NewDelta().Apply([]rdf.Triple{
		{S: rdf.NewIRI("http://x/only"), P: rdf.NewIRI("http://x/p"), O: rdf.NewLiteral("v")},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ovEmptyBase := de.Overlay() // 1 triple, all of it delta

	cases := []struct {
		name     string
		st       *store.Store
		query    string
		wantRows int
	}{
		{"overlay-limit-0", ov, `SELECT * WHERE { ?s ?p ?o . } LIMIT 0`, 0},
		{"overlay-offset-past-end", ov, `SELECT * WHERE { ?s ?p ?o . } OFFSET 99`, 0},
		{"overlay-slice", ov, `SELECT * WHERE { ?s ?p ?o . } ORDER BY ?o LIMIT 5 OFFSET 11`, 2},
		{"overlay-deleted-gone", ov, `SELECT * WHERE { ?s <http://x/p0> ?o . FILTER(?o = 0) }`, 0},
		{"overlay-inserted-seen", ov, `SELECT ?o WHERE { <http://x/s9> ?p ?o . }`, 2},
		{"delta-only-store", ovEmptyBase, `SELECT * WHERE { ?s ?p ?o . }`, 1},
		{"delta-only-offset", ovEmptyBase, `SELECT * WHERE { ?s ?p ?o . } OFFSET 1`, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			q, err := sparql.Parse(tc.query)
			if err != nil {
				t.Fatal(err)
			}
			var ref, refName string
			for name, opts := range edgeEngines() {
				res, _, err := Query(q, tc.st, opts)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if len(res.Rows) != tc.wantRows {
					t.Fatalf("%s: %d rows, want %d", name, len(res.Rows), tc.wantRows)
				}
				got := renderRows(tc.st, res)
				if ref == "" {
					ref, refName = got, name
					continue
				}
				if got != ref {
					t.Fatalf("rows diverge between %s and %s:\n%s\nvs\n%s", refName, name, ref, got)
				}
			}
		})
	}
}
