package exec

import (
	"context"
	"sync/atomic"
	"time"
)

// TokenPool is a shared CPU budget: every concurrently running unit of
// CPU-bound work holds one token. The query service acquires one token per
// admitted query (blocking, queue semantics), and parallel pipeline drivers
// opportunistically TryAcquire extra tokens for their additional workers —
// so intra-query parallelism and inter-query concurrency jointly respect
// one budget instead of multiplying. Opportunistic grabs never block and
// never starve admission: a blocked Acquire is a parked channel send that
// the runtime hands the next released token directly, while TryAcquire
// only wins tokens nobody is waiting for.
//
// The zero-capacity rule is intentional baseline-liveness: holders of an
// admission token make progress with zero extra tokens (a pipeline always
// runs with at least its own goroutine), so the pool cannot deadlock.
type TokenPool struct {
	tokens chan struct{}
	waits  atomic.Uint64 // blocking acquisitions that had to wait
	waitNs atomic.Int64  // total time spent waiting in Acquire
}

// NewTokenPool returns a pool of n tokens. n < 1 is clamped to 1.
func NewTokenPool(n int) *TokenPool {
	if n < 1 {
		n = 1
	}
	return &TokenPool{tokens: make(chan struct{}, n)}
}

// Capacity returns the pool's token count.
func (p *TokenPool) Capacity() int { return cap(p.tokens) }

// InUse returns how many tokens are currently held.
func (p *TokenPool) InUse() int { return len(p.tokens) }

// TryAcquire takes a token without blocking, reporting success. It fails
// whenever the pool is exhausted or another goroutine is blocked in
// Acquire, so opportunistic intra-query workers always yield to admission.
func (p *TokenPool) TryAcquire() bool {
	select {
	case p.tokens <- struct{}{}:
		return true
	default:
		return false
	}
}

// Acquire takes a token, blocking until one frees up or ctx is done. Wait
// time (including aborted waits) is recorded for WaitStats.
func (p *TokenPool) Acquire(ctx context.Context) error {
	if p.TryAcquire() {
		return nil
	}
	start := time.Now()
	defer func() {
		p.waits.Add(1)
		p.waitNs.Add(int64(time.Since(start)))
	}()
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case p.tokens <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Release returns one token to the pool. Releasing more tokens than were
// acquired is a programming error and panics.
func (p *TokenPool) Release() {
	select {
	case <-p.tokens:
	default:
		panic("exec: TokenPool.Release without a matching acquire")
	}
}

// WaitStats returns how many Acquire calls had to wait and the total time
// spent waiting (aborted waits included).
func (p *TokenPool) WaitStats() (waits uint64, waited time.Duration) {
	return p.waits.Load(), time.Duration(p.waitNs.Load())
}
