package exec

import (
	"repro/internal/sparql"
	"repro/internal/store"
)

// The update execution path: exec is the layer that already bridges the
// SPARQL AST and the store, so the one mapping from a parsed
// SPARQL-Update onto delta operations lives here, shared by the query
// service and the CLIs.

// DeltaOps maps a parsed SPARQL-Update onto the store's ordered delta
// operations.
func DeltaOps(u *sparql.Update) []store.DeltaOp {
	ops := make([]store.DeltaOp, len(u.Ops))
	for i, op := range u.Ops {
		ops[i] = store.DeltaOp{Insert: op.Insert, Triples: op.Triples}
	}
	return ops
}

// ApplyUpdate folds u into st's pending delta (set semantics, one pass)
// and returns the extended delta; publish it with Overlay or Commit. The
// returned delta is st's own pending delta when u changes nothing.
func ApplyUpdate(st *store.Store, u *sparql.Update) (*store.Delta, error) {
	return st.NewDelta().ApplyOps(DeltaOps(u))
}
