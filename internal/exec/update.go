package exec

import (
	"repro/internal/dict"
	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/store"
)

// The update execution path: exec is the layer that already bridges the
// SPARQL AST and the store, so the one mapping from a parsed
// SPARQL-Update onto delta operations lives here, shared by the query
// service and the CLIs.
//
// Ground INSERT DATA / DELETE DATA ops fold straight into delta
// operations. Pattern-driven DELETE/INSERT WHERE ops evaluate their
// WHERE block as an ordinary query against the snapshot produced by the
// preceding operations of the same request (base store plus the delta
// accumulated so far, pinned via Overlay), instantiate the templates
// once per solution, and apply the op's deletions before its insertions
// — the SPARQL modify order. Instantiated triples that are not valid
// RDF (a literal subject or predicate from a WHERE binding) are skipped
// silently, matching the spec's treatment of ill-formed instantiations.

// DeltaOps maps a parsed SPARQL-Update onto the store's ordered delta
// operations. WHERE-form ops are data-dependent and cannot be mapped
// statically; callers holding those go through ApplyUpdate instead.
func DeltaOps(u *sparql.Update) []store.DeltaOp {
	ops := make([]store.DeltaOp, len(u.Ops))
	for i, op := range u.Ops {
		ops[i] = store.DeltaOp{Insert: op.Insert, Triples: op.Triples}
	}
	return ops
}

// ApplyUpdate folds u into st's pending delta (set semantics, operations
// in order) and returns the extended delta; publish it with Overlay or
// Commit. The returned delta is st's own pending delta when u changes
// nothing. WHERE-form operations see the effects of every operation
// before them in the same request.
func ApplyUpdate(st *store.Store, u *sparql.Update) (*store.Delta, error) {
	return ApplyUpdateDelta(st.NewDelta(), u)
}

// ApplyUpdateDelta is ApplyUpdate starting from an explicit delta.
// Returns d itself when u changes nothing, so callers (the query
// service) can skip republishing on pointer equality.
func ApplyUpdateDelta(d *store.Delta, u *sparql.Update) (*store.Delta, error) {
	out, err := applyUpdate(singleDelta{d}, u)
	if err != nil {
		return nil, err
	}
	return out.(singleDelta).d, nil
}

// ApplyUpdateSharded is ApplyUpdate over a sharded store's delta: the
// same operation semantics, with triples routed to their home shards.
// Returns sd itself when u changes nothing.
func ApplyUpdateSharded(sd *store.ShardedDelta, u *sparql.Update) (*store.ShardedDelta, error) {
	out, err := applyUpdate(shardedDelta{sd}, u)
	if err != nil {
		return nil, err
	}
	return out.(shardedDelta).d, nil
}

// deltaState abstracts the two delta shapes (single-store and sharded) so
// the update loop and the WHERE-form modify path are written once. Both
// adapters preserve the underlying no-change pointer identity.
type deltaState interface {
	applyOps(ops []store.DeltaOp) (deltaState, error)
	overlay() store.Source
}

type singleDelta struct{ d *store.Delta }

func (s singleDelta) applyOps(ops []store.DeltaOp) (deltaState, error) {
	nd, err := s.d.ApplyOps(ops)
	if err != nil {
		return nil, err
	}
	return singleDelta{nd}, nil
}
func (s singleDelta) overlay() store.Source { return s.d.Overlay() }

type shardedDelta struct{ d *store.ShardedDelta }

func (s shardedDelta) applyOps(ops []store.DeltaOp) (deltaState, error) {
	nd, err := s.d.ApplyOps(ops)
	if err != nil {
		return nil, err
	}
	return shardedDelta{nd}, nil
}
func (s shardedDelta) overlay() store.Source { return s.d.Overlay() }

func applyUpdate(d deltaState, u *sparql.Update) (deltaState, error) {
	if !u.HasWhere() {
		return d.applyOps(DeltaOps(u))
	}
	var err error
	for i := range u.Ops {
		op := &u.Ops[i]
		if !op.IsWhere() {
			d, err = d.applyOps([]store.DeltaOp{{Insert: op.Insert, Triples: op.Triples}})
		} else {
			d, err = applyModify(d, op)
		}
		if err != nil {
			return nil, err
		}
	}
	return d, nil
}

// applyModify executes one DELETE/INSERT WHERE op against the overlay of
// the delta accumulated so far and folds the instantiated triples in,
// deletions first.
func applyModify(d deltaState, op *sparql.UpdateOp) (deltaState, error) {
	snap := d.overlay()
	res, _, err := Query(op.WhereQuery(), snap, Options{})
	if err != nil {
		return nil, err
	}
	if len(res.Rows) == 0 {
		return d, nil
	}
	col := make(map[sparql.Var]int, len(res.Vars))
	for i, v := range res.Vars {
		col[v] = i
	}
	dd := snap.Dict()
	var del, ins []rdf.Triple
	for _, row := range res.Rows {
		del = appendInstantiated(del, op.DeleteTmpl, col, row, dd)
		ins = appendInstantiated(ins, op.InsertTmpl, col, row, dd)
	}
	var ops []store.DeltaOp
	if len(del) > 0 {
		ops = append(ops, store.DeltaOp{Triples: del})
	}
	if len(ins) > 0 {
		ops = append(ops, store.DeltaOp{Insert: true, Triples: ins})
	}
	return d.applyOps(ops)
}

// appendInstantiated appends tmpl instantiated under one solution row,
// skipping instantiations that do not form valid RDF triples. The parser
// guarantees every template variable is bound by the WHERE block, so
// every row binding exists and is a real term.
func appendInstantiated(out []rdf.Triple, tmpl []sparql.TriplePattern, col map[sparql.Var]int, row []dict.ID, dd *dict.Dict) []rdf.Triple {
	for _, tp := range tmpl {
		s, okS := instantiateNode(tp.S, col, row, dd)
		p, okP := instantiateNode(tp.P, col, row, dd)
		o, okO := instantiateNode(tp.O, col, row, dd)
		if !okS || !okP || !okO {
			continue
		}
		t := rdf.Triple{S: s, P: p, O: o}
		if !t.Valid() {
			continue
		}
		out = append(out, t)
	}
	return out
}

func instantiateNode(n sparql.Node, col map[sparql.Var]int, row []dict.ID, dd *dict.Dict) (rdf.Term, bool) {
	if n.Kind != sparql.NodeVar {
		return n.Term, true
	}
	i, ok := col[n.Var]
	if !ok {
		return rdf.Term{}, false
	}
	return dd.TryDecode(row[i])
}
