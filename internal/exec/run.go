package exec

import (
	"repro/internal/plan"
	"repro/internal/sparql"
	"repro/internal/store"
)

// Query runs the full pipeline — compile, optimize (exact DP where
// feasible), execute — and returns both the result and the plan that
// produced it.
func Query(q *sparql.Query, st store.Source, opts Options) (*Result, *plan.Plan, error) {
	c, err := plan.Compile(q, st)
	if err != nil {
		return nil, nil, err
	}
	p, err := plan.Optimize(c, plan.NewEstimator(st))
	if err != nil {
		return nil, nil, err
	}
	res, err := Run(c, p, st, opts)
	if err != nil {
		return nil, nil, err
	}
	return res, p, nil
}

// QueryGreedy is Query with the greedy optimizer, for ablations.
func QueryGreedy(q *sparql.Query, st store.Source, opts Options) (*Result, *plan.Plan, error) {
	c, err := plan.Compile(q, st)
	if err != nil {
		return nil, nil, err
	}
	p, err := plan.OptimizeGreedy(c, plan.NewEstimator(st))
	if err != nil {
		return nil, nil, err
	}
	res, err := Run(c, p, st, opts)
	if err != nil {
		return nil, nil, err
	}
	return res, p, nil
}
