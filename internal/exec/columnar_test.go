package exec

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/plan"
	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/store"
)

// assertBitIdentical checks the columnar acceptance surface: same Vars,
// Rows in the same order, and the same Cout/Work/Scanned accounting.
func assertBitIdentical(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if !reflect.DeepEqual(got.Vars, want.Vars) {
		t.Fatalf("%s: vars %v, want %v", label, got.Vars, want.Vars)
	}
	if !reflect.DeepEqual(got.Rows, want.Rows) {
		t.Fatalf("%s: %d rows, want %d (or order differs)", label, len(got.Rows), len(want.Rows))
	}
	if got.Cout != want.Cout || got.Work != want.Work || got.Scanned != want.Scanned {
		t.Fatalf("%s: accounting (cout=%v work=%v scanned=%d), want (cout=%v work=%v scanned=%d)",
			label, got.Cout, got.Work, got.Scanned, want.Cout, want.Work, want.Scanned)
	}
}

// TestColumnarMatchesStreaming: over a spread of query shapes, the
// columnar engine is bit-identical to streaming — serially and at
// Parallelism 2 and 8 with single-triple morsels.
func TestColumnarMatchesStreaming(t *testing.T) {
	st := buildSocialStore(t)
	queries := []string{
		`SELECT * WHERE { ?s <http://x/knows> ?o . }`,
		`SELECT * WHERE { ?a <http://x/knows> ?b . ?b <http://x/age> ?x . }`,
		`SELECT ?p ?d WHERE { ?p <http://x/creator> ?c . ?p <http://x/date> ?d . ?c <http://x/age> ?x . FILTER(?x > 18) } ORDER BY ?d`,
		`SELECT DISTINCT ?c WHERE { ?p <http://x/creator> ?c . }`,
		`SELECT * WHERE { ?a <http://x/knows> ?b . ?c <http://x/age> ?x . } LIMIT 4 OFFSET 1`,
		`SELECT * WHERE { ?s <http://x/age> ?x . FILTER(?x >= 30) FILTER(?x < 45) }`,
	}
	for qi, src := range queries {
		for _, alg := range []JoinAlgorithm{HashJoin, SortMergeJoin} {
			want := run(t, st, src, Options{Join: alg})
			got := run(t, st, src, Options{Join: alg, Mode: Columnar})
			assertBitIdentical(t, fmt.Sprintf("q%d alg%d columnar", qi, alg), got, want)
			for _, par := range []int{2, 8} {
				pg := run(t, st, src, Options{Join: alg, Mode: Columnar, Parallelism: par, MorselSize: 1})
				assertBitIdentical(t, fmt.Sprintf("q%d alg%d columnar-p%d", qi, alg, par), pg, want)
			}
		}
	}
}

// TestColumnarKernelStats: the columnar run reports its kernel counters
// while the row engines leave them zero.
func TestColumnarKernelStats(t *testing.T) {
	st := buildSocialStore(t)
	src := `SELECT * WHERE { ?s <http://x/age> ?x . FILTER(?x > 18) }`
	c := run(t, st, src, Options{Mode: Columnar})
	if c.Kernels.Batches == 0 || c.Kernels.FilterRows == 0 {
		t.Fatalf("columnar kernels not counted: %+v", c.Kernels)
	}
	s := run(t, st, src, Options{})
	if s.Kernels != (KernelStats{}) {
		t.Fatalf("streaming run reports columnar kernels: %+v", s.Kernels)
	}
}

// buildStarStore builds a store where EVERY binary join order over the
// three-pattern star materializes a large intermediate: three classes of
// n hubs each carry exactly two of the predicates p1/p2/p3 (so every
// pairwise hub intersection has at least n members), while only nFull
// extra hubs carry all three. Whatever pair a binary plan joins first, it
// materializes n+nFull rows to produce nFull results; the multiway join
// intersects all three hub sets up front.
func buildStarStore(t testing.TB, n, nFull int) *store.Store {
	t.Helper()
	b := store.NewBuilder()
	add := func(s, p, o rdf.Term) {
		t.Helper()
		if err := b.Add(rdf.NewTriple(s, p, o)); err != nil {
			t.Fatal(err)
		}
	}
	preds := []string{"p1", "p2", "p3"}
	for class := 0; class < 3; class++ {
		for i := 0; i < n; i++ {
			h := iri(fmt.Sprintf("hub%d-%04d", class, i))
			for pi, p := range preds {
				if pi == class {
					continue // each class misses one predicate
				}
				add(h, iri(p), iri(fmt.Sprintf("%s-leaf%d-%04d", p, class, i)))
			}
		}
	}
	for i := 0; i < nFull; i++ {
		h := iri(fmt.Sprintf("full%04d", i))
		for _, p := range preds {
			add(h, iri(p), iri(fmt.Sprintf("%s-full%04d", p, i)))
		}
	}
	return b.Build()
}

const starSrc = `SELECT * WHERE {
  ?h <http://x/p1> ?a .
  ?h <http://x/p2> ?b .
  ?h <http://x/p3> ?c .
}`

// TestLeapfrogStarCoutAdvantage is the PR's acceptance check in unit-test
// form: on a star query whose binary plan materializes a large
// intermediate, the leapfrog triejoin's measured Cout and Work must be
// asymptotically smaller (here: >10x), with the identical row multiset.
func TestLeapfrogStarCoutAdvantage(t *testing.T) {
	st := buildStarStore(t, 200, 2) // >=202-row binary intermediate, 2 result rows
	bin := run(t, st, starSrc, Options{})
	lf := run(t, st, starSrc, Options{Mode: Columnar, Leapfrog: true})
	if len(lf.Rows) != 2 || len(bin.Rows) != 2 {
		t.Fatalf("rows: leapfrog %d, binary %d, want 2", len(lf.Rows), len(bin.Rows))
	}
	if got, want := rowsAsStrings(st, lf), rowsAsStrings(st, bin); !reflect.DeepEqual(got, want) {
		t.Fatalf("row multiset diverges:\nleapfrog %v\nbinary   %v", got, want)
	}
	if lf.Kernels.LeapfrogRows != 2 {
		t.Fatalf("LeapfrogRows = %d, want 2 (did the leapfrog node run?)", lf.Kernels.LeapfrogRows)
	}
	// The binary plan pays for the 200-row p1-p2 intermediate in both Cout
	// and Work; the multiway join intersects all three patterns on ?h first
	// and never materializes it.
	if lf.Cout*10 >= bin.Cout {
		t.Fatalf("Cout advantage missing: leapfrog %v vs binary %v", lf.Cout, bin.Cout)
	}
	if lf.Work*10 >= bin.Work {
		t.Fatalf("Work advantage missing: leapfrog %v vs binary %v", lf.Work, bin.Work)
	}
}

// TestLeapfrogParallelIdentical: the value-partitioned parallel leapfrog
// must be bit-identical to the serial run — rows, order and accounting —
// because per level-match accounting is additive across level-0 value
// partitions and morsel-order concatenation restores the serial order.
func TestLeapfrogParallelIdentical(t *testing.T) {
	st := buildStarStore(t, 300, 100)
	serial := run(t, st, starSrc, Options{Mode: Columnar, Leapfrog: true})
	if len(serial.Rows) != 100 {
		t.Fatalf("serial rows = %d, want 100", len(serial.Rows))
	}
	for _, par := range []int{2, 8} {
		for _, ms := range []int{1, 16} {
			got := run(t, st, starSrc, Options{Mode: Columnar, Leapfrog: true, Parallelism: par, MorselSize: ms})
			assertBitIdentical(t, fmt.Sprintf("leapfrog-p%d-m%d", par, ms), got, serial)
			if par > 1 && ms == 1 && got.Morsels < 2 {
				t.Fatalf("p%d m%d: %d morsels, leapfrog did not parallelize", par, ms, got.Morsels)
			}
		}
	}
}

// TestLeapfrogEpilogue: leapfrog composes with the epilogue operators and
// with filters.
func TestLeapfrogEpilogue(t *testing.T) {
	st := buildStarStore(t, 60, 20)
	src := `SELECT DISTINCT ?h WHERE {
  ?h <http://x/p1> ?a .
  ?h <http://x/p2> ?b .
  ?h <http://x/p3> ?c .
} ORDER BY ?h`
	bin := run(t, st, src, Options{})
	lf := run(t, st, src, Options{Mode: Columnar, Leapfrog: true})
	// With a total ORDER BY the row order is fully determined, so the
	// results agree bit-for-bit in rows (accounting differs by design).
	if !reflect.DeepEqual(lf.Rows, bin.Rows) {
		t.Fatalf("ordered rows diverge: %d vs %d", len(lf.Rows), len(bin.Rows))
	}
}

// TestLeapfrogOptionIgnoredOutsideColumnar: the row engines never lower
// to the multiway operator even when the option is set.
func TestLeapfrogOptionIgnoredOutsideColumnar(t *testing.T) {
	for _, mode := range []ExecMode{Streaming, Materializing} {
		po := PhysOptions(Options{Mode: mode, Leapfrog: true})
		if po.Leapfrog {
			t.Fatalf("mode %d: Leapfrog passed through to the physical planner", mode)
		}
	}
	if !PhysOptions(Options{Mode: Columnar, Leapfrog: true}).Leapfrog {
		t.Fatal("columnar mode must pass Leapfrog through")
	}
	st := buildStarStore(t, 20, 3)
	res := run(t, st, starSrc, Options{Leapfrog: true}) // streaming
	if res.Kernels.LeapfrogRows != 0 {
		t.Fatalf("streaming run executed the leapfrog operator: %+v", res.Kernels)
	}
}

// TestLeapfrogExplainSignature: the prepared plan's EXPLAIN rendering
// names the multiway operator, and the variant cache key differs from the
// base key so cached binary and leapfrog plans never collide.
func TestLeapfrogExplainSignature(t *testing.T) {
	st := buildStarStore(t, 20, 3)
	q := sparql.MustParse(starSrc)
	c, err := plan.Compile(q, st)
	if err != nil {
		t.Fatal(err)
	}
	p, err := plan.Optimize(c, plan.NewEstimator(st))
	if err != nil {
		t.Fatal(err)
	}
	ph, err := plan.Lower(c, p, PhysOptions(Options{Mode: Columnar, Leapfrog: true}))
	if err != nil {
		t.Fatal(err)
	}
	if ph.Root.Op != plan.PhysLeapfrog {
		t.Fatalf("root = %v, want leapfrog\n%s", ph.Root.Op, ph)
	}
}

// TestColumnarProbeScratchReuse: the columnar probe operator must reuse
// one MatchBuf scratch buffer across all probes of a batch instead of
// allocating per row (the overlay merge path used to).
func TestColumnarProbeScratchReuse(t *testing.T) {
	st := buildStarStore(t, 50, 5)
	d := st.NewDelta()
	d, err := d.Apply([]rdf.Triple{rdf.NewTriple(iri("hub9999"), iri("p1"), iri("x"))}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ov := d.Overlay()
	src := `SELECT * WHERE { ?h <http://x/p1> ?a . ?h <http://x/p2> ?b . }`
	want := run(t, ov, src, Options{})
	got := run(t, ov, src, Options{Mode: Columnar})
	assertBitIdentical(t, "overlay columnar", got, want)
	if got.Kernels.Batches == 0 {
		t.Fatal("columnar path did not run")
	}
}
