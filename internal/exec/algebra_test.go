package exec

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/dict"
	"repro/internal/sparql"
	"repro/internal/store"
)

// decodeRow renders one result row, with unbound columns as UNDEF.
func decodeRow(st *store.Store, row []dict.ID) string {
	parts := make([]string, len(row))
	for i, id := range row {
		if t, ok := st.Dict().TryDecode(id); ok {
			parts[i] = t.String()
		} else {
			parts[i] = "UNDEF"
		}
	}
	return strings.Join(parts, " | ")
}

func decodeRows(st *store.Store, res *Result) []string {
	out := make([]string, len(res.Rows))
	for i, row := range res.Rows {
		out[i] = decodeRow(st, row)
	}
	return out
}

var algebraQueries = []struct {
	name string
	src  string
}{
	{"optional", `SELECT * WHERE {
		?p <http://x/knows> ?q .
		OPTIONAL { ?post <http://x/creator> ?q . ?post <http://x/date> ?d . }
	} ORDER BY ?p ?q ?post`},
	{"optional filter inside", `SELECT * WHERE {
		?p <http://x/age> ?a .
		OPTIONAL { ?p <http://x/knows> ?q . }
		FILTER(?a > 20)
	} ORDER BY ?p ?q`},
	{"union", `SELECT * WHERE {
		{ ?s <http://x/knows> ?o . } UNION { ?s <http://x/creator> ?c . }
	} ORDER BY ?s ?o ?c`},
	{"union joined with bgp", `SELECT ?p ?x WHERE {
		?p <http://x/age> ?a .
		{ ?p <http://x/knows> ?x . } UNION { ?x <http://x/creator> ?p . }
	} ORDER BY ?p ?x`},
	{"group count", `SELECT ?q (COUNT(*) AS ?n) WHERE {
		?p <http://x/knows> ?q .
	} GROUP BY ?q ORDER BY ?q`},
	{"group agg having", `SELECT ?c (COUNT(*) AS ?n) (MIN(?d) AS ?first) WHERE {
		?post <http://x/creator> ?c .
		?post <http://x/date> ?d .
	} GROUP BY ?c HAVING(?n >= 2) ORDER BY ?c`},
	{"global aggregates", `SELECT (COUNT(*) AS ?n) (SUM(?a) AS ?total) (AVG(?a) AS ?avg) (MAX(?a) AS ?top) WHERE {
		?p <http://x/age> ?a .
	}`},
	{"count distinct", `SELECT (COUNT(DISTINCT ?q) AS ?n) WHERE {
		?p <http://x/knows> ?q .
	}`},
	{"count over optional var", `SELECT ?q (COUNT(?post) AS ?n) WHERE {
		?p <http://x/knows> ?q .
		OPTIONAL { ?post <http://x/creator> ?q . }
	} GROUP BY ?q ORDER BY ?q`},
	{"empty group result", `SELECT (COUNT(*) AS ?n) (SUM(?a) AS ?s) (MIN(?a) AS ?m) WHERE {
		?p <http://x/nosuch> ?a .
	}`},
}

// TestAlgebraStreamingColumnarIdentical asserts the tentpole acceptance
// criterion: for every algebra construct, the streaming and columnar
// engines produce bit-identical rows, row order and Cout/Work/Scanned
// accounting at Parallelism 1, 2 and 8.
func TestAlgebraStreamingColumnarIdentical(t *testing.T) {
	st := buildSocialStore(t)
	for _, q := range algebraQueries {
		t.Run(q.name, func(t *testing.T) {
			ref := run(t, st, q.src, Options{Mode: Streaming})
			for _, par := range []int{1, 2, 8} {
				for _, mode := range []ExecMode{Streaming, Columnar} {
					res := run(t, st, q.src, Options{Mode: mode, Parallelism: par, MorselSize: 2})
					if !reflect.DeepEqual(res.Rows, ref.Rows) {
						t.Fatalf("mode=%v par=%d rows diverge:\n%v\nwant\n%v",
							mode, par, decodeRows(st, res), decodeRows(st, ref))
					}
					if !reflect.DeepEqual(res.Vars, ref.Vars) {
						t.Fatalf("mode=%v par=%d vars = %v, want %v", mode, par, res.Vars, ref.Vars)
					}
					if res.Cout != ref.Cout || res.Work != ref.Work || res.Scanned != ref.Scanned {
						t.Fatalf("mode=%v par=%d accounting (cout=%v work=%v scanned=%v) diverges from (%v %v %v)",
							mode, par, res.Cout, res.Work, res.Scanned, ref.Cout, ref.Work, ref.Scanned)
					}
				}
			}
		})
	}
}

func TestOptionalSemantics(t *testing.T) {
	st := buildSocialStore(t)
	// bob knows carol; carol created post2; alice knows bob, and bob
	// created post1 and post3. Every knows edge must survive.
	res := run(t, st, `SELECT ?p ?q ?post WHERE {
		?p <http://x/knows> ?q .
		OPTIONAL { ?post <http://x/creator> ?q . }
	} ORDER BY ?p ?q ?post`, Options{})
	got := decodeRows(st, res)
	want := []string{
		"<http://x/alice> | <http://x/bob> | <http://x/post1>",
		"<http://x/alice> | <http://x/bob> | <http://x/post3>",
		"<http://x/alice> | <http://x/carol> | <http://x/post2>",
		"<http://x/bob> | <http://x/carol> | <http://x/post2>",
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("rows = %v, want %v", got, want)
	}
	// An OPTIONAL that never matches pads with UNDEF and keeps the row.
	res = run(t, st, `SELECT ?p ?x WHERE {
		?p <http://x/age> ?a .
		OPTIONAL { ?p <http://x/nosuch> ?x . }
	} ORDER BY ?p`, Options{})
	got = decodeRows(st, res)
	want = []string{
		"<http://x/alice> | UNDEF",
		"<http://x/bob> | UNDEF",
		"<http://x/carol> | UNDEF",
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("unmatched optional rows = %v, want %v", got, want)
	}
}

func TestUnionSemantics(t *testing.T) {
	st := buildSocialStore(t)
	res := run(t, st, `SELECT ?s WHERE {
		{ ?s <http://x/knows> <http://x/carol> . } UNION { ?s <http://x/age> ?a . FILTER(?a > 40) }
	} ORDER BY ?s`, Options{})
	got := decodeRows(st, res)
	// alice and bob know carol; carol is 45. Union keeps duplicates.
	want := []string{"<http://x/alice>", "<http://x/bob>", "<http://x/carol>"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("rows = %v, want %v", got, want)
	}
}

func TestAggregateSemantics(t *testing.T) {
	st := buildSocialStore(t)
	res := run(t, st, `SELECT ?c (COUNT(*) AS ?n) WHERE {
		?post <http://x/creator> ?c .
	} GROUP BY ?c ORDER BY DESC(?n)`, Options{})
	got := decodeRows(st, res)
	want := []string{
		`<http://x/bob> | "2"^^<http://www.w3.org/2001/XMLSchema#integer>`,
		`<http://x/carol> | "1"^^<http://www.w3.org/2001/XMLSchema#integer>`,
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("rows = %v, want %v", got, want)
	}
	// Global aggregation over empty input: one row, COUNT 0, MIN unbound.
	res = run(t, st, `SELECT (COUNT(*) AS ?n) (MIN(?a) AS ?m) WHERE {
		?p <http://x/nosuch> ?a .
	}`, Options{})
	got = decodeRows(st, res)
	want = []string{`"0"^^<http://www.w3.org/2001/XMLSchema#integer> | UNDEF`}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("empty aggregation rows = %v, want %v", got, want)
	}
}

// TestMaterializingRejectsAlgebra pins the materializing engine as the
// frozen paper baseline: algebra constructs return the typed error.
func TestMaterializingRejectsAlgebra(t *testing.T) {
	st := buildSocialStore(t)
	for _, src := range []string{
		`SELECT * WHERE { ?s <http://x/knows> ?o . OPTIONAL { ?o <http://x/age> ?a . } }`,
		`SELECT * WHERE { { ?s <http://x/knows> ?o . } UNION { ?s <http://x/age> ?a . } }`,
		`SELECT (COUNT(*) AS ?n) WHERE { ?s <http://x/knows> ?o . }`,
	} {
		_, _, err := Query(sparql.MustParse(src), st, Options{Mode: Materializing})
		if !errors.Is(err, ErrUnsupportedConstruct) {
			t.Fatalf("materializing error = %v, want ErrUnsupportedConstruct", err)
		}
	}
	// Flat queries still work.
	res := run(t, st, `SELECT * WHERE { ?s <http://x/knows> ?o . }`, Options{Mode: Materializing})
	if len(res.Rows) != 3 {
		t.Fatalf("flat materializing rows = %d, want 3", len(res.Rows))
	}
}
