// Package exec evaluates optimized query plans against a store, through
// two engines that produce bit-identical results:
//
//   - The streaming engine (default) lowers the logical plan to a physical
//     operator tree (plan.Lower) and pulls batches through iterator-style
//     operators: index scans stream straight out of the hexastore,
//     index-nested-loop probes and filters are fully pipelined, and only
//     the inherently blocking operators (hash/merge/cross joins, ORDER BY)
//     buffer their inputs.
//   - The materializing engine (Options.Mode = Materializing) computes
//     every join's complete output, as the original executor did; it is
//     kept as the golden reference for equality testing.
//
// Both engines record the measured Cout of the execution exactly (the
// sizes of all join outputs) and accumulate a deterministic "work" counter
// (tuples scanned, hashed, probed, emitted, sorted) that serves as a
// noise-free runtime proxy alongside wall-clock time. The paper's
// Cout-vs-runtime correlation (Section III) is reproduced against both.
package exec

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/dict"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/sparql"
	"repro/internal/store"
)

// JoinAlgorithm selects the physical join operator.
type JoinAlgorithm uint8

const (
	// HashJoin builds a hash table on the smaller input (default).
	HashJoin JoinAlgorithm = iota
	// SortMergeJoin sorts both inputs on the join key and merges.
	SortMergeJoin
)

// ExecMode selects the execution engine.
type ExecMode uint8

const (
	// Streaming executes the lowered physical plan with batch-pull
	// iterator operators (default).
	Streaming ExecMode = iota
	// Materializing computes every join's complete output before moving
	// on — the original engine, kept as the golden reference.
	Materializing
	// Columnar executes the same lowered physical plan as Streaming, but
	// moves data through dense per-variable column batches with optional
	// selection vectors instead of row slices. Every per-tuple accounting
	// rule is identical to the streaming operators', so Rows, row order,
	// Cout, Work and Scanned are bit-identical to Streaming at every
	// Parallelism. Columnar additionally unlocks Options.Leapfrog.
	Columnar
)

// Options configures execution.
type Options struct {
	Join JoinAlgorithm
	Mode ExecMode
	// PushFilters evaluates single-variable filters at the lowest operator
	// whose schema covers them (streaming engine only). It prunes
	// intermediate results early, so measured Cout shrinks and is no
	// longer comparable to the unpushed plans; final rows are unchanged.
	// Off by default to keep the paper's cost accounting exact.
	PushFilters bool
	// EarlyStop lets LIMIT terminate the streaming pipeline as soon as the
	// limit is reached instead of draining its input to exhaustion. Final
	// rows are unchanged, but the Cout/Work/Scanned accounting reflects
	// only the tuples actually touched, so it is no longer comparable to
	// the materializing engine. Off by default (all paper experiments keep
	// the draining behavior); the query service turns it on.
	EarlyStop bool
	// Parallelism is the per-query worker budget for morsel-driven
	// intra-query parallelism: parallelism-eligible pipelines (see
	// plan.PhysNode.ParallelSource) fan their source morsels across up to
	// this many workers, and hash joins probe their shared read-only build
	// table from up to this many workers. Results — rows, row order and the
	// full Cout/Work/Scanned accounting — are bit-identical to Parallelism
	// <= 1 (per-morsel outputs and counters are merged in morsel order, and
	// every counter increment is per-tuple, independent of batching). 0 or
	// 1 (the default) executes serially, preserving paper-experiment
	// semantics exactly.
	//
	// One caveat: a parallel pipeline runs its morsels to completion before
	// anything downstream observes output, so under EarlyStop a LIMIT can
	// no longer cut a pipeline short mid-stream — rows are unchanged but
	// the accounting may exceed the serial EarlyStop run's. With EarlyStop
	// off (the default), accounting is bit-identical at every worker count.
	Parallelism int
	// MorselSize is the number of source triples per morsel (0 = 4096).
	// Smaller morsels improve load balancing and let small inputs exercise
	// the parallel path; the choice never affects results or accounting.
	MorselSize int
	// Leapfrog enables the worst-case-optimal leapfrog triejoin for
	// eligible star/cyclic BGPs (see plan.PhysOptions.Leapfrog). Only
	// consulted in Columnar mode — the row engines keep their binary join
	// trees. A leapfrog run emits rows in global trie order and counts only
	// the multiway join's final output toward Cout, so its results equal
	// the binary plans' as multisets (asserted by the differential suite)
	// but are excluded from the bit-identical golden matrix.
	Leapfrog bool
	// Pool, when set, is the shared CPU budget the executor draws extra
	// workers from: each worker beyond the query's own goroutine requires
	// one TryAcquire'd token, released when the pipeline finishes. A query
	// always makes progress on its own goroutine even when the pool is
	// exhausted — Parallelism is then a ceiling, not a demand. The query
	// service points this at its admission pool so intra-query workers and
	// concurrent queries respect one budget.
	Pool *TokenPool
	// Trace, when non-nil, receives the run's execution trace: every
	// physical operator is wrapped in a span recording wall time, rows and
	// batches emitted, the exact Cout/Work/Scanned deltas of its subtree,
	// and — for morsel-driven parallel operators — a per-morsel/per-worker
	// breakdown. The finalized span tree is handed to the collector once
	// the run completes. Tracing never changes results or accounting; the
	// root span's inclusive totals equal this Result's Cout/Work/Scanned
	// bit-for-bit. When nil (the default) the engines build the exact
	// untraced operator tree — no wrappers, no per-tuple checks, no
	// allocations on the hot path.
	Trace obs.Collector
}

// Result is the outcome of one query execution.
type Result struct {
	Vars     []sparql.Var  // output column schema
	Rows     [][]dict.ID   // result tuples (projected, de-duplicated, ordered, limited)
	Cout     float64       // measured sum of all join-output sizes (the paper's cost function)
	Work     float64       // deterministic work units: scanned + built + probed + emitted tuples
	Duration time.Duration // wall-clock execution time
	Scanned  int           // tuples read from indexes
	// Morsels is the number of source morsels executed by parallel
	// operators (0 when the query ran serially). Excluded from the
	// bit-identical golden comparison: it describes the schedule, not the
	// result.
	Morsels int
	// Workers is the largest worker count any parallel operator of this
	// query ran with (0 when the query ran serially). Like Morsels it
	// describes the schedule; the service aggregates it into per-query
	// worker-utilization stats.
	Workers int
	// Kernels counts columnar/leapfrog kernel activity. Like Morsels and
	// Workers it describes how the engine ran, not what it computed, and is
	// excluded from the bit-identical golden comparison (the row engines
	// report all zeros; LeapfrogSeeks additionally depends on partitioning).
	Kernels KernelStats
}

// KernelStats counts the work done by the columnar and leapfrog kernels,
// plus the compositional-algebra operator counters (LeftJoinRows,
// UnionRows, AggGroups), which are engine-independent logical counts —
// the row and columnar engines report identical values for them.
type KernelStats struct {
	Batches       int // column batches emitted by columnar operators
	FilterRows    int // rows evaluated by the columnar filter kernel
	HashProbeRows int // rows probed by the columnar hash-join kernel
	MergeRows     int // rows emitted by the columnar merge-join kernel
	GatherRows    int // rows compacted/gathered through selection vectors
	LeapfrogSeeks int // trie-cursor seeks issued by leapfrog searches
	LeapfrogRows  int // rows emitted by the leapfrog multiway join
	LeftJoinRows  int // rows emitted by left outer joins (OPTIONAL)
	UnionRows     int // rows emitted by union operators
	AggGroups     int // groups emitted by aggregation operators
}

// add accumulates other into s (used by the morsel-order counter merge).
func (s *KernelStats) add(o KernelStats) {
	s.Batches += o.Batches
	s.FilterRows += o.FilterRows
	s.HashProbeRows += o.HashProbeRows
	s.MergeRows += o.MergeRows
	s.GatherRows += o.GatherRows
	s.LeapfrogSeeks += o.LeapfrogSeeks
	s.LeapfrogRows += o.LeapfrogRows
	s.LeftJoinRows += o.LeftJoinRows
	s.UnionRows += o.UnionRows
	s.AggGroups += o.AggGroups
}

// relation is an intermediate table: a schema plus rows.
type relation struct {
	vars []sparql.Var
	rows [][]dict.ID
}

func (r *relation) colIndex(v sparql.Var) int {
	for i, x := range r.vars {
		if x == v {
			return i
		}
	}
	return -1
}

// executor carries per-run state.
type executor struct {
	st      store.Source
	ctx     context.Context
	opts    Options
	cout    float64
	work    float64
	scan    int
	morsels int // morsels executed by parallel operators
	workers int // max workers any parallel operator ran with
	kern    KernelStats
	// probeScratch backs the overlay merge path of index-nested-loop
	// probes (MatchBuf) so per-row probing stays allocation-free.
	probeScratch []store.IDTriple
	// trace is the run's tracing context; nil unless Options.Trace is set.
	// Worker executors never carry one — their counters reach the tracing
	// run through the morsel-order merge.
	trace *traceState
}

// cancelled returns the context's error once the run's context is done.
// Operators check it per batch, and the blocking join/sort kernels check
// it every cancelCheckRows tuples, so a dropped client aborts both a
// streaming pull and a pipeline breaker mid-build within bounded work.
func (ex *executor) cancelled() error {
	if ex.ctx == nil {
		return nil
	}
	return ex.ctx.Err()
}

// cancelCheckRows is how many tuples a blocking kernel (hash build/probe,
// merge, cross product, sort) processes between context polls.
const cancelCheckRows = 4096

// parallelism returns the effective worker ceiling for this run.
func (ex *executor) parallelism() int {
	if ex.opts.Parallelism < 1 {
		return 1
	}
	return ex.opts.Parallelism
}

// Run executes the plan p for compiled query c against st with the engine
// selected by opts.Mode. The two engines return bit-identical Results
// (including the Cout/Work/Scanned accounting) for the same options.
func Run(c *plan.Compiled, p *plan.Plan, st store.Source, opts Options) (*Result, error) {
	return RunCtx(context.Background(), c, p, st, opts)
}

// RunCtx is Run under a context: cancelling ctx aborts the execution at the
// next operator batch boundary and returns the context's error. The
// accounting of a completed (non-cancelled) run is identical to Run's.
func RunCtx(ctx context.Context, c *plan.Compiled, p *plan.Plan, st store.Source, opts Options) (*Result, error) {
	start := time.Now()
	ex := &executor{st: st, ctx: ctx, opts: opts}
	if opts.Trace != nil {
		ex.trace = &traceState{}
		if opts.Mode == Materializing {
			// The materializing engine evaluates the logical tree directly
			// (no operator tree to wrap): one root span carries the run.
			root := &obs.Span{Op: "Materialize", Detail: "Materialize (logical-tree evaluation)"}
			ex.trace.root = root
			ex.trace.cur = root
		}
	}
	var rel *relation
	var err error
	switch opts.Mode {
	case Materializing:
		rel, err = ex.runMaterializing(c, p)
	case Columnar:
		rel, err = ex.runColumnar(c, p)
	default:
		rel, err = ex.runStreaming(c, p)
	}
	if err != nil {
		return nil, err
	}
	if ex.trace != nil {
		ex.finishTrace(len(rel.rows), time.Since(start))
	}
	return &Result{
		Vars:     rel.vars,
		Rows:     rel.rows,
		Cout:     ex.cout,
		Work:     ex.work,
		Duration: time.Since(start),
		Scanned:  ex.scan,
		Morsels:  ex.morsels,
		Workers:  ex.workers,
		Kernels:  ex.kern,
	}, nil
}

// runMaterializing is the original engine: evaluate the logical join tree
// bottom-up with full intermediate materialization, then apply filters and
// the ORDER BY / projection / DISTINCT / LIMIT epilogue.
func (ex *executor) runMaterializing(c *plan.Compiled, p *plan.Plan) (*relation, error) {
	if c.Alg != nil || p.Alg != nil || c.Query.HasAlgebra() {
		return nil, ErrUnsupportedConstruct
	}
	rel, err := ex.eval(p.Root)
	if err != nil {
		return nil, err
	}
	rel, err = ex.applyFilters(rel, c.Query.Filters)
	if err != nil {
		return nil, err
	}
	return ex.finish(rel, c.Query)
}

func (ex *executor) eval(n *plan.Node) (*relation, error) {
	if n == nil {
		return nil, fmt.Errorf("exec: nil plan node")
	}
	if err := ex.cancelled(); err != nil {
		return nil, err
	}
	if n.IsLeaf() {
		return ex.scanLeaf(n.Leaf), nil
	}
	// Index-nested-loop preference: when a child is a bare triple pattern,
	// probe the store's indexes per outer row instead of materializing the
	// full pattern — this is how RDF engines execute selective joins, and
	// it makes execution work proportional to the data actually touched
	// (without it, constant-size full scans would mask the paper's
	// parameter-dependent runtime effects).
	out, err := ex.evalJoin(n)
	if err != nil {
		return nil, err
	}
	// Cout counts the size of every join output, including the root's.
	ex.cout += float64(len(out.rows))
	return out, nil
}

func (ex *executor) evalJoin(n *plan.Node) (*relation, error) {
	left, right := n.Left, n.Right
	switch {
	case right.IsLeaf() && !left.IsLeaf():
		outer, err := ex.eval(left)
		if err != nil {
			return nil, err
		}
		return ex.joinWithLeaf(outer, right.Leaf)
	case left.IsLeaf() && !right.IsLeaf():
		outer, err := ex.eval(right)
		if err != nil {
			return nil, err
		}
		return ex.joinWithLeaf(outer, left.Leaf)
	case left.IsLeaf() && right.IsLeaf():
		// Materialize the smaller (by estimated cardinality), probe the
		// other through the index.
		if left.Card <= right.Card {
			return ex.joinWithLeaf(ex.scanLeaf(left.Leaf), right.Leaf)
		}
		return ex.joinWithLeaf(ex.scanLeaf(right.Leaf), left.Leaf)
	default:
		l, err := ex.eval(left)
		if err != nil {
			return nil, err
		}
		r, err := ex.eval(right)
		if err != nil {
			return nil, err
		}
		return ex.join(l, r)
	}
}

// joinWithLeaf joins an already-materialized outer relation with a base
// triple pattern via index nested loops: per outer row, the shared
// variables are bound into the pattern and the store is probed. When no
// variable is shared (a cross product) it falls back to materializing the
// leaf. The probe plumbing (buildProbePlan) is shared with the streaming
// probe operator.
func (ex *executor) joinWithLeaf(outer *relation, leaf *plan.CompiledPattern) (*relation, error) {
	pp := buildProbePlan(outer.vars, leaf)
	if !pp.anyShared || leaf.Missing {
		// Cross product (or empty leaf): materialize and defer to join.
		return ex.join(outer, ex.scanLeaf(leaf))
	}
	out := &relation{vars: pp.outVars}
	for i, row := range outer.rows {
		if i%cancelCheckRows == 0 {
			if err := ex.cancelled(); err != nil {
				return nil, err
			}
		}
		pat, conflict := pp.bind(row)
		ex.work++ // index probe
		if conflict {
			continue
		}
		var matches []store.IDTriple
		matches, ex.probeScratch = ex.st.MatchBuf(pat, ex.probeScratch)
		ex.scan += len(matches)
		ex.work += float64(len(matches))
		for _, m := range matches {
			if nr := pp.row(row, m); nr != nil {
				out.rows = append(out.rows, nr)
			}
		}
	}
	return out, nil
}

// scanLeaf materializes a triple-pattern scan into a relation over the
// pattern's variables. Repeated variables (e.g. ?x ?p ?x) are enforced by
// the extraction plan shared with the streaming scan operator.
func (ex *executor) scanLeaf(cp *plan.CompiledPattern) *relation {
	rel := &relation{vars: cp.Vars()}
	if cp.Missing {
		return rel
	}
	matches, _ := ex.st.Match(cp.Pat)
	ex.scan += len(matches)
	ex.work += float64(len(matches))
	sp := buildScanPlan(cp, rel.vars)
	rows := make([][]dict.ID, 0, len(matches))
	width := len(rel.vars)
	for _, m := range matches {
		if row := sp.row(m, width); row != nil {
			rows = append(rows, row)
		}
	}
	rel.rows = rows
	return rel
}

// join dispatches to the configured join algorithm; inputs with no shared
// variables produce a cross product (nested loop).
func (ex *executor) join(l, r *relation) (*relation, error) {
	shared := sharedCols(l, r)
	if len(shared) == 0 {
		return ex.crossProduct(l, r)
	}
	switch ex.opts.Join {
	case SortMergeJoin:
		return ex.mergeJoin(l, r, shared)
	default:
		return ex.hashJoin(l, r, shared)
	}
}

// sharedCols returns pairs (leftCol, rightCol) of columns bound to the same
// variable.
func sharedCols(l, r *relation) [][2]int {
	var out [][2]int
	for li, v := range l.vars {
		if ri := r.colIndex(v); ri >= 0 {
			out = append(out, [2]int{li, ri})
		}
	}
	return out
}

// outputSchema builds the joined schema: all left vars, then right vars not
// already present, with a column-copy map for right rows.
func outputSchema(l, r *relation) (vars []sparql.Var, rightCopy []int) {
	vars = append(vars, l.vars...)
	for ri, v := range r.vars {
		if l.colIndex(v) < 0 {
			vars = append(vars, v)
			rightCopy = append(rightCopy, ri)
		}
	}
	return vars, rightCopy
}

func (ex *executor) hashJoin(l, r *relation, shared [][2]int) (*relation, error) {
	// Build on the smaller side.
	swapped := false
	if len(r.rows) < len(l.rows) {
		l, r = r, l
		swapped = true
		for i := range shared {
			shared[i][0], shared[i][1] = shared[i][1], shared[i][0]
		}
	}
	// l is the build side now.
	type key [4]dict.ID // up to 4 join columns; more is rejected below
	if len(shared) > 4 {
		panic("exec: more than 4 shared join variables")
	}
	mk := func(row []dict.ID, side int) key {
		var k key
		for i, sc := range shared {
			k[i] = row[sc[side]]
		}
		return k
	}
	table := make(map[key][][]dict.ID, len(l.rows))
	for i, row := range l.rows {
		if i%cancelCheckRows == 0 {
			// The build side can be huge: poll the context mid-build so a
			// dropped client aborts the pipeline breaker, not just the
			// batch pulls that fed it.
			if err := ex.cancelled(); err != nil {
				return nil, err
			}
		}
		k := mk(row, 0)
		table[k] = append(table[k], row)
	}
	ex.work += float64(len(l.rows)) // build cost
	vars, rightCopy := schemaFor(l, r, swapped)
	out := &relation{vars: vars}
	// probeRows probes the shared read-only table with a slice of probe
	// rows, charging probe/emit work to cx. One code path serves the serial
	// probe and every parallel morsel, so their per-tuple accounting and
	// output order cannot diverge.
	probeRows := func(cx *executor, rows [][]dict.ID) ([][]dict.ID, error) {
		var dst [][]dict.ID
		steps := 0
		for _, rrow := range rows {
			steps++
			if steps%cancelCheckRows == 0 {
				if err := cx.cancelled(); err != nil {
					return nil, err
				}
			}
			cx.work++ // probe cost
			for _, lrow := range table[mk(rrow, 1)] {
				dst = append(dst, combineRows(lrow, rrow, rightCopy, swapped, len(vars)))
				cx.work++ // emit cost
			}
		}
		return dst, nil
	}
	// Build once, probe in parallel: the table is read-only from here on,
	// so probe morsels only share immutable state. Merging per-morsel
	// outputs and counters in morsel order reproduces the serial probe
	// loop bit-for-bit.
	if ex.parallelism() > 1 {
		if morsels := morselize(len(r.rows), ex.morselSize()); len(morsels) > 1 {
			outs := make([][][]dict.ID, len(morsels))
			counters := make([]execCounters, len(morsels))
			workers, err := ex.runMorsels(len(morsels), func(i int) error {
				wex := ex.workerExecutor()
				rows, err := probeRows(wex, r.rows[morsels[i][0]:morsels[i][1]])
				if err != nil {
					return err
				}
				outs[i] = rows
				counters[i] = wex.counters()
				return nil
			})
			if err != nil {
				return nil, err
			}
			ex.mergeMorsels(counters, workers)
			out.rows = mergeRowBuffers(outs)
			return out, nil
		}
	}
	rows, err := probeRows(ex, r.rows)
	if err != nil {
		return nil, err
	}
	out.rows = rows
	return out, nil
}

// schemaFor computes the output schema preserving the original left/right
// orientation even if the build side was swapped.
func schemaFor(build, probe *relation, swapped bool) ([]sparql.Var, []int) {
	if swapped {
		// original left = probe, original right = build
		vars, copyIdx := outputSchema(probe, build)
		return vars, copyIdx
	}
	vars, copyIdx := outputSchema(build, probe)
	return vars, copyIdx
}

// combineRows merges a build row and probe row into the output layout.
func combineRows(buildRow, probeRow []dict.ID, extraCopy []int, swapped bool, width int) []dict.ID {
	out := make([]dict.ID, 0, width)
	if swapped {
		out = append(out, probeRow...)
		for _, ci := range extraCopy {
			out = append(out, buildRow[ci])
		}
		return out
	}
	out = append(out, buildRow...)
	for _, ci := range extraCopy {
		out = append(out, probeRow[ci])
	}
	return out
}

func (ex *executor) mergeJoin(l, r *relation, shared [][2]int) (out *relation, err error) {
	defer recoverSortAbort(&err)
	lk := func(row []dict.ID) []dict.ID {
		k := make([]dict.ID, len(shared))
		for i, sc := range shared {
			k[i] = row[sc[0]]
		}
		return k
	}
	rk := func(row []dict.ID) []dict.ID {
		k := make([]dict.ID, len(shared))
		for i, sc := range shared {
			k[i] = row[sc[1]]
		}
		return k
	}
	cmp := func(a, b []dict.ID) int {
		for i := range a {
			if a[i] != b[i] {
				if a[i] < b[i] {
					return -1
				}
				return 1
			}
		}
		return 0
	}
	lrows := append([][]dict.ID(nil), l.rows...)
	rrows := append([][]dict.ID(nil), r.rows...)
	// The sorts buffer the entire inputs: poll the context from inside the
	// comparators so a cancelled run unwinds mid-sort.
	sort.Slice(lrows, ex.lessWithCancel(func(i, j int) bool { return cmp(lk(lrows[i]), lk(lrows[j])) < 0 }))
	sort.Slice(rrows, ex.lessWithCancel(func(i, j int) bool { return cmp(rk(rrows[i]), rk(rrows[j])) < 0 }))
	ex.work += float64(len(lrows) + len(rrows)) // sort pass (linear proxy)
	vars, rightCopy := outputSchema(l, r)
	out = &relation{vars: vars}
	steps := 0
	i, j := 0, 0
	for i < len(lrows) && j < len(rrows) {
		steps++
		if steps%cancelCheckRows == 0 {
			if err := ex.cancelled(); err != nil {
				return nil, err
			}
		}
		c := cmp(lk(lrows[i]), rk(rrows[j]))
		switch {
		case c < 0:
			i++
		case c > 0:
			j++
		default:
			// Find the run of equal keys on both sides.
			i2 := i
			for i2 < len(lrows) && cmp(lk(lrows[i2]), lk(lrows[i])) == 0 {
				i2++
			}
			j2 := j
			for j2 < len(rrows) && cmp(rk(rrows[j2]), rk(rrows[j])) == 0 {
				j2++
			}
			for x := i; x < i2; x++ {
				for y := j; y < j2; y++ {
					steps++
					if steps%cancelCheckRows == 0 {
						if err := ex.cancelled(); err != nil {
							return nil, err
						}
					}
					out.rows = append(out.rows, combineRows(lrows[x], rrows[y], rightCopy, false, len(vars)))
					ex.work++
				}
			}
			i, j = i2, j2
		}
	}
	return out, nil
}

func (ex *executor) crossProduct(l, r *relation) (*relation, error) {
	vars, rightCopy := outputSchema(l, r)
	out := &relation{vars: vars}
	steps := 0
	for _, lrow := range l.rows {
		steps++
		if steps%cancelCheckRows == 0 {
			if err := ex.cancelled(); err != nil {
				return nil, err
			}
		}
		for _, rrow := range r.rows {
			steps++
			if steps%cancelCheckRows == 0 {
				if err := ex.cancelled(); err != nil {
					return nil, err
				}
			}
			out.rows = append(out.rows, combineRows(lrow, rrow, rightCopy, false, len(vars)))
			ex.work++
		}
	}
	return out, nil
}
