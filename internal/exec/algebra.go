package exec

import (
	"errors"
	"fmt"
	"strconv"

	"repro/internal/dict"
	"repro/internal/rdf"
	"repro/internal/sparql"
)

// This file implements the compositional-algebra operators of the row
// (streaming) engine plus the aggregation machinery shared with the
// columnar engine: left outer hash join (OPTIONAL), ordered union with
// unbound padding (UNION), and streaming hash aggregation (GROUP BY /
// aggregates). The columnar twins live in colalgebra.go and apply the
// exact same per-tuple accounting rules, so Rows, row order, Cout, Work
// and Scanned stay bit-identical between the two engines.
//
// Unbound-variable semantics (fixed for this subset, deterministic):
// an OPTIONAL left row without a match pads the right-only columns with
// dict.None; a UNION branch pads the columns it does not bind. None
// compares equal to None and unequal to every bound ID in joins, drops
// the row in FILTER comparisons, sorts before every bound value in
// ORDER BY, and is ignored by every aggregate except COUNT(*).

// ErrUnsupportedConstruct is returned by the materializing engine for
// queries using OPTIONAL, UNION or aggregation. The materializing engine
// is the frozen paper baseline: it executes exactly the flat BGP + FILTER
// shape the paper's experiments use, so the algebra extensions are
// deliberately not implemented there.
var ErrUnsupportedConstruct = errors.New(
	"exec: the materializing engine does not support OPTIONAL/UNION/aggregation (frozen paper baseline)")

// --- Left outer hash join (OPTIONAL) -----------------------------------------

// leftJoin is the row kernel of the left outer join: a hash table is
// built on the right side (the OPTIONAL group), then the left rows are
// probed in order. A matching left row emits one output per match in
// build insertion order; a non-matching one emits once with the
// right-only columns unbound. With no shared variable the key is empty,
// so every left row matches every right row (degenerate cross), which
// keeps the operator total. Accounting mirrors hashJoin: +1 work per
// build row, +1 per probe, +1 per emitted row; the caller charges the
// output size to Cout.
func (ex *executor) leftJoin(l, r *relation) (*relation, error) {
	shared := sharedCols(l, r)
	vars, rightCopy := outputSchema(l, r)
	var keyBuf []byte
	key := func(row []dict.ID, side int) string {
		keyBuf = keyBuf[:0]
		for _, sc := range shared {
			id := row[sc[side]]
			keyBuf = append(keyBuf, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
		}
		return string(keyBuf)
	}
	table := make(map[string][][]dict.ID, len(r.rows))
	for i, row := range r.rows {
		if i%cancelCheckRows == 0 {
			if err := ex.cancelled(); err != nil {
				return nil, err
			}
		}
		k := key(row, 1)
		table[k] = append(table[k], row)
	}
	ex.work += float64(len(r.rows)) // build cost
	pad := make([]dict.ID, len(rightCopy))
	out := &relation{vars: vars}
	steps := 0
	for _, lrow := range l.rows {
		steps++
		if steps%cancelCheckRows == 0 {
			if err := ex.cancelled(); err != nil {
				return nil, err
			}
		}
		ex.work++ // probe cost
		matches := table[key(lrow, 0)]
		if len(matches) == 0 {
			nr := make([]dict.ID, 0, len(vars))
			nr = append(nr, lrow...)
			nr = append(nr, pad...)
			out.rows = append(out.rows, nr)
			ex.work++ // emit cost
			ex.kern.LeftJoinRows++
			continue
		}
		for _, rrow := range matches {
			out.rows = append(out.rows, combineRows(lrow, rrow, rightCopy, false, len(vars)))
			ex.work++ // emit cost
			ex.kern.LeftJoinRows++
		}
	}
	return out, nil
}

// leftJoinOp is the streaming pipeline breaker for PhysLeftJoin: both
// children are drained (the left side's order must be preserved, so the
// left is buffered like any composite join input), the kernel runs once,
// and the result streams out in batches.
type leftJoinOp struct {
	ex          *executor
	left, right operator
	joined      bool
	outVars     []sparql.Var
	rows        [][]dict.ID
	pos         int
}

func (op *leftJoinOp) vars() []sparql.Var {
	if op.outVars == nil {
		op.outVars, _ = outputSchema(
			&relation{vars: op.left.vars()},
			&relation{vars: op.right.vars()},
		)
	}
	return op.outVars
}

func (op *leftJoinOp) next() ([][]dict.ID, error) {
	if !op.joined {
		op.joined = true
		l, err := drain(op.left)
		if err != nil {
			return nil, err
		}
		r, err := drain(op.right)
		if err != nil {
			return nil, err
		}
		out, err := op.ex.leftJoin(l, r)
		if err != nil {
			return nil, err
		}
		op.ex.cout += float64(len(out.rows))
		op.outVars = out.vars
		op.rows = out.rows
	}
	if op.pos >= len(op.rows) {
		return nil, nil
	}
	end := op.pos + streamBatch
	if end > len(op.rows) {
		end = len(op.rows)
	}
	batch := op.rows[op.pos:end]
	op.pos = end
	return batch, nil
}

// --- Union -------------------------------------------------------------------

// unionColMaps resolves, per branch, each union output column to the
// branch's column index (-1 = the branch does not bind it: pad None).
func unionColMaps(outVars []sparql.Var, kidVars [][]sparql.Var) [][]int {
	maps := make([][]int, len(kidVars))
	for i, kv := range kidVars {
		m := make([]int, len(outVars))
		for j, v := range outVars {
			m[j] = varIndexOf(kv, v)
		}
		maps[i] = m
	}
	return maps
}

// unionOp concatenates its children in order, streaming each child to
// exhaustion before starting the next and padding columns the child does
// not bind with dict.None. Accounting: +1 work per emitted row, and the
// full output size counts toward Cout (the union materializes a new
// intermediate result exactly like a join output).
type unionOp struct {
	ex      *executor
	kids    []operator
	outVars []sparql.Var
	maps    [][]int
	cur     int
}

func (op *unionOp) vars() []sparql.Var { return op.outVars }

func (op *unionOp) next() ([][]dict.ID, error) {
	for op.cur < len(op.kids) {
		if err := op.ex.cancelled(); err != nil {
			return nil, err
		}
		batch, err := op.kids[op.cur].next()
		if err != nil {
			return nil, err
		}
		if batch == nil {
			op.cur++
			continue
		}
		m := op.maps[op.cur]
		out := make([][]dict.ID, len(batch))
		for i, row := range batch {
			nr := make([]dict.ID, len(op.outVars))
			for j, ci := range m {
				if ci >= 0 {
					nr[j] = row[ci]
				}
			}
			out[i] = nr
			op.ex.work++ // emit cost
			op.ex.kern.UnionRows++
		}
		op.ex.cout += float64(len(out))
		return out, nil
	}
	return nil, nil
}

// --- Aggregation -------------------------------------------------------------

// aggSpec is one aggregate resolved against the input schema.
type aggSpec struct {
	fn       sparql.AggFunc
	distinct bool
	col      int // source column; -1 for COUNT(*)
}

// compileAggs resolves the aggregates' argument variables to columns.
func compileAggs(vars []sparql.Var, aggs []sparql.Aggregate) ([]aggSpec, error) {
	specs := make([]aggSpec, len(aggs))
	for i, a := range aggs {
		s := aggSpec{fn: a.Func, distinct: a.Distinct, col: -1}
		if a.Var != "" {
			ci := varIndexOf(vars, a.Var)
			if ci < 0 {
				return nil, fmt.Errorf("exec: aggregate over unbound variable ?%s", a.Var)
			}
			s.col = ci
		}
		specs[i] = s
	}
	return specs, nil
}

// aggState is the running state of one aggregate over one group.
type aggState struct {
	count        int64            // COUNT
	distinct     map[dict.ID]bool // COUNT(DISTINCT ?v)
	sum          float64          // SUM / AVG accumulator
	sumN         int64            // numeric values accumulated
	sumInt       bool             // all accumulated values were xsd:integer
	minID, maxID dict.ID          // winning input IDs (None = unset)
}

// aggregateRows is the one aggregation kernel both engines run: it groups
// the n input rows (accessed through get, so rows and columns both
// qualify) by the key columns, keeping groups in first-occurrence order,
// and folds each aggregate. Accounting: +1 work per input row, +1 per
// emitted group, and the group count toward Cout. Unbound inputs
// (dict.None) are ignored by every aggregate; COUNT(*) counts rows
// regardless. SUM and AVG fold numeric-coercible values only (input
// order, so float accumulation is deterministic); MIN/MAX keep the
// winning input ID under compareOrder (first wins ties). Results are
// interned into the store dictionary — Encode is idempotent, so both
// engines obtain identical IDs on the same store.
func aggregateRows(ex *executor, get func(row, col int) dict.ID, n int, keyCols []int, specs []aggSpec) ([][]dict.ID, error) {
	d := ex.st.Dict()
	global := len(keyCols) == 0
	type group struct {
		key []dict.ID
		sts []aggState
	}
	newGroup := func(key []dict.ID) *group {
		g := &group{key: key, sts: make([]aggState, len(specs))}
		for i := range g.sts {
			g.sts[i].sumInt = true
			if specs[i].distinct {
				g.sts[i].distinct = map[dict.ID]bool{}
			}
		}
		return g
	}
	var groups []*group
	index := map[string]*group{}
	if global {
		// Global aggregation always emits exactly one row, even over an
		// empty input (COUNT = 0, SUM = 0, MIN/MAX/AVG unbound).
		groups = append(groups, newGroup(nil))
	}
	var keyBuf []byte
	for r := 0; r < n; r++ {
		if r%cancelCheckRows == 0 {
			if err := ex.cancelled(); err != nil {
				return nil, err
			}
		}
		ex.work++ // aggregate input row
		var g *group
		if global {
			g = groups[0]
		} else {
			keyBuf = keyBuf[:0]
			for _, kc := range keyCols {
				id := get(r, kc)
				keyBuf = append(keyBuf, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
			}
			k := string(keyBuf)
			var ok bool
			if g, ok = index[k]; !ok {
				key := make([]dict.ID, len(keyCols))
				for i, kc := range keyCols {
					key[i] = get(r, kc)
				}
				g = newGroup(key)
				groups = append(groups, g)
				index[k] = g
			}
		}
		for i := range specs {
			sp := &specs[i]
			st := &g.sts[i]
			if sp.col < 0 {
				st.count++ // COUNT(*)
				continue
			}
			id := get(r, sp.col)
			if id == dict.None {
				continue
			}
			switch sp.fn {
			case sparql.AggCount:
				if sp.distinct {
					st.distinct[id] = true
				} else {
					st.count++
				}
			case sparql.AggSum, sparql.AggAvg:
				t := d.Decode(id)
				if f, ok := numericValue(t); ok {
					st.sum += f
					st.sumN++
					if t.Datatype != rdf.XSDInteger {
						st.sumInt = false
					}
				}
			case sparql.AggMin:
				if st.minID == dict.None || compareOrder(d, id, st.minID) < 0 {
					st.minID = id
				}
			case sparql.AggMax:
				if st.maxID == dict.None || compareOrder(d, id, st.maxID) > 0 {
					st.maxID = id
				}
			}
		}
	}
	out := make([][]dict.ID, 0, len(groups))
	for _, g := range groups {
		ex.work++ // emitted group
		row := make([]dict.ID, 0, len(keyCols)+len(specs))
		row = append(row, g.key...)
		for i := range specs {
			row = append(row, finishAgg(d, &specs[i], &g.sts[i]))
		}
		out = append(out, row)
	}
	ex.cout += float64(len(groups))
	ex.kern.AggGroups += len(groups)
	return out, nil
}

// finishAgg materializes one aggregate's result as a dictionary ID.
func finishAgg(d *dict.Dict, sp *aggSpec, st *aggState) dict.ID {
	switch sp.fn {
	case sparql.AggCount:
		c := st.count
		if sp.distinct {
			c = int64(len(st.distinct))
		}
		return d.Encode(rdf.NewInteger(c))
	case sparql.AggSum:
		if st.sumN == 0 {
			return d.Encode(rdf.NewInteger(0))
		}
		if st.sumInt {
			return d.Encode(rdf.NewInteger(int64(st.sum)))
		}
		return d.Encode(rdf.NewTypedLiteral(strconv.FormatFloat(st.sum, 'g', -1, 64), rdf.XSDDecimal))
	case sparql.AggAvg:
		if st.sumN == 0 {
			return dict.None
		}
		return d.Encode(rdf.NewTypedLiteral(strconv.FormatFloat(st.sum/float64(st.sumN), 'g', -1, 64), rdf.XSDDecimal))
	case sparql.AggMin:
		return st.minID
	case sparql.AggMax:
		return st.maxID
	}
	return dict.None
}

// aggOp is the streaming hash-aggregation pipeline breaker: drain the
// input, run the shared kernel, stream the group rows.
type aggOp struct {
	ex      *executor
	child   operator
	outVars []sparql.Var
	keyCols []int
	specs   []aggSpec
	done    bool
	rows    [][]dict.ID
	pos     int
}

func newAggOp(ex *executor, child operator, groupBy []sparql.Var, aggs []sparql.Aggregate, outVars []sparql.Var) (*aggOp, error) {
	in := child.vars()
	keyCols := make([]int, len(groupBy))
	for i, v := range groupBy {
		ci := varIndexOf(in, v)
		if ci < 0 {
			return nil, fmt.Errorf("exec: GROUP BY unbound variable ?%s", v)
		}
		keyCols[i] = ci
	}
	specs, err := compileAggs(in, aggs)
	if err != nil {
		return nil, err
	}
	return &aggOp{ex: ex, child: child, outVars: outVars, keyCols: keyCols, specs: specs}, nil
}

func (op *aggOp) vars() []sparql.Var { return op.outVars }

func (op *aggOp) next() ([][]dict.ID, error) {
	if !op.done {
		op.done = true
		rel, err := drain(op.child)
		if err != nil {
			return nil, err
		}
		rows, err := aggregateRows(op.ex,
			func(r, c int) dict.ID { return rel.rows[r][c] },
			len(rel.rows), op.keyCols, op.specs)
		if err != nil {
			return nil, err
		}
		op.rows = rows
	}
	if op.pos >= len(op.rows) {
		return nil, nil
	}
	end := op.pos + streamBatch
	if end > len(op.rows) {
		end = len(op.rows)
	}
	batch := op.rows[op.pos:end]
	op.pos = end
	return batch, nil
}
